// Deadline and stall enforcement (src/service/watchdog.{hpp,cpp}) through
// the engine — the overload-safety tentpole's per-job termination layer:
//
//   * a never-terminating job with --deadline-ms is force-cancelled and
//     surfaces as traversal_aborted with reason deadline_exceeded, the job
//     snapshot latching outcome "deadline_exceeded";
//   * the deadline-vs-completion race: a job finishing right at its
//     deadline reports completed or deadline_exceeded, never both and
//     never a torn mix (completed jobs deliver full correct results);
//   * a user cancel() landing after the watchdog already fired keeps the
//     first-latched reason (deadline_exceeded), not cancelled;
//   * stall detection: a job that wedges (epoch frozen while holding a
//     gang) past stall_grace_ms is terminated with reason stalled even
//     though the wedged thread never reaches the queue's abort broadcast —
//     it unwinds via the metric_scope abort hint + operation_cancelled;
//   * the watchdog never fires on jobs that finish in time, and the engine
//     stays fully usable after every termination.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "asyncgt.hpp"
#include "baselines/serial_bfs.hpp"
#include "telemetry/metric_scope.hpp"
#include "util/cache_line.hpp"
#include "util/cancellation.hpp"

namespace asyncgt {
namespace {

traversal_options threads(std::size_t n) {
  return traversal_options{}.with_threads(n);
}

// Self-sustaining ring (engine_test's idiom): every visit pushes its
// successor, so the traversal never terminates on its own.
struct ring_state {
  std::uint64_t n = 0;
  std::vector<padded<std::uint64_t>> visits_per_thread;
  ring_state(std::uint64_t size, std::size_t nthreads)
      : n(size), visits_per_thread(nthreads) {}
};

struct ring_visitor {
  std::uint32_t vtx{};
  std::uint32_t vertex() const noexcept { return vtx; }
  std::uint32_t priority() const noexcept { return 0; }
  template <typename State, typename Queue>
  void visit(State& s, Queue& q, std::size_t tid) const {
    ++s.visits_per_thread[tid].value;
    q.push(ring_visitor{static_cast<std::uint32_t>((vtx + 1) % s.n)});
  }
};

template <typename Engine>
auto submit_ring(Engine& eng, traversal_options opts) {
  return eng.template submit_traversal<ring_visitor>(
      std::move(opts), ring_state(1 << 10, 4),
      [](auto& q, auto&) { q.push(ring_visitor{0}); },
      [](ring_state&, queue_run_stats stats) { return stats.visits; });
}

TEST(Watchdog, DeadlineTerminatesANeverEndingJob) {
  engine eng({.pool_threads = 4,
              .defaults = threads(4),
              .watchdog_sample_interval_ms = 5});
  auto j = submit_ring(eng, threads(4).with_deadline_ms(60));
  try {
    j.get();
    FAIL() << "expected traversal_aborted";
  } catch (const traversal_aborted& e) {
    EXPECT_EQ(e.reason(), abort_reason::deadline_exceeded);
    EXPECT_NE(std::string(e.what()).find("deadline"), std::string::npos);
  }
  const auto js = j.stats();
  EXPECT_EQ(js.outcome, "deadline_exceeded");
  EXPECT_EQ(js.deadline_ms, 60u);
  EXPECT_TRUE(js.cancelled) << "deadline termination is a cancellation kind";
  EXPECT_FALSE(js.failed);
  EXPECT_GE(eng.watchdog_deadline_fires(), 1u);

  // The engine survives: the next job completes bit-identically.
  const csr32 g = rmat_graph<vertex32>(rmat_a(9));
  const auto r = eng.submit_bfs(g, vertex32{0}).get();
  EXPECT_EQ(r.level, serial_bfs(g, vertex32{0}).level);
  eng.wait_idle();
  const auto sc = eng.counters();
  EXPECT_EQ(sc.deadline_exceeded, 1u);
  EXPECT_EQ(sc.completed, 1u);
  EXPECT_EQ(sc.active, 0u);
}

TEST(Watchdog, LateUserCancelAfterDeadlineFireKeepsDeadlineReason) {
  engine eng({.pool_threads = 4,
              .defaults = threads(4),
              .watchdog_sample_interval_ms = 5});
  auto j = submit_ring(eng, threads(4).with_deadline_ms(40));
  // Wait until the watchdog has definitely fired, then pile a user cancel
  // on top: the first-latched reason must win everywhere.
  while (eng.watchdog_deadline_fires() == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  j.cancel();
  try {
    j.get();
    FAIL() << "expected traversal_aborted";
  } catch (const traversal_aborted& e) {
    EXPECT_EQ(e.reason(), abort_reason::deadline_exceeded)
        << "late cancel() must not overwrite the latched deadline reason";
  }
  EXPECT_EQ(j.stats().outcome, "deadline_exceeded");
  eng.wait_idle();
  const auto sc = eng.counters();
  EXPECT_EQ(sc.deadline_exceeded, 1u);
  EXPECT_EQ(sc.cancelled, 0u);
}

// The deadline-vs-completion race, iterated: jobs sized so the deadline
// lands inside the run's natural duration on some iterations. Whatever the
// interleaving, the outcome is exactly one of completed/deadline_exceeded,
// and a completed job's result is the full correct fixed point.
TEST(Watchdog, CompletionAtDeadlineIsNeverBothAndNeverTorn) {
  engine eng({.pool_threads = 4,
              .defaults = threads(4),
              .watchdog_sample_interval_ms = 1});
  const csr32 g = rmat_graph<vertex32>(rmat_a(12));
  const auto expected = serial_bfs(g, vertex32{0});

  std::uint64_t completed = 0, deadlined = 0;
  for (int i = 0; i < 24; ++i) {
    // 1..4ms: straddles this graph's BFS runtime on most machines.
    auto j = eng.submit_bfs(g, vertex32{0},
                            threads(4).with_deadline_ms(1 + (i % 4)));
    try {
      const auto r = j.get();
      // Completed at (or near) the deadline instant: the result must be
      // the complete fixed point, not a partially-cancelled label array.
      EXPECT_EQ(r.level, expected.level);
      EXPECT_EQ(j.stats().outcome, "completed");
      EXPECT_FALSE(j.stats().cancelled);
      ++completed;
    } catch (const traversal_aborted& e) {
      EXPECT_EQ(e.reason(), abort_reason::deadline_exceeded);
      EXPECT_EQ(j.stats().outcome, "deadline_exceeded");
      ++deadlined;
    }
  }
  eng.wait_idle();
  const auto sc = eng.counters();
  EXPECT_EQ(sc.completed, completed);
  EXPECT_EQ(sc.deadline_exceeded, deadlined);
  EXPECT_EQ(sc.completed + sc.deadline_exceeded, 24u)
      << "every job accounted exactly once";
}

// ---- stall detection ----------------------------------------------------

// Wedge visitor: inspects some edges (advancing the progress epoch), then
// blocks indefinitely — exactly the shape of a read stuck in the kernel.
// The queue's abort broadcast can't unwind a thread that never returns to
// the queue, so the only way out is the cooperative cancellation hint the
// watchdog raises on the job's metric_scope.
struct wedge_state {};

struct wedge_visitor {
  std::uint32_t vtx{};
  std::uint32_t vertex() const noexcept { return vtx; }
  std::uint32_t priority() const noexcept { return 0; }
  template <typename State, typename Queue>
  void visit(State&, Queue&, std::size_t) const {
    telemetry::metric_scope::count_edges(64);  // visible progress first
    while (!telemetry::metric_scope::current_abort_requested()) {
      std::this_thread::sleep_for(std::chrono::microseconds(100));
    }
    throw operation_cancelled("wedge visitor: abort hint observed");
  }
};

TEST(Watchdog, StallGraceTerminatesAWedgedJobViaTheAbortHint) {
  engine eng({.pool_threads = 4,
              .defaults = threads(4),
              .watchdog_sample_interval_ms = 5});
  auto j = eng.submit_traversal<wedge_visitor>(
      threads(4).with_stall_grace_ms(50),
      wedge_state{}, [](auto& q, auto&) { q.push(wedge_visitor{0}); },
      [](wedge_state&, queue_run_stats stats) { return stats.visits; });
  try {
    j.get();
    FAIL() << "expected traversal_aborted";
  } catch (const traversal_aborted& e) {
    EXPECT_EQ(e.reason(), abort_reason::stalled);
    EXPECT_NE(std::string(e.what()).find("stalled"), std::string::npos);
  }
  EXPECT_EQ(j.stats().outcome, "stalled");
  EXPECT_GE(eng.watchdog_stall_fires(), 1u);
  eng.wait_idle();
  const auto sc = eng.counters();
  EXPECT_EQ(sc.stalled, 1u);
  EXPECT_EQ(sc.active, 0u);
}

// A healthy job under both a deadline and a stall grace completes normally:
// neither trigger fires, and the snapshot carries the configured deadline.
TEST(Watchdog, HealthyJobUnderDeadlineAndGraceCompletesUntouched) {
  engine eng({.pool_threads = 4, .defaults = threads(4)});
  const csr32 g = rmat_graph<vertex32>(rmat_a(10));
  auto j = eng.submit_bfs(
      g, vertex32{0},
      threads(4).with_deadline_ms(60000).with_stall_grace_ms(60000));
  const auto r = j.get();
  EXPECT_EQ(r.level, serial_bfs(g, vertex32{0}).level);
  const auto js = j.stats();
  EXPECT_EQ(js.outcome, "completed");
  EXPECT_EQ(js.deadline_ms, 60000u);
  EXPECT_EQ(eng.watchdog_deadline_fires(), 0u);
  EXPECT_EQ(eng.watchdog_stall_fires(), 0u);
}

// A deadline must cover queue wait, not just run time: with the whole pool
// wedged by one gang, a queued job burns its budget in FIFO admission and
// the watchdog fires — and latches reason deadline_exceeded — while the
// job has never held a gang. (Delivery still rides the gang's unwind, so
// the hog is cancelled after the fire to let the pool drain.)
TEST(Watchdog, DeadlineCoversQueueWait) {
  engine eng({.pool_threads = 4,
              .defaults = threads(4),
              .watchdog_sample_interval_ms = 5});
  auto hog = submit_ring(eng, threads(4));
  while (hog.pending() == 0) {
  }
  auto starved = submit_ring(eng, threads(4).with_deadline_ms(40));
  // The fire must happen while the starved job is still queued behind the
  // hog — the hog carries no deadline, so any fire is the starved job's.
  while (eng.watchdog_deadline_fires() == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  hog.cancel();
  try {
    starved.get();
    FAIL() << "expected traversal_aborted";
  } catch (const traversal_aborted& e) {
    EXPECT_EQ(e.reason(), abort_reason::deadline_exceeded)
        << "budget burned queued must read as a deadline, not a cancel";
  }
  EXPECT_EQ(starved.stats().outcome, "deadline_exceeded");
  EXPECT_THROW(hog.get(), traversal_aborted);
  eng.wait_idle();
  const auto sc = eng.counters();
  EXPECT_EQ(sc.deadline_exceeded, 1u);
  EXPECT_EQ(sc.cancelled, 1u);
  EXPECT_EQ(eng.pool().queued_gangs(), 0u) << "no gang leaked by the "
                                              "starved job's termination";
}

}  // namespace
}  // namespace asyncgt
