// Overload acceptance (ctest -L overload, tools/overload_soak.sh): the
// engine under 4x pool oversubscription with mixed priorities, injected
// stalls, and tight deadlines. The PR's acceptance criteria, asserted
// in-binary:
//
//   * every admitted job either completes bit-identically (BFS levels ==
//     the serial baseline) or terminates with a typed reason;
//   * exact conservation: submitted == rejected + completed + failed +
//     cancelled + deadline_exceeded + stalled + shed at quiescence;
//   * no deadlock (the test finishing is the assertion) and no leaked
//     gang: the pool's gang queue is empty and a fresh job still runs.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "asyncgt.hpp"
#include "baselines/serial_bfs.hpp"
#include "telemetry/metric_scope.hpp"
#include "util/cancellation.hpp"

namespace asyncgt {
namespace {

using service::admission_policy;
using service::admission_rejected;

traversal_options threads(std::size_t n) {
  return traversal_options{}.with_threads(n);
}

std::uint64_t terminal_sum(const engine::service_counters& c) {
  return c.rejected + c.active + c.completed + c.failed + c.cancelled +
         c.deadline_exceeded + c.stalled + c.shed;
}

// A job that wedges forever after a little visible progress — the
// overload mix's "stuck I/O" stand-in, unwound only by the watchdog's
// cooperative abort hint (same seam as the fault injector's stall mode).
struct wedge_state {};
struct wedge_visitor {
  std::uint32_t vtx{};
  std::uint32_t vertex() const noexcept { return vtx; }
  std::uint32_t priority() const noexcept { return 0; }
  template <typename State, typename Queue>
  void visit(State&, Queue&, std::size_t) const {
    telemetry::metric_scope::count_edges(16);
    while (!telemetry::metric_scope::current_abort_requested()) {
      std::this_thread::sleep_for(std::chrono::microseconds(100));
    }
    throw operation_cancelled("overload wedge: abort hint observed");
  }
};

// 4x oversubscription: a 4-thread pool, 2-thread gangs, 16 concurrent
// submitters — at any instant at most 2 gangs run and the rest queue.
// Every 5th job wedges (stall_grace unwinds it); everything carries a
// deadline generous enough for the healthy jobs to finish even queued.
TEST(Overload, OversubscribedMixTerminatesTypedAndConserves) {
  engine eng({.pool_threads = 4,
              .defaults = threads(2),
              .max_pending_jobs = 0,  // no admission bound: pure overload
              .watchdog_sample_interval_ms = 5});
  const csr32 g = rmat_graph<vertex32>(rmat_a(10));
  const auto expected = serial_bfs(g, vertex32{0});

  constexpr int kJobs = 16;
  std::vector<std::thread> submitters;
  std::atomic<std::uint64_t> ok{0}, deadlined{0}, stalled{0};
  for (int i = 0; i < kJobs; ++i) {
    submitters.emplace_back([&, i] {
      // Mixed priorities ride along even without a shed policy: the
      // snapshot must carry them through untouched.
      auto opts = threads(2)
                      .with_priority(1 - (i % 3))
                      .with_deadline_ms(20000)
                      .with_stall_grace_ms(100);
      if (i % 5 == 4) {
        auto j = eng.submit_traversal<wedge_visitor>(
            std::move(opts), wedge_state{},
            [](auto& q, auto&) { q.push(wedge_visitor{0}); },
            [](wedge_state&, queue_run_stats stats) { return stats.visits; });
        try {
          j.get();
          ADD_FAILURE() << "wedged job " << i << " cannot complete";
        } catch (const traversal_aborted& e) {
          EXPECT_TRUE(e.reason() == abort_reason::stalled ||
                      e.reason() == abort_reason::deadline_exceeded)
              << "job " << i << ": " << e.what();
          (e.reason() == abort_reason::stalled ? stalled : deadlined)
              .fetch_add(1);
        }
      } else {
        auto j = eng.submit_bfs(g, vertex32{0}, std::move(opts));
        try {
          const auto r = j.get();
          EXPECT_EQ(r.level, expected.level)
              << "job " << i << " completed with a torn result";
          ok.fetch_add(1);
        } catch (const traversal_aborted& e) {
          // Tolerated only as a typed deadline (queueing under 4x load).
          EXPECT_EQ(e.reason(), abort_reason::deadline_exceeded)
              << "job " << i << ": " << e.what();
          deadlined.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : submitters) t.join();
  eng.wait_idle();

  const auto sc = eng.counters();
  EXPECT_EQ(sc.submitted, static_cast<std::uint64_t>(kJobs));
  EXPECT_EQ(sc.active, 0u);
  EXPECT_EQ(sc.submitted, terminal_sum(sc)) << "conservation violated";
  EXPECT_EQ(sc.completed, ok.load());
  EXPECT_EQ(sc.deadline_exceeded, deadlined.load());
  EXPECT_EQ(sc.stalled, stalled.load());
  EXPECT_GE(sc.stalled + sc.deadline_exceeded, 3u)
      << "the injected wedges must have been terminated";

  // No leaked gang: the pool drained and still serves fresh work.
  EXPECT_EQ(eng.pool().queued_gangs(), 0u);
  EXPECT_EQ(eng.submit_bfs(g, vertex32{0}).get().level, expected.level);
}

// The full stack at once: admission bound + shed policy + deadlines +
// wedges, hammered from concurrent submitters. Rejections are part of the
// conservation law; nothing may be double- or un-accounted.
TEST(Overload, ShedPolicyUnderChurnKeepsConservationExact) {
  engine eng({.pool_threads = 4,
              .defaults = threads(2),
              .max_pending_jobs = 4,
              .admission = admission_policy::shed_lowest_priority,
              .watchdog_sample_interval_ms = 5});
  const csr32 g = rmat_graph<vertex32>(rmat_a(9));
  const auto expected = serial_bfs(g, vertex32{0});

  constexpr int kJobs = 24;
  std::vector<std::thread> submitters;
  std::atomic<std::uint64_t> rejected{0};
  for (int i = 0; i < kJobs; ++i) {
    submitters.emplace_back([&, i] {
      const auto opts = threads(2)
                            .with_priority(1 - (i % 3))
                            .with_deadline_ms(20000)
                            .with_stall_grace_ms(200);
      try {
        auto j = eng.submit_bfs(g, vertex32{0}, opts);
        try {
          const auto r = j.get();
          EXPECT_EQ(r.level, expected.level);
        } catch (const traversal_aborted& e) {
          EXPECT_NE(e.reason(), abort_reason::none)
              << "job " << i << " aborted without a typed reason";
        }
      } catch (const admission_rejected&) {
        rejected.fetch_add(1);
      }
    });
  }
  for (auto& t : submitters) t.join();
  eng.wait_idle();

  const auto sc = eng.counters();
  EXPECT_EQ(sc.submitted, static_cast<std::uint64_t>(kJobs));
  EXPECT_EQ(sc.rejected, rejected.load());
  EXPECT_EQ(sc.active, 0u);
  EXPECT_EQ(sc.submitted, terminal_sum(sc)) << "conservation violated";
  // A shed request may race its victim's natural completion (classification
  // is from what the job delivered), so requests bound outcomes from above.
  EXPECT_LE(sc.shed, sc.shed_requests);
  EXPECT_EQ(eng.pool().queued_gangs(), 0u);
}

}  // namespace
}  // namespace asyncgt
