// Job-scoped telemetry through the service layer (ISSUE 6 tentpole).
// Covered here:
//
//   * the conservation invariant at engine level: J concurrent mixed jobs'
//     per-job visit/push counters sum EXACTLY to the shared registry's
//     deltas (the same records are mirrored into both sinks — no sampling,
//     no drift). Runs under tsan via the tsan preset;
//   * job handles expose stats(): id, label, terminal flags, counters, and
//     lifecycle latencies that are consistent (total >= wait, total >= run);
//   * a handle's stats() observed right after get() returns already shows
//     the terminal snapshot (completion accounting strictly precedes
//     promise fulfillment);
//   * the completed-job ring (engine::recent_jobs) retains the last N
//     summaries and evicts the oldest;
//   * engine-lifetime lifecycle histograms sample once per completed job;
//   * cancelled and failed jobs latch the matching flags (cancelled wins
//     over failed for a cancellation abort);
//   * completed jobs land lifecycle spans (submit->admit->gang-run) on
//     their own Chrome-trace track.
#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "asyncgt.hpp"
#include "baselines/serial_bfs.hpp"
#include "baselines/serial_cc.hpp"
#include "baselines/serial_sssp.hpp"
#include "util/cache_line.hpp"

namespace asyncgt {
namespace {

traversal_options threads(std::size_t n) {
  return traversal_options{}.with_threads(n);
}

// ---- conservation -------------------------------------------------------

TEST(JobStats, ConcurrentJobsConserveAgainstTheSharedRegistry) {
  telemetry::metrics_registry reg(8);
  engine eng({.pool_threads = 8, .defaults = threads(2).with_metrics(&reg)});
  const csr32 g = add_weights(rmat_graph_undirected<vertex32>(rmat_a(10)),
                              weight_scheme::uniform, 3);

  const std::uint64_t visits_before = reg.get_counter("queue.visits").total();
  const std::uint64_t pushes_before = reg.get_counter("queue.pushes").total();

  // Four genuinely-overlapping mixed jobs on one pool (2 lanes each, 8
  // slots): the per-job attribution must tell their counters apart even
  // though every lane writes the same shared registry.
  auto b0 = eng.submit_bfs(g, vertex32{0});
  auto s1 = eng.submit_sssp(g, vertex32{1});
  auto c2 = eng.submit_cc(g);
  auto b3 = eng.submit_bfs(g, vertex32{2});

  EXPECT_EQ(b0.get().level, serial_bfs(g, vertex32{0}).level);
  EXPECT_EQ(s1.get().dist, dijkstra_sssp(g, vertex32{1}).dist);
  EXPECT_EQ(c2.get().num_components(), serial_cc(g).num_components());
  EXPECT_EQ(b3.get().level, serial_bfs(g, vertex32{2}).level);
  eng.wait_idle();

  const std::vector<service::job_stats> all{b0.stats(), s1.stats(),
                                            c2.stats(), b3.stats()};
  std::uint64_t sum_visits = 0;
  std::uint64_t sum_pushes = 0;
  std::set<std::uint64_t> ids;
  for (const auto& js : all) {
    EXPECT_TRUE(js.completed);
    EXPECT_FALSE(js.failed);
    EXPECT_FALSE(js.cancelled);
    EXPECT_GT(js.visits, 0u);
    sum_visits += js.visits;
    sum_pushes += js.pushes;
    ids.insert(js.job_id);
    // Lifecycle consistency: both phases fit inside the total.
    EXPECT_GE(js.total_seconds + 1e-9, js.queue_wait_seconds);
    EXPECT_GE(js.total_seconds + 1e-9, js.run_seconds);
    // In-memory jobs never touch the SEM charge path.
    EXPECT_EQ(js.io_ops, 0u);
    EXPECT_EQ(js.io_bytes, 0u);
  }
  EXPECT_EQ(ids.size(), 4u) << "job ids must be distinct";
  EXPECT_EQ(all[0].label, "bfs");
  EXPECT_EQ(all[1].label, "sssp");
  EXPECT_EQ(all[2].label, "cc");

  // The invariant is exact equality, not approximation: every visit/push
  // was recorded into its job's scope AND the shared registry.
  EXPECT_EQ(sum_visits,
            reg.get_counter("queue.visits").total() - visits_before);
  EXPECT_EQ(sum_pushes,
            reg.get_counter("queue.pushes").total() - pushes_before);
  EXPECT_EQ(reg.get_counter("service.jobs.completed").total(), 4u);
}

TEST(JobStats, StatsAfterGetShowsTheTerminalSnapshot) {
  engine eng({.pool_threads = 4, .defaults = threads(4)});
  const csr32 g = rmat_graph<vertex32>(rmat_a(9));
  // get() must not return before the job's accounting retired it: a caller
  // that asks for stats() immediately afterwards sees the final state, on
  // every iteration, not just when the completing thread wins a race.
  for (int i = 0; i < 16; ++i) {
    auto j = eng.submit_bfs(g, vertex32{0});
    (void)j.get();
    const auto js = j.stats();
    EXPECT_TRUE(js.completed) << "iteration " << i;
    EXPECT_GT(js.visits, 0u);
    EXPECT_GT(js.total_seconds, 0.0);
  }
}

// ---- the completed-job ring ---------------------------------------------

TEST(JobStats, RecentJobsRingRetainsTheLastNAndEvictsTheOldest) {
  engine::config c;
  c.pool_threads = 4;
  c.defaults = threads(4);
  c.completed_ring = 2;
  engine eng(std::move(c));
  const csr32 g = rmat_graph<vertex32>(rmat_a(9));

  std::vector<std::uint64_t> submitted;
  for (int i = 0; i < 3; ++i) {
    auto j = eng.submit_bfs(g, vertex32{0});
    (void)j.get();
    submitted.push_back(j.stats().job_id);
  }
  eng.wait_idle();

  const auto recent = eng.recent_jobs();
  ASSERT_EQ(recent.size(), 2u);
  // Sequential jobs retire in submission order: the first was evicted.
  EXPECT_EQ(recent[0].job_id, submitted[1]);
  EXPECT_EQ(recent[1].job_id, submitted[2]);
  for (const auto& js : recent) {
    EXPECT_TRUE(js.completed);
    EXPECT_EQ(js.label, "bfs");
    EXPECT_GT(js.visits, 0u);
  }
}

TEST(JobStats, ZeroRingDisablesRetention) {
  engine::config c;
  c.pool_threads = 4;
  c.defaults = threads(4);
  c.completed_ring = 0;
  engine eng(std::move(c));
  const csr32 g = rmat_graph<vertex32>(rmat_a(9));
  (void)eng.submit_bfs(g, vertex32{0}).get();
  eng.wait_idle();
  EXPECT_TRUE(eng.recent_jobs().empty());
}

TEST(JobStats, LifecycleHistogramsSampleOncePerCompletedJob) {
  engine eng({.pool_threads = 4, .defaults = threads(4)});
  const csr32 g = rmat_graph<vertex32>(rmat_a(9));
  for (int i = 0; i < 5; ++i) (void)eng.submit_bfs(g, vertex32{0}).get();
  eng.wait_idle();

  const auto life = eng.lifecycle();
  EXPECT_EQ(life.total_us.total(), 5u);
  EXPECT_EQ(life.queue_wait_us.total(), 5u);
  EXPECT_EQ(life.run_us.total(), 5u);
  EXPECT_EQ(eng.jobs_completed(), 5u);
}

// ---- terminal flags -----------------------------------------------------

// Self-sustaining ring (the cancellation idiom from engine_test): only the
// abort broadcast ends it.
struct ring_state {
  std::uint64_t n = 0;
  std::vector<padded<std::uint64_t>> visits_per_thread;
  ring_state(std::uint64_t size, std::size_t nthreads)
      : n(size), visits_per_thread(nthreads) {}
};

struct ring_visitor {
  std::uint32_t vtx{};
  std::uint32_t vertex() const noexcept { return vtx; }
  std::uint32_t priority() const noexcept { return 0; }
  template <typename State, typename Queue>
  void visit(State& s, Queue& q, std::size_t tid) const {
    ++s.visits_per_thread[tid].value;
    q.push(ring_visitor{static_cast<std::uint32_t>((vtx + 1) % s.n)});
  }
};

TEST(JobStats, CancelledJobLatchesTheCancelledFlagNotFailed) {
  engine eng({.pool_threads = 4, .defaults = threads(4)});
  auto j = eng.submit_traversal<ring_visitor>(
      threads(4), ring_state(1 << 10, 4),
      [](auto& q, auto&) { q.push(ring_visitor{0}); },
      [](ring_state&, queue_run_stats stats) { return stats.visits; });
  while (j.pending() == 0) {
  }
  j.cancel();
  EXPECT_THROW(j.get(), traversal_aborted);

  const auto js = j.stats();
  EXPECT_TRUE(js.cancelled);
  EXPECT_FALSE(js.failed) << "a cancellation is not a failure";
  EXPECT_FALSE(js.completed);
  EXPECT_EQ(js.outcome, "cancelled");
  eng.wait_idle();
  // The terminal snapshot also landed in the ring with the same flags.
  const auto recent = eng.recent_jobs();
  ASSERT_EQ(recent.size(), 1u);
  EXPECT_TRUE(recent[0].cancelled);
  EXPECT_FALSE(recent[0].failed);
}

// Implicit-binary-tree visitor with one bomb vertex (engine_test's
// failure-containment idiom).
struct bomb_state {
  std::uint64_t n = 0;
  std::uint32_t bomb = ~std::uint32_t{0};
  bomb_state(std::uint64_t size, std::uint32_t b) : n(size), bomb(b) {}
};

struct bomb_visitor {
  std::uint32_t vtx{};
  std::uint32_t depth{};
  std::uint32_t vertex() const noexcept { return vtx; }
  std::uint32_t priority() const noexcept { return depth; }
  template <typename State, typename Queue>
  void visit(State& s, Queue& q, std::size_t) const {
    if (vtx == s.bomb) throw std::runtime_error("bomb vertex visited");
    const std::uint64_t left = 2ULL * vtx + 1;
    const std::uint64_t right = 2ULL * vtx + 2;
    if (left < s.n) {
      q.push(bomb_visitor{static_cast<std::uint32_t>(left), depth + 1});
    }
    if (right < s.n) {
      q.push(bomb_visitor{static_cast<std::uint32_t>(right), depth + 1});
    }
  }
};

// Regression: the terminal flags are latched once from what the job
// delivered, not derived from whether cancel() was ever requested — so a
// cancel() landing after the job already completed must not flip a
// successful job's snapshot to cancelled.
TEST(JobStats, LateCancelAfterCompletionStaysCompleted) {
  engine eng({.pool_threads = 4, .defaults = threads(4)});
  const csr32 g = rmat_graph<vertex32>(rmat_a(9));
  auto j = eng.submit_bfs(g, vertex32{0});
  (void)j.get();
  j.cancel();  // too late: the outcome is already latched

  const auto js = j.stats();
  EXPECT_TRUE(js.completed);
  EXPECT_FALSE(js.cancelled);
  EXPECT_FALSE(js.failed);
  EXPECT_EQ(js.outcome, "completed")
      << "a late cancel must not relabel a completed job";
}

TEST(JobStats, FailedJobLatchesTheFailedFlagNotCancelled) {
  engine eng({.pool_threads = 4, .defaults = threads(4)});
  auto j = eng.submit_traversal<bomb_visitor>(
      threads(4), bomb_state(1 << 14, 7777),
      [](auto& q, auto&) { q.push(bomb_visitor{0, 0}); },
      [](bomb_state&, queue_run_stats stats) { return stats.visits; });
  EXPECT_THROW(j.get(), traversal_aborted);

  const auto js = j.stats();
  EXPECT_TRUE(js.failed);
  EXPECT_FALSE(js.cancelled);
  EXPECT_FALSE(js.completed);
  EXPECT_EQ(js.outcome, "failed");
}

// ---- lifecycle spans ----------------------------------------------------

TEST(JobStats, CompletedJobsLandLifecycleSpansOnTheirOwnTrack) {
  telemetry::trace_writer tw("job-spans-test");
  traversal_options defaults = threads(4);
  defaults.queue.trace = &tw;
  engine eng({.pool_threads = 4, .defaults = defaults});
  const csr32 g = rmat_graph<vertex32>(rmat_a(9));

  auto j = eng.submit_bfs(g, vertex32{0});
  (void)j.get();
  eng.wait_idle();
  const std::uint64_t id = j.stats().job_id;

  const telemetry::json_value doc = tw.to_json();
  bool lifecycle = false;
  bool admit = false;
  for (const auto& ev : doc.find("traceEvents")->as_array()) {
    const telemetry::json_value* n = ev.find("name");
    if (n == nullptr || !n->is_string()) continue;
    if (n->as_string() == "bfs #" + std::to_string(id)) lifecycle = true;
    if (n->as_string() == "admit") admit = true;
  }
  EXPECT_TRUE(lifecycle) << "parent lifecycle span missing from the trace";
  EXPECT_TRUE(admit) << "admit child span missing from the trace";
}

}  // namespace
}  // namespace asyncgt
