// Contract of the service's gang scheduler (service/worker_pool.hpp): FIFO
// block dispatch, grow-only spawning with a frozen-when-warm lifetime
// counter, completion hooks that run before wait() returns, and a
// destructor that drains every queued gang. These are the properties the
// engine's job scheduler and the zero-spawns-after-warm-up acceptance test
// are built on, so they get direct coverage below the traversal layer.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstddef>
#include <stdexcept>
#include <thread>
#include <vector>

#include "service/worker_pool.hpp"

namespace asyncgt::service {
namespace {

TEST(WorkerPool, RunsEverySlotExactlyOnce) {
  worker_pool pool(4);
  std::vector<std::atomic<int>> hits(16);
  auto t = pool.submit(hits.size(),
                       [&](std::size_t slot) { ++hits[slot]; });
  pool.wait(t);
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(WorkerPool, SpawnCounterGrowsOnDemandAndThenFreezes) {
  worker_pool pool(2);
  EXPECT_EQ(pool.size(), 2u);
  EXPECT_EQ(pool.threads_spawned(), 2u);

  // A gang wider than the pool grows it (the FIFO progress guarantee
  // requires at least `count` threads)...
  pool.wait(pool.submit(6, [](std::size_t) {}));
  EXPECT_EQ(pool.size(), 6u);
  EXPECT_EQ(pool.threads_spawned(), 6u);

  // ...and every narrower or equal gang afterwards reuses warm threads:
  // the lifetime counter must not move again.
  for (int i = 0; i < 8; ++i) {
    pool.wait(pool.submit(6, [](std::size_t) {}));
    pool.wait(pool.submit(3, [](std::size_t) {}));
  }
  EXPECT_EQ(pool.threads_spawned(), 6u);
  EXPECT_EQ(pool.gangs_completed(), 17u);
}

TEST(WorkerPool, FifoBlockDispatchSerializesOversizedLoad) {
  // Gang A occupies the entire pool, parked on a gate. Gang B is queued
  // behind it: with no spare threads, FIFO block dispatch means not one B
  // item may start until A releases.
  worker_pool pool(4);
  std::atomic<bool> gate{false};
  std::atomic<int> a_started{0};
  std::atomic<int> b_started{0};

  auto a = pool.submit(4, [&](std::size_t) {
    ++a_started;
    while (!gate.load()) std::this_thread::yield();
  });
  auto b = pool.submit(4, [&](std::size_t) { ++b_started; });

  while (a_started.load() < 4) std::this_thread::yield();
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_EQ(b_started.load(), 0) << "gang B ran while A held every thread";

  gate.store(true);
  pool.wait(a);
  pool.wait(b);
  EXPECT_EQ(b_started.load(), 4);
}

TEST(WorkerPool, ConcurrentGangsOverlapWhenThreadsAreFree) {
  // Two half-width gangs in an oversized pool must genuinely overlap: each
  // gang's items park until they have seen a live item of the *other* gang,
  // which can only terminate if both run at once.
  worker_pool pool(8);
  std::atomic<int> a_live{0};
  std::atomic<int> b_live{0};
  auto a = pool.submit(4, [&](std::size_t) {
    ++a_live;
    while (b_live.load() == 0) std::this_thread::yield();
  });
  auto b = pool.submit(4, [&](std::size_t) {
    ++b_live;
    while (a_live.load() == 0) std::this_thread::yield();
  });
  pool.wait(a);
  pool.wait(b);
  EXPECT_EQ(a_live.load(), 4);
  EXPECT_EQ(b_live.load(), 4);
}

TEST(WorkerPool, OnCompleteRunsOnceBeforeWaitReturns) {
  worker_pool pool(4);
  std::atomic<int> body_runs{0};
  std::atomic<int> completions{0};
  int seen_at_completion = -1;
  auto t = pool.submit(
      8, [&](std::size_t) { ++body_runs; },
      [&] {
        seen_at_completion = body_runs.load();
        ++completions;
      });
  pool.wait(t);
  EXPECT_EQ(completions.load(), 1);
  EXPECT_EQ(seen_at_completion, 8) << "on_complete ran before the last item";
}

TEST(WorkerPool, DestructorDrainsQueuedGangs) {
  // Submit a burst and destroy the pool immediately: shutdown must still
  // run every queued item (abandoning them would park sibling traversal
  // lanes forever), then join.
  std::atomic<int> runs{0};
  {
    worker_pool pool(2);
    for (int i = 0; i < 16; ++i) {
      pool.submit(2, [&](std::size_t) {
        std::this_thread::sleep_for(std::chrono::microseconds(200));
        ++runs;
      });
    }
  }
  EXPECT_EQ(runs.load(), 32);
}

TEST(WorkerPool, EmptyGangIsRejected) {
  worker_pool pool(1);
  EXPECT_THROW(pool.submit(0, [](std::size_t) {}), std::invalid_argument);
}

TEST(WorkerPool, ManyGangsStress) {
  worker_pool pool(8);
  std::atomic<std::uint64_t> total{0};
  std::vector<worker_pool::ticket> tickets;
  tickets.reserve(64);
  for (int i = 0; i < 64; ++i) {
    tickets.push_back(pool.submit(
        1 + static_cast<std::size_t>(i % 8),
        [&](std::size_t slot) { total += slot + 1; }));
  }
  for (const auto& t : tickets) pool.wait(t);
  // sum over gangs of 1+2+...+count
  std::uint64_t expect = 0;
  for (int i = 0; i < 64; ++i) {
    const std::uint64_t c = 1 + static_cast<std::uint64_t>(i % 8);
    expect += c * (c + 1) / 2;
  }
  EXPECT_EQ(total.load(), expect);
  EXPECT_EQ(pool.gangs_completed(), 64u);
  EXPECT_EQ(pool.threads_spawned(), 8u);
}

}  // namespace
}  // namespace asyncgt::service
