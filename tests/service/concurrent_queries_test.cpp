// Concurrent queries over one shared graph — the workload the service
// exists for (docs/service_api.md). N simultaneous BFS / SSSP / CC jobs on
// a single engine must each reach exactly the fixed point the serial
// baselines compute, over one shared in-memory graph and over one shared
// semi-external graph + ssd_model + block_cache — with and without fault
// injection on the storage path. Per-job isolation is the property under
// test: jobs share the pool, the graph, and the cache, but nothing else.
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstddef>
#include <filesystem>
#include <string>
#include <vector>

#include "asyncgt.hpp"
#include "baselines/serial_bfs.hpp"
#include "baselines/serial_cc.hpp"
#include "baselines/serial_sssp.hpp"
#include "telemetry/io_recorder.hpp"

namespace asyncgt {
namespace {

class ConcurrentQueries : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("agt_concurrent_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
    // Undirected + weighted so every algorithm is meaningful on one graph.
    g_ = add_weights(rmat_graph_undirected<vertex32>(rmat_a(10)),
                     weight_scheme::uniform, 3);
    path_ = (dir_ / "g.agt").string();
    write_graph(path_, g_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  static traversal_options threads(std::size_t n) {
    return traversal_options{}.with_threads(n);
  }

  /// Fires 2×BFS + SSSP + CC on `eng` over `graph` at once, then checks
  /// every result against the serial baselines on the in-memory twin.
  template <typename Graph>
  void run_four_jobs(engine& eng, const Graph& graph) {
    auto b0 = eng.submit_bfs(graph, vertex32{0});
    auto b1 = eng.submit_bfs(graph, start1_);
    auto ss = eng.submit_sssp(graph, vertex32{0});
    auto cc = eng.submit_cc(graph);

    EXPECT_EQ(b0.get().level, serial_bfs(g_, vertex32{0}).level);
    EXPECT_EQ(b1.get().level, serial_bfs(g_, start1_).level);
    EXPECT_EQ(ss.get().dist, dijkstra_sssp(g_, vertex32{0}).dist);
    EXPECT_EQ(cc.get().num_components(), serial_cc(g_).num_components());
    eng.wait_idle();  // accounting retires a beat after get() returns
    EXPECT_EQ(eng.active_jobs(), 0u);
  }

  std::filesystem::path dir_;
  csr32 g_;
  std::string path_;
  vertex32 start1_ = 1;
};

TEST_F(ConcurrentQueries, MixedJobsOverOneInMemoryGraph) {
  // Pool wide enough for all four jobs to genuinely overlap.
  engine eng({.pool_threads = 16, .defaults = threads(4)});
  run_four_jobs(eng, g_);
  EXPECT_EQ(eng.jobs_submitted(), 4u);
  EXPECT_EQ(eng.pool().threads_spawned(), 16u);
}

TEST_F(ConcurrentQueries, MixedJobsOverOneSharedSemGraphAndCache) {
  // One device model, one block cache, one sem graph — all four jobs read
  // through them concurrently (the bench's shared-residency scenario).
  sem::ssd_model dev(sem::device_preset_by_name("intel", 0.01));
  sem::block_cache cache(64);
  sem::sem_csr32 sg(path_, &dev, &cache);

  engine eng({.pool_threads = 16, .defaults = threads(4)});
  run_four_jobs(eng, sg);
  EXPECT_GT(cache.counters().hits, 0u);
}

TEST_F(ConcurrentQueries, SharedSemGraphUnderTransientFaultsIsExact) {
  // Every read through the shared storage draws from the fault injector;
  // the retry policy must keep all four concurrent jobs byte-exact, with
  // recovery visible only in io telemetry.
  sem::fault_config fc;
  fc.seed = 7;
  fc.p_eio = 0.4;
  fc.p_eagain = 0.1;
  fc.p_short = 0.2;
  fc.fail_attempts = 2;
  sem::fault_injector inj(fc);
  telemetry::io_recorder rec;
  sem::block_cache cache(64);
  sem::sem_csr32 sg(path_, nullptr, &cache);
  sem::io_retry_policy retry;
  retry.max_retries = 4;
  retry.backoff_initial_us = 1;
  retry.backoff_max_us = 20;
  sg.set_retry_policy(retry);
  sg.set_fault_injector(&inj);
  sg.set_io_recorder(&rec);

  engine eng({.pool_threads = 16, .defaults = threads(4)});
  run_four_jobs(eng, sg);

  const auto io = rec.snapshot();
  EXPECT_GT(inj.counters().errors, 0u);
  EXPECT_GT(io.retries, 0u);
  EXPECT_EQ(io.gave_up, 0u);
}

TEST_F(ConcurrentQueries, FatalFaultKillsItsJobWhileSiblingsFinish) {
  // Two views of the same file: one healthy, one with a non-retryable
  // injector. Jobs over the poisoned view abort; concurrent jobs over the
  // healthy view (same engine, same pool) must not notice.
  sem::fault_config fc;
  fc.seed = 11;
  fc.p_eio = 0.5;
  fc.fatal = true;
  sem::fault_injector inj(fc);
  sem::sem_csr32 poisoned(path_);
  poisoned.set_fault_injector(&inj);
  sem::sem_csr32 healthy(path_);

  engine eng({.pool_threads = 16, .defaults = threads(4)});
  auto good_bfs = eng.submit_bfs(healthy, vertex32{0});
  auto bad_bfs = eng.submit_bfs(poisoned, vertex32{0});
  auto good_cc = eng.submit_cc(healthy);
  auto bad_sssp = eng.submit_sssp(poisoned, vertex32{0});

  EXPECT_THROW(bad_bfs.get(), traversal_aborted);
  EXPECT_THROW(bad_sssp.get(), traversal_aborted);
  EXPECT_EQ(good_bfs.get().level, serial_bfs(g_, vertex32{0}).level);
  EXPECT_EQ(good_cc.get().num_components(), serial_cc(g_).num_components());

  // The engine keeps serving after burying both failed jobs.
  EXPECT_EQ(eng.submit_bfs(healthy, vertex32{0}).get().level,
            serial_bfs(g_, vertex32{0}).level);
}

TEST_F(ConcurrentQueries, RepeatedWavesKeepThePoolWarm) {
  // Three waves of four concurrent jobs: after the first wave the pool must
  // never spawn again — the service-reuse guarantee under a live mix.
  engine eng({.pool_threads = 16, .defaults = threads(4)});
  run_four_jobs(eng, g_);
  const std::uint64_t warm = eng.pool().threads_spawned();
  run_four_jobs(eng, g_);
  run_four_jobs(eng, g_);
  EXPECT_EQ(eng.pool().threads_spawned(), warm);
  EXPECT_EQ(eng.jobs_submitted(), 12u);
}

}  // namespace
}  // namespace asyncgt
