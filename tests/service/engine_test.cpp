// asyncgt::engine — the session API of the traversal service
// (docs/service_api.md). Covered here:
//
//   * the PR acceptance criterion: a warm engine running 8 back-to-back
//     BFS jobs spawns threads exactly once, visible both on the pool's
//     lifetime counter and the service.pool.spawned_threads gauge;
//   * option resolution (submit opts win, engine defaults fill sinks);
//   * every named submit_* agrees with the serial baselines;
//   * cooperative cancellation through the job handle (surfaces as
//     traversal_aborted, engine stays reusable);
//   * per-job failure containment: a worker fault or a fatal SEM I/O error
//     kills only its own job, concurrent jobs and later jobs are untouched.
#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <stdexcept>
#include <string>
#include <vector>

#include "asyncgt.hpp"
#include "baselines/serial_bfs.hpp"
#include "baselines/serial_cc.hpp"
#include "baselines/serial_sssp.hpp"
#include "util/cache_line.hpp"

namespace asyncgt {
namespace {

traversal_options threads(std::size_t n) {
  return traversal_options{}.with_threads(n);
}

// ---- acceptance: zero spawns after warm-up ------------------------------

TEST(Engine, WarmPoolSpawnsThreadsExactlyOnceAcrossEightJobs) {
  telemetry::metrics_registry reg(8);
  engine::config c;
  c.pool_threads = 8;
  c.defaults = threads(8).with_metrics(&reg);
  engine eng(std::move(c));
  EXPECT_EQ(eng.pool().threads_spawned(), 8u);

  const csr32 g = rmat_graph<vertex32>(rmat_a(10));
  const auto expected = serial_bfs(g, vertex32{0});
  for (int i = 0; i < 8; ++i) {
    const auto r = eng.submit_bfs(g, vertex32{0}).get();
    EXPECT_EQ(r.level, expected.level);
  }

  // The pool never re-spawned: lifetime counter frozen at the pool width,
  // and the service gauge the engine stamps into the job registry agrees.
  EXPECT_EQ(eng.pool().threads_spawned(), 8u);
  EXPECT_EQ(reg.get_gauge("service.pool.spawned_threads").get(), 8);
  EXPECT_EQ(reg.get_counter("service.jobs").total(), 8u);
  EXPECT_EQ(eng.jobs_submitted(), 8u);
  // get() returns as the result is set, a beat before the job's accounting
  // retires it — quiesce before reading the active counter.
  eng.wait_idle();
  EXPECT_EQ(eng.active_jobs(), 0u);
}

TEST(Engine, PoolGrowsToWidestJobThenStaysWarm) {
  engine eng;  // no pre-warm: grows on demand
  const csr32 g = rmat_graph<vertex32>(rmat_a(9));
  eng.submit_bfs(g, vertex32{0}, threads(4)).get();
  EXPECT_EQ(eng.pool().threads_spawned(), 4u);
  eng.submit_bfs(g, vertex32{0}, threads(8)).get();
  EXPECT_EQ(eng.pool().threads_spawned(), 8u);
  // Narrower and equal jobs afterwards reuse the warm threads.
  eng.submit_bfs(g, vertex32{0}, threads(2)).get();
  eng.submit_bfs(g, vertex32{0}, threads(8)).get();
  EXPECT_EQ(eng.pool().threads_spawned(), 8u);
}

TEST(Engine, SubmitOptionsWinAndDefaultSinksFillGaps) {
  telemetry::metrics_registry reg(8);
  engine::config c;
  c.defaults = threads(2).with_metrics(&reg);
  engine eng(std::move(c));

  const csr32 g = rmat_graph<vertex32>(rmat_a(9));
  // Per-submit options carry no metrics sink: the engine must fill it from
  // its defaults, so the job still lands in `reg`.
  eng.submit_bfs(g, vertex32{0}, threads(4)).get();
  EXPECT_EQ(reg.get_counter("service.jobs").total(), 1u);
  // ...and the submit's thread count (not the default 2) sized the job.
  EXPECT_EQ(eng.pool().threads_spawned(), 4u);
}

// ---- the named submits agree with the serial baselines ------------------

TEST(Engine, NamedSubmitsMatchSerialBaselines) {
  engine eng({.pool_threads = 8, .defaults = threads(8)});
  const csr32 g = add_weights(rmat_graph_undirected<vertex32>(rmat_a(10)),
                              weight_scheme::uniform, 3);

  const auto bfs = eng.submit_bfs(g, vertex32{0}).get();
  EXPECT_EQ(bfs.level, serial_bfs(g, vertex32{0}).level);

  const auto sssp = eng.submit_sssp(g, vertex32{0}).get();
  EXPECT_EQ(sssp.dist, dijkstra_sssp(g, vertex32{0}).dist);

  const auto cc = eng.submit_cc(g).get();
  EXPECT_EQ(cc.num_components(), serial_cc(g).num_components());

  const std::vector<vertex32> sources{0, 1, 2};
  const auto ms = eng.submit_multi_source_bfs(g, sources).get();
  EXPECT_EQ(ms.level[0], 0u);
  EXPECT_EQ(ms.level[1], 0u);
  EXPECT_EQ(ms.level[2], 0u);

  const auto pr = eng.submit_pagerank(g, pagerank_options{}).get();
  EXPECT_EQ(pr.rank.size(), g.num_vertices());

  const auto kc = eng.submit_kcore(g).get();
  EXPECT_EQ(kc.core.size(), g.num_vertices());

  // Per-job stats ride in every result.
  EXPECT_GT(bfs.stats.visits, 0u);
  EXPECT_GT(cc.stats.visits, 0u);
}

// ---- cancellation -------------------------------------------------------

// Self-sustaining ring: every visit pushes its successor, so the traversal
// never terminates on its own — the only way out is the abort broadcast.
struct ring_state {
  std::uint64_t n = 0;
  std::vector<padded<std::uint64_t>> visits_per_thread;
  ring_state(std::uint64_t size, std::size_t nthreads)
      : n(size), visits_per_thread(nthreads) {}
};

struct ring_visitor {
  std::uint32_t vtx{};
  std::uint32_t vertex() const noexcept { return vtx; }
  std::uint32_t priority() const noexcept { return 0; }
  template <typename State, typename Queue>
  void visit(State& s, Queue& q, std::size_t tid) const {
    ++s.visits_per_thread[tid].value;
    q.push(ring_visitor{static_cast<std::uint32_t>((vtx + 1) % s.n)});
  }
};

TEST(Engine, CancelUnwindsANeverTerminatingJob) {
  engine eng({.pool_threads = 4, .defaults = threads(4)});
  auto j = eng.submit_traversal<ring_visitor>(
      threads(4), ring_state(1 << 10, 4),
      [](auto& q, auto&) { q.push(ring_visitor{0}); },
      [](ring_state& s, queue_run_stats) {
        std::uint64_t total = 0;
        for (const auto& v : s.visits_per_thread) total += v.value;
        return total;
      });

  // Let it spin for a moment, then pull the plug through the handle.
  while (j.pending() == 0) {
  }
  EXPECT_FALSE(j.done());
  j.cancel();
  try {
    j.get();
    FAIL() << "expected traversal_aborted";
  } catch (const traversal_aborted& e) {
    EXPECT_NE(std::string(e.what()).find("cancelled"), std::string::npos);
  }

  // The engine (and its pool) survive: a fresh job on the same engine runs
  // to the correct fixed point with no new threads.
  const csr32 g = rmat_graph<vertex32>(rmat_a(9));
  const auto r = eng.submit_bfs(g, vertex32{0}).get();
  EXPECT_EQ(r.level, serial_bfs(g, vertex32{0}).level);
  EXPECT_EQ(eng.pool().threads_spawned(), 4u);
}

TEST(Engine, CancelAfterCompletionIsANoOp) {
  engine eng({.pool_threads = 4, .defaults = threads(4)});
  const csr32 g = rmat_graph<vertex32>(rmat_a(9));
  auto j = eng.submit_bfs(g, vertex32{0});
  j.wait();
  EXPECT_TRUE(j.done());
  j.cancel();  // idempotent, must not poison the delivered result
  EXPECT_EQ(j.get().level, serial_bfs(g, vertex32{0}).level);
}

// ---- failure containment ------------------------------------------------

// Implicit-binary-tree visitor with one bomb vertex (the traversal_abort
// test's idiom): detonation aborts the traversal mid-flight.
struct bomb_state {
  std::uint64_t n = 0;
  std::uint32_t bomb = ~std::uint32_t{0};
  bomb_state(std::uint64_t size, std::uint32_t b) : n(size), bomb(b) {}
};

struct bomb_visitor {
  std::uint32_t vtx{};
  std::uint32_t depth{};
  std::uint32_t vertex() const noexcept { return vtx; }
  std::uint32_t priority() const noexcept { return depth; }
  template <typename State, typename Queue>
  void visit(State& s, Queue& q, std::size_t) const {
    if (vtx == s.bomb) throw std::runtime_error("bomb vertex visited");
    const std::uint64_t left = 2ULL * vtx + 1;
    const std::uint64_t right = 2ULL * vtx + 2;
    if (left < s.n) {
      q.push(bomb_visitor{static_cast<std::uint32_t>(left), depth + 1});
    }
    if (right < s.n) {
      q.push(bomb_visitor{static_cast<std::uint32_t>(right), depth + 1});
    }
  }
};

TEST(Engine, WorkerFaultKillsOnlyItsOwnJob) {
  engine eng({.pool_threads = 8, .defaults = threads(4)});
  const csr32 g = rmat_graph<vertex32>(rmat_a(11));
  const auto expected = serial_bfs(g, vertex32{0});

  // A healthy BFS and a doomed job in flight together on one pool.
  auto good = eng.submit_bfs(g, vertex32{0});
  auto doomed = eng.submit_traversal<bomb_visitor>(
      threads(4), bomb_state(1 << 14, 7777),
      [](auto& q, auto&) { q.push(bomb_visitor{0, 0}); },
      [](bomb_state&, queue_run_stats stats) { return stats.visits; });

  try {
    doomed.get();
    FAIL() << "expected traversal_aborted";
  } catch (const traversal_aborted& e) {
    ASSERT_TRUE(e.cause());
    EXPECT_THROW(std::rethrow_exception(e.cause()), std::runtime_error);
  }
  // The concurrent job never noticed.
  EXPECT_EQ(good.get().level, expected.level);

  // And the engine serves the next query cleanly.
  EXPECT_EQ(eng.submit_bfs(g, vertex32{0}).get().level, expected.level);
}

TEST(Engine, FatalSemFaultSurfacesThroughJobHandle) {
  const auto dir = std::filesystem::temp_directory_path() /
                   ("agt_engine_fatal_" + std::to_string(::getpid()));
  std::filesystem::create_directories(dir);
  const csr32 g = rmat_graph<vertex32>(rmat_a(9));
  const std::string path = (dir / "g.agt").string();
  write_graph(path, g);

  sem::fault_config fc;
  fc.seed = 7;
  fc.p_eio = 0.5;
  fc.fatal = true;  // non-retryable: the job must abort, not absorb
  sem::fault_injector inj(fc);
  sem::sem_csr32 faulty(path);
  faulty.set_fault_injector(&inj);

  engine eng({.pool_threads = 8, .defaults = threads(8)});
  auto j = eng.submit_bfs(faulty, vertex32{0});
  EXPECT_THROW(j.get(), traversal_aborted);

  // Same engine, healthy storage: service unaffected by the dead job.
  sem::sem_csr32 clean(path);
  const auto r = eng.submit_bfs(clean, vertex32{0}).get();
  EXPECT_EQ(r.level, serial_bfs(g, vertex32{0}).level);
  std::filesystem::remove_all(dir);
}

// ---- free functions ride the process-default engine ---------------------

TEST(Engine, FreeFunctionsReuseTheProcessDefaultPool) {
  const csr32 g = rmat_graph<vertex32>(rmat_a(9));
  async_bfs(g, vertex32{0}, threads(4));  // warm-up at width 4
  const std::uint64_t warm =
      engine::process_default().pool().threads_spawned();
  for (int i = 0; i < 4; ++i) async_bfs(g, vertex32{0}, threads(4));
  EXPECT_EQ(engine::process_default().pool().threads_spawned(), warm);
}

}  // namespace
}  // namespace asyncgt
