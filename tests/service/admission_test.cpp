// Admission control and backpressure (engine::config's overload knobs,
// src/service/admission.hpp) — the tentpole's load-shedding layer:
//
//   * reject: a submit past max_pending_jobs throws a typed
//     admission_rejected (kind queue_full) without touching the pool;
//   * block: the submit parks on the completion CV and is admitted as soon
//     as a slot frees; with admission_timeout_ms it gives up typed
//     (kind timeout) instead of waiting forever;
//   * shed-lowest-priority: an over-bound submit evicts the lowest
//     strictly-lower-priority active job (outcome "shed"), and refuses
//     typed (kind no_shed_victim) when every active job is >= priority;
//   * memory budget: a submit whose declared estimate does not fit the
//     uncommitted remainder is refused at admission (kind memory_budget),
//     never OOM-killed mid-flight; an estimate over the whole budget is
//     refused even on an idle engine;
//   * conservation: submitted == rejected + active + completed + failed +
//     cancelled + deadline_exceeded + stalled + shed at quiescence, and
//     the service.rejected/shed metric family mirrors the counters.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "asyncgt.hpp"
#include "baselines/serial_bfs.hpp"
#include "util/cache_line.hpp"

namespace asyncgt {
namespace {

using service::admission_policy;
using service::admission_rejected;

traversal_options threads(std::size_t n) {
  return traversal_options{}.with_threads(n);
}

std::uint64_t terminal_sum(const engine::service_counters& c) {
  return c.rejected + c.active + c.completed + c.failed + c.cancelled +
         c.deadline_exceeded + c.stalled + c.shed;
}

// Self-sustaining ring traversal: runs until cancelled (engine_test idiom).
struct ring_state {
  std::uint64_t n = 0;
  std::vector<padded<std::uint64_t>> visits_per_thread;
  ring_state(std::uint64_t size, std::size_t nthreads)
      : n(size), visits_per_thread(nthreads) {}
};

struct ring_visitor {
  std::uint32_t vtx{};
  std::uint32_t vertex() const noexcept { return vtx; }
  std::uint32_t priority() const noexcept { return 0; }
  template <typename State, typename Queue>
  void visit(State& s, Queue& q, std::size_t tid) const {
    ++s.visits_per_thread[tid].value;
    q.push(ring_visitor{static_cast<std::uint32_t>((vtx + 1) % s.n)});
  }
};

auto submit_ring(engine& eng, traversal_options opts) {
  return eng.submit_traversal<ring_visitor>(
      std::move(opts), ring_state(1 << 10, 4),
      [](auto& q, auto&) { q.push(ring_visitor{0}); },
      [](ring_state&, queue_run_stats stats) { return stats.visits; });
}

TEST(Admission, RejectPolicyThrowsTypedWhenTheBoundIsHit) {
  engine eng({.pool_threads = 4,
              .defaults = threads(4),
              .max_pending_jobs = 1,
              .admission = admission_policy::reject});
  auto hog = submit_ring(eng, threads(4));
  const csr32 g = rmat_graph<vertex32>(rmat_a(9));
  try {
    (void)eng.submit_bfs(g, vertex32{0});
    FAIL() << "expected admission_rejected";
  } catch (const admission_rejected& e) {
    EXPECT_EQ(e.why(), admission_rejected::kind::queue_full);
    EXPECT_NE(std::string(e.what()).find("queue_full"), std::string::npos);
  }
  hog.cancel();
  EXPECT_THROW(hog.get(), traversal_aborted);
  eng.wait_idle();

  // The rejected submit never held a slot: the freed engine admits again.
  EXPECT_EQ(eng.submit_bfs(g, vertex32{0}).get().level,
            serial_bfs(g, vertex32{0}).level);
  const auto sc = eng.counters();
  EXPECT_EQ(sc.submitted, 3u);
  EXPECT_EQ(sc.rejected, 1u);
  EXPECT_EQ(sc.cancelled, 1u);
  EXPECT_EQ(sc.completed, 1u);
  EXPECT_EQ(sc.submitted, terminal_sum(sc));
}

TEST(Admission, BlockPolicyAdmitsWhenASlotFrees) {
  engine eng({.pool_threads = 4,
              .defaults = threads(4),
              .max_pending_jobs = 1,
              .admission = admission_policy::block});
  auto hog = submit_ring(eng, threads(4));
  while (hog.pending() == 0) {
  }

  // The blocked submit must park (not throw) and complete once the hog is
  // cancelled out of its slot.
  const csr32 g = rmat_graph<vertex32>(rmat_a(9));
  const auto expected = serial_bfs(g, vertex32{0});
  std::thread unblocker([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    hog.cancel();
  });
  const auto r = eng.submit_bfs(g, vertex32{0}).get();  // parks ~50ms
  EXPECT_EQ(r.level, expected.level);
  unblocker.join();
  EXPECT_THROW(hog.get(), traversal_aborted);
  eng.wait_idle();
  const auto sc = eng.counters();
  EXPECT_EQ(sc.submitted, 2u);
  EXPECT_EQ(sc.rejected, 0u);
  EXPECT_EQ(sc.submitted, terminal_sum(sc));
}

TEST(Admission, BlockPolicyTimesOutTyped) {
  engine eng({.pool_threads = 4,
              .defaults = threads(4),
              .max_pending_jobs = 1,
              .admission = admission_policy::block,
              .admission_timeout_ms = 50});
  auto hog = submit_ring(eng, threads(4));
  const csr32 g = rmat_graph<vertex32>(rmat_a(9));
  const auto t0 = std::chrono::steady_clock::now();
  try {
    (void)eng.submit_bfs(g, vertex32{0});
    FAIL() << "expected admission_rejected";
  } catch (const admission_rejected& e) {
    EXPECT_EQ(e.why(), admission_rejected::kind::timeout);
  }
  const auto waited = std::chrono::steady_clock::now() - t0;
  EXPECT_GE(waited, std::chrono::milliseconds(45));
  hog.cancel();
  EXPECT_THROW(hog.get(), traversal_aborted);
}

TEST(Admission, ShedEvictsTheLowestPriorityVictim) {
  engine eng({.pool_threads = 4,
              .defaults = threads(4),
              .max_pending_jobs = 1,
              .admission = admission_policy::shed_lowest_priority});
  auto low = submit_ring(eng, threads(4).with_priority(-1));
  while (low.pending() == 0) {
  }

  // A higher-priority submit sheds the low job and takes its place.
  const csr32 g = rmat_graph<vertex32>(rmat_a(10));
  auto high = eng.submit_bfs(g, vertex32{0}, threads(4).with_priority(1));
  EXPECT_EQ(high.get().level, serial_bfs(g, vertex32{0}).level);
  try {
    low.get();
    FAIL() << "expected traversal_aborted";
  } catch (const traversal_aborted& e) {
    EXPECT_EQ(e.reason(), abort_reason::shed);
  }
  EXPECT_EQ(low.stats().outcome, "shed");
  EXPECT_EQ(low.stats().priority, -1);
  eng.wait_idle();
  const auto sc = eng.counters();
  EXPECT_EQ(sc.shed, 1u);
  EXPECT_EQ(sc.shed_requests, 1u);
  EXPECT_EQ(sc.completed, 1u);
  EXPECT_EQ(sc.submitted, terminal_sum(sc));
}

TEST(Admission, ShedRefusesTypedWithoutAStrictlyLowerVictim) {
  engine eng({.pool_threads = 4,
              .defaults = threads(4),
              .max_pending_jobs = 1,
              .admission = admission_policy::shed_lowest_priority});
  auto peer = submit_ring(eng, threads(4).with_priority(0));
  const csr32 g = rmat_graph<vertex32>(rmat_a(9));
  try {
    // Equal priority: shedding would let jobs evict their own class and
    // livelock the service under symmetric load.
    (void)eng.submit_bfs(g, vertex32{0}, threads(4).with_priority(0));
    FAIL() << "expected admission_rejected";
  } catch (const admission_rejected& e) {
    EXPECT_EQ(e.why(), admission_rejected::kind::no_shed_victim);
  }
  peer.cancel();
  EXPECT_THROW(peer.get(), traversal_aborted);
  eng.wait_idle();
  EXPECT_EQ(eng.counters().shed, 0u);
}

// ---- memory budget ------------------------------------------------------

TEST(Admission, EstimateOverTheWholeBudgetIsRefusedEvenWhenIdle) {
  engine eng({.pool_threads = 4,
              .defaults = threads(4),
              .admission = admission_policy::reject,
              .memory_budget_bytes = 1 << 20});
  const csr32 g = rmat_graph<vertex32>(rmat_a(9));
  try {
    (void)eng.submit_bfs(g, vertex32{0},
                         threads(4).with_memory_estimate(2 << 20));
    FAIL() << "expected admission_rejected";
  } catch (const admission_rejected& e) {
    EXPECT_EQ(e.why(), admission_rejected::kind::memory_budget);
  }
  // A fitting job is admitted; the graph's resident size feeds estimates.
  EXPECT_GT(g.resident_bytes(), 0u);
  auto r = eng.submit_bfs(g, vertex32{0},
                          threads(4).with_memory_estimate(1 << 19));
  EXPECT_EQ(r.get().level, serial_bfs(g, vertex32{0}).level);
  eng.wait_idle();
  EXPECT_EQ(eng.counters().memory_committed_bytes, 0u)
      << "completed jobs release their commitment";
}

TEST(Admission, CommittedEstimatesGateConcurrentAdmission) {
  engine eng({.pool_threads = 4,
              .defaults = threads(4),
              .admission = admission_policy::reject,
              .memory_budget_bytes = 1 << 20});
  // 768 KiB committed: a second 768 KiB job no longer fits the remainder.
  auto hog = submit_ring(eng, threads(4).with_memory_estimate(768 << 10));
  EXPECT_EQ(eng.counters().memory_committed_bytes,
            static_cast<std::uint64_t>(768 << 10));
  const csr32 g = rmat_graph<vertex32>(rmat_a(9));
  try {
    (void)eng.submit_bfs(g, vertex32{0},
                         threads(4).with_memory_estimate(768 << 10));
    FAIL() << "expected admission_rejected";
  } catch (const admission_rejected& e) {
    EXPECT_EQ(e.why(), admission_rejected::kind::memory_budget);
  }
  hog.cancel();
  EXPECT_THROW(hog.get(), traversal_aborted);
  eng.wait_idle();
  EXPECT_EQ(eng.counters().memory_committed_bytes, 0u);
  const auto sc = eng.counters();
  EXPECT_EQ(sc.submitted, terminal_sum(sc));
}

// ---- metrics mirror -----------------------------------------------------

TEST(Admission, RejectionsLandOnTheServiceMetricFamily) {
  telemetry::metrics_registry reg(8);
  engine eng({.pool_threads = 4,
              .defaults = threads(4).with_metrics(&reg),
              .max_pending_jobs = 1,
              .admission = admission_policy::reject});
  auto hog = submit_ring(eng, threads(4));
  const csr32 g = rmat_graph<vertex32>(rmat_a(9));
  EXPECT_THROW((void)eng.submit_bfs(g, vertex32{0}), admission_rejected);
  EXPECT_THROW((void)eng.submit_bfs(g, vertex32{0}), admission_rejected);
  EXPECT_EQ(reg.get_counter("service.rejected").total(), 2u);
  hog.cancel();
  EXPECT_THROW(hog.get(), traversal_aborted);
  eng.wait_idle();
  EXPECT_EQ(eng.counters().rejected, 2u);
}

}  // namespace
}  // namespace asyncgt
