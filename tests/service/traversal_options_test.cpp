// traversal_options is the one per-job configuration surface (satellite of
// the service PR): it must convert implicitly from visitor_queue_config so
// every pre-service call site keeps compiling, and from_flags must be the
// single source of truth for the CLI knobs agt_tool and the bench harnesses
// share (threads / flush-batch / io-retries / io-backoff-us, with SEM-mode
// defaults).
#include <gtest/gtest.h>

#include <cstddef>

#include "service/traversal_options.hpp"
#include "telemetry/metrics_registry.hpp"
#include "util/options.hpp"

namespace asyncgt {
namespace {

// Stand-in for async_bfs(g, start, opts): pre-service call sites pass a raw
// visitor_queue_config here and must keep compiling via the implicit
// conversion.
std::size_t takes_options(traversal_options o) { return o.queue.num_threads; }

TEST(TraversalOptions, ImplicitConversionFromQueueConfig) {
  visitor_queue_config cfg;
  cfg.num_threads = 12;
  cfg.flush_batch = 7;
  EXPECT_EQ(takes_options(cfg), 12u);

  const traversal_options o = cfg;  // copy-initialization, not explicit
  EXPECT_EQ(o.queue.flush_batch, 7u);
  // The SEM knobs keep their defaults — the queue config never carried them.
  EXPECT_EQ(o.io_retries, 4u);
  EXPECT_EQ(o.io_backoff_us, 50u);
}

TEST(TraversalOptions, BuildersChain) {
  telemetry::metrics_registry reg(4);
  const traversal_options o =
      traversal_options{}.with_threads(9).with_flush_batch(2).with_metrics(
          &reg);
  EXPECT_EQ(o.queue.num_threads, 9u);
  EXPECT_EQ(o.queue.flush_batch, 2u);
  EXPECT_EQ(o.queue.metrics, &reg);
  o.validate();
}

TEST(TraversalOptions, FromFlagsImDefaults) {
  const char* argv[] = {"prog"};
  const options opt(1, argv);
  const traversal_options o = traversal_options::from_flags(opt);
  EXPECT_EQ(o.queue.num_threads, 16u);
  EXPECT_EQ(o.queue.flush_batch, 64u);
  EXPECT_FALSE(o.queue.secondary_vertex_sort);
  EXPECT_EQ(o.io_retries, 4u);
  EXPECT_EQ(o.io_backoff_us, 50u);
}

TEST(TraversalOptions, FromFlagsSemDefaults) {
  // SEM mode: per-push delivery (batching delay fragments the semi-sorted
  // visit order the block cache depends on) and the secondary vertex sort.
  const char* argv[] = {"prog"};
  const options opt(1, argv);
  const traversal_options o = traversal_options::from_flags(opt, true);
  EXPECT_EQ(o.queue.flush_batch, 1u);
  EXPECT_TRUE(o.queue.secondary_vertex_sort);
  EXPECT_EQ(o.queue.num_threads, 16u);
}

TEST(TraversalOptions, FromFlagsParsesEveryKnob) {
  const char* argv[] = {"prog", "--threads=7", "--flush-batch=3",
                        "--io-retries=9", "--io-backoff-us=123"};
  const options opt(5, argv);
  const traversal_options o = traversal_options::from_flags(opt);
  EXPECT_EQ(o.queue.num_threads, 7u);
  EXPECT_EQ(o.queue.flush_batch, 3u);
  EXPECT_EQ(o.io_retries, 9u);
  EXPECT_EQ(o.io_backoff_us, 123u);

  // Explicit flags beat the SEM-mode flush-batch default too.
  const traversal_options sem = traversal_options::from_flags(opt, true);
  EXPECT_EQ(sem.queue.flush_batch, 3u);
  EXPECT_TRUE(sem.queue.secondary_vertex_sort);
}

}  // namespace
}  // namespace asyncgt
