// Block-accounting edge cases for the SEM storage stack: adjacency lists
// spanning device blocks, cache interaction at block boundaries, and the
// device model's multi-block pricing.
#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>

#include "gen/rmat.hpp"
#include "graph/builder.hpp"
#include "graph/graph_io.hpp"
#include "sem/block_cache.hpp"
#include "sem/device_presets.hpp"
#include "sem/sem_csr.hpp"

namespace asyncgt::sem {
namespace {

class SemBlockTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("agt_blk_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::string write(const csr32& g) {
    const std::string p = (dir_ / "g.agt").string();
    write_graph(p, g);
    return p;
  }
  std::filesystem::path dir_;
};

ssd_params tiny_fast() {
  ssd_params p;
  p.read_latency_us = 0.5;
  p.channels = 4;
  return p;
}

TEST_F(SemBlockTest, HugeAdjacencySpansMultipleBlocks) {
  // A star hub with 3000 out-edges = 12000 bytes of targets ~ 3 blocks.
  std::vector<edge<vertex32>> edges;
  for (vertex32 v = 1; v <= 3000; ++v) edges.push_back({0, v, 1});
  const csr32 g = build_csr<vertex32>(3001, std::move(edges));
  ssd_model dev(tiny_fast());
  sem_csr32 sg(write(g), &dev);
  std::uint64_t n = 0;
  sg.for_each_out_edge(0, [&](vertex32, weight_t) { ++n; });
  EXPECT_EQ(n, 3000u);
  const auto c = dev.counters();
  EXPECT_EQ(c.reads, 1u);          // one request...
  EXPECT_EQ(c.read_blocks, 3u);    // ...spanning ceil(12000/4096) blocks
}

TEST_F(SemBlockTest, CacheChargesOnlyMissingBlocks) {
  std::vector<edge<vertex32>> edges;
  for (vertex32 v = 1; v <= 3000; ++v) edges.push_back({0, v, 1});
  const csr32 g = build_csr<vertex32>(3001, std::move(edges));
  ssd_model dev(tiny_fast());
  block_cache cache(1024);
  sem_csr32 sg(write(g), &dev, &cache);
  sg.for_each_out_edge(0, [](vertex32, weight_t) {});
  const std::uint64_t first_blocks = dev.counters().read_blocks;
  EXPECT_GE(first_blocks, 3u);
  // Second scan of the same list: all blocks cached, zero device reads.
  sg.for_each_out_edge(0, [](vertex32, weight_t) {});
  EXPECT_EQ(dev.counters().read_blocks, first_blocks);
}

TEST_F(SemBlockTest, AdjacentVerticesShareBlocks) {
  // Consecutive small adjacency lists live in one 4 KiB block: scanning
  // them in id order must hit the cache almost always (the semi-sort
  // rationale of paper IV-C).
  const csr32 g = rmat_graph<vertex32>(rmat_a(10));
  ssd_model dev(tiny_fast());
  block_cache cache(1 << 16);
  sem_csr32 sg(write(g), &dev, &cache);
  for (vertex32 v = 0; v < g.num_vertices(); ++v) {
    sg.for_each_out_edge(v, [](vertex32, weight_t) {});
  }
  EXPECT_GT(cache.counters().hit_rate(), 0.9);
}

TEST_F(SemBlockTest, WeightedGraphChargesBothColumns) {
  const csr32 g = build_csr<vertex32>(3, {{0, 1, 5}, {0, 2, 9}});
  ssd_model dev(tiny_fast());
  sem_csr32 sg(write(g), &dev);
  sg.for_each_out_edge(0, [](vertex32, weight_t) {});
  EXPECT_EQ(dev.counters().reads, 2u);  // targets + weights
}

TEST_F(SemBlockTest, ZeroDegreeVertexCostsNothing) {
  const csr32 g = build_csr<vertex32>(4, {{0, 1, 1}});
  ssd_model dev(tiny_fast());
  sem_csr32 sg(write(g), &dev);
  sg.for_each_out_edge(3, [](vertex32, weight_t) { FAIL(); });
  EXPECT_EQ(dev.counters().reads, 0u);
}

}  // namespace
}  // namespace asyncgt::sem
