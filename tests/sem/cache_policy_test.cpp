// cache_policy — the admission/eviction seam extracted from block_cache
// (docs/hot_blocks.md). Covered here:
//
//   * replay identity: a block_cache under an explicit lru_policy produces
//     the exact hit/miss/eviction sequence of a reference LRU model over a
//     randomized trace (the seam is behavior-preserving by construction);
//   * pressure-weighted eviction: a pressured block near the recency tail
//     survives eviction while a pressure-free neighbor is sacrificed, with
//     the skipped candidates surfacing as policy_rejects;
//   * bounded scan: a fully-pressured window degrades to least-pressured
//     eviction instead of refusing forever;
//   * prefetch installs: install() is outside the hit/miss ledger, a
//     demand hit redeems the entry, and evicting one un-hit counts as
//     prefetch_wasted;
//   * make_cache_policy name mapping and the unknown-name throw.
#include <gtest/gtest.h>

#include <cstdint>
#include <list>
#include <memory>
#include <unordered_map>
#include <vector>

#include "sem/block_cache.hpp"
#include "sem/block_pressure.hpp"
#include "sem/cache_policy.hpp"
#include "util/rng.hpp"

namespace asyncgt::sem {
namespace {

/// Straight-line reference LRU: std::list recency + map, no policy seam.
class reference_lru {
 public:
  explicit reference_lru(std::uint64_t capacity) : capacity_(capacity) {}

  bool access(std::uint64_t block) {
    auto it = map_.find(block);
    if (it != map_.end()) {
      recency_.splice(recency_.begin(), recency_, it->second);
      return true;
    }
    if (recency_.size() >= capacity_) {
      ++evictions_;
      map_.erase(recency_.back());
      recency_.pop_back();
    }
    recency_.push_front(block);
    map_[block] = recency_.begin();
    return false;
  }

  std::uint64_t evictions() const { return evictions_; }

 private:
  std::uint64_t capacity_;
  std::list<std::uint64_t> recency_;
  std::unordered_map<std::uint64_t, std::list<std::uint64_t>::iterator> map_;
  std::uint64_t evictions_ = 0;
};

TEST(CachePolicy, LruSeamReplaysIdenticallyToReference) {
  constexpr std::uint64_t kCapacity = 16;
  block_cache cache(kCapacity, std::make_unique<lru_policy>());
  EXPECT_STREQ(cache.policy_name(), "lru");
  reference_lru ref(kCapacity);

  xoshiro256ss rng(42);
  for (int i = 0; i < 20000; ++i) {
    // Skewed trace: small working set with a long uniform tail, so hits,
    // misses, and evictions all occur in volume.
    const std::uint64_t block =
        (rng() % 4 == 0) ? rng.next_below(128) : rng.next_below(12);
    ASSERT_EQ(cache.access(block), ref.access(block)) << "op " << i;
  }
  EXPECT_EQ(cache.counters().evictions, ref.evictions());
  EXPECT_EQ(cache.counters().policy_rejects, 0u);
}

TEST(CachePolicy, PressurePolicySparesPressuredBlocks) {
  block_pressure pressure(64);
  block_cache cache(4, std::make_unique<pressure_policy>(&pressure));
  EXPECT_STREQ(cache.policy_name(), "pressure");

  // Fill: recency back-to-front after these accesses is 1, 2, 3, 4.
  for (std::uint64_t b = 1; b <= 4; ++b) cache.access(b);
  // Block 1 sits at the LRU tail but has queued work; 2 is idle.
  pressure.add(1);
  pressure.add(1);

  cache.access(50);  // forces an eviction
  EXPECT_TRUE(cache.contains(1)) << "pressured tail block must survive";
  EXPECT_FALSE(cache.contains(2)) << "idle neighbor is the right victim";
  // One candidate (block 1) was passed over on the way to the victim.
  EXPECT_EQ(cache.counters().policy_rejects, 1u);

  // Drain the pressure: block 1 becomes evictable again.
  pressure.remove(1);
  pressure.remove(1);
  cache.access(51);
  EXPECT_FALSE(cache.contains(1));
}

TEST(CachePolicy, FullyPressuredWindowEvictsLeastPressured) {
  block_pressure pressure(64);
  block_cache cache(3, std::make_unique<pressure_policy>(&pressure));
  for (std::uint64_t b = 1; b <= 3; ++b) cache.access(b);
  // Everything is pressured; block 2 least so.
  pressure.add(1);
  pressure.add(1);
  pressure.add(2);
  pressure.add(3);
  pressure.add(3);
  cache.access(50);
  EXPECT_FALSE(cache.contains(2))
      << "a fully-pressured cache must still evict (least-pressured)";
  EXPECT_TRUE(cache.contains(1));
  EXPECT_TRUE(cache.contains(3));
}

TEST(CachePolicy, NullPressureDegradesToLru) {
  block_cache cache(2, std::make_unique<pressure_policy>(nullptr));
  cache.access(1);
  cache.access(2);
  cache.access(3);
  EXPECT_FALSE(cache.contains(1));  // plain LRU tail eviction
  EXPECT_TRUE(cache.contains(2));
  EXPECT_TRUE(cache.contains(3));
  EXPECT_EQ(cache.counters().policy_rejects, 0u);
}

TEST(CachePolicy, InstallIsOutsideTheDemandLedger) {
  block_cache cache(2);
  EXPECT_TRUE(cache.install(7));
  EXPECT_FALSE(cache.install(7));  // already resident
  auto c = cache.counters();
  EXPECT_EQ(c.hits, 0u);
  EXPECT_EQ(c.misses, 0u);
  EXPECT_EQ(c.prefetch_installs, 1u);
  EXPECT_TRUE(cache.contains(7));

  // A demand access to the installed block is a hit and redeems it: a
  // later eviction is no longer "wasted".
  EXPECT_TRUE(cache.access(7));
  cache.access(8);
  cache.access(9);  // evicts 7 (tail)
  EXPECT_FALSE(cache.contains(7));
  EXPECT_EQ(cache.counters().prefetch_wasted, 0u);
}

TEST(CachePolicy, EvictingUnhitPrefetchCountsAsWasted) {
  block_cache cache(2);
  cache.install(7);
  cache.access(8);
  cache.access(9);  // evicts the never-hit prefetched 7
  EXPECT_FALSE(cache.contains(7));
  auto c = cache.counters();
  EXPECT_EQ(c.prefetch_installs, 1u);
  EXPECT_EQ(c.prefetch_wasted, 1u);
}

TEST(CachePolicy, MakeCachePolicyMapsNames) {
  EXPECT_STREQ(make_cache_policy("")->name(), "lru");
  EXPECT_STREQ(make_cache_policy("lru")->name(), "lru");
  block_pressure p(4);
  EXPECT_STREQ(make_cache_policy("pressure", &p)->name(), "pressure");
  EXPECT_THROW(make_cache_policy("mru"), std::invalid_argument);
}

}  // namespace
}  // namespace asyncgt::sem
