#include "sem/block_cache.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace asyncgt::sem {
namespace {

TEST(BlockCache, ZeroCapacityRejected) {
  EXPECT_THROW(block_cache{0}, std::invalid_argument);
}

TEST(BlockCache, FirstAccessMissesSecondHits) {
  block_cache c(4);
  EXPECT_FALSE(c.access(7));
  EXPECT_TRUE(c.access(7));
  EXPECT_EQ(c.counters().hits, 1u);
  EXPECT_EQ(c.counters().misses, 1u);
}

TEST(BlockCache, EvictsLeastRecentlyUsed) {
  block_cache c(2);
  c.access(1);
  c.access(2);
  c.access(1);      // refresh 1; LRU is now 2
  c.access(3);      // evicts 2
  EXPECT_TRUE(c.access(1));
  EXPECT_TRUE(c.access(3));
  EXPECT_FALSE(c.access(2));  // was evicted
  EXPECT_EQ(c.size(), 2u);
}

TEST(BlockCache, SizeNeverExceedsCapacity) {
  block_cache c(8);
  for (std::uint64_t b = 0; b < 100; ++b) c.access(b);
  EXPECT_EQ(c.size(), 8u);
}

TEST(BlockCache, HitRateComputation) {
  block_cache c(16);
  EXPECT_EQ(c.counters().hit_rate(), 0.0);
  c.access(1);       // miss
  c.access(1);       // hit
  c.access(1);       // hit
  c.access(2);       // miss
  EXPECT_DOUBLE_EQ(c.counters().hit_rate(), 0.5);
}

TEST(BlockCache, ResetAndClear) {
  block_cache c(4);
  c.access(1);
  c.access(1);
  c.reset_counters();
  EXPECT_EQ(c.counters().hits, 0u);
  EXPECT_TRUE(c.access(1));  // contents survived reset_counters
  c.clear();
  EXPECT_EQ(c.size(), 0u);
  EXPECT_FALSE(c.access(1));  // contents gone after clear
}

TEST(BlockCache, SequentialScanWithCapacityHasHighHitRateOnSecondPass) {
  block_cache c(64);
  for (int pass = 0; pass < 2; ++pass) {
    for (std::uint64_t b = 0; b < 64; ++b) c.access(b);
  }
  EXPECT_DOUBLE_EQ(c.counters().hit_rate(), 0.5);  // 64 misses, 64 hits
}

TEST(BlockCache, CountsEvictions) {
  block_cache c(2);
  c.access(1);
  c.access(2);
  EXPECT_EQ(c.counters().evictions, 0u);  // fills, nothing displaced yet
  c.access(3);  // evicts 1
  c.access(4);  // evicts 2
  EXPECT_EQ(c.counters().evictions, 2u);
  c.access(4);  // hit — no eviction
  EXPECT_EQ(c.counters().evictions, 2u);
  c.reset_counters();
  EXPECT_EQ(c.counters().evictions, 0u);
}

TEST(BlockCache, EvictionInvariantUnderChurn) {
  block_cache c(8);
  for (std::uint64_t b = 0; b < 100; ++b) c.access(b);
  const auto counters = c.counters();
  // Every miss either fills a free slot or evicts: misses == evictions +
  // resident blocks.
  EXPECT_EQ(counters.misses, counters.evictions + c.size());
}

TEST(BlockCache, ThreadSafetyUnderConcurrentAccess) {
  block_cache c(128);
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&, t] {
      for (std::uint64_t i = 0; i < 5000; ++i) {
        c.access((i + static_cast<std::uint64_t>(t) * 13) % 256);
      }
    });
  }
  for (auto& th : threads) th.join();
  const auto counters = c.counters();
  EXPECT_EQ(counters.hits + counters.misses, 8u * 5000u);
  EXPECT_LE(c.size(), 128u);
}

}  // namespace
}  // namespace asyncgt::sem
