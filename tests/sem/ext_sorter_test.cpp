#include "sem/ext_sorter.hpp"

#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <filesystem>
#include <random>
#include <vector>

namespace asyncgt::sem {
namespace {

class ExtSorterTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("agt_sort_" + std::to_string(::getpid()));
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::filesystem::path dir_;
};

TEST_F(ExtSorterTest, EmptyInput) {
  ext_sorter<int> s(1024, dir_);
  int count = 0;
  s.merge([&](const int&) { ++count; });
  EXPECT_EQ(count, 0);
}

TEST_F(ExtSorterTest, InMemoryPathWhenUnderBudget) {
  ext_sorter<int> s(1 << 20, dir_);
  for (const int x : {5, 3, 9, 1}) s.add(x);
  EXPECT_EQ(s.stats().runs, 0u);  // no spill
  std::vector<int> out;
  s.merge([&](const int& x) { out.push_back(x); });
  EXPECT_EQ(out, (std::vector<int>{1, 3, 5, 9}));
}

TEST_F(ExtSorterTest, SpillsAndMergesManyRuns) {
  // Budget of 16 ints forces ~60 runs over 1000 records.
  ext_sorter<int> s(16 * sizeof(int), dir_);
  std::mt19937 rng(7);
  std::vector<int> ref;
  for (int i = 0; i < 1000; ++i) {
    const int x = static_cast<int>(rng() % 10000);
    s.add(x);
    ref.push_back(x);
  }
  EXPECT_GT(s.stats().runs, 10u);
  std::sort(ref.begin(), ref.end());
  std::vector<int> out;
  s.merge([&](const int& x) { out.push_back(x); });
  EXPECT_EQ(out, ref);
}

TEST_F(ExtSorterTest, DuplicatesSurviveSorting) {
  ext_sorter<int> s(8 * sizeof(int), dir_);
  for (int i = 0; i < 100; ++i) s.add(42);
  int count = 0;
  s.merge([&](const int& x) {
    EXPECT_EQ(x, 42);
    ++count;
  });
  EXPECT_EQ(count, 100);
}

TEST_F(ExtSorterTest, CustomComparatorDescending) {
  ext_sorter<int, std::greater<int>> s(4 * sizeof(int), dir_);
  for (const int x : {1, 9, 5, 3, 7, 2, 8}) s.add(x);
  std::vector<int> out;
  s.merge([&](const int& x) { out.push_back(x); });
  EXPECT_TRUE(std::is_sorted(out.begin(), out.end(), std::greater<int>()));
  EXPECT_EQ(out.size(), 7u);
}

TEST_F(ExtSorterTest, StructRecordsSortedByCompositeKey) {
  struct rec {
    std::uint32_t a;
    std::uint32_t b;
    bool operator<(const rec& y) const {
      return a != y.a ? a < y.a : b < y.b;
    }
  };
  ext_sorter<rec> s(8 * sizeof(rec), dir_);
  std::mt19937 rng(3);
  for (int i = 0; i < 500; ++i) {
    s.add({static_cast<std::uint32_t>(rng() % 50),
           static_cast<std::uint32_t>(rng() % 50)});
  }
  rec prev{0, 0};
  bool first = true;
  s.merge([&](const rec& r) {
    if (!first) EXPECT_FALSE(r < prev);
    prev = r;
    first = false;
  });
}

TEST_F(ExtSorterTest, MergeTwiceRejected) {
  ext_sorter<int> s(1024, dir_);
  s.add(1);
  s.merge([](const int&) {});
  EXPECT_THROW(s.merge([](const int&) {}), std::logic_error);
}

TEST_F(ExtSorterTest, AddAfterMergeRejected) {
  ext_sorter<int> s(1024, dir_);
  s.merge([](const int&) {});
  EXPECT_THROW(s.add(1), std::logic_error);
}

TEST_F(ExtSorterTest, StatsTrackSpills) {
  ext_sorter<std::uint64_t> s(4 * sizeof(std::uint64_t), dir_);
  for (std::uint64_t i = 0; i < 20; ++i) s.add(i);
  EXPECT_EQ(s.stats().records, 20u);
  EXPECT_EQ(s.stats().runs, 5u);
  EXPECT_EQ(s.stats().spilled_bytes, 20u * sizeof(std::uint64_t));
}

TEST_F(ExtSorterTest, RunFilesCleanedUpOnDestruction) {
  {
    ext_sorter<int> s(4 * sizeof(int), dir_);
    for (int i = 0; i < 64; ++i) s.add(i);
    EXPECT_FALSE(std::filesystem::is_empty(dir_));
  }
  // All run files removed by the destructor.
  std::size_t remaining = 0;
  if (std::filesystem::exists(dir_)) {
    for ([[maybe_unused]] const auto& e :
         std::filesystem::directory_iterator(dir_)) {
      ++remaining;
    }
  }
  EXPECT_EQ(remaining, 0u);
}

}  // namespace
}  // namespace asyncgt::sem
