// sem_config — the one-declaration SEM construction surface
// (docs/hot_blocks.md). Covered here:
//
//   * the default open(): a bare graph, no cache/heat/pressure/advisor/
//     prefetcher, and wire_queue leaving the queue config untouched;
//   * seed-compatible cache sizing (fraction of file_bytes/block + 1, floor
//     of one block) and the explicit with_cache_blocks override;
//   * which configs build the pressure tracker (hot ordering OR the
//     pressure policy) and the advisor (hot ordering only);
//   * wire_queue installing queue_order::hot + the bundle's advisor;
//   * the prefetch lane gating: batching backend AND a cache, never sync;
//   * with_reverse materializing a separate reverse cache/heat pair;
//   * from_options mapping (duck-typed traversal_options shape), including
//     the negative-cache_fraction "caller decides" convention;
//   * unknown policy / backend names throwing at open().
#include "sem/sem_config.hpp"

#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <stdexcept>
#include <string>

#include "core/async_bfs.hpp"
#include "baselines/serial_bfs.hpp"
#include "gen/rmat.hpp"
#include "graph/builder.hpp"
#include "graph/graph_io.hpp"

namespace asyncgt::sem {
namespace {

class SemConfigTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("agt_semcfg_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
    g_ = rmat_graph<vertex32>(rmat_a(8));
    path_ = (dir_ / "g.agt").string();
    write_graph(path_, g_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  csr32 g_;
  std::string path_;
  std::filesystem::path dir_;
};

TEST_F(SemConfigTest, DefaultOpenIsBareGraph) {
  const auto bundle = sem_config(path_).open<vertex32>();
  ASSERT_NE(bundle.graph, nullptr);
  EXPECT_EQ(bundle.graph->num_vertices(), g_.num_vertices());
  EXPECT_EQ(bundle.cache, nullptr);
  EXPECT_EQ(bundle.heat, nullptr);
  EXPECT_EQ(bundle.pressure, nullptr);
  EXPECT_EQ(bundle.advisor, nullptr);
  EXPECT_EQ(bundle.prefetch, nullptr);
  EXPECT_EQ(bundle.reverse_cache, nullptr);

  visitor_queue_config q;
  const queue_order before = q.order;
  bundle.wire_queue(q);
  EXPECT_EQ(q.order, before);
  EXPECT_EQ(q.advisor, nullptr);
}

TEST_F(SemConfigTest, CacheFractionSizesSeedCompatibly) {
  ssd_model dev{ssd_params{}};
  const std::uint64_t bs = dev.params().block_bytes;
  const std::uint64_t file_blocks = std::filesystem::file_size(path_) / bs + 1;

  const auto half = sem_config(path_)
                        .with_device(&dev)
                        .with_cache_fraction(0.5)
                        .open<vertex32>();
  ASSERT_NE(half.cache, nullptr);
  EXPECT_EQ(half.cache->capacity(),
            static_cast<std::uint64_t>(0.5 * static_cast<double>(file_blocks)));
  EXPECT_STREQ(half.cache->policy_name(), "lru");

  // A tiny positive fraction floors to one block, never zero.
  const auto tiny = sem_config(path_)
                        .with_device(&dev)
                        .with_cache_fraction(1e-9)
                        .open<vertex32>();
  ASSERT_NE(tiny.cache, nullptr);
  EXPECT_EQ(tiny.cache->capacity(), 1u);

  // An explicit block count overrides the fraction.
  const auto fixed = sem_config(path_)
                         .with_device(&dev)
                         .with_cache_fraction(0.5)
                         .with_cache_blocks(3)
                         .open<vertex32>();
  ASSERT_NE(fixed.cache, nullptr);
  EXPECT_EQ(fixed.cache->capacity(), 3u);
}

TEST_F(SemConfigTest, PressureBuiltForHotOrderingOrPressurePolicy) {
  // The pressure policy needs the tracker even without hot ordering.
  const auto policy_only = sem_config(path_)
                               .with_cache_fraction(0.5)
                               .with_cache_policy("pressure")
                               .open<vertex32>();
  ASSERT_NE(policy_only.pressure, nullptr);
  ASSERT_NE(policy_only.cache, nullptr);
  EXPECT_STREQ(policy_only.cache->policy_name(), "pressure");
  EXPECT_EQ(policy_only.advisor, nullptr);  // no hot ordering requested

  // Hot ordering needs the tracker even with the plain LRU policy, and is
  // the only thing that builds an advisor.
  const auto hot = sem_config(path_).with_hot_ordering(true, 7).open<vertex32>();
  ASSERT_NE(hot.pressure, nullptr);
  ASSERT_NE(hot.advisor, nullptr);
  EXPECT_EQ(hot.advisor->hot_threshold(), 7u);
}

TEST_F(SemConfigTest, WireQueueInstallsHotOrderAndAdvisor) {
  const auto bundle = sem_config(path_).with_hot_ordering().open<vertex32>();
  visitor_queue_config q;
  bundle.wire_queue(q);
  EXPECT_EQ(q.order, queue_order::hot);
  EXPECT_EQ(q.advisor, bundle.advisor.get());

  // The wired config drives a correct traversal end to end.
  q.num_threads = 4;
  const auto r = async_bfs(*bundle.graph, vertex32{0}, q);
  EXPECT_EQ(r.level, serial_bfs(g_, vertex32{0}).level);
  EXPECT_EQ(bundle.pressure->total_increments(),
            bundle.pressure->total_decrements());
  EXPECT_EQ(bundle.pressure->total_pending(), 0u);
}

TEST_F(SemConfigTest, PrefetchLaneRequiresBatchingBackendAndCache) {
  // Sync backend: the readahead request is ignored (no async lane).
  const auto sync = sem_config(path_)
                        .with_cache_fraction(0.5)
                        .with_prefetch_hot(true)
                        .open<vertex32>();
  EXPECT_EQ(sync.prefetch, nullptr);

  // No cache: nowhere to install readahead results.
  const auto nocache = sem_config(path_)
                           .with_io_backend("coalescing")
                           .with_prefetch_hot(true)
                           .open<vertex32>();
  EXPECT_EQ(nocache.prefetch, nullptr);

  // Batching backend + cache: the lane exists.
  const auto lane = sem_config(path_)
                        .with_cache_fraction(0.5)
                        .with_io_backend("coalescing")
                        .with_prefetch_hot(true)
                        .open<vertex32>();
  EXPECT_NE(lane.prefetch, nullptr);
}

TEST_F(SemConfigTest, ReverseViewGetsItsOwnCacheAndHeat) {
  const std::string p = (dir_ / "rev.agt").string();
  csr32 g = rmat_graph<vertex32>(rmat_a(7));
  write_graph_with_reverse(p, g);
  const auto bundle = sem_config(p)
                          .with_cache_fraction(0.5)
                          .with_heat()
                          .with_reverse()
                          .open<vertex32>();
  ASSERT_TRUE(bundle.graph->has_reverse());
  EXPECT_NE(bundle.reverse_cache, nullptr);
  EXPECT_NE(bundle.reverse_heat, nullptr);
  EXPECT_NE(bundle.reverse_cache.get(), bundle.cache.get());
  // The reverse byte space stays plain LRU regardless of the main policy.
  EXPECT_STREQ(bundle.reverse_cache->policy_name(), "lru");
}

TEST_F(SemConfigTest, FromOptionsMapsTheTraversalOptionsShape) {
  // Duck-typed stand-in for service-layer traversal_options (sem_config
  // deliberately never includes the service layer).
  struct options_shape {
    std::string io_backend = "coalescing";
    std::uint32_t io_batch = 16;
    std::uint32_t io_retries = 7;
    std::uint32_t io_backoff_us = 10;
    visitor_queue_config queue;
    std::uint32_t hot_threshold = 2;
    std::string cache_policy = "pressure";
    bool prefetch_hot = true;
    bool hybrid = false;
    double cache_fraction = -1.0;
  } t;
  t.queue.order = queue_order::hot;

  sem_config c = sem_config::from_options(t, path_);
  EXPECT_EQ(c.path(), path_);
  EXPECT_EQ(c.io_backend_name(), "coalescing");
  EXPECT_EQ(c.io_batch(), 16u);
  EXPECT_TRUE(c.hot_ordering());
  EXPECT_EQ(c.hot_threshold(), 2u);
  EXPECT_EQ(c.cache_policy(), "pressure");
  EXPECT_TRUE(c.prefetch_hot());
  // Negative cache_fraction means "caller decides": the builder default (0,
  // no cache) survives until the call site resolves its own default.
  EXPECT_EQ(c.cache_fraction(), 0.0);

  t.cache_fraction = 0.3;
  t.queue.order = queue_order::priority;
  sem_config c2 = sem_config::from_options(t, path_);
  EXPECT_EQ(c2.cache_fraction(), 0.3);
  EXPECT_FALSE(c2.hot_ordering());
}

TEST_F(SemConfigTest, UnknownNamesThrowAtOpen) {
  EXPECT_THROW(sem_config(path_)
                   .with_cache_fraction(0.5)
                   .with_cache_policy("mru")
                   .open<vertex32>(),
               std::invalid_argument);
  EXPECT_THROW(sem_config(path_).with_io_backend("floppy").open<vertex32>(),
               std::invalid_argument);
  EXPECT_THROW(sem_config((dir_ / "missing.agt").string()).open<vertex32>(),
               std::filesystem::filesystem_error);
}

}  // namespace
}  // namespace asyncgt::sem
