// Backend-identity properties (`ctest -L backend`; docs/io_backends.md):
// whatever transport moves the bytes, the traversal must not be able to
// tell. Every compiled io_backend is held to bit-identical labels and visit
// counts against the sync baseline — across batch depths, across the
// weighted dual-stream (targets + weights) enqueue path, and under injected
// transient faults. The one permitted divergence is the failure mode: a
// merged batch that hits a permanently bad range must abort the traversal
// with the failing byte range in the message, exactly as sync would.
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "asyncgt.hpp"
#include "sem/io_backend.hpp"

namespace asyncgt {
namespace {

class BackendIdentity : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("agt_bid_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string write_tmp(const csr32& g, const std::string& tag) {
    const std::string p = (dir_ / (tag + ".agt")).string();
    write_graph(p, g);
    return p;
  }

  visitor_queue_config cfg() const {
    visitor_queue_config c;
    c.num_threads = 8;
    c.flush_batch = 1;
    c.secondary_vertex_sort = true;
    return c;
  }

  static sem::io_retry_policy fast_retry(std::uint32_t max_retries) {
    sem::io_retry_policy p;
    p.max_retries = max_retries;
    p.backoff_initial_us = 1;
    p.backoff_max_us = 10;
    return p;
  }

  /// Open the on-disk graph through a specific backend, optionally under
  /// fault injection.
  sem::sem_csr32 open(const std::string& path, sem::io_backend_kind kind,
                      std::uint32_t batch,
                      sem::fault_injector* inj = nullptr) {
    sem::sem_csr32 sg(path);
    if (inj != nullptr) {
      sg.set_retry_policy(fast_retry(4));
      sg.set_fault_injector(inj);
    }
    sem::io_backend_config bcfg;
    bcfg.kind = kind;
    bcfg.batch = batch;
    sg.set_io_backend(bcfg);
    return sg;
  }

  /// Every compiled backend that can actually run on this host.
  static std::vector<sem::io_backend_kind> runnable() {
    std::vector<sem::io_backend_kind> out;
    for (const auto kind : sem::compiled_io_backends()) {
      if (sem::io_backend_available(kind)) out.push_back(kind);
    }
    return out;
  }

  std::filesystem::path dir_;
};

TEST_F(BackendIdentity, BfsLabelsAndVisitCountsMatchSyncAcrossBatches) {
  const csr32 g = rmat_graph<vertex32>(rmat_a(8, 5));
  const std::string path = write_tmp(g, "bfs");
  auto ref_g = open(path, sem::io_backend_kind::sync, 8);
  const auto ref = async_bfs(ref_g, vertex32{0}, cfg());
  for (const auto kind : runnable()) {
    for (const std::uint32_t batch : {1u, 2u, 8u, 64u}) {
      auto sg = open(path, kind, batch);
      const auto got = async_bfs(sg, vertex32{0}, cfg());
      EXPECT_EQ(got.level, ref.level)
          << sem::to_string(kind) << " batch=" << batch;
      EXPECT_EQ(got.visited_count(), ref.visited_count())
          << sem::to_string(kind) << " batch=" << batch;
    }
  }
}

TEST_F(BackendIdentity, WeightedDualStreamSsspMatchesSync) {
  // SSSP reads two interleaved byte streams per vertex (targets + weights)
  // through the staged enqueue path — the case the per-stream readahead
  // windows exist for.
  const csr32 g = add_weights(rmat_graph<vertex32>(rmat_a(8, 5)),
                              weight_scheme::log_uniform, 5);
  const std::string path = write_tmp(g, "sssp");
  auto ref_g = open(path, sem::io_backend_kind::sync, 8);
  const auto ref = async_sssp(ref_g, vertex32{0}, cfg());
  for (const auto kind : runnable()) {
    for (const std::uint32_t batch : {2u, 16u}) {
      auto sg = open(path, kind, batch);
      EXPECT_EQ(async_sssp(sg, vertex32{0}, cfg()).dist, ref.dist)
          << sem::to_string(kind) << " batch=" << batch;
    }
  }
}

TEST_F(BackendIdentity, CcMatchesSync) {
  const csr32 g = rmat_graph_undirected<vertex32>(rmat_a(8, 9));
  const std::string path = write_tmp(g, "cc");
  auto ref_g = open(path, sem::io_backend_kind::sync, 8);
  const auto ref = async_cc(ref_g, cfg());
  for (const auto kind : runnable()) {
    auto sg = open(path, kind, 8);
    EXPECT_EQ(async_cc(sg, cfg()).component, ref.component)
        << sem::to_string(kind);
  }
}

TEST_F(BackendIdentity, TransientFaultsAreInvisibleOnEveryBackend) {
  const csr32 g = rmat_graph<vertex32>(rmat_a(8, 5));
  const std::string path = write_tmp(g, "faulted");
  auto clean_g = open(path, sem::io_backend_kind::sync, 8);
  const auto ref = async_bfs(clean_g, vertex32{0}, cfg());
  for (const auto kind : runnable()) {
    sem::fault_config fc;
    fc.p_eio = 0.1;  // one transient EIO per ~10 merged ranges
    fc.fail_attempts = 1;
    fc.seed = 13;
    sem::fault_injector inj(fc);
    auto sg = open(path, kind, 8, &inj);
    const auto got = async_bfs(sg, vertex32{0}, cfg());
    EXPECT_EQ(got.level, ref.level) << sem::to_string(kind);
    EXPECT_EQ(got.visited_count(), ref.visited_count())
        << sem::to_string(kind);
    EXPECT_GT(inj.counters().errors, 0u) << sem::to_string(kind);
  }
}

TEST_F(BackendIdentity, TornBatchAbortsWithTheFailingByteRange) {
  // A permanently bad sector range under a merged batch: the split retries
  // exhaust the budget and the traversal must abort, carrying the bad
  // slice's own [offset, length) — not the merged batch's — so the operator
  // can map the abort to a disk region.
  const csr32 g = rmat_graph<vertex32>(rmat_a(8, 5));
  const std::string path = write_tmp(g, "torn");
  sem::fault_config fc;
  fc.bad_begin = 0;  // every adjacency read sits on the bad range
  fc.bad_end = std::filesystem::file_size(path);
  sem::fault_injector inj(fc);
  auto sg = open(path, sem::io_backend_kind::coalescing, 8, &inj);
  try {
    async_bfs(sg, vertex32{0}, cfg());
    FAIL() << "expected traversal_aborted";
  } catch (const traversal_aborted& e) {
    ASSERT_NE(e.cause(), nullptr);
    try {
      std::rethrow_exception(e.cause());
    } catch (const sem::io_error& io) {
      EXPECT_GT(io.bytes(), 0u);
      EXPECT_LT(io.offset(), fc.bad_end);
      // The abort message embeds the failing request geometry end-to-end.
      const std::string what = e.what();
      EXPECT_NE(what.find("offset " + std::to_string(io.offset())),
                std::string::npos)
          << what;
      EXPECT_NE(what.find("+" + std::to_string(io.bytes()) + ")"),
                std::string::npos)
          << what;
    }
  }
  EXPECT_GE(sg.backend().counters().split_batches, 1u);
}

TEST_F(BackendIdentity, MoveRebindsTheBackendToTheMovedFile) {
  const csr32 g = rmat_graph<vertex32>(rmat_a(8, 5));
  const std::string path = write_tmp(g, "moved");
  auto ref_g = open(path, sem::io_backend_kind::sync, 8);
  const auto ref = async_bfs(ref_g, vertex32{0}, cfg());
  auto a = open(path, sem::io_backend_kind::coalescing, 4);
  sem::sem_csr32 b(std::move(a));
  EXPECT_EQ(b.backend().kind(), sem::io_backend_kind::coalescing);
  EXPECT_EQ(async_bfs(b, vertex32{0}, cfg()).level, ref.level);
}

}  // namespace
}  // namespace asyncgt
