// Unit coverage for the deterministic fault injector: plan determinism
// across seeds and resets, bad-range dominance over the probabilistic
// draws, counter accounting, and the `--inject=` CLI spec parser that
// benches and agt_tool share.
#include "sem/fault_injector.hpp"

#include <gtest/gtest.h>

#include <cerrno>
#include <vector>

namespace asyncgt::sem {
namespace {

bool plans_equal(const fault_plan& a, const fault_plan& b) {
  return a.fail_attempts == b.fail_attempts && a.err == b.err &&
         a.fatal == b.fatal && a.short_len == b.short_len &&
         a.delay_us == b.delay_us;
}

fault_config mixed_config(std::uint64_t seed) {
  fault_config cfg;
  cfg.seed = seed;
  cfg.p_eio = 0.1;
  cfg.p_eagain = 0.05;
  cfg.p_short = 0.2;
  cfg.p_delay = 0.1;
  cfg.delay_us = 7;
  cfg.fail_attempts = 3;
  return cfg;
}

TEST(FaultInjector, CleanConfigInjectsNothing) {
  fault_injector inj{fault_config{}};
  for (std::uint64_t i = 0; i < 200; ++i) {
    const fault_plan p = inj.plan(i * 64, 64);
    EXPECT_EQ(p.err, 0);
    EXPECT_EQ(p.fail_attempts, 0u);
    EXPECT_EQ(p.short_len, 0u);
    EXPECT_EQ(p.delay_us, 0u);
  }
  const auto c = inj.counters();
  EXPECT_EQ(c.ops, 200u);
  EXPECT_EQ(c.errors, 0u);
  EXPECT_EQ(c.shorts, 0u);
  EXPECT_EQ(c.delays, 0u);
}

TEST(FaultInjector, SameSeedSamePlanSequence) {
  fault_injector a{mixed_config(42)};
  fault_injector b{mixed_config(42)};
  for (std::uint64_t i = 0; i < 1000; ++i) {
    EXPECT_TRUE(plans_equal(a.plan(i * 128, 128), b.plan(i * 128, 128)))
        << "op " << i;
  }
}

TEST(FaultInjector, ResetReplaysIdenticalSequence) {
  fault_injector inj{mixed_config(9)};
  std::vector<fault_plan> first;
  for (std::uint64_t i = 0; i < 500; ++i) first.push_back(inj.plan(i, 64));
  inj.reset();
  EXPECT_EQ(inj.counters().ops, 0u);
  for (std::uint64_t i = 0; i < 500; ++i) {
    EXPECT_TRUE(plans_equal(inj.plan(i, 64), first[i])) << "op " << i;
  }
}

TEST(FaultInjector, DifferentSeedsDiverge) {
  fault_injector a{mixed_config(1)};
  fault_injector b{mixed_config(2)};
  bool diverged = false;
  for (std::uint64_t i = 0; i < 1000 && !diverged; ++i) {
    diverged = !plans_equal(a.plan(i, 64), b.plan(i, 64));
  }
  EXPECT_TRUE(diverged);
}

TEST(FaultInjector, RatesTrackConfiguredProbabilities) {
  fault_config cfg;
  cfg.seed = 3;
  cfg.p_eio = 0.3;
  fault_injector inj{cfg};
  for (std::uint64_t i = 0; i < 4000; ++i) inj.plan(i * 64, 64);
  const auto c = inj.counters();
  // Deterministic given the seed; the bounds just document "roughly 30%".
  EXPECT_GT(c.errors, 4000u * 2 / 10);
  EXPECT_LT(c.errors, 4000u * 4 / 10);
}

TEST(FaultInjector, ErrorPlansCarryConfiguredShape) {
  fault_config cfg;
  cfg.seed = 5;
  cfg.p_eio = 1.0;
  cfg.fail_attempts = 4;
  fault_injector inj{cfg};
  const fault_plan p = inj.plan(0, 64);
  EXPECT_EQ(p.err, EIO);
  EXPECT_EQ(p.fail_attempts, 4u);
  EXPECT_FALSE(p.fatal);
  cfg.fatal = true;
  fault_injector fatal_inj{cfg};
  EXPECT_TRUE(fatal_inj.plan(0, 64).fatal);
}

TEST(FaultInjector, BadRangeFailsEveryOverlappingRead) {
  fault_config cfg;
  cfg.bad_begin = 4096;
  cfg.bad_end = 8192;
  fault_injector inj{cfg};
  // Fully inside, straddling either edge, and engulfing all fail...
  const std::pair<std::uint64_t, std::uint64_t> overlapping[] = {
      {5000, 100}, {4000, 200}, {8191, 10}, {0, 100000}};
  for (const auto& [off, len] : overlapping) {
    const fault_plan p = inj.plan(off, len);
    EXPECT_EQ(p.err, EIO) << off;
    EXPECT_EQ(p.fail_attempts, ~std::uint32_t{0}) << off;
  }
  // ...while adjacent-but-disjoint reads never do.
  EXPECT_EQ(inj.plan(0, 4096).err, 0);
  EXPECT_EQ(inj.plan(8192, 64).err, 0);
  EXPECT_EQ(inj.counters().range_hits, 4u);
}

TEST(FaultInjector, ValidatesConfig) {
  fault_config bad_p;
  bad_p.p_eio = 1.5;
  EXPECT_THROW(fault_injector{bad_p}, std::invalid_argument);
  fault_config neg_p;
  neg_p.p_short = -0.1;
  EXPECT_THROW(fault_injector{neg_p}, std::invalid_argument);
  fault_config zero_attempts;
  zero_attempts.fail_attempts = 0;
  EXPECT_THROW(fault_injector{zero_attempts}, std::invalid_argument);
}

// ---- stall mode (docs/robustness.md) ------------------------------------

TEST(FaultInjector, StallPlansAreDeterministicAndCounted) {
  fault_config cfg;
  cfg.p_stall = 1.0;
  cfg.seed = 11;
  fault_injector inj(cfg);
  for (int i = 0; i < 8; ++i) {
    EXPECT_TRUE(inj.plan(static_cast<std::uint64_t>(i) * 4096, 4096).stall);
  }
  EXPECT_EQ(inj.counters().stalls, 8u);
  // reset() replays the identical plan sequence, counters rewound.
  inj.reset();
  EXPECT_EQ(inj.counters().stalls, 0u);
  EXPECT_TRUE(inj.plan(0, 4096).stall);
}

TEST(FaultInjector, ReleaseStallsIsAOneWayLatch) {
  fault_config cfg;
  cfg.p_stall = 1.0;
  fault_injector inj(cfg);
  EXPECT_FALSE(inj.stalls_released());
  EXPECT_TRUE(inj.plan(0, 4096).stall);
  inj.release_stalls();
  EXPECT_TRUE(inj.stalls_released());
  // Released: no further plan stalls, so in-flight tests can always drain.
  EXPECT_FALSE(inj.plan(4096, 4096).stall);
  // The latch survives reset() — release is an end-of-scenario decision,
  // not part of the deterministic replay state.
  inj.reset();
  EXPECT_TRUE(inj.stalls_released());
  EXPECT_FALSE(inj.plan(0, 4096).stall);
}

TEST(FaultInjector, ValidatesStallProbability) {
  fault_config bad;
  bad.p_stall = 1.5;
  EXPECT_THROW(fault_injector{bad}, std::invalid_argument);
}

TEST(FaultSpecParser, ParsesFullSpec) {
  const fault_config cfg = parse_fault_config(
      "eio=0.01,eagain=0.005,short=0.02,delay=0.01,delay-us=500,attempts=3,"
      "seed=7,fatal,bad=4096-8192,stall=0.25");
  EXPECT_DOUBLE_EQ(cfg.p_eio, 0.01);
  EXPECT_DOUBLE_EQ(cfg.p_eagain, 0.005);
  EXPECT_DOUBLE_EQ(cfg.p_short, 0.02);
  EXPECT_DOUBLE_EQ(cfg.p_delay, 0.01);
  EXPECT_EQ(cfg.delay_us, 500u);
  EXPECT_EQ(cfg.fail_attempts, 3u);
  EXPECT_EQ(cfg.seed, 7u);
  EXPECT_TRUE(cfg.fatal);
  EXPECT_EQ(cfg.bad_begin, 4096u);
  EXPECT_EQ(cfg.bad_end, 8192u);
  EXPECT_DOUBLE_EQ(cfg.p_stall, 0.25);
}

TEST(FaultSpecParser, EmptySpecIsClean) {
  const fault_config cfg = parse_fault_config("");
  EXPECT_DOUBLE_EQ(cfg.p_eio, 0.0);
  EXPECT_FALSE(cfg.fatal);
}

TEST(FaultSpecParser, RejectsMalformedSpecs) {
  EXPECT_THROW(parse_fault_config("bogus=1"), std::invalid_argument);
  EXPECT_THROW(parse_fault_config("eio"), std::invalid_argument);
  EXPECT_THROW(parse_fault_config("eio=notanumber"), std::invalid_argument);
  EXPECT_THROW(parse_fault_config("eio=2.0"), std::invalid_argument);
  EXPECT_THROW(parse_fault_config("bad=123"), std::invalid_argument);
  EXPECT_THROW(parse_fault_config("attempts=0"), std::invalid_argument);
  EXPECT_THROW(parse_fault_config("stall=2.0"), std::invalid_argument);
}

}  // namespace
}  // namespace asyncgt::sem
