// Unit coverage for the sem I/O backend layer (docs/io_backends.md): kind
// parsing and discovery, config validation, the sync backend's 1:1
// request/syscall accounting, the coalescing backend's readahead window and
// staged merge behaviour, and the counters every backend exports. The
// traversal-level identity properties live in backend_identity_test.cpp;
// this file exercises the layer directly against a scratch edge_file.
#include "sem/io_backend.hpp"

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <stdexcept>
#include <string>
#include <vector>

#include "sem/edge_file.hpp"
#include "sem/fault_injector.hpp"

namespace asyncgt::sem {
namespace {

class IoBackend : public ::testing::Test {
 protected:
  static constexpr std::uint64_t kFileBytes = 64 * 1024;

  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("agt_iob_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
    path_ = (dir_ / "data.bin").string();
    payload_.resize(kFileBytes);
    for (std::size_t i = 0; i < payload_.size(); ++i) {
      payload_[i] = static_cast<char>(i * 131 + 7);
    }
    std::FILE* f = std::fopen(path_.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fwrite(payload_.data(), 1, payload_.size(), f),
              payload_.size());
    std::fclose(f);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  io_backend_config cfg(io_backend_kind kind, std::uint32_t batch = 4,
                        std::uint32_t block = 4096) const {
    io_backend_config c;
    c.kind = kind;
    c.batch = batch;
    c.block_bytes = block;
    return c;
  }

  void expect_payload(const std::vector<char>& buf, std::uint64_t off) {
    ASSERT_LE(off + buf.size(), payload_.size());
    EXPECT_EQ(std::memcmp(buf.data(), payload_.data() + off, buf.size()), 0)
        << "offset " << off;
  }

  std::filesystem::path dir_;
  std::string path_;
  std::vector<char> payload_;
};

TEST(IoBackendKind, ParseAndToStringRoundTrip) {
  EXPECT_EQ(parse_io_backend_kind("sync"), io_backend_kind::sync);
  EXPECT_EQ(parse_io_backend_kind("coalescing"), io_backend_kind::coalescing);
  for (const auto kind : compiled_io_backends()) {
    EXPECT_EQ(parse_io_backend_kind(to_string(kind)), kind);
  }
  EXPECT_THROW(parse_io_backend_kind("mmap"), std::invalid_argument);
  EXPECT_THROW(parse_io_backend_kind(""), std::invalid_argument);
#if !defined(ASYNCGT_WITH_URING)
  // The name is reserved but the backend is compiled out: the parser must
  // say so rather than silently falling back to sync.
  EXPECT_THROW(parse_io_backend_kind("uring"), std::invalid_argument);
#endif
}

TEST(IoBackendKind, CompiledListAlwaysStartsWithSyncAndCoalescing) {
  const auto kinds = compiled_io_backends();
  ASSERT_GE(kinds.size(), 2u);
  EXPECT_EQ(kinds[0], io_backend_kind::sync);
  EXPECT_EQ(kinds[1], io_backend_kind::coalescing);
  // sync and coalescing are pure pread/preadv: always available.
  EXPECT_TRUE(io_backend_available(io_backend_kind::sync));
  EXPECT_TRUE(io_backend_available(io_backend_kind::coalescing));
}

TEST(IoBackendConfig, ValidateRejectsDegenerateKnobs) {
  io_backend_config c;
  EXPECT_NO_THROW(c.validate());
  c.batch = 0;
  EXPECT_THROW(c.validate(), std::invalid_argument);
  c.batch = 1u << 20;
  EXPECT_THROW(c.validate(), std::invalid_argument);
  c = io_backend_config{};
  c.block_bytes = 0;
  EXPECT_THROW(c.validate(), std::invalid_argument);
}

TEST(IoBackendCounters, BytesPerBatchHandlesZero) {
  io_backend_counters c;
  EXPECT_DOUBLE_EQ(c.bytes_per_batch(), 0.0);
  c.batches = 4;
  c.bytes_issued = 4096;
  EXPECT_DOUBLE_EQ(c.bytes_per_batch(), 1024.0);
}

TEST_F(IoBackend, SyncIsOneSyscallPerRequest) {
  edge_file f(path_);
  auto b = make_io_backend(f, cfg(io_backend_kind::sync));
  EXPECT_STREQ(b->name(), "sync");
  EXPECT_EQ(b->kind(), io_backend_kind::sync);

  std::vector<char> buf(512);
  for (std::uint64_t off = 0; off < 8 * 512; off += 512) {
    b->read({off, 512, buf.data(), 0});
    expect_payload(buf, off);
  }
  const auto c = b->counters();
  EXPECT_EQ(c.requests, 8u);
  EXPECT_EQ(c.batches, 8u);
  EXPECT_EQ(c.bytes_issued, 8u * 512u);
  EXPECT_EQ(c.coalesced_ranges, 0u);
  EXPECT_EQ(c.inflight_peak, 1u);
}

TEST_F(IoBackend, ZeroByteReadIsANoOp) {
  edge_file f(path_);
  for (const auto kind :
       {io_backend_kind::sync, io_backend_kind::coalescing}) {
    auto b = make_io_backend(f, cfg(kind));
    b->read({0, 0, nullptr, 0});
    EXPECT_EQ(b->counters().batches, 0u) << to_string(kind);
  }
}

TEST_F(IoBackend, CoalescingWindowTurnsSequentialReadsIntoMemcpys) {
  edge_file f(path_);
  // batch=4 x 4 KiB blocks = one 16 KiB readahead window per refill.
  auto b = make_io_backend(f, cfg(io_backend_kind::coalescing, 4));
  std::vector<char> buf(64);
  const std::uint64_t n = kFileBytes / 64;
  for (std::uint64_t i = 0; i < n; ++i) {
    b->read({i * 64, 64, buf.data(), 0});
    expect_payload(buf, i * 64);
  }
  const auto c = b->counters();
  EXPECT_EQ(c.requests, n);
  // 64 KiB of 64-byte reads over 16 KiB windows: exactly 4 refills.
  EXPECT_EQ(c.batches, 4u);
  EXPECT_EQ(c.coalesced_ranges, n - 4u);
  EXPECT_EQ(c.bytes_issued, kFileBytes);
}

TEST_F(IoBackend, CoalescingServesBackwardJumpsWithinTheWindow) {
  edge_file f(path_);
  auto b = make_io_backend(f, cfg(io_backend_kind::coalescing, 4));
  std::vector<char> buf(128);
  b->read({4096, 128, buf.data(), 0});  // window now covers [4096, 20480)
  expect_payload(buf, 4096);
  b->read({8192, 128, buf.data(), 0});
  expect_payload(buf, 8192);
  b->read({5000, 100, buf.data(), 0});  // strictly before the last read
  EXPECT_EQ(std::memcmp(buf.data(), payload_.data() + 5000, 100), 0);
  EXPECT_EQ(b->counters().batches, 1u);
  EXPECT_EQ(b->counters().coalesced_ranges, 2u);
}

TEST_F(IoBackend, CoalescingRejectsRequestsPastTheWindow) {
  edge_file f(path_);
  auto b = make_io_backend(f, cfg(io_backend_kind::coalescing, 2));
  std::vector<char> buf(256);
  b->read({0, 256, buf.data(), 0});  // window [0, 8192)
  expect_payload(buf, 0);
  // Starts beyond the window end: must refill, not memcpy stale bytes
  // (regression: an unsigned-underflow containment check once accepted
  // these and read past the window buffer).
  b->read({3 * 8192, 256, buf.data(), 0});
  expect_payload(buf, 3 * 8192);
  b->read({8192 - 4, 256, buf.data(), 0});  // straddles the old window end
  expect_payload(buf, 8192 - 4);
  EXPECT_EQ(b->counters().coalesced_ranges, 0u);
  EXPECT_EQ(b->counters().batches, 3u);
}

TEST_F(IoBackend, CoalescingFlushMergesAdjacentStagedRanges) {
  edge_file f(path_);
  auto b = make_io_backend(f, cfg(io_backend_kind::coalescing, 8));
  std::vector<std::vector<char>> bufs(4, std::vector<char>(4096));
  // Staged out of order and adjacent on disk: one merged preadv.
  const std::uint64_t order[] = {2, 0, 3, 1};
  for (const std::uint64_t i : order) {
    b->enqueue({i * 4096, 4096, bufs[i].data(), 0});
  }
  EXPECT_EQ(b->counters().batches, 0u);  // still staged
  b->flush();
  for (std::uint64_t i = 0; i < 4; ++i) expect_payload(bufs[i], i * 4096);
  const auto c = b->counters();
  EXPECT_EQ(c.requests, 4u);
  EXPECT_EQ(c.batches, 1u);
  EXPECT_EQ(c.coalesced_ranges, 3u);
  EXPECT_EQ(c.bytes_issued, 4u * 4096u);
}

TEST_F(IoBackend, CoalescingAutoFlushesAtBatchDepth) {
  edge_file f(path_);
  auto b = make_io_backend(f, cfg(io_backend_kind::coalescing, 2));
  std::vector<char> b0(1024), b1(1024);
  b->enqueue({0, 1024, b0.data(), 0});
  EXPECT_EQ(b->counters().batches, 0u);
  b->enqueue({1024, 1024, b1.data(), 0});  // depth reached: flushes itself
  expect_payload(b0, 0);
  expect_payload(b1, 1024);
  EXPECT_GE(b->counters().batches, 1u);
}

TEST_F(IoBackend, CoalescingFlushServesDisjointRangesIndividually) {
  edge_file f(path_);
  auto b = make_io_backend(f, cfg(io_backend_kind::coalescing, 8));
  std::vector<char> a(512), c(512);
  b->enqueue({0, 512, a.data(), 0});
  b->enqueue({40960, 512, c.data(), 0});  // far apart: no merge possible
  b->flush();
  expect_payload(a, 0);
  expect_payload(c, 40960);
  EXPECT_EQ(b->counters().requests, 2u);
}

TEST_F(IoBackend, ResetCountersZeroesEverything) {
  edge_file f(path_);
  auto b = make_io_backend(f, cfg(io_backend_kind::coalescing, 4));
  std::vector<char> buf(4096);
  b->read({0, 4096, buf.data(), 0});
  EXPECT_GT(b->counters().requests, 0u);
  b->reset_counters();
  const auto c = b->counters();
  EXPECT_EQ(c.requests, 0u);
  EXPECT_EQ(c.batches, 0u);
  EXPECT_EQ(c.bytes_issued, 0u);
  EXPECT_EQ(c.inflight_peak, 0u);
}

#if !defined(ASYNCGT_WITH_URING)
TEST_F(IoBackend, UringFactoryThrowsWhenCompiledOut) {
  edge_file f(path_);
  EXPECT_THROW(make_io_backend(f, cfg(io_backend_kind::uring)),
               std::runtime_error);
}
#endif

TEST_F(IoBackend, TransientFaultsInsideAMergedBatchAreInvisible) {
  fault_config fc;
  fc.p_eio = 1.0;  // every merged range faults once, then succeeds
  fc.fail_attempts = 1;
  fault_injector inj(fc);
  edge_file f(path_);
  io_retry_policy retry;
  retry.max_retries = 3;
  retry.backoff_initial_us = 1;
  retry.backoff_max_us = 5;
  f.set_retry_policy(retry);
  f.set_fault_injector(&inj);

  auto b = make_io_backend(f, cfg(io_backend_kind::coalescing, 4));
  std::vector<std::vector<char>> bufs(4, std::vector<char>(4096));
  for (std::uint64_t i = 0; i < 4; ++i) {
    b->enqueue({i * 4096, 4096, bufs[i].data(), 0});
  }
  b->flush();
  for (std::uint64_t i = 0; i < 4; ++i) expect_payload(bufs[i], i * 4096);
  EXPECT_GT(inj.counters().errors, 0u);
}

TEST_F(IoBackend, TornBatchIsolatesThePermanentlyBadSlice) {
  // Blocks 0,1,3 of a 4-block merged batch are fine; block 2 sits on a
  // permanently bad sector range. The batch must split, fill the healthy
  // buffers, and surface one io_error naming the failing byte range.
  fault_config fc;
  fc.bad_begin = 2 * 4096;
  fc.bad_end = 3 * 4096;
  fault_injector inj(fc);
  edge_file f(path_);
  io_retry_policy retry;
  retry.max_retries = 1;
  retry.backoff_initial_us = 1;
  retry.backoff_max_us = 5;
  f.set_retry_policy(retry);
  f.set_fault_injector(&inj);

  auto b = make_io_backend(f, cfg(io_backend_kind::coalescing, 8));
  std::vector<std::vector<char>> bufs(4, std::vector<char>(4096));
  for (std::uint64_t i = 0; i < 4; ++i) {
    b->enqueue({i * 4096, 4096, bufs[i].data(), 0});
  }
  try {
    b->flush();
    FAIL() << "expected io_error from the bad slice";
  } catch (const io_error& e) {
    EXPECT_EQ(e.offset(), 2u * 4096u);
    EXPECT_EQ(e.bytes(), 4096u);
    const std::string what = e.what();
    EXPECT_NE(what.find(std::to_string(2 * 4096)), std::string::npos)
        << what;
  }
  expect_payload(bufs[0], 0);
  expect_payload(bufs[1], 4096);
  expect_payload(bufs[3], 3 * 4096);
  EXPECT_GE(b->counters().split_batches, 1u);
}

}  // namespace
}  // namespace asyncgt::sem
