#include "sem/ssd_model.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "sem/device_presets.hpp"
#include "util/timer.hpp"

namespace asyncgt::sem {
namespace {

ssd_params fast_test_device(std::uint32_t channels, double latency_us) {
  ssd_params p;
  p.name = "test";
  p.read_latency_us = latency_us;
  p.write_latency_us = latency_us * 3;
  p.channels = channels;
  return p;
}

TEST(SsdModel, InvalidParamsRejected) {
  ssd_params p = fast_test_device(0, 10);
  EXPECT_THROW(ssd_model{p}, std::invalid_argument);
  p = fast_test_device(1, -5);
  EXPECT_THROW(ssd_model{p}, std::invalid_argument);
  p = fast_test_device(1, 10);
  p.block_bytes = 0;
  EXPECT_THROW(ssd_model{p}, std::invalid_argument);
  p = fast_test_device(1, 10);
  p.time_scale = 0;
  EXPECT_THROW(ssd_model{p}, std::invalid_argument);
}

TEST(SsdModel, CountsRequests) {
  ssd_model dev(fast_test_device(4, 1.0));
  dev.read(100);
  dev.read(5000);
  dev.write(100);
  const ssd_counters c = dev.counters();
  EXPECT_EQ(c.reads, 2u);
  EXPECT_EQ(c.writes, 1u);
  EXPECT_EQ(c.read_bytes, 5100u);
  EXPECT_EQ(c.write_bytes, 100u);
  // 100 bytes = 1 block, 5000 bytes = 2 blocks of 4096.
  EXPECT_EQ(c.read_blocks, 3u);
  dev.reset_counters();
  EXPECT_EQ(dev.counters().reads, 0u);
}

TEST(SsdModel, SingleThreadSeesServiceLatency) {
  constexpr double kLatencyUs = 2000.0;
  ssd_model dev(fast_test_device(8, kLatencyUs));
  wall_timer t;
  constexpr int kReads = 10;
  for (int i = 0; i < kReads; ++i) dev.read(64);
  const double per_read_us = t.elapsed_seconds() * 1e6 / kReads;
  // One thread cannot exploit channel parallelism: >= the service time.
  EXPECT_GE(per_read_us, kLatencyUs * 0.95);
  EXPECT_LE(per_read_us, kLatencyUs * 3.0);  // generous OS-jitter headroom
}

TEST(SsdModel, ThroughputScalesWithThreadsUntilChannelLimit) {
  // The Figure 1 property: aggregate IOPS grows with requester count and
  // plateaus at channels/latency.
  constexpr double kLatencyUs = 2000.0;
  constexpr std::uint32_t kChannels = 4;
  const auto measure = [&](int threads, int reads_per_thread) {
    ssd_model dev(fast_test_device(kChannels, kLatencyUs));
    wall_timer t;
    std::vector<std::thread> ts;
    for (int i = 0; i < threads; ++i) {
      ts.emplace_back([&] {
        for (int r = 0; r < reads_per_thread; ++r) dev.read(64);
      });
    }
    for (auto& th : ts) th.join();
    return static_cast<double>(threads) * reads_per_thread /
           t.elapsed_seconds();
  };
  const double iops1 = measure(1, 20);
  const double iops4 = measure(4, 20);
  const double iops16 = measure(16, 10);
  EXPECT_GT(iops4, iops1 * 2.5);       // scaling region
  EXPECT_GT(iops16, iops4 * 0.7);      // no collapse past the knee
  // Plateau: within 40% of channels/latency (generous for CI jitter).
  const double plateau = kChannels * 1e6 / kLatencyUs;
  EXPECT_LT(iops16, plateau * 1.4);
  EXPECT_GT(iops16, plateau * 0.5);
}

TEST(SsdModel, WritesSlowerThanReads) {
  ssd_model dev(fast_test_device(1, 1500.0));
  wall_timer t;
  for (int i = 0; i < 5; ++i) dev.read(64);
  const double read_time = t.elapsed_seconds();
  t.reset();
  for (int i = 0; i < 5; ++i) dev.write(64);
  const double write_time = t.elapsed_seconds();
  EXPECT_GT(write_time, read_time * 1.5);  // 3x asymmetry configured
}

TEST(SsdModel, TimeScaleCompressesLatency) {
  ssd_params slow = fast_test_device(1, 4000.0);
  ssd_params fast = slow;
  fast.time_scale = 0.25;
  EXPECT_DOUBLE_EQ(ssd_model(fast).params().plateau_iops(),
                   ssd_model(slow).params().plateau_iops() * 4.0);
  ssd_model dev_fast(fast);
  ssd_model dev_slow(slow);
  wall_timer t;
  for (int i = 0; i < 5; ++i) dev_slow.read(64);
  const double slow_time = t.elapsed_seconds();
  t.reset();
  for (int i = 0; i < 5; ++i) dev_fast.read(64);
  const double fast_time = t.elapsed_seconds();
  EXPECT_LT(fast_time, slow_time * 0.6);
}

TEST(DevicePresets, PlateausMatchPaperFigure1) {
  EXPECT_NEAR(fusionio_params().plateau_iops(), 200000.0, 5000.0);
  EXPECT_NEAR(intel_params().plateau_iops(), 60000.0, 3000.0);
  EXPECT_NEAR(corsair_params().plateau_iops(), 30000.0, 2000.0);
}

TEST(DevicePresets, OrderingFusionFastest) {
  // The paper's device ranking: FusionIO > Intel > Corsair.
  EXPECT_GT(fusionio_params().plateau_iops(), intel_params().plateau_iops());
  EXPECT_GT(intel_params().plateau_iops(), corsair_params().plateau_iops());
}

TEST(DevicePresets, LookupByName) {
  EXPECT_EQ(device_preset_by_name("fusionio").name, "fusionio");
  EXPECT_EQ(device_preset_by_name("intel").name, "intel");
  EXPECT_EQ(device_preset_by_name("corsair").name, "corsair");
  EXPECT_THROW(device_preset_by_name("floppy"), std::invalid_argument);
}

TEST(DevicePresets, TimeScalePropagates) {
  EXPECT_DOUBLE_EQ(device_preset_by_name("intel", 0.1).time_scale, 0.1);
  EXPECT_EQ(all_device_presets(0.5).size(), 3u);
  for (const auto& p : all_device_presets(0.5)) {
    EXPECT_DOUBLE_EQ(p.time_scale, 0.5);
  }
}

}  // namespace
}  // namespace asyncgt::sem
