// block_heat — the per-block access/miss heat map behind the bench
// reports' hot-block tables. Covered here:
//
//   * record/accessor round trips, miss accounting, and the out-of-range
//     counter (touches past num_blocks are counted, not dropped);
//   * top_k ordering (hottest first, ties to the lower block id) and
//     truncation;
//   * scrape-time totals and blocks_touched;
//   * reset;
//   * integration with sem_csr's device-charging walk: heat misses agree
//     exactly with the block_cache's own miss counter, and with no cache
//     every touch is a miss (full-charge accounting).
#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "asyncgt.hpp"
#include "sem/block_cache.hpp"
#include "sem/block_heat.hpp"
#include "sem/sem_csr.hpp"
#include "sem/ssd_model.hpp"

namespace asyncgt::sem {
namespace {

TEST(BlockHeat, RecordsAccessesAndMisses) {
  block_heat heat(8, 4096);
  EXPECT_EQ(heat.num_blocks(), 8u);
  EXPECT_EQ(heat.block_bytes(), 4096u);

  heat.record(0, true);
  heat.record(0, false);
  heat.record(3, true);
  EXPECT_EQ(heat.accesses(0), 2u);
  EXPECT_EQ(heat.misses(0), 1u);
  EXPECT_EQ(heat.accesses(3), 1u);
  EXPECT_EQ(heat.misses(3), 1u);
  EXPECT_EQ(heat.accesses(5), 0u);
  EXPECT_EQ(heat.total_accesses(), 3u);
  EXPECT_EQ(heat.total_misses(), 2u);
  EXPECT_EQ(heat.blocks_touched(), 2u);
  EXPECT_EQ(heat.out_of_range(), 0u);
}

TEST(BlockHeat, OutOfRangeTouchesAreCountedNotDropped) {
  block_heat heat(4);
  heat.record(4, true);
  heat.record(1000, false);
  EXPECT_EQ(heat.out_of_range(), 2u);
  EXPECT_EQ(heat.total_accesses(), 0u);
  // Reads past the range are safe zeros.
  EXPECT_EQ(heat.accesses(1000), 0u);
  EXPECT_EQ(heat.misses(1000), 0u);
}

TEST(BlockHeat, ZeroBlockBytesFallsBackToDefault) {
  block_heat heat(2, 0);
  EXPECT_EQ(heat.block_bytes(), 4096u);
}

TEST(BlockHeat, TopKRanksByAccessesWithLowerIdTieBreak) {
  block_heat heat(16);
  for (int i = 0; i < 5; ++i) heat.record(9, i % 2 == 0);
  for (int i = 0; i < 3; ++i) heat.record(2, true);
  for (int i = 0; i < 3; ++i) heat.record(11, false);  // ties block 2
  heat.record(0, false);

  const auto top = heat.top_k(3);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0].block, 9u);
  EXPECT_EQ(top[0].accesses, 5u);
  EXPECT_EQ(top[0].misses, 3u);
  // Tie at 3 accesses: the lower block id wins.
  EXPECT_EQ(top[1].block, 2u);
  EXPECT_EQ(top[2].block, 11u);
  EXPECT_EQ(top[1].misses, 3u);
  EXPECT_EQ(top[2].misses, 0u);

  // k beyond the touched set returns only touched blocks.
  EXPECT_EQ(heat.top_k(100).size(), 4u);
  EXPECT_TRUE(heat.top_k(0).empty());
}

TEST(BlockHeat, ResetClearsEverything) {
  block_heat heat(4);
  heat.record(1, true);
  heat.record(9, true);  // out of range
  heat.reset();
  EXPECT_EQ(heat.total_accesses(), 0u);
  EXPECT_EQ(heat.total_misses(), 0u);
  EXPECT_EQ(heat.blocks_touched(), 0u);
  EXPECT_EQ(heat.out_of_range(), 0u);
  EXPECT_TRUE(heat.top_k(4).empty());
}

TEST(BlockHeat, ConcurrentRecordingLosesNothing) {
  constexpr std::size_t kThreads = 4;
  constexpr std::uint64_t kIters = 50000;
  block_heat heat(kThreads);
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (std::uint64_t i = 0; i < kIters; ++i) {
        heat.record(t, (i & 3) == 0);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(heat.total_accesses(), kThreads * kIters);
  EXPECT_EQ(heat.total_misses(), kThreads * (kIters / 4));
  EXPECT_EQ(heat.blocks_touched(), kThreads);
}

// ---- sem_csr integration ------------------------------------------------

class BlockHeatSemTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("agt_block_heat_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
    g_ = rmat_graph<vertex32>(rmat_a(9));
    path_ = (dir_ / "g.agt").string();
    write_graph(path_, g_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  static void walk_all_edges(const sem_csr32& sg, std::uint64_t n) {
    volatile std::uint64_t sink = 0;
    for (std::uint64_t v = 0; v < n; ++v) {
      sg.for_each_out_edge(static_cast<vertex32>(v), [&](auto u, auto w) {
        sink = sink + u;
        (void)w;
      });
    }
  }

  std::filesystem::path dir_;
  csr32 g_;
  std::string path_;
};

TEST_F(BlockHeatSemTest, HeatMissesAgreeExactlyWithTheCache) {
  ssd_params params;  // defaults; zero-latency accounting still charges
  ssd_model dev(params);
  block_cache cache(4);  // tiny: plenty of misses and evictions
  sem_csr32 sg(path_, &dev, &cache);
  block_heat heat(sg.heat_blocks_for(params.block_bytes), params.block_bytes);
  sg.set_block_heat(&heat);

  walk_all_edges(sg, g_.num_vertices());

  EXPECT_GT(heat.total_accesses(), 0u);
  EXPECT_GT(heat.blocks_touched(), 0u);
  // The heat recorder sits inside the same probe that decides the charge,
  // so its miss count is the cache's miss count — exactly.
  EXPECT_EQ(heat.total_misses(), cache.counters().misses);
  EXPECT_EQ(heat.total_accesses(),
            cache.counters().hits + cache.counters().misses);
  EXPECT_LE(heat.total_misses(), heat.total_accesses());
  EXPECT_EQ(heat.out_of_range(), 0u);

  const auto top = heat.top_k(5);
  ASSERT_FALSE(top.empty());
  EXPECT_GT(top[0].accesses, 0u);
}

TEST_F(BlockHeatSemTest, NoCacheMeansEveryTouchIsAMiss) {
  ssd_params params;
  ssd_model dev(params);
  sem_csr32 sg(path_, &dev, nullptr);
  block_heat heat(sg.heat_blocks_for(params.block_bytes), params.block_bytes);
  sg.set_block_heat(&heat);

  walk_all_edges(sg, g_.num_vertices());

  EXPECT_GT(heat.total_accesses(), 0u);
  EXPECT_EQ(heat.total_misses(), heat.total_accesses());
}

}  // namespace
}  // namespace asyncgt::sem
