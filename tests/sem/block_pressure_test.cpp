// block_pressure — the sharded pending-visitor tracker behind hot-block
// scheduling (docs/hot_blocks.md). Covered here:
//
//   * add/remove/pending round trips and the add() return value (the new
//     count, so the advisor's threshold trigger needs no second load);
//   * the zero clamp on remove (a racy decrement never underflows) and the
//     out-of-range counter (blocks past num_blocks are counted, not
//     tracked);
//   * aggregate conservation: total_increments - total_decrements ==
//     total_pending, under single-threaded and concurrent hammering;
//   * reset zeroing both the per-block counts and the shard totals.
#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "sem/block_pressure.hpp"

namespace asyncgt::sem {
namespace {

TEST(BlockPressure, AddRemoveRoundTrip) {
  block_pressure p(8);
  EXPECT_EQ(p.pending(3), 0u);
  EXPECT_EQ(p.add(3), 1u);
  EXPECT_EQ(p.add(3), 2u);
  EXPECT_EQ(p.add(5), 1u);
  EXPECT_EQ(p.pending(3), 2u);
  EXPECT_EQ(p.pending(5), 1u);
  p.remove(3);
  EXPECT_EQ(p.pending(3), 1u);
  EXPECT_EQ(p.total_increments(), 3u);
  EXPECT_EQ(p.total_decrements(), 1u);
  EXPECT_EQ(p.total_pending(), 2u);
}

TEST(BlockPressure, RemoveClampsAtZero) {
  block_pressure p(4);
  p.remove(2);  // nothing pending: must not underflow
  EXPECT_EQ(p.pending(2), 0u);
  EXPECT_EQ(p.total_decrements(), 0u);
  p.add(2);
  p.remove(2);
  p.remove(2);  // second remove clamps again
  EXPECT_EQ(p.pending(2), 0u);
  EXPECT_EQ(p.total_increments(), 1u);
  EXPECT_EQ(p.total_decrements(), 1u);
  EXPECT_EQ(p.total_pending(), 0u);
}

TEST(BlockPressure, OutOfRangeIsCountedNotTracked) {
  block_pressure p(4);
  EXPECT_EQ(p.add(4), 0u);
  EXPECT_EQ(p.add(1000), 0u);
  p.remove(99);  // out-of-range removes are ignored, only adds are counted
  EXPECT_EQ(p.out_of_range(), 2u);
  EXPECT_EQ(p.total_increments(), 0u);
  EXPECT_EQ(p.total_decrements(), 0u);
  EXPECT_EQ(p.pending(1000), 0u);  // reads past the range are safe zeros
}

TEST(BlockPressure, ResetZerosCountsAndTotals) {
  block_pressure p(8);
  for (std::uint64_t b = 0; b < 8; ++b) p.add(b);
  p.remove(0);
  p.reset();
  EXPECT_EQ(p.total_increments(), 0u);
  EXPECT_EQ(p.total_decrements(), 0u);
  EXPECT_EQ(p.total_pending(), 0u);
  for (std::uint64_t b = 0; b < 8; ++b) EXPECT_EQ(p.pending(b), 0u);
  // The tracker is reusable after reset.
  EXPECT_EQ(p.add(1), 1u);
  EXPECT_EQ(p.total_pending(), 1u);
}

// Conservation under concurrency: every add is eventually matched by one
// remove across racing threads, so the tracker must drain to exactly zero
// with increments == decrements — the same law the queue advisor relies on
// (one on_enqueue per delivered visitor, one on_complete per pop).
TEST(BlockPressure, ConcurrentConservation) {
  constexpr std::uint64_t kBlocks = 64;
  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 20000;
  block_pressure p(kBlocks);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&p, t] {
      for (int i = 0; i < kOpsPerThread; ++i) {
        const std::uint64_t b =
            (static_cast<std::uint64_t>(t) * 2654435761u + i) % kBlocks;
        p.add(b);
        p.remove(b);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(p.total_increments(),
            static_cast<std::uint64_t>(kThreads) * kOpsPerThread);
  EXPECT_EQ(p.total_decrements(), p.total_increments());
  EXPECT_EQ(p.total_pending(), 0u);
  for (std::uint64_t b = 0; b < kBlocks; ++b) EXPECT_EQ(p.pending(b), 0u);
  EXPECT_EQ(p.out_of_range(), 0u);
}

}  // namespace
}  // namespace asyncgt::sem
