// Fault-path coverage for edge_file: the up-front bounds check, the
// transient-errno retry loop (recovery, budget exhaustion, fatal
// classification, short reads), the io_error context it surfaces, and the
// retry/gave-up telemetry it feeds the io_recorder. All failures are
// manufactured by the deterministic injector — no real device misbehaviour
// required.
#include "sem/edge_file.hpp"

#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "queue/traversal_abort.hpp"
#include "sem/fault_injector.hpp"
#include "telemetry/io_recorder.hpp"
#include "telemetry/metric_scope.hpp"
#include "util/cancellation.hpp"

namespace asyncgt::sem {
namespace {

class EdgeFileFault : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("agt_ef_fault_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
    path_ = (dir_ / "data.bin").string();
    payload_.resize(4096);
    for (std::size_t i = 0; i < payload_.size(); ++i) {
      payload_[i] = static_cast<char>(i * 131 + 7);
    }
    std::FILE* f = std::fopen(path_.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fwrite(payload_.data(), 1, payload_.size(), f),
              payload_.size());
    std::fclose(f);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  /// Microsecond-scale backoff so exhaustion tests stay instantaneous.
  static io_retry_policy fast_retry(std::uint32_t max_retries) {
    io_retry_policy p;
    p.max_retries = max_retries;
    p.backoff_initial_us = 1;
    p.backoff_max_us = 10;
    return p;
  }

  std::filesystem::path dir_;
  std::string path_;
  std::vector<char> payload_;
};

TEST_F(EdgeFileFault, OutOfRangeReadFailsFastWithContext) {
  edge_file f(path_);
  std::vector<char> buf(128);
  try {
    f.read_at(4096 - 64, buf.data(), 128);
    FAIL() << "expected io_error";
  } catch (const io_error& e) {
    EXPECT_EQ(e.path(), path_);
    EXPECT_EQ(e.offset(), 4096u - 64u);
    EXPECT_EQ(e.bytes(), 128u);
    EXPECT_EQ(e.error_code(), 0);
    EXPECT_EQ(e.retries(), 0u);
    EXPECT_NE(std::string(e.what()).find("out of range"), std::string::npos);
  }
}

TEST_F(EdgeFileFault, HugeOffsetDoesNotOverflowBoundsCheck) {
  edge_file f(path_);
  char b = 0;
  // offset + bytes would wrap a naive u64 sum; the subtract-form check
  // must still reject it.
  EXPECT_THROW(f.read_at(~std::uint64_t{0} - 1, &b, 8), io_error);
  EXPECT_THROW(f.read_at(0, &b, ~std::uint64_t{0}), io_error);
}

TEST_F(EdgeFileFault, TransientFaultsAreRetriedToSuccess) {
  fault_config cfg;
  cfg.p_eio = 1.0;  // every read faults...
  cfg.fail_attempts = 2;  // ...twice, then the pread goes through
  fault_injector inj(cfg);
  telemetry::io_recorder rec;
  edge_file f(path_);
  f.set_retry_policy(fast_retry(4));
  f.set_fault_injector(&inj);
  f.set_recorder(&rec);

  std::vector<char> buf(512);
  for (std::uint64_t off = 0; off + 512 <= 4096; off += 512) {
    f.read_at(off, buf.data(), 512);
    EXPECT_EQ(std::memcmp(buf.data(), payload_.data() + off, 512), 0);
  }
  const auto io = rec.snapshot();
  EXPECT_EQ(io.ops, 8u);
  EXPECT_EQ(io.retries, 16u);  // 2 per read, deterministic
  EXPECT_EQ(io.gave_up, 0u);
}

TEST_F(EdgeFileFault, RetryBudgetExhaustionGivesUpWithErrno) {
  fault_config cfg;
  cfg.p_eio = 1.0;
  cfg.fail_attempts = 10;  // outlasts the budget
  fault_injector inj(cfg);
  telemetry::io_recorder rec;
  edge_file f(path_);
  f.set_retry_policy(fast_retry(2));
  f.set_fault_injector(&inj);
  f.set_recorder(&rec);

  std::vector<char> buf(64);
  try {
    f.read_at(0, buf.data(), 64);
    FAIL() << "expected io_error";
  } catch (const io_error& e) {
    EXPECT_EQ(e.error_code(), EIO);
    EXPECT_EQ(e.retries(), 2u);
  }
  const auto io = rec.snapshot();
  EXPECT_EQ(io.retries, 2u);
  EXPECT_EQ(io.gave_up, 1u);
}

TEST_F(EdgeFileFault, FatalInjectionSkipsRetries) {
  fault_config cfg;
  cfg.p_eio = 1.0;
  cfg.fatal = true;
  fault_injector inj(cfg);
  telemetry::io_recorder rec;
  edge_file f(path_);
  f.set_retry_policy(fast_retry(8));
  f.set_fault_injector(&inj);
  f.set_recorder(&rec);

  char b = 0;
  try {
    f.read_at(0, &b, 1);
    FAIL() << "expected io_error";
  } catch (const io_error& e) {
    EXPECT_EQ(e.error_code(), EIO);
    EXPECT_EQ(e.retries(), 0u);  // fatal means no budget burned
  }
  EXPECT_EQ(rec.snapshot().retries, 0u);
  EXPECT_EQ(rec.snapshot().gave_up, 1u);
}

TEST_F(EdgeFileFault, ShortReadsStillAssembleTheFullBuffer) {
  fault_config cfg;
  cfg.p_short = 1.0;
  cfg.seed = 11;
  fault_injector inj(cfg);
  edge_file f(path_);
  f.set_fault_injector(&inj);

  std::vector<char> buf(1024);
  f.read_at(512, buf.data(), 1024);
  EXPECT_EQ(std::memcmp(buf.data(), payload_.data() + 512, 1024), 0);
  EXPECT_GT(inj.counters().shorts, 0u);
}

TEST_F(EdgeFileFault, BadSectorRangeExhaustsBudgetOnlyThere) {
  fault_config cfg;
  cfg.bad_begin = 1024;
  cfg.bad_end = 2048;
  fault_injector inj(cfg);
  edge_file f(path_);
  f.set_retry_policy(fast_retry(2));
  f.set_fault_injector(&inj);

  std::vector<char> buf(512);
  f.read_at(0, buf.data(), 512);  // clean region unaffected
  EXPECT_EQ(std::memcmp(buf.data(), payload_.data(), 512), 0);
  EXPECT_THROW(f.read_at(1024, buf.data(), 512), io_error);
  f.read_at(2048, buf.data(), 512);  // past the range: clean again
  EXPECT_EQ(std::memcmp(buf.data(), payload_.data() + 2048, 512), 0);
}

TEST_F(EdgeFileFault, ZeroRetryPolicyRestoresFailFast) {
  fault_config cfg;
  cfg.p_eio = 1.0;
  cfg.fail_attempts = 1;
  fault_injector inj(cfg);
  edge_file f(path_);
  f.set_retry_policy(fast_retry(0));
  f.set_fault_injector(&inj);
  char b = 0;
  try {
    f.read_at(0, &b, 1);
    FAIL() << "expected io_error";
  } catch (const io_error& e) {
    EXPECT_EQ(e.retries(), 0u);
  }
}

TEST_F(EdgeFileFault, MoveCarriesInjectorAndPolicy) {
  fault_config cfg;
  cfg.p_eio = 1.0;
  cfg.fail_attempts = 1;
  fault_injector inj(cfg);
  edge_file f(path_);
  f.set_retry_policy(fast_retry(4));
  f.set_fault_injector(&inj);
  edge_file moved(std::move(f));
  EXPECT_EQ(moved.injector(), &inj);
  EXPECT_EQ(moved.retry_policy().max_retries, 4u);
  char b = 0;
  moved.read_at(0, &b, 1);  // retried through the moved-to file
  EXPECT_GT(inj.counters().errors, 0u);
}

TEST_F(EdgeFileFault, GiveUpMessageCarriesOffsetAndRequestGeometry) {
  // Regression: short-read/give-up messages once said only "N bytes
  // failed"; debugging a batch-split retry needs the failing position AND
  // the original request range (docs/io_backends.md).
  fault_config cfg;
  cfg.p_eio = 1.0;
  cfg.fail_attempts = 10;
  fault_injector inj(cfg);
  edge_file f(path_);
  f.set_retry_policy(fast_retry(1));
  f.set_fault_injector(&inj);
  std::vector<char> buf(512);
  try {
    f.read_at(1024, buf.data(), 512);
    FAIL() << "expected io_error";
  } catch (const io_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("at offset 1024"), std::string::npos) << what;
    EXPECT_NE(what.find("(request [1024, +512))"), std::string::npos) << what;
    EXPECT_NE(what.find(path_), std::string::npos) << what;
  }
}

TEST_F(EdgeFileFault, FileShrankMidReadReportsTheFailingPosition) {
  edge_file f(path_);
  // Shrink the file under the open descriptor: the bounds check passed at
  // the original size, so pread hits EOF mid-request — a permanent failure
  // whose message must pinpoint where the data ran out.
  std::filesystem::resize_file(path_, 2048);
  std::vector<char> buf(1024);
  try {
    f.read_at(1536, buf.data(), 1024);
    FAIL() << "expected io_error";
  } catch (const io_error& e) {
    const std::string what = e.what();
    // 512 bytes arrive before EOF: the failing position is 1536 + 512.
    EXPECT_NE(what.find("at offset 2048"), std::string::npos) << what;
    EXPECT_NE(what.find("(request [1536, +1024))"), std::string::npos)
        << what;
    EXPECT_EQ(e.offset(), 1536u);
    EXPECT_EQ(e.bytes(), 1024u);
  }
}

TEST_F(EdgeFileFault, BatchSplitFillsHealthySlicesAroundABadOne) {
  // readv_at's split fallback must complete every clean slice — including
  // those staged after the bad one — before rethrowing the bad slice's
  // error with its own geometry.
  fault_config cfg;
  cfg.bad_begin = 1024;
  cfg.bad_end = 2048;
  fault_injector inj(cfg);
  edge_file f(path_);
  f.set_retry_policy(fast_retry(1));
  f.set_fault_injector(&inj);
  std::vector<char> b0(1024), b1(1024), b2(1024);
  const io_slice slices[] = {{b0.data(), 1024},
                             {b1.data(), 1024},
                             {b2.data(), 1024}};
  try {
    f.readv_at(0, slices, 3);
    FAIL() << "expected io_error";
  } catch (const io_error& e) {
    EXPECT_EQ(e.offset(), 1024u);  // the bad slice, not the batch
    EXPECT_EQ(e.bytes(), 1024u);
    EXPECT_NE(std::string(e.what()).find("(request [1024, +1024))"),
              std::string::npos)
        << e.what();
  }
  EXPECT_EQ(std::memcmp(b0.data(), payload_.data(), 1024), 0);
  EXPECT_EQ(std::memcmp(b2.data(), payload_.data() + 2048, 1024), 0);
}

// ---- stall mode (docs/robustness.md) ------------------------------------

TEST_F(EdgeFileFault, StalledReadBlocksUntilStallsAreReleased) {
  fault_config cfg;
  cfg.p_stall = 1.0;
  fault_injector inj(cfg);
  edge_file f(path_);
  f.set_fault_injector(&inj);

  std::atomic<bool> done{false};
  std::vector<char> buf(512);
  std::thread reader([&] {
    f.read_at(0, buf.data(), 512);
    done.store(true, std::memory_order_release);
  });
  // The read must be wedged, not failing: give it time to prove it.
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_FALSE(done.load(std::memory_order_acquire));
  inj.release_stalls();
  reader.join();
  EXPECT_TRUE(done.load(std::memory_order_acquire));
  // The stalled read still delivered the right bytes once released.
  EXPECT_EQ(std::memcmp(buf.data(), payload_.data(), 512), 0);
  EXPECT_EQ(inj.counters().stalls, 1u);
}

TEST_F(EdgeFileFault, StalledReadUnwindsAtTheAmbientAbortHint) {
  fault_config cfg;
  cfg.p_stall = 1.0;
  fault_injector inj(cfg);
  edge_file f(path_);
  f.set_fault_injector(&inj);

  // The reading thread carries a job's ambient attribution — exactly how a
  // pool worker blocked in a stalled pread sees the watchdog's cancel.
  telemetry::metric_scope scope(1, "stall-test", 1);
  std::atomic<bool> cancelled{false};
  std::thread reader([&] {
    telemetry::metric_scope::attribution attr(&scope, 0);
    char b = 0;
    try {
      f.read_at(0, &b, 1);
    } catch (const operation_cancelled&) {
      cancelled.store(true, std::memory_order_release);
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(cancelled.load(std::memory_order_acquire));
  scope.request_abort(
      static_cast<std::uint32_t>(abort_reason::deadline_exceeded));
  reader.join();
  EXPECT_TRUE(cancelled.load(std::memory_order_acquire))
      << "the stall loop must poll the scope hint and unwind cooperatively";
}

TEST(IoRetryPolicy, BackoffGrowsGeometricallyAndCaps) {
  io_retry_policy p;
  p.backoff_initial_us = 50;
  p.backoff_multiplier = 2.0;
  p.backoff_max_us = 300;
  EXPECT_DOUBLE_EQ(p.backoff_us(1), 50.0);
  EXPECT_DOUBLE_EQ(p.backoff_us(2), 100.0);
  EXPECT_DOUBLE_EQ(p.backoff_us(3), 200.0);
  EXPECT_DOUBLE_EQ(p.backoff_us(4), 300.0);   // capped
  EXPECT_DOUBLE_EQ(p.backoff_us(40), 300.0);  // stays capped, no overflow
}

TEST(IoRetryPolicy, ValidateRejectsBadKnobs) {
  io_retry_policy shrink;
  shrink.backoff_multiplier = 0.5;
  EXPECT_THROW(shrink.validate(), std::invalid_argument);
  io_retry_policy jitter;
  jitter.jitter = 1.5;
  EXPECT_THROW(jitter.validate(), std::invalid_argument);
}

TEST(IoErrorClassification, TransientVsFatal) {
  EXPECT_TRUE(is_transient_errno(EIO));
  EXPECT_TRUE(is_transient_errno(EAGAIN));
  EXPECT_TRUE(is_transient_errno(EINTR));
  EXPECT_TRUE(is_transient_errno(EBUSY));
  EXPECT_TRUE(is_transient_errno(ETIMEDOUT));
  EXPECT_FALSE(is_transient_errno(EBADF));
  EXPECT_FALSE(is_transient_errno(EINVAL));
  EXPECT_FALSE(is_transient_errno(EFAULT));
  EXPECT_FALSE(is_transient_errno(0));
}

}  // namespace
}  // namespace asyncgt::sem
