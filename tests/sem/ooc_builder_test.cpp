#include "sem/ooc_builder.hpp"

#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>

#include "gen/rmat.hpp"
#include "gen/weights.hpp"
#include "graph/builder.hpp"
#include "graph/graph_io.hpp"
#include "sem/sem_csr.hpp"

namespace asyncgt::sem {
namespace {

class OocBuilderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("agt_ooc_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  ooc_build_options tiny_budget() const {
    ooc_build_options opt;
    opt.memory_budget_bytes = 256;  // force many spill runs
    opt.scratch_dir = dir_ / "scratch";
    return opt;
  }

  std::string out(const std::string& name) const {
    return (dir_ / name).string();
  }

  static bool files_identical(const std::string& a, const std::string& b) {
    std::ifstream fa(a, std::ios::binary), fb(b, std::ios::binary);
    const std::string ca((std::istreambuf_iterator<char>(fa)),
                         std::istreambuf_iterator<char>());
    const std::string cb((std::istreambuf_iterator<char>(fb)),
                         std::istreambuf_iterator<char>());
    return !ca.empty() && ca == cb;
  }

  std::filesystem::path dir_;
};

TEST_F(OocBuilderTest, ByteIdenticalToInMemoryBuilderUnweighted) {
  const rmat_params p = rmat_a(9, 13);
  const auto edges = rmat_edges<vertex32>(p);

  const csr32 im = build_csr<vertex32>(p.num_vertices(), edges);
  write_graph(out("im.agt"), im);

  ooc_graph_builder<vertex32> b(p.num_vertices(), out("ooc.agt"),
                                tiny_budget());
  for (const auto& e : edges) b.add_edge(e.src, e.dst, e.weight);
  const auto stats = b.finalize();

  EXPECT_GT(stats.sort_runs, 2u);  // the tiny budget really spilled
  EXPECT_EQ(stats.output_edges, im.num_edges());
  EXPECT_TRUE(files_identical(out("im.agt"), out("ooc.agt")));
}

TEST_F(OocBuilderTest, ByteIdenticalToInMemoryBuilderWeighted) {
  const rmat_params p = rmat_a(8, 21);
  auto edges = rmat_edges<vertex32>(p);
  for (auto& e : edges) {
    e.weight = make_weight(weight_scheme::uniform, e.src, e.dst,
                           p.num_vertices(), 5);
  }
  const csr32 im = build_csr<vertex32>(p.num_vertices(), edges);
  write_graph(out("imw.agt"), im);

  ooc_graph_builder<vertex32> b(p.num_vertices(), out("oocw.agt"),
                                tiny_budget());
  for (const auto& e : edges) b.add_edge(e.src, e.dst, e.weight);
  b.finalize();
  EXPECT_TRUE(files_identical(out("imw.agt"), out("oocw.agt")));
}

TEST_F(OocBuilderTest, SymmetrizeMatchesInMemory) {
  const rmat_params p = rmat_b(8, 3);
  const auto edges = rmat_edges<vertex32>(p);
  build_options im_opt;
  im_opt.symmetrize = true;
  const csr32 im = build_csr<vertex32>(p.num_vertices(), edges, im_opt);
  write_graph(out("ims.agt"), im);

  ooc_build_options opt = tiny_budget();
  opt.symmetrize = true;
  ooc_graph_builder<vertex32> b(p.num_vertices(), out("oocs.agt"), opt);
  for (const auto& e : edges) b.add_edge(e.src, e.dst, e.weight);
  b.finalize();
  EXPECT_TRUE(files_identical(out("ims.agt"), out("oocs.agt")));
}

TEST_F(OocBuilderTest, RemovesSelfLoopsAndDuplicates) {
  ooc_graph_builder<vertex32> b(3, out("d.agt"), tiny_budget());
  b.add_edge(0, 0);  // self loop
  b.add_edge(0, 1);
  b.add_edge(0, 1);  // duplicate
  b.add_edge(1, 2);
  const auto stats = b.finalize();
  EXPECT_EQ(stats.input_edges, 4u);
  EXPECT_EQ(stats.output_edges, 2u);
  const csr32 g = read_graph32(out("d.agt"));
  EXPECT_EQ(g.num_edges(), 2u);
}

TEST_F(OocBuilderTest, DuplicateKeepsLowestWeight) {
  ooc_graph_builder<vertex32> b(2, out("w.agt"), tiny_budget());
  b.add_edge(0, 1, 9);
  b.add_edge(0, 1, 3);
  b.finalize();
  const csr32 g = read_graph32(out("w.agt"));
  g.for_each_out_edge(0, [](vertex32, weight_t w) { EXPECT_EQ(w, 3u); });
}

TEST_F(OocBuilderTest, OutOfRangeEdgeRejected) {
  ooc_graph_builder<vertex32> b(2, out("x.agt"), tiny_budget());
  EXPECT_THROW(b.add_edge(0, 5), std::invalid_argument);
}

TEST_F(OocBuilderTest, DoubleFinalizeRejected) {
  ooc_graph_builder<vertex32> b(2, out("y.agt"), tiny_budget());
  b.add_edge(0, 1);
  b.finalize();
  EXPECT_THROW(b.finalize(), std::logic_error);
}

TEST_F(OocBuilderTest, OutputTraversableSemiExternally) {
  const rmat_params p = rmat_a(8, 99);
  ooc_graph_builder<vertex32> b(p.num_vertices(), out("t.agt"),
                                tiny_budget());
  for (const auto& e : rmat_edges<vertex32>(p)) {
    b.add_edge(e.src, e.dst, e.weight);
  }
  b.finalize();
  sem_csr32 sg(out("t.agt"));
  EXPECT_EQ(sg.num_vertices(), p.num_vertices());
  std::uint64_t edges_seen = 0;
  for (vertex32 v = 0; v < sg.num_vertices(); ++v) {
    sg.for_each_out_edge(v, [&](vertex32 t, weight_t) {
      EXPECT_LT(t, sg.num_vertices());
      ++edges_seen;
    });
  }
  EXPECT_EQ(edges_seen, sg.num_edges());
}

TEST_F(OocBuilderTest, EmitReverseByteIdenticalToInMemoryTranspose) {
  const rmat_params p = rmat_a(8, 17);
  const auto edges = rmat_edges<vertex32>(p);

  const csr32 im = build_csr<vertex32>(p.num_vertices(), edges);
  write_graph(out("rref.agt"), im.transpose());

  ooc_build_options opt = tiny_budget();
  opt.emit_reverse = true;
  ooc_graph_builder<vertex32> b(p.num_vertices(), out("r.agt"), opt);
  for (const auto& e : edges) b.add_edge(e.src, e.dst, e.weight);
  b.finalize();

  ASSERT_TRUE(asyncgt::has_reverse_file(out("r.agt")));
  EXPECT_TRUE(files_identical(out("rref.agt"),
                              asyncgt::reverse_path_for(out("r.agt"))));
}

TEST_F(OocBuilderTest, EmitReverseWeighted) {
  ooc_build_options opt = tiny_budget();
  opt.emit_reverse = true;
  ooc_graph_builder<vertex32> b(3, out("rw.agt"), opt);
  b.add_edge(0, 2, 5);
  b.add_edge(1, 2, 9);
  b.finalize();
  const csr32 rev =
      read_graph32(asyncgt::reverse_path_for(out("rw.agt")));
  std::vector<std::pair<vertex32, weight_t>> seen;
  rev.for_each_out_edge(2, [&](vertex32 t, weight_t w) {
    seen.emplace_back(t, w);
  });
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0], (std::pair<vertex32, weight_t>{0, 5}));
  EXPECT_EQ(seen[1], (std::pair<vertex32, weight_t>{1, 9}));
}

TEST_F(OocBuilderTest, EmitReverseOpensSemiExternally) {
  const rmat_params p = rmat_a(8, 31);
  ooc_build_options opt = tiny_budget();
  opt.emit_reverse = true;
  ooc_graph_builder<vertex32> b(p.num_vertices(), out("rs.agt"), opt);
  for (const auto& e : rmat_edges<vertex32>(p)) {
    b.add_edge(e.src, e.dst, e.weight);
  }
  b.finalize();
  sem_csr32 sg(out("rs.agt"));
  sg.open_reverse();
  ASSERT_TRUE(sg.has_reverse());
  std::uint64_t in_edges = 0;
  for (vertex32 v = 0; v < sg.num_vertices(); ++v) {
    in_edges += sg.in_degree(v);
  }
  EXPECT_EQ(in_edges, sg.num_edges());
}

TEST_F(OocBuilderTest, NoReverseFileByDefault) {
  ooc_graph_builder<vertex32> b(2, out("nr.agt"), tiny_budget());
  b.add_edge(0, 1);
  b.finalize();
  EXPECT_FALSE(asyncgt::has_reverse_file(out("nr.agt")));
}

TEST_F(OocBuilderTest, EmptyGraph) {
  ooc_graph_builder<vertex32> b(4, out("e.agt"), tiny_budget());
  const auto stats = b.finalize();
  EXPECT_EQ(stats.output_edges, 0u);
  const csr32 g = read_graph32(out("e.agt"));
  EXPECT_EQ(g.num_vertices(), 4u);
  EXPECT_EQ(g.num_edges(), 0u);
}

}  // namespace
}  // namespace asyncgt::sem
