#include "sem/sem_csr.hpp"

#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>

#include "core/async_bfs.hpp"
#include "core/async_cc.hpp"
#include "core/async_sssp.hpp"
#include "baselines/serial_bfs.hpp"
#include "baselines/serial_cc.hpp"
#include "baselines/serial_sssp.hpp"
#include "gen/rmat.hpp"
#include "gen/weights.hpp"
#include "graph/builder.hpp"
#include "graph/graph_io.hpp"
#include "sem/edge_file.hpp"

namespace asyncgt::sem {
namespace {

class SemCsrTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("agt_sem_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string write_temp(const csr32& g, const std::string& name) {
    const std::string p = (dir_ / name).string();
    write_graph(p, g);
    return p;
  }

  std::filesystem::path dir_;
};

TEST_F(SemCsrTest, MirrorsInMemoryAdjacency) {
  const csr32 g = rmat_graph<vertex32>(rmat_a(8));
  sem_csr32 sg(write_temp(g, "g.agt"));
  ASSERT_EQ(sg.num_vertices(), g.num_vertices());
  ASSERT_EQ(sg.num_edges(), g.num_edges());
  for (vertex32 v = 0; v < g.num_vertices(); ++v) {
    ASSERT_EQ(sg.out_degree(v), g.out_degree(v));
    std::vector<vertex32> sem_nb;
    sg.for_each_out_edge(v, [&](vertex32 t, weight_t) {
      sem_nb.push_back(t);
    });
    const auto im_nb = g.neighbors(v);
    ASSERT_EQ(sem_nb.size(), im_nb.size());
    for (std::size_t i = 0; i < im_nb.size(); ++i) {
      EXPECT_EQ(sem_nb[i], im_nb[i]);
    }
  }
}

TEST_F(SemCsrTest, WeightedAdjacencyRoundTrips) {
  const csr32 g =
      add_weights(rmat_graph<vertex32>(rmat_a(7)), weight_scheme::uniform, 3);
  sem_csr32 sg(write_temp(g, "w.agt"));
  ASSERT_TRUE(sg.is_weighted());
  for (vertex32 v = 0; v < g.num_vertices(); ++v) {
    std::vector<weight_t> sem_w, im_w;
    sg.for_each_out_edge(v, [&](vertex32, weight_t w) {
      sem_w.push_back(w);
    });
    g.for_each_out_edge(v, [&](vertex32, weight_t w) { im_w.push_back(w); });
    EXPECT_EQ(sem_w, im_w);
  }
}

TEST_F(SemCsrTest, IdWidthMismatchRejected) {
  const csr32 g = rmat_graph<vertex32>(rmat_a(6));
  const std::string p = write_temp(g, "m.agt");
  EXPECT_THROW(sem_csr64{p}, std::runtime_error);
}

TEST_F(SemCsrTest, MemoryIsVertexIndexOnly) {
  const csr32 g = rmat_graph<vertex32>(rmat_a(8));
  sem_csr32 sg(write_temp(g, "mem.agt"));
  EXPECT_EQ(sg.memory_bytes(), (g.num_vertices() + 1) * sizeof(std::uint64_t));
  EXPECT_GT(sg.device_bytes(), sg.memory_bytes());
}

TEST_F(SemCsrTest, ChargesDeviceForReads) {
  const csr32 g = rmat_graph<vertex32>(rmat_a(6));
  ssd_params p;
  p.read_latency_us = 1.0;
  p.channels = 4;
  ssd_model dev(p);
  sem_csr32 sg(write_temp(g, "d.agt"), &dev);
  std::uint64_t edges_seen = 0;
  for (vertex32 v = 0; v < sg.num_vertices(); ++v) {
    sg.for_each_out_edge(v, [&](vertex32, weight_t) { ++edges_seen; });
  }
  EXPECT_EQ(edges_seen, g.num_edges());
  // One read per non-empty adjacency list on an unweighted graph.
  std::uint64_t nonempty = 0;
  for (vertex32 v = 0; v < g.num_vertices(); ++v) {
    nonempty += (g.out_degree(v) > 0);
  }
  EXPECT_EQ(dev.counters().reads, nonempty);
}

TEST_F(SemCsrTest, AsyncBfsOverSemMatchesSerialInMemory) {
  const csr32 g = rmat_graph<vertex32>(rmat_a(8));
  sem_csr32 sg(write_temp(g, "bfs.agt"));
  visitor_queue_config cfg;
  cfg.num_threads = 16;
  cfg.secondary_vertex_sort = true;  // the paper's SEM configuration
  const auto sem_r = async_bfs(sg, vertex32{0}, cfg);
  const auto ref = serial_bfs(g, vertex32{0});
  EXPECT_EQ(sem_r.level, ref.level);
}

TEST_F(SemCsrTest, AsyncSsspOverSemMatchesDijkstra) {
  const csr32 g =
      add_weights(rmat_graph<vertex32>(rmat_a(8)), weight_scheme::uniform, 7);
  sem_csr32 sg(write_temp(g, "sssp.agt"));
  visitor_queue_config cfg;
  cfg.num_threads = 16;
  cfg.secondary_vertex_sort = true;
  const auto sem_r = async_sssp(sg, vertex32{0}, cfg);
  EXPECT_EQ(sem_r.dist, dijkstra_sssp(g, vertex32{0}).dist);
}

TEST_F(SemCsrTest, AsyncCcOverSemMatchesSerial) {
  const csr32 g = rmat_graph_undirected<vertex32>(rmat_a(8));
  sem_csr32 sg(write_temp(g, "cc.agt"));
  visitor_queue_config cfg;
  cfg.num_threads = 16;
  cfg.secondary_vertex_sort = true;
  const auto sem_r = async_cc(sg, cfg);
  EXPECT_EQ(sem_r.component, serial_cc(g).component);
}

TEST_F(SemCsrTest, TraversalWithSimulatedDeviceStillCorrect) {
  const csr32 g = rmat_graph<vertex32>(rmat_a(6));
  ssd_params p;
  p.read_latency_us = 20.0;
  p.channels = 8;
  ssd_model dev(p);
  sem_csr32 sg(write_temp(g, "dev.agt"), &dev);
  visitor_queue_config cfg;
  cfg.num_threads = 32;  // oversubscription hides the simulated latency
  const auto sem_r = async_bfs(sg, vertex32{0}, cfg);
  EXPECT_EQ(sem_r.level, serial_bfs(g, vertex32{0}).level);
  EXPECT_GT(dev.counters().reads, 0u);
}

TEST_F(SemCsrTest, OpenReverseServesInEdges) {
  csr32 g = rmat_graph<vertex32>(rmat_a(8));
  const std::string p = (dir_ / "rev.agt").string();
  write_graph_with_reverse(p, g);
  sem_csr32 sg(p);
  EXPECT_FALSE(sg.has_reverse());
  sg.open_reverse();
  ASSERT_TRUE(sg.has_reverse());
  g.ensure_reverse();
  for (vertex32 v = 0; v < g.num_vertices(); ++v) {
    ASSERT_EQ(sg.in_degree(v), g.in_degree(v));
    std::vector<vertex32> sem_in;
    sg.for_each_in_edge(v, [&](vertex32 s, weight_t) {
      sem_in.push_back(s);
    });
    const auto im_in = g.in_neighbors(v);
    ASSERT_EQ(sem_in.size(), im_in.size());
    for (std::size_t i = 0; i < im_in.size(); ++i) {
      EXPECT_EQ(sem_in[i], im_in[i]);
    }
  }
}

TEST_F(SemCsrTest, OpenReverseIdempotent) {
  const csr32 g = rmat_graph<vertex32>(rmat_a(6));
  const std::string p = (dir_ / "ri.agt").string();
  write_graph_with_reverse(p, g);
  sem_csr32 sg(p);
  sg.open_reverse();
  const std::uint64_t bytes = sg.memory_bytes();
  sg.open_reverse();
  EXPECT_EQ(sg.memory_bytes(), bytes);
}

TEST_F(SemCsrTest, OpenReverseWithoutFileThrows) {
  const csr32 g = rmat_graph<vertex32>(rmat_a(6));
  sem_csr32 sg(write_temp(g, "norev.agt"));
  EXPECT_THROW(sg.open_reverse(), std::runtime_error);
}

TEST_F(SemCsrTest, ReverseDoublesResidentMemory) {
  const csr32 g = rmat_graph<vertex32>(rmat_a(6));
  const std::string p = (dir_ / "rm.agt").string();
  write_graph_with_reverse(p, g);
  sem_csr32 sg(p);
  const std::uint64_t fwd = sg.memory_bytes();
  sg.open_reverse();
  // Both directions keep only their (n+1)-entry vertex index resident.
  EXPECT_EQ(sg.memory_bytes(), 2 * fwd);
}

TEST(EdgeFile, MissingFileThrows) {
  EXPECT_THROW(edge_file("/nonexistent/path/file.bin"), std::runtime_error);
}

TEST_F(SemCsrTest, EdgeFileReadAtExactBytes) {
  const csr32 g = rmat_graph<vertex32>(rmat_a(6));
  const std::string p = write_temp(g, "raw.agt");
  edge_file f(p);
  EXPECT_TRUE(f.is_open());
  EXPECT_EQ(f.size(), std::filesystem::file_size(p));
  agt_header h{};
  f.read_at(0, &h, sizeof(h));
  EXPECT_EQ(h.magic, agt_magic);
  EXPECT_EQ(h.num_vertices, g.num_vertices());
}

TEST_F(SemCsrTest, EdgeFileReadPastEndThrows) {
  const csr32 g = rmat_graph<vertex32>(rmat_a(6));
  edge_file f(write_temp(g, "eof.agt"));
  char buf[16];
  EXPECT_THROW(f.read_at(f.size() - 4, buf, sizeof(buf)), std::runtime_error);
}

TEST_F(SemCsrTest, EdgeFileMoveSemantics) {
  const csr32 g = rmat_graph<vertex32>(rmat_a(6));
  edge_file a(write_temp(g, "mv.agt"));
  const std::uint64_t size = a.size();
  edge_file b(std::move(a));
  EXPECT_FALSE(a.is_open());
  EXPECT_TRUE(b.is_open());
  EXPECT_EQ(b.size(), size);
  edge_file c;
  c = std::move(b);
  EXPECT_TRUE(c.is_open());
}

}  // namespace
}  // namespace asyncgt::sem
