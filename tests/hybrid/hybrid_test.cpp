// Unit tests for the frontier-adaptive hybrid traversal layer
// (`ctest -L hybrid`; docs/hybrid_traversal.md): the frontier_estimator's
// alpha/beta decision tests, the hybrid_bfs / hybrid_cc drivers against
// serial and pure-async baselines, the reverse-view precondition, the
// per-phase accounting in hybrid_extra, the option plumbing through
// traversal_options::from_flags, and the metrics the drivers record.
//
// Label equality with the async engine across storage modes lives in the
// differential suite (tests/diff); this file owns the hybrid-specific
// behaviour on graphs small enough to reason about by hand.
#include "core/hybrid_traversal.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "baselines/serial_bfs.hpp"
#include "baselines/serial_cc.hpp"
#include "core/async_bfs.hpp"
#include "core/async_cc.hpp"
#include "gen/rmat.hpp"
#include "graph/builder.hpp"
#include "queue/frontier_estimator.hpp"
#include "service/traversal_options.hpp"
#include "telemetry/metrics_registry.hpp"
#include "util/options.hpp"

namespace asyncgt {
namespace {

visitor_queue_config small_cfg() {
  visitor_queue_config c;
  c.num_threads = 4;
  return c;
}

traversal_options hybrid_opts(double alpha, double beta) {
  traversal_options o(small_cfg());
  o.hybrid = true;
  o.hybrid_alpha = alpha;
  o.hybrid_beta = beta;
  return o;
}

csr32 reversed(csr32 g) {
  g.ensure_reverse();
  return g;
}

// ---- frontier_estimator ----

TEST(FrontierEstimator, TracksLastAndPeak) {
  frontier_estimator est;
  EXPECT_EQ(est.samples(), 0u);
  est.sample(5);
  est.sample(12);
  est.sample(3);
  EXPECT_EQ(est.last_queued(), 3u);
  EXPECT_EQ(est.peak_queued(), 12u);
  EXPECT_EQ(est.samples(), 3u);
  est.reset();
  EXPECT_EQ(est.last_queued(), 0u);
  EXPECT_EQ(est.peak_queued(), 0u);
  EXPECT_EQ(est.samples(), 0u);
}

TEST(FrontierEstimator, AlphaTestIsStrict) {
  frontier_estimator est(2.0, 24.0);
  // m_f * alpha > m_u: 10 * 2 = 20 is not > 20, but is > 19.
  EXPECT_FALSE(est.go_bottom_up(10, 20));
  EXPECT_TRUE(est.go_bottom_up(10, 19));
  EXPECT_FALSE(est.go_bottom_up(0, 0));
}

TEST(FrontierEstimator, BetaTestIsStrict) {
  frontier_estimator est(14.0, 4.0);
  // n_f * beta > n: 25 * 4 = 100 is not > 100, but is > 99.
  EXPECT_FALSE(est.stay_bottom_up(25, 100));
  EXPECT_TRUE(est.stay_bottom_up(25, 99));
  EXPECT_FALSE(est.stay_bottom_up(0, 100));
}

TEST(FrontierEstimator, DefaultsMatchLiterature) {
  frontier_estimator est;
  EXPECT_DOUBLE_EQ(est.alpha(), 14.0);
  EXPECT_DOUBLE_EQ(est.beta(), 24.0);
}

// ---- preconditions ----

TEST(HybridBfs, ThrowsWithoutReverseView) {
  const csr32 g = build_csr<vertex32>(3, {{0, 1, 1}, {1, 2, 1}});
  EXPECT_THROW(hybrid_bfs(g, vertex32{0}, hybrid_opts(14, 24)),
               std::invalid_argument);
}

TEST(HybridBfs, ThrowsOnStartOutOfRange) {
  const csr32 g = reversed(build_csr<vertex32>(3, {{0, 1, 1}}));
  EXPECT_THROW(hybrid_bfs(g, vertex32{9}, hybrid_opts(14, 24)),
               std::out_of_range);
}

TEST(HybridCc, ThrowsWithoutReverseView) {
  const csr32 g = build_csr<vertex32>(3, {{0, 1, 1}, {1, 0, 1}});
  EXPECT_THROW(hybrid_cc(g, hybrid_opts(14, 24)), std::invalid_argument);
}

// ---- hand-checkable graphs ----

TEST(HybridBfs, DirectedChainExactLevels) {
  // 0 -> 1 -> 2 -> 3: one vertex per level. A near-zero alpha keeps the
  // run pure top-down — vertex 4's unreachable out-edge pins the
  // unexplored-edge count above zero, so the alpha test (which any
  // frontier wins once m_u hits 0) never fires and the capped-level
  // driver is exercised alone.
  const csr32 g = reversed(build_csr<vertex32>(
      5, {{0, 1, 1}, {1, 2, 1}, {2, 3, 1}, {4, 0, 1}}));
  hybrid_extra extra;
  const auto r = hybrid_bfs(g, vertex32{0}, hybrid_opts(0.01, 24), &extra);
  for (vertex32 v = 0; v < 4; ++v) EXPECT_EQ(r.level[v], v);
  EXPECT_EQ(r.level[4], infinite_distance<dist_t>);
  EXPECT_EQ(r.visited_count(), 4u);
  EXPECT_EQ(extra.direction_switches, 0u);
  ASSERT_FALSE(extra.phases.empty());
  for (const auto& p : extra.phases) EXPECT_NE(p.direction, "bottom-up");
}

TEST(HybridBfs, StarForcedBottomUp) {
  // Undirected star: an enormous alpha flips to bottom-up at the first
  // decision point; beta=1e9 keeps it there until the frontier empties.
  std::vector<edge<vertex32>> edges;
  for (vertex32 leaf = 1; leaf < 32; ++leaf) {
    edges.push_back({0, leaf, 1});
    edges.push_back({leaf, 0, 1});
  }
  const csr32 g = reversed(build_csr<vertex32>(32, edges));
  hybrid_extra extra;
  const auto r = hybrid_bfs(g, vertex32{0}, hybrid_opts(1e9, 1e9), &extra);
  EXPECT_EQ(r.level, serial_bfs(g, vertex32{0}).level);
  EXPECT_GE(extra.direction_switches, 1u);
  bool saw_bottom_up = false;
  for (const auto& p : extra.phases) {
    saw_bottom_up |= p.direction == "bottom-up";
  }
  EXPECT_TRUE(saw_bottom_up);
}

TEST(HybridBfs, UnreachableVerticesStayInfinite) {
  // 0 -> 1; 2 and 3 unreachable (3 has an edge INTO the component, which
  // the bottom-up sweeps must not mistake for reachability).
  const csr32 g = reversed(build_csr<vertex32>(4, {{0, 1, 1}, {3, 0, 1}}));
  const auto r = hybrid_bfs(g, vertex32{0}, hybrid_opts(1e9, 1e9));
  EXPECT_EQ(r.level[0], 0u);
  EXPECT_EQ(r.level[1], 1u);
  EXPECT_EQ(r.level[2], infinite_distance<dist_t>);
  EXPECT_EQ(r.level[3], infinite_distance<dist_t>);
}

TEST(HybridBfs, SelfLoopsAndDuplicateEdgesHarmless) {
  const csr32 g = reversed(build_csr<vertex32>(
      3, {{0, 0, 1}, {0, 1, 1}, {0, 1, 1}, {1, 2, 1}, {2, 2, 1}}));
  const auto r = hybrid_bfs(g, vertex32{0}, hybrid_opts(1e9, 1e9));
  EXPECT_EQ(r.level, serial_bfs(g, vertex32{0}).level);
}

TEST(HybridCc, SingletonsAndTwoComponents) {
  // {0,1,2} a path, {4,5} an edge, 3 isolated. Min-id labels.
  const csr32 g = reversed(build_csr<vertex32>(
      6, {{0, 1, 1}, {1, 0, 1}, {1, 2, 1}, {2, 1, 1},
          {4, 5, 1}, {5, 4, 1}}));
  hybrid_extra extra;
  const auto r = hybrid_cc(g, hybrid_opts(14.0, 1.0), &extra);
  const std::vector<vertex32> want = {0, 0, 0, 3, 4, 4};
  EXPECT_EQ(r.component, want);
  EXPECT_EQ(r.num_components(), 3u);
  // Singletons never relabel, but the init relaxations keep the work
  // accounting non-negative: updates covers at least every vertex.
  EXPECT_GE(r.updates, g.num_vertices());
  const auto w = r.work();
  EXPECT_EQ(w.label_corrections, r.updates - g.num_vertices());
}

TEST(HybridCc, EmptyAndSingleVertexGraphs) {
  {
    const csr32 g = reversed(build_csr<vertex32>(1, {}));
    const auto r = hybrid_cc(g, hybrid_opts(14, 24));
    EXPECT_EQ(r.num_components(), 1u);
  }
  {
    const csr32 g = reversed(build_csr<vertex32>(5, {}));
    const auto r = hybrid_cc(g, hybrid_opts(1.0, 1e9));
    EXPECT_EQ(r.num_components(), 5u);
    for (vertex32 v = 0; v < 5; ++v) EXPECT_EQ(r.component[v], v);
  }
}

// ---- against the async engine on generated graphs ----

TEST(HybridBfs, MatchesAsyncOnRmat) {
  const csr32 g = reversed(rmat_graph_undirected<vertex32>(rmat_a(10, 5)));
  const auto plain = async_bfs(g, vertex32{0}, small_cfg());
  hybrid_extra extra;
  const auto hyb = hybrid_bfs(g, vertex32{0}, hybrid_opts(14.0, 24.0),
                              &extra);
  EXPECT_EQ(hyb.level, plain.level);
  EXPECT_GE(extra.direction_switches, 1u);
  // The forced bottom-up middle must beat pushing every edge.
  EXPECT_LT(extra.edge_inspections, plain.stats.pushes);
}

TEST(HybridCc, MatchesAsyncOnRmat) {
  const csr32 g = reversed(rmat_graph_undirected<vertex32>(rmat_a(9, 11)));
  const auto plain = async_cc(g, small_cfg());
  hybrid_extra extra;
  const auto hyb = hybrid_cc(g, hybrid_opts(14.0, 2.0), &extra);
  EXPECT_EQ(hyb.component, plain.component);
  ASSERT_FALSE(extra.phases.empty());
  EXPECT_EQ(extra.phases.front().direction, "bottom-up");
}

// ---- option plumbing and telemetry ----

TEST(HybridOptions, FromFlagsParsesKnobs) {
  const char* argv[] = {"prog", "--hybrid", "--hybrid-alpha=3.5",
                        "--hybrid-beta=9"};
  const options opt(4, argv);
  const auto o = traversal_options::from_flags(opt);
  EXPECT_TRUE(o.hybrid);
  EXPECT_DOUBLE_EQ(o.hybrid_alpha, 3.5);
  EXPECT_DOUBLE_EQ(o.hybrid_beta, 9.0);
}

TEST(HybridOptions, FromFlagsDefaultsOff) {
  const char* argv[] = {"prog"};
  const options opt(1, argv);
  const auto o = traversal_options::from_flags(opt);
  EXPECT_FALSE(o.hybrid);
  EXPECT_DOUBLE_EQ(o.hybrid_alpha, 14.0);
  EXPECT_DOUBLE_EQ(o.hybrid_beta, 24.0);
}

TEST(HybridMetrics, RecordsSwitchesInspectionsAndFrontierPeak) {
  telemetry::metrics_registry reg(8);
  const csr32 g = reversed(rmat_graph_undirected<vertex32>(rmat_a(9, 3)));
  traversal_options topt = hybrid_opts(1.0, 64.0).with_metrics(&reg);
  hybrid_extra extra;
  const auto r = hybrid_bfs(g, vertex32{0}, topt, &extra);
  ASSERT_GT(r.visited_count(), 0u);
  const auto snap = reg.scrape();
  EXPECT_EQ(snap.value_of("engine.direction_switches"),
            extra.direction_switches);
  EXPECT_EQ(snap.value_of("hybrid_bfs.edge_inspections"),
            extra.edge_inspections);
  // The estimator's worker samples surface as a high-water gauge.
  EXPECT_GT(snap.value_of("queue.frontier_peak"), 0u);
}

}  // namespace
}  // namespace asyncgt
