#include "gen/grid.hpp"

#include <gtest/gtest.h>

#include "graph/graph_stats.hpp"

namespace asyncgt {
namespace {

TEST(GridGraph, SizesAndSymmetry) {
  const csr32 g = grid_graph<vertex32>(4, 3);
  EXPECT_EQ(g.num_vertices(), 12u);
  // 2*W*H - W - H undirected edges, doubled in the symmetric CSR.
  EXPECT_EQ(g.num_edges(), 2u * (2 * 4 * 3 - 4 - 3));
  EXPECT_TRUE(is_symmetric(g));
}

TEST(GridGraph, CornerAndInteriorDegrees) {
  const csr32 g = grid_graph<vertex32>(5, 5);
  EXPECT_EQ(g.out_degree(0), 2u);       // corner
  EXPECT_EQ(g.out_degree(2), 3u);       // edge
  EXPECT_EQ(g.out_degree(12), 4u);      // interior (2,2)
}

TEST(GridGraph, SingleRowIsPath) {
  const csr32 g = grid_graph<vertex32>(6, 1);
  EXPECT_EQ(g.out_degree(0), 1u);
  EXPECT_EQ(g.out_degree(3), 2u);
  EXPECT_EQ(g.out_degree(5), 1u);
}

TEST(GridGraph, EmptyDimensionRejected) {
  EXPECT_THROW(grid_graph<vertex32>(0, 3), std::invalid_argument);
  EXPECT_THROW(grid_graph<vertex32>(3, 0), std::invalid_argument);
}

TEST(ChainGraph, DirectedStructure) {
  const csr32 g = chain_graph<vertex32>(5);
  EXPECT_EQ(g.num_edges(), 4u);
  EXPECT_EQ(g.out_degree(0), 1u);
  EXPECT_EQ(g.out_degree(4), 0u);  // sink
  EXPECT_FALSE(is_symmetric(g));
}

TEST(ChainGraph, UndirectedVariant) {
  const csr32 g = chain_graph<vertex32>(5, /*undirected=*/true);
  EXPECT_EQ(g.num_edges(), 8u);
  EXPECT_TRUE(is_symmetric(g));
}

TEST(ChainGraph, SingleVertex) {
  const csr32 g = chain_graph<vertex32>(1);
  EXPECT_EQ(g.num_vertices(), 1u);
  EXPECT_EQ(g.num_edges(), 0u);
}

TEST(StarGraph, HubDegree) {
  const csr32 g = star_graph<vertex32>(10);
  EXPECT_EQ(g.out_degree(0), 9u);
  for (vertex32 v = 1; v < 10; ++v) EXPECT_EQ(g.out_degree(v), 1u);
  EXPECT_TRUE(is_symmetric(g));
}

TEST(StarGraph, TooSmallRejected) {
  EXPECT_THROW(star_graph<vertex32>(1), std::invalid_argument);
}

}  // namespace
}  // namespace asyncgt
