#include "gen/weights.hpp"

#include <gtest/gtest.h>

#include "gen/rmat.hpp"
#include "graph/builder.hpp"

namespace asyncgt {
namespace {

TEST(Weights, DeterministicPerEdge) {
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(make_weight(weight_scheme::uniform, vertex32{3}, vertex32{9},
                          1024, 42),
              make_weight(weight_scheme::uniform, vertex32{3}, vertex32{9},
                          1024, 42));
  }
}

TEST(Weights, OrderInsensitive) {
  // (u,v) and (v,u) must agree so symmetrized graphs are well-defined.
  for (vertex32 u = 0; u < 20; ++u) {
    for (vertex32 v = u + 1; v < 20; ++v) {
      EXPECT_EQ(make_weight(weight_scheme::uniform, u, v, 4096, 1),
                make_weight(weight_scheme::uniform, v, u, 4096, 1));
      EXPECT_EQ(make_weight(weight_scheme::log_uniform, u, v, 4096, 1),
                make_weight(weight_scheme::log_uniform, v, u, 4096, 1));
    }
  }
}

TEST(Weights, UniformInRange) {
  const std::uint64_t n = 1 << 16;
  for (int i = 0; i < 5000; ++i) {
    const weight_t w = make_weight(weight_scheme::uniform,
                                   static_cast<vertex32>(i),
                                   static_cast<vertex32>(i + 1), n, 3);
    EXPECT_GE(w, 1u);
    EXPECT_LT(w, n);
  }
}

TEST(Weights, LogUniformInRange) {
  const std::uint64_t n = 1 << 16;
  for (int i = 0; i < 5000; ++i) {
    const weight_t w = make_weight(weight_scheme::log_uniform,
                                   static_cast<vertex32>(i),
                                   static_cast<vertex32>(i + 1), n, 3);
    EXPECT_GE(w, 1u);
    EXPECT_LE(w, n);  // 1 + below(2^i), i < lg n
  }
}

TEST(Weights, LogUniformSkewedSmall) {
  // LUW concentrates mass at small weights: its median should be far below
  // the uniform scheme's median.
  const std::uint64_t n = 1 << 20;
  std::vector<weight_t> uw, luw;
  for (int i = 0; i < 20000; ++i) {
    uw.push_back(make_weight(weight_scheme::uniform,
                             static_cast<vertex32>(i),
                             static_cast<vertex32>(i + 1), n, 9));
    luw.push_back(make_weight(weight_scheme::log_uniform,
                              static_cast<vertex32>(i),
                              static_cast<vertex32>(i + 1), n, 9));
  }
  std::sort(uw.begin(), uw.end());
  std::sort(luw.begin(), luw.end());
  EXPECT_LT(luw[luw.size() / 2] * 100, uw[uw.size() / 2]);
}

TEST(Weights, SeedChangesWeights) {
  int same = 0;
  for (int i = 0; i < 1000; ++i) {
    same += (make_weight(weight_scheme::uniform, static_cast<vertex32>(i),
                         static_cast<vertex32>(i + 1), 1 << 20, 1) ==
             make_weight(weight_scheme::uniform, static_cast<vertex32>(i),
                         static_cast<vertex32>(i + 1), 1 << 20, 2));
  }
  EXPECT_LT(same, 10);
}

TEST(Weights, TinyGraphRejected) {
  EXPECT_THROW(make_weight(weight_scheme::uniform, vertex32{0}, vertex32{1},
                           1, 0),
               std::invalid_argument);
}

TEST(AddWeights, PreservesStructure) {
  const csr32 g = rmat_graph<vertex32>(rmat_a(8));
  const csr32 w = add_weights(g, weight_scheme::uniform, 5);
  ASSERT_TRUE(w.is_weighted());
  EXPECT_EQ(w.num_vertices(), g.num_vertices());
  EXPECT_EQ(w.num_edges(), g.num_edges());
  for (vertex32 v = 0; v < g.num_vertices(); ++v) {
    const auto a = g.neighbors(v), b = w.neighbors(v);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
  }
}

TEST(AddWeights, SymmetricGraphGetsSymmetricWeights) {
  const csr32 g = rmat_graph_undirected<vertex32>(rmat_a(8));
  const csr32 w = add_weights(g, weight_scheme::uniform, 11);
  for (vertex32 u = 0; u < w.num_vertices(); ++u) {
    const auto nb = w.neighbors(u);
    const auto ws = w.edge_weights(u);
    for (std::size_t i = 0; i < nb.size(); ++i) {
      const vertex32 v = nb[i];
      if (v < u) continue;  // check each undirected edge once
      // Find the reverse edge's weight.
      const auto rnb = w.neighbors(v);
      const auto rws = w.edge_weights(v);
      const auto it = std::lower_bound(rnb.begin(), rnb.end(), u);
      ASSERT_NE(it, rnb.end());
      ASSERT_EQ(*it, u);
      EXPECT_EQ(ws[i], rws[static_cast<std::size_t>(it - rnb.begin())]);
    }
  }
}

}  // namespace
}  // namespace asyncgt
