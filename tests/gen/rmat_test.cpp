#include "gen/rmat.hpp"

#include <gtest/gtest.h>

#include <set>

#include "graph/graph_stats.hpp"

namespace asyncgt {
namespace {

TEST(RmatParams, PresetsSumToOne) {
  rmat_a(10).validate();
  rmat_b(10).validate();
}

TEST(RmatParams, InvalidProbabilitiesRejected) {
  rmat_params p;
  p.a = 0.9;
  p.b = 0.9;  // sums to > 1 with c, d
  EXPECT_THROW(p.validate(), std::invalid_argument);
}

TEST(RmatParams, SizesFollowScaleAndEdgeFactor) {
  const rmat_params p = rmat_a(12);
  EXPECT_EQ(p.num_vertices(), 1ULL << 12);
  EXPECT_EQ(p.num_edges(), (1ULL << 12) * 16);
}

TEST(RmatScramble, IsBijectiveOverScaleBits) {
  constexpr unsigned kScale = 12;
  std::set<vertex32> outs;
  for (std::uint64_t v = 0; v < (1ULL << kScale); ++v) {
    const vertex32 s = rmat_scramble<vertex32>(v, kScale, 42);
    EXPECT_LT(s, 1u << kScale);
    outs.insert(s);
  }
  EXPECT_EQ(outs.size(), 1ULL << kScale);  // permutation
}

TEST(RmatEdges, DeterministicForSeed) {
  const rmat_params p = rmat_a(10, 7);
  const auto e1 = rmat_edges<vertex32>(p);
  const auto e2 = rmat_edges<vertex32>(p);
  ASSERT_EQ(e1.size(), e2.size());
  for (std::size_t i = 0; i < e1.size(); ++i) EXPECT_EQ(e1[i], e2[i]);
}

TEST(RmatEdges, DifferentSeedsDiffer) {
  const auto e1 = rmat_edges<vertex32>(rmat_a(10, 1));
  const auto e2 = rmat_edges<vertex32>(rmat_a(10, 2));
  std::size_t same = 0;
  for (std::size_t i = 0; i < e1.size(); ++i) same += (e1[i] == e2[i]);
  EXPECT_LT(same, e1.size() / 100);
}

TEST(RmatEdges, EndpointsInRange) {
  const rmat_params p = rmat_b(10);
  for (const auto& e : rmat_edges<vertex32>(p)) {
    EXPECT_LT(e.src, p.num_vertices());
    EXPECT_LT(e.dst, p.num_vertices());
  }
}

TEST(RmatGraph, UniqueEdgesNoSelfLoops) {
  const csr32 g = rmat_graph<vertex32>(rmat_a(10));
  for (vertex32 v = 0; v < g.num_vertices(); ++v) {
    const auto nb = g.neighbors(v);
    for (std::size_t i = 0; i < nb.size(); ++i) {
      EXPECT_NE(nb[i], v);                       // no self loop
      if (i > 0) EXPECT_LT(nb[i - 1], nb[i]);    // sorted & unique
    }
  }
}

TEST(RmatGraph, UndirectedVersionIsSymmetric) {
  const csr32 g = rmat_graph_undirected<vertex32>(rmat_a(9));
  EXPECT_TRUE(is_symmetric(g));
}

TEST(RmatGraph, RmatBMoreSkewedThanRmatA) {
  // The defining property of the two presets (paper §V-A1): RMAT-B has
  // "heavy out-degree skewness" vs RMAT-A's "moderate".
  const auto sa = compute_degree_summary(rmat_graph<vertex32>(rmat_a(13)));
  const auto sb = compute_degree_summary(rmat_graph<vertex32>(rmat_b(13)));
  EXPECT_GT(sb.max_degree, sa.max_degree);
  EXPECT_GT(sb.top_fraction_edge_share, sa.top_fraction_edge_share);
  EXPECT_GT(sb.stats.cv(), sa.stats.cv());
}

TEST(RmatGraph, PowerLawTail) {
  // A scale-free graph has hubs orders of magnitude above the mean degree.
  const auto s = compute_degree_summary(rmat_graph<vertex32>(rmat_b(13)));
  EXPECT_GT(static_cast<double>(s.max_degree), 20.0 * s.stats.mean());
}

TEST(RmatEdges, ParallelGenerationBitIdenticalToSerial) {
  const rmat_params p = rmat_b(11, 5);
  const auto serial = rmat_edges<vertex32>(p);
  for (const std::size_t t : {1u, 2u, 3u, 7u, 16u}) {
    const auto parallel = rmat_edges_parallel<vertex32>(p, t);
    ASSERT_EQ(parallel.size(), serial.size()) << "threads=" << t;
    for (std::size_t i = 0; i < serial.size(); ++i) {
      ASSERT_EQ(parallel[i], serial[i]) << "threads=" << t << " i=" << i;
    }
  }
}

TEST(RmatEdges, ParallelZeroThreadsRejected) {
  EXPECT_THROW(rmat_edges_parallel<vertex32>(rmat_a(8), 0),
               std::invalid_argument);
}

TEST(RmatGraph, ScrambleSpreadsHubs) {
  // Without scrambling, RMAT hubs concentrate at low ids; with it the top
  // 1% of ids should not hold most edges.
  rmat_params p = rmat_b(12);
  p.scramble_ids = false;
  const csr32 raw = rmat_graph<vertex32>(p);
  std::uint64_t low_id_edges_raw = 0;
  const vertex32 cut = static_cast<vertex32>(raw.num_vertices() / 100);
  for (vertex32 v = 0; v < cut; ++v) low_id_edges_raw += raw.out_degree(v);

  p.scramble_ids = true;
  const csr32 mixed = rmat_graph<vertex32>(p);
  std::uint64_t low_id_edges_mixed = 0;
  for (vertex32 v = 0; v < cut; ++v) low_id_edges_mixed += mixed.out_degree(v);

  EXPECT_GT(low_id_edges_raw, 2 * low_id_edges_mixed);
}

}  // namespace
}  // namespace asyncgt
