#include "gen/webgen.hpp"

#include <gtest/gtest.h>

#include "baselines/serial_cc.hpp"
#include "graph/graph_stats.hpp"

namespace asyncgt {
namespace {

webgen_params small_params() {
  webgen_params p;
  p.num_hosts = 60;
  p.min_host_size = 4;
  p.max_host_size = 256;
  p.seed = 5;
  return p;
}

TEST(Webgen, LayoutDeterministic) {
  const auto a = webgen_make_layout(small_params());
  const auto b = webgen_make_layout(small_params());
  EXPECT_EQ(a.num_vertices, b.num_vertices);
  EXPECT_EQ(a.host_begin, b.host_begin);
}

TEST(Webgen, HostSizesWithinBounds) {
  const auto p = small_params();
  const auto layout = webgen_make_layout(p);
  ASSERT_EQ(layout.host_begin.size(), p.num_hosts + 1);
  for (std::size_t h = 0; h < p.num_hosts; ++h) {
    const auto size = layout.host_begin[h + 1] - layout.host_begin[h];
    EXPECT_GE(size, p.min_host_size);
    EXPECT_LE(size, p.max_host_size);
  }
}

TEST(Webgen, GraphIsSymmetric) {
  const csr32 g = webgen_graph<vertex32>(small_params());
  EXPECT_TRUE(is_symmetric(g));
}

TEST(Webgen, Deterministic) {
  const csr32 a = webgen_graph<vertex32>(small_params());
  const csr32 b = webgen_graph<vertex32>(small_params());
  EXPECT_EQ(a.num_edges(), b.num_edges());
  EXPECT_EQ(a.num_vertices(), b.num_vertices());
}

TEST(Webgen, GiantComponentPlusTail) {
  // The structural contract that replaces the paper's real web crawls: one
  // giant component holding most vertices plus a tail of small (isolated-
  // host) components.
  webgen_params p = small_params();
  p.num_hosts = 200;
  p.isolated_host_fraction = 0.2;
  const csr32 g = webgen_graph<vertex32>(p);
  const auto cc = serial_cc(g);
  const std::uint64_t ncc = cc.num_components();
  EXPECT_GT(ncc, 10u);  // tail of small components exists
  EXPECT_GT(cc.largest_component_size(), g.num_vertices() / 2);  // giant
}

TEST(Webgen, NoIsolationMeansFewComponents) {
  webgen_params p = small_params();
  p.isolated_host_fraction = 0.0;
  p.cross_links_per_page = 3.0;
  const csr32 g = webgen_graph<vertex32>(p);
  const auto cc = serial_cc(g);
  // All hosts cross-linked: expect a single giant component (or near).
  EXPECT_LE(cc.num_components(), 3u);
}

TEST(Webgen, IsolationFractionGrowsComponentCount) {
  webgen_params lo = small_params();
  lo.num_hosts = 150;
  lo.isolated_host_fraction = 0.05;
  webgen_params hi = lo;
  hi.isolated_host_fraction = 0.4;
  EXPECT_LT(serial_cc(webgen_graph<vertex32>(lo)).num_components(),
            serial_cc(webgen_graph<vertex32>(hi)).num_components());
}

TEST(Webgen, CommunityStructure) {
  // In-host edges should dominate cross-host edges (paper §I-B: "in a
  // cluster, there are more interconnected edges than outgoing edges").
  const auto p = small_params();
  const auto layout = webgen_make_layout(p);
  const csr32 g = webgen_graph<vertex32>(p);
  const auto host_of = [&](vertex32 v) {
    const auto it = std::upper_bound(layout.host_begin.begin(),
                                     layout.host_begin.end(), v);
    return static_cast<std::size_t>(it - layout.host_begin.begin()) - 1;
  };
  std::uint64_t intra = 0, cross = 0;
  for (vertex32 u = 0; u < g.num_vertices(); ++u) {
    for (const vertex32 v : g.neighbors(u)) {
      (host_of(u) == host_of(v) ? intra : cross) += 1;
    }
  }
  EXPECT_GT(intra, 2 * cross);
}

TEST(Webgen, InvalidParamsRejected) {
  webgen_params p;
  p.num_hosts = 0;
  EXPECT_THROW(webgen_make_layout(p), std::invalid_argument);
  p = webgen_params{};
  p.min_host_size = 1;  // need >= 2 for the ring
  EXPECT_THROW(webgen_make_layout(p), std::invalid_argument);
}

}  // namespace
}  // namespace asyncgt
