#include "gen/random_graphs.hpp"

#include <gtest/gtest.h>

#include "baselines/serial_cc.hpp"
#include "graph/graph_stats.hpp"

namespace asyncgt {
namespace {

TEST(ErdosRenyi, SizesAndSymmetry) {
  const csr32 g = erdos_renyi_graph<vertex32>(500, 2000, 3);
  EXPECT_EQ(g.num_vertices(), 500u);
  // Sampling with replacement + dedup: close to but at most 2*m edges.
  EXPECT_LE(g.num_edges(), 2 * 2000u);
  EXPECT_GE(g.num_edges(), 2 * 1800u);
  EXPECT_TRUE(is_symmetric(g));
}

TEST(ErdosRenyi, NearRegularDegrees) {
  const csr32 g = erdos_renyi_graph<vertex32>(2000, 16000, 5);
  const auto s = compute_degree_summary(g);
  // Poisson-like degrees: tiny skew relative to a scale-free graph.
  EXPECT_LT(s.stats.cv(), 0.5);
  EXPECT_LT(static_cast<double>(s.max_degree), 4.0 * s.stats.mean());
}

TEST(ErdosRenyi, Deterministic) {
  const csr32 a = erdos_renyi_graph<vertex32>(300, 1000, 9);
  const csr32 b = erdos_renyi_graph<vertex32>(300, 1000, 9);
  EXPECT_EQ(a.num_edges(), b.num_edges());
}

TEST(ErdosRenyi, InvalidParamsRejected) {
  EXPECT_THROW(erdos_renyi_graph<vertex32>(1, 1), std::invalid_argument);
  EXPECT_THROW(erdos_renyi_graph<vertex32>(10, 40), std::invalid_argument);
}

TEST(WattsStrogatz, ZeroBetaIsRingLattice) {
  const csr32 g = watts_strogatz_graph<vertex32>(100, 4, 0.0, 1);
  EXPECT_TRUE(is_symmetric(g));
  for (vertex32 v = 0; v < 100; ++v) EXPECT_EQ(g.out_degree(v), 4u);
  EXPECT_EQ(serial_cc(g).num_components(), 1u);
}

TEST(WattsStrogatz, RewiringKeepsEdgeBudget) {
  const csr32 g = watts_strogatz_graph<vertex32>(200, 6, 0.3, 2);
  // n*k/2 undirected edges before dedup; symmetrized, minus collisions.
  EXPECT_LE(g.num_edges(), 200u * 6);
  EXPECT_GE(g.num_edges(), 200u * 5);
}

TEST(WattsStrogatz, InvalidParamsRejected) {
  EXPECT_THROW(watts_strogatz_graph<vertex32>(3, 2, 0.1),
               std::invalid_argument);
  EXPECT_THROW(watts_strogatz_graph<vertex32>(100, 3, 0.1),
               std::invalid_argument);  // odd k
  EXPECT_THROW(watts_strogatz_graph<vertex32>(100, 4, 1.5),
               std::invalid_argument);
}

TEST(BarabasiAlbert, SizesAndConnectivity) {
  const csr32 g = barabasi_albert_graph<vertex32>(1000, 3, 4);
  EXPECT_EQ(g.num_vertices(), 1000u);
  EXPECT_TRUE(is_symmetric(g));
  // Preferential attachment grows one connected component.
  EXPECT_EQ(serial_cc(g).num_components(), 1u);
}

TEST(BarabasiAlbert, PowerLawHubs) {
  const csr32 g = barabasi_albert_graph<vertex32>(4000, 4, 11);
  const auto s = compute_degree_summary(g);
  EXPECT_GT(static_cast<double>(s.max_degree), 10.0 * s.stats.mean());
  EXPECT_GT(s.stats.cv(), 0.8);
}

TEST(BarabasiAlbert, MoreSkewedThanErdosRenyi) {
  const csr32 ba = barabasi_albert_graph<vertex32>(2000, 4, 1);
  const csr32 er =
      erdos_renyi_graph<vertex32>(2000, ba.num_edges() / 2, 1);
  EXPECT_GT(compute_degree_summary(ba).stats.cv(),
            2.0 * compute_degree_summary(er).stats.cv());
}

TEST(BarabasiAlbert, InvalidParamsRejected) {
  EXPECT_THROW(barabasi_albert_graph<vertex32>(5, 0), std::invalid_argument);
  EXPECT_THROW(barabasi_albert_graph<vertex32>(3, 3), std::invalid_argument);
}

}  // namespace
}  // namespace asyncgt
