#include "graph/graph_stats.hpp"

#include <gtest/gtest.h>

#include "gen/grid.hpp"
#include "graph/builder.hpp"

namespace asyncgt {
namespace {

TEST(GraphStats, DegreeSummaryOnStar) {
  const csr32 g = star_graph<vertex32>(101);  // hub degree 100, leaves 1
  const degree_summary s = compute_degree_summary(g);
  EXPECT_EQ(s.max_degree, 100u);
  EXPECT_EQ(s.isolated, 0u);
  EXPECT_EQ(s.stats.count(), 101u);
  // Top 1% (the hub) owns half the directed edge endpoints.
  EXPECT_NEAR(s.top_fraction_edge_share, 0.5, 0.01);
}

TEST(GraphStats, IsolatedVerticesCounted) {
  const csr32 g = build_csr<vertex32>(5, {{0, 1, 1}});
  const degree_summary s = compute_degree_summary(g);
  EXPECT_EQ(s.isolated, 4u);
}

TEST(GraphStats, SymmetricDetectsUndirected) {
  build_options opt;
  opt.symmetrize = true;
  const csr32 u = build_csr<vertex32>(3, {{0, 1, 1}, {1, 2, 1}}, opt);
  EXPECT_TRUE(is_symmetric(u));
}

TEST(GraphStats, AsymmetricDetectsDirected) {
  const csr32 d = build_csr<vertex32>(3, {{0, 1, 1}, {1, 2, 1}});
  EXPECT_FALSE(is_symmetric(d));
}

TEST(GraphStats, EmptyGraphIsSymmetric) {
  const csr32 g = build_csr<vertex32>(4, {});
  EXPECT_TRUE(is_symmetric(g));
}

}  // namespace
}  // namespace asyncgt
