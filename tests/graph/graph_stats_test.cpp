#include "graph/graph_stats.hpp"

#include <gtest/gtest.h>

#include "gen/grid.hpp"
#include "graph/builder.hpp"

namespace asyncgt {
namespace {

TEST(GraphStats, DegreeSummaryOnStar) {
  const csr32 g = star_graph<vertex32>(101);  // hub degree 100, leaves 1
  const degree_summary s = compute_degree_summary(g);
  EXPECT_EQ(s.max_degree, 100u);
  EXPECT_EQ(s.isolated, 0u);
  EXPECT_EQ(s.stats.count(), 101u);
  // Top 1% (the hub) owns half the directed edge endpoints.
  EXPECT_NEAR(s.top_fraction_edge_share, 0.5, 0.01);
}

TEST(GraphStats, IsolatedVerticesCounted) {
  const csr32 g = build_csr<vertex32>(5, {{0, 1, 1}});
  const degree_summary s = compute_degree_summary(g);
  EXPECT_EQ(s.isolated, 4u);
}

TEST(GraphStats, SymmetricDetectsUndirected) {
  build_options opt;
  opt.symmetrize = true;
  const csr32 u = build_csr<vertex32>(3, {{0, 1, 1}, {1, 2, 1}}, opt);
  EXPECT_TRUE(is_symmetric(u));
}

TEST(GraphStats, AsymmetricDetectsDirected) {
  const csr32 d = build_csr<vertex32>(3, {{0, 1, 1}, {1, 2, 1}});
  EXPECT_FALSE(is_symmetric(d));
}

TEST(GraphStats, EmptyGraphIsSymmetric) {
  const csr32 g = build_csr<vertex32>(4, {});
  EXPECT_TRUE(is_symmetric(g));
}

TEST(GraphStats, InDegreeSummaryOnDirectedStar) {
  // All leaves point at the hub: out-degrees are flat (1 each, hub 0) but
  // the in-degree distribution is maximally skewed.
  std::vector<edge<vertex32>> edges;
  for (vertex32 leaf = 1; leaf < 101; ++leaf) edges.push_back({leaf, 0, 1});
  const csr32 g = build_csr<vertex32>(101, edges);
  const degree_summary out = compute_degree_summary(g);
  const degree_summary in = compute_in_degree_summary(g);
  EXPECT_EQ(out.max_degree, 1u);
  EXPECT_EQ(in.max_degree, 100u);
  EXPECT_EQ(in.isolated, 100u);  // every leaf has in-degree 0
  EXPECT_NEAR(in.top_fraction_edge_share, 1.0, 0.01);
}

TEST(GraphStats, InDegreeSummarySameWithOrWithoutReverseView) {
  csr32 g = build_csr<vertex32>(4, {{0, 1, 1}, {2, 1, 1}, {3, 2, 1}});
  const degree_summary transient = compute_in_degree_summary(g);
  g.ensure_reverse();
  const degree_summary served = compute_in_degree_summary(g);
  EXPECT_EQ(served.max_degree, transient.max_degree);
  EXPECT_EQ(served.isolated, transient.isolated);
  EXPECT_EQ(served.stats.count(), transient.stats.count());
  EXPECT_EQ(served.max_degree, 2u);
  EXPECT_EQ(served.isolated, 2u);  // vertices 0 and 3 have no in-edges
}

}  // namespace
}  // namespace asyncgt
