#include "graph/csr_graph.hpp"

#include <gtest/gtest.h>

#include "graph/builder.hpp"

namespace asyncgt {
namespace {

csr32 triangle() {
  // 0->1, 1->2, 2->0
  return build_csr<vertex32>(3, {{0, 1, 1}, {1, 2, 1}, {2, 0, 1}});
}

TEST(CsrGraph, EmptyGraph) {
  csr32 g;
  EXPECT_EQ(g.num_vertices(), 0u);
  EXPECT_EQ(g.num_edges(), 0u);
  EXPECT_FALSE(g.is_weighted());
}

TEST(CsrGraph, SizesAndDegrees) {
  const csr32 g = triangle();
  EXPECT_EQ(g.num_vertices(), 3u);
  EXPECT_EQ(g.num_edges(), 3u);
  for (vertex32 v = 0; v < 3; ++v) EXPECT_EQ(g.out_degree(v), 1u);
}

TEST(CsrGraph, NeighborsSpan) {
  const csr32 g = triangle();
  ASSERT_EQ(g.neighbors(0).size(), 1u);
  EXPECT_EQ(g.neighbors(0)[0], 1u);
  EXPECT_EQ(g.neighbors(2)[0], 0u);
}

TEST(CsrGraph, ForEachOutEdgeUnweightedReportsWeightOne) {
  const csr32 g = triangle();
  g.for_each_out_edge(0, [](vertex32 t, weight_t w) {
    EXPECT_EQ(t, 1u);
    EXPECT_EQ(w, 1u);
  });
}

TEST(CsrGraph, ForEachOutEdgeWeighted) {
  const csr32 g =
      build_csr<vertex32>(3, {{0, 1, 5}, {0, 2, 7}});
  ASSERT_TRUE(g.is_weighted());
  std::vector<std::pair<vertex32, weight_t>> seen;
  g.for_each_out_edge(0, [&](vertex32 t, weight_t w) {
    seen.emplace_back(t, w);
  });
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0], (std::pair<vertex32, weight_t>{1, 5}));
  EXPECT_EQ(seen[1], (std::pair<vertex32, weight_t>{2, 7}));
}

TEST(CsrGraph, MalformedOffsetsRejected) {
  EXPECT_THROW(csr32({}, {}), std::invalid_argument);          // empty offsets
  EXPECT_THROW(csr32({0, 2}, {1}), std::invalid_argument);     // back mismatch
  EXPECT_THROW(csr32({1, 1}, {}), std::invalid_argument);      // front != 0
}

TEST(CsrGraph, MismatchedWeightsRejected) {
  EXPECT_THROW(csr32({0, 1}, {0}, {1, 2}), std::invalid_argument);
}

TEST(CsrGraph, IsolatedVertexHasEmptyAdjacency) {
  const csr32 g = build_csr<vertex32>(4, {{0, 1, 1}});
  EXPECT_EQ(g.out_degree(3), 0u);
  EXPECT_TRUE(g.neighbors(3).empty());
  bool called = false;
  g.for_each_out_edge(3, [&](vertex32, weight_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(CsrGraph, MemoryBytesAccounting) {
  const csr32 g = triangle();
  // 4 offsets * 8 + 3 targets * 4 = 44 bytes, unweighted.
  EXPECT_EQ(g.memory_bytes(), 4 * 8 + 3 * 4u);
}

TEST(CsrGraph, Wide64BitIds) {
  const csr64 g = build_csr<vertex64>(3, {{0, 1, 1}, {1, 2, 1}});
  EXPECT_EQ(g.num_vertices(), 3u);
  EXPECT_EQ(g.neighbors(0)[0], 1u);
}

// ---- Reverse (transpose) view ----

TEST(CsrGraphReverse, EnsureReverseOnTriangle) {
  csr32 g = triangle();
  EXPECT_FALSE(g.has_reverse());
  g.ensure_reverse();
  ASSERT_TRUE(g.has_reverse());
  // 0->1, 1->2, 2->0: each vertex has exactly one in-edge.
  EXPECT_EQ(g.in_degree(0), 1u);
  EXPECT_EQ(g.in_neighbors(0)[0], 2u);
  EXPECT_EQ(g.in_neighbors(1)[0], 0u);
  EXPECT_EQ(g.in_neighbors(2)[0], 1u);
}

TEST(CsrGraphReverse, EnsureReverseIdempotent) {
  csr32 g = triangle();
  g.ensure_reverse();
  const std::uint64_t bytes = g.memory_bytes();
  g.ensure_reverse();
  EXPECT_EQ(g.memory_bytes(), bytes);
}

TEST(CsrGraphReverse, SelfLoopsAndDuplicatesTranspose) {
  // Keep self loops and duplicates in: they must survive the transpose
  // one-for-one (edge counts conserved, self loop still a self loop).
  build_options opt;
  opt.remove_self_loops = false;
  opt.remove_duplicates = false;
  csr32 g = build_csr<vertex32>(
      3, {{0, 0, 1}, {0, 1, 1}, {0, 1, 1}, {2, 1, 1}}, opt);
  g.ensure_reverse();
  EXPECT_EQ(g.in_degree(0), 1u);  // the self loop
  EXPECT_EQ(g.in_neighbors(0)[0], 0u);
  EXPECT_EQ(g.in_degree(1), 3u);  // two duplicates + one from 2
  EXPECT_EQ(g.in_degree(2), 0u);
}

TEST(CsrGraphReverse, ZeroDegreeVerticesHaveEmptyInAdjacency) {
  csr32 g = build_csr<vertex32>(4, {{0, 1, 1}});
  g.ensure_reverse();
  EXPECT_EQ(g.in_degree(2), 0u);
  EXPECT_TRUE(g.in_neighbors(3).empty());
  bool called = false;
  g.for_each_in_edge(3, [&](vertex32, weight_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(CsrGraphReverse, InEdgesCarryWeights) {
  csr32 g = build_csr<vertex32>(3, {{0, 2, 5}, {1, 2, 7}});
  g.ensure_reverse();
  std::vector<std::pair<vertex32, weight_t>> seen;
  g.for_each_in_edge(2, [&](vertex32 s, weight_t w) {
    seen.emplace_back(s, w);
  });
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0], (std::pair<vertex32, weight_t>{0, 5}));
  EXPECT_EQ(seen[1], (std::pair<vertex32, weight_t>{1, 7}));
}

TEST(CsrGraphReverse, TransposeOfTransposeIsOriginal) {
  const csr32 g = build_csr<vertex32>(
      5, {{0, 1, 1}, {0, 4, 1}, {2, 1, 1}, {3, 3, 1}, {4, 0, 1}});
  const csr32 tt = g.transpose().transpose();
  ASSERT_EQ(tt.num_vertices(), g.num_vertices());
  ASSERT_EQ(tt.num_edges(), g.num_edges());
  for (vertex32 v = 0; v < g.num_vertices(); ++v) {
    const auto a = g.neighbors(v), b = tt.neighbors(v);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
  }
}

TEST(CsrGraphReverse, TransposeReusesExistingView) {
  csr32 g = triangle();
  g.ensure_reverse();
  const csr32 t = g.transpose();
  EXPECT_EQ(t.num_edges(), 3u);
  EXPECT_EQ(t.neighbors(0)[0], 2u);  // reversed 2->0
}

TEST(CsrGraphReverse, SetReverseRejectsBadShapes) {
  csr32 g = triangle();
  // Wrong offsets length.
  EXPECT_THROW(g.set_reverse({0, 3}, {0, 1, 2}, {}), std::invalid_argument);
  // Offsets don't end at the edge count.
  EXPECT_THROW(g.set_reverse({0, 1, 2, 2}, {0, 1}, {}),
               std::invalid_argument);
  // Weights present but mismatched.
  EXPECT_THROW(g.set_reverse({0, 1, 2, 3}, {2, 0, 1}, {1, 2}),
               std::invalid_argument);
  // A correct transpose is accepted.
  g.set_reverse({0, 1, 2, 3}, {2, 0, 1}, {});
  EXPECT_TRUE(g.has_reverse());
  EXPECT_EQ(g.in_neighbors(1)[0], 0u);
}

TEST(CsrGraphReverse, MemoryBytesCountsBothDirections) {
  csr32 g = triangle();
  const std::uint64_t fwd = g.memory_bytes();
  g.ensure_reverse();
  EXPECT_EQ(g.memory_bytes(), 2 * fwd);
}

}  // namespace
}  // namespace asyncgt
