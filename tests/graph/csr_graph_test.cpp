#include "graph/csr_graph.hpp"

#include <gtest/gtest.h>

#include "graph/builder.hpp"

namespace asyncgt {
namespace {

csr32 triangle() {
  // 0->1, 1->2, 2->0
  return build_csr<vertex32>(3, {{0, 1, 1}, {1, 2, 1}, {2, 0, 1}});
}

TEST(CsrGraph, EmptyGraph) {
  csr32 g;
  EXPECT_EQ(g.num_vertices(), 0u);
  EXPECT_EQ(g.num_edges(), 0u);
  EXPECT_FALSE(g.is_weighted());
}

TEST(CsrGraph, SizesAndDegrees) {
  const csr32 g = triangle();
  EXPECT_EQ(g.num_vertices(), 3u);
  EXPECT_EQ(g.num_edges(), 3u);
  for (vertex32 v = 0; v < 3; ++v) EXPECT_EQ(g.out_degree(v), 1u);
}

TEST(CsrGraph, NeighborsSpan) {
  const csr32 g = triangle();
  ASSERT_EQ(g.neighbors(0).size(), 1u);
  EXPECT_EQ(g.neighbors(0)[0], 1u);
  EXPECT_EQ(g.neighbors(2)[0], 0u);
}

TEST(CsrGraph, ForEachOutEdgeUnweightedReportsWeightOne) {
  const csr32 g = triangle();
  g.for_each_out_edge(0, [](vertex32 t, weight_t w) {
    EXPECT_EQ(t, 1u);
    EXPECT_EQ(w, 1u);
  });
}

TEST(CsrGraph, ForEachOutEdgeWeighted) {
  const csr32 g =
      build_csr<vertex32>(3, {{0, 1, 5}, {0, 2, 7}});
  ASSERT_TRUE(g.is_weighted());
  std::vector<std::pair<vertex32, weight_t>> seen;
  g.for_each_out_edge(0, [&](vertex32 t, weight_t w) {
    seen.emplace_back(t, w);
  });
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0], (std::pair<vertex32, weight_t>{1, 5}));
  EXPECT_EQ(seen[1], (std::pair<vertex32, weight_t>{2, 7}));
}

TEST(CsrGraph, MalformedOffsetsRejected) {
  EXPECT_THROW(csr32({}, {}), std::invalid_argument);          // empty offsets
  EXPECT_THROW(csr32({0, 2}, {1}), std::invalid_argument);     // back mismatch
  EXPECT_THROW(csr32({1, 1}, {}), std::invalid_argument);      // front != 0
}

TEST(CsrGraph, MismatchedWeightsRejected) {
  EXPECT_THROW(csr32({0, 1}, {0}, {1, 2}), std::invalid_argument);
}

TEST(CsrGraph, IsolatedVertexHasEmptyAdjacency) {
  const csr32 g = build_csr<vertex32>(4, {{0, 1, 1}});
  EXPECT_EQ(g.out_degree(3), 0u);
  EXPECT_TRUE(g.neighbors(3).empty());
  bool called = false;
  g.for_each_out_edge(3, [&](vertex32, weight_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(CsrGraph, MemoryBytesAccounting) {
  const csr32 g = triangle();
  // 4 offsets * 8 + 3 targets * 4 = 44 bytes, unweighted.
  EXPECT_EQ(g.memory_bytes(), 4 * 8 + 3 * 4u);
}

TEST(CsrGraph, Wide64BitIds) {
  const csr64 g = build_csr<vertex64>(3, {{0, 1, 1}, {1, 2, 1}});
  EXPECT_EQ(g.num_vertices(), 3u);
  EXPECT_EQ(g.neighbors(0)[0], 1u);
}

}  // namespace
}  // namespace asyncgt
