#include "graph/graph_io.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <unistd.h>
#include <filesystem>

#include "graph/builder.hpp"

namespace asyncgt {
namespace {

class GraphIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("agt_io_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string path(const std::string& name) const {
    return (dir_ / name).string();
  }

  std::filesystem::path dir_;
};

TEST_F(GraphIoTest, RoundTripUnweighted32) {
  const csr32 g = build_csr<vertex32>(4, {{0, 1, 1}, {1, 2, 1}, {3, 0, 1}});
  write_graph(path("g.agt"), g);
  const csr32 h = read_graph32(path("g.agt"));
  EXPECT_EQ(h.num_vertices(), g.num_vertices());
  EXPECT_EQ(h.num_edges(), g.num_edges());
  EXPECT_FALSE(h.is_weighted());
  for (vertex32 v = 0; v < 4; ++v) {
    const auto a = g.neighbors(v), b = h.neighbors(v);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
  }
}

TEST_F(GraphIoTest, RoundTripWeighted32) {
  const csr32 g = build_csr<vertex32>(3, {{0, 1, 7}, {1, 2, 9}});
  write_graph(path("w.agt"), g);
  const csr32 h = read_graph32(path("w.agt"));
  ASSERT_TRUE(h.is_weighted());
  h.for_each_out_edge(0, [](vertex32 t, weight_t w) {
    EXPECT_EQ(t, 1u);
    EXPECT_EQ(w, 7u);
  });
}

TEST_F(GraphIoTest, RoundTrip64BitIds) {
  const csr64 g = build_csr<vertex64>(3, {{0, 2, 1}, {2, 1, 1}});
  write_graph(path("g64.agt"), g);
  const csr64 h = read_graph64(path("g64.agt"));
  EXPECT_EQ(h.num_edges(), 2u);
  EXPECT_EQ(h.neighbors(0)[0], 2u);
}

TEST_F(GraphIoTest, HeaderReflectsContents) {
  const csr32 g = build_csr<vertex32>(5, {{0, 1, 3}});
  write_graph(path("h.agt"), g);
  const agt_header h = read_graph_header(path("h.agt"));
  EXPECT_EQ(h.num_vertices, 5u);
  EXPECT_EQ(h.num_edges, 1u);
  EXPECT_TRUE(h.weighted());
  EXPECT_FALSE(h.wide_ids());
}

TEST_F(GraphIoTest, IdWidthMismatchRejected) {
  const csr32 g = build_csr<vertex32>(2, {{0, 1, 1}});
  write_graph(path("m.agt"), g);
  EXPECT_THROW(read_graph64(path("m.agt")), std::runtime_error);
}

TEST_F(GraphIoTest, BadMagicRejected) {
  const std::string p = path("junk.agt");
  std::FILE* f = std::fopen(p.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  const char junk[64] = "this is not a graph";
  std::fwrite(junk, 1, sizeof(junk), f);
  std::fclose(f);
  EXPECT_THROW(read_graph32(p), std::runtime_error);
  EXPECT_THROW(read_graph_header(p), std::runtime_error);
}

TEST_F(GraphIoTest, MissingFileRejected) {
  EXPECT_THROW(read_graph32(path("nope.agt")), std::runtime_error);
}

TEST_F(GraphIoTest, TruncatedFileRejected) {
  const csr32 g = build_csr<vertex32>(64, [] {
    std::vector<edge<vertex32>> e;
    for (vertex32 v = 0; v + 1 < 64; ++v) e.push_back({v, v + 1, 1});
    return e;
  }());
  const std::string p = path("t.agt");
  write_graph(p, g);
  std::filesystem::resize_file(p, std::filesystem::file_size(p) / 2);
  EXPECT_THROW(read_graph32(p), std::runtime_error);
}

TEST_F(GraphIoTest, EmptyGraphRoundTrips) {
  const csr32 g = build_csr<vertex32>(3, {});
  write_graph(path("e.agt"), g);
  const csr32 h = read_graph32(path("e.agt"));
  EXPECT_EQ(h.num_vertices(), 3u);
  EXPECT_EQ(h.num_edges(), 0u);
}

// ---- Reverse (".rev" companion) files ----

TEST_F(GraphIoTest, ReversePathConvention) {
  EXPECT_EQ(reverse_path_for("/tmp/g.agt"), "/tmp/g.agt.rev");
}

TEST_F(GraphIoTest, WriteWithReverseRoundTrips) {
  const csr32 g = build_csr<vertex32>(4, {{0, 1, 1}, {2, 1, 1}, {3, 0, 1}});
  write_graph_with_reverse(path("r.agt"), g);
  ASSERT_TRUE(has_reverse_file(path("r.agt")));
  const csr32 h = read_graph32_with_reverse(path("r.agt"));
  ASSERT_TRUE(h.has_reverse());
  EXPECT_EQ(h.in_degree(1), 2u);
  EXPECT_EQ(h.in_neighbors(1)[0], 0u);
  EXPECT_EQ(h.in_neighbors(1)[1], 2u);
  EXPECT_EQ(h.in_degree(3), 0u);
}

TEST_F(GraphIoTest, ReverseFileIsStandaloneTranspose) {
  // The ".rev" companion is an ordinary .agt of the transpose, so reading
  // it directly must equal transposing the forward graph in memory.
  const csr32 g = build_csr<vertex32>(3, {{0, 1, 5}, {1, 2, 9}});
  write_graph_with_reverse(path("s.agt"), g);
  const csr32 rev = read_graph32(reverse_path_for(path("s.agt")));
  const csr32 want = g.transpose();
  ASSERT_EQ(rev.num_edges(), want.num_edges());
  for (vertex32 v = 0; v < 3; ++v) {
    const auto a = want.neighbors(v), b = rev.neighbors(v);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
  }
}

TEST_F(GraphIoTest, ReadWithoutReverseFileLoadsForwardOnly) {
  const csr32 g = build_csr<vertex32>(3, {{0, 1, 1}});
  write_graph(path("f.agt"), g);
  EXPECT_FALSE(has_reverse_file(path("f.agt")));
  const csr32 h = read_graph32_with_reverse(path("f.agt"));
  EXPECT_FALSE(h.has_reverse());
}

TEST_F(GraphIoTest, StaleReverseFileRejected) {
  // A ".rev" left behind by a different (smaller) graph must not be
  // silently adopted as the transpose.
  const csr32 old_g = build_csr<vertex32>(2, {{0, 1, 1}});
  write_graph_with_reverse(path("x.agt"), old_g);
  const csr32 new_g = build_csr<vertex32>(5, {{0, 1, 1}, {3, 4, 1}});
  write_graph(path("x.agt"), new_g);  // forward replaced, .rev now stale
  EXPECT_THROW(read_graph32_with_reverse(path("x.agt")), std::runtime_error);
}

}  // namespace
}  // namespace asyncgt
