// Hostile-input coverage for the .agt readers: a truncated, corrupted, or
// malicious header must produce a clean error BEFORE any allocation sized
// from it — never a multi-GB std::vector resize, a num_vertices+1 overflow,
// or out-of-range preads mid-traversal. Exercises both the in-memory reader
// (read_graph32) and the semi-external open path (sem::sem_csr32), which
// validate against the real file size independently.
#include "graph/graph_io.hpp"

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <string>

#include "gen/rmat.hpp"
#include "sem/sem_csr.hpp"

namespace asyncgt {
namespace {

class GraphIoRobustness : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("agt_io_rob_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
    path_ = (dir_ / "g.agt").string();
    write_graph(path_, rmat_graph<vertex32>(rmat_a(7)));
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  /// Overwrites `bytes` at `offset` in the test file.
  void patch(long offset, const void* data, std::size_t bytes) {
    std::FILE* f = std::fopen(path_.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fseek(f, offset, SEEK_SET), 0);
    ASSERT_EQ(std::fwrite(data, 1, bytes, f), bytes);
    std::fclose(f);
  }

  void patch_u64(long offset, std::uint64_t v) { patch(offset, &v, 8); }

  void expect_both_readers_reject(const std::string& why) {
    EXPECT_THROW(read_graph32(path_), std::runtime_error) << why;
    EXPECT_THROW(sem::sem_csr32{path_}, std::runtime_error) << why;
  }

  // agt_header layout: u32 magic, u32 flags, u64 num_vertices @8,
  // u64 num_edges @16; offsets section starts at 24.
  static constexpr long kNumVerticesOff = 8;
  static constexpr long kNumEdgesOff = 16;
  static constexpr long kOffsetsOff = 24;

  std::filesystem::path dir_;
  std::string path_;
};

TEST_F(GraphIoRobustness, IntactFileRoundTrips) {
  const auto g = read_graph32(path_);
  EXPECT_EQ(g.num_vertices(), 128u);
  sem::sem_csr32 sg(path_);
  EXPECT_EQ(sg.num_vertices(), 128u);
  EXPECT_EQ(sg.num_edges(), g.num_edges());
}

TEST_F(GraphIoRobustness, HugeVertexCountRejectedBeforeAllocating) {
  // Declares ~2^40 vertices in a few-KB file: the reader must compare
  // against the real size and bail, not attempt an 8 TiB offsets vector.
  patch_u64(kNumVerticesOff, std::uint64_t{1} << 40);
  expect_both_readers_reject("huge num_vertices");
}

TEST_F(GraphIoRobustness, MaxVertexCountDoesNotOverflowPlusOne) {
  patch_u64(kNumVerticesOff, ~std::uint64_t{0});  // num_vertices + 1 == 0
  expect_both_readers_reject("~0 num_vertices");
}

TEST_F(GraphIoRobustness, HugeEdgeCountRejected) {
  patch_u64(kNumEdgesOff, std::uint64_t{1} << 60);
  expect_both_readers_reject("huge num_edges");
}

TEST_F(GraphIoRobustness, TruncatedFileRejected) {
  const auto size = std::filesystem::file_size(path_);
  std::filesystem::resize_file(path_, size - 16);
  expect_both_readers_reject("truncated tail");
}

TEST_F(GraphIoRobustness, FileSmallerThanHeaderRejected) {
  std::filesystem::resize_file(path_, 10);
  expect_both_readers_reject("sub-header file");
}

TEST_F(GraphIoRobustness, TrailingGarbageRejectedByInMemoryReader) {
  // Extra bytes past the declared sections mean the header lies about the
  // layout; the strict in-memory reader refuses.
  std::FILE* f = std::fopen(path_.c_str(), "ab");
  ASSERT_NE(f, nullptr);
  const char junk[7] = {0};
  ASSERT_EQ(std::fwrite(junk, 1, sizeof(junk), f), sizeof(junk));
  std::fclose(f);
  EXPECT_THROW(read_graph32(path_), std::runtime_error);
}

TEST_F(GraphIoRobustness, NonMonotoneOffsetsRejected) {
  // Swap a middle offset with a larger value: degrees would go negative.
  patch_u64(kOffsetsOff + 8 * 5, ~std::uint64_t{0} / 2);
  expect_both_readers_reject("non-monotone offsets");
}

TEST_F(GraphIoRobustness, FirstOffsetMustBeZero) {
  patch_u64(kOffsetsOff, 1);
  expect_both_readers_reject("offsets[0] != 0");
}

TEST_F(GraphIoRobustness, LastOffsetMustEqualNumEdges) {
  // Header and offsets index disagreeing on the edge count means one of
  // them is corrupt; adjacency reads would run past the section.
  const auto g = read_graph32(path_);
  patch_u64(kOffsetsOff + 8 * static_cast<long>(g.num_vertices()),
            g.num_edges() + 1);
  expect_both_readers_reject("offsets.back() != num_edges");
}

}  // namespace
}  // namespace asyncgt
