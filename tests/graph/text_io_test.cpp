#include "graph/text_io.hpp"

#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>

#include "gen/rmat.hpp"
#include "gen/weights.hpp"
#include "graph/builder.hpp"

namespace asyncgt {
namespace {

class TextIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("agt_txt_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string path(const std::string& name) const {
    return (dir_ / name).string();
  }

  void write_file(const std::string& name, const std::string& content) {
    std::ofstream f(path(name));
    f << content;
  }

  std::filesystem::path dir_;
};

TEST_F(TextIoTest, ParsesPlainEdges) {
  write_file("a.txt", "0 1\n1 2\n2 0\n");
  text_io_stats stats;
  const auto edges = read_edge_list(path("a.txt"), &stats);
  ASSERT_EQ(edges.size(), 3u);
  EXPECT_EQ(edges[0], (edge<vertex32>{0, 1, 1}));
  EXPECT_EQ(edges[2], (edge<vertex32>{2, 0, 1}));
  EXPECT_EQ(stats.max_vertex_id, 2u);
  EXPECT_FALSE(stats.any_weights);
}

TEST_F(TextIoTest, ParsesWeights) {
  write_file("w.txt", "0 1 7\n1 0 9\n");
  text_io_stats stats;
  const auto edges = read_edge_list(path("w.txt"), &stats);
  EXPECT_EQ(edges[0].weight, 7u);
  EXPECT_EQ(edges[1].weight, 9u);
  EXPECT_TRUE(stats.any_weights);
}

TEST_F(TextIoTest, SkipsCommentsAndBlankLines) {
  write_file("c.txt", "# header\n% matrix-market style\n\n0 1\n\n# mid\n1 2\n");
  text_io_stats stats;
  const auto edges = read_edge_list(path("c.txt"), &stats);
  EXPECT_EQ(edges.size(), 2u);
  EXPECT_EQ(stats.comments, 3u);
}

TEST_F(TextIoTest, HandlesTabsAndExtraSpaces) {
  write_file("t.txt", "  0\t1\n 1   2 \n");
  EXPECT_EQ(read_edge_list(path("t.txt")).size(), 2u);
}

TEST_F(TextIoTest, MalformedLineThrowsWithLineNumber) {
  write_file("m.txt", "0 1\nhello world\n");
  try {
    read_edge_list(path("m.txt"));
    FAIL() << "expected exception";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST_F(TextIoTest, MissingDestinationThrows) {
  write_file("half.txt", "42\n");
  EXPECT_THROW(read_edge_list(path("half.txt")), std::runtime_error);
}

TEST_F(TextIoTest, MissingFileThrows) {
  EXPECT_THROW(read_edge_list(path("nope.txt")), std::runtime_error);
}

TEST_F(TextIoTest, RoundTripUnweighted) {
  const csr32 g = rmat_graph<vertex32>(rmat_a(7));
  write_edge_list(path("rt.txt"), g);
  const auto edges = read_edge_list(path("rt.txt"));
  const csr32 h = build_csr<vertex32>(g.num_vertices(), edges);
  EXPECT_EQ(h.num_edges(), g.num_edges());
  for (vertex32 v = 0; v < g.num_vertices(); ++v) {
    const auto a = g.neighbors(v), b = h.neighbors(v);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
  }
}

TEST_F(TextIoTest, RoundTripWeighted) {
  const csr32 g =
      add_weights(rmat_graph<vertex32>(rmat_a(6)), weight_scheme::uniform, 1);
  write_edge_list(path("rtw.txt"), g);
  text_io_stats stats;
  const auto edges = read_edge_list(path("rtw.txt"), &stats);
  EXPECT_TRUE(stats.any_weights);
  const csr32 h = build_csr<vertex32>(g.num_vertices(), edges);
  ASSERT_TRUE(h.is_weighted());
  for (vertex32 v = 0; v < g.num_vertices(); ++v) {
    const auto wa = g.edge_weights(v), wb = h.edge_weights(v);
    ASSERT_EQ(wa.size(), wb.size());
    for (std::size_t i = 0; i < wa.size(); ++i) EXPECT_EQ(wa[i], wb[i]);
  }
}

}  // namespace
}  // namespace asyncgt
