#include "graph/builder.hpp"

#include <gtest/gtest.h>

#include "graph/graph_stats.hpp"

namespace asyncgt {
namespace {

TEST(Builder, RemovesSelfLoops) {
  const csr32 g = build_csr<vertex32>(3, {{0, 0, 1}, {0, 1, 1}, {2, 2, 1}});
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_EQ(g.neighbors(0)[0], 1u);
}

TEST(Builder, KeepsSelfLoopsWhenAsked) {
  build_options opt;
  opt.remove_self_loops = false;
  const csr32 g = build_csr<vertex32>(2, {{0, 0, 1}, {0, 1, 1}}, opt);
  EXPECT_EQ(g.num_edges(), 2u);
}

TEST(Builder, RemovesDuplicateEdges) {
  const csr32 g = build_csr<vertex32>(
      3, {{0, 1, 1}, {0, 1, 1}, {0, 1, 1}, {1, 2, 1}});
  EXPECT_EQ(g.num_edges(), 2u);
}

TEST(Builder, DuplicateRemovalKeepsLowestWeight) {
  const csr32 g = build_csr<vertex32>(2, {{0, 1, 9}, {0, 1, 3}});
  EXPECT_EQ(g.num_edges(), 1u);
  g.for_each_out_edge(0, [](vertex32, weight_t w) { EXPECT_EQ(w, 3u); });
}

TEST(Builder, SymmetrizeAddsReverseEdges) {
  build_options opt;
  opt.symmetrize = true;
  const csr32 g = build_csr<vertex32>(3, {{0, 1, 1}, {1, 2, 1}}, opt);
  EXPECT_EQ(g.num_edges(), 4u);
  EXPECT_TRUE(is_symmetric(g));
}

TEST(Builder, SymmetrizeDedupsMutualEdges) {
  // (0,1) and (1,0) both present: symmetrization must not double them.
  build_options opt;
  opt.symmetrize = true;
  const csr32 g = build_csr<vertex32>(2, {{0, 1, 1}, {1, 0, 1}}, opt);
  EXPECT_EQ(g.num_edges(), 2u);
}

TEST(Builder, AdjacencySorted) {
  const csr32 g = build_csr<vertex32>(
      4, {{0, 3, 1}, {0, 1, 1}, {0, 2, 1}});
  const auto nb = g.neighbors(0);
  ASSERT_EQ(nb.size(), 3u);
  EXPECT_TRUE(std::is_sorted(nb.begin(), nb.end()));
}

TEST(Builder, OutOfRangeEndpointRejected) {
  EXPECT_THROW(build_csr<vertex32>(2, {{0, 2, 1}}), std::invalid_argument);
  EXPECT_THROW(build_csr<vertex32>(2, {{5, 0, 1}}), std::invalid_argument);
}

TEST(Builder, EmptyEdgeList) {
  const csr32 g = build_csr<vertex32>(5, {});
  EXPECT_EQ(g.num_vertices(), 5u);
  EXPECT_EQ(g.num_edges(), 0u);
}

TEST(Builder, ZeroVertices) {
  const csr32 g = build_csr<vertex32>(0, {});
  EXPECT_EQ(g.num_vertices(), 0u);
}

TEST(Builder, UnweightedWhenAllWeightsOne) {
  const csr32 g = build_csr<vertex32>(2, {{0, 1, 1}});
  EXPECT_FALSE(g.is_weighted());
}

TEST(Builder, WeightedWhenAnyWeightDiffers) {
  const csr32 g = build_csr<vertex32>(3, {{0, 1, 1}, {1, 2, 4}});
  EXPECT_TRUE(g.is_weighted());
}

TEST(Builder, BuildReverseOption) {
  build_options opt;
  opt.build_reverse = true;
  const csr32 g = build_csr<vertex32>(3, {{0, 1, 1}, {2, 1, 1}}, opt);
  ASSERT_TRUE(g.has_reverse());
  EXPECT_EQ(g.in_degree(1), 2u);
  EXPECT_EQ(g.in_neighbors(1)[0], 0u);
  EXPECT_EQ(g.in_neighbors(1)[1], 2u);
}

TEST(Builder, ReverseOffByDefault) {
  const csr32 g = build_csr<vertex32>(2, {{0, 1, 1}});
  EXPECT_FALSE(g.has_reverse());
}

TEST(Builder, RoundTripThroughEdgeList) {
  const csr32 g = build_csr<vertex32>(
      4, {{0, 1, 2}, {0, 2, 3}, {2, 3, 4}, {3, 0, 5}});
  const auto edges = to_edge_list(g);
  const csr32 h = build_csr<vertex32>(4, edges);
  EXPECT_EQ(h.num_edges(), g.num_edges());
  for (vertex32 v = 0; v < 4; ++v) {
    const auto a = g.neighbors(v);
    const auto b = h.neighbors(v);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
  }
}

}  // namespace
}  // namespace asyncgt
