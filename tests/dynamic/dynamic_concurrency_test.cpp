// Concurrency battery for the delta overlay (wired into the tsan preset —
// tools/tsan_check.sh): one shared overlay takes delta batches from a
// writer thread while reader threads pin views and iterate / run full
// traversals over them. The contract under test: a view pinned at epoch e
// serves exactly epoch e's edge set no matter how many batches land after
// the pin — readers never block writers beyond the sharded patch-index
// lock, and never see a half-applied batch (each reader cross-checks its
// iterated edge count against the count its view pinned at creation).
#include "graph/delta_overlay.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <random>
#include <thread>
#include <vector>

#include "core/incremental.hpp"
#include "gen/rmat.hpp"
#include "gen/update_stream.hpp"
#include "queue/visitor_queue.hpp"
#include "service/engine.hpp"

namespace asyncgt {
namespace {

traversal_options small_cfg() {
  visitor_queue_config q;
  q.num_threads = 2;
  return traversal_options(q);
}

TEST(DynamicConcurrency, ConcurrentApplyAndPinnedIterationAreConsistent) {
  auto base = rmat_graph<vertex32>(rmat_a(7, 5));
  base.ensure_reverse();
  delta_overlay<csr_graph<vertex32>> ov(base);
  const auto n = static_cast<vertex32>(base.num_vertices());

  const auto stream = generate_update_stream(
      base, {.seed = 7, .num_batches = 24, .batch_size = 32,
             .delete_fraction = 0.4});

  std::atomic<bool> done{false};
  std::atomic<std::uint64_t> views_checked{0};

  std::thread writer([&] {
    for (const auto& b : stream) ov.apply(b);
    done.store(true, std::memory_order_release);
  });

  constexpr int kReaders = 4;
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      std::mt19937_64 rng(100 + r);
      do {
        auto view = ov.snapshot();
        // Full forward sweep: the iterated edge count must equal the count
        // pinned at view creation — a torn batch or a patch from a later
        // epoch would break the equality.
        std::uint64_t count = 0;
        std::uint64_t degree_sum = 0;
        for (vertex32 v = 0; v < n; ++v) {
          degree_sum += view.out_degree(v);
          view.for_each_out_edge(v, [&](vertex32, weight_t) { ++count; });
        }
        EXPECT_EQ(count, view.num_edges());
        EXPECT_EQ(degree_sum, view.num_edges());
        // Reverse spot-checks on random vertices (sharded in-map path).
        for (int i = 0; i < 32; ++i) {
          const auto v = static_cast<vertex32>(rng() % n);
          std::uint64_t in = 0;
          view.for_each_in_edge(v, [&](vertex32, weight_t) { ++in; });
          EXPECT_EQ(in, view.in_degree(v));
        }
        views_checked.fetch_add(1, std::memory_order_relaxed);
      } while (!done.load(std::memory_order_acquire));
    });
  }

  writer.join();
  for (auto& t : readers) t.join();
  EXPECT_GT(views_checked.load(), 0u);

  // Sequential replay over a fresh overlay must agree with the final state
  // reached under concurrency.
  delta_overlay<csr_graph<vertex32>> replay(base);
  for (const auto& b : stream) replay.apply(b);
  EXPECT_EQ(replay.epoch(), ov.epoch());
  EXPECT_EQ(replay.num_edges(), ov.num_edges());
  auto a = ov.snapshot();
  auto b = replay.snapshot();
  for (vertex32 v = 0; v < n; ++v) {
    ASSERT_EQ(a.out_degree(v), b.out_degree(v)) << "vertex " << v;
  }
}

TEST(DynamicConcurrency, InFlightQueriesAcrossConcurrentDeltas) {
  auto base = rmat_graph_undirected<vertex32>(rmat_a(7, 9));
  base.ensure_reverse();
  delta_overlay<csr_graph<vertex32>> ov(base);

  const auto stream = generate_update_stream(
      base, {.seed = 9, .num_batches = 12, .batch_size = 24,
             .delete_fraction = 0.3, .symmetric = true});

  engine eng;
  // Interleave: submit a full traversal over the current pin, apply the
  // next batch while it runs, then repair the delivered labels and check
  // them against a recompute over the new pin. The async jobs run over
  // views whose overlay is mutating underneath — the jobs must neither
  // race (tsan) nor observe the new epochs (labels match their own pin).
  auto prior = eng.submit_cc(ov.snapshot(), small_cfg()).get();
  for (const auto& batch : stream) {
    auto old_view = ov.snapshot();
    auto in_flight = eng.submit_cc(old_view, small_cfg());
    ov.apply(batch);  // lands while in_flight runs over the old pin
    auto old_result = in_flight.get();
    EXPECT_EQ(old_result.component.size(), base.num_vertices());

    auto new_view = ov.snapshot();
    incremental_extra ex;
    auto repaired = eng.submit_incremental_cc(new_view, batch,
                                              std::move(prior), &ex,
                                              small_cfg())
                        .get();
    auto full = eng.submit_cc(new_view, small_cfg()).get();
    ASSERT_EQ(repaired.component, full.component);
    EXPECT_LE(ex.reseeded_vertices, ex.affected);
    prior = std::move(repaired);
  }
}

}  // namespace
}  // namespace asyncgt
