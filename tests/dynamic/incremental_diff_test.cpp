// Randomized differential battery for incremental recompute (the ISSUE 10
// tentpole's correctness story): for every batch of a seeded update stream,
//
//   incremental(prior_labels, delta)  ==  full_recompute(G union delta)
//
// bit-for-bit on the label arrays (levels / distances / component ids —
// parents are tie-broken nondeterministically by the async engine, exactly
// as in tests/diff), across BFS/SSSP/CC, in-memory and semi-external
// storage, and with mid-stream compaction+rebase on or off. The repaired
// labels then become the prior for the next batch, so errors would
// compound — a stream that stays green proves the repair reaches the true
// fixed point every epoch. Failing seeds print in the assertion context.
#include "core/incremental.hpp"

#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <string>
#include <vector>

#include "gen/grid.hpp"
#include "gen/rmat.hpp"
#include "gen/update_stream.hpp"
#include "gen/webgen.hpp"
#include "gen/weights.hpp"
#include "graph/delta_overlay.hpp"
#include "graph/graph_io.hpp"
#include "sem/sem_compaction.hpp"
#include "sem/sem_csr.hpp"

namespace asyncgt {
namespace {

constexpr std::uint32_t kSeeds[] = {3, 19};

traversal_options cfg() {
  visitor_queue_config q;
  q.num_threads = 4;
  q.flush_batch = 1;
  return traversal_options(q);
}

template <typename T>
void expect_labels_equal(const std::vector<T>& inc, const std::vector<T>& full,
                         const char* what) {
  ASSERT_EQ(inc.size(), full.size());
  std::size_t mismatches = 0;
  std::size_t first = 0;
  for (std::size_t i = 0; i < inc.size(); ++i) {
    if (inc[i] != full[i]) {
      if (mismatches == 0) first = i;
      ++mismatches;
    }
  }
  EXPECT_EQ(mismatches, 0u)
      << what << ": " << mismatches << " label mismatches, first at vertex "
      << first << " (incremental=" << +inc[first]
      << " recompute=" << +full[first] << ")";
}

void check_extra(const incremental_extra& ex, std::uint64_t n) {
  EXPECT_LE(ex.reseeded_vertices, ex.affected);
  EXPECT_LE(ex.affected, n);
}

/// Directed weighted families for BFS/SSSP.
std::vector<csr_graph<vertex32>> directed_families(std::uint32_t seed) {
  std::vector<csr_graph<vertex32>> out;
  out.push_back(rmat_graph<vertex32>(rmat_a(8, seed)));
  out.push_back(webgen_graph<vertex32>({.num_hosts = 20, .seed = seed}));
  for (auto& g : out) {
    add_weights(g, weight_scheme::log_uniform, seed);
    g.ensure_reverse();
  }
  return out;
}

/// Symmetric families for CC.
std::vector<csr_graph<vertex32>> undirected_families(std::uint32_t seed) {
  std::vector<csr_graph<vertex32>> out;
  out.push_back(rmat_graph_undirected<vertex32>(rmat_a(8, seed)));
  out.push_back(grid_graph<vertex32>(12 + seed % 5, 14));
  for (auto& g : out) g.ensure_reverse();
  return out;
}

update_stream_params stream_params(std::uint32_t seed, bool symmetric) {
  update_stream_params p;
  p.seed = seed;
  p.num_batches = 4;
  p.batch_size = 48;
  p.delete_fraction = 0.4;
  p.symmetric = symmetric;
  p.max_weight = 4;
  return p;
}

// ---- In-memory rows ----
//
// One driver per algorithm: run the stream, repairing batch-by-batch and
// recomputing from scratch over the same pinned view; optionally compact
// and rebase mid-stream (the repaired labels stay valid — the edge set is
// unchanged — which is itself part of the contract under test).

template <typename RunFull, typename RunIncr, typename GetLabels>
void drive_im(const csr_graph<vertex32>& base, std::uint32_t seed,
              bool compact_midstream, bool symmetric, RunFull run_full,
              RunIncr run_incr, GetLabels labels) {
  delta_overlay<csr_graph<vertex32>> ov(base);
  auto prior = run_full(ov.snapshot());
  const auto stream = generate_update_stream(base, stream_params(seed,
                                                                 symmetric));
  csr_graph<vertex32> rebased;  // must outlive the overlay's use of it
  for (std::size_t bi = 0; bi < stream.size(); ++bi) {
    SCOPED_TRACE("batch=" + std::to_string(bi) +
                 " seed=" + std::to_string(seed));
    ov.apply(stream[bi]);
    auto view = ov.snapshot();
    incremental_extra ex;
    auto repaired = run_incr(view, stream[bi], std::move(prior), &ex);
    check_extra(ex, base.num_vertices());
    auto full = run_full(view);
    expect_labels_equal(labels(repaired), labels(full), "incremental vs full");
    if (compact_midstream && bi == stream.size() / 2) {
      rebased = ov.compact(/*build_reverse=*/true);
      ov.rebase(rebased);
      // Labels survive compaction unchanged; verify against the new base.
      auto post = run_full(ov.snapshot());
      expect_labels_equal(labels(repaired), labels(post),
                          "labels across rebase");
    }
    prior = std::move(repaired);
  }
}

TEST(IncrementalDiff, BfsMatchesRecomputeInMemory) {
  for (const auto seed : kSeeds) {
    for (const bool compact : {false, true}) {
      std::size_t fam = 0;
      for (const auto& g : directed_families(seed)) {
        SCOPED_TRACE("family=" + std::to_string(fam++) + " compact=" +
                     std::to_string(compact) + " seed=" +
                     std::to_string(seed));
        drive_im(
            g, seed, compact, /*symmetric=*/false,
            [](const auto& v) { return async_bfs(v, vertex32{0}, cfg()); },
            [](const auto& v, const auto& d, auto prior, auto* ex) {
              return incremental_bfs(v, d, std::move(prior), ex, cfg());
            },
            [](const auto& r) -> const std::vector<dist_t>& {
              return r.level;
            });
      }
    }
  }
}

TEST(IncrementalDiff, SsspMatchesRecomputeInMemory) {
  for (const auto seed : kSeeds) {
    for (const bool compact : {false, true}) {
      std::size_t fam = 0;
      for (const auto& g : directed_families(seed)) {
        SCOPED_TRACE("family=" + std::to_string(fam++) + " compact=" +
                     std::to_string(compact) + " seed=" +
                     std::to_string(seed));
        drive_im(
            g, seed, compact, /*symmetric=*/false,
            [](const auto& v) { return async_sssp(v, vertex32{0}, cfg()); },
            [](const auto& v, const auto& d, auto prior, auto* ex) {
              return incremental_sssp(v, d, std::move(prior), ex, cfg());
            },
            [](const auto& r) -> const std::vector<dist_t>& {
              return r.dist;
            });
      }
    }
  }
}

TEST(IncrementalDiff, CcMatchesRecomputeInMemory) {
  for (const auto seed : kSeeds) {
    for (const bool compact : {false, true}) {
      std::size_t fam = 0;
      for (const auto& g : undirected_families(seed)) {
        SCOPED_TRACE("family=" + std::to_string(fam++) + " compact=" +
                     std::to_string(compact) + " seed=" +
                     std::to_string(seed));
        drive_im(
            g, seed, compact, /*symmetric=*/true,
            [](const auto& v) { return async_cc(v, cfg()); },
            [](const auto& v, const auto& d, auto prior, auto* ex) {
              return incremental_cc(v, d, std::move(prior), ex, cfg());
            },
            [](const auto& r) -> const std::vector<vertex32>& {
              return r.component;
            });
      }
    }
  }
}

// ---- Semi-external rows ----
//
// The overlay wraps a disk-backed sem_csr (with its .rev companion);
// compaction goes through sem::compact_to_file and a fresh sem_csr is
// rebased in — the full SEM lifecycle of docs/dynamic_graphs.md.

class IncrementalDiffSem : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("agt_dyn_sem_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::string out(const std::string& name) const {
    return (dir_ / name).string();
  }
  std::filesystem::path dir_;
};

template <typename RunFull, typename RunIncr, typename GetLabels>
void drive_sem(const std::filesystem::path& dir,
               const csr_graph<vertex32>& im_base, std::uint32_t seed,
               bool compact_midstream, bool symmetric, RunFull run_full,
               RunIncr run_incr, GetLabels labels) {
  const std::string path = (dir / ("base_" + std::to_string(seed) + ".agt"))
                               .string();
  write_graph_with_reverse(path, im_base);
  auto base = std::make_unique<sem::sem_csr<vertex32>>(path);
  base->open_reverse();

  auto ov = std::make_unique<delta_overlay<sem::sem_csr<vertex32>>>(*base);
  auto prior = run_full(ov->snapshot());
  const auto stream =
      generate_update_stream(im_base, stream_params(seed, symmetric));
  std::unique_ptr<sem::sem_csr<vertex32>> rebased;
  for (std::size_t bi = 0; bi < stream.size(); ++bi) {
    SCOPED_TRACE("batch=" + std::to_string(bi) +
                 " seed=" + std::to_string(seed));
    ov->apply(stream[bi]);
    auto view = ov->snapshot();
    incremental_extra ex;
    auto repaired = run_incr(view, stream[bi], std::move(prior), &ex);
    check_extra(ex, im_base.num_vertices());
    auto full = run_full(view);
    expect_labels_equal(labels(repaired), labels(full), "incremental vs full");
    if (compact_midstream && bi == stream.size() / 2) {
      const std::string cpath =
          (dir / ("compact_" + std::to_string(seed) + ".agt")).string();
      sem::sem_compaction_options copt;
      copt.scratch_dir = dir / "scratch";
      sem::compact_to_file(view, cpath, copt);
      rebased = std::make_unique<sem::sem_csr<vertex32>>(cpath);
      rebased->open_reverse();
      ov->rebase(*rebased);
      auto post = run_full(ov->snapshot());
      expect_labels_equal(labels(repaired), labels(post),
                          "labels across SEM rebase");
    }
    prior = std::move(repaired);
  }
}

TEST_F(IncrementalDiffSem, BfsMatchesRecomputeSem) {
  for (const auto seed : kSeeds) {
    for (const bool compact : {false, true}) {
      SCOPED_TRACE("compact=" + std::to_string(compact));
      auto g = rmat_graph<vertex32>(rmat_a(8, seed));
      add_weights(g, weight_scheme::log_uniform, seed);
      g.ensure_reverse();
      drive_sem(
          dir_, g, seed, compact, /*symmetric=*/false,
          [](const auto& v) { return async_bfs(v, vertex32{0}, cfg()); },
          [](const auto& v, const auto& d, auto prior, auto* ex) {
            return incremental_bfs(v, d, std::move(prior), ex, cfg());
          },
          [](const auto& r) -> const std::vector<dist_t>& {
            return r.level;
          });
    }
  }
}

TEST_F(IncrementalDiffSem, SsspMatchesRecomputeSem) {
  for (const auto seed : kSeeds) {
    for (const bool compact : {false, true}) {
      SCOPED_TRACE("compact=" + std::to_string(compact));
      auto g = rmat_graph<vertex32>(rmat_a(8, seed));
      add_weights(g, weight_scheme::log_uniform, seed);
      g.ensure_reverse();
      drive_sem(
          dir_, g, seed, compact, /*symmetric=*/false,
          [](const auto& v) { return async_sssp(v, vertex32{0}, cfg()); },
          [](const auto& v, const auto& d, auto prior, auto* ex) {
            return incremental_sssp(v, d, std::move(prior), ex, cfg());
          },
          [](const auto& r) -> const std::vector<dist_t>& {
            return r.dist;
          });
    }
  }
}

TEST_F(IncrementalDiffSem, CcMatchesRecomputeSem) {
  for (const auto seed : kSeeds) {
    for (const bool compact : {false, true}) {
      SCOPED_TRACE("compact=" + std::to_string(compact));
      auto g = rmat_graph_undirected<vertex32>(rmat_a(8, seed));
      g.ensure_reverse();
      drive_sem(
          dir_, g, seed, compact, /*symmetric=*/true,
          [](const auto& v) { return async_cc(v, cfg()); },
          [](const auto& v, const auto& d, auto prior, auto* ex) {
            return incremental_cc(v, d, std::move(prior), ex, cfg());
          },
          [](const auto& r) -> const std::vector<vertex32>& {
            return r.component;
          });
    }
  }
}

// ---- Contract rows ----

TEST(IncrementalDiff, DeleteRepairWithoutReverseViewThrows) {
  auto g = rmat_graph<vertex32>(rmat_a(6, 1));  // no reverse built
  delta_overlay<csr_graph<vertex32>> ov(g);
  delta_batch<vertex32> d;
  d.erase(0, 1);
  ov.apply(d);
  auto prior = async_bfs(ov.snapshot_at(0), vertex32{0}, cfg());
  EXPECT_THROW(
      incremental_bfs(ov.snapshot(), d, std::move(prior), nullptr, cfg()),
      std::invalid_argument);
}

TEST(IncrementalDiff, InsertOnlyRepairNeedsNoReverseView) {
  auto g = rmat_graph<vertex32>(rmat_a(6, 2));  // no reverse built
  delta_overlay<csr_graph<vertex32>> ov(g);
  auto prior = async_bfs(ov.snapshot(), vertex32{0}, cfg());
  delta_batch<vertex32> d;
  d.insert(0, static_cast<vertex32>(g.num_vertices() - 1));
  ov.apply(d);
  auto view = ov.snapshot();
  incremental_extra ex;
  auto repaired = incremental_bfs(view, d, std::move(prior), &ex, cfg());
  auto full = async_bfs(view, vertex32{0}, cfg());
  expect_labels_equal(repaired.level, full.level, "insert-only repair");
  check_extra(ex, g.num_vertices());
}

// Regression: re-inserting a LIVE pair at a smaller weight is a set-
// semantics no-op, but the planner used to seed the repair from the
// batch's listed weight — a distance the real edge set cannot achieve,
// which monotone relaxation then happily keeps. The seed must come from
// the pair's live weight in the post-apply view.
TEST(IncrementalDiff, DuplicateInsertAtSmallerWeightStaysExact) {
  // 0 -(7)-> 1 -(7)-> 2: dist(2) = 14 and must stay 14 when the no-op
  // "+ 1 2 w=1" lands (the live weight is still 7). The buggy planner
  // seeded dist(2) = 7 + 1 = 8.
  std::vector<edge<vertex32>> edges{{0, 1, 7}, {1, 2, 7}};
  const auto g = build_csr<vertex32>(3, std::move(edges));
  delta_overlay<csr_graph<vertex32>> ov(g);
  auto prior = async_sssp(ov.snapshot(), vertex32{0}, cfg());
  ASSERT_EQ(prior.dist[2], 14u);
  delta_batch<vertex32> d;
  d.insert(1, 2, 1);  // pair already live at weight 7 -> no-op
  ov.apply(d);
  auto view = ov.snapshot();
  incremental_extra ex;
  auto repaired = incremental_sssp(view, d, std::move(prior), &ex, cfg());
  auto full = async_sssp(view, vertex32{0}, cfg());
  expect_labels_equal(repaired.dist, full.dist, "no-op duplicate insert");
  EXPECT_EQ(repaired.dist[2], 14u);
  check_extra(ex, g.num_vertices());
}

TEST(IncrementalDiff, JobStatsCarryDeltaEpoch) {
  auto g = rmat_graph<vertex32>(rmat_a(6, 3));
  g.ensure_reverse();
  delta_overlay<csr_graph<vertex32>> ov(g);
  engine eng;
  auto prior = eng.submit_bfs(ov.snapshot(), vertex32{0}, cfg()).get();
  delta_batch<vertex32> d;
  d.insert(1, 2).erase(2, 3);
  ov.apply(d);
  ov.apply(delta_batch<vertex32>{}.insert(3, 4));
  auto j = eng.submit_incremental_bfs(ov.snapshot(), d, std::move(prior),
                                      nullptr, cfg());
  j.wait();
  EXPECT_EQ(j.stats().delta_epoch, 2u);
  EXPECT_EQ(j.stats().label, "incremental_bfs");
}

}  // namespace
}  // namespace asyncgt
