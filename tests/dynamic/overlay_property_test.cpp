// Property tests for the delta overlay itself (ISSUE 10 satellite):
// epoch-versioned iteration checked against a std::multiset reference
// model across randomized op streams (never yields a deleted edge, never
// misses an inserted one, at EVERY pinned epoch — including epochs pinned
// before later batches landed), set-semantics idempotence, degree/edge
// count consistency, compaction byte-identity between the in-memory path
// (write_graph of the materialized graph) and the SEM ooc_builder path
// (including the .agt.rev companion), and rebase.
//
// Every randomized case prints its seed in the failure message so a red
// run reproduces with one constant, diff-harness style.
#include "graph/delta_overlay.hpp"

#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <map>
#include <random>
#include <set>
#include <tuple>
#include <vector>

#include "gen/rmat.hpp"
#include "gen/update_stream.hpp"
#include "graph/builder.hpp"
#include "graph/graph_io.hpp"
#include "sem/sem_compaction.hpp"

namespace asyncgt {
namespace {

using edge_multiset = std::multiset<std::tuple<vertex32, vertex32, weight_t>>;

/// Reference model with the overlay's set-on-pairs semantics over a
/// multiset of (src, dst, weight) copies.
struct model {
  edge_multiset edges;

  bool present(vertex32 u, vertex32 v) const {
    auto it = edges.lower_bound({u, v, 0});
    return it != edges.end() && std::get<0>(*it) == u && std::get<1>(*it) == v;
  }
  // insert is a no-op when the pair is present; delete removes ALL copies.
  void insert(vertex32 u, vertex32 v, weight_t w) {
    if (!present(u, v)) edges.insert({u, v, w});
  }
  void erase(vertex32 u, vertex32 v) {
    auto it = edges.lower_bound({u, v, 0});
    while (it != edges.end() && std::get<0>(*it) == u &&
           std::get<1>(*it) == v) {
      it = edges.erase(it);
    }
  }
};

/// Builds a base with self-loops AND parallel copies retained, so the
/// overlay's all-copies delete semantics actually gets exercised.
csr_graph<vertex32> messy_base(std::uint64_t seed) {
  const rmat_params p = rmat_a(7, static_cast<std::uint32_t>(seed));
  auto edges = rmat_edges<vertex32>(p);
  // Duplicate a slice with different weights and add a few self-loops.
  const std::size_t dup = edges.size() / 8;
  for (std::size_t i = 0; i < dup; ++i) {
    edges.push_back({edges[i].src, edges[i].dst,
                     static_cast<weight_t>(2 + i % 3)});
  }
  for (vertex32 v = 0; v < 5; ++v) edges.push_back({v, v, 1});
  build_options opt;
  opt.remove_self_loops = false;
  opt.remove_duplicates = false;
  opt.build_reverse = true;
  return build_csr<vertex32>(p.num_vertices(), edges, opt);
}

model model_of(const csr_graph<vertex32>& g) {
  model m;
  for (vertex32 u = 0; u < g.num_vertices(); ++u) {
    g.for_each_out_edge(u, [&](vertex32 v, weight_t w) {
      m.edges.insert({u, v, w});
    });
  }
  return m;
}

edge_multiset collect_out(const overlay_view<csr_graph<vertex32>>& view) {
  edge_multiset got;
  for (vertex32 u = 0; u < view.num_vertices(); ++u) {
    view.for_each_out_edge(u, [&](vertex32 v, weight_t w) {
      got.insert({u, v, w});
    });
  }
  return got;
}

edge_multiset collect_in(const overlay_view<csr_graph<vertex32>>& view) {
  edge_multiset got;
  for (vertex32 v = 0; v < view.num_vertices(); ++v) {
    view.for_each_in_edge(v, [&](vertex32 u, weight_t w) {
      got.insert({u, v, w});
    });
  }
  return got;
}

TEST(OverlayProperty, IterationMatchesMultisetModelAtEveryEpoch) {
  for (const std::uint64_t seed : {3u, 17u, 40u}) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    const csr_graph<vertex32> base = messy_base(seed);
    const auto n = static_cast<vertex32>(base.num_vertices());
    delta_overlay<csr_graph<vertex32>> ov(base);

    std::mt19937_64 rng(seed);
    std::uniform_int_distribution<vertex32> vd(0, n - 1);
    std::uniform_real_distribution<double> coin(0.0, 1.0);

    model m = model_of(base);
    std::vector<model> at_epoch = {m};  // [e] -> model after epoch e
    std::vector<overlay_view<csr_graph<vertex32>>> views = {ov.snapshot()};

    constexpr int kEpochs = 8;
    constexpr int kOpsPerBatch = 48;
    for (int e = 1; e <= kEpochs; ++e) {
      delta_batch<vertex32> batch;
      for (int i = 0; i < kOpsPerBatch; ++i) {
        const vertex32 u = vd(rng);
        const vertex32 v = vd(rng);
        // Ops are drawn blind: duplicates, self-loops, deletes of absent
        // pairs, re-inserts of deleted pairs all occur and must no-op or
        // round-trip exactly like the model.
        if (coin(rng) < 0.45) {
          batch.erase(u, v);
        } else {
          const auto w = static_cast<weight_t>(1 + (u + v + e) % 5);
          batch.insert(u, v, w);
        }
      }
      // Replay onto the model in apply() order: a batch's deletes land
      // before its inserts, so a delete+insert of one pair nets to the
      // insert regardless of draw order.
      for (const auto& [du, dv] : batch.deletes) m.erase(du, dv);
      for (const auto& ins : batch.inserts) m.insert(ins.src, ins.dst,
                                                     ins.weight);
      ov.apply(batch);
      at_epoch.push_back(m);
      views.push_back(ov.snapshot());
    }

    // Every pinned view — including ones created epochs ago — serves
    // exactly its epoch's edge set, forward and reverse, with matching
    // degree and edge-count accounting.
    for (int e = 0; e <= kEpochs; ++e) {
      SCOPED_TRACE("epoch=" + std::to_string(e));
      const auto& view = views[static_cast<std::size_t>(e)];
      const auto& want = at_epoch[static_cast<std::size_t>(e)].edges;
      EXPECT_EQ(collect_out(view), want);
      EXPECT_EQ(collect_in(view), want);
      EXPECT_EQ(view.num_edges(), want.size());
      std::uint64_t degree_sum = 0;
      for (vertex32 v = 0; v < n; ++v) degree_sum += view.out_degree(v);
      EXPECT_EQ(degree_sum, want.size());
      // snapshot_at reconstructs the same historical pin.
      EXPECT_EQ(collect_out(ov.snapshot_at(static_cast<std::uint64_t>(e))),
                want);
    }
  }
}

TEST(OverlayProperty, DeleteHidesEveryParallelCopyAndInsertRestoresOne) {
  const csr_graph<vertex32> base = messy_base(5);
  delta_overlay<csr_graph<vertex32>> ov(base);

  // Find a pair with parallel copies (messy_base guarantees some).
  vertex32 du = invalid_vertex<vertex32>, dv = 0;
  for (vertex32 u = 0; u < base.num_vertices() && du == invalid_vertex<vertex32>;
       ++u) {
    std::map<vertex32, int> seen;
    base.for_each_out_edge(u, [&](vertex32 v, weight_t) { seen[v]++; });
    for (const auto& [v, c] : seen) {
      if (c > 1) {
        du = u;
        dv = v;
        break;
      }
    }
  }
  ASSERT_NE(du, invalid_vertex<vertex32>);

  ov.apply(delta_batch<vertex32>{}.erase(du, dv));
  auto after_del = ov.snapshot();
  EXPECT_FALSE(after_del.has_edge(du, dv));
  std::uint64_t copies = 0;
  after_del.for_each_out_edge(du, [&](vertex32 v, weight_t) {
    if (v == dv) ++copies;
  });
  EXPECT_EQ(copies, 0u) << "deleted pair still iterated";

  ov.apply(delta_batch<vertex32>{}.insert(du, dv, 7));
  auto after_ins = ov.snapshot();
  EXPECT_TRUE(after_ins.has_edge(du, dv));
  copies = 0;
  weight_t got_w = 0;
  after_ins.for_each_out_edge(du, [&](vertex32 v, weight_t w) {
    if (v == dv) {
      ++copies;
      got_w = w;
    }
  });
  EXPECT_EQ(copies, 1u) << "re-insert must restore exactly one copy";
  EXPECT_EQ(got_w, 7u);
  // The older pin still sees the deletion.
  EXPECT_FALSE(after_del.has_edge(du, dv));
}

TEST(OverlayProperty, SetSemanticsIdempotence) {
  const csr_graph<vertex32> base = messy_base(9);
  delta_overlay<csr_graph<vertex32>> ov(base);
  const std::uint64_t base_edges = base.num_edges();

  // Insert of an existing base edge: no-op.
  vertex32 eu = 0, ev = 0;
  bool found = false;
  for (vertex32 u = 0; u < base.num_vertices() && !found; ++u) {
    base.for_each_out_edge(u, [&](vertex32 v, weight_t) {
      if (!found) {
        eu = u;
        ev = v;
        found = true;
      }
    });
  }
  ASSERT_TRUE(found);
  auto c = ov.apply(delta_batch<vertex32>{}.insert(eu, ev, 9));
  EXPECT_EQ(c.noop_inserts, 1u);
  EXPECT_EQ(c.applied_inserts, 0u);
  EXPECT_EQ(ov.num_edges(), base_edges);

  // Double delete: second is a no-op; double insert of the overlay copy
  // likewise.
  c = ov.apply(delta_batch<vertex32>{}.erase(eu, ev).erase(eu, ev));
  EXPECT_EQ(c.applied_deletes, 1u);
  EXPECT_EQ(c.noop_deletes, 1u);
  c = ov.apply(delta_batch<vertex32>{}.insert(eu, ev, 2).insert(eu, ev, 3));
  EXPECT_EQ(c.applied_inserts, 1u);
  EXPECT_EQ(c.noop_inserts, 1u);
  EXPECT_TRUE(ov.snapshot().has_edge(eu, ev));

  // A batch's deletes run before its inserts: delete + re-insert nets to
  // the re-insert.
  c = ov.apply(delta_batch<vertex32>{}.erase(eu, ev).insert(eu, ev, 4));
  EXPECT_EQ(c.applied_deletes, 1u);
  EXPECT_EQ(c.applied_inserts, 1u);
  EXPECT_TRUE(ov.snapshot().has_edge(eu, ev));
}

TEST(OverlayProperty, OutOfRangeEndpointThrows) {
  const csr_graph<vertex32> base = messy_base(2);
  delta_overlay<csr_graph<vertex32>> ov(base);
  const auto n = static_cast<vertex32>(base.num_vertices());
  EXPECT_THROW(ov.apply(delta_batch<vertex32>{}.insert(n, 0)),
               std::out_of_range);
  EXPECT_THROW(ov.apply(delta_batch<vertex32>{}.erase(0, n)),
               std::out_of_range);
  EXPECT_EQ(ov.epoch(), 0u) << "failed batch must not advance the epoch";
}

class OverlayCompaction : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("agt_dyn_compact_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string out(const std::string& name) const {
    return (dir_ / name).string();
  }

  static bool files_identical(const std::string& a, const std::string& b) {
    std::ifstream fa(a, std::ios::binary), fb(b, std::ios::binary);
    const std::string ca((std::istreambuf_iterator<char>(fa)),
                         std::istreambuf_iterator<char>());
    const std::string cb((std::istreambuf_iterator<char>(fb)),
                         std::istreambuf_iterator<char>());
    return !ca.empty() && ca == cb;
  }

  std::filesystem::path dir_;
};

TEST_F(OverlayCompaction, SemCompactionByteIdenticalToWriteGraph) {
  for (const std::uint64_t seed : {4u, 23u}) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    const csr_graph<vertex32> base = messy_base(seed);
    delta_overlay<csr_graph<vertex32>> ov(base);
    const auto stream = generate_update_stream(
        base, {.seed = seed, .num_batches = 4, .batch_size = 64,
               .delete_fraction = 0.35, .symmetric = false, .max_weight = 4});
    for (const auto& b : stream) ov.apply(b);

    // IM path: materialized graph written by write_graph (+ reverse).
    const csr_graph<vertex32> compacted = ov.compact(/*build_reverse=*/true);
    write_graph_with_reverse(out("im_" + std::to_string(seed) + ".agt"),
                             compacted);

    // SEM path: streamed through the ooc_builder with a tiny budget so the
    // external sort genuinely spills.
    sem::sem_compaction_options copt;
    copt.memory_budget_bytes = 512;
    copt.scratch_dir = dir_ / "scratch";
    const auto stats = sem::compact_to_file(
        ov.snapshot(), out("sem_" + std::to_string(seed) + ".agt"), copt);
    EXPECT_EQ(stats.edges, ov.num_edges());
    EXPECT_EQ(stats.epoch, ov.epoch());

    EXPECT_TRUE(files_identical(out("im_" + std::to_string(seed) + ".agt"),
                                out("sem_" + std::to_string(seed) + ".agt")));
    EXPECT_TRUE(files_identical(
        reverse_path_for(out("im_" + std::to_string(seed) + ".agt")),
        reverse_path_for(out("sem_" + std::to_string(seed) + ".agt"))));
  }
}

TEST_F(OverlayCompaction, RebaseDropsPatchesAndKeepsHeadEdgeSet) {
  const csr_graph<vertex32> base = messy_base(11);
  delta_overlay<csr_graph<vertex32>> ov(base);
  const auto stream = generate_update_stream(
      base, {.seed = 11, .num_batches = 3, .batch_size = 48,
             .delete_fraction = 0.4});
  for (const auto& b : stream) ov.apply(b);

  const edge_multiset head = collect_out(ov.snapshot());
  const std::uint64_t head_epoch = ov.epoch();

  const csr_graph<vertex32> clean = ov.compact(/*build_reverse=*/true);
  ov.rebase(clean);

  EXPECT_EQ(ov.epoch(), head_epoch) << "the epoch lineage survives rebase";
  EXPECT_EQ(ov.compacted_epoch(), head_epoch);
  EXPECT_EQ(collect_out(ov.snapshot()), head);
  const auto c = ov.counters();
  EXPECT_EQ(c.live_inserts, 0u);
  EXPECT_EQ(c.live_deletes, 0u);
  EXPECT_EQ(c.patched_pairs, 0u);

  // And the overlay keeps working on the new base.
  ov.apply(delta_batch<vertex32>{}.insert(0, 1, 3).erase(1, 0));
  EXPECT_EQ(ov.epoch(), head_epoch + 1);
  EXPECT_EQ(collect_out(ov.snapshot()).size(), ov.num_edges());
}

TEST_F(OverlayCompaction, FailedSemCompactionRemovesPartialOutput) {
  const csr_graph<vertex32> base = messy_base(6);
  delta_overlay<csr_graph<vertex32>> ov(base);
  ov.apply(delta_batch<vertex32>{}.insert(1, 2, 2));

  // A scratch dir that is actually a file makes the external sorter's
  // spill path fail partway through.
  sem::sem_compaction_options copt;
  copt.memory_budget_bytes = 128;  // force spilling
  copt.scratch_dir = dir_ / "scratch_blocked";
  { std::ofstream block(copt.scratch_dir); }

  EXPECT_ANY_THROW(
      sem::compact_to_file(ov.snapshot(), out("partial.agt"), copt));
  EXPECT_FALSE(std::filesystem::exists(out("partial.agt")));
  EXPECT_FALSE(
      std::filesystem::exists(reverse_path_for(out("partial.agt"))));
  // The overlay itself — the "old epoch" — is untouched and readable.
  EXPECT_EQ(ov.snapshot().num_edges(), ov.num_edges());
}

}  // namespace
}  // namespace asyncgt
