// Randomized cross-validation: many random graphs, every algorithm, every
// implementation — all answers must agree and pass the first-principles
// validators. This is the property-based safety net over the whole stack;
// seeds are fixed so failures reproduce.
#include <gtest/gtest.h>

#include <random>

#include "asyncgt.hpp"
#include "baselines/bsp_bfs.hpp"
#include "baselines/bsp_cc.hpp"
#include "baselines/delta_stepping.hpp"
#include "baselines/dobfs.hpp"
#include "baselines/levelsync_bfs.hpp"
#include "baselines/serial_bfs.hpp"
#include "baselines/serial_cc.hpp"
#include "baselines/serial_kcore.hpp"
#include "baselines/serial_sssp.hpp"
#include "baselines/syncprop_cc.hpp"
#include "gen/random_graphs.hpp"

namespace asyncgt {
namespace {

// Random graph drawn from a random family with random size/density.
csr32 random_graph(std::mt19937& rng, bool undirected) {
  const std::uint64_t n = 2 + rng() % 400;
  const int family = static_cast<int>(rng() % 3);
  std::vector<edge<vertex32>> edges;
  const std::uint64_t m = rng() % (4 * n + 1);
  switch (family) {
    case 0:  // uniform random
      for (std::uint64_t i = 0; i < m; ++i) {
        edges.push_back({static_cast<vertex32>(rng() % n),
                         static_cast<vertex32>(rng() % n), 1});
      }
      break;
    case 1:  // hub-heavy: half the edges touch vertex 0
      for (std::uint64_t i = 0; i < m; ++i) {
        const auto a = (i % 2 == 0) ? vertex32{0}
                                    : static_cast<vertex32>(rng() % n);
        edges.push_back({a, static_cast<vertex32>(rng() % n), 1});
      }
      break;
    default:  // layered chains with shortcuts
      for (std::uint64_t v = 0; v + 1 < n; ++v) {
        if (rng() % 4 != 0) {
          edges.push_back({static_cast<vertex32>(v),
                           static_cast<vertex32>(v + 1), 1});
        }
      }
      for (std::uint64_t i = 0; i < m / 4; ++i) {
        edges.push_back({static_cast<vertex32>(rng() % n),
                         static_cast<vertex32>(rng() % n), 1});
      }
      break;
  }
  build_options opt;
  opt.symmetrize = undirected;
  return build_csr<vertex32>(n, std::move(edges), opt);
}

csr32 with_random_weights(const csr32& g, std::mt19937& rng) {
  return add_weights(g,
                     rng() % 2 == 0 ? weight_scheme::uniform
                                    : weight_scheme::log_uniform,
                     rng());
}

visitor_queue_config random_cfg(std::mt19937& rng) {
  visitor_queue_config cfg;
  cfg.num_threads = 1 + rng() % 24;
  cfg.secondary_vertex_sort = (rng() % 2 == 0);
  return cfg;
}

class RandomFuzz : public ::testing::TestWithParam<int> {};

TEST_P(RandomFuzz, AllBfsImplementationsAgree) {
  std::mt19937 rng(1000u + static_cast<unsigned>(GetParam()));
  const csr32 g = random_graph(rng, /*undirected=*/false);
  const auto start = static_cast<vertex32>(rng() % g.num_vertices());
  const auto ref = serial_bfs(g, start);
  EXPECT_EQ(async_bfs(g, start, random_cfg(rng)).level, ref.level);
  EXPECT_EQ(levelsync_bfs(g, start, 1 + rng() % 8).level, ref.level);
  EXPECT_EQ(bsp_bfs(g, start, 1 + rng() % 8).level, ref.level);
  EXPECT_TRUE(validate_distances(g, start, ref.level, true).ok);
}

TEST_P(RandomFuzz, AllSsspImplementationsAgree) {
  std::mt19937 rng(2000u + static_cast<unsigned>(GetParam()));
  const csr32 g = with_random_weights(random_graph(rng, false), rng);
  const auto start = static_cast<vertex32>(rng() % g.num_vertices());
  const auto ref = dijkstra_sssp(g, start);
  const auto r = async_sssp(g, start, random_cfg(rng));
  EXPECT_EQ(r.dist, ref.dist);
  EXPECT_EQ(delta_stepping_sssp(g, start, 1 + rng() % 5000).dist, ref.dist);
  EXPECT_TRUE(validate_distances(g, start, r.dist).ok);
  EXPECT_TRUE(validate_parents(g, start, r.dist, r.parent).ok);
}

TEST_P(RandomFuzz, AllCcImplementationsAgree) {
  std::mt19937 rng(3000u + static_cast<unsigned>(GetParam()));
  const csr32 g = random_graph(rng, /*undirected=*/true);
  const auto ref = serial_cc(g);
  EXPECT_EQ(async_cc(g, random_cfg(rng)).component, ref.component);
  EXPECT_EQ(syncprop_cc(g, 1 + rng() % 8).component, ref.component);
  EXPECT_EQ(bsp_cc(g, 1 + rng() % 8).component, ref.component);
  EXPECT_TRUE(validate_components(g, ref.component).ok);
}

TEST_P(RandomFuzz, KcoreAndDobfsAgreeOnUndirected) {
  std::mt19937 rng(4000u + static_cast<unsigned>(GetParam()));
  const csr32 g = random_graph(rng, /*undirected=*/true);
  EXPECT_EQ(async_kcore(g, random_cfg(rng)).core, serial_kcore(g));
  const auto start = static_cast<vertex32>(rng() % g.num_vertices());
  EXPECT_EQ(dobfs(g, start).level, serial_bfs(g, start).level);
}

TEST_P(RandomFuzz, BfsEqualsUnitWeightSssp) {
  std::mt19937 rng(5000u + static_cast<unsigned>(GetParam()));
  const csr32 g = random_graph(rng, false);
  const auto start = static_cast<vertex32>(rng() % g.num_vertices());
  EXPECT_EQ(async_bfs(g, start, random_cfg(rng)).level,
            async_sssp(g, start, random_cfg(rng)).dist);
}

INSTANTIATE_TEST_SUITE_P(Trials, RandomFuzz, ::testing::Range(0, 8));

}  // namespace
}  // namespace asyncgt
