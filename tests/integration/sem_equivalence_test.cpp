// Storage-equivalence battery: for every graph family and every algorithm,
// the semi-external execution must produce bit-identical results to the
// in-memory execution — the property that lets the paper (and this library)
// treat storage as a swap-in backend rather than a different algorithm.
#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>

#include "asyncgt.hpp"
#include "gen/random_graphs.hpp"

namespace asyncgt {
namespace {

struct family_case {
  std::string name;
  csr32 graph;
  bool undirected;
};

std::vector<family_case> make_families() {
  std::vector<family_case> out;
  out.push_back({"rmat_a", rmat_graph<vertex32>(rmat_a(8)), false});
  out.push_back(
      {"rmat_b_und", rmat_graph_undirected<vertex32>(rmat_b(8)), true});
  out.push_back({"erdos_renyi",
                 erdos_renyi_graph<vertex32>(400, 2400, 3), true});
  out.push_back({"barabasi_albert",
                 barabasi_albert_graph<vertex32>(400, 4, 5), true});
  out.push_back({"grid", grid_graph<vertex32>(20, 20), true});
  webgen_params wp;
  wp.num_hosts = 30;
  out.push_back({"web", webgen_graph<vertex32>(wp), true});
  return out;
}

class SemEquivalence : public ::testing::TestWithParam<int> {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("agt_eq_" + std::to_string(::getpid()) + "_" +
            std::to_string(GetParam()));
    std::filesystem::create_directories(dir_);
    fam_ = make_families()[static_cast<std::size_t>(GetParam())];
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  sem::sem_csr32 open_sem(const csr32& g, const std::string& tag) {
    const std::string p = (dir_ / (tag + ".agt")).string();
    write_graph(p, g);
    return sem::sem_csr32(p);
  }

  visitor_queue_config cfg() const {
    visitor_queue_config c;
    c.num_threads = 16;
    c.secondary_vertex_sort = true;
    return c;
  }

  std::filesystem::path dir_;
  family_case fam_;
};

TEST_P(SemEquivalence, Bfs) {
  auto sg = open_sem(fam_.graph, "bfs");
  EXPECT_EQ(async_bfs(sg, vertex32{0}, cfg()).level,
            async_bfs(fam_.graph, vertex32{0}, cfg()).level)
      << fam_.name;
}

TEST_P(SemEquivalence, Sssp) {
  const csr32 weighted =
      add_weights(fam_.graph, weight_scheme::log_uniform, 9);
  auto sg = open_sem(weighted, "sssp");
  EXPECT_EQ(async_sssp(sg, vertex32{0}, cfg()).dist,
            async_sssp(weighted, vertex32{0}, cfg()).dist)
      << fam_.name;
}

TEST_P(SemEquivalence, Cc) {
  if (!fam_.undirected) GTEST_SKIP() << "CC requires symmetric graphs";
  auto sg = open_sem(fam_.graph, "cc");
  EXPECT_EQ(async_cc(sg, cfg()).component,
            async_cc(fam_.graph, cfg()).component)
      << fam_.name;
}

TEST_P(SemEquivalence, Kcore) {
  if (!fam_.undirected) GTEST_SKIP() << "k-core requires symmetric graphs";
  auto sg = open_sem(fam_.graph, "kcore");
  EXPECT_EQ(async_kcore(sg, cfg()).core, async_kcore(fam_.graph, cfg()).core)
      << fam_.name;
}

TEST_P(SemEquivalence, PagerankWithinTolerance) {
  pagerank_options popt;
  popt.tolerance = 1e-5;
  auto sg = open_sem(fam_.graph, "pr");
  const auto im = async_pagerank(fam_.graph, popt, cfg());
  const auto sem_r = async_pagerank(sg, popt, cfg());
  // PageRank is order-dependent within the tolerance envelope; both runs
  // must agree to the analytic bound.
  const double bound = popt.tolerance *
                       static_cast<double>(fam_.graph.num_vertices()) / 0.15 *
                       2.0;
  double l1 = 0;
  for (std::size_t v = 0; v < im.rank.size(); ++v) {
    l1 += std::abs(im.rank[v] - sem_r.rank[v]);
  }
  EXPECT_LT(l1, bound) << fam_.name;
}

TEST_P(SemEquivalence, DiameterEstimateAgrees) {
  auto sg = open_sem(fam_.graph, "diam");
  EXPECT_EQ(estimate_diameter(sg, 1, 3, cfg()).lower_bound,
            estimate_diameter(fam_.graph, 1, 3, cfg()).lower_bound)
      << fam_.name;
}

INSTANTIATE_TEST_SUITE_P(Families, SemEquivalence, ::testing::Range(0, 6));

}  // namespace
}  // namespace asyncgt
