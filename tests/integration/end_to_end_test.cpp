// Cross-module integration tests: the full pipeline the examples and
// benches exercise — generate, persist, reload (in-memory and semi-external,
// with device model and page cache attached), traverse with every algorithm
// variant, and cross-validate all results against each other and against
// the first-principles validators.
#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>

#include "asyncgt.hpp"
#include "baselines/bsp_bfs.hpp"
#include "baselines/bsp_cc.hpp"
#include "baselines/delta_stepping.hpp"
#include "baselines/levelsync_bfs.hpp"
#include "baselines/serial_bfs.hpp"
#include "baselines/serial_cc.hpp"
#include "baselines/serial_sssp.hpp"
#include "baselines/syncprop_cc.hpp"
#include "sem/block_cache.hpp"

namespace asyncgt {
namespace {

class EndToEndTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("agt_e2e_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::filesystem::path dir_;
};

visitor_queue_config threads(std::size_t n, bool semisort = false) {
  visitor_queue_config cfg;
  cfg.num_threads = n;
  cfg.secondary_vertex_sort = semisort;
  return cfg;
}

TEST_F(EndToEndTest, GenerateSaveReloadTraverseEverywhere) {
  // The full lifecycle on a weighted RMAT-B graph.
  const csr32 g =
      add_weights(rmat_graph<vertex32>(rmat_b(9)), weight_scheme::uniform, 3);
  const std::string path = (dir_ / "g.agt").string();
  write_graph(path, g);

  // In-memory reload.
  const csr32 loaded = read_graph32(path);
  ASSERT_EQ(loaded.num_edges(), g.num_edges());

  // Semi-external with device + cache.
  sem::ssd_model dev(sem::fusionio_params(/*time_scale=*/0.02));
  sem::block_cache cache(256);
  sem::sem_csr32 sg(path, &dev, &cache);

  const vertex32 start = 0;
  const auto ref = dijkstra_sssp(g, start);
  const auto im = async_sssp(loaded, start, threads(8));
  const auto sem_r = async_sssp(sg, start, threads(32, true));

  EXPECT_EQ(im.dist, ref.dist);
  EXPECT_EQ(sem_r.dist, ref.dist);
  EXPECT_GT(dev.counters().reads, 0u);
  EXPECT_GT(cache.counters().hits + cache.counters().misses, 0u);
}

// Property sweep: every BFS implementation agrees on every graph family.
struct FamilyParam {
  std::string name;
  csr32 graph;
  vertex32 start;
};

class BfsFamilySweep : public ::testing::TestWithParam<int> {
 public:
  static std::vector<FamilyParam> families() {
    std::vector<FamilyParam> out;
    out.push_back({"rmat_a", rmat_graph<vertex32>(rmat_a(9)), 0});
    out.push_back({"rmat_b", rmat_graph<vertex32>(rmat_b(9)), 0});
    out.push_back({"chain", chain_graph<vertex32>(500), 0});
    out.push_back({"grid", grid_graph<vertex32>(30, 30), 17});
    out.push_back({"star", star_graph<vertex32>(2000), 1});
    webgen_params wp;
    wp.num_hosts = 40;
    out.push_back({"web", webgen_graph<vertex32>(wp), 3});
    return out;
  }
};

TEST_P(BfsFamilySweep, AllBfsVariantsAgree) {
  const auto fam = families()[static_cast<std::size_t>(GetParam())];
  const auto ref = serial_bfs(fam.graph, fam.start);
  EXPECT_EQ(async_bfs(fam.graph, fam.start, threads(8)).level, ref.level)
      << fam.name;
  EXPECT_EQ(levelsync_bfs(fam.graph, fam.start, 4).level, ref.level)
      << fam.name;
  EXPECT_EQ(bsp_bfs(fam.graph, fam.start, 4).level, ref.level) << fam.name;
  EXPECT_TRUE(
      validate_distances(fam.graph, fam.start, ref.level, true).ok)
      << fam.name;
}

INSTANTIATE_TEST_SUITE_P(Families, BfsFamilySweep,
                         ::testing::Range(0, 6));

class CcFamilySweep : public ::testing::TestWithParam<int> {
 public:
  static std::vector<FamilyParam> families() {
    std::vector<FamilyParam> out;
    out.push_back(
        {"rmat_a_und", rmat_graph_undirected<vertex32>(rmat_a(9)), 0});
    out.push_back(
        {"rmat_b_und", rmat_graph_undirected<vertex32>(rmat_b(9)), 0});
    out.push_back({"chain_und", chain_graph<vertex32>(400, true), 0});
    out.push_back({"grid", grid_graph<vertex32>(25, 25), 0});
    out.push_back({"star", star_graph<vertex32>(1500), 0});
    webgen_params wp;
    wp.num_hosts = 50;
    wp.isolated_host_fraction = 0.3;
    out.push_back({"web_fragmented", webgen_graph<vertex32>(wp), 0});
    return out;
  }
};

TEST_P(CcFamilySweep, AllCcVariantsAgree) {
  const auto fam = families()[static_cast<std::size_t>(GetParam())];
  const auto ref = serial_cc(fam.graph);
  EXPECT_EQ(async_cc(fam.graph, threads(8)).component, ref.component)
      << fam.name;
  EXPECT_EQ(syncprop_cc(fam.graph, 4).component, ref.component) << fam.name;
  EXPECT_EQ(bsp_cc(fam.graph, 4).component, ref.component) << fam.name;
  EXPECT_TRUE(validate_components(fam.graph, ref.component).ok) << fam.name;
}

INSTANTIATE_TEST_SUITE_P(Families, CcFamilySweep, ::testing::Range(0, 6));

TEST_F(EndToEndTest, SsspVariantsAgreeOnAllWeightSchemes) {
  for (const auto scheme :
       {weight_scheme::uniform, weight_scheme::log_uniform}) {
    const csr32 g =
        add_weights(rmat_graph<vertex32>(rmat_a(9)), scheme, 17);
    const auto ref = dijkstra_sssp(g, vertex32{0});
    EXPECT_EQ(async_sssp(g, vertex32{0}, threads(8)).dist, ref.dist);
    EXPECT_EQ(delta_stepping_sssp(g, vertex32{0}, 64).dist, ref.dist);
  }
}

TEST_F(EndToEndTest, SemWithTinyCacheStillCorrect) {
  // A pathologically small cache must only cost performance, never
  // correctness.
  const csr32 g = rmat_graph<vertex32>(rmat_a(8));
  const std::string path = (dir_ / "tiny.agt").string();
  write_graph(path, g);
  sem::ssd_model dev(sem::corsair_params(/*time_scale=*/0.01));
  sem::block_cache cache(1);
  sem::sem_csr32 sg(path, &dev, &cache);
  EXPECT_EQ(async_bfs(sg, vertex32{0}, threads(64, true)).level,
            serial_bfs(g, vertex32{0}).level);
}

TEST_F(EndToEndTest, SixtyFourBitIdsEndToEnd) {
  const csr64 g = build_csr<vertex64>(
      6, {{0, 1, 2}, {1, 2, 2}, {2, 3, 2}, {0, 3, 9}, {4, 5, 1}});
  const std::string path = (dir_ / "wide.agt").string();
  write_graph(path, g);
  sem::sem_csr64 sg(path);
  const auto im = async_sssp(g, vertex64{0}, threads(4));
  const auto sem_r = async_sssp(sg, vertex64{0}, threads(4));
  EXPECT_EQ(im.dist, sem_r.dist);
  EXPECT_EQ(im.dist[3], 6u);
  EXPECT_EQ(im.dist[5], infinite_distance<dist_t>);
}

TEST_F(EndToEndTest, RepeatedSemRunsShareDeviceAndCache) {
  // Benches reuse one device across runs; counters must accumulate and the
  // cache must warm up (second run does fewer device reads).
  const csr32 g = rmat_graph<vertex32>(rmat_a(8));
  const std::string path = (dir_ / "warm.agt").string();
  write_graph(path, g);
  sem::ssd_model dev(sem::fusionio_params(/*time_scale=*/0.02));
  const std::uint64_t blocks =
      std::filesystem::file_size(path) / 4096 + 1;
  sem::block_cache cache(blocks);  // cache fits whole file
  sem::sem_csr32 sg(path, &dev, &cache);
  const auto first = async_bfs(sg, vertex32{0}, threads(32, true));
  const std::uint64_t reads_first = dev.counters().reads;
  const auto second = async_bfs(sg, vertex32{0}, threads(32, true));
  const std::uint64_t reads_second = dev.counters().reads - reads_first;
  EXPECT_EQ(first.level, second.level);
  EXPECT_LT(reads_second, reads_first / 4);  // warm cache absorbs reads
}

}  // namespace
}  // namespace asyncgt
