// Fault-injection soak: the ISSUE's acceptance battery, as a test.
//
//   * Transient storage faults (EIO/EAGAIN bursts, short reads, latency
//     spikes) injected into every semi-external adjacency read must be
//     invisible to the algorithms — BFS / SSSP / CC labels byte-identical
//     to the fault-free run — with the recovery visible only as io.retries
//     in telemetry.
//   * Faults that outlast the retry budget (or are marked fatal) must
//     surface as a clean traversal_aborted carrying the io_error cause —
//     never a hang, never std::terminate.
//   * An aborted run with checkpoint-on-error must resume from its
//     emergency checkpoint to the identical fixed point once the storage
//     heals.
//
// Runs under the TSan preset too: the abort broadcast and the retry loop
// race against delivery and parking by construction.
#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <string>

#include "asyncgt.hpp"
#include "telemetry/io_recorder.hpp"

namespace asyncgt {
namespace {

class FaultSoak : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("agt_fault_soak_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string write_sem(const csr32& g, const std::string& tag) {
    const std::string p = (dir_ / (tag + ".agt")).string();
    write_graph(p, g);
    return p;
  }

  static visitor_queue_config threads(std::size_t n) {
    visitor_queue_config cfg;
    cfg.num_threads = n;
    return cfg;
  }

  /// Microsecond backoff so thousands of injected faults soak in well
  /// under a second of wall clock.
  static sem::io_retry_policy fast_retry(std::uint32_t max_retries) {
    sem::io_retry_policy p;
    p.max_retries = max_retries;
    p.backoff_initial_us = 1;
    p.backoff_max_us = 20;
    return p;
  }

  /// The transient storm every read must survive: every op faults once
  /// (deterministically), plus frequent short reads and occasional spikes.
  static sem::fault_config transient_storm() {
    sem::fault_config cfg;
    cfg.seed = 7;
    cfg.p_eio = 0.8;
    cfg.p_eagain = 0.2;  // together: every op draws an errno burst
    cfg.p_short = 0.3;
    cfg.p_delay = 0.01;
    cfg.delay_us = 100;
    cfg.fail_attempts = 2;
    return cfg;
  }

  std::filesystem::path dir_;
};

TEST_F(FaultSoak, BfsLabelsIdenticalUnderTransientFaults) {
  const csr32 g = rmat_graph<vertex32>(rmat_a(9));
  const std::string path = write_sem(g, "bfs");
  sem::sem_csr32 clean_g(path);
  const auto clean = async_bfs(clean_g, vertex32{0}, threads(8));

  sem::fault_injector inj(transient_storm());
  telemetry::io_recorder rec;
  sem::sem_csr32 faulty_g(path);
  faulty_g.set_retry_policy(fast_retry(4));
  faulty_g.set_fault_injector(&inj);
  faulty_g.set_io_recorder(&rec);
  const auto faulted = async_bfs(faulty_g, vertex32{0}, threads(8));

  // Levels are the deterministic fixed point; parents are schedule-
  // dependent (any minimal-level neighbour qualifies), so they are checked
  // for validity, not equality.
  EXPECT_EQ(faulted.level, clean.level);
  for (std::size_t v = 0; v < faulted.parent.size(); ++v) {
    if (v == 0 || faulted.level[v] == infinite_distance<dist_t>) continue;
    ASSERT_EQ(faulted.level[faulted.parent[v]] + 1, faulted.level[v])
        << "vertex " << v;
  }
  const auto io = rec.snapshot();
  EXPECT_GT(inj.counters().errors, 0u);
  EXPECT_GT(io.retries, 0u);  // recovery happened and telemetry saw it
  EXPECT_EQ(io.gave_up, 0u);  // ...but no read was ever lost
}

TEST_F(FaultSoak, SsspDistancesIdenticalUnderTransientFaults) {
  const csr32 g =
      add_weights(rmat_graph<vertex32>(rmat_b(9)), weight_scheme::uniform, 3);
  const std::string path = write_sem(g, "sssp");
  sem::sem_csr32 clean_g(path);
  const auto clean = async_sssp(clean_g, vertex32{0}, threads(8));

  sem::fault_injector inj(transient_storm());
  telemetry::io_recorder rec;
  sem::sem_csr32 faulty_g(path);
  faulty_g.set_retry_policy(fast_retry(4));
  faulty_g.set_fault_injector(&inj);
  faulty_g.set_io_recorder(&rec);
  const auto faulted = async_sssp(faulty_g, vertex32{0}, threads(8));

  EXPECT_EQ(faulted.dist, clean.dist);
  EXPECT_GT(rec.snapshot().retries, 0u);
  EXPECT_EQ(rec.snapshot().gave_up, 0u);
}

TEST_F(FaultSoak, CcComponentsIdenticalUnderTransientFaults) {
  const csr32 g = rmat_graph_undirected<vertex32>(rmat_a(9));
  const std::string path = write_sem(g, "cc");
  sem::sem_csr32 clean_g(path);
  const auto clean = async_cc(clean_g, threads(8));

  sem::fault_injector inj(transient_storm());
  telemetry::io_recorder rec;
  sem::sem_csr32 faulty_g(path);
  faulty_g.set_retry_policy(fast_retry(4));
  faulty_g.set_fault_injector(&inj);
  faulty_g.set_io_recorder(&rec);
  const auto faulted = async_cc(faulty_g, threads(8));

  EXPECT_EQ(faulted.component, clean.component);
  EXPECT_GT(rec.snapshot().retries, 0u);
  EXPECT_EQ(rec.snapshot().gave_up, 0u);
}

TEST_F(FaultSoak, FatalFaultsAbortCleanlyWithIoErrorCause) {
  const csr32 g = rmat_graph<vertex32>(rmat_a(9));
  const std::string path = write_sem(g, "fatal");
  sem::fault_config cfg;
  cfg.p_eio = 1.0;
  cfg.fatal = true;  // non-retryable: the engine must abort, not absorb
  sem::fault_injector inj(cfg);
  telemetry::io_recorder rec;
  sem::sem_csr32 sg(path);
  sg.set_retry_policy(fast_retry(4));
  sg.set_fault_injector(&inj);
  sg.set_io_recorder(&rec);
  try {
    async_bfs(sg, vertex32{0}, threads(8));
    FAIL() << "expected traversal_aborted";
  } catch (const traversal_aborted& e) {
    EXPECT_TRUE(e.has_vertex());
    ASSERT_TRUE(e.cause());
    EXPECT_THROW(std::rethrow_exception(e.cause()), sem::io_error);
  }
  EXPECT_GT(rec.snapshot().gave_up, 0u);
}

TEST_F(FaultSoak, ExhaustedRetryBudgetAbortsCleanly) {
  // Persistent bad sectors over the whole edge section: transient-classed
  // EIO on every attempt, so the budget, not the injector, ends the run.
  const csr32 g = rmat_graph<vertex32>(rmat_a(9));
  const std::string path = write_sem(g, "badrange");
  sem::fault_config cfg;
  cfg.bad_begin = 0;
  cfg.bad_end = ~std::uint64_t{0};
  sem::fault_injector inj(cfg);
  sem::sem_csr32 sg(path);
  sg.set_retry_policy(fast_retry(2));
  sg.set_fault_injector(&inj);
  try {
    async_bfs(sg, vertex32{0}, threads(8));
    FAIL() << "expected traversal_aborted";
  } catch (const traversal_aborted& e) {
    ASSERT_TRUE(e.cause());
    try {
      std::rethrow_exception(e.cause());
    } catch (const sem::io_error& ioe) {
      EXPECT_EQ(ioe.error_code(), EIO);
      EXPECT_EQ(ioe.retries(), 2u);
    }
  }
}

TEST_F(FaultSoak, CheckpointOnErrorResumesToIdenticalFixedPoint) {
  const csr32 g = rmat_graph<vertex32>(rmat_a(9));
  const std::string path = write_sem(g, "ckpt");
  const std::string ckpt = (dir_ / "emergency.ckpt").string();

  sem::sem_csr32 clean_g(path);
  const auto clean = async_bfs(clean_g, vertex32{0}, threads(8));

  // Storage fails mid-run (fatal injection), the run aborts, and the
  // partial labels land in the emergency checkpoint...
  sem::fault_config cfg;
  cfg.p_eio = 0.05;  // let some progress happen before the fatal hit
  cfg.fatal = true;
  cfg.seed = 13;
  sem::fault_injector inj(cfg);
  sem::sem_csr32 faulty_g(path);
  faulty_g.set_retry_policy(fast_retry(2));
  faulty_g.set_fault_injector(&inj);
  EXPECT_THROW(async_bfs_checkpointed(faulty_g, vertex32{0}, ckpt, threads(8)),
               traversal_aborted);
  ASSERT_TRUE(std::filesystem::exists(ckpt));

  // ...then the device heals (no injector) and the resumed run must land
  // on the exact fixed point of the never-faulted run.
  const auto cp = load_checkpoint<vertex32>(ckpt, checkpoint_kind::bfs);
  sem::sem_csr32 healed_g(path);
  const auto resumed = resume_bfs(healed_g, cp, threads(8));
  EXPECT_EQ(resumed.level, clean.level);
}

TEST_F(FaultSoak, SsspCheckpointOnErrorResumes) {
  const csr32 g =
      add_weights(rmat_graph<vertex32>(rmat_a(9)), weight_scheme::uniform, 5);
  const std::string path = write_sem(g, "sckpt");
  const std::string ckpt = (dir_ / "emergency_sssp.ckpt").string();

  sem::sem_csr32 clean_g(path);
  const auto clean = async_sssp(clean_g, vertex32{0}, threads(8));

  sem::fault_config cfg;
  cfg.p_eio = 0.05;
  cfg.fatal = true;
  cfg.seed = 17;
  sem::fault_injector inj(cfg);
  sem::sem_csr32 faulty_g(path);
  faulty_g.set_retry_policy(fast_retry(2));
  faulty_g.set_fault_injector(&inj);
  EXPECT_THROW(
      async_sssp_checkpointed(faulty_g, vertex32{0}, ckpt, threads(8)),
      traversal_aborted);
  ASSERT_TRUE(std::filesystem::exists(ckpt));

  const auto cp = load_checkpoint<vertex32>(ckpt, checkpoint_kind::sssp);
  sem::sem_csr32 healed_g(path);
  const auto resumed = resume_sssp(healed_g, cp, threads(8));
  EXPECT_EQ(resumed.dist, clean.dist);
}

TEST_F(FaultSoak, TornEmergencyCheckpointFailsCrcOnLoad) {
  // A crash during the emergency save itself must not fabricate a valid
  // checkpoint: truncate mid-payload and require the CRC load error.
  const csr32 g = rmat_graph<vertex32>(rmat_a(8));
  const std::string path = write_sem(g, "torn");
  const std::string ckpt = (dir_ / "torn.ckpt").string();
  sem::fault_config cfg;
  cfg.p_eio = 1.0;
  cfg.fatal = true;
  sem::fault_injector inj(cfg);
  sem::sem_csr32 sg(path);
  sg.set_fault_injector(&inj);
  EXPECT_THROW(async_bfs_checkpointed(sg, vertex32{0}, ckpt, threads(4)),
               traversal_aborted);
  ASSERT_TRUE(std::filesystem::exists(ckpt));
  std::filesystem::resize_file(ckpt, std::filesystem::file_size(ckpt) - 32);
  EXPECT_THROW(load_checkpoint<vertex32>(ckpt, checkpoint_kind::bfs),
               std::runtime_error);
}

}  // namespace
}  // namespace asyncgt
