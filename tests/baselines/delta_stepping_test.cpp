#include "baselines/delta_stepping.hpp"

#include <gtest/gtest.h>

#include "baselines/serial_sssp.hpp"
#include "core/validate.hpp"
#include "gen/rmat.hpp"
#include "gen/weights.hpp"
#include "graph/builder.hpp"

namespace asyncgt {
namespace {

TEST(DeltaStepping, TinyGraph) {
  const csr32 g = build_csr<vertex32>(3, {{0, 1, 5}, {0, 2, 2}, {2, 1, 2}});
  const auto r = delta_stepping_sssp(g, vertex32{0}, 3);
  EXPECT_EQ(r.dist, (std::vector<dist_t>{0, 4, 2}));
}

TEST(DeltaStepping, InvalidArgsRejected) {
  const csr32 g = build_csr<vertex32>(2, {{0, 1, 1}});
  EXPECT_THROW(delta_stepping_sssp(g, vertex32{5}, 3), std::out_of_range);
  EXPECT_THROW(delta_stepping_sssp(g, vertex32{0}, 0), std::invalid_argument);
}

class DeltaSweep : public ::testing::TestWithParam<
                       std::tuple<bool, weight_scheme, dist_t>> {};

TEST_P(DeltaSweep, MatchesDijkstra) {
  const auto [use_b, scheme, delta] = GetParam();
  const csr32 g = add_weights(
      rmat_graph<vertex32>(use_b ? rmat_b(9) : rmat_a(9)), scheme, 21);
  const auto ref = dijkstra_sssp(g, vertex32{0});
  const auto r = delta_stepping_sssp(g, vertex32{0}, delta);
  EXPECT_EQ(r.dist, ref.dist);
  EXPECT_TRUE(validate_parents(g, vertex32{0}, r.dist, r.parent).ok);
}

INSTANTIATE_TEST_SUITE_P(
    Deltas, DeltaSweep,
    ::testing::Combine(
        ::testing::Bool(),
        ::testing::Values(weight_scheme::uniform, weight_scheme::log_uniform),
        ::testing::Values(dist_t{1}, dist_t{16}, dist_t{1024},
                          dist_t{1} << 40)));

TEST(DeltaStepping, DeltaOneBehavesLikeDijkstra) {
  // With delta=1 every bucket holds a single distance value: pure
  // priority-ordered settling, zero wasted relaxations on the settled path.
  const csr32 g =
      add_weights(rmat_graph<vertex32>(rmat_a(8)), weight_scheme::uniform, 4);
  delta_stepping_extra extra;
  const auto r = delta_stepping_sssp(g, vertex32{0}, 1, &extra);
  EXPECT_EQ(r.dist, dijkstra_sssp(g, vertex32{0}).dist);
}

TEST(DeltaStepping, HugeDeltaBehavesLikeBellmanFord) {
  // One bucket holds everything: many more bucket rounds of re-relaxation.
  const csr32 g =
      add_weights(rmat_graph<vertex32>(rmat_a(8)), weight_scheme::uniform, 4);
  const auto r = delta_stepping_sssp(g, vertex32{0}, dist_t{1} << 60);
  EXPECT_EQ(r.dist, dijkstra_sssp(g, vertex32{0}).dist);
}

}  // namespace
}  // namespace asyncgt
