#include "baselines/syncprop_cc.hpp"

#include <gtest/gtest.h>

#include "baselines/serial_cc.hpp"
#include "core/validate.hpp"
#include "gen/grid.hpp"
#include "gen/rmat.hpp"
#include "gen/webgen.hpp"
#include "graph/builder.hpp"

namespace asyncgt {
namespace {

TEST(SyncpropCc, TwoComponents) {
  build_options opt;
  opt.symmetrize = true;
  const csr32 g =
      build_csr<vertex32>(5, {{0, 1, 1}, {1, 2, 1}, {3, 4, 1}}, opt);
  const auto r = syncprop_cc(g, 2);
  EXPECT_EQ(r.component, (std::vector<vertex32>{0, 0, 0, 3, 3}));
}

TEST(SyncpropCc, ZeroThreadsRejected) {
  const csr32 g = build_csr<vertex32>(1, {});
  EXPECT_THROW(syncprop_cc(g, 0), std::invalid_argument);
}

TEST(SyncpropCc, EmptyGraph) {
  const csr32 g = build_csr<vertex32>(0, {});
  const auto r = syncprop_cc(g, 2);
  EXPECT_EQ(r.num_components(), 0u);
}

class SyncpropSweep
    : public ::testing::TestWithParam<std::tuple<unsigned, bool, std::size_t>> {
};

TEST_P(SyncpropSweep, MatchesSerialCc) {
  const auto [scale, use_b, nthreads] = GetParam();
  const csr32 g =
      rmat_graph_undirected<vertex32>(use_b ? rmat_b(scale) : rmat_a(scale));
  const auto ref = serial_cc(g);
  const auto r = syncprop_cc(g, nthreads);
  EXPECT_EQ(r.component, ref.component);
  EXPECT_TRUE(validate_components(g, r.component).ok);
}

INSTANTIATE_TEST_SUITE_P(
    Rmat, SyncpropSweep,
    ::testing::Combine(::testing::Values(8u, 10u), ::testing::Bool(),
                       ::testing::Values(std::size_t{1}, std::size_t{4},
                                         std::size_t{16})));

TEST(SyncpropCc, WebGraphMatchesSerial) {
  webgen_params p;
  p.num_hosts = 80;
  const csr32 g = webgen_graph<vertex32>(p);
  EXPECT_EQ(syncprop_cc(g, 8).component, serial_cc(g).component);
}

TEST(SyncpropCc, IterationsTrackPropagationDepth) {
  // On an undirected chain the min label must walk the whole chain:
  // iteration count ~ chain length — the synchronous worst case.
  const csr32 g = chain_graph<vertex32>(64, /*undirected=*/true);
  syncprop_result_extra extra;
  const auto r = syncprop_cc(g, 4, &extra);
  EXPECT_EQ(r.num_components(), 1u);
  EXPECT_GE(extra.iterations, 63u);
  EXPECT_GT(extra.barrier_crossings, 2 * 62u);
}

TEST(SyncpropCc, FewIterationsOnSmallDiameterGraph) {
  const csr32 g = rmat_graph_undirected<vertex32>(rmat_a(10));
  syncprop_result_extra extra;
  syncprop_cc(g, 8, &extra);
  EXPECT_LT(extra.iterations, 30u);  // small-diameter graph converges fast
}

}  // namespace
}  // namespace asyncgt
