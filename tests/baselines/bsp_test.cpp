#include "baselines/bsp_engine.hpp"

#include <gtest/gtest.h>

#include <atomic>

#include "baselines/bsp_bfs.hpp"
#include "baselines/bsp_cc.hpp"
#include "baselines/serial_bfs.hpp"
#include "baselines/serial_cc.hpp"
#include "gen/grid.hpp"
#include "gen/rmat.hpp"
#include "graph/builder.hpp"

namespace asyncgt {
namespace {

TEST(BspDistribution, BlocksCoverRangeExactly) {
  for (const std::uint64_t n : {1ULL, 7ULL, 100ULL, 1000ULL}) {
    for (const std::size_t r : {1u, 2u, 3u, 7u, 16u}) {
      const bsp_distribution d(n, r);
      EXPECT_EQ(d.begin(0), 0u);
      EXPECT_EQ(d.end(r - 1), n);
      for (std::size_t i = 0; i + 1 < r; ++i) {
        EXPECT_EQ(d.end(i), d.begin(i + 1));
      }
    }
  }
}

TEST(BspDistribution, OwnerInverseOfBlocks) {
  for (const std::uint64_t n : {1ULL, 10ULL, 97ULL, 1024ULL}) {
    for (const std::size_t r : {1u, 3u, 8u}) {
      const bsp_distribution d(n, r);
      for (std::uint64_t v = 0; v < n; ++v) {
        const std::size_t o = d.owner(v);
        EXPECT_GE(v, d.begin(o));
        EXPECT_LT(v, d.end(o));
      }
    }
  }
}

TEST(BspDistribution, ZeroRanksRejected) {
  EXPECT_THROW(bsp_distribution(10, 0), std::invalid_argument);
}

TEST(BspEngine, NoInitialMessagesTerminatesImmediately) {
  const bsp_distribution d(10, 2);
  struct msg {
    int x;
  };
  const auto stats = bsp_run<msg>(d, {}, [](std::size_t, const msg&, auto&&) {
    FAIL() << "no messages should be handled";
  });
  EXPECT_EQ(stats.total_messages, 0u);
}

TEST(BspEngine, MessagesRoutedToOwners) {
  const bsp_distribution d(100, 4);
  struct msg {
    std::uint64_t v;
  };
  std::vector<std::atomic<std::uint64_t>> handled_by(4);
  std::vector<bsp_initial<msg>> initial;
  for (std::uint64_t v = 0; v < 100; ++v) initial.push_back({v, msg{v}});
  bsp_run<msg>(d, initial, [&](std::size_t rank, const msg& m, auto&&) {
    EXPECT_EQ(d.owner(m.v), rank);
    handled_by[rank].fetch_add(1);
  });
  std::uint64_t total = 0;
  for (const auto& h : handled_by) total += h.load();
  EXPECT_EQ(total, 100u);
}

class BspBfsSweep
    : public ::testing::TestWithParam<std::tuple<unsigned, bool, std::size_t>> {
};

TEST_P(BspBfsSweep, MatchesSerialBfs) {
  const auto [scale, use_b, ranks] = GetParam();
  const csr32 g =
      rmat_graph<vertex32>(use_b ? rmat_b(scale) : rmat_a(scale));
  const auto ref = serial_bfs(g, vertex32{0});
  const auto r = bsp_bfs(g, vertex32{0}, ranks);
  EXPECT_EQ(r.level, ref.level);
}

INSTANTIATE_TEST_SUITE_P(
    Rmat, BspBfsSweep,
    ::testing::Combine(::testing::Values(8u, 10u), ::testing::Bool(),
                       ::testing::Values(std::size_t{1}, std::size_t{4},
                                         std::size_t{8})));

TEST(BspBfs, SuperstepsTrackLevels) {
  const csr32 g = chain_graph<vertex32>(30);
  bsp_stats stats;
  const auto r = bsp_bfs(g, vertex32{0}, 4, &stats);
  EXPECT_EQ(r.max_level(), 29u);
  // One superstep per level plus the final empty exchange.
  EXPECT_GE(stats.supersteps, 30u);
}

TEST(BspCc, MatchesSerialOnRmat) {
  const csr32 g = rmat_graph_undirected<vertex32>(rmat_a(9));
  EXPECT_EQ(bsp_cc(g, 4).component, serial_cc(g).component);
}

TEST(BspCc, MatchesSerialOnSkewedRmat) {
  const csr32 g = rmat_graph_undirected<vertex32>(rmat_b(9));
  EXPECT_EQ(bsp_cc(g, 8).component, serial_cc(g).component);
}

TEST(BspBfs, HubImbalanceVisibleOnStar) {
  // The superstep that expands the hub floods one rank's inbox with all
  // leaf messages while every other rank idles at the barrier — the
  // distributed-memory failure mode on power-law graphs.
  const csr32 g = star_graph<vertex32>(4096);
  bsp_stats stats;
  bsp_bfs(g, vertex32{1}, 8, &stats);  // start at a leaf
  EXPECT_GE(stats.max_inbox, 4000u);
}

}  // namespace
}  // namespace asyncgt
