#include "baselines/dobfs.hpp"

#include <gtest/gtest.h>

#include "baselines/serial_bfs.hpp"
#include "gen/grid.hpp"
#include "gen/rmat.hpp"
#include "graph/builder.hpp"

namespace asyncgt {
namespace {

TEST(Dobfs, MatchesSerialOnDiamond) {
  build_options opt;
  opt.symmetrize = true;
  const csr32 g =
      build_csr<vertex32>(4, {{0, 1, 1}, {0, 2, 1}, {1, 3, 1}, {2, 3, 1}},
                          opt);
  EXPECT_EQ(dobfs(g, vertex32{0}).level, serial_bfs(g, vertex32{0}).level);
}

TEST(Dobfs, InvalidStartRejected) {
  const csr32 g = chain_graph<vertex32>(3, true);
  EXPECT_THROW(dobfs(g, vertex32{9}), std::out_of_range);
}

class DobfsSweep : public ::testing::TestWithParam<std::tuple<unsigned, bool>> {
};

TEST_P(DobfsSweep, MatchesSerialBfsOnUndirectedRmat) {
  const auto [scale, use_b] = GetParam();
  const csr32 g =
      rmat_graph_undirected<vertex32>(use_b ? rmat_b(scale) : rmat_a(scale));
  dobfs_extra extra;
  const auto r = dobfs(g, vertex32{0}, &extra);
  EXPECT_EQ(r.level, serial_bfs(g, vertex32{0}).level);
  EXPECT_GT(extra.edges_inspected, 0u);
}

INSTANTIATE_TEST_SUITE_P(Rmat, DobfsSweep,
                         ::testing::Combine(::testing::Values(8u, 10u),
                                            ::testing::Bool()));

TEST(Dobfs, UsesBottomUpOnSmallDiameterGraph) {
  // RMAT's huge middle levels must trigger the direction switch.
  const csr32 g = rmat_graph_undirected<vertex32>(rmat_a(10));
  dobfs_extra extra;
  dobfs(g, vertex32{0}, &extra);
  EXPECT_GT(extra.bottom_up_levels, 0u);
  EXPECT_GT(extra.top_down_levels, 0u);
}

TEST(Dobfs, StaysTopDownOnChain) {
  // Frontier of size 1 never crosses the switch threshold.
  const csr32 g = chain_graph<vertex32>(400, true);
  dobfs_extra extra;
  dobfs(g, vertex32{0}, &extra);
  EXPECT_EQ(extra.bottom_up_levels, 0u);
}

TEST(Dobfs, SwitchFractionZeroForcesBottomUp) {
  const csr32 g = grid_graph<vertex32>(6, 6);
  dobfs_extra extra;
  const auto r = dobfs(g, vertex32{0}, &extra, /*switch_fraction=*/0.0);
  EXPECT_EQ(r.level, serial_bfs(g, vertex32{0}).level);
  EXPECT_EQ(extra.top_down_levels, 0u);
}

TEST(Dobfs, ParentsFormTightTree) {
  const csr32 g = rmat_graph_undirected<vertex32>(rmat_a(9));
  const auto r = dobfs(g, vertex32{0});
  for (vertex32 v = 0; v < g.num_vertices(); ++v) {
    if (r.level[v] == infinite_distance<dist_t> || v == 0) continue;
    EXPECT_EQ(r.level[r.parent[v]] + 1, r.level[v]);
  }
}

}  // namespace
}  // namespace asyncgt
