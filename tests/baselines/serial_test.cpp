#include <gtest/gtest.h>

#include "baselines/serial_bfs.hpp"
#include "baselines/serial_cc.hpp"
#include "baselines/serial_sssp.hpp"
#include "core/validate.hpp"
#include "gen/grid.hpp"
#include "gen/rmat.hpp"
#include "gen/weights.hpp"
#include "graph/builder.hpp"

namespace asyncgt {
namespace {

TEST(SerialBfs, LevelsOnDiamond) {
  const csr32 g =
      build_csr<vertex32>(4, {{0, 1, 1}, {0, 2, 1}, {1, 3, 1}, {2, 3, 1}});
  const auto r = serial_bfs(g, vertex32{0});
  EXPECT_EQ(r.level, (std::vector<dist_t>{0, 1, 1, 2}));
  EXPECT_EQ(r.max_level(), 2u);
}

TEST(SerialBfs, DisconnectedUnreached) {
  const csr32 g = build_csr<vertex32>(3, {{0, 1, 1}});
  const auto r = serial_bfs(g, vertex32{0});
  EXPECT_EQ(r.level[2], infinite_distance<dist_t>);
  EXPECT_EQ(r.visited_count(), 2u);
}

TEST(SerialBfs, StartOutOfRangeThrows) {
  const csr32 g = build_csr<vertex32>(2, {{0, 1, 1}});
  EXPECT_THROW(serial_bfs(g, vertex32{9}), std::out_of_range);
}

TEST(SerialBfs, ValidatedOnRmat) {
  const csr32 g = rmat_graph<vertex32>(rmat_a(10));
  const auto r = serial_bfs(g, vertex32{0});
  EXPECT_TRUE(validate_distances(g, vertex32{0}, r.level, true).ok);
  EXPECT_TRUE(validate_parents(g, vertex32{0}, r.level, r.parent, true).ok);
}

TEST(Dijkstra, ShortestViaLongerHopPath) {
  const csr32 g = build_csr<vertex32>(3, {{0, 1, 10}, {0, 2, 1}, {2, 1, 2}});
  const auto r = dijkstra_sssp(g, vertex32{0});
  EXPECT_EQ(r.dist[1], 3u);
  EXPECT_EQ(r.parent[1], 2u);
}

TEST(Dijkstra, ValidatedOnWeightedRmat) {
  const csr32 g =
      add_weights(rmat_graph<vertex32>(rmat_a(10)), weight_scheme::uniform, 1);
  const auto r = dijkstra_sssp(g, vertex32{0});
  EXPECT_TRUE(validate_distances(g, vertex32{0}, r.dist).ok);
  EXPECT_TRUE(validate_parents(g, vertex32{0}, r.dist, r.parent).ok);
}

TEST(Dijkstra, VisitsEachReachedVertexOnce) {
  const csr32 g =
      add_weights(rmat_graph<vertex32>(rmat_a(8)), weight_scheme::uniform, 1);
  const auto r = dijkstra_sssp(g, vertex32{0});
  EXPECT_EQ(r.stats.visits, r.visited_count());
}

TEST(SerialCc, LabelsAreComponentMinima) {
  build_options opt;
  opt.symmetrize = true;
  const csr32 g = build_csr<vertex32>(5, {{4, 3, 1}, {1, 2, 1}}, opt);
  const auto r = serial_cc(g);
  EXPECT_EQ(r.component, (std::vector<vertex32>{0, 1, 1, 3, 3}));
  EXPECT_EQ(r.num_components(), 3u);
}

TEST(SerialCc, ValidatedOnRmat) {
  const csr32 g = rmat_graph_undirected<vertex32>(rmat_a(10));
  const auto r = serial_cc(g);
  EXPECT_TRUE(validate_components(g, r.component).ok);
}

TEST(SerialCc, GridIsOneComponent) {
  const auto r = serial_cc(grid_graph<vertex32>(9, 7));
  EXPECT_EQ(r.num_components(), 1u);
}

}  // namespace
}  // namespace asyncgt
