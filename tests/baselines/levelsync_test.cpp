#include "baselines/levelsync_bfs.hpp"

#include <gtest/gtest.h>

#include "baselines/serial_bfs.hpp"
#include "core/validate.hpp"
#include "gen/grid.hpp"
#include "gen/rmat.hpp"
#include "graph/builder.hpp"

namespace asyncgt {
namespace {

TEST(LevelsyncBfs, MatchesSerialOnDiamond) {
  const csr32 g =
      build_csr<vertex32>(4, {{0, 1, 1}, {0, 2, 1}, {1, 3, 1}, {2, 3, 1}});
  const auto r = levelsync_bfs(g, vertex32{0}, 4);
  EXPECT_EQ(r.level, serial_bfs(g, vertex32{0}).level);
}

TEST(LevelsyncBfs, InvalidArgsRejected) {
  const csr32 g = build_csr<vertex32>(2, {{0, 1, 1}});
  EXPECT_THROW(levelsync_bfs(g, vertex32{7}, 2), std::out_of_range);
  EXPECT_THROW(levelsync_bfs(g, vertex32{0}, 0), std::invalid_argument);
}

class LevelsyncSweep
    : public ::testing::TestWithParam<std::tuple<unsigned, bool, std::size_t>> {
};

TEST_P(LevelsyncSweep, MatchesSerialBfs) {
  const auto [scale, use_b, nthreads] = GetParam();
  const csr32 g =
      rmat_graph<vertex32>(use_b ? rmat_b(scale) : rmat_a(scale));
  const auto ref = serial_bfs(g, vertex32{0});
  const auto r = levelsync_bfs(g, vertex32{0}, nthreads);
  EXPECT_EQ(r.level, ref.level);
  EXPECT_TRUE(validate_parents(g, vertex32{0}, r.level, r.parent, true).ok);
}

INSTANTIATE_TEST_SUITE_P(
    Rmat, LevelsyncSweep,
    ::testing::Combine(::testing::Values(8u, 10u), ::testing::Bool(),
                       ::testing::Values(std::size_t{1}, std::size_t{4},
                                         std::size_t{16})));

TEST(LevelsyncBfs, ReportsBarriersProportionalToLevels) {
  const csr32 g = chain_graph<vertex32>(50);
  levelsync_result_extra extra;
  const auto r = levelsync_bfs(g, vertex32{0}, 4, &extra);
  EXPECT_EQ(r.max_level(), 49u);
  EXPECT_EQ(extra.levels, 49u);
  // Two barriers per level: the synchronization cost async removes.
  EXPECT_EQ(extra.barrier_crossings, 2 * (extra.levels + 1));
}

TEST(LevelsyncBfs, SingleVertex) {
  const csr32 g = build_csr<vertex32>(1, {});
  const auto r = levelsync_bfs(g, vertex32{0}, 2);
  EXPECT_EQ(r.level[0], 0u);
  EXPECT_EQ(r.visited_count(), 1u);
}

TEST(LevelsyncBfs, UpdatesEqualReachedCount) {
  const csr32 g = rmat_graph<vertex32>(rmat_a(10));
  const auto r = levelsync_bfs(g, vertex32{0}, 8);
  EXPECT_EQ(r.updates, r.visited_count());  // CAS claims each vertex once
}

}  // namespace
}  // namespace asyncgt
