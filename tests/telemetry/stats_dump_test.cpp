// stats_dumper — the --stats-dump interval scraper. Covered here:
//
//   * per-interval deltas advance a remembered baseline;
//   * the reset hazard (ISSUE 6 satellite): metrics_registry::reset()
//     landing between two takes must yield the post-reset total as the
//     interval's delta — never a negative value, never a near-2^64
//     underflow;
//   * idle silence: render()/dump() emit nothing when no counter moved and
//     no gauge changed, so a quiet traversal doesn't spam the console;
//   * gauges report on change (including change-to-zero), not every tick.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "telemetry/metrics_registry.hpp"
#include "telemetry/stats_dump.hpp"

namespace asyncgt::telemetry {
namespace {

const stats_dumper::delta_entry* find(
    const std::vector<stats_dumper::delta_entry>& v, const std::string& name) {
  for (const auto& d : v) {
    if (d.name == name) return &d;
  }
  return nullptr;
}

TEST(StatsDump, DeltasAdvanceTheBaseline) {
  metrics_registry reg(2);
  auto& c = reg.get_counter("q.visits");
  stats_dumper dump(&reg);

  c.add(0, 5);
  const auto v_d1 = dump.take_deltas();
  const auto* d1 = find(v_d1, "q.visits");
  ASSERT_NE(d1, nullptr);
  EXPECT_EQ(d1->delta, 5u);
  EXPECT_EQ(d1->total, 5u);
  EXPECT_TRUE(d1->changed);

  c.add(1, 3);
  const auto v_d2 = dump.take_deltas();
  const auto* d2 = find(v_d2, "q.visits");
  ASSERT_NE(d2, nullptr);
  EXPECT_EQ(d2->delta, 3u);
  EXPECT_EQ(d2->total, 8u);

  // Nothing moved: delta 0, flagged unchanged.
  const auto v_d3 = dump.take_deltas();
  const auto* d3 = find(v_d3, "q.visits");
  ASSERT_NE(d3, nullptr);
  EXPECT_EQ(d3->delta, 0u);
  EXPECT_FALSE(d3->changed);
}

// ---- the reset hazard (regression) --------------------------------------

TEST(StatsDump, ResetBetweenTakesNeverUnderflows) {
  metrics_registry reg(2);
  auto& c = reg.get_counter("q.visits");
  stats_dumper dump(&reg);

  c.add(0, 1000);
  dump.take_deltas();  // baseline now remembers total=1000

  // A reset lands mid-interval (e.g. a bench phase boundary calling
  // reset_counters() while the background sampler keeps scraping), then a
  // little more work arrives.
  reg.reset();
  c.add(0, 7);

  const auto v_d = dump.take_deltas();
  const auto* d = find(v_d, "q.visits");
  ASSERT_NE(d, nullptr);
  // Naive cur - prev would be 7 - 1000 == 2^64 - 993. The dumper must
  // report the post-reset total instead and resynchronize.
  EXPECT_EQ(d->delta, 7u);
  EXPECT_EQ(d->total, 7u);
  EXPECT_LT(d->delta, 1u << 20) << "underflowed delta leaked through";

  // The baseline resynchronized: the next interval is plain again.
  c.add(0, 2);
  const auto v_d2 = dump.take_deltas();
  const auto* d2 = find(v_d2, "q.visits");
  ASSERT_NE(d2, nullptr);
  EXPECT_EQ(d2->delta, 2u);
}

TEST(StatsDump, ResetToExactlyZeroReportsNothingNotGarbage) {
  metrics_registry reg(2);
  auto& c = reg.get_counter("q.visits");
  stats_dumper dump(&reg);
  c.add(0, 50);
  dump.take_deltas();
  reg.reset();  // no further work before the next take
  const auto v_d = dump.take_deltas();
  const auto* d = find(v_d, "q.visits");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->delta, 0u);
  EXPECT_FALSE(d->changed);
}

TEST(StatsDump, HistogramsClampLikeCounters) {
  metrics_registry reg(2);
  auto& h = reg.get_histogram("job.total_us");
  stats_dumper dump(&reg);
  h.record(0, 100);
  h.record(0, 200);
  dump.take_deltas();
  reg.reset();
  h.record(0, 5);
  const auto v_d = dump.take_deltas();
  const auto* d = find(v_d, "job.total_us");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->delta, 1u);
}

// ---- idle silence -------------------------------------------------------

TEST(StatsDump, IdleTicksRenderNothing) {
  metrics_registry reg(2);
  auto& c = reg.get_counter("q.visits");
  auto& g = reg.get_gauge("pool.threads");
  g.set(4);
  c.add(0, 10);
  stats_dumper dump(&reg);

  // First take: both entries are news.
  EXPECT_NE(dump.render().find("q.visits"), std::string::npos);

  // Nothing moved since: a silent interval, and dump() writes no header.
  EXPECT_EQ(dump.render(), "");
  std::ostringstream os;
  dump.dump(os, 1.0);
  EXPECT_EQ(os.str(), "");
  EXPECT_EQ(dump.dumps(), 0u);

  // A counter increment wakes the next tick up again.
  c.add(0, 1);
  std::ostringstream os2;
  dump.dump(os2, 2.0);
  EXPECT_NE(os2.str().find("-- stats @2.00s --"), std::string::npos);
  EXPECT_NE(os2.str().find("q.visits"), std::string::npos);
  // The unchanged gauge stays out of the changed-only table.
  EXPECT_EQ(os2.str().find("pool.threads"), std::string::npos);
  EXPECT_EQ(dump.dumps(), 1u);
}

TEST(StatsDump, GaugesReportOnChangeIncludingToZero) {
  metrics_registry reg(2);
  auto& g = reg.get_gauge("queue.pending");
  g.set(9);
  stats_dumper dump(&reg);
  const auto v_d1 = dump.take_deltas();
  const auto* d1 = find(v_d1, "queue.pending");
  ASSERT_NE(d1, nullptr);
  EXPECT_TRUE(d1->changed);  // first sighting counts as news
  EXPECT_EQ(d1->value, 9);

  g.set(0);  // drained — a change worth printing even though the value is 0
  const auto v_d2 = dump.take_deltas();
  const auto* d2 = find(v_d2, "queue.pending");
  ASSERT_NE(d2, nullptr);
  EXPECT_TRUE(d2->changed);
  EXPECT_EQ(d2->value, 0);

  const auto v_d3 = dump.take_deltas();
  const auto* d3 = find(v_d3, "queue.pending");
  ASSERT_NE(d3, nullptr);
  EXPECT_FALSE(d3->changed);
}

// Regression: the header allows the sampler thread and a foreground caller
// to share one dumper, so two take_deltas() must not interleave their
// scrape and baseline update — the staler snapshot overwriting prev_ last
// used to re-report increments the other take had already consumed. With
// takes serialized, delta conservation is exact: across every take, each
// increment is reported exactly once.
TEST(StatsDump, ConcurrentTakesNeverDoubleCountDeltas) {
  metrics_registry reg(2);
  auto& c = reg.get_counter("q.visits");
  stats_dumper dump(&reg);

  constexpr std::uint64_t kIncrements = 20000;
  std::atomic<bool> done{false};
  std::thread incrementer([&] {
    for (std::uint64_t i = 0; i < kIncrements; ++i) c.add(0, 1);
    done.store(true);
  });

  std::atomic<std::uint64_t> reported{0};
  auto taker = [&] {
    while (!done.load()) {
      for (const auto& d : dump.take_deltas()) {
        if (d.name == "q.visits") reported.fetch_add(d.delta);
      }
    }
  };
  std::thread t1(taker);
  std::thread t2(taker);
  incrementer.join();
  t1.join();
  t2.join();

  // Collect whatever the racing takes left behind.
  for (const auto& d : dump.take_deltas()) {
    if (d.name == "q.visits") reported.fetch_add(d.delta);
  }
  EXPECT_EQ(reported.load(), kIncrements)
      << "interleaved takes re-reported (or lost) increments";
}

TEST(StatsDump, NullRegistryIsInert) {
  stats_dumper dump(nullptr);
  EXPECT_TRUE(dump.take_deltas().empty());
  EXPECT_EQ(dump.render(), "");
}

}  // namespace
}  // namespace asyncgt::telemetry
