#include "telemetry/sampler.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "telemetry/json.hpp"
#include "telemetry/trace_writer.hpp"

namespace asyncgt::telemetry {
namespace {

using namespace std::chrono_literals;

TEST(Sampler, CollectsSamplesFromProbes) {
  sampler s;
  std::atomic<double> value{1.0};
  s.add_probe("probe", [&value] { return value.load(); });
  s.start(500us);
  // The first tick is immediate; wait until a few more landed.
  for (int i = 0; i < 200 && s.samples_taken() < 3; ++i) {
    std::this_thread::sleep_for(1ms);
  }
  s.stop();

  EXPECT_GE(s.samples_taken(), 3u);
  const auto series = s.snapshot();
  ASSERT_EQ(series.size(), 1u);
  EXPECT_EQ(series[0].name, "probe");
  ASSERT_GE(series[0].points.size(), 3u);
  EXPECT_DOUBLE_EQ(series[0].points[0].value, 1.0);
  // Timestamps are monotone non-decreasing.
  for (std::size_t i = 1; i < series[0].points.size(); ++i) {
    EXPECT_GE(series[0].points[i].t_seconds,
              series[0].points[i - 1].t_seconds);
  }
}

TEST(Sampler, StartStopIsIdempotentAndRepeatable) {
  sampler s;
  s.add_probe("p", [] { return 0.0; });
  for (int round = 0; round < 5; ++round) {
    s.start(200us);
    s.start(200us);  // second start is a no-op
    std::this_thread::sleep_for(1ms);
    s.stop();
    s.stop();  // second stop is a no-op
  }
  EXPECT_FALSE(s.running());
  EXPECT_GE(s.samples_taken(), 5u);  // at least the immediate tick per round
}

TEST(Sampler, StopIsPromptForLongIntervals) {
  sampler s;
  s.add_probe("p", [] { return 0.0; });
  s.start(10s);  // without prompt stop this test would hang for 10s
  const auto t0 = std::chrono::steady_clock::now();
  s.stop();
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  EXPECT_LT(elapsed, 2s);
}

TEST(Sampler, ProbeRegistrationRacesWithRunningSampler) {
  sampler s;
  s.start(100us);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&s, t] {
      for (int i = 0; i < 50; ++i) {
        const auto id = s.add_probe(
            "p" + std::to_string(t), [] { return 1.0; });
        std::this_thread::sleep_for(100us);
        s.remove_probe(id);
      }
    });
  }
  for (auto& th : threads) th.join();
  s.stop();
  // Retired probes keep their collected points.
  for (const auto& series : s.snapshot()) {
    for (const auto& p : series.points) EXPECT_DOUBLE_EQ(p.value, 1.0);
  }
}

TEST(Sampler, RemovedProbeStopsCollectingButKeepsPoints) {
  sampler s;
  const auto id = s.add_probe("p", [] { return 2.0; });
  s.start(300us);
  for (int i = 0; i < 200 && s.samples_taken() < 2; ++i) {
    std::this_thread::sleep_for(1ms);
  }
  s.remove_probe(id);
  const auto n = s.snapshot()[0].points.size();
  std::this_thread::sleep_for(3ms);
  s.stop();
  EXPECT_EQ(s.snapshot()[0].points.size(), n);
  EXPECT_GE(n, 2u);
}

TEST(Sampler, DestructorStopsRunningThread) {
  sampler s;
  s.add_probe("p", [] { return 0.0; });
  s.start(1ms);
  // Destructor runs at scope exit; must not hang or crash.
}

TEST(Sampler, WriteCountersEmitsChromeCounterEvents) {
  sampler s;
  s.add_probe("depth", [] { return 4.0; });
  s.start(300us);
  for (int i = 0; i < 200 && s.samples_taken() < 2; ++i) {
    std::this_thread::sleep_for(1ms);
  }
  s.stop();

  trace_writer tw;
  s.write_counters(tw, 999);
  const json_value doc = json_value::parse(tw.to_json_string());
  std::size_t counters = 0;
  for (const auto& e : doc.find("traceEvents")->as_array()) {
    if (e.find("ph")->as_string() == "C") {
      EXPECT_EQ(e.find("name")->as_string(), "depth");
      EXPECT_EQ(e.find("tid")->as_int(), 999);
      ++counters;
    }
  }
  EXPECT_GE(counters, 2u);
}

TEST(Sampler, ClearDropsPoints) {
  sampler s;
  s.add_probe("p", [] { return 1.0; });
  s.start(300us);
  for (int i = 0; i < 200 && s.samples_taken() < 1; ++i) {
    std::this_thread::sleep_for(1ms);
  }
  s.stop();
  s.clear();
  for (const auto& series : s.snapshot()) {
    EXPECT_TRUE(series.points.empty());
  }
}

}  // namespace
}  // namespace asyncgt::telemetry
