// percentile_from_log2 / percentiles_from_log2 — quantile estimates over
// power-of-two bucket counts (the latency presentation path for io_recorder
// buckets, job lifecycle histograms, and every bench report's p50/p95/p99
// triples, which tools/check_bench_json.py then enforces are monotone).
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "telemetry/percentiles.hpp"

namespace asyncgt::telemetry {
namespace {

TEST(Percentiles, EmptyHistogramIsZero) {
  EXPECT_EQ(percentile_from_log2({}, 50.0), 0.0);
  EXPECT_EQ(percentile_from_log2({0, 0, 0}, 99.0), 0.0);
  const percentile_set s = percentiles_from_log2({});
  EXPECT_EQ(s.p50, 0.0);
  EXPECT_EQ(s.p95, 0.0);
  EXPECT_EQ(s.p99, 0.0);
}

TEST(Percentiles, InterpolatesInsideASingleBucket) {
  // All mass in bucket 2 = [4, 8): p50 lands exactly mid-bucket.
  const std::vector<std::uint64_t> b{0, 0, 100};
  EXPECT_DOUBLE_EQ(percentile_from_log2(b, 50.0), 6.0);
  EXPECT_DOUBLE_EQ(percentile_from_log2(b, 100.0), 8.0);
  // p=0 sits at the bucket's lower edge.
  EXPECT_DOUBLE_EQ(percentile_from_log2(b, 0.0), 4.0);
}

TEST(Percentiles, BucketZeroAbsorbsZeroAndOne) {
  // Bucket 0 covers [0, 2).
  const std::vector<std::uint64_t> b{10};
  const double p50 = percentile_from_log2(b, 50.0);
  EXPECT_GE(p50, 0.0);
  EXPECT_LE(p50, 2.0);
}

TEST(Percentiles, MonotoneInPByConstruction) {
  const std::vector<std::uint64_t> b{5, 0, 17, 3, 0, 0, 41, 2};
  double prev = 0.0;
  for (double p = 0.0; p <= 100.0; p += 2.5) {
    const double v = percentile_from_log2(b, p);
    EXPECT_GE(v, prev) << "p=" << p;
    prev = v;
  }
  const percentile_set s = percentiles_from_log2(b);
  EXPECT_LE(s.p50, s.p95);
  EXPECT_LE(s.p95, s.p99);
}

TEST(Percentiles, SkipsEmptyBucketsAndCrossesBoundaries) {
  // 50 samples in [2,4), 50 in [16,32): p50 is the top of the first
  // occupied bucket, p95 interpolates 90% into the second.
  const std::vector<std::uint64_t> b{0, 50, 0, 0, 50};
  EXPECT_DOUBLE_EQ(percentile_from_log2(b, 50.0), 4.0);
  EXPECT_DOUBLE_EQ(percentile_from_log2(b, 95.0), 16.0 + 0.9 * 16.0);
}

TEST(Percentiles, ClampMaxCapsTheEstimateAtTheRecordedMaximum) {
  // One sample known to be exactly 17 lands in bucket 4 = [16, 32); the
  // raw p99 estimate overshoots toward 32 until clamped.
  const std::vector<std::uint64_t> b{0, 0, 0, 0, 1};
  EXPECT_GT(percentile_from_log2(b, 99.0), 17.0);
  EXPECT_DOUBLE_EQ(percentile_from_log2(b, 99.0, 17.0), 17.0);
  const percentile_set s = percentiles_from_log2(b, 17.0);
  EXPECT_LE(s.p50, s.p95);
  EXPECT_LE(s.p95, s.p99);
  EXPECT_LE(s.p99, 17.0);
  // A clamp below every sample still caps (max wins over the estimate).
  EXPECT_DOUBLE_EQ(percentile_from_log2(b, 50.0, 10.0), 10.0);
  // clamp_max = 0 means "no clamp", not "clamp to zero".
  EXPECT_GT(percentile_from_log2(b, 50.0, 0.0), 16.0);
}

TEST(Percentiles, OutOfRangePIsClampedTo0And100) {
  const std::vector<std::uint64_t> b{0, 8};
  EXPECT_DOUBLE_EQ(percentile_from_log2(b, -5.0),
                   percentile_from_log2(b, 0.0));
  EXPECT_DOUBLE_EQ(percentile_from_log2(b, 250.0),
                   percentile_from_log2(b, 100.0));
}

}  // namespace
}  // namespace asyncgt::telemetry
