#include "telemetry/trace_writer.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "telemetry/json.hpp"
#include "telemetry/metrics_registry.hpp"

namespace asyncgt::telemetry {
namespace {

// Counts events of phase `ph` in a parsed Chrome trace document.
std::size_t count_phase(const json_value& doc, const std::string& ph) {
  std::size_t n = 0;
  for (const auto& e : doc.find("traceEvents")->as_array()) {
    if (e.find("ph")->as_string() == ph) ++n;
  }
  return n;
}

TEST(TraceWriter, EmitsParseableChromeTraceJson) {
  trace_writer tw("test-proc");
  trace_stream& s = tw.stream(1, "worker-0");
  s.complete("visit", 10, 5);
  s.complete("visit", 20, 7, "vertex", 42);
  s.instant("wake", 30);
  s.counter("depth", 40, 3.0);

  const json_value doc = json_value::parse(tw.to_json_string());
  const json_value* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());

  // Process + thread metadata, then the four data events.
  EXPECT_GE(count_phase(doc, "M"), 2u);
  EXPECT_EQ(count_phase(doc, "X"), 2u);
  EXPECT_EQ(count_phase(doc, "i"), 1u);
  EXPECT_EQ(count_phase(doc, "C"), 1u);

  for (const auto& e : events->as_array()) {
    ASSERT_NE(e.find("ph"), nullptr);
    ASSERT_NE(e.find("pid"), nullptr);
    ASSERT_NE(e.find("tid"), nullptr);
    if (e.find("ph")->as_string() == "X") {
      ASSERT_NE(e.find("ts"), nullptr);
      ASSERT_NE(e.find("dur"), nullptr);
    }
  }
}

TEST(TraceWriter, SpanArgsAndCounterValuesSurviveSerialization) {
  trace_writer tw;
  trace_stream& s = tw.stream(1);
  s.complete("visit", 0, 3, "vertex", 42);
  s.counter("depth", 5, 2.5);

  const json_value doc = json_value::parse(tw.to_json_string());
  bool saw_arg = false, saw_counter = false;
  for (const auto& e : doc.find("traceEvents")->as_array()) {
    if (e.find("ph")->as_string() == "X") {
      const json_value* args = e.find("args");
      ASSERT_NE(args, nullptr);
      EXPECT_EQ(args->find("vertex")->as_int(), 42);
      saw_arg = true;
    }
    if (e.find("ph")->as_string() == "C") {
      EXPECT_DOUBLE_EQ(e.find("args")->find("value")->as_double(), 2.5);
      saw_counter = true;
    }
  }
  EXPECT_TRUE(saw_arg);
  EXPECT_TRUE(saw_counter);
}

TEST(TraceWriter, StreamIsStablePerTid) {
  trace_writer tw;
  trace_stream& a = tw.stream(3, "w");
  trace_stream& b = tw.stream(3);
  EXPECT_EQ(&a, &b);
  trace_stream& c = tw.stream(4);
  EXPECT_NE(&a, &c);
}

TEST(TraceWriter, ScopedSpanRecordsAndNullIsNoop) {
  trace_writer tw;
  trace_stream& s = tw.stream(1);
  {
    scoped_span span(&s, "work");
    span.set_arg("vertex", 7);
  }
  { scoped_span span(nullptr, "ignored"); }
  EXPECT_EQ(s.size(), 1u);
}

TEST(TraceWriter, PhaseTimerRecordsSpanAndCounter) {
  trace_writer tw;
  metrics_registry reg(2);
  { phase_timer ph(&tw, "load", &reg); }
  { phase_timer ph(nullptr, "no-writer", &reg); }   // metrics only
  { phase_timer ph(nullptr, "no-sinks", nullptr); }  // full no-op

  const json_value doc = json_value::parse(tw.to_json_string());
  EXPECT_EQ(count_phase(doc, "X"), 1u);
  const auto snap = reg.scrape();
  EXPECT_NE(snap.find("phase.load.us"), nullptr);
  EXPECT_NE(snap.find("phase.no-writer.us"), nullptr);
  EXPECT_EQ(snap.find("phase.no-sinks.us"), nullptr);
}

TEST(TraceWriter, WriteFileProducesLoadableDocument) {
  const auto path =
      std::filesystem::temp_directory_path() / "asyncgt_trace_test.json";
  {
    trace_writer tw;
    tw.stream(1, "w").complete("visit", 0, 1);
    tw.write_file(path.string());
  }
  std::ifstream in(path);
  std::stringstream buf;
  buf << in.rdbuf();
  const json_value doc = json_value::parse(buf.str());
  EXPECT_GE(doc.find("traceEvents")->as_array().size(), 2u);
  std::filesystem::remove(path);
}

TEST(TraceWriter, WriteFileThrowsOnBadPath) {
  trace_writer tw;
  EXPECT_THROW(tw.write_file("/nonexistent-dir/x/y/trace.json"),
               std::runtime_error);
}

// Regression: one job's abort path flushes the writer while other jobs'
// gangs are still appending to their own single-writer streams (the
// service engine shares one trace_writer across concurrent jobs). The
// serialization walk must snapshot each stream under its per-stream mutex
// — before that, it iterated events_ vectors racing their reallocation.
// Run under TSan by the tsan preset; the final parse also proves a
// mid-append flush still produces a loadable document.
TEST(TraceWriter, FlushIsSafeWhileOtherStreamsAppend) {
  const auto path =
      std::filesystem::temp_directory_path() / "asyncgt_trace_flushrace.json";
  trace_writer tw("flush-race");
  tw.set_flush_path(path.string());

  constexpr int kWriters = 4;
  constexpr std::uint64_t kEventsPerWriter = 2000;
  std::atomic<int> writers_left{kWriters};
  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (int t = 0; t < kWriters; ++t) {
    writers.emplace_back([&tw, &writers_left, t] {
      trace_stream& s =
          tw.stream(100 + static_cast<std::uint32_t>(t), "gang-worker");
      for (std::uint64_t i = 0; i < kEventsPerWriter; ++i) {
        s.complete("visit", i, 1, "vertex", i);
        if (i % 64 == 0) s.instant("wake", i);
      }
      writers_left.fetch_sub(1);
    });
  }
  // The "cancelled job": flush repeatedly while the other gangs trace.
  std::size_t flushes = 0;
  while (writers_left.load() > 0) {
    EXPECT_TRUE(tw.flush());
    ++flushes;
  }
  for (auto& th : writers) th.join();
  EXPECT_GE(flushes, 1u);

  EXPECT_TRUE(tw.flush());  // quiescent flush sees every event
  std::ifstream in(path);
  std::stringstream buf;
  buf << in.rdbuf();
  const json_value doc = json_value::parse(buf.str());
  std::size_t completes = 0;
  for (const auto& e : doc.find("traceEvents")->as_array()) {
    if (e.find("ph")->as_string() == "X") ++completes;
  }
  EXPECT_EQ(completes, kWriters * kEventsPerWriter);
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace asyncgt::telemetry
