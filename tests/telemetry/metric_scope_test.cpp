// metric_scope — per-job hot counters, TLS ambient attribution, and
// lifecycle timestamps (the substrate of the service's job_stats surface).
// Covered here:
//
//   * sharded hot-counter accumulation and the totals() scrape;
//   * attribution RAII: install/restore, nesting, and the null install
//     (a no-op that still restores, so call sites stay unconditional);
//   * the static charge helpers (count_edges/count_io/count_io_retry) with
//     and without an installed scope;
//   * mark_run_start/mark_finished first-write-wins semantics and the
//     derived queue-wait/run/total latencies;
//   * the conservation invariant under concurrency: threads that charge a
//     shared registry AND their ambient scope produce per-scope sums that
//     equal the registry's global delta exactly (satellite of ISSUE 6; the
//     engine-level version lives in tests/service/job_stats_test.cpp). Run
//     under tsan via the tsan preset.
#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "telemetry/metric_scope.hpp"
#include "telemetry/metrics_registry.hpp"

namespace asyncgt::telemetry {
namespace {

using hot = metric_scope::hot;

TEST(MetricScope, ShardedAddsSumInTotals) {
  metric_scope s(7, "bfs", 4);
  EXPECT_EQ(s.job_id(), 7u);
  EXPECT_EQ(s.label(), "bfs");

  s.add(hot::visits, 0, 10);
  s.add(hot::visits, 1, 20);
  s.add(hot::visits, 2, 30);
  s.add(hot::visits, 7, 5);  // shard index wraps mod shard count
  EXPECT_EQ(s.total(hot::visits), 65u);
  EXPECT_EQ(s.total(hot::pushes), 0u);

  s.add(hot::io_bytes, 0, 4096);
  const auto all = s.totals();
  EXPECT_EQ(all[static_cast<std::size_t>(hot::visits)], 65u);
  EXPECT_EQ(all[static_cast<std::size_t>(hot::io_bytes)], 4096u);
  EXPECT_EQ(all[static_cast<std::size_t>(hot::wakeups)], 0u);
}

TEST(MetricScope, NamedDeltasAreAPrivateRegistry) {
  metric_scope s(1, "sssp", 2);
  s.deltas().get_counter("sssp.relaxations").add(0, 42);
  EXPECT_EQ(s.deltas().get_counter("sssp.relaxations").total(), 42u);
  const metrics_snapshot snap = s.delta_snapshot();
  bool found = false;
  for (const auto& e : snap.entries) {
    if (e.name == "sssp.relaxations") {
      found = true;
      EXPECT_EQ(e.total, 42u);
    }
  }
  EXPECT_TRUE(found);
}

// ---- ambient attribution ------------------------------------------------

TEST(MetricScope, AttributionInstallsRestoresAndNests) {
  EXPECT_EQ(metric_scope::current(), nullptr);
  metric_scope outer(1, "outer", 2);
  metric_scope inner(2, "inner", 2);
  {
    metric_scope::attribution a(&outer, 1);
    EXPECT_EQ(metric_scope::current(), &outer);
    EXPECT_EQ(metric_scope::current_shard(), 1u);
    {
      metric_scope::attribution b(&inner, 0);
      EXPECT_EQ(metric_scope::current(), &inner);
      EXPECT_EQ(metric_scope::current_shard(), 0u);
    }
    // The inner frame restored the outer install, not null.
    EXPECT_EQ(metric_scope::current(), &outer);
    EXPECT_EQ(metric_scope::current_shard(), 1u);
  }
  EXPECT_EQ(metric_scope::current(), nullptr);
}

TEST(MetricScope, NullAttributionIsANoOpThatStillRestores) {
  metric_scope s(3, "bfs", 2);
  metric_scope::attribution a(&s, 0);
  {
    // A null install must not clobber the ambient scope...
    metric_scope::attribution b(nullptr, 5);
    EXPECT_EQ(metric_scope::current(), &s);
    EXPECT_EQ(metric_scope::current_shard(), 0u);
  }
  // ...and its destructor must leave the outer install intact.
  EXPECT_EQ(metric_scope::current(), &s);
}

TEST(MetricScope, StaticHelpersChargeTheAmbientScope) {
  // With no scope installed the helpers are silent no-ops.
  metric_scope::count_edges(100);
  metric_scope::count_io(4096);
  metric_scope::count_io_retry();

  metric_scope s(4, "cc", 2);
  {
    metric_scope::attribution a(&s, 1);
    metric_scope::count_edges(100);
    metric_scope::count_edges(23);
    metric_scope::count_io(4096);
    metric_scope::count_io(512);
    metric_scope::count_io_retry();
  }
  EXPECT_EQ(s.total(hot::edge_inspections), 123u);
  EXPECT_EQ(s.total(hot::io_ops), 2u);
  EXPECT_EQ(s.total(hot::io_bytes), 4608u);
  EXPECT_EQ(s.total(hot::io_retries), 1u);

  // After the frame popped, further charges go nowhere.
  metric_scope::count_edges(1000);
  EXPECT_EQ(s.total(hot::edge_inspections), 123u);
}

// ---- lifecycle timestamps -----------------------------------------------

TEST(MetricScope, LifecycleMarksAreFirstWriteWins) {
  metric_scope s(5, "bfs", 1);
  EXPECT_FALSE(s.finished());
  // Before any marks the derived latencies read as "so far" / zero — never
  // negative.
  EXPECT_GE(s.total_seconds(), 0.0);

  s.mark_run_start();
  const double wait1 = s.queue_wait_seconds();
  s.mark_run_start();  // a second gang lane losing the CAS must not move it
  EXPECT_EQ(s.queue_wait_seconds(), wait1);

  s.mark_finished();
  EXPECT_TRUE(s.finished());
  const double total = s.total_seconds();
  const double run = s.run_seconds();
  s.mark_finished();  // idempotent
  EXPECT_EQ(s.total_seconds(), total);
  EXPECT_EQ(s.run_seconds(), run);

  EXPECT_GE(total, 0.0);
  EXPECT_GE(run, 0.0);
  EXPECT_GE(total + 1e-12, s.queue_wait_seconds());
  EXPECT_GE(total + 1e-12, run);
}

// ---- conservation under concurrency -------------------------------------

// J scopes, T threads round-robined across them. Every unit of work is
// charged twice — once to the thread's ambient scope, once to the shared
// global registry — exactly like the queue/io hot paths mirror records.
// Conservation: the per-scope sums must equal the registry deltas EXACTLY.
TEST(MetricScope, ConcurrentAttributionConservesAgainstSharedRegistry) {
  constexpr std::size_t kJobs = 4;
  constexpr std::size_t kThreadsPerJob = 2;
  constexpr std::uint64_t kItersPerThread = 20000;

  metrics_registry global(8);
  auto& g_edges = global.get_counter("test.edges");
  auto& g_bytes = global.get_counter("test.io_bytes");

  std::vector<std::unique_ptr<metric_scope>> scopes;
  for (std::size_t j = 0; j < kJobs; ++j) {
    scopes.push_back(std::make_unique<metric_scope>(
        j, "job-" + std::to_string(j), kThreadsPerJob));
  }

  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kJobs * kThreadsPerJob; ++t) {
    threads.emplace_back([&, t] {
      metric_scope* sc = scopes[t % kJobs].get();
      const std::size_t shard = t / kJobs;
      metric_scope::attribution attr(sc, shard);
      for (std::uint64_t i = 0; i < kItersPerThread; ++i) {
        metric_scope::count_edges(3);
        g_edges.add(shard, 3);
        if ((i & 7) == 0) {
          metric_scope::count_io(512);
          g_bytes.add(shard, 512);
        }
      }
    });
  }
  for (auto& th : threads) th.join();

  std::uint64_t sum_edges = 0;
  std::uint64_t sum_bytes = 0;
  std::uint64_t sum_ops = 0;
  for (const auto& sc : scopes) {
    sum_edges += sc->total(hot::edge_inspections);
    sum_bytes += sc->total(hot::io_bytes);
    sum_ops += sc->total(hot::io_ops);
  }
  EXPECT_EQ(sum_edges, g_edges.total());
  EXPECT_EQ(sum_bytes, g_bytes.total());
  const std::uint64_t expect_ops =
      kJobs * kThreadsPerJob * ((kItersPerThread + 7) / 8);
  EXPECT_EQ(sum_ops, expect_ops);
  EXPECT_EQ(sum_edges, kJobs * kThreadsPerJob * kItersPerThread * 3);

  // No cross-talk: with round-robin assignment every scope carried an equal
  // share.
  for (const auto& sc : scopes) {
    EXPECT_EQ(sc->total(hot::edge_inspections),
              kThreadsPerJob * kItersPerThread * 3);
  }
}

}  // namespace
}  // namespace asyncgt::telemetry
