// span_track — begin/end and retroactive span emission with parent links
// (the engine's job-lifecycle rows in the Chrome trace). Covered here:
//
//   * live begin/end emits a complete ('X') event carrying a process-unique
//     "id" argument;
//   * parented spans carry a "parent" argument referencing the parent's id;
//   * retroactive emit() places spans at explicit timestamps (the engine
//     reconstructs submit->admit->gang-run->terminate after the fact);
//   * a null writer makes every operation a no-op returning id 0;
//   * worker_tid() keeps concurrent jobs' gang lanes on disjoint Chrome
//     tids — trace_stream is single-writer, so two gangs must never share
//     a stream (the root cause of the concurrent-trace heap corruption
//     this PR fixed).
#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <string>

#include "telemetry/json.hpp"
#include "telemetry/span.hpp"
#include "telemetry/trace_writer.hpp"

namespace asyncgt::telemetry {
namespace {

// Pulls every 'X' event named `name` out of the writer's JSON.
std::vector<const json_value*> complete_events(const json_value& doc,
                                               const std::string& name) {
  std::vector<const json_value*> out;
  for (const auto& ev : doc.find("traceEvents")->as_array()) {
    const json_value* n = ev.find("name");
    const json_value* ph = ev.find("ph");
    if (n != nullptr && ph != nullptr && n->as_string() == name &&
        ph->as_string() == "X") {
      out.push_back(&ev);
    }
  }
  return out;
}

std::int64_t arg(const json_value& ev, const std::string& key) {
  const json_value* args = ev.find("args");
  if (args == nullptr) return 0;
  const json_value* v = args->find(key);
  return v != nullptr ? v->as_int() : 0;
}

TEST(SpanTrack, BeginEndEmitsACompleteEventWithAnId) {
  trace_writer tw("test");
  span_track track(&tw, span_track::job_track_base, "job-0 (bfs)");
  ASSERT_TRUE(track.enabled());

  const std::uint64_t id = track.begin("run");
  EXPECT_NE(id, 0u);
  track.end(id);

  const json_value doc = tw.to_json();
  const auto evs = complete_events(doc, "run");
  ASSERT_EQ(evs.size(), 1u);
  EXPECT_EQ(arg(*evs[0], "id"), static_cast<std::int64_t>(id));
  EXPECT_EQ(arg(*evs[0], "parent"), 0);  // unparented: no parent arg at all
}

TEST(SpanTrack, EndOfUnknownOrZeroIdIsIgnored) {
  trace_writer tw("test");
  span_track track(&tw, 1, "t");
  track.end(0);
  track.end(424242);
  const std::uint64_t id = track.begin("a");
  track.end(id);
  track.end(id);  // double-end: second is a no-op, not a duplicate event
  const json_value doc = tw.to_json();
  EXPECT_EQ(complete_events(doc, "a").size(), 1u);
}

TEST(SpanTrack, ParentLinksReferenceTheParentSpanId) {
  trace_writer tw("test");
  span_track track(&tw, 1, "job-3");
  const std::uint64_t total = track.begin("bfs #3");
  const std::uint64_t run = track.begin("gang-run", total);
  track.end(run);
  track.end(total);

  const json_value doc = tw.to_json();
  const auto parents = complete_events(doc, "bfs #3");
  const auto children = complete_events(doc, "gang-run");
  ASSERT_EQ(parents.size(), 1u);
  ASSERT_EQ(children.size(), 1u);
  EXPECT_EQ(arg(*children[0], "parent"), arg(*parents[0], "id"));
}

TEST(SpanTrack, RetroactiveEmitPlacesSpansAtExplicitTimestamps) {
  trace_writer tw("test");
  span_track track(&tw, 1, "job-9");
  const std::uint64_t lifecycle = track.emit("sssp #9", 100, 900);
  EXPECT_NE(lifecycle, 0u);
  track.emit("queue-wait", 100, 250, lifecycle);
  track.emit("gang-run", 250, 900, lifecycle);

  const json_value doc = tw.to_json();
  const auto life = complete_events(doc, "sssp #9");
  ASSERT_EQ(life.size(), 1u);
  EXPECT_EQ(life[0]->find("ts")->as_int(), 100);
  EXPECT_EQ(life[0]->find("dur")->as_int(), 800);
  const auto wait = complete_events(doc, "queue-wait");
  ASSERT_EQ(wait.size(), 1u);
  EXPECT_EQ(wait[0]->find("dur")->as_int(), 150);
  EXPECT_EQ(arg(*wait[0], "parent"), static_cast<std::int64_t>(lifecycle));
}

TEST(SpanTrack, EmitWithInvertedTimestampsClampsToZeroDuration) {
  trace_writer tw("test");
  span_track track(&tw, 1, "t");
  track.emit("odd", 500, 400);  // end before start: dur 0, never underflow
  const json_value doc = tw.to_json();
  const auto evs = complete_events(doc, "odd");
  ASSERT_EQ(evs.size(), 1u);
  EXPECT_EQ(evs[0]->find("dur")->as_int(), 0);
}

TEST(SpanTrack, InstantMarkerLandsOnTheTrack) {
  trace_writer tw("test");
  span_track track(&tw, 1, "job-1");
  track.instant("abort", 777);
  bool found = false;
  const json_value doc = tw.to_json();
  for (const auto& ev : doc.find("traceEvents")->as_array()) {
    const json_value* n = ev.find("name");
    const json_value* ph = ev.find("ph");
    if (n != nullptr && ph != nullptr && n->as_string() == "abort" &&
        ph->as_string() == "i") {
      found = true;
      EXPECT_EQ(ev.find("ts")->as_int(), 777);
    }
  }
  EXPECT_TRUE(found);
}

TEST(SpanTrack, NullWriterIsANoOp) {
  span_track track(nullptr, 1, "ghost");
  EXPECT_FALSE(track.enabled());
  EXPECT_EQ(track.begin("x"), 0u);
  track.end(0);
  EXPECT_EQ(track.emit("y", 1, 2), 0u);
  track.instant("z", 3);
  EXPECT_EQ(track.now_us(), 0u);
}

TEST(SpanTrack, SpanIdsAreProcessUniquePerWriter) {
  trace_writer tw("test");
  span_track a(&tw, 1, "a");
  span_track b(&tw, 2, "b");
  std::set<std::uint64_t> ids;
  for (int i = 0; i < 8; ++i) {
    ids.insert(a.emit("s", 0, 1));
    ids.insert(b.emit("s", 0, 1));
  }
  EXPECT_EQ(ids.size(), 16u);
  EXPECT_EQ(ids.count(0), 0u);
}

// ---- worker-lane tid allocation -----------------------------------------

TEST(SpanTrack, WorkerTidsAreDisjointAcrossConcurrentJobs) {
  // Different jobs must never map any lane pair onto the same tid (a shared
  // tid means a shared single-writer stream — a data race).
  for (std::uint64_t j1 = 0; j1 < 8; ++j1) {
    for (std::uint64_t j2 = j1 + 1; j2 < 8; ++j2) {
      for (std::size_t lane1 = 0; lane1 < 64; ++lane1) {
        for (std::size_t lane2 = 0; lane2 < 64; ++lane2) {
          EXPECT_NE(span_track::worker_tid(j1, lane1),
                    span_track::worker_tid(j2, lane2))
              << "jobs " << j1 << "/" << j2 << " lanes " << lane1 << "/"
              << lane2;
        }
      }
    }
  }
}

TEST(SpanTrack, WorkerTidsClearTheSharedAndJobTrackRanges) {
  // The per-job worker rows live above the legacy shared lanes (1..T), the
  // fixed streams, and the job lifecycle tracks.
  EXPECT_GE(span_track::worker_tid(0, 0), span_track::worker_track_base);
  EXPECT_GT(span_track::worker_track_base,
            span_track::job_track_base + span_track::job_track_span);
  // Lanes within one job are distinct too (mod the stride).
  EXPECT_NE(span_track::worker_tid(5, 0), span_track::worker_tid(5, 1));
}

}  // namespace
}  // namespace asyncgt::telemetry
