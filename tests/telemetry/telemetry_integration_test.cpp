// End-to-end telemetry over real traversals: every sink attached at once on
// an RMAT graph, checking the counter invariants the paper's accounting
// relies on (each push is eventually visited exactly once, per-queue visit
// counts partition the total) plus sampler/trace/report plumbing.
#include <gtest/gtest.h>

#include <chrono>
#include <numeric>

#include "core/async_bfs.hpp"
#include "core/async_cc.hpp"
#include "core/async_sssp.hpp"
#include "gen/rmat.hpp"
#include "gen/weights.hpp"
#include "telemetry/json.hpp"
#include "telemetry/metrics_json.hpp"
#include "telemetry/metrics_registry.hpp"
#include "telemetry/sampler.hpp"
#include "telemetry/trace_writer.hpp"

namespace asyncgt {
namespace {

csr32 test_graph() {
  return add_weights(rmat_graph_undirected<vertex32>(rmat_a(10, 7)),
                     weight_scheme::uniform, 7);
}

std::uint64_t sum_per_queue(const queue_run_stats& s) {
  return std::accumulate(s.visits_per_queue.begin(),
                         s.visits_per_queue.end(), std::uint64_t{0});
}

TEST(TelemetryIntegration, QueueInvariantsHoldAcrossAlgorithms) {
  const csr32 g = test_graph();
  telemetry::metrics_registry reg(8);
  visitor_queue_config cfg;
  cfg.num_threads = 8;
  cfg.metrics = &reg;

  const auto bfs = async_bfs(g, 0, cfg);
  EXPECT_EQ(bfs.stats.visits, bfs.stats.pushes);
  EXPECT_EQ(sum_per_queue(bfs.stats), bfs.stats.visits);

  const auto sssp = async_sssp(g, 0, cfg);
  EXPECT_EQ(sssp.stats.visits, sssp.stats.pushes);
  EXPECT_EQ(sum_per_queue(sssp.stats), sssp.stats.visits);

  const auto cc = async_cc(g, cfg);
  EXPECT_EQ(cc.stats.visits, cc.stats.pushes);
  EXPECT_EQ(sum_per_queue(cc.stats), cc.stats.visits);

  // The registry accumulated all three runs.
  const auto snap = reg.scrape();
  EXPECT_EQ(snap.value_of("queue.visits"),
            bfs.stats.visits + sssp.stats.visits + cc.stats.visits);
  EXPECT_EQ(snap.value_of("queue.visits"), snap.value_of("queue.pushes"));
  EXPECT_EQ(snap.value_of("queue.runs"), 3u);
  // Batched delivery: at least one mailbox flush per run, never more than
  // one per push (flush_batch=1 would make them equal).
  EXPECT_EQ(snap.value_of("queue.flushes"),
            bfs.stats.flushes + sssp.stats.flushes + cc.stats.flushes);
  EXPECT_GE(snap.value_of("queue.flushes"), 3u);
  EXPECT_LE(snap.value_of("queue.flushes"), snap.value_of("queue.pushes"));
  // Histogram of per-queue visits: one record per worker per run.
  const auto* h = snap.find("queue.visits_per_queue");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->total, 3u * 8u);
  EXPECT_EQ(h->sum, snap.value_of("queue.visits"));
}

TEST(TelemetryIntegration, AlgorithmWorkCountersAreConsistent) {
  const csr32 g = test_graph();
  telemetry::metrics_registry reg(8);
  visitor_queue_config cfg;
  cfg.num_threads = 8;
  cfg.metrics = &reg;

  const auto r = async_bfs(g, 0, cfg);
  const auto snap = reg.scrape();
  EXPECT_EQ(snap.value_of("bfs.visits"), r.stats.visits);
  EXPECT_EQ(snap.value_of("bfs.updates"), r.updates);
  EXPECT_EQ(snap.value_of("bfs.relaxed_vertices"), r.visited_count());
  EXPECT_EQ(snap.value_of("bfs.wasted_visits"), r.stats.visits - r.updates);
  EXPECT_EQ(snap.value_of("bfs.label_corrections"),
            r.updates - r.visited_count());
  // Every reached vertex relaxed at least once; every visit was counted.
  EXPECT_GE(r.updates, r.visited_count());
  EXPECT_GE(r.stats.visits, r.updates);
}

TEST(TelemetryIntegration, SamplerObservesARealTraversal) {
  const csr32 g = test_graph();
  telemetry::sampler sampler;
  sampler.start(std::chrono::microseconds(200));

  visitor_queue_config cfg;
  cfg.num_threads = 8;
  cfg.sampler = &sampler;
  // Enough rounds that the ~200us sampler lands mid-run at least once.
  for (int i = 0; i < 50; ++i) async_bfs(g, 0, cfg);
  sampler.stop();

  EXPECT_GT(sampler.samples_taken(), 0u);
  bool saw_pending = false;
  for (const auto& series : sampler.snapshot()) {
    if (series.name == "queue.pending") {
      saw_pending = true;
      EXPECT_FALSE(series.points.empty());
    }
  }
  EXPECT_TRUE(saw_pending);
}

TEST(TelemetryIntegration, ProbesUnregisterAfterRun) {
  const csr32 g = test_graph();
  telemetry::sampler sampler;
  visitor_queue_config cfg;
  cfg.num_threads = 4;
  cfg.sampler = &sampler;
  async_bfs(g, 0, cfg);
  // The queue's probes were removed when run() returned: a later tick adds
  // no new points (the queue object is gone by then in real callers).
  const auto before = sampler.snapshot();
  sampler.start(std::chrono::microseconds(100));
  sampler.stop();
  for (const auto& series : sampler.snapshot()) {
    for (const auto& prior : before) {
      if (series.name == prior.name) {
        EXPECT_EQ(series.points.size(), prior.points.size());
      }
    }
  }
}

TEST(TelemetryIntegration, TraceCapturesWorkerSpans) {
  const csr32 g = test_graph();
  telemetry::trace_writer trace;
  visitor_queue_config cfg;
  cfg.num_threads = 4;
  cfg.trace = &trace;
  cfg.trace_sample_every = 8;
  async_bfs(g, 0, cfg);

  const auto doc = telemetry::json_value::parse(trace.to_json_string());
  std::size_t visit_spans = 0;
  for (const auto& e : doc.find("traceEvents")->as_array()) {
    if (e.find("ph")->as_string() == "X" &&
        e.find("name")->as_string() == "visit") {
      ++visit_spans;
    }
  }
  // 1-in-8 sampling over thousands of visits leaves plenty of spans.
  EXPECT_GT(visit_spans, 10u);
}

TEST(TelemetryIntegration, ReportRoundTripsThroughSchemaCheck) {
  const csr32 g = test_graph();
  telemetry::metrics_registry reg(4);
  visitor_queue_config cfg;
  cfg.num_threads = 4;
  cfg.metrics = &reg;
  const auto r = async_bfs(g, 0, cfg);

  telemetry::report rep("telemetry_integration");
  rep.config("threads", 4);
  rep.section("metrics") = telemetry::to_json(reg.scrape());
  telemetry::json_value row = telemetry::json_value::object();
  row.set("visits", r.stats.visits);
  rep.add_row(std::move(row));

  std::string error;
  EXPECT_TRUE(telemetry::report::verify_text(rep.dump(), &error)) << error;

  // And the parsed document still carries the queue counters.
  const auto doc = telemetry::json_value::parse(rep.dump());
  const auto* metrics = doc.find("sections")->find("metrics");
  ASSERT_NE(metrics, nullptr);
  EXPECT_EQ(
      static_cast<std::uint64_t>(metrics->find("queue.visits")->as_int()),
      r.stats.visits);
}

TEST(TelemetryIntegration, VerifyRejectsNonConformingDocuments) {
  std::string error;
  EXPECT_FALSE(telemetry::report::verify_text("not json", &error));
  EXPECT_FALSE(telemetry::report::verify_text("{}", &error));
  EXPECT_FALSE(telemetry::report::verify_text(
      R"({"schema_version":4,"name":"x","config":{},"sections":{}})",
      &error));
  EXPECT_FALSE(telemetry::report::verify_text(
      R"({"schema_version":1,"name":"","config":{},"sections":{}})",
      &error));
  EXPECT_FALSE(telemetry::report::verify_text(
      R"({"schema_version":1,"name":"x","config":{},"sections":{"s":3}})",
      &error));
  // v2 additions: jobs must be an array of objects with integer job_ids,
  // and percentile triples must be monotone.
  EXPECT_FALSE(telemetry::report::verify_text(
      R"({"schema_version":2,"name":"x","config":{},"sections":{},"jobs":[3]})",
      &error));
  EXPECT_FALSE(telemetry::report::verify_text(
      R"({"schema_version":2,"name":"x","config":{},"sections":{},"jobs":[{"label":"bfs"}]})",
      &error));
  EXPECT_FALSE(telemetry::report::verify_text(
      R"({"schema_version":2,"name":"x","config":{},"sections":{"l":{"p50":9,"p95":5,"p99":10}}})",
      &error));
  // Both versions of a minimal conforming document pass.
  EXPECT_TRUE(telemetry::report::verify_text(
      R"({"schema_version":1,"name":"x","config":{},"sections":{}})",
      &error))
      << error;
  EXPECT_TRUE(telemetry::report::verify_text(
      R"({"schema_version":2,"name":"x","config":{},"sections":{"l":{"p50":1,"p95":2,"p99":3}},"jobs":[{"job_id":4}]})",
      &error))
      << error;
}

}  // namespace
}  // namespace asyncgt
