#include "telemetry/json.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace asyncgt::telemetry {
namespace {

TEST(Json, BuildAndDumpCompact) {
  json_value doc = json_value::object();
  doc.set("name", "bfs");
  doc.set("visits", std::uint64_t{42});
  doc.set("ratio", 0.5);
  doc.set("ok", true);
  doc.set("missing", nullptr);
  json_value arr = json_value::array();
  arr.push(1);
  arr.push(2);
  doc.set("levels", std::move(arr));
  EXPECT_EQ(doc.dump(),
            "{\"name\":\"bfs\",\"visits\":42,\"ratio\":0.5,\"ok\":true,"
            "\"missing\":null,\"levels\":[1,2]}");
}

TEST(Json, SetOverwritesExistingKey) {
  json_value doc = json_value::object();
  doc.set("k", 1);
  doc.set("k", 2);
  EXPECT_EQ(doc.size(), 1u);
  EXPECT_EQ(doc.find("k")->as_int(), 2);
}

TEST(Json, RoundTripsThroughParse) {
  json_value doc = json_value::object();
  doc.set("text", "line1\nline2\t\"quoted\"");
  doc.set("neg", -17);
  doc.set("big", std::int64_t{1} << 53);
  doc.set("tiny", 1.25e-9);
  json_value nested = json_value::object();
  nested.set("a", json_value::array());
  doc.set("nested", std::move(nested));

  const json_value back = json_value::parse(doc.dump(2));
  EXPECT_EQ(back.dump(), doc.dump());
  EXPECT_EQ(back.find("text")->as_string(), "line1\nline2\t\"quoted\"");
  EXPECT_EQ(back.find("neg")->as_int(), -17);
  EXPECT_EQ(back.find("big")->as_int(), std::int64_t{1} << 53);
  EXPECT_DOUBLE_EQ(back.find("tiny")->as_double(), 1.25e-9);
}

TEST(Json, ParsesEscapesAndUnicode) {
  const json_value v = json_value::parse(R"("aA\né☃")");
  EXPECT_EQ(v.as_string(), "aA\n\xc3\xa9\xe2\x98\x83");
}

TEST(Json, ParseRejectsMalformedInput) {
  EXPECT_THROW(json_value::parse(""), std::runtime_error);
  EXPECT_THROW(json_value::parse("{"), std::runtime_error);
  EXPECT_THROW(json_value::parse("[1,]"), std::runtime_error);
  EXPECT_THROW(json_value::parse("{\"a\":1} trailing"), std::runtime_error);
  EXPECT_THROW(json_value::parse("'single'"), std::runtime_error);
  EXPECT_THROW(json_value::parse("{\"a\" 1}"), std::runtime_error);
  EXPECT_THROW(json_value::parse("nul"), std::runtime_error);
}

TEST(Json, FindOnNonObjectReturnsNull) {
  const json_value v = 3;
  EXPECT_EQ(v.find("k"), nullptr);
}

TEST(Json, NumbersParseToIntOrDouble) {
  EXPECT_TRUE(json_value::parse("7").is_int());
  EXPECT_TRUE(json_value::parse("-7").is_int());
  EXPECT_TRUE(json_value::parse("7.0").is_double());
  EXPECT_TRUE(json_value::parse("7e2").is_double());
}

}  // namespace
}  // namespace asyncgt::telemetry
