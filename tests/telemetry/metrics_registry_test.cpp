#include "telemetry/metrics_registry.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <thread>
#include <vector>

namespace asyncgt::telemetry {
namespace {

TEST(MetricsRegistry, CounterAggregatesAcrossThreads) {
  constexpr std::size_t kThreads = 8;
  constexpr std::uint64_t kPerThread = 50'000;
  metrics_registry reg(kThreads);
  auto& c = reg.get_counter("test.visits");

  std::vector<std::thread> workers;
  for (std::size_t t = 0; t < kThreads; ++t) {
    workers.emplace_back([&c, t] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) c.add(t);
    });
  }
  for (auto& w : workers) w.join();

  EXPECT_EQ(c.total(), kThreads * kPerThread);
  const auto shards = c.per_shard();
  ASSERT_EQ(shards.size(), kThreads);
  for (const auto v : shards) EXPECT_EQ(v, kPerThread);
}

TEST(MetricsRegistry, GetReturnsSameInstanceAndScrapeSeesIt) {
  metrics_registry reg(2);
  auto& a = reg.get_counter("queue.visits");
  auto& b = reg.get_counter("queue.visits");
  EXPECT_EQ(&a, &b);
  a.add(0, 3);
  b.add(1, 4);

  const auto snap = reg.scrape();
  EXPECT_EQ(snap.value_of("queue.visits"), 7u);
  const auto* e = snap.find("queue.visits");
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->kind, metric_kind::counter);
}

TEST(MetricsRegistry, KindMismatchThrows) {
  metrics_registry reg(2);
  reg.get_counter("m");
  EXPECT_THROW(reg.get_gauge("m"), std::logic_error);
  EXPECT_THROW(reg.get_histogram("m"), std::logic_error);
}

TEST(MetricsRegistry, GaugeRecordsMax) {
  metrics_registry reg(2);
  auto& g = reg.get_gauge("depth");
  g.record_max(5);
  g.record_max(3);
  g.record_max(9);
  EXPECT_EQ(g.get(), 9);
  g.set(-2);
  EXPECT_EQ(g.get(), -2);
  g.add(7);
  EXPECT_EQ(g.get(), 5);
}

TEST(MetricsRegistry, GaugeRecordMaxIsThreadSafe) {
  metrics_registry reg(4);
  auto& g = reg.get_gauge("max");
  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([&g, t] {
      for (int i = 0; i < 10'000; ++i) g.record_max(t * 10'000 + i);
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(g.get(), 3 * 10'000 + 9'999);
}

TEST(MetricsRegistry, HistogramBucketsByLog2) {
  metrics_registry reg(2);
  auto& h = reg.get_histogram("lat");
  // Bucket i covers [2^i, 2^(i+1)); bucket 0 also absorbs the value 0.
  h.record(0, 0);   // bucket 0
  h.record(0, 1);   // bucket 0
  h.record(1, 2);   // bucket 1
  h.record(1, 3);   // bucket 1
  h.record(0, 1024);  // bucket 10

  EXPECT_EQ(h.total(), 5u);
  EXPECT_EQ(h.sum(), 0u + 1 + 2 + 3 + 1024);
  const auto buckets = h.merged();
  EXPECT_EQ(buckets[0], 2u);
  EXPECT_EQ(buckets[1], 2u);
  EXPECT_EQ(buckets[10], 1u);
  EXPECT_EQ(histogram::bucket_of(0), 0u);
  EXPECT_EQ(histogram::bucket_of(1), 0u);
  EXPECT_EQ(histogram::bucket_of(2), 1u);
  EXPECT_EQ(histogram::bucket_of(1023), 9u);
  EXPECT_EQ(histogram::bucket_of(1024), 10u);
}

TEST(MetricsRegistry, HistogramAggregatesAcrossThreads) {
  constexpr std::size_t kThreads = 4;
  metrics_registry reg(kThreads);
  auto& h = reg.get_histogram("lat");
  std::vector<std::thread> workers;
  for (std::size_t t = 0; t < kThreads; ++t) {
    workers.emplace_back([&h, t] {
      for (std::uint64_t i = 0; i < 10'000; ++i) h.record(t, i % 64);
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(h.total(), kThreads * 10'000);
}

TEST(MetricsRegistry, ResetClearsValues) {
  metrics_registry reg(2);
  reg.get_counter("c").add(0, 5);
  reg.get_gauge("g").set(5);
  reg.get_histogram("h").record(0, 5);
  reg.reset();
  const auto snap = reg.scrape();
  EXPECT_EQ(snap.value_of("c"), 0u);
  EXPECT_EQ(snap.find("g")->value, 0);
  EXPECT_EQ(snap.find("h")->total, 0u);
}

TEST(MetricsRegistry, ShardIndexWrapsBeyondShardCount) {
  // Callers pass raw thread ids; the registry must not require tid < shards.
  metrics_registry reg(2);
  auto& c = reg.get_counter("c");
  c.add(5, 1);  // tid 5 with 2 shards
  EXPECT_EQ(c.total(), 1u);
}

}  // namespace
}  // namespace asyncgt::telemetry
