// Ordering-layer tests: the per-worker pop disciplines behind the engine's
// monomorphic hot loop. Exercised directly (no threads) — priority order with
// and without the secondary vertex sort, FIFO / LIFO ablation orders, and
// the move-only discipline: rvalue pushes and try_pop never copy visitors.
#include "queue/ordering_policy.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <utility>
#include <vector>

namespace asyncgt {
namespace {

struct probe_visitor {
  std::uint32_t vtx{};
  std::uint32_t prio{};
  std::uint32_t vertex() const noexcept { return vtx; }
  std::uint32_t priority() const noexcept { return prio; }
};

// Counts copies so tests can assert the move-only push/pop discipline.
struct copy_counting_visitor {
  static int copies;
  std::uint32_t vtx{};
  std::uint32_t prio{};

  copy_counting_visitor() = default;
  copy_counting_visitor(std::uint32_t v, std::uint32_t p) : vtx(v), prio(p) {}
  copy_counting_visitor(const copy_counting_visitor& o)
      : vtx(o.vtx), prio(o.prio) {
    ++copies;
  }
  copy_counting_visitor& operator=(const copy_counting_visitor& o) {
    vtx = o.vtx;
    prio = o.prio;
    ++copies;
    return *this;
  }
  copy_counting_visitor(copy_counting_visitor&&) = default;
  copy_counting_visitor& operator=(copy_counting_visitor&&) = default;

  std::uint32_t vertex() const noexcept { return vtx; }
  std::uint32_t priority() const noexcept { return prio; }
};
int copy_counting_visitor::copies = 0;

template <typename Order>
std::vector<std::uint32_t> drain_priorities(Order& order) {
  std::vector<std::uint32_t> out;
  probe_visitor v;
  while (order.try_pop(v)) out.push_back(v.prio);
  return out;
}

TEST(OrderingPolicy, PriorityPopsSmallestFirst) {
  priority_order<probe_visitor> order;
  order.configure(visitor_queue_config{});
  for (const std::uint32_t p : {5u, 1u, 4u, 2u, 3u}) {
    order.push(probe_visitor{p, p});
  }
  EXPECT_EQ(order.size(), 5u);
  const std::vector<std::uint32_t> expect{1, 2, 3, 4, 5};
  EXPECT_EQ(drain_priorities(order), expect);
  EXPECT_TRUE(order.empty());
}

TEST(OrderingPolicy, PrioritySecondaryVertexSortBreaksTies) {
  visitor_queue_config cfg;
  cfg.secondary_vertex_sort = true;
  priority_order<probe_visitor> order;
  order.configure(cfg);
  order.push(probe_visitor{30, 7});
  order.push(probe_visitor{10, 7});
  order.push(probe_visitor{20, 7});
  std::vector<std::uint32_t> vertices;
  probe_visitor v;
  while (order.try_pop(v)) vertices.push_back(v.vtx);
  const std::vector<std::uint32_t> expect{10, 20, 30};
  EXPECT_EQ(vertices, expect);
}

TEST(OrderingPolicy, FifoPopsInArrivalOrder) {
  fifo_order<probe_visitor> order;
  order.configure(visitor_queue_config{});
  for (const std::uint32_t p : {5u, 1u, 4u}) order.push(probe_visitor{p, p});
  const std::vector<std::uint32_t> expect{5, 1, 4};
  EXPECT_EQ(drain_priorities(order), expect);
}

TEST(OrderingPolicy, LifoPopsInReverseArrivalOrder) {
  lifo_order<probe_visitor> order;
  order.configure(visitor_queue_config{});
  for (const std::uint32_t p : {5u, 1u, 4u}) order.push(probe_visitor{p, p});
  const std::vector<std::uint32_t> expect{4, 1, 5};
  EXPECT_EQ(drain_priorities(order), expect);
}

TEST(OrderingPolicy, TryPopOnEmptyReturnsFalse) {
  priority_order<probe_visitor> prio;
  fifo_order<probe_visitor> fifo;
  lifo_order<probe_visitor> lifo;
  prio.configure(visitor_queue_config{});
  probe_visitor v{99, 99};
  EXPECT_FALSE(prio.try_pop(v));
  EXPECT_FALSE(fifo.try_pop(v));
  EXPECT_FALSE(lifo.try_pop(v));
  EXPECT_EQ(v.vtx, 99u);  // untouched on failure
}

TEST(OrderingPolicy, ReserveHintRespected) {
  visitor_queue_config cfg;
  cfg.reserve_per_queue = 1024;
  priority_order<probe_visitor> prio;
  lifo_order<probe_visitor> lifo;
  prio.configure(cfg);
  lifo.configure(cfg);
  for (std::uint32_t i = 0; i < 100; ++i) {
    prio.push(probe_visitor{i, i});
    lifo.push(probe_visitor{i, i});
  }
  EXPECT_EQ(prio.size(), 100u);
  EXPECT_EQ(lifo.size(), 100u);
}

template <typename Order>
void expect_no_copies(Order& order) {
  copy_counting_visitor::copies = 0;
  for (std::uint32_t i = 0; i < 32; ++i) {
    order.push(copy_counting_visitor(32 - i, 32 - i));
  }
  copy_counting_visitor out;
  std::uint64_t popped = 0;
  while (order.try_pop(out)) ++popped;
  EXPECT_EQ(popped, 32u);
  EXPECT_EQ(copy_counting_visitor::copies, 0);
}

TEST(OrderingPolicy, RvaluePushAndPopNeverCopy) {
  priority_order<copy_counting_visitor> prio;
  fifo_order<copy_counting_visitor> fifo;
  lifo_order<copy_counting_visitor> lifo;
  prio.configure(visitor_queue_config{});
  fifo.configure(visitor_queue_config{});
  lifo.configure(visitor_queue_config{});
  expect_no_copies(prio);
  expect_no_copies(fifo);
  expect_no_copies(lifo);
}

}  // namespace
}  // namespace asyncgt
