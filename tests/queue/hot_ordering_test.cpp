// Hot ordering (queue_order::hot): the two-band pop discipline and the
// advisor protocol around it (docs/hot_blocks.md). Exercised at two levels:
//
//   * hot_order directly (no threads): hot-band-first pops with priority
//     order inside each band, the take_hot_pops tally-and-reset, clear()
//     zeroing the tally, and the null-advisor degradation to plain
//     priority behaviour;
//   * the full engine: a counting advisor under async_bfs pins the
//     conservation law — one on_enqueue per delivered visitor, one
//     on_complete per executed visit, equal to the run's visit count — and
//     the queue_run_stats::hot_pops surface.
#include "queue/ordering_policy.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <vector>

#include "core/async_bfs.hpp"
#include "baselines/serial_bfs.hpp"
#include "gen/rmat.hpp"
#include "graph/builder.hpp"
#include "queue/hot_advisor.hpp"

namespace asyncgt {
namespace {

struct probe_visitor {
  std::uint32_t vtx{};
  std::uint32_t prio{};
  std::uint32_t vertex() const noexcept { return vtx; }
  std::uint32_t priority() const noexcept { return prio; }
};

/// Advisor calling even vertices hot and counting every hook invocation.
/// Thread-safe (relaxed atomics), so the same type serves the single-thread
/// ordering tests and the multi-thread engine conservation test.
class counting_advisor final : public hot_advisor {
 public:
  bool is_hot(std::uint64_t vertex) const noexcept override {
    return vertex % 2 == 0;
  }
  void on_enqueue(std::uint64_t) noexcept override {
    enqueues.fetch_add(1, std::memory_order_relaxed);
  }
  void on_complete(std::uint64_t) noexcept override {
    completes.fetch_add(1, std::memory_order_relaxed);
  }
  void reset() noexcept override {
    resets.fetch_add(1, std::memory_order_relaxed);
  }

  std::atomic<std::uint64_t> enqueues{0};
  std::atomic<std::uint64_t> completes{0};
  std::atomic<std::uint64_t> resets{0};
};

TEST(HotOrdering, HotBandPopsFirstPriorityWithinBands) {
  counting_advisor advisor;
  visitor_queue_config cfg;
  cfg.advisor = &advisor;
  hot_order<probe_visitor> order;
  order.configure(cfg);

  // Even vertices are hot; priorities deliberately interleave the bands so
  // plain priority order would produce 1,2,3,4,5,6.
  order.push(probe_visitor{1, 1});  // cold
  order.push(probe_visitor{2, 2});  // hot
  order.push(probe_visitor{3, 3});  // cold
  order.push(probe_visitor{4, 4});  // hot
  order.push(probe_visitor{5, 5});  // cold
  order.push(probe_visitor{6, 6});  // hot
  EXPECT_EQ(order.size(), 6u);

  std::vector<std::uint32_t> pops;
  probe_visitor v;
  while (order.try_pop(v)) pops.push_back(v.vtx);
  const std::vector<std::uint32_t> expect{2, 4, 6, 1, 3, 5};
  EXPECT_EQ(pops, expect);
  EXPECT_EQ(order.take_hot_pops(), 3u);
  // The tally was consumed: a second take reads zero.
  EXPECT_EQ(order.take_hot_pops(), 0u);
}

TEST(HotOrdering, ClearDiscardsVisitorsAndZerosTheTally) {
  counting_advisor advisor;
  visitor_queue_config cfg;
  cfg.advisor = &advisor;
  hot_order<probe_visitor> order;
  order.configure(cfg);
  order.push(probe_visitor{2, 2});
  order.push(probe_visitor{3, 3});
  probe_visitor v;
  ASSERT_TRUE(order.try_pop(v));  // one hot pop on the books
  order.clear();
  EXPECT_TRUE(order.empty());
  EXPECT_FALSE(order.try_pop(v));
  // Post-abort stats must report zeros, so clear() drops the tally too.
  EXPECT_EQ(order.take_hot_pops(), 0u);
}

TEST(HotOrdering, NullAdvisorDegradesToPriorityOrder) {
  hot_order<probe_visitor> order;
  order.configure(visitor_queue_config{});  // advisor == nullptr
  for (const std::uint32_t p : {5u, 2u, 4u, 1u, 3u}) {
    order.push(probe_visitor{p, p});
  }
  std::vector<std::uint32_t> pops;
  probe_visitor v;
  while (order.try_pop(v)) pops.push_back(v.prio);
  const std::vector<std::uint32_t> expect{1, 2, 3, 4, 5};
  EXPECT_EQ(pops, expect);
  EXPECT_EQ(order.take_hot_pops(), 0u);  // everything sat in the cold band
}

// The conservation law the SEM pressure tracker relies on: the engine fires
// on_enqueue exactly once per delivered visitor (seeding included) and
// on_complete exactly once per executed visit, so at quiescence both equal
// the run's visit count and the advisor's net pending is zero.
TEST(HotOrdering, EngineFiresOneEnqueuePerDeliveryAndOneCompletePerVisit) {
  const csr32 g = rmat_graph<vertex32>(rmat_a(9));
  counting_advisor advisor;
  visitor_queue_config cfg;
  cfg.num_threads = 8;
  cfg.order = queue_order::hot;
  cfg.advisor = &advisor;

  const auto r = async_bfs(g, vertex32{0}, cfg);
  EXPECT_EQ(r.level, serial_bfs(g, vertex32{0}).level)
      << "hot ordering must not change final labels";
  EXPECT_GT(r.stats.visits, 0u);
  EXPECT_EQ(advisor.enqueues.load(), r.stats.visits);
  EXPECT_EQ(advisor.completes.load(), r.stats.visits);
  EXPECT_EQ(advisor.resets.load(), 0u);  // clean run: no abort reset
  // Half the vertices classify hot, so the hot band must have served pops.
  EXPECT_GT(r.stats.hot_pops, 0u);
  EXPECT_LE(r.stats.hot_pops, r.stats.visits);
}

TEST(HotOrdering, HotOrderWithoutAdvisorStillTraversesCorrectly) {
  const csr32 g = rmat_graph<vertex32>(rmat_a(8));
  visitor_queue_config cfg;
  cfg.num_threads = 4;
  cfg.order = queue_order::hot;  // advisor left null: all-cold degradation
  const auto r = async_bfs(g, vertex32{0}, cfg);
  EXPECT_EQ(r.level, serial_bfs(g, vertex32{0}).level);
  EXPECT_EQ(r.stats.hot_pops, 0u);
}

}  // namespace
}  // namespace asyncgt
