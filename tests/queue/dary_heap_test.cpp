#include "queue/dary_heap.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <random>
#include <vector>

namespace asyncgt {
namespace {

using int_heap = dary_heap<int, std::less<int>>;

TEST(DaryHeap, EmptyInitially) {
  int_heap h;
  EXPECT_TRUE(h.empty());
  EXPECT_EQ(h.size(), 0u);
}

TEST(DaryHeap, PushPopSingle) {
  int_heap h;
  h.push(42);
  EXPECT_FALSE(h.empty());
  EXPECT_EQ(h.top(), 42);
  EXPECT_EQ(h.pop(), 42);
  EXPECT_TRUE(h.empty());
}

TEST(DaryHeap, PopsInSortedOrder) {
  int_heap h;
  for (const int x : {5, 1, 9, 3, 7, 2, 8, 4, 6, 0}) h.push(x);
  for (int expect = 0; expect < 10; ++expect) EXPECT_EQ(h.pop(), expect);
}

TEST(DaryHeap, HandlesDuplicates) {
  int_heap h;
  for (const int x : {3, 1, 3, 1, 2}) h.push(x);
  EXPECT_EQ(h.pop(), 1);
  EXPECT_EQ(h.pop(), 1);
  EXPECT_EQ(h.pop(), 2);
  EXPECT_EQ(h.pop(), 3);
  EXPECT_EQ(h.pop(), 3);
}

TEST(DaryHeap, RandomizedAgainstSort) {
  std::mt19937 rng(17);
  for (int trial = 0; trial < 20; ++trial) {
    int_heap h;
    std::vector<int> ref;
    const int n = 1 + static_cast<int>(rng() % 500);
    for (int i = 0; i < n; ++i) {
      const int x = static_cast<int>(rng() % 1000);
      h.push(x);
      ref.push_back(x);
    }
    std::sort(ref.begin(), ref.end());
    for (const int expect : ref) EXPECT_EQ(h.pop(), expect);
    EXPECT_TRUE(h.empty());
  }
}

TEST(DaryHeap, InterleavedPushPop) {
  int_heap h;
  h.push(5);
  h.push(2);
  EXPECT_EQ(h.pop(), 2);
  h.push(1);
  h.push(9);
  EXPECT_EQ(h.pop(), 1);
  EXPECT_EQ(h.pop(), 5);
  h.push(0);
  EXPECT_EQ(h.pop(), 0);
  EXPECT_EQ(h.pop(), 9);
}

TEST(DaryHeap, AssignHeapifies) {
  const std::vector<int> vals{9, 4, 7, 1, 8, 2, 6, 3, 5, 0};
  int_heap h;
  h.assign(vals.begin(), vals.end());
  EXPECT_TRUE(h.is_valid_heap());
  for (int expect = 0; expect < 10; ++expect) EXPECT_EQ(h.pop(), expect);
}

TEST(DaryHeap, AssignEmptyAndSingle) {
  int_heap h;
  const std::vector<int> none;
  h.assign(none.begin(), none.end());
  EXPECT_TRUE(h.empty());
  const std::vector<int> one{7};
  h.assign(one.begin(), one.end());
  EXPECT_EQ(h.pop(), 7);
}

TEST(DaryHeap, ValidAfterEveryOperation) {
  std::mt19937 rng(3);
  int_heap h;
  for (int i = 0; i < 2000; ++i) {
    if (h.empty() || rng() % 3 != 0) {
      h.push(static_cast<int>(rng() % 100));
    } else {
      h.pop();
    }
    ASSERT_TRUE(h.is_valid_heap());
  }
}

TEST(DaryHeap, CustomComparatorMaxHeap) {
  dary_heap<int, std::greater<int>> h;
  for (const int x : {3, 9, 1}) h.push(x);
  EXPECT_EQ(h.pop(), 9);
  EXPECT_EQ(h.pop(), 3);
  EXPECT_EQ(h.pop(), 1);
}

TEST(DaryHeap, BinaryArityWorksToo) {
  dary_heap<int, std::less<int>, 2> h;
  for (const int x : {4, 2, 8, 6}) h.push(x);
  EXPECT_EQ(h.pop(), 2);
  EXPECT_EQ(h.pop(), 4);
  EXPECT_EQ(h.pop(), 6);
  EXPECT_EQ(h.pop(), 8);
}

TEST(DaryHeap, StatefulReferenceComparator) {
  struct flip_compare {
    bool reversed = false;
    bool operator()(int a, int b) const { return reversed ? b < a : a < b; }
  };
  flip_compare cmp;
  dary_heap<int, flip_compare&> h(cmp);
  h.push(1);
  h.push(2);
  EXPECT_EQ(h.pop(), 1);
  EXPECT_EQ(h.pop(), 2);
}

}  // namespace
}  // namespace asyncgt
