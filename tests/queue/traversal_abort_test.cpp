// Failure-containment contract of the layered traversal engine: an
// exception thrown inside any worker's visit must never std::terminate or
// hang the process. It is latched with thread/vertex context, every other
// worker (including parked ones) unwinds promptly, and the first error
// resurfaces on the calling thread as traversal_aborted — after which the
// queue is reusable for a clean run. These tests are part of the TSan
// preset: the abort broadcast races against delivery, parking, and seeding
// by construction.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "queue/traversal_abort.hpp"
#include "queue/visitor_queue.hpp"
#include "util/cache_line.hpp"

namespace asyncgt {
namespace {

// Implicit-binary-tree visitor (no graph needed) with a single bomb vertex
// whose visit throws. Everything else fans out, so at detonation time other
// workers are mid-visit, mid-delivery, or parked.
struct bomb_state {
  std::uint64_t n = 0;
  std::uint32_t bomb = ~std::uint32_t{0};  // no bomb by default
  bool all_bombs = false;                  // every visit throws
  std::vector<padded<std::uint64_t>> visits_per_thread;
  bomb_state(std::uint64_t size, std::size_t threads)
      : n(size), visits_per_thread(threads) {}
  std::uint64_t total_visits() const {
    std::uint64_t t = 0;
    for (const auto& v : visits_per_thread) t += v.value;
    return t;
  }
};

struct bomb_visitor {
  std::uint32_t vtx{};
  std::uint32_t depth{};
  std::uint32_t vertex() const noexcept { return vtx; }
  std::uint32_t priority() const noexcept { return depth; }
  template <typename State, typename Queue>
  void visit(State& s, Queue& q, std::size_t tid) const {
    if (vtx == s.bomb || s.all_bombs) {
      throw std::runtime_error("bomb vertex visited");
    }
    ++s.visits_per_thread[tid].value;
    const std::uint64_t left = 2ULL * vtx + 1;
    const std::uint64_t right = 2ULL * vtx + 2;
    if (left < s.n) {
      q.push(bomb_visitor{static_cast<std::uint32_t>(left), depth + 1});
    }
    if (right < s.n) {
      q.push(bomb_visitor{static_cast<std::uint32_t>(right), depth + 1});
    }
  }
};

visitor_queue_config threads(std::size_t n) {
  visitor_queue_config cfg;
  cfg.num_threads = n;
  return cfg;
}

TEST(TraversalAbort, ThrowingVisitorSurfacesAsTraversalAborted) {
  bomb_state s(1 << 14, 8);
  s.bomb = 7777;
  visitor_queue<bomb_visitor, bomb_state> q(threads(8));
  q.push(bomb_visitor{0, 0});
  try {
    q.run(s);
    FAIL() << "expected traversal_aborted";
  } catch (const traversal_aborted& e) {
    EXPECT_LT(e.worker(), 8u);
    EXPECT_TRUE(e.has_vertex());
    EXPECT_EQ(e.vertex(), 7777u);
    EXPECT_NE(std::string(e.what()).find("bomb vertex"), std::string::npos);
    // The original exception rides along for callers that dispatch on it.
    ASSERT_TRUE(e.cause());
    EXPECT_THROW(std::rethrow_exception(e.cause()), std::runtime_error);
  }
}

TEST(TraversalAbort, QueueIsReusableAfterAbort) {
  const std::uint64_t n = 1 << 14;
  bomb_state armed(n, 8);
  armed.bomb = 4242;
  visitor_queue<bomb_visitor, bomb_state> q(threads(8));
  q.push(bomb_visitor{0, 0});
  EXPECT_THROW(q.run(armed), traversal_aborted);

  // Same queue object, clean state: the abandoned visitors from the aborted
  // run must be gone and the tree must be walked exactly once per vertex.
  bomb_state clean(n, 8);
  q.push(bomb_visitor{0, 0});
  const auto stats = q.run(clean);
  EXPECT_EQ(clean.total_visits(), n);
  EXPECT_EQ(stats.visits, n);
}

TEST(TraversalAbort, AbortWakesParkedWorkers) {
  // One visitor, many threads: every worker except the one routed vertex 0
  // parks immediately. The bomb then detonates on the owner; if the abort
  // broadcast missed parked workers this test would hang in join.
  bomb_state s(1, 16);
  s.bomb = 0;
  visitor_queue<bomb_visitor, bomb_state> q(threads(16));
  q.push(bomb_visitor{0, 0});
  EXPECT_THROW(q.run(s), traversal_aborted);
}

TEST(TraversalAbort, SeededRunAborts) {
  bomb_state s(1 << 12, 8);
  s.bomb = 999;
  visitor_queue<bomb_visitor, bomb_state> q(threads(8));
  try {
    q.run_seeded(s, s.n, [](std::uint32_t v) {
      return bomb_visitor{v, 0};
    });
    FAIL() << "expected traversal_aborted";
  } catch (const traversal_aborted& e) {
    EXPECT_TRUE(e.has_vertex());
    EXPECT_EQ(e.vertex(), 999u);
  }
  // And the seeded entry point recovers too. (Seeds re-spawn their tree
  // children, so each vertex is visited once as a seed plus once per
  // ancestor visit — at least n in total.)
  bomb_state clean(1 << 12, 8);
  q.run_seeded(clean, clean.n, [](std::uint32_t v) {
    return bomb_visitor{v, 0};
  });
  EXPECT_GE(clean.total_visits(), clean.n);
}

TEST(TraversalAbort, FirstErrorWinsUnderConcurrentFailures) {
  // Every visit throws; exactly one error must be latched and reported,
  // and it must carry a coherent vertex (one that actually detonated).
  bomb_state s(1 << 12, 8);
  s.all_bombs = true;
  visitor_queue<bomb_visitor, bomb_state> q(threads(8));
  try {
    q.run_seeded(s, s.n, [&s](std::uint32_t v) {
      return bomb_visitor{v, 0};
    });
    FAIL() << "expected traversal_aborted";
  } catch (const traversal_aborted& e) {
    EXPECT_TRUE(e.has_vertex());
    EXPECT_LT(e.vertex(), s.n);
  }
}

TEST(TraversalAbort, ExternalPushAfterAbortStartsClean) {
  bomb_state armed(1 << 10, 4);
  armed.bomb = 100;
  visitor_queue<bomb_visitor, bomb_state> q(threads(4));
  q.push(bomb_visitor{0, 0});
  EXPECT_THROW(q.run(armed), traversal_aborted);
  // Post-abort the engine reset pending to zero; a lone external push must
  // be the only seed of the next run (no stale in-flight accounting).
  bomb_state clean(8, 4);
  q.push(bomb_visitor{0, 0});
  q.run(clean);
  EXPECT_EQ(clean.total_visits(), 8u);
}

}  // namespace
}  // namespace asyncgt
