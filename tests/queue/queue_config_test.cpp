// Configuration-surface tests for the visitor queue: reservation, 64-bit
// vertex routing, stats rendering, and comparator interplay.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "queue/visitor_queue.hpp"
#include "util/cache_line.hpp"

namespace asyncgt {
namespace {

struct wide_state {
  std::vector<padded<std::uint64_t>> visits;
  explicit wide_state(std::size_t threads) : visits(threads) {}
};

struct wide_visitor {
  std::uint64_t vtx{};
  std::uint64_t vertex() const noexcept { return vtx; }
  std::uint64_t priority() const noexcept { return vtx; }
  template <typename State, typename Queue>
  void visit(State& s, Queue&, std::size_t tid) const {
    ++s.visits[tid].value;
  }
};

TEST(VisitorQueueConfig, SixtyFourBitVertexRouting) {
  visitor_queue_config cfg;
  cfg.num_threads = 8;
  wide_state state(8);
  visitor_queue<wide_visitor, wide_state> q(cfg);
  // Ids far beyond 32 bits must route and complete.
  for (std::uint64_t i = 0; i < 1000; ++i) {
    q.push(wide_visitor{(1ULL << 40) + i * 12345});
  }
  const auto stats = q.run(state);
  EXPECT_EQ(stats.visits, 1000u);
}

TEST(VisitorQueueConfig, ReservationDoesNotChangeBehaviour) {
  visitor_queue_config plain;
  plain.num_threads = 4;
  visitor_queue_config reserved = plain;
  reserved.reserve_per_queue = 4096;

  for (const auto* cfg : {&plain, &reserved}) {
    wide_state state(4);
    visitor_queue<wide_visitor, wide_state> q(*cfg);
    for (std::uint64_t i = 0; i < 500; ++i) q.push(wide_visitor{i});
    EXPECT_EQ(q.run(state).visits, 500u);
  }
}

TEST(VisitorQueueConfig, ValidateRejectsZeroThreads) {
  visitor_queue_config cfg;
  cfg.num_threads = 0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST(VisitorQueueConfig, SingleQueueIsLegal) {
  // One thread = one queue = fully serialized execution; must still work
  // with every ordering mode.
  for (const auto order :
       {queue_order::priority, queue_order::fifo, queue_order::lifo}) {
    visitor_queue_config cfg;
    cfg.num_threads = 1;
    cfg.order = order;
    wide_state state(1);
    visitor_queue<wide_visitor, wide_state> q(cfg);
    for (std::uint64_t i = 0; i < 64; ++i) q.push(wide_visitor{i});
    EXPECT_EQ(q.run(state).visits, 64u);
  }
}

TEST(QueueRunStats, VisitsPerQueueSizedToThreads) {
  visitor_queue_config cfg;
  cfg.num_threads = 6;
  wide_state state(6);
  visitor_queue<wide_visitor, wide_state> q(cfg);
  q.push(wide_visitor{1});
  const auto stats = q.run(state);
  EXPECT_EQ(stats.visits_per_queue.size(), 6u);
}

}  // namespace
}  // namespace asyncgt
