#include "queue/visitor_queue.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <vector>

#include "util/cache_line.hpp"

namespace asyncgt {
namespace {

// A counting visitor: visiting vertex v spawns visitors for v's "children"
// in an implicit binary tree over [0, n), counting every visit. This drives
// the queue without any graph dependency.
struct tree_state {
  std::uint64_t n = 0;
  std::vector<padded<std::uint64_t>> visits_per_thread;
  explicit tree_state(std::uint64_t size, std::size_t threads)
      : n(size), visits_per_thread(threads) {}
};

struct tree_visitor {
  std::uint32_t vtx{};
  std::uint32_t depth{};

  std::uint32_t vertex() const noexcept { return vtx; }
  std::uint32_t priority() const noexcept { return depth; }

  template <typename State, typename Queue>
  void visit(State& s, Queue& q, std::size_t tid) const {
    ++s.visits_per_thread[tid].value;
    const std::uint64_t left = 2ULL * vtx + 1;
    const std::uint64_t right = 2ULL * vtx + 2;
    if (left < s.n) {
      q.push(tree_visitor{static_cast<std::uint32_t>(left), depth + 1});
    }
    if (right < s.n) {
      q.push(tree_visitor{static_cast<std::uint32_t>(right), depth + 1});
    }
  }
};

// Visitor that records per-thread visit counts and spawns nothing.
struct leaf_state {
  std::vector<padded<std::uint64_t>> visits;
  explicit leaf_state(std::size_t threads) : visits(threads) {}
};

struct leaf_visitor {
  std::uint32_t vtx{};
  std::uint32_t vertex() const noexcept { return vtx; }
  std::uint32_t priority() const noexcept { return 0; }
  template <typename State, typename Queue>
  void visit(State& s, Queue&, std::size_t tid) const {
    ++s.visits[tid].value;
  }
};

// Visitor that records the order of observed priorities / vertices.
struct order_state {
  std::vector<std::uint32_t> order;
};

struct order_visitor {
  std::uint32_t vtx{};
  std::uint32_t prio{};
  std::uint32_t vertex() const noexcept { return vtx; }
  std::uint32_t priority() const noexcept { return prio; }
  template <typename State, typename Queue>
  void visit(State& s, Queue&, std::size_t) const {
    s.order.push_back(prio);
  }
};

struct vertex_order_visitor {
  std::uint32_t vtx{};
  std::uint32_t prio{};
  std::uint32_t vertex() const noexcept { return vtx; }
  std::uint32_t priority() const noexcept { return prio; }
  template <typename State, typename Queue>
  void visit(State& s, Queue&, std::size_t) const {
    s.order.push_back(vtx);
  }
};

std::uint64_t total_visits(const tree_state& s) {
  std::uint64_t sum = 0;
  for (const auto& v : s.visits_per_thread) sum += v.value;
  return sum;
}

visitor_queue_config cfg_with(std::size_t threads,
                              queue_order order = queue_order::priority) {
  visitor_queue_config cfg;
  cfg.num_threads = threads;
  cfg.order = order;
  return cfg;
}

TEST(VisitorQueue, VisitsEveryTreeNodeOnce) {
  constexpr std::uint64_t kN = 4096;
  for (const std::size_t threads : {1u, 2u, 8u, 64u}) {
    tree_state state(kN, threads);
    visitor_queue<tree_visitor, tree_state> q(cfg_with(threads));
    q.push(tree_visitor{0, 0});
    const auto stats = q.run(state);
    EXPECT_EQ(total_visits(state), kN) << "threads=" << threads;
    EXPECT_EQ(stats.visits, kN);
    EXPECT_EQ(stats.pushes, kN);  // every node pushed exactly once
  }
}

TEST(VisitorQueue, EmptyRunReturnsImmediately) {
  tree_state state(0, 4);
  visitor_queue<tree_visitor, tree_state> q(cfg_with(4));
  const auto stats = q.run(state);
  EXPECT_EQ(stats.visits, 0u);
}

TEST(VisitorQueue, ReusableAcrossRuns) {
  constexpr std::uint64_t kN = 256;
  tree_state state(kN, 4);
  visitor_queue<tree_visitor, tree_state> q(cfg_with(4));
  q.push(tree_visitor{0, 0});
  EXPECT_EQ(q.run(state).visits, kN);
  q.push(tree_visitor{0, 0});
  EXPECT_EQ(q.run(state).visits, kN);  // stats reset between runs
  EXPECT_EQ(total_visits(state), 2 * kN);
}

TEST(VisitorQueue, ZeroThreadsRejected) {
  EXPECT_THROW((visitor_queue<tree_visitor, tree_state>(cfg_with(0))),
               std::invalid_argument);
}

TEST(VisitorQueue, OversubscriptionManyMoreThreadsThanCores) {
  constexpr std::uint64_t kN = 2048;
  tree_state state(kN, 256);
  visitor_queue<tree_visitor, tree_state> q(cfg_with(256));
  q.push(tree_visitor{0, 0});
  EXPECT_EQ(q.run(state).visits, kN);
}

TEST(VisitorQueue, FifoAndLifoOrdersAlsoComplete) {
  constexpr std::uint64_t kN = 1024;
  for (const queue_order ord : {queue_order::fifo, queue_order::lifo}) {
    tree_state state(kN, 8);
    visitor_queue<tree_visitor, tree_state> q(cfg_with(8, ord));
    q.push(tree_visitor{0, 0});
    EXPECT_EQ(q.run(state).visits, kN);
  }
}

TEST(VisitorQueue, RunSeededVisitsAllSeeds) {
  constexpr std::uint64_t kN = 10000;
  for (const std::size_t threads : {1u, 3u, 16u}) {
    leaf_state state(threads);
    visitor_queue<leaf_visitor, leaf_state> q(cfg_with(threads));
    const auto stats = q.run_seeded(state, kN, [](std::uint32_t v) {
      return leaf_visitor{v};
    });
    std::uint64_t sum = 0;
    for (const auto& v : state.visits) sum += v.value;
    EXPECT_EQ(sum, kN) << "threads=" << threads;
    EXPECT_EQ(stats.visits, kN);
  }
}

TEST(VisitorQueue, RunSeededEmptyRange) {
  tree_state state(0, 4);
  visitor_queue<tree_visitor, tree_state> q(cfg_with(4));
  const auto stats = q.run_seeded(state, 0, [](std::uint32_t v) {
    return tree_visitor{v, 0};
  });
  EXPECT_EQ(stats.visits, 0u);
}

TEST(VisitorQueue, SingleThreadPopsInPriorityOrder) {
  order_state state;
  visitor_queue<order_visitor, order_state> q(cfg_with(1));
  for (const std::uint32_t p : {5u, 1u, 4u, 2u, 3u}) {
    q.push(order_visitor{p, p});
  }
  q.run(state);
  const std::vector<std::uint32_t> expect{1, 2, 3, 4, 5};
  EXPECT_EQ(state.order, expect);
}

TEST(VisitorQueue, FifoPopsInPushOrder) {
  order_state state;
  visitor_queue<order_visitor, order_state> q(cfg_with(1, queue_order::fifo));
  for (const std::uint32_t p : {5u, 1u, 4u}) q.push(order_visitor{p, p});
  q.run(state);
  const std::vector<std::uint32_t> expect{5, 1, 4};
  EXPECT_EQ(state.order, expect);
}

TEST(VisitorQueue, LifoPopsInReversePushOrder) {
  order_state state;
  visitor_queue<order_visitor, order_state> q(cfg_with(1, queue_order::lifo));
  for (const std::uint32_t p : {5u, 1u, 4u}) q.push(order_visitor{p, p});
  q.run(state);
  const std::vector<std::uint32_t> expect{4, 1, 5};
  EXPECT_EQ(state.order, expect);
}

TEST(VisitorQueue, SecondarySortBreaksTiesByVertex) {
  visitor_queue_config cfg = cfg_with(1);
  cfg.secondary_vertex_sort = true;
  order_state vs;
  visitor_queue<vertex_order_visitor, order_state> q(cfg);
  q.push(vertex_order_visitor{30, 7});
  q.push(vertex_order_visitor{10, 7});
  q.push(vertex_order_visitor{20, 7});
  q.run(vs);
  const std::vector<std::uint32_t> expect{10, 20, 30};
  EXPECT_EQ(vs.order, expect);
}

TEST(VisitorQueue, PrimaryPriorityStillWinsWithSecondarySort) {
  visitor_queue_config cfg = cfg_with(1);
  cfg.secondary_vertex_sort = true;
  order_state vs;
  visitor_queue<vertex_order_visitor, order_state> q(cfg);
  q.push(vertex_order_visitor{10, 9});  // high vertex priority loses to prio
  q.push(vertex_order_visitor{99, 1});
  q.run(vs);
  const std::vector<std::uint32_t> expect{99, 10};
  EXPECT_EQ(vs.order, expect);
}

TEST(VisitorQueue, LoadBalanceAcrossQueues) {
  // With the avalanche hash, seeded uniform vertices spread evenly.
  constexpr std::size_t kThreads = 8;
  constexpr std::uint64_t kN = 80000;
  leaf_state state(kThreads);
  visitor_queue<leaf_visitor, leaf_state> q(cfg_with(kThreads));
  const auto stats = q.run_seeded(state, kN, [](std::uint32_t v) {
    return leaf_visitor{v};
  });
  EXPECT_LT(stats.load_imbalance_cv(), 0.05);
}

TEST(VisitorQueue, IdentityHashRouting) {
  // Identity routing assigns v % threads; a stream of ids all congruent to
  // 0 mod threads must land on a single queue (the load-imbalance hazard
  // the avalanche hash avoids).
  visitor_queue_config cfg = cfg_with(4);
  cfg.identity_hash = true;
  leaf_state state(4);
  visitor_queue<leaf_visitor, leaf_state> q(cfg);
  for (std::uint32_t v = 0; v < 400; v += 4) {
    q.push(leaf_visitor{v});
  }
  const auto stats = q.run(state);
  EXPECT_EQ(stats.visits, 100u);
  EXPECT_GT(stats.load_imbalance_cv(), 1.5);  // all work on one queue
}

TEST(VisitorQueue, StatsTrackMaxQueueLength) {
  tree_state state(512, 1);
  visitor_queue<tree_visitor, tree_state> q(cfg_with(1));
  q.push(tree_visitor{0, 0});
  const auto stats = q.run(state);
  EXPECT_GE(stats.max_queue_length, 2u);  // tree fan-out must queue up
  EXPECT_LE(stats.max_queue_length, 512u);
}

TEST(VisitorQueue, StressManyRunsNoDeadlock) {
  // Repeated small runs shake out termination races.
  for (int round = 0; round < 50; ++round) {
    tree_state state(64, 16);
    visitor_queue<tree_visitor, tree_state> q(cfg_with(16));
    q.push(tree_visitor{0, 0});
    EXPECT_EQ(q.run(state).visits, 64u);
  }
}

TEST(VisitorQueue, ShutdownWakeNotCountedAsWakeup) {
  // A single-visitor run on many threads: the lone worker pops its visitor
  // without ever sleeping, and the other workers go idle exactly once.
  // Shutdown then wakes all of them — those final wakes are part of
  // termination, not idle/work transitions, and must not count.
  for (int round = 0; round < 20; ++round) {
    leaf_state state(16);
    visitor_queue<leaf_visitor, leaf_state> q(cfg_with(16));
    q.push(leaf_visitor{0});
    const auto stats = q.run(state);
    EXPECT_EQ(stats.visits, 1u);
    EXPECT_EQ(stats.wakeups, 0u) << "round=" << round;
  }
}

TEST(VisitorQueue, PendingIsZeroAfterRunAndObservableDuring) {
  tree_state state(1024, 4);
  visitor_queue<tree_visitor, tree_state> q(cfg_with(4));
  EXPECT_EQ(q.pending(), 0);
  q.push(tree_visitor{0, 0});
  EXPECT_EQ(q.pending(), 1);  // seeded but not yet run
  q.run(state);
  EXPECT_EQ(q.pending(), 0);  // termination means the counter drained
}

TEST(VisitorQueue, StatsToStringIncludesElapsedAndSpread) {
  tree_state state(256, 2);
  visitor_queue<tree_visitor, tree_state> q(cfg_with(2));
  q.push(tree_visitor{0, 0});
  const auto stats = q.run(state);
  const std::string s = stats.to_string();
  EXPECT_NE(s.find("elapsed_s="), std::string::npos) << s;
  EXPECT_NE(s.find("queue_visits_min="), std::string::npos) << s;
  EXPECT_NE(s.find("queue_visits_max="), std::string::npos) << s;
  EXPECT_GE(stats.max_queue_visits(), stats.min_queue_visits());
  EXPECT_GE(stats.elapsed_seconds, 0.0);
}

TEST(VisitorQueue, LoadImbalanceCvDegenerateCases) {
  queue_run_stats empty;
  EXPECT_EQ(empty.load_imbalance_cv(), 0.0);
  EXPECT_EQ(empty.min_queue_visits(), 0u);
  EXPECT_EQ(empty.max_queue_visits(), 0u);

  queue_run_stats single;
  single.visits_per_queue = {42};
  EXPECT_EQ(single.load_imbalance_cv(), 0.0);
  EXPECT_EQ(single.min_queue_visits(), 42u);
  EXPECT_EQ(single.max_queue_visits(), 42u);

  queue_run_stats all_zero;
  all_zero.visits_per_queue = {0, 0, 0};
  EXPECT_EQ(all_zero.load_imbalance_cv(), 0.0);
}

}  // namespace
}  // namespace asyncgt
