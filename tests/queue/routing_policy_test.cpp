// Routing-layer tests: vertex id -> owning queue index. The mapping must be
// deterministic (it is what gives the engine per-vertex exclusivity) and the
// two static policies must show the spread / clustering behaviour the hash
// ablation relies on.
#include "queue/routing_policy.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <vector>

namespace asyncgt {
namespace {

TEST(RoutingPolicy, IdentityRouterIsModulo) {
  const identity_router r{5};
  for (std::uint32_t v = 0; v < 100; ++v) {
    EXPECT_EQ(r(v), v % 5);
  }
}

TEST(RoutingPolicy, AvalancheRouterStaysInRange) {
  const avalanche_router r{7};
  for (std::uint64_t v = 0; v < 10000; ++v) {
    EXPECT_LT(r(v), 7u);
  }
  // 64-bit ids route too (SEM graphs use vertex64).
  EXPECT_LT(r((1ULL << 40) + 17), 7u);
}

TEST(RoutingPolicy, AvalancheRouterIsDeterministic) {
  const avalanche_router a{16};
  const avalanche_router b{16};
  for (std::uint32_t v = 0; v < 1000; ++v) {
    EXPECT_EQ(a(v), b(v));
  }
}

TEST(RoutingPolicy, AvalancheSpreadsStridedIdsIdentityDoesNot) {
  // Ids all congruent to 0 mod 4: identity routing collapses them onto one
  // queue (the load-imbalance hazard), the avalanche hash spreads them.
  constexpr std::size_t kQueues = 4;
  const identity_router ident{kQueues};
  const avalanche_router aval{kQueues};
  std::set<std::size_t> ident_hit, aval_hit;
  for (std::uint32_t v = 0; v < 400; v += 4) {
    ident_hit.insert(ident(v));
    aval_hit.insert(aval(v));
  }
  EXPECT_EQ(ident_hit.size(), 1u);
  EXPECT_EQ(aval_hit.size(), kQueues);
}

TEST(RoutingPolicy, VertexRouterSelectsPolicyByFlag) {
  const vertex_router ident(4, true);
  const vertex_router aval(4, false);
  for (std::uint32_t v = 0; v < 200; ++v) {
    EXPECT_EQ(ident(v), identity_router{4}(v));
    EXPECT_EQ(aval(v), avalanche_router{4}(v));
  }
}

TEST(RoutingPolicy, VertexRouterFromConfig) {
  visitor_queue_config cfg;
  cfg.num_threads = 9;
  cfg.identity_hash = true;
  const vertex_router r(cfg);
  EXPECT_EQ(r.num_queues, 9u);
  EXPECT_EQ(r(std::uint32_t{13}), 13u % 9u);
}

TEST(RoutingPolicy, SingleQueueAlwaysZero) {
  const vertex_router r(1, false);
  for (std::uint64_t v = 0; v < 64; ++v) {
    EXPECT_EQ(r(v), 0u);
  }
}

}  // namespace
}  // namespace asyncgt
