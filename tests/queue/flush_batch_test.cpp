// Batched cross-thread delivery tests: the mailbox layer's flush_batch knob.
//
// flush_batch=1 reproduces the seed's per-push delivery (one mailbox mutex
// acquisition and one termination reservation per visitor), so its flushes
// counter equals the push counter exactly; larger batches amortize both and
// the flushes counter must drop accordingly while every result stays
// identical. Also covers engine reuse: one queue across many run() /
// run_seeded() calls must reset done_, pending_ and the per-worker stats.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <vector>

#include "queue/visitor_queue.hpp"
#include "util/cache_line.hpp"

namespace asyncgt {
namespace {

struct tree_state {
  std::uint64_t n = 0;
  std::vector<padded<std::uint64_t>> visits_per_thread;
  explicit tree_state(std::uint64_t size, std::size_t threads)
      : n(size), visits_per_thread(threads) {}
};

struct tree_visitor {
  std::uint32_t vtx{};
  std::uint32_t depth{};

  std::uint32_t vertex() const noexcept { return vtx; }
  std::uint32_t priority() const noexcept { return depth; }

  template <typename State, typename Queue>
  void visit(State& s, Queue& q, std::size_t tid) const {
    ++s.visits_per_thread[tid].value;
    const std::uint64_t left = 2ULL * vtx + 1;
    const std::uint64_t right = 2ULL * vtx + 2;
    if (left < s.n) {
      q.push(tree_visitor{static_cast<std::uint32_t>(left), depth + 1});
    }
    if (right < s.n) {
      q.push(tree_visitor{static_cast<std::uint32_t>(right), depth + 1});
    }
  }
};

struct leaf_state {
  std::vector<padded<std::uint64_t>> visits;
  explicit leaf_state(std::size_t threads) : visits(threads) {}
};

struct leaf_visitor {
  std::uint32_t vtx{};
  std::uint32_t vertex() const noexcept { return vtx; }
  std::uint32_t priority() const noexcept { return 0; }
  template <typename State, typename Queue>
  void visit(State& s, Queue&, std::size_t tid) const {
    ++s.visits[tid].value;
  }
};

// Copy-counting visitor for the move-only discipline test. The counter is a
// plain int: the test runs the queue on one worker thread.
int g_visitor_copies = 0;

struct counting_state {
  std::uint64_t n = 0;
  std::uint64_t visits = 0;
};

struct counting_visitor {
  std::uint32_t vtx{};

  counting_visitor() = default;
  explicit counting_visitor(std::uint32_t v) : vtx(v) {}
  counting_visitor(const counting_visitor& o) : vtx(o.vtx) {
    ++g_visitor_copies;
  }
  counting_visitor& operator=(const counting_visitor& o) {
    vtx = o.vtx;
    ++g_visitor_copies;
    return *this;
  }
  counting_visitor(counting_visitor&&) = default;
  counting_visitor& operator=(counting_visitor&&) = default;

  std::uint32_t vertex() const noexcept { return vtx; }
  std::uint32_t priority() const noexcept { return vtx; }
  template <typename State, typename Queue>
  void visit(State& s, Queue& q, std::size_t) const {
    ++s.visits;
    const std::uint64_t left = 2ULL * vtx + 1;
    if (left < s.n) {
      q.push(counting_visitor{static_cast<std::uint32_t>(left)});
    }
    if (left + 1 < s.n) {
      q.push(counting_visitor{static_cast<std::uint32_t>(left + 1)});
    }
  }
};

std::uint64_t total_visits(const tree_state& s) {
  std::uint64_t sum = 0;
  for (const auto& v : s.visits_per_thread) sum += v.value;
  return sum;
}

visitor_queue_config cfg_with(std::size_t threads, std::size_t batch) {
  visitor_queue_config cfg;
  cfg.num_threads = threads;
  cfg.flush_batch = batch;
  return cfg;
}

queue_run_stats run_tree(std::uint64_t n, const visitor_queue_config& cfg,
                         std::uint64_t* visits_out = nullptr) {
  tree_state state(n, cfg.num_threads);
  visitor_queue<tree_visitor, tree_state> q(cfg);
  q.push(tree_visitor{0, 0});
  auto stats = q.run(state);
  if (visits_out != nullptr) *visits_out = total_visits(state);
  return stats;
}

TEST(FlushBatch, ZeroBatchRejected) {
  visitor_queue_config cfg = cfg_with(2, 0);
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  EXPECT_THROW((visitor_queue<tree_visitor, tree_state>(cfg)),
               std::invalid_argument);
}

TEST(FlushBatch, BatchOneFlushesOncePerPush) {
  // Per-push delivery: every push is its own batch, so the mutex-acquisition
  // counter equals the push counter — the seed's behaviour, reproduced.
  for (const std::size_t threads : {1u, 4u}) {
    const auto stats = run_tree(4096, cfg_with(threads, 1));
    EXPECT_EQ(stats.pushes, 4096u);
    EXPECT_EQ(stats.flushes, stats.pushes) << "threads=" << threads;
  }
}

TEST(FlushBatch, LargeBatchAmortizesFlushes) {
  // With B=64 the same traversal needs far fewer deliveries. Idle-time
  // flushes ship partial batches, so the realized amortization is below B,
  // but it must still be a large multiple.
  constexpr std::uint64_t kN = 1 << 16;
  const auto b1 = run_tree(kN, cfg_with(4, 1));
  const auto b64 = run_tree(kN, cfg_with(4, 64));
  EXPECT_EQ(b1.pushes, b64.pushes);
  EXPECT_GT(b64.flushes, 0u);
  EXPECT_LT(b64.flushes * 8, b1.flushes)
      << "b1.flushes=" << b1.flushes << " b64.flushes=" << b64.flushes;
}

TEST(FlushBatch, VisitCountsIdenticalAcrossBatchSizes) {
  constexpr std::uint64_t kN = 10000;
  for (const std::size_t batch : {1u, 2u, 7u, 64u, 1024u}) {
    for (const std::size_t threads : {1u, 3u, 16u}) {
      std::uint64_t visits = 0;
      const auto stats = run_tree(kN, cfg_with(threads, batch), &visits);
      EXPECT_EQ(visits, kN) << "batch=" << batch << " threads=" << threads;
      EXPECT_EQ(stats.visits, kN);
      EXPECT_EQ(stats.pushes, kN);
    }
  }
}

TEST(FlushBatch, SeededRunsCompleteForAnyBatch) {
  // run_seeded pre-reserves terminations for the whole seed range; seeding
  // flushes must not double-count. Exercise batch sizes around the seed
  // slab boundaries.
  constexpr std::uint64_t kN = 5000;
  for (const std::size_t batch : {1u, 64u, 8192u}) {
    leaf_state state(8);
    visitor_queue<leaf_visitor, leaf_state> q(cfg_with(8, batch));
    const auto stats = q.run_seeded(state, kN, [](std::uint32_t v) {
      return leaf_visitor{v};
    });
    EXPECT_EQ(stats.visits, kN) << "batch=" << batch;
    EXPECT_EQ(q.pending(), 0);
  }
}

TEST(FlushBatch, ReuseResetsTerminationAndStats) {
  // One engine, many runs: done_ must clear, pending_ must drain to zero,
  // and every per-worker counter (visits, pushes, flushes, per-queue
  // breakdown) must restart from zero — no accumulation across runs.
  constexpr std::uint64_t kN = 2048;
  tree_state state(kN, 4);
  visitor_queue<tree_visitor, tree_state> q(cfg_with(4, 64));

  q.push(tree_visitor{0, 0});
  const auto first = q.run(state);
  EXPECT_EQ(first.visits, kN);
  EXPECT_EQ(q.pending(), 0);

  for (int round = 0; round < 3; ++round) {
    q.push(tree_visitor{0, 0});
    const auto again = q.run(state);
    EXPECT_EQ(again.visits, first.visits) << "round=" << round;
    EXPECT_EQ(again.pushes, first.pushes);
    EXPECT_EQ(again.visits_per_queue.size(), first.visits_per_queue.size());
    std::uint64_t per_queue_sum = 0;
    for (const auto v : again.visits_per_queue) per_queue_sum += v;
    EXPECT_EQ(per_queue_sum, kN);  // not 2x/3x: stats reset, not accumulated
    EXPECT_EQ(q.pending(), 0);
  }
  EXPECT_EQ(total_visits(state), 4 * kN);
}

TEST(FlushBatch, ReuseMixesRunAndRunSeeded) {
  // A seeded run after a plain run (and vice versa) on the same engine:
  // the seeding pre-reservation must start from a drained counter.
  constexpr std::uint64_t kN = 1024;
  tree_state state(kN, 4);
  visitor_queue<tree_visitor, tree_state> q(cfg_with(4, 16));

  q.push(tree_visitor{0, 0});
  EXPECT_EQ(q.run(state).visits, kN);

  const auto seeded = q.run_seeded(state, kN, [](std::uint32_t v) {
    return tree_visitor{v, 0};  // every vertex seeded: all re-visited once
  });
  EXPECT_GE(seeded.visits, kN);
  EXPECT_EQ(q.pending(), 0);

  q.push(tree_visitor{0, 0});
  EXPECT_EQ(q.run(state).visits, kN);
  EXPECT_EQ(q.pending(), 0);
}

TEST(FlushBatch, StatsToStringIncludesFlushes) {
  const auto stats = run_tree(256, cfg_with(2, 8));
  EXPECT_NE(stats.to_string().find("flushes="), std::string::npos)
      << stats.to_string();
}

TEST(FlushBatch, RvaluePushPathNeverCopiesVisitors) {
  // Satellite of the move-only discipline: a visitor pushed as an rvalue
  // travels outbox -> mailbox slab -> private ordering -> pop entirely by
  // move. Copy-count with a single worker so the counter needs no atomics.
  g_visitor_copies = 0;
  counting_state state;
  state.n = 512;
  visitor_queue<counting_visitor, counting_state> q(cfg_with(1, 8));
  q.push(counting_visitor{0});
  const auto stats = q.run(state);
  EXPECT_EQ(stats.visits, 512u);
  EXPECT_EQ(state.visits, 512u);
  EXPECT_EQ(g_visitor_copies, 0);
}

}  // namespace
}  // namespace asyncgt
