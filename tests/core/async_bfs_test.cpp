#include "core/async_bfs.hpp"

#include <gtest/gtest.h>

#include "baselines/serial_bfs.hpp"
#include "core/validate.hpp"
#include "gen/grid.hpp"
#include "gen/rmat.hpp"
#include "graph/builder.hpp"

namespace asyncgt {
namespace {

visitor_queue_config threads(std::size_t n) {
  visitor_queue_config cfg;
  cfg.num_threads = n;
  return cfg;
}

TEST(AsyncBfs, TinyGraphLevels) {
  // 0 -> 1 -> 2, 0 -> 2: levels 0, 1, 1.
  const csr32 g = build_csr<vertex32>(3, {{0, 1, 1}, {1, 2, 1}, {0, 2, 1}});
  const auto r = async_bfs(g, vertex32{0}, threads(2));
  EXPECT_EQ(r.level[0], 0u);
  EXPECT_EQ(r.level[1], 1u);
  EXPECT_EQ(r.level[2], 1u);
  EXPECT_EQ(r.parent[0], 0u);
  EXPECT_EQ(r.parent[1], 0u);
  EXPECT_EQ(r.parent[2], 0u);
  EXPECT_EQ(r.max_level(), 1u);
  EXPECT_EQ(r.visited_count(), 3u);
}

TEST(AsyncBfs, UnreachableVerticesStayInfinite) {
  const csr32 g = build_csr<vertex32>(4, {{0, 1, 1}, {2, 3, 1}});
  const auto r = async_bfs(g, vertex32{0}, threads(4));
  EXPECT_EQ(r.level[2], infinite_distance<dist_t>);
  EXPECT_EQ(r.level[3], infinite_distance<dist_t>);
  EXPECT_EQ(r.parent[2], invalid_vertex<vertex32>);
  EXPECT_EQ(r.visited_count(), 2u);
}

TEST(AsyncBfs, OutOfRangeStartThrows) {
  const csr32 g = build_csr<vertex32>(2, {{0, 1, 1}});
  EXPECT_THROW(async_bfs(g, vertex32{5}, threads(1)), std::out_of_range);
}

TEST(AsyncBfs, SingleVertexGraph) {
  const csr32 g = build_csr<vertex32>(1, {});
  const auto r = async_bfs(g, vertex32{0}, threads(2));
  EXPECT_EQ(r.level[0], 0u);
  EXPECT_EQ(r.visited_count(), 1u);
  EXPECT_EQ(r.max_level(), 0u);
}

TEST(AsyncBfs, ChainSerializesButCompletes) {
  // Paper Fig. 2: the worst-case graph for traversal parallelism.
  const csr32 g = chain_graph<vertex32>(2000);
  const auto r = async_bfs(g, vertex32{0}, threads(8));
  for (vertex32 v = 0; v < 2000; ++v) EXPECT_EQ(r.level[v], v);
  EXPECT_EQ(r.max_level(), 1999u);
}

TEST(AsyncBfs, GridMatchesManhattanDistance) {
  const csr32 g = grid_graph<vertex32>(17, 13);
  const auto r = async_bfs(g, vertex32{0}, threads(4));
  for (vertex32 y = 0; y < 13; ++y) {
    for (vertex32 x = 0; x < 17; ++x) {
      EXPECT_EQ(r.level[y * 17 + x], x + y);
    }
  }
}

TEST(AsyncBfs, WeightedGraphIgnoresWeights) {
  const csr32 g = build_csr<vertex32>(3, {{0, 1, 100}, {1, 2, 100}});
  const auto r = async_bfs(g, vertex32{0}, threads(2));
  EXPECT_EQ(r.level[2], 2u);  // hops, not weight sums
}

struct BfsSweepParam {
  unsigned scale;
  bool rmat_b_preset;
  std::size_t threads;
};

class AsyncBfsSweep : public ::testing::TestWithParam<BfsSweepParam> {};

TEST_P(AsyncBfsSweep, MatchesSerialBfsLevels) {
  const auto [scale, use_b, nthreads] = GetParam();
  const rmat_params p = use_b ? rmat_b(scale) : rmat_a(scale);
  const csr32 g = rmat_graph<vertex32>(p);
  const auto ref = serial_bfs(g, vertex32{0});
  const auto r = async_bfs(g, vertex32{0}, threads(nthreads));
  ASSERT_EQ(r.level.size(), ref.level.size());
  for (std::size_t v = 0; v < r.level.size(); ++v) {
    ASSERT_EQ(r.level[v], ref.level[v]) << "vertex " << v;
  }
  // Parent array must be a valid tight tree even though the exact parents
  // may differ from the serial run.
  EXPECT_TRUE(validate_parents(g, vertex32{0}, r.level, r.parent, true).ok);
  EXPECT_TRUE(validate_distances(g, vertex32{0}, r.level, true).ok);
}

INSTANTIATE_TEST_SUITE_P(
    RmatVariants, AsyncBfsSweep,
    ::testing::Values(BfsSweepParam{8, false, 1}, BfsSweepParam{8, false, 4},
                      BfsSweepParam{8, false, 32}, BfsSweepParam{8, true, 4},
                      BfsSweepParam{10, false, 8}, BfsSweepParam{10, true, 8},
                      BfsSweepParam{10, true, 64},
                      BfsSweepParam{12, false, 16},
                      BfsSweepParam{12, true, 16}));

TEST(AsyncBfs, DeterministicLevelsAcrossRuns) {
  // Visit order is nondeterministic; final labels must not be.
  const csr32 g = rmat_graph<vertex32>(rmat_a(10));
  const auto first = async_bfs(g, vertex32{0}, threads(16));
  for (int i = 0; i < 5; ++i) {
    const auto again = async_bfs(g, vertex32{0}, threads(16));
    EXPECT_EQ(again.level, first.level);
  }
}

TEST(AsyncBfs, UpdatesAtLeastReachedCount) {
  // Label correction may update a vertex more than once, never less than
  // once per reached vertex.
  const csr32 g = rmat_graph<vertex32>(rmat_a(10));
  const auto r = async_bfs(g, vertex32{0}, threads(16));
  EXPECT_GE(r.updates, r.visited_count());
  EXPECT_GE(r.stats.visits, r.updates);
}

TEST(AsyncBfs, WorksWith64BitIds) {
  const csr64 g = build_csr<vertex64>(3, {{0, 1, 1}, {1, 2, 1}});
  const auto r = async_bfs(g, vertex64{0}, threads(2));
  EXPECT_EQ(r.level[2], 2u);
}

}  // namespace
}  // namespace asyncgt
