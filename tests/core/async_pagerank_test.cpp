#include "core/async_pagerank.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "baselines/power_iteration.hpp"
#include "gen/grid.hpp"
#include "gen/rmat.hpp"
#include "gen/webgen.hpp"
#include "graph/builder.hpp"

// Tolerance guidance: push-based PageRank does O(1/(tol*(1-alpha))) flushes
// in the worst case, so tests run at the practical 1e-6..1e-8 range and
// assert errors against the analytic bound tol*N/(1-alpha), not machine
// epsilon. The synchronous power-iteration reference is cheap at any
// precision, so it is always run much tighter than the async result.
namespace asyncgt {
namespace {

visitor_queue_config threads(std::size_t n) {
  visitor_queue_config cfg;
  cfg.num_threads = n;
  return cfg;
}

pagerank_options tol(double tolerance) {
  pagerank_options opt;
  opt.tolerance = tolerance;
  return opt;
}

double l1_diff(const std::vector<double>& a, const std::vector<double>& b) {
  double sum = 0;
  for (std::size_t i = 0; i < a.size(); ++i) sum += std::fabs(a[i] - b[i]);
  return sum;
}

TEST(AsyncPagerank, InvalidOptionsRejected) {
  const csr32 g = build_csr<vertex32>(2, {{0, 1, 1}});
  pagerank_options bad;
  bad.alpha = 1.5;
  EXPECT_THROW(async_pagerank(g, bad), std::invalid_argument);
  bad = pagerank_options{};
  bad.tolerance = 0;
  EXPECT_THROW(async_pagerank(g, bad), std::invalid_argument);
}

TEST(AsyncPagerank, TwoVertexCycleIsUniform) {
  // Symmetric 2-cycle: both vertices must have equal rank summing to ~1.
  const csr32 g = build_csr<vertex32>(2, {{0, 1, 1}, {1, 0, 1}});
  const auto r = async_pagerank(g, tol(1e-8), threads(2));
  EXPECT_NEAR(r.rank[0], r.rank[1], 1e-6);
  EXPECT_NEAR(r.total_rank(), 1.0, 1e-5);
}

TEST(AsyncPagerank, SinkReceivesMoreThanSource) {
  // 0 -> 1: vertex 1 accumulates vertex 0's pushed mass.
  const csr32 g = build_csr<vertex32>(2, {{0, 1, 1}});
  const auto r = async_pagerank(g, tol(1e-8), threads(1));
  EXPECT_GT(r.rank[1], r.rank[0]);
}

TEST(AsyncPagerank, HubOfStarDominates) {
  const csr32 g = star_graph<vertex32>(64);  // symmetric star
  const auto r = async_pagerank(g, tol(1e-6), threads(4));
  EXPECT_EQ(r.top_vertex(), 0u);
  for (vertex32 v = 1; v < 64; ++v) EXPECT_GT(r.rank[0], r.rank[v]);
  // Leaves are symmetric up to the tolerance-level truncation.
  for (vertex32 v = 2; v < 64; ++v) EXPECT_NEAR(r.rank[v], r.rank[1], 1e-4);
}

TEST(AsyncPagerank, MatchesPowerIterationOnRmat) {
  const csr32 g = rmat_graph<vertex32>(rmat_a(9));
  const auto ref = power_iteration_pagerank(g, 0.85, 1e-12);
  const double tolerance = 1e-5;
  // Analytic L1 bound: tolerance * N / (1 - alpha).
  const double bound =
      tolerance * static_cast<double>(g.num_vertices()) / 0.15;
  for (const std::size_t t : {1u, 8u, 32u}) {
    const auto r = async_pagerank(g, tol(tolerance), threads(t));
    EXPECT_LT(l1_diff(r.rank, ref.rank), bound) << "threads=" << t;
  }
}

TEST(AsyncPagerank, MatchesPowerIterationOnWebGraph) {
  webgen_params p;
  p.num_hosts = 40;
  const csr32 g = webgen_graph<vertex32>(p);
  const auto ref = power_iteration_pagerank(g, 0.85, 1e-12);
  const double tolerance = 1e-5;
  const double bound =
      tolerance * static_cast<double>(g.num_vertices()) / 0.15;
  const auto r = async_pagerank(g, tol(tolerance), threads(16));
  EXPECT_LT(l1_diff(r.rank, ref.rank), bound);
}

TEST(AsyncPagerank, ToleranceControlsError) {
  const csr32 g = rmat_graph<vertex32>(rmat_a(8));
  const auto ref = power_iteration_pagerank(g, 0.85, 1e-13);
  const double err_loose =
      l1_diff(async_pagerank(g, tol(1e-4), threads(4)).rank, ref.rank);
  const double err_tight =
      l1_diff(async_pagerank(g, tol(1e-6), threads(4)).rank, ref.rank);
  EXPECT_LT(err_tight, err_loose);
  EXPECT_LT(err_loose, 1e-4 * static_cast<double>(g.num_vertices()) / 0.15);
}

TEST(AsyncPagerank, DanglingMassIsDroppedConsistently) {
  // 0 -> 1, 1 has no out-edges: total rank < 1 under the drop convention,
  // and async agrees with the synchronous baseline.
  const csr32 g = build_csr<vertex32>(2, {{0, 1, 1}});
  const auto async_r = async_pagerank(g, tol(1e-8), threads(2));
  const auto sync_r = power_iteration_pagerank(g);
  EXPECT_LT(async_r.total_rank(), 1.0);
  EXPECT_NEAR(async_r.total_rank(), sync_r.total_rank(), 1e-6);
  EXPECT_NEAR(async_r.rank[0], sync_r.rank[0], 1e-6);
  EXPECT_NEAR(async_r.rank[1], sync_r.rank[1], 1e-6);
}

TEST(AsyncPagerank, RanksArePositive) {
  const csr32 g = rmat_graph<vertex32>(rmat_b(8));
  const auto r = async_pagerank(g, tol(1e-5), threads(8));
  for (const double x : r.rank) EXPECT_GT(x, 0.0);
}

TEST(AsyncPagerank, EmptyGraph) {
  const csr32 g = build_csr<vertex32>(0, {});
  const auto r = async_pagerank(g, {}, threads(2));
  EXPECT_TRUE(r.rank.empty());
}

TEST(AsyncPagerank, FlushesAtLeastOncePerVertex) {
  // The per-vertex seed (1-alpha)/N exceeds the tolerance, so every vertex
  // flushes at least once and earns positive rank.
  const csr32 g = rmat_graph<vertex32>(rmat_a(8));
  const auto r = async_pagerank(g, tol(1e-6), threads(4));
  EXPECT_GE(r.flushes, g.num_vertices());
}

TEST(AsyncPagerank, TighterToleranceDoesMoreWork) {
  const csr32 g = rmat_graph<vertex32>(rmat_a(8));
  const auto loose = async_pagerank(g, tol(1e-4), threads(4));
  const auto tight = async_pagerank(g, tol(1e-6), threads(4));
  EXPECT_GT(tight.flushes, loose.flushes);
}

}  // namespace
}  // namespace asyncgt
