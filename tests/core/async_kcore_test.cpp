#include "core/async_kcore.hpp"

#include <gtest/gtest.h>

#include "baselines/serial_kcore.hpp"
#include "gen/grid.hpp"
#include "gen/rmat.hpp"
#include "gen/webgen.hpp"
#include "graph/builder.hpp"

namespace asyncgt {
namespace {

visitor_queue_config threads(std::size_t n) {
  visitor_queue_config cfg;
  cfg.num_threads = n;
  return cfg;
}

csr32 clique(vertex32 k) {
  std::vector<edge<vertex32>> edges;
  for (vertex32 u = 0; u < k; ++u) {
    for (vertex32 v = u + 1; v < k; ++v) edges.push_back({u, v, 1});
  }
  build_options opt;
  opt.symmetrize = true;
  return build_csr<vertex32>(k, std::move(edges), opt);
}

TEST(SerialKcore, CliqueIsKMinusOneCore) {
  const auto core = serial_kcore(clique(6));
  for (const auto c : core) EXPECT_EQ(c, 5u);
}

TEST(SerialKcore, StarIsOneCore) {
  const auto core = serial_kcore(star_graph<vertex32>(10));
  for (const auto c : core) EXPECT_EQ(c, 1u);
}

TEST(SerialKcore, GridInteriorIsTwoCore) {
  const auto core = serial_kcore(grid_graph<vertex32>(8, 8));
  for (const auto c : core) EXPECT_EQ(c, 2u);  // whole grid peels at 2
}

TEST(SerialKcore, ChainEndsAreOneCore) {
  const auto core = serial_kcore(chain_graph<vertex32>(10, true));
  for (const auto c : core) EXPECT_EQ(c, 1u);
}

TEST(SerialKcore, CliquePlusTailMixedCoreness) {
  // 4-clique {0,1,2,3} with pendant 4 attached to 0.
  std::vector<edge<vertex32>> edges;
  for (vertex32 u = 0; u < 4; ++u) {
    for (vertex32 v = u + 1; v < 4; ++v) edges.push_back({u, v, 1});
  }
  edges.push_back({0, 4, 1});
  build_options opt;
  opt.symmetrize = true;
  const csr32 g = build_csr<vertex32>(5, std::move(edges), opt);
  const auto core = serial_kcore(g);
  EXPECT_EQ(core[0], 3u);
  EXPECT_EQ(core[1], 3u);
  EXPECT_EQ(core[2], 3u);
  EXPECT_EQ(core[3], 3u);
  EXPECT_EQ(core[4], 1u);
}

TEST(AsyncKcore, MatchesSerialOnStructuredGraphs) {
  for (const auto& g :
       {clique(7), star_graph<vertex32>(50), grid_graph<vertex32>(12, 9),
        chain_graph<vertex32>(64, true)}) {
    const auto ref = serial_kcore(g);
    const auto r = async_kcore(g, threads(8));
    EXPECT_EQ(r.core, ref);
  }
}

class KcoreSweep
    : public ::testing::TestWithParam<std::tuple<unsigned, bool, std::size_t>> {
};

TEST_P(KcoreSweep, MatchesSerialPeelingOnRmat) {
  const auto [scale, use_b, nthreads] = GetParam();
  const csr32 g =
      rmat_graph_undirected<vertex32>(use_b ? rmat_b(scale) : rmat_a(scale));
  const auto ref = serial_kcore(g);
  const auto r = async_kcore(g, threads(nthreads));
  ASSERT_EQ(r.core.size(), ref.size());
  for (std::size_t v = 0; v < ref.size(); ++v) {
    ASSERT_EQ(r.core[v], ref[v]) << "vertex " << v;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Rmat, KcoreSweep,
    ::testing::Combine(::testing::Values(8u, 10u), ::testing::Bool(),
                       ::testing::Values(std::size_t{1}, std::size_t{8},
                                         std::size_t{32})));

TEST(AsyncKcore, WebGraphMatchesSerial) {
  webgen_params p;
  p.num_hosts = 60;
  const csr32 g = webgen_graph<vertex32>(p);
  EXPECT_EQ(async_kcore(g, threads(16)).core, serial_kcore(g));
}

TEST(AsyncKcore, MaxCoreReported) {
  const auto r = async_kcore(clique(5), threads(2));
  EXPECT_EQ(r.max_core(), 4u);
}

TEST(AsyncKcore, IsolatedVerticesAreZeroCore) {
  const csr32 g = build_csr<vertex32>(3, {});
  const auto r = async_kcore(g, threads(2));
  for (const auto c : r.core) EXPECT_EQ(c, 0u);
}

TEST(AsyncKcore, DeterministicResultAcrossRuns) {
  const csr32 g = rmat_graph_undirected<vertex32>(rmat_b(9));
  const auto first = async_kcore(g, threads(16));
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(async_kcore(g, threads(16)).core, first.core);
  }
}

}  // namespace
}  // namespace asyncgt
