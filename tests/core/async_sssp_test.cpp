#include "core/async_sssp.hpp"

#include <gtest/gtest.h>

#include "baselines/serial_bfs.hpp"
#include "baselines/serial_sssp.hpp"
#include "core/validate.hpp"
#include "gen/rmat.hpp"
#include "gen/weights.hpp"
#include "graph/builder.hpp"

namespace asyncgt {
namespace {

visitor_queue_config threads(std::size_t n) {
  visitor_queue_config cfg;
  cfg.num_threads = n;
  return cfg;
}

TEST(AsyncSssp, TinyWeightedGraph) {
  // 0 -(5)-> 1, 0 -(2)-> 2, 2 -(2)-> 1: shortest to 1 is 4 via 2.
  const csr32 g = build_csr<vertex32>(3, {{0, 1, 5}, {0, 2, 2}, {2, 1, 2}});
  const auto r = async_sssp(g, vertex32{0}, threads(2));
  EXPECT_EQ(r.dist[0], 0u);
  EXPECT_EQ(r.dist[1], 4u);
  EXPECT_EQ(r.dist[2], 2u);
  EXPECT_EQ(r.parent[1], 2u);
}

TEST(AsyncSssp, PaperFigure3Example) {
  // The worked example of §III-B2 / Figure 3: a 5-vertex weighted digraph
  // whose weights force multiple visits per vertex.
  //   0 -(2)-> 1, 0 -(5)-> 2, 1 -(4)-> 2, 1 -(7)-> 3, 2 -(1)-> 3,
  //   3 -(1)-> 0, 3 -(2)-> 4, 4 -(3)-> 0
  const csr32 g = build_csr<vertex32>(5, {{0, 1, 2},
                                          {0, 2, 5},
                                          {1, 2, 4},
                                          {1, 3, 7},
                                          {2, 3, 1},
                                          {3, 0, 1},
                                          {3, 4, 2},
                                          {4, 0, 3}});
  for (const std::size_t t : {1u, 2u, 4u, 16u}) {
    const auto r = async_sssp(g, vertex32{0}, threads(t));
    // Final distances from the paper's walkthrough (panel f):
    //   d(0)=0, d(1)=2, d(2)=5, d(3)=6, d(4)=8.
    EXPECT_EQ(r.dist[0], 0u);
    EXPECT_EQ(r.dist[1], 2u);
    EXPECT_EQ(r.dist[2], 5u);
    EXPECT_EQ(r.dist[3], 6u);
    EXPECT_EQ(r.dist[4], 8u);
  }
}

TEST(AsyncSssp, MultipleVisitsPerVertexHappen) {
  // On the Figure 3 graph with FIFO ordering and one thread, vertex 3 is
  // reached first via the longer path (through 1) and corrected later —
  // total visits must exceed vertex count, demonstrating label correction.
  const csr32 g = build_csr<vertex32>(5, {{0, 1, 2},
                                          {0, 2, 5},
                                          {1, 2, 4},
                                          {1, 3, 7},
                                          {2, 3, 1},
                                          {3, 0, 1},
                                          {3, 4, 2},
                                          {4, 0, 3}});
  visitor_queue_config cfg = threads(1);
  cfg.order = queue_order::fifo;
  const auto r = async_sssp(g, vertex32{0}, cfg);
  EXPECT_EQ(r.dist[3], 6u);  // still correct
  EXPECT_GT(r.stats.visits, 5u);
}

TEST(AsyncSssp, UnreachableStaysInfinite) {
  const csr32 g = build_csr<vertex32>(3, {{0, 1, 3}});
  const auto r = async_sssp(g, vertex32{0}, threads(2));
  EXPECT_EQ(r.dist[2], infinite_distance<dist_t>);
}

TEST(AsyncSssp, OutOfRangeStartThrows) {
  const csr32 g = build_csr<vertex32>(2, {{0, 1, 1}});
  EXPECT_THROW(async_sssp(g, vertex32{2}, threads(1)), std::out_of_range);
}

TEST(AsyncSssp, UnweightedGraphBehavesLikeBfs) {
  // Paper §II-A: "BFS can be also computed using a SSSP algorithm with all
  // edge weights equal to 1". Unweighted CSR reports weight 1 per edge.
  const csr32 g = rmat_graph<vertex32>(rmat_a(8));
  const auto sssp = async_sssp(g, vertex32{0}, threads(4));
  const auto bfs = serial_bfs(g, vertex32{0});
  EXPECT_EQ(sssp.dist, bfs.level);
}

struct SsspSweepParam {
  unsigned scale;
  bool rmat_b_preset;
  weight_scheme scheme;
  std::size_t threads;
};

class AsyncSsspSweep : public ::testing::TestWithParam<SsspSweepParam> {};

TEST_P(AsyncSsspSweep, MatchesDijkstra) {
  const auto [scale, use_b, scheme, nthreads] = GetParam();
  const rmat_params p = use_b ? rmat_b(scale) : rmat_a(scale);
  const csr32 g = add_weights(rmat_graph<vertex32>(p), scheme, 99);
  const auto ref = dijkstra_sssp(g, vertex32{0});
  const auto r = async_sssp(g, vertex32{0}, threads(nthreads));
  ASSERT_EQ(r.dist.size(), ref.dist.size());
  for (std::size_t v = 0; v < r.dist.size(); ++v) {
    ASSERT_EQ(r.dist[v], ref.dist[v]) << "vertex " << v;
  }
  EXPECT_TRUE(validate_distances(g, vertex32{0}, r.dist).ok);
  EXPECT_TRUE(validate_parents(g, vertex32{0}, r.dist, r.parent).ok);
}

INSTANTIATE_TEST_SUITE_P(
    RmatWeightVariants, AsyncSsspSweep,
    ::testing::Values(
        SsspSweepParam{8, false, weight_scheme::uniform, 1},
        SsspSweepParam{8, false, weight_scheme::uniform, 8},
        SsspSweepParam{8, false, weight_scheme::log_uniform, 8},
        SsspSweepParam{8, true, weight_scheme::uniform, 8},
        SsspSweepParam{8, true, weight_scheme::log_uniform, 8},
        SsspSweepParam{10, false, weight_scheme::uniform, 16},
        SsspSweepParam{10, false, weight_scheme::log_uniform, 16},
        SsspSweepParam{10, true, weight_scheme::uniform, 64},
        SsspSweepParam{10, true, weight_scheme::log_uniform, 64},
        SsspSweepParam{12, false, weight_scheme::uniform, 16},
        SsspSweepParam{12, true, weight_scheme::log_uniform, 16}));

TEST(AsyncSssp, DeterministicDistancesAcrossRuns) {
  const csr32 g =
      add_weights(rmat_graph<vertex32>(rmat_a(10)), weight_scheme::uniform, 3);
  const auto first = async_sssp(g, vertex32{0}, threads(16));
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(async_sssp(g, vertex32{0}, threads(16)).dist, first.dist);
  }
}

TEST(AsyncSssp, PriorityOrderDoesFewerRevisitsThanLifo) {
  // The prioritized queue is the paper's mechanism for keeping wasted
  // relaxations low; LIFO ordering must do at least as many visits.
  const csr32 g =
      add_weights(rmat_graph<vertex32>(rmat_a(10)), weight_scheme::uniform, 3);
  visitor_queue_config prio = threads(1);
  visitor_queue_config lifo = threads(1);
  lifo.order = queue_order::lifo;
  const auto a = async_sssp(g, vertex32{0}, prio);
  const auto b = async_sssp(g, vertex32{0}, lifo);
  EXPECT_EQ(a.dist, b.dist);
  EXPECT_LE(a.stats.visits, b.stats.visits);
}

}  // namespace
}  // namespace asyncgt
