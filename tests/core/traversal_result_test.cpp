#include "core/traversal_result.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace asyncgt {
namespace {

TEST(ShardedCounter, SumsAcrossShards) {
  sharded_counter c(4);
  c.add(0);
  c.add(1, 10);
  c.add(3, 5);
  EXPECT_EQ(c.total(), 16u);
}

TEST(ShardedCounter, ConcurrentShardsDoNotInterfere) {
  constexpr std::size_t kThreads = 8;
  sharded_counter c(kThreads);
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c, t] {
      for (int i = 0; i < 100000; ++i) c.add(t);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(c.total(), kThreads * 100000u);
}

TEST(BfsResult, VisitedCountAndMaxLevel) {
  bfs_result<vertex32> r;
  r.level = {0, 1, 2, infinite_distance<dist_t>, 2};
  EXPECT_EQ(r.visited_count(), 4u);
  EXPECT_EQ(r.max_level(), 2u);
}

TEST(BfsResult, EmptyResult) {
  bfs_result<vertex32> r;
  EXPECT_EQ(r.visited_count(), 0u);
  EXPECT_EQ(r.max_level(), 0u);
}

TEST(SsspResult, VisitedCount) {
  sssp_result<vertex32> r;
  r.dist = {0, 7, infinite_distance<dist_t>};
  EXPECT_EQ(r.visited_count(), 2u);
}

TEST(CcResult, ComponentCounting) {
  cc_result<vertex32> r;
  r.component = {0, 0, 2, 2, 2, 5};
  EXPECT_EQ(r.num_components(), 3u);
  EXPECT_EQ(r.largest_component_size(), 3u);
}

TEST(CcResult, SingletonComponents) {
  cc_result<vertex32> r;
  r.component = {0, 1, 2};
  EXPECT_EQ(r.num_components(), 3u);
  EXPECT_EQ(r.largest_component_size(), 1u);
}

TEST(CcResult, EmptyGraph) {
  cc_result<vertex32> r;
  EXPECT_EQ(r.num_components(), 0u);
  EXPECT_EQ(r.largest_component_size(), 0u);
}

TEST(QueueRunStats, ImbalanceCvOfEvenSpread) {
  queue_run_stats s;
  s.visits_per_queue = {100, 100, 100, 100};
  EXPECT_DOUBLE_EQ(s.load_imbalance_cv(), 0.0);
}

TEST(QueueRunStats, ImbalanceCvOfSkewedSpread) {
  queue_run_stats s;
  s.visits_per_queue = {400, 0, 0, 0};
  EXPECT_GT(s.load_imbalance_cv(), 1.5);
}

TEST(QueueRunStats, ToStringMentionsCounters) {
  queue_run_stats s;
  s.visits = 42;
  s.pushes = 99;
  const std::string str = s.to_string();
  EXPECT_NE(str.find("42"), std::string::npos);
  EXPECT_NE(str.find("99"), std::string::npos);
}

}  // namespace
}  // namespace asyncgt
