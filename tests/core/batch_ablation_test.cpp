// Satellite of the batched-delivery refactor: the mailbox flush batch is a
// pure performance knob. flush_batch=1 reproduces the seed's per-push
// delivery; every algorithm result must be bit-identical to the batched
// default (the label-correcting traversals converge to the same fixed point
// regardless of delivery order — paper §III-B's correctness argument does
// not depend on when parcels ship, only that they all arrive).
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "baselines/serial_bfs.hpp"
#include "core/async_bfs.hpp"
#include "core/async_cc.hpp"
#include "core/async_sssp.hpp"
#include "core/validate.hpp"
#include "gen/rmat.hpp"
#include "gen/weights.hpp"

namespace asyncgt {
namespace {

visitor_queue_config cfg_with(std::size_t threads, std::size_t batch) {
  visitor_queue_config cfg;
  cfg.num_threads = threads;
  cfg.flush_batch = batch;
  return cfg;
}

TEST(BatchAblation, BfsLevelsIdenticalAcrossFlushBatch) {
  for (const bool use_b : {false, true}) {
    const rmat_params p = use_b ? rmat_b(10) : rmat_a(10);
    const csr32 g = rmat_graph<vertex32>(p);
    const auto ref = serial_bfs(g, vertex32{0});
    for (const std::size_t batch : {1u, 64u}) {
      const auto r = async_bfs(g, vertex32{0}, cfg_with(8, batch));
      ASSERT_EQ(r.level, ref.level) << "batch=" << batch << " rmat_b=" << use_b;
      // Parents may differ between runs but must always form a valid tight
      // tree against the (identical) levels.
      EXPECT_TRUE(validate_parents(g, vertex32{0}, r.level, r.parent, true).ok)
          << "batch=" << batch;
    }
  }
}

TEST(BatchAblation, CcLabelsIdenticalAcrossFlushBatch) {
  const csr32 g = rmat_graph_undirected<vertex32>(rmat_a(10));
  const auto base = async_cc(g, cfg_with(8, 1));
  const auto batched = async_cc(g, cfg_with(8, 64));
  // CC labels every vertex with the minimum vertex id in its component —
  // a unique fixed point, so the full label vectors must match exactly.
  EXPECT_EQ(base.component, batched.component);
  EXPECT_EQ(base.num_components(), batched.num_components());
}

TEST(BatchAblation, SsspDistancesIdenticalAcrossFlushBatch) {
  const csr32 g =
      add_weights(rmat_graph<vertex32>(rmat_a(10)), weight_scheme::uniform, 7);
  const auto base = async_sssp(g, vertex32{0}, cfg_with(8, 1));
  const auto batched = async_sssp(g, vertex32{0}, cfg_with(8, 64));
  EXPECT_EQ(base.dist, batched.dist);
  EXPECT_TRUE(validate_distances(g, vertex32{0}, batched.dist, false).ok);
}

TEST(BatchAblation, OversubscribedBatchedRunStaysCorrect) {
  // The paper's oversubscription regime (many more threads than cores) with
  // batching on: frequent idle/flush cycles must not lose or duplicate work.
  const csr32 g = rmat_graph<vertex32>(rmat_a(9));
  const auto ref = serial_bfs(g, vertex32{0});
  const auto r = async_bfs(g, vertex32{0}, cfg_with(64, 64));
  EXPECT_EQ(r.level, ref.level);
}

}  // namespace
}  // namespace asyncgt
