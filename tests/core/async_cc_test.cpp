#include "core/async_cc.hpp"

#include <gtest/gtest.h>

#include "baselines/serial_cc.hpp"
#include "core/validate.hpp"
#include "gen/grid.hpp"
#include "gen/rmat.hpp"
#include "gen/webgen.hpp"
#include "graph/builder.hpp"

namespace asyncgt {
namespace {

visitor_queue_config threads(std::size_t n) {
  visitor_queue_config cfg;
  cfg.num_threads = n;
  return cfg;
}

csr32 two_triangles() {
  build_options opt;
  opt.symmetrize = true;
  return build_csr<vertex32>(
      6, {{0, 1, 1}, {1, 2, 1}, {2, 0, 1}, {3, 4, 1}, {4, 5, 1}, {5, 3, 1}},
      opt);
}

TEST(AsyncCc, TwoComponentsLabelled) {
  const auto r = async_cc(two_triangles(), threads(2));
  EXPECT_EQ(r.num_components(), 2u);
  for (vertex32 v = 0; v < 3; ++v) EXPECT_EQ(r.component[v], 0u);
  for (vertex32 v = 3; v < 6; ++v) EXPECT_EQ(r.component[v], 3u);
}

TEST(AsyncCc, IsolatedVerticesAreOwnComponents) {
  const csr32 g = build_csr<vertex32>(4, {});
  const auto r = async_cc(g, threads(4));
  EXPECT_EQ(r.num_components(), 4u);
  for (vertex32 v = 0; v < 4; ++v) EXPECT_EQ(r.component[v], v);
}

TEST(AsyncCc, EmptyGraph) {
  const csr32 g = build_csr<vertex32>(0, {});
  const auto r = async_cc(g, threads(2));
  EXPECT_EQ(r.num_components(), 0u);
}

TEST(AsyncCc, SingleGiantComponent) {
  const csr32 g = grid_graph<vertex32>(20, 20);
  const auto r = async_cc(g, threads(8));
  EXPECT_EQ(r.num_components(), 1u);
  EXPECT_EQ(r.largest_component_size(), 400u);
  for (const vertex32 c : r.component) EXPECT_EQ(c, 0u);
}

struct CcSweepParam {
  unsigned scale;
  bool rmat_b_preset;
  std::size_t threads;
};

class AsyncCcSweep : public ::testing::TestWithParam<CcSweepParam> {};

TEST_P(AsyncCcSweep, MatchesSerialCc) {
  const auto [scale, use_b, nthreads] = GetParam();
  const rmat_params p = use_b ? rmat_b(scale) : rmat_a(scale);
  const csr32 g = rmat_graph_undirected<vertex32>(p);
  const auto ref = serial_cc(g);
  const auto r = async_cc(g, threads(nthreads));
  EXPECT_EQ(r.component, ref.component);
  EXPECT_EQ(r.num_components(), ref.num_components());
  EXPECT_TRUE(validate_components(g, r.component).ok);
}

INSTANTIATE_TEST_SUITE_P(
    RmatVariants, AsyncCcSweep,
    ::testing::Values(CcSweepParam{8, false, 1}, CcSweepParam{8, false, 8},
                      CcSweepParam{8, true, 8}, CcSweepParam{10, false, 16},
                      CcSweepParam{10, true, 16}, CcSweepParam{10, true, 64},
                      CcSweepParam{12, false, 16},
                      CcSweepParam{12, true, 16}));

TEST(AsyncCc, WebGraphMatchesSerial) {
  webgen_params p;
  p.num_hosts = 120;
  p.max_host_size = 128;
  const csr32 g = webgen_graph<vertex32>(p);
  const auto ref = serial_cc(g);
  const auto r = async_cc(g, threads(16));
  EXPECT_EQ(r.component, ref.component);
}

TEST(AsyncCc, DeterministicAcrossRuns) {
  const csr32 g = rmat_graph_undirected<vertex32>(rmat_b(10));
  const auto first = async_cc(g, threads(16));
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(async_cc(g, threads(16)).component, first.component);
  }
}

TEST(AsyncCc, VisitsAtLeastOnePerVertex) {
  // Every vertex is seeded, so visits >= n even if most relax to no-ops.
  const csr32 g = two_triangles();
  const auto r = async_cc(g, threads(4));
  EXPECT_GE(r.stats.visits, g.num_vertices());
}

TEST(AsyncCc, LargestComponentSizeOnMixedGraph) {
  // Triangle + edge + isolated vertex.
  build_options opt;
  opt.symmetrize = true;
  const csr32 g =
      build_csr<vertex32>(6, {{0, 1, 1}, {1, 2, 1}, {2, 0, 1}, {3, 4, 1}},
                          opt);
  const auto r = async_cc(g, threads(2));
  EXPECT_EQ(r.num_components(), 3u);
  EXPECT_EQ(r.largest_component_size(), 3u);
}

}  // namespace
}  // namespace asyncgt
