#include "core/graph_metrics.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "core/multi_source_bfs.hpp"
#include "baselines/serial_bfs.hpp"
#include "gen/grid.hpp"
#include "gen/rmat.hpp"
#include "graph/builder.hpp"

namespace asyncgt {
namespace {

visitor_queue_config threads(std::size_t n) {
  visitor_queue_config cfg;
  cfg.num_threads = n;
  return cfg;
}

TEST(MultiSourceBfs, SingleSourceMatchesBfs) {
  const csr32 g = rmat_graph<vertex32>(rmat_a(8));
  const auto single = serial_bfs(g, vertex32{0});
  const auto multi = async_multi_source_bfs(g, {0}, threads(4));
  EXPECT_EQ(multi.level, single.level);
}

TEST(MultiSourceBfs, NearestSourceWins) {
  // Chain 0-1-2-3-4-5-6 (undirected), sources {0, 6}.
  const csr32 g = chain_graph<vertex32>(7, /*undirected=*/true);
  const auto r = async_multi_source_bfs(g, {0, 6}, threads(2));
  EXPECT_EQ(r.level, (std::vector<dist_t>{0, 1, 2, 3, 2, 1, 0}));
}

TEST(MultiSourceBfs, ParentForestRootsAtSources) {
  const csr32 g = chain_graph<vertex32>(7, true);
  const auto r = async_multi_source_bfs(g, {0, 6}, threads(2));
  EXPECT_EQ(r.parent[0], 0u);
  EXPECT_EQ(r.parent[6], 6u);
  EXPECT_EQ(r.parent[1], 0u);
  EXPECT_EQ(r.parent[5], 6u);
}

TEST(MultiSourceBfs, EmptySourcesRejected) {
  const csr32 g = chain_graph<vertex32>(3, true);
  EXPECT_THROW(async_multi_source_bfs(g, {}, threads(1)),
               std::invalid_argument);
  EXPECT_THROW(async_multi_source_bfs(g, {9}, threads(1)), std::out_of_range);
}

TEST(MultiSourceBfs, AllVerticesAsSourcesGivesZeros) {
  const csr32 g = grid_graph<vertex32>(4, 4);
  std::vector<vertex32> all(16);
  std::iota(all.begin(), all.end(), 0u);
  const auto r = async_multi_source_bfs(g, all, threads(4));
  for (const auto l : r.level) EXPECT_EQ(l, 0u);
}

TEST(Eccentricity, GridCorner) {
  const csr32 g = grid_graph<vertex32>(5, 4);
  EXPECT_EQ(eccentricity(g, vertex32{0}, threads(2)), 4u + 3u);
}

TEST(EstimateDiameter, ExactOnPath) {
  // Double sweep is exact on trees; a path of 50 has diameter 49.
  const csr32 g = chain_graph<vertex32>(50, true);
  const auto est = estimate_diameter(g, 1, 3, threads(2));
  EXPECT_EQ(est.lower_bound, 49u);
  EXPECT_EQ(est.sweeps, 2u);
}

TEST(EstimateDiameter, LowerBoundsGridDiameter) {
  const csr32 g = grid_graph<vertex32>(10, 10);
  const auto est = estimate_diameter(g, 3, 7, threads(2));
  EXPECT_LE(est.lower_bound, 18u);  // true diameter
  EXPECT_GE(est.lower_bound, 9u);   // sweep finds at least a corner-ish path
}

TEST(EstimateDiameter, SmallWorldIsSmall) {
  // The paper's "small diameter" property on scale-free graphs.
  const csr32 g = rmat_graph_undirected<vertex32>(rmat_a(10));
  const auto est = estimate_diameter(g, 2, 5, threads(8));
  EXPECT_LE(est.lower_bound, 12u);
  EXPECT_GE(est.lower_bound, 2u);
}

TEST(EstimateDiameter, EmptyGraph) {
  const csr32 g = build_csr<vertex32>(0, {});
  EXPECT_EQ(estimate_diameter(g).lower_bound, 0u);
}

TEST(AveragePathLength, PathGraphKnownValue) {
  // On an undirected path of 3 (0-1-2) from any source the mean finite
  // distance is within [1, 1.5]; sampled estimate must land there.
  const csr32 g = chain_graph<vertex32>(3, true);
  const double apl = average_path_length_sampled(g, 8, 3, threads(2));
  EXPECT_GE(apl, 1.0);
  EXPECT_LE(apl, 1.5);
}

TEST(AveragePathLength, ScaleFreeShorterThanGrid) {
  const csr32 sf = rmat_graph_undirected<vertex32>(rmat_a(9));
  const csr32 gr = grid_graph<vertex32>(23, 23);  // ~same vertex count
  const double apl_sf = average_path_length_sampled(sf, 3, 1, threads(4));
  const double apl_gr = average_path_length_sampled(gr, 3, 1, threads(4));
  EXPECT_LT(apl_sf, apl_gr);
}

}  // namespace
}  // namespace asyncgt
