#include "core/checkpoint.hpp"

#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <random>

#include "baselines/serial_bfs.hpp"
#include "baselines/serial_sssp.hpp"
#include "gen/rmat.hpp"
#include "gen/weights.hpp"
#include "util/crc32.hpp"

namespace asyncgt {
namespace {

class CheckpointTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("agt_ckpt_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::string path(const std::string& name) const {
    return (dir_ / name).string();
  }
  std::filesystem::path dir_;
};

visitor_queue_config threads(std::size_t n) {
  visitor_queue_config cfg;
  cfg.num_threads = n;
  return cfg;
}

TEST(Crc32, KnownVectors) {
  // "123456789" -> 0xCBF43926 is the canonical CRC-32 check value.
  EXPECT_EQ(crc32::of("123456789", 9), 0xCBF43926u);
  EXPECT_EQ(crc32::of("", 0), 0x00000000u);
}

TEST(Crc32, IncrementalEqualsOneShot) {
  const char data[] = "the quick brown fox jumps over the lazy dog";
  crc32 inc;
  inc.update(data, 10);
  inc.update(data + 10, sizeof(data) - 1 - 10);
  EXPECT_EQ(inc.value(), crc32::of(data, sizeof(data) - 1));
}

TEST(Crc32, DetectsSingleBitFlip) {
  std::vector<std::uint8_t> buf(1024, 0xAB);
  const std::uint32_t clean = crc32::of(buf.data(), buf.size());
  buf[512] ^= 0x01;
  EXPECT_NE(crc32::of(buf.data(), buf.size()), clean);
}

TEST_F(CheckpointTest, SaveLoadRoundTrip) {
  traversal_checkpoint<vertex32> cp;
  cp.kind = checkpoint_kind::sssp;
  cp.label = {0, 5, infinite_distance<dist_t>, 9};
  cp.parent = {0, 0, invalid_vertex<vertex32>, 1};
  save_checkpoint(path("s.ckpt"), cp);
  const auto loaded =
      load_checkpoint<vertex32>(path("s.ckpt"), checkpoint_kind::sssp);
  EXPECT_EQ(loaded.label, cp.label);
  EXPECT_EQ(loaded.parent, cp.parent);
}

TEST_F(CheckpointTest, KindMismatchRejected) {
  traversal_checkpoint<vertex32> cp;
  cp.kind = checkpoint_kind::bfs;
  cp.label = {0};
  cp.parent = {0};
  save_checkpoint(path("k.ckpt"), cp);
  EXPECT_THROW(
      load_checkpoint<vertex32>(path("k.ckpt"), checkpoint_kind::sssp),
      std::runtime_error);
}

TEST_F(CheckpointTest, WidthMismatchRejected) {
  traversal_checkpoint<vertex32> cp;
  cp.label = {0};
  cp.parent = {0};
  save_checkpoint(path("w.ckpt"), cp);
  EXPECT_THROW(
      load_checkpoint<vertex64>(path("w.ckpt"), checkpoint_kind::bfs),
      std::runtime_error);
}

TEST_F(CheckpointTest, TornFileFailsCrc) {
  traversal_checkpoint<vertex32> cp;
  cp.label.assign(1000, 3);
  cp.parent.assign(1000, 1);
  save_checkpoint(path("t.ckpt"), cp);
  std::filesystem::resize_file(path("t.ckpt"),
                               std::filesystem::file_size(path("t.ckpt")) -
                                   64);
  EXPECT_THROW(
      load_checkpoint<vertex32>(path("t.ckpt"), checkpoint_kind::bfs),
      std::runtime_error);
}

TEST_F(CheckpointTest, CorruptedByteFailsCrc) {
  traversal_checkpoint<vertex32> cp;
  cp.label.assign(100, 7);
  cp.parent.assign(100, 2);
  save_checkpoint(path("c.ckpt"), cp);
  // Flip one byte in the middle of the payload.
  std::FILE* f = std::fopen(path("c.ckpt").c_str(), "r+b");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 200, SEEK_SET);
  std::fputc(0x5A, f);
  std::fclose(f);
  EXPECT_THROW(
      load_checkpoint<vertex32>(path("c.ckpt"), checkpoint_kind::bfs),
      std::runtime_error);
}

// Simulates a crash: take a completed run, erase the labels of a random
// subset of vertices back to "unvisited" (a conservative stand-in for any
// intermediate state — labels present are exact, labels missing are lost),
// checkpoint, resume, and require the exact full-run fixed point.
TEST_F(CheckpointTest, ResumeBfsFromPartialState) {
  const csr32 g = rmat_graph<vertex32>(rmat_a(9));
  const auto full = serial_bfs(g, vertex32{0});
  std::mt19937 rng(5);
  traversal_checkpoint<vertex32> cp;
  cp.kind = checkpoint_kind::bfs;
  cp.label = full.level;
  cp.parent = full.parent;
  for (std::size_t v = 1; v < cp.label.size(); ++v) {
    if (rng() % 2 == 0) {
      cp.label[v] = infinite_distance<dist_t>;
      cp.parent[v] = invalid_vertex<vertex32>;
    }
  }
  save_checkpoint(path("b.ckpt"), cp);
  const auto loaded =
      load_checkpoint<vertex32>(path("b.ckpt"), checkpoint_kind::bfs);
  const auto resumed = resume_bfs(g, loaded, threads(8));
  EXPECT_EQ(resumed.level, full.level);
}

TEST_F(CheckpointTest, ResumeSsspFromPartialState) {
  const csr32 g =
      add_weights(rmat_graph<vertex32>(rmat_a(9)), weight_scheme::uniform, 2);
  const auto full = dijkstra_sssp(g, vertex32{0});
  std::mt19937 rng(11);
  traversal_checkpoint<vertex32> cp;
  cp.kind = checkpoint_kind::sssp;
  cp.label = full.dist;
  cp.parent = full.parent;
  for (std::size_t v = 1; v < cp.label.size(); ++v) {
    if (rng() % 3 == 0) {
      cp.label[v] = infinite_distance<dist_t>;
      cp.parent[v] = invalid_vertex<vertex32>;
    }
  }
  save_checkpoint(path("s2.ckpt"), cp);
  const auto loaded =
      load_checkpoint<vertex32>(path("s2.ckpt"), checkpoint_kind::sssp);
  const auto resumed = resume_sssp(g, loaded, threads(8));
  EXPECT_EQ(resumed.dist, full.dist);
}

TEST_F(CheckpointTest, ResumeWithStaleTooHighLabelsStillConverges) {
  // Labels in a checkpoint might be non-final (too high) if the snapshot
  // was taken mid-run; label correction must push them down to the fixed
  // point. Simulate by inflating a subset of finite labels.
  const csr32 g =
      add_weights(rmat_graph<vertex32>(rmat_b(9)), weight_scheme::uniform, 4);
  const auto full = dijkstra_sssp(g, vertex32{0});
  std::mt19937 rng(13);
  traversal_checkpoint<vertex32> cp;
  cp.kind = checkpoint_kind::sssp;
  cp.label = full.dist;
  cp.parent = full.parent;
  // NOTE: inflating a label invalidates its parent edge tightness; resume
  // fixes labels, and parents follow the corrected labels.
  std::size_t inflated = 0;
  for (std::size_t v = 1; v < cp.label.size(); ++v) {
    if (cp.label[v] != infinite_distance<dist_t> && rng() % 4 == 0) {
      cp.label[v] += 1 + rng() % 1000;
      ++inflated;
    }
  }
  ASSERT_GT(inflated, 0u);
  const auto resumed = resume_sssp(g, cp, threads(8));
  EXPECT_EQ(resumed.dist, full.dist);
}

TEST_F(CheckpointTest, ResumeSizeMismatchRejected) {
  const csr32 g = rmat_graph<vertex32>(rmat_a(6));
  traversal_checkpoint<vertex32> cp;
  cp.label = {0};
  cp.parent = {0};
  EXPECT_THROW(resume_bfs(g, cp, threads(1)), std::invalid_argument);
}

}  // namespace
}  // namespace asyncgt
