#include "core/validate.hpp"

#include <gtest/gtest.h>

#include "graph/builder.hpp"

namespace asyncgt {
namespace {

csr32 weighted_diamond() {
  // 0 -(1)-> 1 -(1)-> 3, 0 -(3)-> 2 -(1)-> 3
  return build_csr<vertex32>(4, {{0, 1, 1}, {1, 3, 1}, {0, 2, 3}, {2, 3, 1}});
}

TEST(ValidateDistances, AcceptsCorrectLabels) {
  const csr32 g = weighted_diamond();
  const std::vector<dist_t> dist{0, 1, 3, 2};
  EXPECT_TRUE(validate_distances(g, vertex32{0}, dist).ok);
}

TEST(ValidateDistances, RejectsRelaxableEdge) {
  const csr32 g = weighted_diamond();
  const std::vector<dist_t> dist{0, 1, 3, 5};  // 3 is relaxable via 1
  const auto v = validate_distances(g, vertex32{0}, dist);
  EXPECT_FALSE(v.ok);
  EXPECT_NE(v.error.find("relaxable"), std::string::npos);
}

TEST(ValidateDistances, RejectsUnattainableLabel) {
  const csr32 g = weighted_diamond();
  const std::vector<dist_t> dist{0, 1, 2, 2};  // 2 claims dist 2, no witness
  EXPECT_FALSE(validate_distances(g, vertex32{0}, dist).ok);
}

TEST(ValidateDistances, RejectsNonZeroSource) {
  const csr32 g = weighted_diamond();
  std::vector<dist_t> dist{1, 2, 4, 3};
  EXPECT_FALSE(validate_distances(g, vertex32{0}, dist).ok);
}

TEST(ValidateDistances, RejectsSizeMismatch) {
  const csr32 g = weighted_diamond();
  EXPECT_FALSE(validate_distances(g, vertex32{0}, {0, 1}).ok);
}

TEST(ValidateDistances, AcceptsUnreachableInfinity) {
  const csr32 g = build_csr<vertex32>(3, {{0, 1, 2}});
  const std::vector<dist_t> dist{0, 2, infinite_distance<dist_t>};
  EXPECT_TRUE(validate_distances(g, vertex32{0}, dist).ok);
}

TEST(ValidateDistances, UnitWeightModeIgnoresWeights) {
  const csr32 g = build_csr<vertex32>(2, {{0, 1, 100}});
  EXPECT_TRUE(validate_distances(g, vertex32{0}, {0, 1}, true).ok);
  EXPECT_FALSE(validate_distances(g, vertex32{0}, {0, 100}, true).ok);
}

TEST(ValidateParents, AcceptsTightTree) {
  const csr32 g = weighted_diamond();
  const std::vector<dist_t> dist{0, 1, 3, 2};
  const std::vector<vertex32> par{0, 0, 0, 1};
  EXPECT_TRUE(validate_parents(g, vertex32{0}, dist, par).ok);
}

TEST(ValidateParents, RejectsLooseParentEdge) {
  const csr32 g = weighted_diamond();
  const std::vector<dist_t> dist{0, 1, 3, 2};
  const std::vector<vertex32> par{0, 0, 0, 2};  // dist[2]+1 = 4 != 2
  EXPECT_FALSE(validate_parents(g, vertex32{0}, dist, par).ok);
}

TEST(ValidateParents, RejectsParentOnUnreachedVertex) {
  const csr32 g = build_csr<vertex32>(3, {{0, 1, 1}});
  const std::vector<dist_t> dist{0, 1, infinite_distance<dist_t>};
  const std::vector<vertex32> par{0, 0, 0};  // vertex 2 unreached but parented
  EXPECT_FALSE(validate_parents(g, vertex32{0}, dist, par).ok);
}

TEST(ValidateParents, RejectsWrongSourceParent) {
  const csr32 g = build_csr<vertex32>(2, {{0, 1, 1}});
  const std::vector<dist_t> dist{0, 1};
  const std::vector<vertex32> par{1, 0};
  EXPECT_FALSE(validate_parents(g, vertex32{0}, dist, par).ok);
}

csr32 undirected_pair_plus_isolated() {
  build_options opt;
  opt.symmetrize = true;
  return build_csr<vertex32>(3, {{0, 1, 1}}, opt);
}

TEST(ValidateComponents, AcceptsMinimumLabels) {
  const csr32 g = undirected_pair_plus_isolated();
  EXPECT_TRUE(validate_components(g, {0, 0, 2}).ok);
}

TEST(ValidateComponents, RejectsCrossEdgeLabels) {
  const csr32 g = undirected_pair_plus_isolated();
  const auto v = validate_components(g, {0, 1, 2});
  EXPECT_FALSE(v.ok);
}

TEST(ValidateComponents, RejectsNonMinimumLabel) {
  const csr32 g = undirected_pair_plus_isolated();
  // Consistent across edges but label 1 is not the component minimum.
  EXPECT_FALSE(validate_components(g, {1, 1, 2}).ok);
}

TEST(ValidateComponents, RejectsSizeMismatch) {
  const csr32 g = undirected_pair_plus_isolated();
  EXPECT_FALSE(validate_components(g, {0, 0}).ok);
}

}  // namespace
}  // namespace asyncgt
