#include "util/barrier.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace asyncgt {
namespace {

TEST(ThreadBarrier, SingleParticipantNeverBlocks) {
  thread_barrier b(1);
  EXPECT_TRUE(b.arrive_and_wait());
  EXPECT_TRUE(b.arrive_and_wait());
  EXPECT_EQ(b.crossings(), 2u);
}

TEST(ThreadBarrier, ExactlyOneSerialThreadPerGeneration) {
  constexpr std::size_t kThreads = 8;
  constexpr int kRounds = 50;
  thread_barrier b(kThreads);
  std::atomic<int> serial_count{0};
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int r = 0; r < kRounds; ++r) {
        if (b.arrive_and_wait()) serial_count.fetch_add(1);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(serial_count.load(), kRounds);
  EXPECT_EQ(b.crossings(), static_cast<std::uint64_t>(kRounds));
}

TEST(ThreadBarrier, SynchronizesPhases) {
  // No thread may enter phase p+1 before all threads finished phase p.
  constexpr std::size_t kThreads = 6;
  constexpr int kRounds = 30;
  thread_barrier b(kThreads);
  std::atomic<int> in_phase{0};
  std::atomic<bool> violation{false};
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int r = 0; r < kRounds; ++r) {
        in_phase.fetch_add(1);
        b.arrive_and_wait();
        // All kThreads must have incremented before anyone proceeds.
        if (in_phase.load() < static_cast<int>(kThreads) * (r + 1)) {
          violation.store(true);
        }
        b.arrive_and_wait();
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_FALSE(violation.load());
}

TEST(ThreadBarrier, ReportsParties) {
  thread_barrier b(5);
  EXPECT_EQ(b.parties(), 5u);
}

}  // namespace
}  // namespace asyncgt
