#include "util/table.hpp"

#include <gtest/gtest.h>

namespace asyncgt {
namespace {

TEST(TextTable, RendersHeaderAndRows) {
  text_table t;
  t.header({"graph", "time (s)"});
  t.row({"rmat-a", "1.234"});
  t.row({"rmat-b", "0.5"});
  const std::string out = t.render();
  EXPECT_NE(out.find("graph"), std::string::npos);
  EXPECT_NE(out.find("rmat-a"), std::string::npos);
  EXPECT_NE(out.find("1.234"), std::string::npos);
}

TEST(TextTable, ColumnsAligned) {
  text_table t;
  t.header({"a", "b"});
  t.row({"xxxxxx", "y"});
  const std::string out = t.render();
  // Every line should have the same length (fixed-width rendering).
  std::size_t first_len = std::string::npos;
  std::size_t pos = 0;
  while (pos < out.size()) {
    const std::size_t nl = out.find('\n', pos);
    const std::size_t len = nl - pos;
    if (first_len == std::string::npos) first_len = len;
    EXPECT_EQ(len, first_len);
    pos = nl + 1;
  }
}

TEST(TextTable, RowArityMismatchThrows) {
  text_table t;
  t.header({"a", "b"});
  EXPECT_THROW(t.row({"only-one"}), std::invalid_argument);
}

TEST(TextTable, DoubleHeaderThrows) {
  text_table t;
  t.header({"a"});
  EXPECT_THROW(t.header({"b"}), std::logic_error);
}

TEST(FmtHelpers, Seconds) {
  EXPECT_EQ(fmt_seconds(1.2345), "1.234");
  EXPECT_EQ(fmt_seconds(-1.0), "n/a");
}

TEST(FmtHelpers, Ratio) {
  EXPECT_EQ(fmt_ratio(2.5), "2.50x");
  EXPECT_EQ(fmt_ratio(std::numeric_limits<double>::infinity()), "n/a");
}

TEST(FmtHelpers, CountGrouping) {
  EXPECT_EQ(fmt_count(0), "0");
  EXPECT_EQ(fmt_count(999), "999");
  EXPECT_EQ(fmt_count(1000), "1,000");
  EXPECT_EQ(fmt_count(1234567), "1,234,567");
}

}  // namespace
}  // namespace asyncgt
