#include "util/spinlock.hpp"

#include <gtest/gtest.h>

#include <mutex>
#include <thread>
#include <vector>

namespace asyncgt {
namespace {

TEST(Spinlock, LockUnlockSingleThread) {
  spinlock l;
  l.lock();
  l.unlock();
  l.lock();
  l.unlock();
}

TEST(Spinlock, TryLockSucceedsWhenFree) {
  spinlock l;
  EXPECT_TRUE(l.try_lock());
  l.unlock();
}

TEST(Spinlock, TryLockFailsWhenHeld) {
  spinlock l;
  l.lock();
  EXPECT_FALSE(l.try_lock());
  l.unlock();
  EXPECT_TRUE(l.try_lock());
  l.unlock();
}

TEST(Spinlock, WorksWithLockGuard) {
  spinlock l;
  {
    std::lock_guard guard(l);
    EXPECT_FALSE(l.try_lock());
  }
  EXPECT_TRUE(l.try_lock());
  l.unlock();
}

TEST(Spinlock, MutualExclusionUnderContention) {
  spinlock l;
  std::int64_t counter = 0;
  constexpr int kThreads = 8;
  constexpr int kIters = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        std::lock_guard guard(l);
        ++counter;  // data race iff the lock is broken
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(counter, static_cast<std::int64_t>(kThreads) * kIters);
}

TEST(Spinlock, OversubscribedContention) {
  // More threads than cores: exercises the yield path in backoff.
  spinlock l;
  std::int64_t counter = 0;
  constexpr int kThreads = 32;
  constexpr int kIters = 2000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        std::lock_guard guard(l);
        ++counter;
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(counter, static_cast<std::int64_t>(kThreads) * kIters);
}

}  // namespace
}  // namespace asyncgt
