#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace asyncgt {
namespace {

TEST(SummaryStats, EmptyIsZero) {
  summary_stats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.stddev(), 0.0);
  EXPECT_EQ(s.min(), 0.0);
  EXPECT_EQ(s.max(), 0.0);
}

TEST(SummaryStats, SingleValue) {
  summary_stats s;
  s.add(42.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_EQ(s.mean(), 42.0);
  EXPECT_EQ(s.min(), 42.0);
  EXPECT_EQ(s.max(), 42.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(SummaryStats, KnownSequence) {
  summary_stats s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
  // Sample variance of the sequence is 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
}

TEST(SummaryStats, NegativeValues) {
  summary_stats s;
  s.add(-3.0);
  s.add(3.0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.min(), -3.0);
  EXPECT_EQ(s.max(), 3.0);
  EXPECT_EQ(s.cv(), 0.0);  // mean 0 -> defined as 0
}

TEST(SummaryStats, CvOfConstantIsZero) {
  summary_stats s;
  for (int i = 0; i < 10; ++i) s.add(5.0);
  EXPECT_DOUBLE_EQ(s.cv(), 0.0);
}

TEST(Log2Histogram, BucketsByPowerOfTwo) {
  log2_histogram h;
  h.add(0);
  h.add(1);
  h.add(2);
  h.add(3);
  h.add(4);
  h.add(1023);
  h.add(1024);
  EXPECT_EQ(h.bucket_count(0), 2u);  // 0 and 1
  EXPECT_EQ(h.bucket_count(1), 2u);  // 2, 3
  EXPECT_EQ(h.bucket_count(2), 1u);  // 4
  EXPECT_EQ(h.bucket_count(9), 1u);  // 512..1023
  EXPECT_EQ(h.bucket_count(10), 1u); // 1024..2047
  EXPECT_EQ(h.total(), 7u);
}

TEST(Log2Histogram, OutOfRangeBucketIsZero) {
  log2_histogram h;
  h.add(5);
  EXPECT_EQ(h.bucket_count(50), 0u);
}

TEST(Percentile, MedianAndExtremes) {
  std::vector<double> v{5.0, 1.0, 3.0, 2.0, 4.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50), 3.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100), 5.0);
}

TEST(Percentile, InterpolatesBetweenRanks) {
  std::vector<double> v{0.0, 10.0};
  EXPECT_DOUBLE_EQ(percentile(v, 50), 5.0);
  EXPECT_DOUBLE_EQ(percentile(v, 25), 2.5);
}

TEST(Percentile, EmptyReturnsZero) {
  EXPECT_EQ(percentile({}, 50), 0.0);
}

}  // namespace
}  // namespace asyncgt
