#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <vector>

namespace asyncgt {
namespace {

TEST(Splitmix64, DeterministicForSeed) {
  splitmix64 a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Splitmix64, DifferentSeedsDiverge) {
  splitmix64 a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (a.next() == b.next());
  EXPECT_EQ(equal, 0);
}

TEST(Splitmix64, KnownVector) {
  // Reference values for seed 0 from the public-domain splitmix64.c.
  splitmix64 g(0);
  EXPECT_EQ(g.next(), 0xE220A8397B1DCDAFULL);
  EXPECT_EQ(g.next(), 0x6E789E6AA1B965F4ULL);
  EXPECT_EQ(g.next(), 0x06C45D188009454FULL);
}

TEST(Xoshiro, DeterministicForSeed) {
  xoshiro256ss a(99), b(99);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Xoshiro, NextDoubleInUnitInterval) {
  xoshiro256ss g(7);
  for (int i = 0; i < 10000; ++i) {
    const double d = g.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Xoshiro, NextBelowRespectsBound) {
  xoshiro256ss g(13);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 17ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 1000; ++i) {
      EXPECT_LT(g.next_below(bound), bound);
    }
  }
}

TEST(Xoshiro, NextBelowCoversRange) {
  xoshiro256ss g(5);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(g.next_below(10));
  EXPECT_EQ(seen.size(), 10u);  // all residues hit with overwhelming prob.
}

TEST(Xoshiro, NextBelowRoughlyUniform) {
  xoshiro256ss g(17);
  constexpr int kBuckets = 16;
  constexpr int kSamples = 160000;
  std::vector<int> counts(kBuckets, 0);
  for (int i = 0; i < kSamples; ++i) ++counts[g.next_below(kBuckets)];
  const double expected = static_cast<double>(kSamples) / kBuckets;
  for (const int c : counts) {
    EXPECT_NEAR(c, expected, expected * 0.1);  // 10% tolerance, ~30 sigma
  }
}

TEST(Xoshiro, SatisfiesUniformRandomBitGenerator) {
  static_assert(xoshiro256ss::min() == 0);
  static_assert(xoshiro256ss::max() == ~0ULL);
  xoshiro256ss g(1);
  (void)g();  // callable
}

}  // namespace
}  // namespace asyncgt
