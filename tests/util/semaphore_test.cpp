#include "util/semaphore.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

namespace asyncgt {
namespace {

TEST(BoundedSemaphore, TryAcquireRespectsCount) {
  bounded_semaphore sem(2);
  EXPECT_TRUE(sem.try_acquire());
  EXPECT_TRUE(sem.try_acquire());
  EXPECT_FALSE(sem.try_acquire());
  sem.release();
  EXPECT_TRUE(sem.try_acquire());
  sem.release();
  sem.release();
}

TEST(BoundedSemaphore, AcquireBlocksUntilRelease) {
  bounded_semaphore sem(1);
  sem.acquire();
  std::atomic<bool> acquired{false};
  std::thread waiter([&] {
    sem.acquire();
    acquired.store(true);
    sem.release();
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(acquired.load());
  sem.release();
  waiter.join();
  EXPECT_TRUE(acquired.load());
}

TEST(BoundedSemaphore, BoundsConcurrentHolders) {
  constexpr std::int64_t kLimit = 4;
  bounded_semaphore sem(kLimit);
  std::atomic<std::int64_t> inside{0};
  std::atomic<std::int64_t> max_inside{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 16; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 200; ++i) {
        semaphore_guard guard(sem);
        const std::int64_t now = inside.fetch_add(1) + 1;
        std::int64_t seen = max_inside.load();
        while (now > seen && !max_inside.compare_exchange_weak(seen, now)) {
        }
        inside.fetch_sub(1);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_LE(max_inside.load(), kLimit);
  EXPECT_LE(sem.high_water_mark(), kLimit);
  EXPECT_GE(sem.high_water_mark(), 1);
}

TEST(BoundedSemaphore, HighWaterMarkTracksPeak) {
  bounded_semaphore sem(3);
  sem.acquire();
  sem.acquire();
  EXPECT_EQ(sem.high_water_mark(), 2);
  sem.release();
  sem.acquire();  // back to 2 concurrent, peak unchanged
  EXPECT_EQ(sem.high_water_mark(), 2);
  sem.acquire();
  EXPECT_EQ(sem.high_water_mark(), 3);
  sem.release();
  sem.release();
  sem.release();
}

}  // namespace
}  // namespace asyncgt
