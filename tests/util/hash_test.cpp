#include "util/hash.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

namespace asyncgt {
namespace {

TEST(Mix64, BijectiveOnSamples) {
  // mix64 is invertible; distinct inputs must map to distinct outputs.
  std::vector<std::uint64_t> outs;
  for (std::uint64_t i = 0; i < 10000; ++i) outs.push_back(mix64(i));
  std::sort(outs.begin(), outs.end());
  EXPECT_EQ(std::adjacent_find(outs.begin(), outs.end()), outs.end());
}

TEST(Mix64, AvalanchesLowBits) {
  // Flipping one input bit should flip roughly half the output bits.
  int total_flips = 0;
  constexpr int kTrials = 256;
  for (std::uint64_t i = 0; i < kTrials; ++i) {
    const std::uint64_t a = mix64(i);
    const std::uint64_t b = mix64(i ^ 1);
    total_flips += __builtin_popcountll(a ^ b);
  }
  const double mean_flips = static_cast<double>(total_flips) / kTrials;
  EXPECT_GT(mean_flips, 24.0);
  EXPECT_LT(mean_flips, 40.0);
}

TEST(Mix32, BijectiveOnSamples) {
  std::vector<std::uint32_t> outs;
  for (std::uint32_t i = 0; i < 10000; ++i) outs.push_back(mix32(i));
  std::sort(outs.begin(), outs.end());
  EXPECT_EQ(std::adjacent_find(outs.begin(), outs.end()), outs.end());
}

TEST(QueueOf, InRange) {
  for (std::size_t q : {1, 2, 3, 7, 16, 512}) {
    for (std::uint32_t v = 0; v < 1000; ++v) {
      EXPECT_LT(queue_of(v, q), q);
      EXPECT_LT((queue_of<std::uint64_t>(v, q)), q);
    }
  }
}

TEST(QueueOf, Deterministic) {
  for (std::uint32_t v = 0; v < 100; ++v) {
    EXPECT_EQ(queue_of(v, 16), queue_of(v, 16));
  }
}

TEST(QueueOf, SequentialIdsSpreadAcrossQueues) {
  // Sequential ids — the layout where hubs cluster — must not all land on
  // the same few queues. Expect every queue hit and a near-uniform spread.
  constexpr std::size_t kQueues = 16;
  std::vector<int> counts(kQueues, 0);
  constexpr int kIds = 16000;
  for (std::uint32_t v = 0; v < kIds; ++v) ++counts[queue_of(v, kQueues)];
  const double expected = static_cast<double>(kIds) / kQueues;
  for (const int c : counts) {
    EXPECT_GT(c, expected * 0.8);
    EXPECT_LT(c, expected * 1.2);
  }
}

TEST(QueueOfIdentity, IsModulo) {
  EXPECT_EQ(queue_of_identity(std::uint32_t{17}, 16), 1u);
  EXPECT_EQ(queue_of_identity(std::uint64_t{32}, 16), 0u);
}

}  // namespace
}  // namespace asyncgt
