#include "util/options.hpp"

#include <gtest/gtest.h>

namespace asyncgt {
namespace {

options parse(std::initializer_list<const char*> args) {
  std::vector<const char*> argv{"prog"};
  argv.insert(argv.end(), args.begin(), args.end());
  return options(static_cast<int>(argv.size()), argv.data());
}

TEST(Options, EqualsForm) {
  const auto o = parse({"--scale=20", "--device=intel"});
  EXPECT_EQ(o.get_int("scale", 0), 20);
  EXPECT_EQ(o.get_string("device", ""), "intel");
}

TEST(Options, SpaceForm) {
  const auto o = parse({"--scale", "18"});
  EXPECT_EQ(o.get_int("scale", 0), 18);
}

TEST(Options, BooleanFlagForm) {
  const auto o = parse({"--verbose"});
  EXPECT_TRUE(o.get_bool("verbose", false));
  EXPECT_TRUE(o.has("verbose"));
  EXPECT_FALSE(o.has("quiet"));
}

TEST(Options, FallbacksWhenAbsent) {
  const auto o = parse({});
  EXPECT_EQ(o.get_int("missing", 7), 7);
  EXPECT_EQ(o.get_string("missing", "x"), "x");
  EXPECT_DOUBLE_EQ(o.get_double("missing", 2.5), 2.5);
  EXPECT_FALSE(o.get_bool("missing", false));
}

TEST(Options, DoubleParsing) {
  const auto o = parse({"--scale-factor=0.05"});
  EXPECT_DOUBLE_EQ(o.get_double("scale-factor", 1.0), 0.05);
}

TEST(Options, IntListParsing) {
  const auto o = parse({"--threads=1,2,4,8"});
  const auto v = o.get_int_list("threads", {});
  ASSERT_EQ(v.size(), 4u);
  EXPECT_EQ(v[0], 1);
  EXPECT_EQ(v[3], 8);
}

TEST(Options, IntListFallback) {
  const auto o = parse({});
  const auto v = o.get_int_list("threads", {16, 32});
  ASSERT_EQ(v.size(), 2u);
  EXPECT_EQ(v[1], 32);
}

TEST(Options, PositionalArguments) {
  const auto o = parse({"input.agt", "--scale=4", "output.agt"});
  ASSERT_EQ(o.positional().size(), 2u);
  EXPECT_EQ(o.positional()[0], "input.agt");
  EXPECT_EQ(o.positional()[1], "output.agt");
}

TEST(Options, MalformedIntThrows) {
  const auto o = parse({"--scale=abc"});
  EXPECT_THROW(o.get_int("scale", 0), std::invalid_argument);
}

TEST(Options, MalformedBoolThrows) {
  const auto o = parse({"--flag=maybe"});
  EXPECT_THROW(o.get_bool("flag", false), std::invalid_argument);
}

TEST(Options, BoolAcceptsCommonSpellings) {
  const auto o = parse({"--a=1", "--b=no", "--c=yes", "--d=false"});
  EXPECT_TRUE(o.get_bool("a", false));
  EXPECT_FALSE(o.get_bool("b", true));
  EXPECT_TRUE(o.get_bool("c", false));
  EXPECT_FALSE(o.get_bool("d", true));
}

}  // namespace
}  // namespace asyncgt
