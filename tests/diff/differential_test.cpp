// Differential correctness harness (`ctest -L diff`; docs/io_backends.md).
//
// The library's central refactoring bet is that storage and transport are
// swap-in backends: the asynchronous traversals must produce the same
// answer in memory, semi-externally through the default sync backend, and
// semi-externally through every batching backend compiled in. This suite
// checks that bet differentially — seeded random RMAT / grid / web graphs,
// async BFS / SSSP / CC against the serial baselines in src/baselines/ —
// across every execution mode. A failure message always carries the
// generator seed, so any discrepancy is replayable from the log alone.
//
// The mode axis is discovered at registration time (compiled_io_backends()
// filtered by host availability), so the same test binary tightens itself
// when -DASYNCGT_WITH_URING is on and the host allows io_uring_setup.
//
// The Incremental* rows run the delta-overlay repair drivers
// (docs/dynamic_graphs.md) against a full recompute over the same pinned
// view, per mode — the overlay must compose with every storage/transport
// combination exactly like a static graph does.
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "asyncgt.hpp"
#include "baselines/dobfs.hpp"
#include "baselines/serial_bfs.hpp"
#include "baselines/serial_cc.hpp"
#include "baselines/serial_sssp.hpp"
#include "sem/io_backend.hpp"

namespace asyncgt {
namespace {

/// One execution mode: in-memory, or semi-external through a named backend;
/// `hot` additionally runs the traversal under hot-block scheduling
/// (queue_order::hot; for SEM storage also the pressure-weighted cache
/// policy and a deliberately small cache — docs/hot_blocks.md). Labels are
/// pop-order independent, so every hot row must stay bit-identical.
struct exec_mode {
  std::string name;
  bool sem = false;
  sem::io_backend_kind kind = sem::io_backend_kind::sync;
  std::uint32_t batch = 8;
  bool hot = false;
};

const std::vector<exec_mode>& modes() {
  static const std::vector<exec_mode> m = [] {
    std::vector<exec_mode> out;
    out.push_back({"im", false, sem::io_backend_kind::sync, 0, false});
    out.push_back({"im_hot", false, sem::io_backend_kind::sync, 0, true});
    for (const auto kind : sem::compiled_io_backends()) {
      if (!sem::io_backend_available(kind)) continue;
      // Batch 4 keeps several merge/flush cycles in even the small graphs.
      out.push_back(
          {std::string("sem_") + sem::to_string(kind), true, kind, 4, false});
      out.push_back({std::string("sem_") + sem::to_string(kind) + "_hot",
                     true, kind, 4, true});
    }
    return out;
  }();
  return m;
}

constexpr std::uint64_t kSeeds[] = {7, 21};

class Differential : public ::testing::TestWithParam<int> {
 protected:
  void SetUp() override {
    mode_ = modes()[static_cast<std::size_t>(GetParam())];
    dir_ = std::filesystem::temp_directory_path() /
           ("agt_diff_" + std::to_string(::getpid()) + "_" + mode_.name);
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  /// Queue config for this mode. Hot modes pop through the two-band hot
  /// ordering; on SEM storage the band signal is the live advisor of the
  /// bundle currently opened by on_mode (in memory there is no block
  /// pressure, so the advisor stays null and every visitor lands in the
  /// cold band — still exercising the hot engine end to end).
  visitor_queue_config cfg() const {
    visitor_queue_config c;
    c.num_threads = 8;
    c.flush_batch = 1;
    c.secondary_vertex_sort = true;
    if (mode_.hot) {
      c.order = queue_order::hot;
      c.advisor = advisor_;
    }
    return c;
  }

  /// SEM builder for this mode: backend from the mode axis; hot modes add
  /// a small cache under the pressure-weighted policy plus the pressure
  /// tracker/advisor (threshold 2, so the tiny graphs actually produce hot
  /// blocks).
  sem::sem_config sem_cfg(const std::string& p) const {
    sem::sem_config scfg(p);
    scfg.with_io_backend(sem::to_string(mode_.kind), mode_.batch);
    if (mode_.hot) {
      scfg.with_cache_fraction(0.25)
          .with_cache_policy("pressure")
          .with_hot_ordering(true, 2);
    }
    return scfg;
  }

  /// Run `fn` against `g` in this mode's storage: directly for in-memory,
  /// or via a fresh on-disk .agt + sem_csr routed through the backend.
  template <typename Fn>
  auto on_mode(const csr32& g, const std::string& tag, Fn&& fn) {
    if (!mode_.sem) return fn(g);
    const std::string p = (dir_ / (tag + ".agt")).string();
    write_graph(p, g);
    const auto bundle = sem_cfg(p).open<vertex32>();
    advisor_ = bundle.advisor.get();
    auto result = fn(*bundle.graph);
    advisor_ = nullptr;
    return result;
  }

  /// Like on_mode, but the storage carries a reverse (transpose) view —
  /// the hybrid traversals and directed dobfs require one. In memory that
  /// is ensure_reverse() on a copy; semi-externally it is the on-disk
  /// ".rev" companion written by write_graph_with_reverse and opened as a
  /// nested sem_csr routed through the same backend.
  template <typename Fn>
  auto on_mode_reverse(const csr32& g, const std::string& tag, Fn&& fn) {
    if (!mode_.sem) {
      csr32 copy = g;
      copy.ensure_reverse();
      return fn(copy);
    }
    const std::string p = (dir_ / (tag + ".agt")).string();
    write_graph_with_reverse(p, g);
    const auto bundle = sem_cfg(p).with_reverse().open<vertex32>();
    advisor_ = bundle.advisor.get();
    auto result = fn(*bundle.graph);
    advisor_ = nullptr;
    return result;
  }

  /// The seeded graph families under test. CC additionally needs symmetric
  /// structure, so it re-generates the RMAT family undirected.
  struct family_case {
    std::string name;
    csr32 graph;
  };
  static std::vector<family_case> families(std::uint64_t seed,
                                           bool undirected) {
    std::vector<family_case> out;
    out.push_back({"rmat_a", undirected
                                 ? rmat_graph_undirected<vertex32>(
                                       rmat_a(8, seed))
                                 : rmat_graph<vertex32>(rmat_a(8, seed))});
    // The mesh itself is deterministic; the seed varies its SSSP weights.
    out.push_back({"grid", grid_graph<vertex32>(14 + seed % 5, 16)});
    webgen_params wp;
    wp.num_hosts = 24;
    wp.seed = seed;
    out.push_back({"web", webgen_graph<vertex32>(wp)});
    return out;
  }

  exec_mode mode_;
  std::filesystem::path dir_;
  // Borrowed from the bundle on_mode currently holds open; cfg() installs
  // it on the queue config of hot SEM runs.
  hot_advisor* advisor_ = nullptr;
};

TEST_P(Differential, BfsMatchesSerialBaseline) {
  for (const std::uint64_t seed : kSeeds) {
    for (const auto& fam : families(seed, false)) {
      SCOPED_TRACE("mode=" + mode_.name + " family=" + fam.name +
                   " seed=" + std::to_string(seed));
      const auto expected = serial_bfs(fam.graph, vertex32{0});
      const auto got =
          on_mode(fam.graph, fam.name + "_bfs" + std::to_string(seed),
                  [&](const auto& g) { return async_bfs(g, vertex32{0},
                                                        cfg()); });
      EXPECT_EQ(got.level, expected.level);
      EXPECT_EQ(got.visited_count(), expected.visited_count());
    }
  }
}

TEST_P(Differential, SsspMatchesDijkstra) {
  for (const std::uint64_t seed : kSeeds) {
    for (const auto& fam : families(seed, false)) {
      SCOPED_TRACE("mode=" + mode_.name + " family=" + fam.name +
                   " seed=" + std::to_string(seed));
      const csr32 weighted =
          add_weights(fam.graph, weight_scheme::log_uniform, seed);
      const auto expected = dijkstra_sssp(weighted, vertex32{0});
      const auto got =
          on_mode(weighted, fam.name + "_sssp" + std::to_string(seed),
                  [&](const auto& g) { return async_sssp(g, vertex32{0},
                                                         cfg()); });
      EXPECT_EQ(got.dist, expected.dist);
    }
  }
}

TEST_P(Differential, CcMatchesSerialBaseline) {
  for (const std::uint64_t seed : kSeeds) {
    for (const auto& fam : families(seed, true)) {
      SCOPED_TRACE("mode=" + mode_.name + " family=" + fam.name +
                   " seed=" + std::to_string(seed));
      const auto expected = serial_cc(fam.graph);
      const auto got =
          on_mode(fam.graph, fam.name + "_cc" + std::to_string(seed),
                  [&](const auto& g) { return async_cc(g, cfg()); });
      EXPECT_EQ(got.component, expected.component);
      EXPECT_EQ(got.num_components(), expected.num_components());
    }
  }
}

// The hybrid driver's promise is bit-identical labels to the pure-async
// engine — not just "a valid BFS". Run both in the same mode and compare
// directly, once with the literature defaults (alpha=14/beta=24, which on
// these small graphs mostly stays top-down) and once with alpha=1/beta=64
// to force bottom-up sweeps through the reverse view.
TEST_P(Differential, HybridBfsMatchesAsync) {
  const struct {
    double alpha, beta;
  } knobs[] = {{14.0, 24.0}, {1.0, 64.0}};
  for (const std::uint64_t seed : kSeeds) {
    for (const auto& fam : families(seed, false)) {
      for (const auto& k : knobs) {
        SCOPED_TRACE("mode=" + mode_.name + " family=" + fam.name +
                     " seed=" + std::to_string(seed) +
                     " alpha=" + std::to_string(k.alpha));
        const auto plain =
            on_mode(fam.graph, fam.name + "_hba" + std::to_string(seed),
                    [&](const auto& g) { return async_bfs(g, vertex32{0},
                                                          cfg()); });
        traversal_options topt(cfg());
        topt.hybrid = true;
        topt.hybrid_alpha = k.alpha;
        topt.hybrid_beta = k.beta;
        hybrid_extra extra;
        const auto got = on_mode_reverse(
            fam.graph, fam.name + "_hbh" + std::to_string(seed),
            [&](const auto& g) {
              return hybrid_bfs(g, vertex32{0}, topt, &extra);
            });
        EXPECT_EQ(got.level, plain.level);
        EXPECT_EQ(got.visited_count(), plain.visited_count());
        // Per-phase inspections must account for the total exactly.
        std::uint64_t phase_sum = 0;
        for (const auto& p : extra.phases) phase_sum += p.edge_inspections;
        EXPECT_EQ(phase_sum, extra.edge_inspections);
      }
    }
  }
}

TEST_P(Differential, HybridCcMatchesAsync) {
  const struct {
    double alpha, beta;
  } knobs[] = {{14.0, 24.0}, {1.0, 4.0}};
  for (const std::uint64_t seed : kSeeds) {
    for (const auto& fam : families(seed, true)) {
      for (const auto& k : knobs) {
        SCOPED_TRACE("mode=" + mode_.name + " family=" + fam.name +
                     " seed=" + std::to_string(seed) +
                     " beta=" + std::to_string(k.beta));
        const auto plain =
            on_mode(fam.graph, fam.name + "_hca" + std::to_string(seed),
                    [&](const auto& g) { return async_cc(g, cfg()); });
        traversal_options topt(cfg());
        topt.hybrid = true;
        topt.hybrid_alpha = k.alpha;
        topt.hybrid_beta = k.beta;
        hybrid_extra extra;
        const auto got = on_mode_reverse(
            fam.graph, fam.name + "_hch" + std::to_string(seed),
            [&](const auto& g) { return hybrid_cc(g, topt, &extra); });
        EXPECT_EQ(got.component, plain.component);
        EXPECT_EQ(got.num_components(), plain.num_components());
      }
    }
  }
}

// dobfs on a *directed* graph is only valid through a real reverse view
// (the out-edge fallback assumes symmetry). A tiny switch fraction forces
// bottom-up levels so the in-edge probe actually runs, in every mode.
TEST_P(Differential, DobfsMatchesSerialOnDirected) {
  for (const std::uint64_t seed : kSeeds) {
    for (const auto& fam : families(seed, false)) {
      SCOPED_TRACE("mode=" + mode_.name + " family=" + fam.name +
                   " seed=" + std::to_string(seed));
      const auto expected = serial_bfs(fam.graph, vertex32{0});
      dobfs_extra extra;
      const auto got = on_mode_reverse(
          fam.graph, fam.name + "_do" + std::to_string(seed),
          [&](const auto& g) {
            return dobfs(g, vertex32{0}, &extra, 0.01);
          });
      EXPECT_EQ(got.level, expected.level);
      EXPECT_GT(extra.bottom_up_levels, 0u);
    }
  }
}

// Incremental rows (docs/dynamic_graphs.md): the delta-overlay repair
// drivers must agree with a full recompute over the same pinned view in
// every execution mode — the overlay composes with whatever storage the
// mode axis supplies (in-memory CSR, or sem_csr through each compiled
// backend, hot or not). Deletes are in play, so every row runs through
// on_mode_reverse. Labels chain: each epoch repairs the previous epoch's
// repaired labels, so a divergence compounds instead of washing out.
TEST_P(Differential, IncrementalBfsMatchesRecompute) {
  for (const std::uint64_t seed : kSeeds) {
    const auto fam = families(seed, false)[0];  // rmat_a
    SCOPED_TRACE("mode=" + mode_.name + " family=" + fam.name +
                 " seed=" + std::to_string(seed));
    on_mode_reverse(fam.graph, fam.name + "_inc" + std::to_string(seed),
                    [&](const auto& g) {
      delta_overlay<std::decay_t<decltype(g)>> ov(g);
      const auto stream = generate_update_stream(
          g, {.seed = seed, .num_batches = 2, .batch_size = 32,
              .delete_fraction = 0.4});
      auto prior = async_bfs(ov.snapshot(), vertex32{0}, cfg());
      for (const auto& batch : stream) {
        ov.apply(batch);
        auto view = ov.snapshot();
        incremental_extra ex;
        prior = incremental_bfs(view, batch, std::move(prior), &ex,
                                traversal_options(cfg()));
        const auto full = async_bfs(view, vertex32{0}, cfg());
        EXPECT_EQ(prior.level, full.level)
            << "epoch=" << ov.epoch() << " seed=" << seed;
        EXPECT_LE(ex.reseeded_vertices, ex.affected);
      }
      return 0;
    });
  }
}

TEST_P(Differential, IncrementalSsspMatchesRecompute) {
  for (const std::uint64_t seed : kSeeds) {
    const auto fam = families(seed, false)[0];
    SCOPED_TRACE("mode=" + mode_.name + " family=" + fam.name +
                 " seed=" + std::to_string(seed));
    const csr32 weighted =
        add_weights(fam.graph, weight_scheme::log_uniform, seed);
    on_mode_reverse(weighted, fam.name + "_incs" + std::to_string(seed),
                    [&](const auto& g) {
      delta_overlay<std::decay_t<decltype(g)>> ov(g);
      const auto stream = generate_update_stream(
          g, {.seed = seed, .num_batches = 2, .batch_size = 32,
              .delete_fraction = 0.4, .max_weight = 6});
      auto prior = async_sssp(ov.snapshot(), vertex32{0}, cfg());
      for (const auto& batch : stream) {
        ov.apply(batch);
        auto view = ov.snapshot();
        incremental_extra ex;
        prior = incremental_sssp(view, batch, std::move(prior), &ex,
                                 traversal_options(cfg()));
        const auto full = async_sssp(view, vertex32{0}, cfg());
        EXPECT_EQ(prior.dist, full.dist)
            << "epoch=" << ov.epoch() << " seed=" << seed;
        EXPECT_LE(ex.reseeded_vertices, ex.affected);
      }
      return 0;
    });
  }
}

TEST_P(Differential, IncrementalCcMatchesRecompute) {
  for (const std::uint64_t seed : kSeeds) {
    const auto fam = families(seed, true)[0];  // symmetric rmat_a
    SCOPED_TRACE("mode=" + mode_.name + " family=" + fam.name +
                 " seed=" + std::to_string(seed));
    on_mode_reverse(fam.graph, fam.name + "_incc" + std::to_string(seed),
                    [&](const auto& g) {
      delta_overlay<std::decay_t<decltype(g)>> ov(g);
      // CC repair assumes a symmetric delta, matching the symmetric base.
      const auto stream = generate_update_stream(
          g, {.seed = seed, .num_batches = 2, .batch_size = 24,
              .delete_fraction = 0.4, .symmetric = true});
      auto prior = async_cc(ov.snapshot(), cfg());
      for (const auto& batch : stream) {
        ov.apply(batch);
        auto view = ov.snapshot();
        incremental_extra ex;
        prior = incremental_cc(view, batch, std::move(prior), &ex,
                               traversal_options(cfg()));
        const auto full = async_cc(view, cfg());
        EXPECT_EQ(prior.component, full.component)
            << "epoch=" << ov.epoch() << " seed=" << seed;
        EXPECT_LE(ex.reseeded_vertices, ex.affected);
      }
      return 0;
    });
  }
}

std::string mode_name(const ::testing::TestParamInfo<int>& info) {
  return modes()[static_cast<std::size_t>(info.param)].name;
}

INSTANTIATE_TEST_SUITE_P(Modes, Differential,
                         ::testing::Range(0,
                                          static_cast<int>(modes().size())),
                         mode_name);

}  // namespace
}  // namespace asyncgt
