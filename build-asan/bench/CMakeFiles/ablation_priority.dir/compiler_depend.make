# Empty compiler generated dependencies file for ablation_priority.
# This may be replaced when dependencies are built.
