file(REMOVE_RECURSE
  "CMakeFiles/ablation_priority.dir/ablation_priority.cpp.o"
  "CMakeFiles/ablation_priority.dir/ablation_priority.cpp.o.d"
  "ablation_priority"
  "ablation_priority.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_priority.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
