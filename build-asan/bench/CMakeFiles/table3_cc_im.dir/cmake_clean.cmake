file(REMOVE_RECURSE
  "CMakeFiles/table3_cc_im.dir/table3_cc_im.cpp.o"
  "CMakeFiles/table3_cc_im.dir/table3_cc_im.cpp.o.d"
  "table3_cc_im"
  "table3_cc_im.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_cc_im.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
