# Empty compiler generated dependencies file for table3_cc_im.
# This may be replaced when dependencies are built.
