file(REMOVE_RECURSE
  "CMakeFiles/ext_structure_sweep.dir/ext_structure_sweep.cpp.o"
  "CMakeFiles/ext_structure_sweep.dir/ext_structure_sweep.cpp.o.d"
  "ext_structure_sweep"
  "ext_structure_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_structure_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
