# Empty dependencies file for ext_structure_sweep.
# This may be replaced when dependencies are built.
