# Empty dependencies file for micro_primitives.
# This may be replaced when dependencies are built.
