file(REMOVE_RECURSE
  "CMakeFiles/micro_primitives.dir/micro_primitives.cpp.o"
  "CMakeFiles/micro_primitives.dir/micro_primitives.cpp.o.d"
  "micro_primitives"
  "micro_primitives.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_primitives.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
