# Empty compiler generated dependencies file for ablation_queues.
# This may be replaced when dependencies are built.
