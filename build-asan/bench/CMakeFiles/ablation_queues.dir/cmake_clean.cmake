file(REMOVE_RECURSE
  "CMakeFiles/ablation_queues.dir/ablation_queues.cpp.o"
  "CMakeFiles/ablation_queues.dir/ablation_queues.cpp.o.d"
  "ablation_queues"
  "ablation_queues.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_queues.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
