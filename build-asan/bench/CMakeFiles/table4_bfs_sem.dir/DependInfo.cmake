
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/table4_bfs_sem.cpp" "bench/CMakeFiles/table4_bfs_sem.dir/table4_bfs_sem.cpp.o" "gcc" "bench/CMakeFiles/table4_bfs_sem.dir/table4_bfs_sem.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/sem/CMakeFiles/asyncgt_sem.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/telemetry/CMakeFiles/asyncgt_telemetry.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/util/CMakeFiles/asyncgt_util.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/graph/CMakeFiles/asyncgt_graph.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
