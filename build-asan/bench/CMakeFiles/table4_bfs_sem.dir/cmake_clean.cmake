file(REMOVE_RECURSE
  "CMakeFiles/table4_bfs_sem.dir/table4_bfs_sem.cpp.o"
  "CMakeFiles/table4_bfs_sem.dir/table4_bfs_sem.cpp.o.d"
  "table4_bfs_sem"
  "table4_bfs_sem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_bfs_sem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
