# Empty dependencies file for table4_bfs_sem.
# This may be replaced when dependencies are built.
