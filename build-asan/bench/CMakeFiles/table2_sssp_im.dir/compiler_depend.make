# Empty compiler generated dependencies file for table2_sssp_im.
# This may be replaced when dependencies are built.
