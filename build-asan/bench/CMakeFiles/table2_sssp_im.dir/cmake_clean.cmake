file(REMOVE_RECURSE
  "CMakeFiles/table2_sssp_im.dir/table2_sssp_im.cpp.o"
  "CMakeFiles/table2_sssp_im.dir/table2_sssp_im.cpp.o.d"
  "table2_sssp_im"
  "table2_sssp_im.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_sssp_im.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
