# Empty dependencies file for ablation_oversubscription.
# This may be replaced when dependencies are built.
