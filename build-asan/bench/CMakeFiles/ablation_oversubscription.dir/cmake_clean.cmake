file(REMOVE_RECURSE
  "CMakeFiles/ablation_oversubscription.dir/ablation_oversubscription.cpp.o"
  "CMakeFiles/ablation_oversubscription.dir/ablation_oversubscription.cpp.o.d"
  "ablation_oversubscription"
  "ablation_oversubscription.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_oversubscription.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
