# Empty dependencies file for table1_bfs_im.
# This may be replaced when dependencies are built.
