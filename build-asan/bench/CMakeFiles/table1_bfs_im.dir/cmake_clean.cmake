file(REMOVE_RECURSE
  "CMakeFiles/table1_bfs_im.dir/table1_bfs_im.cpp.o"
  "CMakeFiles/table1_bfs_im.dir/table1_bfs_im.cpp.o.d"
  "table1_bfs_im"
  "table1_bfs_im.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_bfs_im.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
