file(REMOVE_RECURSE
  "CMakeFiles/table5_cc_sem.dir/table5_cc_sem.cpp.o"
  "CMakeFiles/table5_cc_sem.dir/table5_cc_sem.cpp.o.d"
  "table5_cc_sem"
  "table5_cc_sem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_cc_sem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
