# Empty dependencies file for table5_cc_sem.
# This may be replaced when dependencies are built.
