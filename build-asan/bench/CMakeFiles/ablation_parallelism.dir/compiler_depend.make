# Empty compiler generated dependencies file for ablation_parallelism.
# This may be replaced when dependencies are built.
