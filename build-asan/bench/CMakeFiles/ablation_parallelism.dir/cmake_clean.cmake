file(REMOVE_RECURSE
  "CMakeFiles/ablation_parallelism.dir/ablation_parallelism.cpp.o"
  "CMakeFiles/ablation_parallelism.dir/ablation_parallelism.cpp.o.d"
  "ablation_parallelism"
  "ablation_parallelism.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_parallelism.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
