# Empty dependencies file for ablation_semisort.
# This may be replaced when dependencies are built.
