file(REMOVE_RECURSE
  "CMakeFiles/ablation_semisort.dir/ablation_semisort.cpp.o"
  "CMakeFiles/ablation_semisort.dir/ablation_semisort.cpp.o.d"
  "ablation_semisort"
  "ablation_semisort.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_semisort.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
