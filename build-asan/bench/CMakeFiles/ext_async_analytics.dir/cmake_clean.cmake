file(REMOVE_RECURSE
  "CMakeFiles/ext_async_analytics.dir/ext_async_analytics.cpp.o"
  "CMakeFiles/ext_async_analytics.dir/ext_async_analytics.cpp.o.d"
  "ext_async_analytics"
  "ext_async_analytics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_async_analytics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
