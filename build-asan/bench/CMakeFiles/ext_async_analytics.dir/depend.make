# Empty dependencies file for ext_async_analytics.
# This may be replaced when dependencies are built.
