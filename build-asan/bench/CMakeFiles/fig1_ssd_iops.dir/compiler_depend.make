# Empty compiler generated dependencies file for fig1_ssd_iops.
# This may be replaced when dependencies are built.
