file(REMOVE_RECURSE
  "CMakeFiles/fig1_ssd_iops.dir/fig1_ssd_iops.cpp.o"
  "CMakeFiles/fig1_ssd_iops.dir/fig1_ssd_iops.cpp.o.d"
  "fig1_ssd_iops"
  "fig1_ssd_iops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_ssd_iops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
