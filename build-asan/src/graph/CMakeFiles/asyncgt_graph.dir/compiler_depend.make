# Empty compiler generated dependencies file for asyncgt_graph.
# This may be replaced when dependencies are built.
