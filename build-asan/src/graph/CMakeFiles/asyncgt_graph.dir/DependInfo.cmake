
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/graph_io.cpp" "src/graph/CMakeFiles/asyncgt_graph.dir/graph_io.cpp.o" "gcc" "src/graph/CMakeFiles/asyncgt_graph.dir/graph_io.cpp.o.d"
  "/root/repo/src/graph/text_io.cpp" "src/graph/CMakeFiles/asyncgt_graph.dir/text_io.cpp.o" "gcc" "src/graph/CMakeFiles/asyncgt_graph.dir/text_io.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/util/CMakeFiles/asyncgt_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
