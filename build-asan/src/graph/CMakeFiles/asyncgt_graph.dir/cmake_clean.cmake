file(REMOVE_RECURSE
  "CMakeFiles/asyncgt_graph.dir/graph_io.cpp.o"
  "CMakeFiles/asyncgt_graph.dir/graph_io.cpp.o.d"
  "CMakeFiles/asyncgt_graph.dir/text_io.cpp.o"
  "CMakeFiles/asyncgt_graph.dir/text_io.cpp.o.d"
  "libasyncgt_graph.a"
  "libasyncgt_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asyncgt_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
