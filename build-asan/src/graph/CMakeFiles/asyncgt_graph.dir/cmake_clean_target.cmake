file(REMOVE_RECURSE
  "libasyncgt_graph.a"
)
