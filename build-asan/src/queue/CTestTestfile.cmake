# CMake generated Testfile for 
# Source directory: /root/repo/src/queue
# Build directory: /root/repo/build-asan/src/queue
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
