file(REMOVE_RECURSE
  "CMakeFiles/asyncgt_telemetry.dir/json.cpp.o"
  "CMakeFiles/asyncgt_telemetry.dir/json.cpp.o.d"
  "CMakeFiles/asyncgt_telemetry.dir/metrics_json.cpp.o"
  "CMakeFiles/asyncgt_telemetry.dir/metrics_json.cpp.o.d"
  "CMakeFiles/asyncgt_telemetry.dir/metrics_registry.cpp.o"
  "CMakeFiles/asyncgt_telemetry.dir/metrics_registry.cpp.o.d"
  "CMakeFiles/asyncgt_telemetry.dir/sampler.cpp.o"
  "CMakeFiles/asyncgt_telemetry.dir/sampler.cpp.o.d"
  "CMakeFiles/asyncgt_telemetry.dir/trace_writer.cpp.o"
  "CMakeFiles/asyncgt_telemetry.dir/trace_writer.cpp.o.d"
  "libasyncgt_telemetry.a"
  "libasyncgt_telemetry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asyncgt_telemetry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
