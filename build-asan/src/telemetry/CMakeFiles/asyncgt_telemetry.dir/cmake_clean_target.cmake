file(REMOVE_RECURSE
  "libasyncgt_telemetry.a"
)
