
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/telemetry/json.cpp" "src/telemetry/CMakeFiles/asyncgt_telemetry.dir/json.cpp.o" "gcc" "src/telemetry/CMakeFiles/asyncgt_telemetry.dir/json.cpp.o.d"
  "/root/repo/src/telemetry/metrics_json.cpp" "src/telemetry/CMakeFiles/asyncgt_telemetry.dir/metrics_json.cpp.o" "gcc" "src/telemetry/CMakeFiles/asyncgt_telemetry.dir/metrics_json.cpp.o.d"
  "/root/repo/src/telemetry/metrics_registry.cpp" "src/telemetry/CMakeFiles/asyncgt_telemetry.dir/metrics_registry.cpp.o" "gcc" "src/telemetry/CMakeFiles/asyncgt_telemetry.dir/metrics_registry.cpp.o.d"
  "/root/repo/src/telemetry/sampler.cpp" "src/telemetry/CMakeFiles/asyncgt_telemetry.dir/sampler.cpp.o" "gcc" "src/telemetry/CMakeFiles/asyncgt_telemetry.dir/sampler.cpp.o.d"
  "/root/repo/src/telemetry/trace_writer.cpp" "src/telemetry/CMakeFiles/asyncgt_telemetry.dir/trace_writer.cpp.o" "gcc" "src/telemetry/CMakeFiles/asyncgt_telemetry.dir/trace_writer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/util/CMakeFiles/asyncgt_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
