# Empty compiler generated dependencies file for asyncgt_telemetry.
# This may be replaced when dependencies are built.
