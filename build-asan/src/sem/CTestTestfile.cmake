# CMake generated Testfile for 
# Source directory: /root/repo/src/sem
# Build directory: /root/repo/build-asan/src/sem
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
