file(REMOVE_RECURSE
  "CMakeFiles/asyncgt_sem.dir/block_cache.cpp.o"
  "CMakeFiles/asyncgt_sem.dir/block_cache.cpp.o.d"
  "CMakeFiles/asyncgt_sem.dir/edge_file.cpp.o"
  "CMakeFiles/asyncgt_sem.dir/edge_file.cpp.o.d"
  "CMakeFiles/asyncgt_sem.dir/ssd_model.cpp.o"
  "CMakeFiles/asyncgt_sem.dir/ssd_model.cpp.o.d"
  "libasyncgt_sem.a"
  "libasyncgt_sem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asyncgt_sem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
