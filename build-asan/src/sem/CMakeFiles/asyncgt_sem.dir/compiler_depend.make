# Empty compiler generated dependencies file for asyncgt_sem.
# This may be replaced when dependencies are built.
