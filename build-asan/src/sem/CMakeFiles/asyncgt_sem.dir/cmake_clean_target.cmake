file(REMOVE_RECURSE
  "libasyncgt_sem.a"
)
