# Empty dependencies file for asyncgt_util.
# This may be replaced when dependencies are built.
