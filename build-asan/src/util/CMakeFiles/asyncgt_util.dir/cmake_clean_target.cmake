file(REMOVE_RECURSE
  "libasyncgt_util.a"
)
