file(REMOVE_RECURSE
  "CMakeFiles/asyncgt_util.dir/crc32.cpp.o"
  "CMakeFiles/asyncgt_util.dir/crc32.cpp.o.d"
  "CMakeFiles/asyncgt_util.dir/options.cpp.o"
  "CMakeFiles/asyncgt_util.dir/options.cpp.o.d"
  "CMakeFiles/asyncgt_util.dir/stats.cpp.o"
  "CMakeFiles/asyncgt_util.dir/stats.cpp.o.d"
  "CMakeFiles/asyncgt_util.dir/table.cpp.o"
  "CMakeFiles/asyncgt_util.dir/table.cpp.o.d"
  "libasyncgt_util.a"
  "libasyncgt_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asyncgt_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
