
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/util/crc32.cpp" "src/util/CMakeFiles/asyncgt_util.dir/crc32.cpp.o" "gcc" "src/util/CMakeFiles/asyncgt_util.dir/crc32.cpp.o.d"
  "/root/repo/src/util/options.cpp" "src/util/CMakeFiles/asyncgt_util.dir/options.cpp.o" "gcc" "src/util/CMakeFiles/asyncgt_util.dir/options.cpp.o.d"
  "/root/repo/src/util/stats.cpp" "src/util/CMakeFiles/asyncgt_util.dir/stats.cpp.o" "gcc" "src/util/CMakeFiles/asyncgt_util.dir/stats.cpp.o.d"
  "/root/repo/src/util/table.cpp" "src/util/CMakeFiles/asyncgt_util.dir/table.cpp.o" "gcc" "src/util/CMakeFiles/asyncgt_util.dir/table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
