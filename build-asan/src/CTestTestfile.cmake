# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build-asan/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("telemetry")
subdirs("graph")
subdirs("gen")
subdirs("queue")
subdirs("core")
subdirs("baselines")
subdirs("sem")
