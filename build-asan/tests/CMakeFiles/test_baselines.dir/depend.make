# Empty dependencies file for test_baselines.
# This may be replaced when dependencies are built.
