file(REMOVE_RECURSE
  "CMakeFiles/test_baselines.dir/baselines/bsp_test.cpp.o"
  "CMakeFiles/test_baselines.dir/baselines/bsp_test.cpp.o.d"
  "CMakeFiles/test_baselines.dir/baselines/delta_stepping_test.cpp.o"
  "CMakeFiles/test_baselines.dir/baselines/delta_stepping_test.cpp.o.d"
  "CMakeFiles/test_baselines.dir/baselines/dobfs_test.cpp.o"
  "CMakeFiles/test_baselines.dir/baselines/dobfs_test.cpp.o.d"
  "CMakeFiles/test_baselines.dir/baselines/levelsync_test.cpp.o"
  "CMakeFiles/test_baselines.dir/baselines/levelsync_test.cpp.o.d"
  "CMakeFiles/test_baselines.dir/baselines/serial_test.cpp.o"
  "CMakeFiles/test_baselines.dir/baselines/serial_test.cpp.o.d"
  "CMakeFiles/test_baselines.dir/baselines/syncprop_test.cpp.o"
  "CMakeFiles/test_baselines.dir/baselines/syncprop_test.cpp.o.d"
  "test_baselines"
  "test_baselines.pdb"
  "test_baselines[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
