file(REMOVE_RECURSE
  "CMakeFiles/test_integration.dir/integration/end_to_end_test.cpp.o"
  "CMakeFiles/test_integration.dir/integration/end_to_end_test.cpp.o.d"
  "CMakeFiles/test_integration.dir/integration/random_fuzz_test.cpp.o"
  "CMakeFiles/test_integration.dir/integration/random_fuzz_test.cpp.o.d"
  "CMakeFiles/test_integration.dir/integration/sem_equivalence_test.cpp.o"
  "CMakeFiles/test_integration.dir/integration/sem_equivalence_test.cpp.o.d"
  "test_integration"
  "test_integration.pdb"
  "test_integration[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_integration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
