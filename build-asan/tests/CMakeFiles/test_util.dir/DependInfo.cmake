
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/util/barrier_test.cpp" "tests/CMakeFiles/test_util.dir/util/barrier_test.cpp.o" "gcc" "tests/CMakeFiles/test_util.dir/util/barrier_test.cpp.o.d"
  "/root/repo/tests/util/hash_test.cpp" "tests/CMakeFiles/test_util.dir/util/hash_test.cpp.o" "gcc" "tests/CMakeFiles/test_util.dir/util/hash_test.cpp.o.d"
  "/root/repo/tests/util/options_test.cpp" "tests/CMakeFiles/test_util.dir/util/options_test.cpp.o" "gcc" "tests/CMakeFiles/test_util.dir/util/options_test.cpp.o.d"
  "/root/repo/tests/util/rng_test.cpp" "tests/CMakeFiles/test_util.dir/util/rng_test.cpp.o" "gcc" "tests/CMakeFiles/test_util.dir/util/rng_test.cpp.o.d"
  "/root/repo/tests/util/semaphore_test.cpp" "tests/CMakeFiles/test_util.dir/util/semaphore_test.cpp.o" "gcc" "tests/CMakeFiles/test_util.dir/util/semaphore_test.cpp.o.d"
  "/root/repo/tests/util/spinlock_test.cpp" "tests/CMakeFiles/test_util.dir/util/spinlock_test.cpp.o" "gcc" "tests/CMakeFiles/test_util.dir/util/spinlock_test.cpp.o.d"
  "/root/repo/tests/util/stats_test.cpp" "tests/CMakeFiles/test_util.dir/util/stats_test.cpp.o" "gcc" "tests/CMakeFiles/test_util.dir/util/stats_test.cpp.o.d"
  "/root/repo/tests/util/table_test.cpp" "tests/CMakeFiles/test_util.dir/util/table_test.cpp.o" "gcc" "tests/CMakeFiles/test_util.dir/util/table_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/sem/CMakeFiles/asyncgt_sem.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/telemetry/CMakeFiles/asyncgt_telemetry.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/util/CMakeFiles/asyncgt_util.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/graph/CMakeFiles/asyncgt_graph.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
