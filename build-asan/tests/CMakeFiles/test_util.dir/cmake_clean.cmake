file(REMOVE_RECURSE
  "CMakeFiles/test_util.dir/util/barrier_test.cpp.o"
  "CMakeFiles/test_util.dir/util/barrier_test.cpp.o.d"
  "CMakeFiles/test_util.dir/util/hash_test.cpp.o"
  "CMakeFiles/test_util.dir/util/hash_test.cpp.o.d"
  "CMakeFiles/test_util.dir/util/options_test.cpp.o"
  "CMakeFiles/test_util.dir/util/options_test.cpp.o.d"
  "CMakeFiles/test_util.dir/util/rng_test.cpp.o"
  "CMakeFiles/test_util.dir/util/rng_test.cpp.o.d"
  "CMakeFiles/test_util.dir/util/semaphore_test.cpp.o"
  "CMakeFiles/test_util.dir/util/semaphore_test.cpp.o.d"
  "CMakeFiles/test_util.dir/util/spinlock_test.cpp.o"
  "CMakeFiles/test_util.dir/util/spinlock_test.cpp.o.d"
  "CMakeFiles/test_util.dir/util/stats_test.cpp.o"
  "CMakeFiles/test_util.dir/util/stats_test.cpp.o.d"
  "CMakeFiles/test_util.dir/util/table_test.cpp.o"
  "CMakeFiles/test_util.dir/util/table_test.cpp.o.d"
  "test_util"
  "test_util.pdb"
  "test_util[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
