file(REMOVE_RECURSE
  "CMakeFiles/test_graph.dir/graph/builder_test.cpp.o"
  "CMakeFiles/test_graph.dir/graph/builder_test.cpp.o.d"
  "CMakeFiles/test_graph.dir/graph/csr_graph_test.cpp.o"
  "CMakeFiles/test_graph.dir/graph/csr_graph_test.cpp.o.d"
  "CMakeFiles/test_graph.dir/graph/graph_io_test.cpp.o"
  "CMakeFiles/test_graph.dir/graph/graph_io_test.cpp.o.d"
  "CMakeFiles/test_graph.dir/graph/graph_stats_test.cpp.o"
  "CMakeFiles/test_graph.dir/graph/graph_stats_test.cpp.o.d"
  "CMakeFiles/test_graph.dir/graph/text_io_test.cpp.o"
  "CMakeFiles/test_graph.dir/graph/text_io_test.cpp.o.d"
  "test_graph"
  "test_graph.pdb"
  "test_graph[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
