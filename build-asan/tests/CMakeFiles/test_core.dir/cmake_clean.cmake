file(REMOVE_RECURSE
  "CMakeFiles/test_core.dir/core/async_bfs_test.cpp.o"
  "CMakeFiles/test_core.dir/core/async_bfs_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/async_cc_test.cpp.o"
  "CMakeFiles/test_core.dir/core/async_cc_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/async_kcore_test.cpp.o"
  "CMakeFiles/test_core.dir/core/async_kcore_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/async_pagerank_test.cpp.o"
  "CMakeFiles/test_core.dir/core/async_pagerank_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/async_sssp_test.cpp.o"
  "CMakeFiles/test_core.dir/core/async_sssp_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/batch_ablation_test.cpp.o"
  "CMakeFiles/test_core.dir/core/batch_ablation_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/checkpoint_test.cpp.o"
  "CMakeFiles/test_core.dir/core/checkpoint_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/graph_metrics_test.cpp.o"
  "CMakeFiles/test_core.dir/core/graph_metrics_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/traversal_result_test.cpp.o"
  "CMakeFiles/test_core.dir/core/traversal_result_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/validate_test.cpp.o"
  "CMakeFiles/test_core.dir/core/validate_test.cpp.o.d"
  "test_core"
  "test_core.pdb"
  "test_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
