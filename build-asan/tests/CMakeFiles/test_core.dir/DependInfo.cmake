
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/async_bfs_test.cpp" "tests/CMakeFiles/test_core.dir/core/async_bfs_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/async_bfs_test.cpp.o.d"
  "/root/repo/tests/core/async_cc_test.cpp" "tests/CMakeFiles/test_core.dir/core/async_cc_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/async_cc_test.cpp.o.d"
  "/root/repo/tests/core/async_kcore_test.cpp" "tests/CMakeFiles/test_core.dir/core/async_kcore_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/async_kcore_test.cpp.o.d"
  "/root/repo/tests/core/async_pagerank_test.cpp" "tests/CMakeFiles/test_core.dir/core/async_pagerank_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/async_pagerank_test.cpp.o.d"
  "/root/repo/tests/core/async_sssp_test.cpp" "tests/CMakeFiles/test_core.dir/core/async_sssp_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/async_sssp_test.cpp.o.d"
  "/root/repo/tests/core/batch_ablation_test.cpp" "tests/CMakeFiles/test_core.dir/core/batch_ablation_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/batch_ablation_test.cpp.o.d"
  "/root/repo/tests/core/checkpoint_test.cpp" "tests/CMakeFiles/test_core.dir/core/checkpoint_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/checkpoint_test.cpp.o.d"
  "/root/repo/tests/core/graph_metrics_test.cpp" "tests/CMakeFiles/test_core.dir/core/graph_metrics_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/graph_metrics_test.cpp.o.d"
  "/root/repo/tests/core/traversal_result_test.cpp" "tests/CMakeFiles/test_core.dir/core/traversal_result_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/traversal_result_test.cpp.o.d"
  "/root/repo/tests/core/validate_test.cpp" "tests/CMakeFiles/test_core.dir/core/validate_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/validate_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/sem/CMakeFiles/asyncgt_sem.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/telemetry/CMakeFiles/asyncgt_telemetry.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/util/CMakeFiles/asyncgt_util.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/graph/CMakeFiles/asyncgt_graph.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
