file(REMOVE_RECURSE
  "CMakeFiles/test_sem.dir/sem/block_cache_test.cpp.o"
  "CMakeFiles/test_sem.dir/sem/block_cache_test.cpp.o.d"
  "CMakeFiles/test_sem.dir/sem/ext_sorter_test.cpp.o"
  "CMakeFiles/test_sem.dir/sem/ext_sorter_test.cpp.o.d"
  "CMakeFiles/test_sem.dir/sem/ooc_builder_test.cpp.o"
  "CMakeFiles/test_sem.dir/sem/ooc_builder_test.cpp.o.d"
  "CMakeFiles/test_sem.dir/sem/sem_block_test.cpp.o"
  "CMakeFiles/test_sem.dir/sem/sem_block_test.cpp.o.d"
  "CMakeFiles/test_sem.dir/sem/sem_csr_test.cpp.o"
  "CMakeFiles/test_sem.dir/sem/sem_csr_test.cpp.o.d"
  "CMakeFiles/test_sem.dir/sem/ssd_model_test.cpp.o"
  "CMakeFiles/test_sem.dir/sem/ssd_model_test.cpp.o.d"
  "test_sem"
  "test_sem.pdb"
  "test_sem[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
