# Empty compiler generated dependencies file for test_sem.
# This may be replaced when dependencies are built.
