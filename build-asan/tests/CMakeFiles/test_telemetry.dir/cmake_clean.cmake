file(REMOVE_RECURSE
  "CMakeFiles/test_telemetry.dir/telemetry/json_test.cpp.o"
  "CMakeFiles/test_telemetry.dir/telemetry/json_test.cpp.o.d"
  "CMakeFiles/test_telemetry.dir/telemetry/metrics_registry_test.cpp.o"
  "CMakeFiles/test_telemetry.dir/telemetry/metrics_registry_test.cpp.o.d"
  "CMakeFiles/test_telemetry.dir/telemetry/sampler_test.cpp.o"
  "CMakeFiles/test_telemetry.dir/telemetry/sampler_test.cpp.o.d"
  "CMakeFiles/test_telemetry.dir/telemetry/telemetry_integration_test.cpp.o"
  "CMakeFiles/test_telemetry.dir/telemetry/telemetry_integration_test.cpp.o.d"
  "CMakeFiles/test_telemetry.dir/telemetry/trace_writer_test.cpp.o"
  "CMakeFiles/test_telemetry.dir/telemetry/trace_writer_test.cpp.o.d"
  "test_telemetry"
  "test_telemetry.pdb"
  "test_telemetry[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_telemetry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
