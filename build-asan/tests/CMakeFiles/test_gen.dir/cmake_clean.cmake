file(REMOVE_RECURSE
  "CMakeFiles/test_gen.dir/gen/grid_test.cpp.o"
  "CMakeFiles/test_gen.dir/gen/grid_test.cpp.o.d"
  "CMakeFiles/test_gen.dir/gen/random_graphs_test.cpp.o"
  "CMakeFiles/test_gen.dir/gen/random_graphs_test.cpp.o.d"
  "CMakeFiles/test_gen.dir/gen/rmat_test.cpp.o"
  "CMakeFiles/test_gen.dir/gen/rmat_test.cpp.o.d"
  "CMakeFiles/test_gen.dir/gen/webgen_test.cpp.o"
  "CMakeFiles/test_gen.dir/gen/webgen_test.cpp.o.d"
  "CMakeFiles/test_gen.dir/gen/weights_test.cpp.o"
  "CMakeFiles/test_gen.dir/gen/weights_test.cpp.o.d"
  "test_gen"
  "test_gen.pdb"
  "test_gen[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
