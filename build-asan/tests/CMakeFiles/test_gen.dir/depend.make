# Empty dependencies file for test_gen.
# This may be replaced when dependencies are built.
