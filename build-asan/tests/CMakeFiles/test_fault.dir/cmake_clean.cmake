file(REMOVE_RECURSE
  "CMakeFiles/test_fault.dir/graph/graph_io_robustness_test.cpp.o"
  "CMakeFiles/test_fault.dir/graph/graph_io_robustness_test.cpp.o.d"
  "CMakeFiles/test_fault.dir/integration/fault_soak_test.cpp.o"
  "CMakeFiles/test_fault.dir/integration/fault_soak_test.cpp.o.d"
  "CMakeFiles/test_fault.dir/queue/traversal_abort_test.cpp.o"
  "CMakeFiles/test_fault.dir/queue/traversal_abort_test.cpp.o.d"
  "CMakeFiles/test_fault.dir/sem/edge_file_fault_test.cpp.o"
  "CMakeFiles/test_fault.dir/sem/edge_file_fault_test.cpp.o.d"
  "CMakeFiles/test_fault.dir/sem/fault_injector_test.cpp.o"
  "CMakeFiles/test_fault.dir/sem/fault_injector_test.cpp.o.d"
  "test_fault"
  "test_fault.pdb"
  "test_fault[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fault.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
