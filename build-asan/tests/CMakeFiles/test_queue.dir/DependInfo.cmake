
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/queue/dary_heap_test.cpp" "tests/CMakeFiles/test_queue.dir/queue/dary_heap_test.cpp.o" "gcc" "tests/CMakeFiles/test_queue.dir/queue/dary_heap_test.cpp.o.d"
  "/root/repo/tests/queue/flush_batch_test.cpp" "tests/CMakeFiles/test_queue.dir/queue/flush_batch_test.cpp.o" "gcc" "tests/CMakeFiles/test_queue.dir/queue/flush_batch_test.cpp.o.d"
  "/root/repo/tests/queue/ordering_policy_test.cpp" "tests/CMakeFiles/test_queue.dir/queue/ordering_policy_test.cpp.o" "gcc" "tests/CMakeFiles/test_queue.dir/queue/ordering_policy_test.cpp.o.d"
  "/root/repo/tests/queue/queue_config_test.cpp" "tests/CMakeFiles/test_queue.dir/queue/queue_config_test.cpp.o" "gcc" "tests/CMakeFiles/test_queue.dir/queue/queue_config_test.cpp.o.d"
  "/root/repo/tests/queue/routing_policy_test.cpp" "tests/CMakeFiles/test_queue.dir/queue/routing_policy_test.cpp.o" "gcc" "tests/CMakeFiles/test_queue.dir/queue/routing_policy_test.cpp.o.d"
  "/root/repo/tests/queue/visitor_queue_test.cpp" "tests/CMakeFiles/test_queue.dir/queue/visitor_queue_test.cpp.o" "gcc" "tests/CMakeFiles/test_queue.dir/queue/visitor_queue_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/sem/CMakeFiles/asyncgt_sem.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/telemetry/CMakeFiles/asyncgt_telemetry.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/util/CMakeFiles/asyncgt_util.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/graph/CMakeFiles/asyncgt_graph.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
