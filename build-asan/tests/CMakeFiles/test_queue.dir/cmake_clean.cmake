file(REMOVE_RECURSE
  "CMakeFiles/test_queue.dir/queue/dary_heap_test.cpp.o"
  "CMakeFiles/test_queue.dir/queue/dary_heap_test.cpp.o.d"
  "CMakeFiles/test_queue.dir/queue/flush_batch_test.cpp.o"
  "CMakeFiles/test_queue.dir/queue/flush_batch_test.cpp.o.d"
  "CMakeFiles/test_queue.dir/queue/ordering_policy_test.cpp.o"
  "CMakeFiles/test_queue.dir/queue/ordering_policy_test.cpp.o.d"
  "CMakeFiles/test_queue.dir/queue/queue_config_test.cpp.o"
  "CMakeFiles/test_queue.dir/queue/queue_config_test.cpp.o.d"
  "CMakeFiles/test_queue.dir/queue/routing_policy_test.cpp.o"
  "CMakeFiles/test_queue.dir/queue/routing_policy_test.cpp.o.d"
  "CMakeFiles/test_queue.dir/queue/visitor_queue_test.cpp.o"
  "CMakeFiles/test_queue.dir/queue/visitor_queue_test.cpp.o.d"
  "test_queue"
  "test_queue.pdb"
  "test_queue[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_queue.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
