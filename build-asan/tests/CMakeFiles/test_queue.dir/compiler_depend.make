# Empty compiler generated dependencies file for test_queue.
# This may be replaced when dependencies are built.
