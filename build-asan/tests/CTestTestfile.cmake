# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build-asan/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build-asan/tests/test_util[1]_include.cmake")
include("/root/repo/build-asan/tests/test_graph[1]_include.cmake")
include("/root/repo/build-asan/tests/test_gen[1]_include.cmake")
include("/root/repo/build-asan/tests/test_queue[1]_include.cmake")
include("/root/repo/build-asan/tests/test_core[1]_include.cmake")
include("/root/repo/build-asan/tests/test_baselines[1]_include.cmake")
include("/root/repo/build-asan/tests/test_sem[1]_include.cmake")
include("/root/repo/build-asan/tests/test_telemetry[1]_include.cmake")
include("/root/repo/build-asan/tests/test_integration[1]_include.cmake")
include("/root/repo/build-asan/tests/test_fault[1]_include.cmake")
