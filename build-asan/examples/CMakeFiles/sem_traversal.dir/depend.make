# Empty dependencies file for sem_traversal.
# This may be replaced when dependencies are built.
