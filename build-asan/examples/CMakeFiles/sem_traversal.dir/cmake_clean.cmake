file(REMOVE_RECURSE
  "CMakeFiles/sem_traversal.dir/sem_traversal.cpp.o"
  "CMakeFiles/sem_traversal.dir/sem_traversal.cpp.o.d"
  "sem_traversal"
  "sem_traversal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sem_traversal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
