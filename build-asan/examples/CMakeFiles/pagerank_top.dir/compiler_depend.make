# Empty compiler generated dependencies file for pagerank_top.
# This may be replaced when dependencies are built.
