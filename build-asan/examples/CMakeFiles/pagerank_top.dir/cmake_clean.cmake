file(REMOVE_RECURSE
  "CMakeFiles/pagerank_top.dir/pagerank_top.cpp.o"
  "CMakeFiles/pagerank_top.dir/pagerank_top.cpp.o.d"
  "pagerank_top"
  "pagerank_top.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pagerank_top.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
