file(REMOVE_RECURSE
  "CMakeFiles/road_sssp.dir/road_sssp.cpp.o"
  "CMakeFiles/road_sssp.dir/road_sssp.cpp.o.d"
  "road_sssp"
  "road_sssp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/road_sssp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
