# Empty compiler generated dependencies file for road_sssp.
# This may be replaced when dependencies are built.
