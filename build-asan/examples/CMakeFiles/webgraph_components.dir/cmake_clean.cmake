file(REMOVE_RECURSE
  "CMakeFiles/webgraph_components.dir/webgraph_components.cpp.o"
  "CMakeFiles/webgraph_components.dir/webgraph_components.cpp.o.d"
  "webgraph_components"
  "webgraph_components.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/webgraph_components.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
