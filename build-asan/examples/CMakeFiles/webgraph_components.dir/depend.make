# Empty dependencies file for webgraph_components.
# This may be replaced when dependencies are built.
