# Empty dependencies file for checkpoint_resume.
# This may be replaced when dependencies are built.
