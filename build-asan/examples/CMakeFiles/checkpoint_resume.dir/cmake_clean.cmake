file(REMOVE_RECURSE
  "CMakeFiles/checkpoint_resume.dir/checkpoint_resume.cpp.o"
  "CMakeFiles/checkpoint_resume.dir/checkpoint_resume.cpp.o.d"
  "checkpoint_resume"
  "checkpoint_resume.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/checkpoint_resume.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
