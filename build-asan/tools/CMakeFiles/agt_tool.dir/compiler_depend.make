# Empty compiler generated dependencies file for agt_tool.
# This may be replaced when dependencies are built.
