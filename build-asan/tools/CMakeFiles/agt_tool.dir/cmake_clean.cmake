file(REMOVE_RECURSE
  "CMakeFiles/agt_tool.dir/agt_tool.cpp.o"
  "CMakeFiles/agt_tool.dir/agt_tool.cpp.o.d"
  "agt_tool"
  "agt_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/agt_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
