// Synthetic web-graph generator — the stand-in for the paper's real crawls
// (ClueWeb09, it-2004, sk-2005, uk-union, webbase-2001), which we cannot
// redistribute.
//
// The CC experiments depend on three structural properties of those crawls:
//   1. community structure: pages cluster into hosts with dense in-host
//      linkage and sparse cross-host linkage,
//   2. power-law host sizes and cross-link degrees (hub hosts),
//   3. a giant connected component plus a long tail of small components
//      (the paper reports e.g. 3,149,668 CCs for ClueWeb09 but only 126 for
//      sk-2005).
// The generator builds hosts with Zipf-distributed sizes, wires each host
// internally as a sparse ring-plus-chords cluster (guaranteeing in-host
// connectivity), then adds preferential cross-host links with probability
// (1 - isolation). A configurable fraction of hosts receives no cross links
// at all, producing the small-component tail.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "graph/builder.hpp"
#include "graph/types.hpp"
#include "util/hash.hpp"
#include "util/rng.hpp"

namespace asyncgt {

struct webgen_params {
  std::uint64_t num_hosts = 1000;
  /// Host sizes follow a truncated Zipf with this exponent over
  /// [min_host_size, max_host_size].
  double zipf_exponent = 1.8;
  std::uint64_t min_host_size = 4;
  std::uint64_t max_host_size = 4096;
  /// In-host extra chords per page, beyond the connectivity ring.
  double intra_chords_per_page = 6.0;
  /// Cross-host links per page for connected hosts.
  double cross_links_per_page = 1.5;
  /// Fraction of hosts that receive no cross-host links (isolated
  /// communities — these become the small-component tail).
  double isolated_host_fraction = 0.15;
  std::uint64_t seed = 7;
};

struct webgen_layout {
  std::vector<std::uint64_t> host_begin;  // host h owns [host_begin[h], host_begin[h+1])
  std::uint64_t num_vertices = 0;
};

/// Computes deterministic host boundaries for `p`.
inline webgen_layout webgen_make_layout(const webgen_params& p) {
  if (p.num_hosts == 0) throw std::invalid_argument("webgen: need hosts");
  if (p.min_host_size < 2 || p.max_host_size < p.min_host_size) {
    throw std::invalid_argument("webgen: bad host size range");
  }
  webgen_layout layout;
  layout.host_begin.reserve(p.num_hosts + 1);
  layout.host_begin.push_back(0);
  xoshiro256ss rng(splitmix64(p.seed).next());
  for (std::uint64_t h = 0; h < p.num_hosts; ++h) {
    // Inverse-CDF sample of a bounded Pareto (continuous Zipf analogue).
    const double u = rng.next_double();
    const double alpha = p.zipf_exponent - 1.0;
    const double lo = static_cast<double>(p.min_host_size);
    const double hi = static_cast<double>(p.max_host_size);
    double size_d;
    if (alpha <= 0.0) {
      size_d = lo + u * (hi - lo);
    } else {
      const double lo_a = std::pow(lo, -alpha);
      const double hi_a = std::pow(hi, -alpha);
      size_d = std::pow(lo_a - u * (lo_a - hi_a), -1.0 / alpha);
    }
    const auto size = static_cast<std::uint64_t>(size_d);
    layout.host_begin.push_back(layout.host_begin.back() + size);
  }
  layout.num_vertices = layout.host_begin.back();
  return layout;
}

/// Generates the undirected web-like graph as a symmetric CSR.
template <typename VertexId>
csr_graph<VertexId> webgen_graph(const webgen_params& p) {
  const webgen_layout layout = webgen_make_layout(p);
  const std::uint64_t n = layout.num_vertices;
  std::vector<edge<VertexId>> edges;

  xoshiro256ss rng(splitmix64(p.seed ^ 0x9E3779B97F4A7C15ULL).next());

  for (std::uint64_t h = 0; h < p.num_hosts; ++h) {
    const std::uint64_t begin = layout.host_begin[h];
    const std::uint64_t end = layout.host_begin[h + 1];
    const std::uint64_t size = end - begin;
    // Connectivity ring: host is internally connected by construction.
    for (std::uint64_t v = begin; v + 1 < end; ++v) {
      edges.push_back({static_cast<VertexId>(v), static_cast<VertexId>(v + 1),
                       1});
    }
    // Random chords inside the host (community density).
    const auto chords = static_cast<std::uint64_t>(
        p.intra_chords_per_page * static_cast<double>(size));
    for (std::uint64_t c = 0; c < chords; ++c) {
      const std::uint64_t a = begin + rng.next_below(size);
      const std::uint64_t b = begin + rng.next_below(size);
      if (a != b) {
        edges.push_back({static_cast<VertexId>(a), static_cast<VertexId>(b),
                         1});
      }
    }
  }

  // Cross-host links: preferential attachment by host size; hosts flagged
  // isolated get none. Using size-weighted target selection (pick a uniform
  // vertex id, look up its host) gives larger hosts more in-links, which is
  // the hub-host behaviour of real crawls.
  const auto isolated_cutoff = static_cast<std::uint64_t>(
      p.isolated_host_fraction * static_cast<double>(p.num_hosts));
  const auto host_is_isolated = [&](std::uint64_t h) {
    // Deterministic pseudo-random subset of hosts, independent of h's size.
    return mix64(h ^ p.seed) % p.num_hosts < isolated_cutoff;
  };
  for (std::uint64_t h = 0; h < p.num_hosts; ++h) {
    if (host_is_isolated(h)) continue;
    const std::uint64_t begin = layout.host_begin[h];
    const std::uint64_t end = layout.host_begin[h + 1];
    const std::uint64_t size = end - begin;
    const auto cross = static_cast<std::uint64_t>(
        p.cross_links_per_page * static_cast<double>(size));
    for (std::uint64_t c = 0; c < cross; ++c) {
      const std::uint64_t src = begin + rng.next_below(size);
      // Rejection-sample a target whose host is not isolated and != h.
      for (int attempt = 0; attempt < 16; ++attempt) {
        const std::uint64_t dst = rng.next_below(n);
        const auto host_of = [&](std::uint64_t v) {
          const auto it = std::upper_bound(layout.host_begin.begin(),
                                           layout.host_begin.end(), v);
          return static_cast<std::uint64_t>(it - layout.host_begin.begin()) -
                 1;
        };
        const std::uint64_t th = host_of(dst);
        if (th != h && !host_is_isolated(th)) {
          edges.push_back({static_cast<VertexId>(src),
                           static_cast<VertexId>(dst), 1});
          break;
        }
      }
    }
  }

  build_options opt;
  opt.symmetrize = true;
  return build_csr<VertexId>(n, std::move(edges), opt);
}

}  // namespace asyncgt
