// Edge-weight assignment for the SSSP experiments (paper §V-A1):
//
//   UW  — uniform weights in [0, num_vertices)
//   LUW — log-uniform weights in [0, 2^i) where i is drawn uniformly from
//         [0, lg(num_vertices))
//
// Weights are a deterministic function of (seed, src, dst) so the same graph
// gets the same weights regardless of edge order, and directed/undirected
// versions of the same edge agree (the pair is hashed order-insensitively).
#pragma once

#include <algorithm>
#include <bit>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "graph/csr_graph.hpp"
#include "graph/types.hpp"
#include "util/hash.hpp"
#include "util/rng.hpp"

namespace asyncgt {

enum class weight_scheme {
  uniform,      // UW
  log_uniform,  // LUW
};

namespace detail {

template <typename VertexId>
std::uint64_t edge_key(VertexId src, VertexId dst, std::uint64_t seed) {
  // Order-insensitive so that symmetrized graphs carry symmetric weights.
  const std::uint64_t a = std::min<std::uint64_t>(src, dst);
  const std::uint64_t b = std::max<std::uint64_t>(src, dst);
  return mix64(a ^ mix64(b ^ seed));
}

}  // namespace detail

/// Weight for a single edge under `scheme`. n = num_vertices. Weights are at
/// least 1 (the algorithms assume non-negative weights; zero weights are
/// legal for them but excluded here to match "BFS = SSSP with weight 1"
/// sanity checks in tests).
template <typename VertexId>
weight_t make_weight(weight_scheme scheme, VertexId src, VertexId dst,
                     std::uint64_t n, std::uint64_t seed) {
  if (n < 2) throw std::invalid_argument("make_weight: need n >= 2");
  xoshiro256ss rng(detail::edge_key(src, dst, seed));
  switch (scheme) {
    case weight_scheme::uniform: {
      return static_cast<weight_t>(1 + rng.next_below(n - 1));
    }
    case weight_scheme::log_uniform: {
      const auto lg_n = static_cast<std::uint64_t>(std::bit_width(n) - 1);
      const std::uint64_t i = rng.next_below(std::max<std::uint64_t>(lg_n, 1));
      const std::uint64_t bound = 1ULL << i;
      return static_cast<weight_t>(1 + rng.next_below(std::max<std::uint64_t>(
                                           bound, 1)));
    }
  }
  throw std::logic_error("make_weight: unknown scheme");
}

/// Returns a weighted copy of `g` (same structure, weights per `scheme`).
template <typename VertexId>
csr_graph<VertexId> add_weights(const csr_graph<VertexId>& g,
                                weight_scheme scheme, std::uint64_t seed) {
  std::vector<std::uint64_t> offsets(g.offsets().begin(), g.offsets().end());
  std::vector<VertexId> targets(g.targets().begin(), g.targets().end());
  std::vector<weight_t> weights(g.num_edges());
  std::uint64_t idx = 0;
  const std::uint64_t n = g.num_vertices();
  for (VertexId v = 0; v < n; ++v) {
    for (VertexId t : g.neighbors(v)) {
      weights[idx++] = make_weight(scheme, v, t, n, seed);
    }
  }
  return csr_graph<VertexId>(std::move(offsets), std::move(targets),
                             std::move(weights));
}

}  // namespace asyncgt
