// RMAT recursive-matrix graph generator (Chakrabarti, Zhan, Faloutsos 2004),
// the synthetic workload of the paper's evaluation.
//
// The paper's two parameterizations are provided as presets:
//   RMAT-A: a=0.45 b=0.15 c=0.15 d=0.25  (moderate out-degree skew)
//   RMAT-B: a=0.57 b=0.19 c=0.19 d=0.05  (heavy out-degree skew)
// with 2^scale vertices and edge_factor (paper: 16) edges per vertex.
// Generation is deterministic in the seed and parallelizable: every edge is
// derived from an independent RNG stream keyed by (seed, edge index).
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "graph/builder.hpp"
#include "graph/types.hpp"
#include "util/hash.hpp"
#include "util/rng.hpp"

namespace asyncgt {

struct rmat_params {
  double a = 0.45, b = 0.15, c = 0.15, d = 0.25;
  unsigned scale = 16;          // num_vertices = 2^scale
  unsigned edge_factor = 16;    // average out-degree (paper: 16)
  std::uint64_t seed = 42;
  /// Shuffle vertex ids through a bijective mix so hubs are not clustered at
  /// low ids. RMAT's recursion concentrates high degrees near id 0; real
  /// graphs do not label hubs consecutively. Kept on by default.
  bool scramble_ids = true;

  std::uint64_t num_vertices() const { return 1ULL << scale; }
  std::uint64_t num_edges() const { return num_vertices() * edge_factor; }

  void validate() const {
    const double sum = a + b + c + d;
    if (sum < 0.999 || sum > 1.001) {
      throw std::invalid_argument("rmat_params: a+b+c+d must be 1, got " +
                                  std::to_string(sum));
    }
    if (scale == 0 || scale > 40) {
      throw std::invalid_argument("rmat_params: scale out of range");
    }
  }
};

inline rmat_params rmat_a(unsigned scale, std::uint64_t seed = 42) {
  rmat_params p;
  p.a = 0.45; p.b = 0.15; p.c = 0.15; p.d = 0.25;
  p.scale = scale;
  p.seed = seed;
  return p;
}

inline rmat_params rmat_b(unsigned scale, std::uint64_t seed = 42) {
  rmat_params p;
  p.a = 0.57; p.b = 0.19; p.c = 0.19; p.d = 0.05;
  p.scale = scale;
  p.seed = seed;
  return p;
}

/// Bijective id scramble: multiply-xorshift over exactly `scale` bits.
template <typename VertexId>
VertexId rmat_scramble(std::uint64_t v, unsigned scale,
                       std::uint64_t seed) noexcept {
  const std::uint64_t mask = (scale == 64) ? ~0ULL : ((1ULL << scale) - 1);
  // xor with a seed-derived constant then apply a feistel-ish pair of rounds
  // confined to the low `scale` bits; both steps are invertible so the map
  // is a permutation of [0, 2^scale).
  std::uint64_t x = v ^ (splitmix64(seed).next() & mask);
  const unsigned half = scale / 2;
  if (half > 0) {
    for (int round = 0; round < 2; ++round) {
      const std::uint64_t lo = x & ((1ULL << half) - 1);
      const std::uint64_t hi = x >> half;
      const std::uint64_t f = mix64(lo + seed + static_cast<unsigned>(round));
      x = ((lo << (scale - half)) | (hi ^ (f & ((1ULL << (scale - half)) - 1)))) &
          mask;
    }
  }
  return static_cast<VertexId>(x);
}

/// Generates one edge (index i) of the RMAT stream.
template <typename VertexId>
edge<VertexId> rmat_edge(const rmat_params& p, std::uint64_t i) {
  xoshiro256ss rng(splitmix64(p.seed ^ mix64(i)).next());
  std::uint64_t src = 0, dst = 0;
  for (unsigned depth = 0; depth < p.scale; ++depth) {
    const double r = rng.next_double();
    src <<= 1;
    dst <<= 1;
    if (r < p.a) {
      // top-left quadrant: no bits set
    } else if (r < p.a + p.b) {
      dst |= 1;
    } else if (r < p.a + p.b + p.c) {
      src |= 1;
    } else {
      src |= 1;
      dst |= 1;
    }
  }
  if (p.scramble_ids) {
    return {rmat_scramble<VertexId>(src, p.scale, p.seed),
            rmat_scramble<VertexId>(dst, p.scale, p.seed), 1};
  }
  return {static_cast<VertexId>(src), static_cast<VertexId>(dst), 1};
}

/// Materializes the full edge list (num_edges entries, before dedup).
template <typename VertexId>
std::vector<edge<VertexId>> rmat_edges(const rmat_params& p) {
  p.validate();
  std::vector<edge<VertexId>> edges;
  edges.reserve(p.num_edges());
  for (std::uint64_t i = 0; i < p.num_edges(); ++i) {
    edges.push_back(rmat_edge<VertexId>(p, i));
  }
  return edges;
}

/// Parallel edge materialization. Because every edge i derives from an
/// independent RNG stream keyed by (seed, i), generation partitions
/// perfectly: thread t fills the contiguous slice [t*m/T, (t+1)*m/T) of the
/// result in place, and the output is bit-identical to rmat_edges() for any
/// thread count.
template <typename VertexId>
std::vector<edge<VertexId>> rmat_edges_parallel(const rmat_params& p,
                                                std::size_t num_threads) {
  p.validate();
  if (num_threads == 0) {
    throw std::invalid_argument("rmat_edges_parallel: need >= 1 thread");
  }
  const std::uint64_t m = p.num_edges();
  std::vector<edge<VertexId>> edges(m);
  std::vector<std::thread> threads;
  threads.reserve(num_threads);
  for (std::size_t t = 0; t < num_threads; ++t) {
    threads.emplace_back([&, t] {
      const std::uint64_t lo = m * t / num_threads;
      const std::uint64_t hi = m * (t + 1) / num_threads;
      for (std::uint64_t i = lo; i < hi; ++i) {
        edges[i] = rmat_edge<VertexId>(p, i);
      }
    });
  }
  for (auto& th : threads) th.join();
  return edges;
}

/// Generates a directed RMAT CSR with unique edges and no self loops,
/// matching the paper's directed inputs for BFS/SSSP.
template <typename VertexId>
csr_graph<VertexId> rmat_graph(const rmat_params& p) {
  build_options opt;
  return build_csr<VertexId>(p.num_vertices(), rmat_edges<VertexId>(p), opt);
}

/// Undirected variant ("created by adding reverse edges") for CC.
template <typename VertexId>
csr_graph<VertexId> rmat_graph_undirected(const rmat_params& p) {
  build_options opt;
  opt.symmetrize = true;
  return build_csr<VertexId>(p.num_vertices(), rmat_edges<VertexId>(p), opt);
}

}  // namespace asyncgt
