// Structured generators:
//
//  * grid_graph — a W×H 4-neighbour mesh, a road-network-like workload with
//    large diameter. Used by the road_sssp example and by tests that need a
//    graph with exactly known shortest paths.
//  * chain_graph — the paper's Figure 2: a directed path 0→1→…→n-1, the
//    worst case for traversal parallelism (every visit depends on the
//    previous one, so the traversal serializes).
//  * star_graph — one hub connected to n-1 leaves; the extreme load-imbalance
//    case for hash-routed queues.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "graph/builder.hpp"
#include "graph/types.hpp"

namespace asyncgt {

/// Undirected W×H grid; vertex (x, y) has id y*width + x.
template <typename VertexId>
csr_graph<VertexId> grid_graph(std::uint64_t width, std::uint64_t height) {
  if (width == 0 || height == 0) {
    throw std::invalid_argument("grid_graph: empty dimension");
  }
  std::vector<edge<VertexId>> edges;
  edges.reserve(2 * width * height);
  for (std::uint64_t y = 0; y < height; ++y) {
    for (std::uint64_t x = 0; x < width; ++x) {
      const std::uint64_t v = y * width + x;
      if (x + 1 < width) {
        edges.push_back({static_cast<VertexId>(v),
                         static_cast<VertexId>(v + 1), 1});
      }
      if (y + 1 < height) {
        edges.push_back({static_cast<VertexId>(v),
                         static_cast<VertexId>(v + width), 1});
      }
    }
  }
  build_options opt;
  opt.symmetrize = true;
  return build_csr<VertexId>(width * height, std::move(edges), opt);
}

/// Directed chain 0→1→…→n-1 (paper Fig. 2: poor parallelism).
template <typename VertexId>
csr_graph<VertexId> chain_graph(std::uint64_t n, bool undirected = false) {
  if (n == 0) throw std::invalid_argument("chain_graph: empty graph");
  std::vector<edge<VertexId>> edges;
  edges.reserve(n);
  for (std::uint64_t v = 0; v + 1 < n; ++v) {
    edges.push_back({static_cast<VertexId>(v), static_cast<VertexId>(v + 1),
                     1});
  }
  build_options opt;
  opt.symmetrize = undirected;
  return build_csr<VertexId>(n, std::move(edges), opt);
}

/// Undirected star: vertex 0 adjacent to all others.
template <typename VertexId>
csr_graph<VertexId> star_graph(std::uint64_t n) {
  if (n < 2) throw std::invalid_argument("star_graph: need n >= 2");
  std::vector<edge<VertexId>> edges;
  edges.reserve(n - 1);
  for (std::uint64_t v = 1; v < n; ++v) {
    edges.push_back({static_cast<VertexId>(0), static_cast<VertexId>(v), 1});
  }
  build_options opt;
  opt.symmetrize = true;
  return build_csr<VertexId>(n, std::move(edges), opt);
}

}  // namespace asyncgt
