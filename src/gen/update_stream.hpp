// Seeded randomized update-stream generator for the dynamic-graph battery.
//
// Produces a sequence of delta_batches over an existing graph: each op is
// an insert of a currently-absent edge or a delete of a currently-live one,
// drawn from an internal evolving edge model that tracks the graph as the
// stream mutates it. Deletes therefore always target edges that exist at
// that point in the stream (base edges or earlier inserts), and inserts
// never duplicate a live edge — every op is "real" under the overlay's set
// semantics, which keeps the differential tests' affected-set accounting
// meaningful. Same seed, same stream, like every generator in src/gen.
//
// symmetric=true keeps a symmetric base symmetric: ops are drawn on
// canonical (min, max) pairs and emitted in both directions — the
// precondition for incremental CC (docs/dynamic_graphs.md).
#pragma once

#include <algorithm>
#include <cstdint>
#include <random>
#include <unordered_map>
#include <utility>
#include <vector>

#include "graph/delta_overlay.hpp"
#include "graph/types.hpp"

namespace asyncgt {

struct update_stream_params {
  std::uint64_t seed = 1;
  std::size_t num_batches = 8;
  std::size_t batch_size = 64;
  double delete_fraction = 0.3;  ///< probability an op is a delete
  bool symmetric = false;        ///< mutate both directions (CC bases)
  std::uint32_t min_weight = 1;  ///< inserted weights drawn from [min, max]
  std::uint32_t max_weight = 1;  ///< (min > max collapses to min)
};

namespace detail {

struct pair_key_hash {
  std::size_t operator()(
      const std::pair<std::uint64_t, std::uint64_t>& p) const noexcept {
    // splitmix-style combine; ids fit 32 bits in every shipped config but
    // stay correct for vertex64.
    std::uint64_t h = p.first * 0x9E3779B97F4A7C15ull;
    h ^= p.second + 0x9E3779B97F4A7C15ull + (h << 6) + (h >> 2);
    return static_cast<std::size_t>(h);
  }
};

/// Live-edge set with O(1) insert, erase, and uniform random sampling:
/// a vector of pairs plus a position map with swap-remove.
class edge_pool {
 public:
  using key = std::pair<std::uint64_t, std::uint64_t>;

  bool contains(const key& k) const { return pos_.count(k) != 0; }
  std::size_t size() const noexcept { return live_.size(); }

  bool insert(const key& k) {
    if (!pos_.emplace(k, live_.size()).second) return false;
    live_.push_back(k);
    return true;
  }

  bool erase(const key& k) {
    auto it = pos_.find(k);
    if (it == pos_.end()) return false;
    const std::size_t i = it->second;
    live_[i] = live_.back();
    pos_[live_[i]] = i;
    live_.pop_back();
    pos_.erase(it);
    return true;
  }

  template <typename Rng>
  key sample(Rng& rng) const {
    return live_[std::uniform_int_distribution<std::size_t>(
        0, live_.size() - 1)(rng)];
  }

 private:
  std::vector<key> live_;
  std::unordered_map<key, std::size_t, pair_key_hash> pos_;
};

}  // namespace detail

/// Generates params.num_batches delta batches over `g`. The internal model
/// starts from g's distinct edge pairs and evolves with each emitted op.
template <typename Graph>
std::vector<delta_batch<typename Graph::vertex_id>> generate_update_stream(
    const Graph& g, const update_stream_params& params) {
  using V = typename Graph::vertex_id;
  const std::uint64_t n = g.num_vertices();
  std::vector<delta_batch<V>> stream;
  if (n < 2) return stream;

  detail::edge_pool live;
  for (std::uint64_t u = 0; u < n; ++u) {
    g.for_each_out_edge(static_cast<V>(u), [&](V v, weight_t) {
      std::uint64_t a = u;
      std::uint64_t b = static_cast<std::uint64_t>(v);
      if (params.symmetric && a > b) std::swap(a, b);
      live.insert({a, b});
    });
  }

  std::mt19937_64 rng(params.seed);
  std::uniform_real_distribution<double> coin(0.0, 1.0);
  std::uniform_int_distribution<std::uint64_t> vert(0, n - 1);
  const std::uint32_t wlo = params.min_weight == 0 ? 1 : params.min_weight;
  std::uniform_int_distribution<std::uint32_t> wdist(
      wlo, std::max(wlo, params.max_weight));

  stream.reserve(params.num_batches);
  for (std::size_t b = 0; b < params.num_batches; ++b) {
    delta_batch<V> batch;
    for (std::size_t i = 0; i < params.batch_size; ++i) {
      const bool want_delete =
          coin(rng) < params.delete_fraction && live.size() > 0;
      if (want_delete) {
        const auto [u, v] = live.sample(rng);
        live.erase({u, v});
        if (params.symmetric) {
          batch.erase_undirected(static_cast<V>(u), static_cast<V>(v));
        } else {
          batch.erase(static_cast<V>(u), static_cast<V>(v));
        }
        continue;
      }
      // Rejection-sample an absent non-loop pair; dense-graph fallback to
      // a delete keeps the stream the requested length.
      bool inserted = false;
      for (int attempt = 0; attempt < 32; ++attempt) {
        std::uint64_t u = vert(rng);
        std::uint64_t v = vert(rng);
        if (u == v) continue;
        if (params.symmetric && u > v) std::swap(u, v);
        if (!live.insert({u, v})) continue;
        const weight_t w = static_cast<weight_t>(wdist(rng));
        if (params.symmetric) {
          batch.insert_undirected(static_cast<V>(u), static_cast<V>(v), w);
        } else {
          batch.insert(static_cast<V>(u), static_cast<V>(v), w);
        }
        inserted = true;
        break;
      }
      if (!inserted && live.size() > 0) {
        const auto [u, v] = live.sample(rng);
        live.erase({u, v});
        if (params.symmetric) {
          batch.erase_undirected(static_cast<V>(u), static_cast<V>(v));
        } else {
          batch.erase(static_cast<V>(u), static_cast<V>(v));
        }
      }
    }
    stream.push_back(std::move(batch));
  }
  return stream;
}

}  // namespace asyncgt
