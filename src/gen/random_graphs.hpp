// Classic random-graph generators beyond RMAT.
//
// The paper's introduction (§I-B) singles out three structural properties —
// power-law degrees, small diameter, community structure — and its related
// work notes that distributed approaches behave well on "regular or
// uniformly random" graphs while degrading on power-law ones. These
// generators produce the comparison points for that spectrum:
//
//   * erdos_renyi_graph  — G(n, m): uniformly random, near-regular degree
//     distribution; the friendly case for synchronous/distributed methods.
//   * watts_strogatz_graph — ring lattice with rewiring: high clustering
//     (community structure) with small diameter, but no degree skew.
//   * barabasi_albert_graph — preferential attachment: pure power-law with
//     hubs, the adversarial case for barriers and block partitioning.
//
// All are deterministic in their seed and emit unique-edge CSRs through the
// shared builder.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "graph/builder.hpp"
#include "graph/types.hpp"
#include "util/rng.hpp"

namespace asyncgt {

/// G(n, m): m distinct undirected edges sampled uniformly (by rejection;
/// requires m comfortably below n*(n-1)/2).
template <typename VertexId>
csr_graph<VertexId> erdos_renyi_graph(std::uint64_t n, std::uint64_t m,
                                      std::uint64_t seed = 1) {
  if (n < 2) throw std::invalid_argument("erdos_renyi: need n >= 2");
  const std::uint64_t max_edges = n * (n - 1) / 2;
  if (m > max_edges / 2) {
    throw std::invalid_argument(
        "erdos_renyi: m too close to complete graph for rejection sampling");
  }
  xoshiro256ss rng(splitmix64(seed).next());
  std::vector<edge<VertexId>> edges;
  edges.reserve(m);
  // Sample with replacement, let the builder dedup; oversample ~5% to land
  // near m unique edges, then trim exactly.
  while (edges.size() < m) {
    const std::uint64_t u = rng.next_below(n);
    const std::uint64_t v = rng.next_below(n);
    if (u == v) continue;
    edges.push_back({static_cast<VertexId>(u), static_cast<VertexId>(v), 1});
  }
  build_options opt;
  opt.symmetrize = true;
  return build_csr<VertexId>(n, std::move(edges), opt);
}

/// Watts–Strogatz small world: ring of n vertices each linked to k nearest
/// neighbours (k even), each edge rewired with probability beta.
template <typename VertexId>
csr_graph<VertexId> watts_strogatz_graph(std::uint64_t n, std::uint32_t k,
                                         double beta,
                                         std::uint64_t seed = 1) {
  if (n < 4) throw std::invalid_argument("watts_strogatz: need n >= 4");
  if (k == 0 || k % 2 != 0 || k >= n) {
    throw std::invalid_argument("watts_strogatz: k must be even, 0 < k < n");
  }
  if (beta < 0.0 || beta > 1.0) {
    throw std::invalid_argument("watts_strogatz: beta in [0, 1]");
  }
  xoshiro256ss rng(splitmix64(seed ^ 0xABCDEF).next());
  std::vector<edge<VertexId>> edges;
  edges.reserve(n * k / 2);
  for (std::uint64_t u = 0; u < n; ++u) {
    for (std::uint32_t j = 1; j <= k / 2; ++j) {
      std::uint64_t v = (u + j) % n;
      if (rng.next_double() < beta) {
        // Rewire the far endpoint to a uniform non-self target.
        do {
          v = rng.next_below(n);
        } while (v == u);
      }
      edges.push_back({static_cast<VertexId>(u), static_cast<VertexId>(v),
                       1});
    }
  }
  build_options opt;
  opt.symmetrize = true;
  return build_csr<VertexId>(n, std::move(edges), opt);
}

/// Barabási–Albert preferential attachment: every new vertex attaches to
/// `attach` existing vertices with probability proportional to degree
/// (implemented with the repeated-endpoint trick: sample a uniform position
/// in the running endpoint list).
template <typename VertexId>
csr_graph<VertexId> barabasi_albert_graph(std::uint64_t n,
                                          std::uint32_t attach,
                                          std::uint64_t seed = 1) {
  if (attach == 0) throw std::invalid_argument("barabasi_albert: attach > 0");
  if (n <= attach) {
    throw std::invalid_argument("barabasi_albert: need n > attach");
  }
  xoshiro256ss rng(splitmix64(seed ^ 0x5151).next());
  std::vector<edge<VertexId>> edges;
  edges.reserve(n * attach);
  // Endpoint multiset: each edge contributes both endpoints, so sampling a
  // uniform element is degree-proportional sampling.
  std::vector<VertexId> endpoints;
  endpoints.reserve(2 * n * attach);
  // Seed clique over the first attach+1 vertices.
  for (std::uint64_t u = 0; u <= attach; ++u) {
    for (std::uint64_t v = u + 1; v <= attach; ++v) {
      edges.push_back({static_cast<VertexId>(u), static_cast<VertexId>(v),
                       1});
      endpoints.push_back(static_cast<VertexId>(u));
      endpoints.push_back(static_cast<VertexId>(v));
    }
  }
  for (std::uint64_t u = attach + 1; u < n; ++u) {
    for (std::uint32_t j = 0; j < attach; ++j) {
      VertexId target;
      do {
        target = endpoints[rng.next_below(endpoints.size())];
      } while (target == static_cast<VertexId>(u));  // no self loops
      edges.push_back({static_cast<VertexId>(u), target, 1});
      endpoints.push_back(static_cast<VertexId>(u));
      endpoints.push_back(target);
    }
  }
  build_options opt;
  opt.symmetrize = true;
  return build_csr<VertexId>(n, std::move(edges), opt);
}

}  // namespace asyncgt
