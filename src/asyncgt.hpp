// Umbrella header: the public API of the AsyncGT library.
//
// Core entry points:
//   async_bfs(graph, start, cfg)   -> bfs_result   (levels + parents)
//   async_sssp(graph, start, cfg)  -> sssp_result  (distances + parents)
//   async_cc(graph, cfg)           -> cc_result    (min-id component labels)
// where `graph` is an in-memory csr_graph<V> or a disk-backed
// sem::sem_csr<V>, and cfg is a visitor_queue_config (thread count,
// ordering, secondary sort).
//
// See README.md for a walkthrough and examples/ for runnable programs.
#pragma once

#include "core/async_bfs.hpp"
#include "core/async_cc.hpp"
#include "core/async_kcore.hpp"
#include "core/async_pagerank.hpp"
#include "core/async_sssp.hpp"
#include "core/checkpoint.hpp"
#include "core/graph_metrics.hpp"
#include "core/multi_source_bfs.hpp"
#include "core/traversal_result.hpp"
#include "core/validate.hpp"
#include "gen/grid.hpp"
#include "gen/random_graphs.hpp"
#include "gen/rmat.hpp"
#include "gen/webgen.hpp"
#include "gen/weights.hpp"
#include "graph/builder.hpp"
#include "graph/csr_graph.hpp"
#include "graph/graph_io.hpp"
#include "graph/graph_stats.hpp"
#include "graph/text_io.hpp"
#include "graph/types.hpp"
#include "queue/traversal_abort.hpp"
#include "queue/visitor_queue.hpp"
#include "sem/device_presets.hpp"
#include "sem/block_cache.hpp"
#include "sem/ext_sorter.hpp"
#include "sem/fault_injector.hpp"
#include "sem/io_error.hpp"
#include "sem/ooc_builder.hpp"
#include "sem/sem_csr.hpp"
#include "sem/ssd_model.hpp"
#include "telemetry/json.hpp"
#include "telemetry/metrics_json.hpp"
#include "telemetry/metrics_registry.hpp"
#include "telemetry/sampler.hpp"
#include "telemetry/trace_writer.hpp"
