// Umbrella header: THE public API of the AsyncGT library.
//
// This is the only header user code is supposed to include. Everything
// under src/ other than this file is an internal header: include paths,
// layering, and contents of queue/, service/, core/, sem/, telemetry/ etc.
// may change without notice between versions — code that includes them
// directly (e.g. "queue/visitor_queue.hpp") is unsupported.
//
// Session API (docs/service_api.md) — the persistent traversal service:
//   asyncgt::engine eng({.pool_threads = 16});
//   auto j1 = eng.submit_bfs(g, 0);          // returns immediately
//   auto j2 = eng.submit_sssp(g, 42);        // concurrent with j1
//   auto bfs = j1.get();                     // bfs_result, or throws
// An engine owns a long-lived worker pool (threads parked between jobs,
// never re-spawned) and admits multiple concurrent traversals over one
// shared in-memory or semi-external graph. Job handles carry per-job stats,
// cooperative cancellation (j.cancel() -> traversal_aborted), and a live
// pending() frontier probe. Per-job options and telemetry sinks travel in
// one traversal_options struct.
//
// One-shot compatibility API — the original free functions, now thin
// submit-and-wait wrappers over a shared process-local engine:
//   async_bfs(graph, start, opts)   -> bfs_result   (levels + parents)
//   async_sssp(graph, start, opts)  -> sssp_result  (distances + parents)
//   async_cc(graph, opts)           -> cc_result    (min-id component labels)
// where `graph` is an in-memory csr_graph<V> or a disk-backed
// sem::sem_csr<V>, and opts is a traversal_options (a visitor_queue_config
// converts implicitly, so pre-service call sites compile unchanged).
//
// See README.md for a walkthrough and examples/ for runnable programs.
#pragma once

#include "core/async_bfs.hpp"
#include "core/async_cc.hpp"
#include "core/async_kcore.hpp"
#include "core/async_pagerank.hpp"
#include "core/async_sssp.hpp"
#include "core/checkpoint.hpp"
#include "core/graph_metrics.hpp"
#include "core/hybrid_traversal.hpp"
#include "core/incremental.hpp"
#include "core/multi_source_bfs.hpp"
#include "core/traversal_result.hpp"
#include "core/validate.hpp"
#include "gen/grid.hpp"
#include "gen/random_graphs.hpp"
#include "gen/rmat.hpp"
#include "gen/update_stream.hpp"
#include "gen/webgen.hpp"
#include "gen/weights.hpp"
#include "graph/builder.hpp"
#include "graph/csr_graph.hpp"
#include "graph/delta_overlay.hpp"
#include "graph/graph_io.hpp"
#include "graph/graph_stats.hpp"
#include "graph/text_io.hpp"
#include "graph/types.hpp"
#include "queue/traversal_abort.hpp"
#include "queue/visitor_queue.hpp"
#include "sem/device_presets.hpp"
#include "sem/block_cache.hpp"
#include "sem/block_heat.hpp"
#include "sem/block_index.hpp"
#include "sem/block_pressure.hpp"
#include "sem/cache_policy.hpp"
#include "sem/ext_sorter.hpp"
#include "sem/fault_injector.hpp"
#include "sem/hot_advisor.hpp"
#include "sem/io_error.hpp"
#include "sem/ooc_builder.hpp"
#include "sem/prefetcher.hpp"
#include "sem/sem_compaction.hpp"
#include "sem/sem_config.hpp"
#include "sem/sem_csr.hpp"
#include "sem/ssd_model.hpp"
#include "service/engine.hpp"
#include "service/traversal_options.hpp"
#include "service/worker_pool.hpp"
#include "telemetry/json.hpp"
#include "telemetry/metric_scope.hpp"
#include "telemetry/metrics_json.hpp"
#include "telemetry/metrics_registry.hpp"
#include "telemetry/percentiles.hpp"
#include "telemetry/sampler.hpp"
#include "telemetry/span.hpp"
#include "telemetry/stats_dump.hpp"
#include "telemetry/trace_writer.hpp"
