// Synchronous (Jacobi-style) label-propagation Connected Components — the
// barrier-per-iteration algorithmic class of MTGL's CC on SMP systems.
//
// Every iteration, each vertex's next label is the minimum of its own label
// and its neighbours' current labels; iterate to a fixed point. Labels start
// as own ids, so the fixed point assigns every vertex the minimum id in its
// component (same contract as async_cc / serial_cc). The iteration count is
// bounded by the eccentricity of each component's minimum vertex — small for
// the small-diameter graphs of the paper, Θ(n) for chains, which the
// ablation bench uses to show where synchronous propagation collapses.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <thread>
#include <vector>

#include "core/traversal_result.hpp"
#include "graph/types.hpp"
#include "util/barrier.hpp"
#include "util/cache_line.hpp"

namespace asyncgt {

struct syncprop_result_extra {
  std::uint64_t iterations = 0;
  std::uint64_t barrier_crossings = 0;
};

template <typename Graph>
cc_result<typename Graph::vertex_id> syncprop_cc(
    const Graph& g, std::size_t num_threads,
    syncprop_result_extra* extra = nullptr) {
  using V = typename Graph::vertex_id;
  if (num_threads == 0) {
    throw std::invalid_argument("syncprop_cc: need at least one thread");
  }
  const std::uint64_t n = g.num_vertices();
  std::vector<V> cur(n), nxt(n);
  for (std::uint64_t v = 0; v < n; ++v) cur[v] = static_cast<V>(v);

  thread_barrier barrier(num_threads);
  std::atomic<bool> changed{false};
  std::atomic<bool> finished{false};
  std::vector<padded<std::uint64_t>> updates(num_threads);
  std::uint64_t iterations = 0;

  auto worker = [&](std::size_t tid) {
    const std::uint64_t lo = n * tid / num_threads;
    const std::uint64_t hi = n * (tid + 1) / num_threads;
    for (;;) {
      bool local_changed = false;
      for (std::uint64_t v = lo; v < hi; ++v) {
        V best = cur[v];
        g.for_each_out_edge(static_cast<V>(v), [&](V u, weight_t) {
          best = std::min(best, cur[u]);
        });
        nxt[v] = best;
        if (best != cur[v]) {
          local_changed = true;
          ++updates[tid].value;
        }
      }
      if (local_changed) changed.store(true, std::memory_order_relaxed);
      if (barrier.arrive_and_wait()) {
        cur.swap(nxt);
        ++iterations;
        if (!changed.load(std::memory_order_relaxed)) {
          finished.store(true, std::memory_order_relaxed);
        }
        changed.store(false, std::memory_order_relaxed);
      }
      barrier.arrive_and_wait();
      if (finished.load(std::memory_order_relaxed)) return;
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(num_threads);
  for (std::size_t t = 0; t < num_threads; ++t) threads.emplace_back(worker, t);
  for (auto& th : threads) th.join();

  cc_result<V> out;
  out.component = std::move(cur);
  for (const auto& u : updates) out.updates += u.value;
  out.stats.visits = iterations * n;  // every vertex scanned per iteration
  if (extra != nullptr) {
    extra->iterations = iterations;
    extra->barrier_crossings = barrier.crossings();
  }
  return out;
}

}  // namespace asyncgt
