// Serial k-core decomposition by bucket peeling (Batagelj–Zaveršnik,
// O(V + E)): repeatedly remove the minimum-degree vertex; its degree at
// removal time is its coreness. The reference implementation the
// asynchronous h-index version is validated against.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/types.hpp"

namespace asyncgt {

template <typename Graph>
std::vector<std::uint32_t> serial_kcore(const Graph& g) {
  using V = typename Graph::vertex_id;
  const std::uint64_t n = g.num_vertices();
  std::vector<std::uint32_t> degree(n);
  std::uint32_t max_degree = 0;
  for (V v = 0; v < n; ++v) {
    degree[v] = static_cast<std::uint32_t>(g.out_degree(v));
    max_degree = std::max(max_degree, degree[v]);
  }

  // Bucket sort vertices by degree; `position`/`order` track where each
  // vertex sits so a degree decrement is an O(1) swap toward its bucket.
  std::vector<std::uint64_t> bucket_start(max_degree + 2, 0);
  for (V v = 0; v < n; ++v) ++bucket_start[degree[v] + 1];
  for (std::uint32_t d = 1; d <= max_degree + 1; ++d) {
    bucket_start[d] += bucket_start[d - 1];
  }
  std::vector<V> order(n);
  std::vector<std::uint64_t> position(n);
  {
    std::vector<std::uint64_t> cursor(bucket_start.begin(),
                                      bucket_start.end() - 1);
    for (V v = 0; v < n; ++v) {
      position[v] = cursor[degree[v]]++;
      order[position[v]] = v;
    }
  }

  std::vector<std::uint32_t> core(n, 0);
  std::vector<char> removed(n, 0);
  for (std::uint64_t i = 0; i < n; ++i) {
    const V v = order[i];
    core[v] = degree[v];
    removed[v] = 1;
    g.for_each_out_edge(v, [&](V u, weight_t) {
      if (removed[u] || degree[u] <= degree[v]) return;
      // Move u into the next-lower bucket: swap it with the first vertex of
      // its current bucket, then shrink the bucket boundary.
      const std::uint32_t du = degree[u];
      const std::uint64_t u_pos = position[u];
      const std::uint64_t first_pos = bucket_start[du];
      const V first = order[first_pos];
      if (first != u) {
        std::swap(order[u_pos], order[first_pos]);
        position[u] = first_pos;
        position[first] = u_pos;
      }
      ++bucket_start[du];
      --degree[u];
    });
  }
  return core;
}

}  // namespace asyncgt
