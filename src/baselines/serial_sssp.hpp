// Serial Dijkstra SSSP with a lazy-deletion binary heap — the BGL-equivalent
// serial baseline for the paper's Table II, and the source of reference
// distances for correctness tests.
#pragma once

#include <cstdint>
#include <queue>
#include <stdexcept>
#include <vector>

#include "core/traversal_result.hpp"
#include "graph/types.hpp"

namespace asyncgt {

template <typename Graph>
sssp_result<typename Graph::vertex_id> dijkstra_sssp(
    const Graph& g, typename Graph::vertex_id start) {
  using V = typename Graph::vertex_id;
  if (start >= g.num_vertices()) {
    throw std::out_of_range("dijkstra_sssp: start vertex out of range");
  }
  sssp_result<V> out;
  out.dist.assign(g.num_vertices(), infinite_distance<dist_t>);
  out.parent.assign(g.num_vertices(), invalid_vertex<V>);

  using entry = std::pair<dist_t, V>;  // (distance, vertex), min first
  std::priority_queue<entry, std::vector<entry>, std::greater<entry>> pq;
  out.dist[start] = 0;
  out.parent[start] = start;
  ++out.updates;
  pq.push({0, start});
  while (!pq.empty()) {
    const auto [d, u] = pq.top();
    pq.pop();
    if (d != out.dist[u]) continue;  // stale (lazy deletion)
    ++out.stats.visits;
    g.for_each_out_edge(u, [&](V v, weight_t w) {
      const dist_t nd = d + w;
      if (nd < out.dist[v]) {
        out.dist[v] = nd;
        out.parent[v] = u;
        ++out.updates;
        pq.push({nd, v});
      }
    });
  }
  return out;
}

}  // namespace asyncgt
