// Serial connected components on an undirected (symmetric) CSR: one BFS per
// component, scanning seed vertices in ascending id order so every label is
// the component's minimum vertex id — the same labelling contract as the
// asynchronous algorithm, making results directly comparable.
#pragma once

#include <cstdint>
#include <vector>

#include "core/traversal_result.hpp"
#include "graph/types.hpp"

namespace asyncgt {

template <typename Graph>
cc_result<typename Graph::vertex_id> serial_cc(const Graph& g) {
  using V = typename Graph::vertex_id;
  cc_result<V> out;
  out.component.assign(g.num_vertices(), invalid_vertex<V>);

  std::vector<V> stack;
  for (V seed = 0; seed < g.num_vertices(); ++seed) {
    if (out.component[seed] != invalid_vertex<V>) continue;
    // `seed` is the smallest unlabelled id, hence the minimum of its
    // component (all smaller members would have labelled it already).
    out.component[seed] = seed;
    ++out.updates;
    stack.push_back(seed);
    while (!stack.empty()) {
      const V u = stack.back();
      stack.pop_back();
      ++out.stats.visits;
      g.for_each_out_edge(u, [&](V v, weight_t) {
        if (out.component[v] == invalid_vertex<V>) {
          out.component[v] = seed;
          ++out.updates;
          stack.push_back(v);
        }
      });
    }
  }
  return out;
}

}  // namespace asyncgt
