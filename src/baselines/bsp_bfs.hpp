// BFS on the BSP engine — the PBGL-style distributed baseline for Table I.
//
// Messages carry (target, parent, level); each rank keeps the level/parent
// arrays of its owned block. A superstep corresponds to one BFS level, so
// the engine's superstep count matches the graph's level count (+1 for the
// final empty exchange).
#pragma once

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "baselines/bsp_engine.hpp"
#include "core/traversal_result.hpp"
#include "util/cache_line.hpp"
#include "graph/types.hpp"

namespace asyncgt {

template <typename Graph>
bfs_result<typename Graph::vertex_id> bsp_bfs(
    const Graph& g, typename Graph::vertex_id start, std::size_t ranks,
    bsp_stats* stats_out = nullptr) {
  using V = typename Graph::vertex_id;
  if (start >= g.num_vertices()) {
    throw std::out_of_range("bsp_bfs: start vertex out of range");
  }

  struct message {
    V target;
    V parent;
    dist_t level;
  };

  bfs_result<V> out;
  out.level.assign(g.num_vertices(), infinite_distance<dist_t>);
  out.parent.assign(g.num_vertices(), invalid_vertex<V>);

  bsp_distribution dist(g.num_vertices(), ranks);
  std::vector<padded<std::uint64_t>> updates(ranks);

  const auto handler = [&](std::size_t rank, const message& m, auto&& send) {
    if (m.level < out.level[m.target]) {
      out.level[m.target] = m.level;
      out.parent[m.target] = m.parent;
      ++updates[rank].value;
      g.for_each_out_edge(m.target, [&](V v, weight_t) {
        send(v, message{v, m.target, m.level + 1});
      });
    }
  };

  const std::vector<bsp_initial<message>> initial{
      {start, message{start, start, 0}}};
  bsp_stats stats = bsp_run(dist, initial, handler);
  if (stats_out != nullptr) *stats_out = stats;

  for (const auto& u : updates) out.updates += u.value;
  out.stats.visits = stats.total_messages;
  return out;
}

}  // namespace asyncgt
