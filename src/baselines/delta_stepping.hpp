// Serial delta-stepping SSSP (Meyer & Sanders 1998) — an additional
// label-correcting baseline between Dijkstra and Bellman-Ford, included as
// an ablation comparator for the asynchronous SSSP: like the async
// algorithm it tolerates re-relaxation, but it synchronizes on bucket
// boundaries. The bucket-settling count it reports is the synchronous
// analogue of the async algorithm's zero synchronizations.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "core/traversal_result.hpp"
#include "graph/types.hpp"

namespace asyncgt {

struct delta_stepping_extra {
  std::uint64_t bucket_rounds = 0;  // inner light-edge phases (sync points)
  std::uint64_t relaxations = 0;
};

template <typename Graph>
sssp_result<typename Graph::vertex_id> delta_stepping_sssp(
    const Graph& g, typename Graph::vertex_id start, dist_t delta,
    delta_stepping_extra* extra = nullptr) {
  using V = typename Graph::vertex_id;
  if (start >= g.num_vertices()) {
    throw std::out_of_range("delta_stepping: start vertex out of range");
  }
  if (delta == 0) throw std::invalid_argument("delta_stepping: delta > 0");

  sssp_result<V> out;
  out.dist.assign(g.num_vertices(), infinite_distance<dist_t>);
  out.parent.assign(g.num_vertices(), invalid_vertex<V>);

  std::vector<std::vector<V>> buckets;
  std::vector<std::uint64_t> in_bucket(g.num_vertices(),
                                       ~std::uint64_t{0});  // bucket index

  delta_stepping_extra local_extra;
  delta_stepping_extra& ex = extra != nullptr ? *extra : local_extra;

  const auto relax = [&](V v, dist_t nd, V parent) {
    ++ex.relaxations;
    if (nd >= out.dist[v]) return;
    out.dist[v] = nd;
    out.parent[v] = parent;
    ++out.updates;
    const auto b = static_cast<std::size_t>(nd / delta);
    if (b >= buckets.size()) buckets.resize(b + 1);
    // Lazy removal: stale entries in old buckets are skipped by the dist
    // check when popped.
    buckets[b].push_back(v);
    in_bucket[v] = b;
  };

  relax(start, 0, start);
  for (std::size_t b = 0; b < buckets.size(); ++b) {
    std::vector<V> settled;  // vertices finalized in this bucket (heavy pass)
    while (!buckets[b].empty()) {
      ++ex.bucket_rounds;
      std::vector<V> frontier;
      frontier.swap(buckets[b]);
      for (const V u : frontier) {
        if (out.dist[u] / delta != b) continue;  // stale entry
        if (in_bucket[u] != b) continue;
        in_bucket[u] = ~std::uint64_t{0};
        settled.push_back(u);
        ++out.stats.visits;
        // Light edges (w < delta) may re-insert into this bucket.
        g.for_each_out_edge(u, [&](V v, weight_t w) {
          if (w < delta) relax(v, out.dist[u] + w, u);
        });
      }
    }
    // Heavy edges cannot land back in bucket b.
    for (const V u : settled) {
      g.for_each_out_edge(u, [&](V v, weight_t w) {
        if (w >= delta) relax(v, out.dist[u] + w, u);
      });
    }
  }
  return out;
}

}  // namespace asyncgt
