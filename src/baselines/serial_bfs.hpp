// Serial queue-based BFS — the stand-in for the paper's BGL baseline
// ("BGL is used as an efficient serial baseline to compute speedup").
#pragma once

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "core/traversal_result.hpp"
#include "graph/types.hpp"

namespace asyncgt {

template <typename Graph>
bfs_result<typename Graph::vertex_id> serial_bfs(
    const Graph& g, typename Graph::vertex_id start) {
  using V = typename Graph::vertex_id;
  if (start >= g.num_vertices()) {
    throw std::out_of_range("serial_bfs: start vertex out of range");
  }
  bfs_result<V> out;
  out.level.assign(g.num_vertices(), infinite_distance<dist_t>);
  out.parent.assign(g.num_vertices(), invalid_vertex<V>);

  // Two-vector frontier swap instead of one std::queue: cheaper, and the
  // level counter falls out naturally.
  std::vector<V> frontier{start}, next;
  out.level[start] = 0;
  out.parent[start] = start;
  ++out.updates;
  dist_t lvl = 0;
  while (!frontier.empty()) {
    next.clear();
    for (const V u : frontier) {
      g.for_each_out_edge(u, [&](V v, weight_t) {
        if (out.level[v] == infinite_distance<dist_t>) {
          out.level[v] = lvl + 1;
          out.parent[v] = u;
          ++out.updates;
          next.push_back(v);
        }
      });
    }
    frontier.swap(next);
    ++lvl;
  }
  out.stats.visits = out.updates;  // serial BFS visits each vertex once
  return out;
}

}  // namespace asyncgt
