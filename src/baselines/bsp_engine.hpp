// Bulk-Synchronous-Parallel message-passing engine — the stand-in for the
// paper's PBGL (distributed-memory) comparisons.
//
// R "ranks" (threads here; processes with MPI in the real PBGL) each own a
// block of the vertex range. Computation proceeds in supersteps: every rank
// drains its inbox, handling each message with a user callback that may send
// messages to arbitrary vertices; a barrier ends the superstep and the
// engine exchanges the per-rank outboxes into next-superstep inboxes. The
// run terminates when a superstep produces no messages.
//
// The engine reports superstep counts and per-rank message imbalance: on
// power-law graphs the rank owning a hub receives a disproportionate share
// of messages while every other rank idles at the barrier — the failure
// mode the paper attributes to distributed approaches ("suffers from
// significant load imbalance when processing power-law graphs").
#pragma once

#include <algorithm>
#include <cstdint>
#include <stdexcept>
#include <thread>
#include <vector>

#include "util/barrier.hpp"
#include "util/stats.hpp"

namespace asyncgt {

struct bsp_stats {
  std::uint64_t supersteps = 0;
  std::uint64_t total_messages = 0;
  /// Coefficient of variation of messages handled per rank (0 = balanced).
  double rank_imbalance_cv = 0.0;
  /// Largest single-rank inbox observed in any superstep.
  std::uint64_t max_inbox = 0;
};

/// Block vertex distribution: rank r owns [n*r/R, n*(r+1)/R).
class bsp_distribution {
 public:
  bsp_distribution(std::uint64_t num_vertices, std::size_t ranks)
      : n_(num_vertices), ranks_(ranks) {
    if (ranks == 0) throw std::invalid_argument("bsp: need at least one rank");
  }

  /// Inverse of the block formula: owner(v) = ceil((v+1)*R/n) - 1, i.e. the
  /// unique r with begin(r) <= v < end(r).
  std::size_t owner(std::uint64_t v) const noexcept {
    const auto num = (static_cast<unsigned __int128>(v) + 1) * ranks_ - 1;
    return static_cast<std::size_t>(num / n_);
  }

  std::uint64_t begin(std::size_t rank) const noexcept {
    return static_cast<std::uint64_t>(
        static_cast<unsigned __int128>(n_) * rank / ranks_);
  }
  std::uint64_t end(std::size_t rank) const noexcept {
    return static_cast<std::uint64_t>(
        static_cast<unsigned __int128>(n_) * (rank + 1) / ranks_);
  }
  std::size_t ranks() const noexcept { return ranks_; }
  std::uint64_t num_vertices() const noexcept { return n_; }

 private:
  std::uint64_t n_;
  std::size_t ranks_;
};

/// An initial message pre-routed to a destination vertex.
template <typename Message>
struct bsp_initial {
  std::uint64_t dst_vertex;
  Message payload;
};

/// Runs a BSP computation to quiescence. Handler signature:
///   handler(std::size_t rank, const Message& m, auto&& send)
/// where send(dst_vertex, Message) routes the message to owner(dst_vertex)'s
/// next-superstep inbox. Handlers for different ranks run concurrently; a
/// handler must only touch algorithm state of vertices its own rank owns.
template <typename Message, typename Handler>
bsp_stats bsp_run(const bsp_distribution& dist,
                  const std::vector<bsp_initial<Message>>& initial,
                  Handler&& handler) {
  const std::size_t R = dist.ranks();
  std::vector<std::vector<Message>> inbox(R);
  std::vector<std::vector<std::vector<Message>>> outbox(
      R, std::vector<std::vector<Message>>(R));

  for (const auto& m : initial) {
    inbox[dist.owner(m.dst_vertex)].push_back(m.payload);
  }

  bsp_stats stats;
  std::vector<std::uint64_t> handled(R, 0);
  thread_barrier barrier(R);
  bool finished = false;  // written only in the barrier's serial section

  auto worker = [&](std::size_t rank) {
    for (;;) {
      auto send = [&](std::uint64_t dst_vertex, Message m) {
        outbox[rank][dist.owner(dst_vertex)].push_back(std::move(m));
      };
      for (const Message& m : inbox[rank]) handler(rank, m, send);
      handled[rank] += inbox[rank].size();
      if (barrier.arrive_and_wait()) {
        // Serial section: account the finished superstep, exchange outboxes.
        ++stats.supersteps;
        for (std::size_t r = 0; r < R; ++r) {
          stats.max_inbox =
              std::max<std::uint64_t>(stats.max_inbox, inbox[r].size());
          stats.total_messages += inbox[r].size();
          inbox[r].clear();
        }
        std::uint64_t pending = 0;
        for (std::size_t dst = 0; dst < R; ++dst) {
          for (std::size_t src = 0; src < R; ++src) {
            auto& buf = outbox[src][dst];
            inbox[dst].insert(inbox[dst].end(), buf.begin(), buf.end());
            pending += buf.size();
            buf.clear();
          }
        }
        if (pending == 0) finished = true;
      }
      barrier.arrive_and_wait();
      if (finished) return;
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(R);
  for (std::size_t r = 0; r < R; ++r) threads.emplace_back(worker, r);
  for (auto& th : threads) th.join();

  summary_stats s;
  for (const auto h : handled) s.add(static_cast<double>(h));
  stats.rank_imbalance_cv = s.cv();
  return stats;
}

}  // namespace asyncgt
