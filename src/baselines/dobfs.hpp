// Direction-optimizing (top-down / bottom-up hybrid) BFS — Beamer et al.'s
// successor technique, included as a forward-looking comparator: where the
// paper removes synchronization to tolerate skew, direction switching keeps
// the barriers but shrinks the dominant levels' edge work by scanning
// *unvisited* vertices and probing their in-neighbours once the frontier is
// large. Requires a symmetric graph (bottom-up probes out-edges as
// in-edges); serial implementation, compared for edge-inspection counts in
// bench/ext_dobfs.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "core/traversal_result.hpp"
#include "graph/types.hpp"

namespace asyncgt {

struct dobfs_extra {
  std::uint64_t edges_inspected = 0;
  std::uint64_t top_down_levels = 0;
  std::uint64_t bottom_up_levels = 0;
};

template <typename Graph>
bfs_result<typename Graph::vertex_id> dobfs(
    const Graph& g, typename Graph::vertex_id start,
    dobfs_extra* extra = nullptr, double switch_fraction = 0.05) {
  using V = typename Graph::vertex_id;
  if (start >= g.num_vertices()) {
    throw std::out_of_range("dobfs: start vertex out of range");
  }
  const std::uint64_t n = g.num_vertices();
  bfs_result<V> out;
  out.level.assign(n, infinite_distance<dist_t>);
  out.parent.assign(n, invalid_vertex<V>);
  out.level[start] = 0;
  out.parent[start] = start;
  out.updates = 1;

  dobfs_extra local;
  dobfs_extra& ex = extra != nullptr ? *extra : local;

  std::vector<V> frontier{start};
  dist_t lvl = 0;
  while (!frontier.empty()) {
    std::vector<V> next;
    // Heuristic: go bottom-up once the frontier is a significant fraction
    // of the graph (Beamer's alpha/beta test simplified to one knob).
    const bool bottom_up =
        frontier.size() >
        static_cast<std::uint64_t>(switch_fraction * static_cast<double>(n));
    if (bottom_up) {
      ++ex.bottom_up_levels;
      for (V v = 0; v < n; ++v) {
        if (out.level[v] != infinite_distance<dist_t>) continue;
        bool claimed = false;
        g.for_each_out_edge(v, [&](V u, weight_t) {
          ++ex.edges_inspected;
          // NOTE: cannot early-exit for_each_out_edge; the claimed flag
          // keeps the semantics right while the scan finishes. The
          // inspected count therefore upper-bounds a real implementation's.
          if (!claimed && out.level[u] == lvl) {
            out.level[v] = lvl + 1;
            out.parent[v] = u;
            ++out.updates;
            next.push_back(v);
            claimed = true;
          }
        });
      }
    } else {
      ++ex.top_down_levels;
      for (const V u : frontier) {
        g.for_each_out_edge(u, [&](V v, weight_t) {
          ++ex.edges_inspected;
          if (out.level[v] == infinite_distance<dist_t>) {
            out.level[v] = lvl + 1;
            out.parent[v] = u;
            ++out.updates;
            next.push_back(v);
          }
        });
      }
    }
    frontier.swap(next);
    ++lvl;
  }
  out.stats.visits = out.updates;
  return out;
}

}  // namespace asyncgt
