// Direction-optimizing (top-down / bottom-up hybrid) BFS — Beamer et al.'s
// successor technique, included as a forward-looking comparator: where the
// paper removes synchronization to tolerate skew, direction switching keeps
// the barriers but shrinks the dominant levels' edge work by scanning
// *unvisited* vertices and probing their in-neighbours once the frontier is
// large. Serial implementation, compared for edge-inspection counts in
// bench/ext_dobfs.
//
// When the graph carries a reverse view (csr_graph::ensure_reverse /
// graph_io's ".rev" companion), the bottom-up probe walks real in-edges with
// an exact early-exit inspection count — so dobfs is valid on directed
// graphs too, and its counts are comparable to core/hybrid_traversal.hpp's.
// Without one it falls back to probing out-edges as in-edges, which is only
// correct on symmetric graphs and whose count upper-bounds a real
// implementation's (the callback cannot break out of the scan).
#pragma once

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "core/traversal_result.hpp"
#include "graph/types.hpp"

namespace asyncgt {

struct dobfs_extra {
  std::uint64_t edges_inspected = 0;
  std::uint64_t top_down_levels = 0;
  std::uint64_t bottom_up_levels = 0;
};

template <typename Graph>
bfs_result<typename Graph::vertex_id> dobfs(
    const Graph& g, typename Graph::vertex_id start,
    dobfs_extra* extra = nullptr, double switch_fraction = 0.05) {
  using V = typename Graph::vertex_id;
  if (start >= g.num_vertices()) {
    throw std::out_of_range("dobfs: start vertex out of range");
  }
  const std::uint64_t n = g.num_vertices();
  bfs_result<V> out;
  out.level.assign(n, infinite_distance<dist_t>);
  out.parent.assign(n, invalid_vertex<V>);
  out.level[start] = 0;
  out.parent[start] = start;
  out.updates = 1;

  dobfs_extra local;
  dobfs_extra& ex = extra != nullptr ? *extra : local;

  std::vector<V> frontier{start};
  dist_t lvl = 0;
  while (!frontier.empty()) {
    std::vector<V> next;
    // Heuristic: go bottom-up once the frontier is a significant fraction
    // of the graph (Beamer's alpha/beta test simplified to one knob).
    const bool bottom_up =
        frontier.size() >
        static_cast<std::uint64_t>(switch_fraction * static_cast<double>(n));
    if (bottom_up) {
      ++ex.bottom_up_levels;
      bool use_reverse = false;
      if constexpr (requires { g.has_reverse(); }) {
        use_reverse = g.has_reverse();
      }
      for (V v = 0; v < n; ++v) {
        if (out.level[v] != infinite_distance<dist_t>) continue;
        bool claimed = false;
        if (use_reverse) {
          if constexpr (requires { g.has_reverse(); }) {
            // Real in-edge probe: exact on directed graphs, and the count
            // stops at the claiming edge (early exit).
            g.for_each_in_edge(v, [&](V u, weight_t) {
              if (claimed) return;
              ++ex.edges_inspected;
              if (out.level[u] == lvl) {
                out.level[v] = lvl + 1;
                out.parent[v] = u;
                ++out.updates;
                next.push_back(v);
                claimed = true;
              }
            });
          }
        } else {
          g.for_each_out_edge(v, [&](V u, weight_t) {
            ++ex.edges_inspected;
            // NOTE: cannot early-exit for_each_out_edge; the claimed flag
            // keeps the semantics right while the scan finishes. The
            // inspected count therefore upper-bounds a real
            // implementation's. Symmetric graphs only.
            if (!claimed && out.level[u] == lvl) {
              out.level[v] = lvl + 1;
              out.parent[v] = u;
              ++out.updates;
              next.push_back(v);
              claimed = true;
            }
          });
        }
      }
    } else {
      ++ex.top_down_levels;
      for (const V u : frontier) {
        g.for_each_out_edge(u, [&](V v, weight_t) {
          ++ex.edges_inspected;
          if (out.level[v] == infinite_distance<dist_t>) {
            out.level[v] = lvl + 1;
            out.parent[v] = u;
            ++out.updates;
            next.push_back(v);
          }
        });
      }
    }
    frontier.swap(next);
    ++lvl;
  }
  out.stats.visits = out.updates;
  return out;
}

}  // namespace asyncgt
