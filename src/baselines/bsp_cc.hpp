// Connected components on the BSP engine — the PBGL-style distributed
// baseline for Table III. Min-label propagation: every vertex starts with
// its own id, each superstep exchanges improved labels across rank
// boundaries. Requires a symmetric (undirected) graph, like all CC here.
#pragma once

#include <cstdint>
#include <vector>

#include "baselines/bsp_engine.hpp"
#include "core/traversal_result.hpp"
#include "util/cache_line.hpp"
#include "graph/types.hpp"

namespace asyncgt {

template <typename Graph>
cc_result<typename Graph::vertex_id> bsp_cc(const Graph& g, std::size_t ranks,
                                            bsp_stats* stats_out = nullptr) {
  using V = typename Graph::vertex_id;

  struct message {
    V target;
    V ccid;
  };

  cc_result<V> out;
  out.component.assign(g.num_vertices(), invalid_vertex<V>);

  bsp_distribution dist(g.num_vertices(), ranks);
  std::vector<padded<std::uint64_t>> updates(ranks);

  const auto handler = [&](std::size_t rank, const message& m, auto&& send) {
    if (m.ccid < out.component[m.target]) {
      out.component[m.target] = m.ccid;
      ++updates[rank].value;
      g.for_each_out_edge(m.target, [&](V v, weight_t) {
        send(v, message{v, m.ccid});
      });
    }
  };

  std::vector<bsp_initial<message>> initial;
  initial.reserve(g.num_vertices());
  for (V v = 0; v < g.num_vertices(); ++v) {
    initial.push_back({v, message{v, v}});
  }
  bsp_stats stats = bsp_run(dist, initial, handler);
  if (stats_out != nullptr) *stats_out = stats;

  for (const auto& u : updates) out.updates += u.value;
  out.stats.visits = stats.total_messages;
  return out;
}

}  // namespace asyncgt
