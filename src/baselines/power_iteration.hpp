// Synchronous power-iteration PageRank — the barrier-per-iteration baseline
// for the asynchronous residual-push PageRank (core/async_pagerank.hpp).
//
// Jacobi iteration of PR = (1-alpha)/N + alpha * sum_{u->v} PR(u)/deg(u),
// with the same dangling convention as the async version (dangling mass is
// dropped), so the two converge to the same fixed point and are directly
// comparable. Iterates until the L1 change falls below `tolerance`.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "graph/types.hpp"

namespace asyncgt {

struct power_iteration_result {
  std::vector<double> rank;
  std::uint64_t iterations = 0;

  double total_rank() const {
    double sum = 0;
    for (const double r : rank) sum += r;
    return sum;
  }
};

template <typename Graph>
power_iteration_result power_iteration_pagerank(const Graph& g,
                                                double alpha = 0.85,
                                                double tolerance = 1e-10,
                                                std::uint64_t max_iters =
                                                    1000) {
  using V = typename Graph::vertex_id;
  if (alpha <= 0.0 || alpha >= 1.0) {
    throw std::invalid_argument("power_iteration: alpha must be in (0, 1)");
  }
  const std::uint64_t n = g.num_vertices();
  power_iteration_result out;
  if (n == 0) return out;

  const double teleport = (1.0 - alpha) / static_cast<double>(n);
  std::vector<double> cur(n, teleport), nxt(n, 0.0);
  // Iterate the affine map x_{k+1} = teleport + alpha * P^T x_k starting
  // from x_0 = teleport * 1; the limit equals the residual-push fixed point.
  for (out.iterations = 0; out.iterations < max_iters; ++out.iterations) {
    std::fill(nxt.begin(), nxt.end(), teleport);
    for (V u = 0; u < n; ++u) {
      const std::uint64_t degree = g.out_degree(u);
      if (degree == 0) continue;  // dangling mass dropped
      const double share = alpha * cur[u] / static_cast<double>(degree);
      g.for_each_out_edge(u, [&](V v, weight_t) { nxt[v] += share; });
    }
    double l1 = 0.0;
    for (std::uint64_t v = 0; v < n; ++v) l1 += std::fabs(nxt[v] - cur[v]);
    cur.swap(nxt);
    if (l1 < tolerance) {
      ++out.iterations;
      break;
    }
  }
  out.rank = std::move(cur);
  return out;
}

}  // namespace asyncgt
