// Level-synchronous parallel BFS — the algorithmic class of the paper's
// shared-memory competitors (MTGL on SMP, SNAP).
//
// A persistent team of threads expands one BFS level per round: threads grab
// chunks of the current frontier from an atomic cursor, claim unvisited
// targets with a CAS, and append them to per-thread next-frontier buffers;
// two barriers per level (end-of-expansion, end-of-swap) keep the rounds
// aligned. The barrier-crossing count is returned so benches can show the
// synchronization cost the asynchronous approach eliminates — on skewed
// (RMAT-B) graphs a few huge-degree frontier vertices straggle while every
// other thread waits, which is precisely the paper's criticism.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <thread>
#include <vector>

#include "core/traversal_result.hpp"
#include "graph/types.hpp"
#include "util/barrier.hpp"
#include "util/cache_line.hpp"

namespace asyncgt {

struct levelsync_result_extra {
  std::uint64_t barrier_crossings = 0;
  std::uint64_t levels = 0;
};

template <typename Graph>
bfs_result<typename Graph::vertex_id> levelsync_bfs(
    const Graph& g, typename Graph::vertex_id start, std::size_t num_threads,
    levelsync_result_extra* extra = nullptr) {
  using V = typename Graph::vertex_id;
  if (start >= g.num_vertices()) {
    throw std::out_of_range("levelsync_bfs: start vertex out of range");
  }
  if (num_threads == 0) {
    throw std::invalid_argument("levelsync_bfs: need at least one thread");
  }

  const std::uint64_t n = g.num_vertices();
  bfs_result<V> out;
  out.level.assign(n, infinite_distance<dist_t>);
  out.parent.assign(n, invalid_vertex<V>);
  std::vector<std::atomic<std::uint8_t>> claimed(n);

  std::vector<V> frontier{start};
  claimed[start].store(1, std::memory_order_relaxed);
  out.level[start] = 0;
  out.parent[start] = start;

  thread_barrier barrier(num_threads);
  std::atomic<std::uint64_t> cursor{0};
  std::vector<std::vector<V>> next_local(num_threads);
  std::vector<padded<std::uint64_t>> updates(num_threads);
  std::atomic<bool> finished{false};
  dist_t lvl = 0;

  constexpr std::uint64_t chunk = 64;

  auto worker = [&](std::size_t tid) {
    for (;;) {
      // Expand the current frontier.
      for (;;) {
        const std::uint64_t begin =
            cursor.fetch_add(chunk, std::memory_order_relaxed);
        if (begin >= frontier.size()) break;
        const std::uint64_t end =
            std::min<std::uint64_t>(begin + chunk, frontier.size());
        for (std::uint64_t i = begin; i < end; ++i) {
          const V u = frontier[i];
          g.for_each_out_edge(u, [&](V v, weight_t) {
            std::uint8_t expected = 0;
            if (claimed[v].compare_exchange_strong(
                    expected, 1, std::memory_order_acq_rel)) {
              out.level[v] = lvl + 1;
              out.parent[v] = u;
              ++updates[tid].value;
              next_local[tid].push_back(v);
            }
          });
        }
      }
      if (barrier.arrive_and_wait()) {
        // Serial section: splice the per-thread buffers into the frontier.
        frontier.clear();
        for (auto& buf : next_local) {
          frontier.insert(frontier.end(), buf.begin(), buf.end());
          buf.clear();
        }
        cursor.store(0, std::memory_order_relaxed);
        ++lvl;
        if (frontier.empty()) finished.store(true, std::memory_order_relaxed);
      }
      barrier.arrive_and_wait();
      if (finished.load(std::memory_order_relaxed)) return;
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(num_threads);
  for (std::size_t t = 0; t < num_threads; ++t) threads.emplace_back(worker, t);
  for (auto& th : threads) th.join();

  out.updates = 1;  // the start vertex
  for (const auto& u : updates) out.updates += u.value;
  out.stats.visits = out.updates;
  if (extra != nullptr) {
    extra->barrier_crossings = barrier.crossings();
    extra->levels = lvl == 0 ? 0 : lvl - 1;
  }
  return out;
}

}  // namespace asyncgt
