// Routing layer of the traversal engine: vertex id -> owning queue index.
//
// The queue is a set of per-thread prioritized queues; a hash of the vertex
// id selects the owning queue ("each thread 'owns' a queue and the queue is
// selected based on a hash of the vertex identifier", paper §III-A). The
// mapping is fixed for the lifetime of a run, which is what gives the engine
// its exclusivity property: all visitors for vertex v execute on owner(v)'s
// thread, so per-vertex algorithm state needs no locks or atomics.
//
// Two static policies, mirroring the hash ablation:
//   avalanche_router — mix the id through a full-avalanche finalizer so hub
//                      vertices (which cluster at low ids in RMAT graphs)
//                      spread uniformly across queues. The default.
//   identity_router  — raw v % num_queues; kept for bench/ablation_queues,
//                      which demonstrates the load-imbalance hazard.
// `vertex_router` is the runtime-selected wrapper the engine uses (the
// choice is a single well-predicted bool, not worth a fourth template
// parameter on the engine).
#pragma once

#include <cstddef>

#include "queue/queue_config.hpp"
#include "util/hash.hpp"

namespace asyncgt {

/// Avalanche-hash routing (default): mix32/mix64 then reduce.
struct avalanche_router {
  std::size_t num_queues = 1;

  template <typename VertexId>
  std::size_t operator()(VertexId v) const noexcept {
    return queue_of(v, num_queues);
  }
};

/// Identity routing: v % num_queues (load-balance ablation).
struct identity_router {
  std::size_t num_queues = 1;

  template <typename VertexId>
  std::size_t operator()(VertexId v) const noexcept {
    return queue_of_identity(v, num_queues);
  }
};

/// Runtime-selected router driven by visitor_queue_config::identity_hash.
struct vertex_router {
  std::size_t num_queues = 1;
  bool identity = false;

  vertex_router() = default;
  vertex_router(std::size_t queues, bool use_identity) noexcept
      : num_queues(queues), identity(use_identity) {}
  explicit vertex_router(const visitor_queue_config& cfg) noexcept
      : num_queues(cfg.num_threads), identity(cfg.identity_hash) {}

  template <typename VertexId>
  std::size_t operator()(VertexId v) const noexcept {
    return identity ? identity_router{num_queues}(v)
                    : avalanche_router{num_queues}(v);
  }
};

}  // namespace asyncgt
