// The engine's failure-containment contract, as seen by callers.
//
// Before this layer existed, an exception escaping a worker thread (one
// transient EIO in the SEM read path, a bad_alloc in a drain) hit the
// std::thread boundary and std::terminate'd the process — forfeiting a
// traversal the paper budgets 10,000+ seconds for. Now every worker runs
// under a catch-all: the first error is latched with its thread and vertex
// context, a cancellation flag wakes and unwinds every other worker
// (termination.hpp), the engine joins cleanly and resets its queue state,
// and the error re-emerges on the *calling* thread as this exception — the
// identical contract for in-memory and semi-external runs.
//
// The partially computed algorithm state survives the abort untouched: for
// label-correcting traversals it is a valid intermediate state, which is
// what makes the emergency-checkpoint / resume path in core/checkpoint.hpp
// sound (docs/robustness.md).
#pragma once

#include <cstddef>
#include <cstdint>
#include <exception>
#include <stdexcept>
#include <string>

namespace asyncgt {

/// Why a cooperative abort was requested. `none` means the abort was a
/// worker failure, not a request; the service layer's watchdog and load
/// shedder raise the other reasons through the same broadcast job::cancel
/// uses, and the engine reports the first-latched reason on the resulting
/// traversal_aborted so callers can tell a user cancel from a blown
/// deadline, a stalled job, or an overload shed (docs/robustness.md).
enum class abort_reason : int {
  none = 0,
  cancelled,          ///< explicit job::cancel() / request_cancel()
  deadline_exceeded,  ///< watchdog: traversal_options::deadline_ms elapsed
  stalled,            ///< watchdog: no progress for stall_grace_ms
  shed,               ///< admission control evicted the job under overload
};

inline const char* abort_reason_name(abort_reason r) noexcept {
  switch (r) {
    case abort_reason::none: return "none";
    case abort_reason::cancelled: return "cancelled";
    case abort_reason::deadline_exceeded: return "deadline_exceeded";
    case abort_reason::stalled: return "stalled";
    case abort_reason::shed: return "shed";
  }
  return "none";
}

class traversal_aborted : public std::runtime_error {
 public:
  traversal_aborted(const std::string& what, std::size_t worker,
                    bool has_vertex, std::uint64_t vertex,
                    std::exception_ptr cause,
                    abort_reason reason = abort_reason::none)
      : std::runtime_error(what),
        worker_(worker),
        has_vertex_(has_vertex),
        vertex_(vertex),
        cause_(std::move(cause)),
        reason_(reason) {}

  /// Index of the worker whose exception aborted the run.
  std::size_t worker() const noexcept { return worker_; }

  /// True when the failure happened inside a visit (vertex() is then the
  /// vertex being visited); false for failures outside any visit (seeding,
  /// delivery, drain).
  bool has_vertex() const noexcept { return has_vertex_; }
  std::uint64_t vertex() const noexcept { return vertex_; }

  /// The original exception (io_error, bad_alloc, ...), rethrowable via
  /// std::rethrow_exception for callers that dispatch on the cause.
  const std::exception_ptr& cause() const noexcept { return cause_; }

  /// True when the abort was cooperative — a cancel request, a watchdog
  /// deadline/stall kill, or a load shed — rather than a worker failure. A
  /// run that both got cancelled and latched a real (non-cancellation-point)
  /// error reports the error, so this stays false — the service layer
  /// classifies terminal job state from it.
  bool cancelled() const noexcept { return reason_ != abort_reason::none; }

  /// The first-latched cooperative abort reason (`none` for a worker
  /// failure). job-outcome classification in the engine maps this to
  /// cancelled / deadline_exceeded / stalled / shed.
  abort_reason reason() const noexcept { return reason_; }

 private:
  std::size_t worker_ = 0;
  bool has_vertex_ = false;
  std::uint64_t vertex_ = 0;
  std::exception_ptr cause_;
  abort_reason reason_ = abort_reason::none;
};

}  // namespace asyncgt
