// The engine's failure-containment contract, as seen by callers.
//
// Before this layer existed, an exception escaping a worker thread (one
// transient EIO in the SEM read path, a bad_alloc in a drain) hit the
// std::thread boundary and std::terminate'd the process — forfeiting a
// traversal the paper budgets 10,000+ seconds for. Now every worker runs
// under a catch-all: the first error is latched with its thread and vertex
// context, a cancellation flag wakes and unwinds every other worker
// (termination.hpp), the engine joins cleanly and resets its queue state,
// and the error re-emerges on the *calling* thread as this exception — the
// identical contract for in-memory and semi-external runs.
//
// The partially computed algorithm state survives the abort untouched: for
// label-correcting traversals it is a valid intermediate state, which is
// what makes the emergency-checkpoint / resume path in core/checkpoint.hpp
// sound (docs/robustness.md).
#pragma once

#include <cstddef>
#include <cstdint>
#include <exception>
#include <stdexcept>
#include <string>

namespace asyncgt {

class traversal_aborted : public std::runtime_error {
 public:
  traversal_aborted(const std::string& what, std::size_t worker,
                    bool has_vertex, std::uint64_t vertex,
                    std::exception_ptr cause, bool cancelled = false)
      : std::runtime_error(what),
        worker_(worker),
        has_vertex_(has_vertex),
        vertex_(vertex),
        cause_(std::move(cause)),
        cancelled_(cancelled) {}

  /// Index of the worker whose exception aborted the run.
  std::size_t worker() const noexcept { return worker_; }

  /// True when the failure happened inside a visit (vertex() is then the
  /// vertex being visited); false for failures outside any visit (seeding,
  /// delivery, drain).
  bool has_vertex() const noexcept { return has_vertex_; }
  std::uint64_t vertex() const noexcept { return vertex_; }

  /// The original exception (io_error, bad_alloc, ...), rethrowable via
  /// std::rethrow_exception for callers that dispatch on the cause.
  const std::exception_ptr& cause() const noexcept { return cause_; }

  /// True when the abort was a cooperative cancellation (request_cancel /
  /// job::cancel) rather than a worker failure. A run that both got
  /// cancelled and latched a real error reports the error, so this stays
  /// false — the service layer classifies terminal job state from it.
  bool cancelled() const noexcept { return cancelled_; }

 private:
  std::size_t worker_ = 0;
  bool has_vertex_ = false;
  std::uint64_t vertex_ = 0;
  std::exception_ptr cause_;
  bool cancelled_ = false;
};

}  // namespace asyncgt
