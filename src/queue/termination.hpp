// Termination layer of the traversal engine: the global in-flight counter
// and the done broadcast protocol.
//
// A single counter tracks in-flight visitors: a delivery *reserves* the
// counter before any visitor becomes visible in a mailbox, and a worker
// *completes* visitors only after their visit() (and all pushes the visit
// performed) finished. The counter can therefore only reach zero at global
// quiescence; the worker that drives it to zero broadcasts completion ("the
// traversal is complete when the visitor queue is empty, and all visitors
// have completed", paper §III-A).
//
// Proof sketch (unbatched). Consider the last decrement to zero. Its visit
// has completed, so all its pushes (increments) happened before the
// decrement. Any visitor still queued somewhere would have contributed an
// increment not yet matched by a decrement — contradiction. Hence zero
// implies global quiescence, and since labels can only improve finitely
// often, the counter must reach zero for label-correcting visitors.
//
// Batched extension. With the mailbox layer's outbox buffers, pushes do not
// touch the counter individually: a batch of m buffered visitors is
// reserved with one fetch_add(m) *immediately before* delivery, and a
// worker defers its per-visit decrements into a local `completed` tally
// that it commits with one fetch_sub(n) — but only after flushing every
// one of its outboxes (flush-on-idle / flush-before-sleep). Writing
//     T = visitors in mailboxes + executing + buffered in outboxes,
//     H = sum of workers' uncommitted completed tallies,
//     B = sum of workers' buffered-but-unreserved outbox sizes,
// every transition preserves  pending == T + H - B:
//     buffer a push        : T+1, B+1          (no counter touch)
//     reserve+deliver m    : B-m, pending+m    (reserve precedes delivery)
//     finish a visit       : T-1, H+1          (decrement deferred)
//     commit n completions : H-n, pending-n    (outboxes flushed first)
// Two facts close the argument that pending == 0 still implies T == 0:
// buffered visitors are a subset of in-flight ones (B <= T), and outside a
// running visit a worker with a non-empty outbox always holds at least one
// uncommitted completion (it only commits after flushing, so B_w > 0 and
// H_w == 0 can only coexist while that worker is mid-visit — in which case
// it contributes an executing visitor to T). From pending == 0:
// 0 == T + H - B with B <= T forces H == 0 wherever no visit is executing,
// which by the per-worker fact forces B == 0, hence T == 0. Quiescence.
//
// The worker that commits the tally driving the counter to zero announces
// completion; the broadcast itself (lock each mailbox, then notify) lives in
// mailbox.hpp, because the lost-wakeup argument belongs to the parking
// protocol there.
#pragma once

#include <atomic>
#include <cstdint>

#include "util/cache_line.hpp"

namespace asyncgt {

class termination_detector {
 public:
  /// Pre-accounts n visitors. MUST be called before the visitors become
  /// visible in any mailbox (reserve-then-deliver), so the counter never
  /// undercounts live work. Also used by run_seeded() to credit all seeds
  /// up front: a fast worker cannot drive the counter to zero while another
  /// worker is still seeding its slice.
  void reserve(std::int64_t n) noexcept {
    pending_.fetch_add(n, std::memory_order_acq_rel);
  }

  /// Commits n completed visits. Returns true iff this commit drove the
  /// counter to zero — the caller must then announce completion. Callers
  /// must have flushed all their outbox buffers first (see the batched
  /// proof above); n == 0 commits nothing and never signals termination.
  bool complete(std::int64_t n) noexcept {
    if (n == 0) return false;
    return pending_.fetch_sub(n, std::memory_order_acq_rel) == n;
  }

  /// In-flight visitor count. Exact at quiescence; while workers run it is
  /// a conservative instantaneous sample (deferred completions keep it an
  /// over-approximation, never an undercount) — this is what the telemetry
  /// sampler plots as the frontier size.
  std::int64_t pending() const noexcept {
    return pending_.load(std::memory_order_acquire);
  }

  bool done() const noexcept {
    return done_.load(std::memory_order_acquire);
  }

  /// Raises the done flag. The mailbox layer's broadcast must follow so
  /// parked workers observe it (wake_all below the caller).
  void set_done() noexcept { done_.store(true, std::memory_order_release); }

  /// Cooperative cancellation: raised by the first failing worker (after
  /// latching its error in the engine) and observed by every worker loop
  /// and parking predicate. Unlike `done`, an abort does NOT certify
  /// quiescence — visitors may still be queued everywhere — it only orders
  /// a prompt, clean unwind; the engine resets all queue state afterwards.
  /// The same raise-then-wake_all broadcast discipline applies.
  void request_abort() noexcept {
    aborted_.store(true, std::memory_order_release);
  }

  bool abort_requested() const noexcept {
    return aborted_.load(std::memory_order_acquire);
  }

  /// True when workers must exit their loop: normal completion or abort.
  bool stopped() const noexcept { return done() || abort_requested(); }

  /// Re-arms the detector for the next run (counters survive across runs;
  /// pending_ is naturally zero after a completed run).
  void reset_done() noexcept {
    done_.store(false, std::memory_order_release);
    aborted_.store(false, std::memory_order_release);
  }

  /// Discards the in-flight count. Only legitimate while no worker is
  /// running — the engine calls this when tearing down after an abort left
  /// reserved-but-never-completed visitors behind.
  void reset_pending() noexcept {
    pending_.store(0, std::memory_order_release);
  }

 private:
  alignas(cache_line_size) std::atomic<std::int64_t> pending_{0};
  alignas(cache_line_size) std::atomic<bool> done_{false};
  alignas(cache_line_size) std::atomic<bool> aborted_{false};
};

}  // namespace asyncgt
