// Ordering layer of the traversal engine: the per-worker pop discipline.
//
// Each worker owns one private ordering structure; only the owning thread
// ever touches it (arrivals land in the worker's locked mailbox slab and are
// drained into the private structure by the owner — see mailbox.hpp), so
// none of these policies carry a lock.
//
// The policy is selected *once* at queue construction: the engine is
// templated on the ordering type and the facade (visitor_queue.hpp) holds a
// variant of the three instantiations, so the hot pop loop is monomorphic —
// no per-pop `switch (cfg.order)` as in the seed implementation — while the
// runtime-selected ablation path (bench/ablation_priority) keeps working.
//
// Policies:
//   priority_order — 4-ary min-heap on Visitor::priority(), optional
//                    secondary sort by vertex id (paper §IV-C semi-sort).
//                    The paper's design.
//   fifo_order     — arrival order; the "what does prioritization buy"
//                    ablation baseline.
//   lifo_order     — reverse arrival order; degrades multiplicatively on
//                    label-correcting traversals (ablation worst case).
//   hot_order      — two priority bands: visitors whose adjacency block is
//                    cache-resident or pressure-hot (per the config's
//                    hot_advisor) pop before everything else; within each
//                    band the paper's priority+semi-sort order applies.
//                    Replaces the static vertex-id locality key with the
//                    live pending-visitor signal (docs/hot_blocks.md).
//
// All policies move visitors in on push and move them out on try_pop, are
// default-constructible (the engine value-initializes its worker array in
// place, mutexes and all), and are configured once before the first push.
// Each also exposes take_hot_pops() — the count of pops served from the hot
// band since last taken — so the engine can fold it into queue_run_stats
// without detecting which policy it holds (always 0 outside hot_order).
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <utility>
#include <vector>

#include "queue/dary_heap.hpp"
#include "queue/hot_advisor.hpp"
#include "queue/queue_config.hpp"

namespace asyncgt {

/// Min-order on priority(), optionally tie-broken by vertex id.
template <typename Visitor>
struct visitor_priority_less {
  bool secondary = false;
  bool operator()(const Visitor& a, const Visitor& b) const {
    if (a.priority() != b.priority()) return a.priority() < b.priority();
    if (secondary) return a.vertex() < b.vertex();
    return false;
  }
};

template <typename Visitor>
class priority_order {
 public:
  priority_order() = default;
  priority_order(const priority_order&) = delete;
  priority_order& operator=(const priority_order&) = delete;

  /// One-time setup before the first push (the engine calls this right
  /// after value-initializing its worker array).
  void configure(const visitor_queue_config& cfg) {
    less_.secondary = cfg.secondary_vertex_sort;
    if (cfg.reserve_per_queue > 0) heap_.reserve(cfg.reserve_per_queue);
  }

  bool empty() const noexcept { return heap_.empty(); }
  std::size_t size() const noexcept { return heap_.size(); }

  void push(Visitor&& v) { heap_.push(std::move(v)); }
  void push(const Visitor& v) { heap_.push(v); }

  /// Moves the best (smallest priority) visitor into `out`.
  bool try_pop(Visitor& out) {
    if (heap_.empty()) return false;
    out = heap_.pop();
    return true;
  }

  /// Discards all queued visitors (post-abort engine reset).
  void clear() noexcept { heap_.clear(); }

  /// No hot band here; see hot_order.
  std::uint64_t take_hot_pops() noexcept { return 0; }

 private:
  visitor_priority_less<Visitor> less_;
  // Holds a reference to less_, so the policy is pinned in place (the
  // engine's worker array never relocates).
  dary_heap<Visitor, visitor_priority_less<Visitor>&> heap_{less_};
};

template <typename Visitor>
class fifo_order {
 public:
  fifo_order() = default;
  fifo_order(const fifo_order&) = delete;
  fifo_order& operator=(const fifo_order&) = delete;

  void configure(const visitor_queue_config&) {}

  bool empty() const noexcept { return q_.empty(); }
  std::size_t size() const noexcept { return q_.size(); }

  void push(Visitor&& v) { q_.push_back(std::move(v)); }
  void push(const Visitor& v) { q_.push_back(v); }

  /// Moves the oldest visitor into `out` (the seed copied then popped).
  bool try_pop(Visitor& out) {
    if (q_.empty()) return false;
    out = std::move(q_.front());
    q_.pop_front();
    return true;
  }

  /// Discards all queued visitors (post-abort engine reset).
  void clear() noexcept { q_.clear(); }

  /// No hot band here; see hot_order.
  std::uint64_t take_hot_pops() noexcept { return 0; }

 private:
  std::deque<Visitor> q_;
};

template <typename Visitor>
class lifo_order {
 public:
  lifo_order() = default;
  lifo_order(const lifo_order&) = delete;
  lifo_order& operator=(const lifo_order&) = delete;

  void configure(const visitor_queue_config& cfg) {
    if (cfg.reserve_per_queue > 0) q_.reserve(cfg.reserve_per_queue);
  }

  bool empty() const noexcept { return q_.empty(); }
  std::size_t size() const noexcept { return q_.size(); }

  void push(Visitor&& v) { q_.push_back(std::move(v)); }
  void push(const Visitor& v) { q_.push_back(v); }

  /// Moves the newest visitor into `out`.
  bool try_pop(Visitor& out) {
    if (q_.empty()) return false;
    out = std::move(q_.back());
    q_.pop_back();
    return true;
  }

  /// Discards all queued visitors (post-abort engine reset).
  void clear() noexcept { q_.clear(); }

  /// No hot band here; see hot_order.
  std::uint64_t take_hot_pops() noexcept { return 0; }

 private:
  std::vector<Visitor> q_;
};

/// Two-band priority order driven by the live hot-block signal. push()
/// classifies the visitor once — hot band if the advisor says its backing
/// block is cache-resident or has enough queued work, cold band otherwise —
/// and try_pop serves the hot band first. Within each band the ordering is
/// exactly priority_order's (priority, then the optional semi-sort vertex
/// tie-break), so with a null advisor this IS priority_order with one extra
/// empty heap.
///
/// Classification is deliberately push-time-only: a visitor does not migrate
/// when its block's residency changes later. Reclassifying would mean
/// rebuilding heaps on every cache event; the signal is a heuristic and
/// label correction keeps final labels pop-order-invariant, so staleness
/// costs a little I/O-ordering quality and nothing else.
template <typename Visitor>
class hot_order {
 public:
  hot_order() = default;
  hot_order(const hot_order&) = delete;
  hot_order& operator=(const hot_order&) = delete;

  void configure(const visitor_queue_config& cfg) {
    less_.secondary = cfg.secondary_vertex_sort;
    advisor_ = cfg.advisor;
    if (cfg.reserve_per_queue > 0) {
      hot_.reserve(cfg.reserve_per_queue);
      cold_.reserve(cfg.reserve_per_queue);
    }
  }

  bool empty() const noexcept { return hot_.empty() && cold_.empty(); }
  std::size_t size() const noexcept { return hot_.size() + cold_.size(); }

  void push(Visitor&& v) { band_for(v).push(std::move(v)); }
  void push(const Visitor& v) { band_for(v).push(v); }

  /// Pops the best hot visitor if any, else the best cold one.
  bool try_pop(Visitor& out) {
    if (!hot_.empty()) {
      out = hot_.pop();
      ++hot_pops_;
      return true;
    }
    if (cold_.empty()) return false;
    out = cold_.pop();
    return true;
  }

  /// Discards all queued visitors (post-abort engine reset). Also zeroes
  /// the hot-pop tally so an aborted run's pops don't leak into the next
  /// run's stats (post-abort stats report zeros).
  void clear() noexcept {
    hot_.clear();
    cold_.clear();
    hot_pops_ = 0;
  }

  /// Pops served from the hot band since last taken (folded into
  /// queue_run_stats::hot_pops / the queue.hot_pops counter).
  std::uint64_t take_hot_pops() noexcept {
    return std::exchange(hot_pops_, std::uint64_t{0});
  }

 private:
  using heap = dary_heap<Visitor, visitor_priority_less<Visitor>&>;

  heap& band_for(const Visitor& v) {
    return advisor_ != nullptr &&
                   advisor_->is_hot(static_cast<std::uint64_t>(v.vertex()))
               ? hot_
               : cold_;
  }

  visitor_priority_less<Visitor> less_;
  const hot_advisor* advisor_ = nullptr;
  // Both heaps hold a reference to less_, so the policy is pinned in place
  // (the engine's worker array never relocates).
  heap hot_{less_};
  heap cold_{less_};
  std::uint64_t hot_pops_ = 0;
};

}  // namespace asyncgt
