// Ordering layer of the traversal engine: the per-worker pop discipline.
//
// Each worker owns one private ordering structure; only the owning thread
// ever touches it (arrivals land in the worker's locked mailbox slab and are
// drained into the private structure by the owner — see mailbox.hpp), so
// none of these policies carry a lock.
//
// The policy is selected *once* at queue construction: the engine is
// templated on the ordering type and the facade (visitor_queue.hpp) holds a
// variant of the three instantiations, so the hot pop loop is monomorphic —
// no per-pop `switch (cfg.order)` as in the seed implementation — while the
// runtime-selected ablation path (bench/ablation_priority) keeps working.
//
// Policies:
//   priority_order — 4-ary min-heap on Visitor::priority(), optional
//                    secondary sort by vertex id (paper §IV-C semi-sort).
//                    The paper's design.
//   fifo_order     — arrival order; the "what does prioritization buy"
//                    ablation baseline.
//   lifo_order     — reverse arrival order; degrades multiplicatively on
//                    label-correcting traversals (ablation worst case).
//
// All policies move visitors in on push and move them out on try_pop, are
// default-constructible (the engine value-initializes its worker array in
// place, mutexes and all), and are configured once before the first push.
#pragma once

#include <cstddef>
#include <deque>
#include <utility>
#include <vector>

#include "queue/dary_heap.hpp"
#include "queue/queue_config.hpp"

namespace asyncgt {

/// Min-order on priority(), optionally tie-broken by vertex id.
template <typename Visitor>
struct visitor_priority_less {
  bool secondary = false;
  bool operator()(const Visitor& a, const Visitor& b) const {
    if (a.priority() != b.priority()) return a.priority() < b.priority();
    if (secondary) return a.vertex() < b.vertex();
    return false;
  }
};

template <typename Visitor>
class priority_order {
 public:
  priority_order() = default;
  priority_order(const priority_order&) = delete;
  priority_order& operator=(const priority_order&) = delete;

  /// One-time setup before the first push (the engine calls this right
  /// after value-initializing its worker array).
  void configure(const visitor_queue_config& cfg) {
    less_.secondary = cfg.secondary_vertex_sort;
    if (cfg.reserve_per_queue > 0) heap_.reserve(cfg.reserve_per_queue);
  }

  bool empty() const noexcept { return heap_.empty(); }
  std::size_t size() const noexcept { return heap_.size(); }

  void push(Visitor&& v) { heap_.push(std::move(v)); }
  void push(const Visitor& v) { heap_.push(v); }

  /// Moves the best (smallest priority) visitor into `out`.
  bool try_pop(Visitor& out) {
    if (heap_.empty()) return false;
    out = heap_.pop();
    return true;
  }

  /// Discards all queued visitors (post-abort engine reset).
  void clear() noexcept { heap_.clear(); }

 private:
  visitor_priority_less<Visitor> less_;
  // Holds a reference to less_, so the policy is pinned in place (the
  // engine's worker array never relocates).
  dary_heap<Visitor, visitor_priority_less<Visitor>&> heap_{less_};
};

template <typename Visitor>
class fifo_order {
 public:
  fifo_order() = default;
  fifo_order(const fifo_order&) = delete;
  fifo_order& operator=(const fifo_order&) = delete;

  void configure(const visitor_queue_config&) {}

  bool empty() const noexcept { return q_.empty(); }
  std::size_t size() const noexcept { return q_.size(); }

  void push(Visitor&& v) { q_.push_back(std::move(v)); }
  void push(const Visitor& v) { q_.push_back(v); }

  /// Moves the oldest visitor into `out` (the seed copied then popped).
  bool try_pop(Visitor& out) {
    if (q_.empty()) return false;
    out = std::move(q_.front());
    q_.pop_front();
    return true;
  }

  /// Discards all queued visitors (post-abort engine reset).
  void clear() noexcept { q_.clear(); }

 private:
  std::deque<Visitor> q_;
};

template <typename Visitor>
class lifo_order {
 public:
  lifo_order() = default;
  lifo_order(const lifo_order&) = delete;
  lifo_order& operator=(const lifo_order&) = delete;

  void configure(const visitor_queue_config& cfg) {
    if (cfg.reserve_per_queue > 0) q_.reserve(cfg.reserve_per_queue);
  }

  bool empty() const noexcept { return q_.empty(); }
  std::size_t size() const noexcept { return q_.size(); }

  void push(Visitor&& v) { q_.push_back(std::move(v)); }
  void push(const Visitor& v) { q_.push_back(v); }

  /// Moves the newest visitor into `out`.
  bool try_pop(Visitor& out) {
    if (q_.empty()) return false;
    out = std::move(q_.back());
    q_.pop_back();
    return true;
  }

  /// Discards all queued visitors (post-abort engine reset).
  void clear() noexcept { q_.clear(); }

 private:
  std::vector<Visitor> q_;
};

}  // namespace asyncgt
