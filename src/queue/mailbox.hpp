// Mailbox layer of the traversal engine: batched cross-thread delivery and
// the parking (sleep/wake) protocol.
//
// Each worker owns one mailbox: a mutex-protected *slab* (a plain vector of
// visitors awaiting the owner) plus the condition variable the owner parks
// on when it has no work. Senders never touch the owner's private ordering
// structure — they append whole batches to the slab under the mutex and the
// owner drains the slab into its ordering structure lock-free (only the
// swap under the mutex is shared). This is the delivery amortization the
// distributed-BFS literature gets from message coalescing (Buluç & Madduri)
// and async out-of-core engines get from buffered message queues (ACGraph):
// one mutex acquisition per batch of flush_batch visitors instead of one
// per visitor.
//
// Parking protocol (unchanged from the seed, but now per-mailbox):
//   - a sender that delivers into a sleeping owner's slab notifies its cv
//     after releasing the mutex;
//   - the owner re-checks `!slab.empty() || done` as the wait predicate, so
//     a delivery between its last poll and the wait cannot be lost;
//   - the done broadcast takes each mailbox's mutex briefly *before*
//     notifying, so the flag write cannot slip between a worker's predicate
//     check and its wait (the classic lost-wakeup).
//
// `has_mail` is a relaxed-atomic hint mirrored from slab emptiness (always
// written under the mutex). Owners poll it once per pop so freshly
// delivered batches merge into the private ordering structure at batch
// granularity without paying a lock when nothing arrived; missing a `true`
// is harmless because the idle path re-checks under the mutex.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <utility>
#include <vector>

#include "util/cache_line.hpp"

namespace asyncgt {

template <typename Visitor>
struct alignas(cache_line_size) mailbox {
  std::mutex mu;
  std::condition_variable cv;
  std::vector<Visitor> slab;  // delivered, not yet drained by the owner
  bool sleeping = false;      // guarded by mu
  std::atomic<bool> has_mail{false};
  /// Owner's private queue length, mirrored for queue_depths() probes (the
  /// ordering structure itself is owner-private and never locked).
  std::atomic<std::size_t> local_len{0};

  mailbox() = default;
  mailbox(const mailbox&) = delete;
  mailbox& operator=(const mailbox&) = delete;

  /// Appends a batch (moving the visitors) under the mutex; wakes the owner
  /// if it is parked. The caller has already reserved the batch in the
  /// termination detector (reserve-then-deliver).
  void deliver(std::vector<Visitor>& batch) {
    bool wake = false;
    {
      std::lock_guard lk(mu);
      slab.insert(slab.end(), std::make_move_iterator(batch.begin()),
                  std::make_move_iterator(batch.end()));
      has_mail.store(true, std::memory_order_relaxed);
      wake = sleeping;
    }
    if (wake) cv.notify_one();
  }

  /// Single-visitor delivery (external pushes, flush_batch == 1 fast path).
  void deliver_one(Visitor&& v) {
    bool wake = false;
    {
      std::lock_guard lk(mu);
      slab.push_back(std::move(v));
      has_mail.store(true, std::memory_order_relaxed);
      wake = sleeping;
    }
    if (wake) cv.notify_one();
  }

  /// Swaps the slab into `out` (which the caller presents empty) and clears
  /// the hint. Returns false without touching `out` when nothing arrived.
  bool drain(std::vector<Visitor>& out) {
    std::lock_guard lk(mu);
    if (slab.empty()) return false;
    slab.swap(out);
    has_mail.store(false, std::memory_order_relaxed);
    return true;
  }

  /// Sampler/test snapshot: undelivered slab + owner's private length.
  std::size_t depth() {
    std::lock_guard lk(mu);
    return slab.size() + local_len.load(std::memory_order_relaxed);
  }
};

/// The done broadcast: raise-then-wake over every mailbox. Taking each mutex
/// before notifying closes the lost-wakeup race described above. `set_done`
/// must have been called by the caller (termination layer) beforehand.
template <typename Visitor>
void wake_all(std::vector<mailbox<Visitor>>& boxes) {
  for (auto& box : boxes) {
    { std::lock_guard lk(box.mu); }
    box.cv.notify_all();
  }
}

}  // namespace asyncgt
