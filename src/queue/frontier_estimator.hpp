// Frontier-density estimation for direction-adaptive (hybrid) traversal.
//
// The asynchronous engine has no explicit frontier — only an in-flight
// visitor count — so direction decisions (Beamer/Buluç-style top-down vs
// bottom-up switching, docs/hybrid_traversal.md) need an observer that
// samples that count at the points where it is meaningful. Workers sample
// the termination counter at their flush-on-idle / commit checkpoints (the
// only places the counter is exact enough to read cheaply, see
// traversal_engine.hpp); the phase driver in core/hybrid_traversal.hpp
// feeds in exact per-wave counts between capped runs and asks the two
// classic questions:
//
//   go_bottom_up:    m_f * alpha > m_u   -- the queued frontier's edges
//                    outnumber 1/alpha of the unexplored edges, so scanning
//                    unvisited vertices' in-edges (with early exit) is
//                    cheaper than pushing every out-edge of the frontier.
//   stay_bottom_up:  n_f * beta > n     -- the frontier is still a large
//                    fraction of all vertices; once it shrinks below n/beta
//                    the per-sweep O(V) scan stops paying for itself and
//                    the driver flips back to asynchronous top-down.
//
// alpha/beta defaults follow the direction-optimizing BFS literature
// (alpha=14, beta=24); both are exposed as --hybrid-alpha / --hybrid-beta
// through traversal_options::from_flags.
//
// Thread-safety: sample() is called concurrently by workers (relaxed
// atomics — the values are advisory); everything else is driver-side,
// called between runs.
#pragma once

#include <atomic>
#include <cstdint>

namespace asyncgt {

class frontier_estimator {
 public:
  frontier_estimator() = default;
  frontier_estimator(double alpha, double beta) : alpha_(alpha), beta_(beta) {}

  /// Worker-side: records one queued-visitor observation (the engine passes
  /// the termination counter, clamped at zero). Called at flush-on-idle /
  /// commit checkpoints only, never per visit.
  void sample(std::uint64_t queued) noexcept {
    last_queued_.store(queued, std::memory_order_relaxed);
    std::uint64_t peak = peak_queued_.load(std::memory_order_relaxed);
    while (queued > peak &&
           !peak_queued_.compare_exchange_weak(peak, queued,
                                               std::memory_order_relaxed)) {
    }
    samples_.fetch_add(1, std::memory_order_relaxed);
  }

  std::uint64_t last_queued() const noexcept {
    return last_queued_.load(std::memory_order_relaxed);
  }
  std::uint64_t peak_queued() const noexcept {
    return peak_queued_.load(std::memory_order_relaxed);
  }
  std::uint64_t samples() const noexcept {
    return samples_.load(std::memory_order_relaxed);
  }

  void reset() noexcept {
    last_queued_.store(0, std::memory_order_relaxed);
    peak_queued_.store(0, std::memory_order_relaxed);
    samples_.store(0, std::memory_order_relaxed);
  }

  double alpha() const noexcept { return alpha_; }
  double beta() const noexcept { return beta_; }

  /// Driver-side alpha test: switch into bottom-up sweeps when the frontier's
  /// forward edge count `frontier_edges` (m_f) exceeds 1/alpha of the edges
  /// still reachable from unvisited vertices `unvisited_edges` (m_u).
  bool go_bottom_up(std::uint64_t frontier_edges,
                    std::uint64_t unvisited_edges) const noexcept {
    return static_cast<double>(frontier_edges) * alpha_ >
           static_cast<double>(unvisited_edges);
  }

  /// Driver-side beta test: keep sweeping bottom-up while the current wave
  /// `frontier_vertices` (n_f) is still larger than num_vertices/beta.
  bool stay_bottom_up(std::uint64_t frontier_vertices,
                      std::uint64_t num_vertices) const noexcept {
    return static_cast<double>(frontier_vertices) * beta_ >
           static_cast<double>(num_vertices);
  }

 private:
  double alpha_ = 14.0;
  double beta_ = 24.0;
  std::atomic<std::uint64_t> last_queued_{0};
  std::atomic<std::uint64_t> peak_queued_{0};
  std::atomic<std::uint64_t> samples_{0};
};

}  // namespace asyncgt
