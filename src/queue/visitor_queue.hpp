// The multithreaded asynchronous prioritized visitor queue — the paper's
// core contribution (§III-A), as the public facade over a layered engine.
//
// Structure. The queue is a set of per-thread prioritized queues; a hash of
// the vertex id selects the owning queue ("each thread 'owns' a queue and
// the queue is selected based on a hash of the vertex identifier"). This
// yields three properties the paper relies on:
//   1. reduced lock contention versus one shared queue,
//   2. exclusive access: all visitors for vertex v execute on owner(v)'s
//      thread, so per-vertex algorithm state needs no locks or atomics,
//   3. statistical load balance: an avalanching hash spreads hub vertices
//      uniformly across queues.
//
// Layers (docs/visitor_queue.md walks through each):
//   routing_policy.hpp   — vertex id -> owning queue (avalanche / identity)
//   ordering_policy.hpp  — per-worker pop discipline (priority/fifo/lifo),
//                          selected once at construction; the hot loop is
//                          monomorphic, with no per-pop order dispatch
//   mailbox.hpp          — batched cross-thread delivery (per-thread outbox
//                          buffers, flush_batch visitors per mutex
//                          acquisition) and the sleep/wake protocol
//   termination.hpp      — the in-flight counter and its batching-aware
//                          quiescence proof
//   traversal_engine.hpp — the worker loop and the single run driver
//
// Asynchrony. There are no barriers or level synchronizations anywhere;
// every worker pops its locally-best visitor and runs it immediately.
// Priority ordering is therefore a heuristic (the paper: "we cannot
// guarantee that the absolute shortest-path vertex is visited at each
// step, possibly requiring multiple visits per vertex") — correctness comes
// from label correction in the visitors, not from visit order.
//
// Oversubscription. num_threads is independent of core count; the paper runs
// up to 512 threads on 16 cores both to shrink per-queue contention and, in
// the semi-external setting, to keep enough concurrent reads in flight to
// saturate a flash device.
//
// Observability. The config optionally carries telemetry sinks (see
// docs/observability.md): a metrics_registry that run() flushes its counters
// into, a trace_writer that receives per-visit spans sampled 1-in-N plus
// worker sleep spans, and a sampler that gets queue-depth / pending probes
// registered for the duration of the run. All sinks default to null and the
// hot loop tests one cached bool per feature, keeping the disabled-sinks
// overhead within the documented <2% budget (bench/micro_primitives).
//
// Visitor concept (see src/core for the algorithm visitors):
//   VertexId vertex() const;                  -- routing key
//   Priority priority() const;                -- smaller visits earlier
//   void visit(State&, Queue&, tid);          -- may push() more visitors
// Visitors must be cheap to move and default-constructible. `Queue` is a
// template parameter: inside a run it is the engine's per-worker handle
// (whose push() appends to thread-local outbox buffers), so visitors must
// not assume it is visitor_queue itself — only that it has push(). `tid` is
// the executing worker's index, usable to index per-thread counters in
// State without contention.
//
// NOTE: this is an internal header. User code includes <asyncgt.hpp> (the
// umbrella) and uses the session API (asyncgt::engine) or the async_* free
// functions; including queue/visitor_queue.hpp — or any other internal
// header — directly from user code is unsupported and may break without
// notice as the layering evolves.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <variant>
#include <vector>

#include "queue/ordering_policy.hpp"
#include "queue/queue_config.hpp"
#include "queue/queue_stats.hpp"
#include "queue/traversal_engine.hpp"
#include "telemetry/sampler.hpp"

namespace asyncgt {

template <typename Visitor, typename State>
class visitor_queue {
 public:
  using vertex_id = decltype(std::declval<const Visitor&>().vertex());

  explicit visitor_queue(visitor_queue_config cfg) : cfg_(cfg) {
    cfg_.validate();
    // The ordering policy is chosen exactly once; every hot-path call from
    // here on runs inside the matching engine instantiation.
    switch (cfg_.order) {
      case queue_order::priority:
        engine_.template emplace<prio_engine>(cfg_);
        break;
      case queue_order::fifo:
        engine_.template emplace<fifo_engine>(cfg_);
        break;
      case queue_order::lifo:
        engine_.template emplace<lifo_engine>(cfg_);
        break;
      case queue_order::hot:
        engine_.template emplace<hot_engine>(cfg_);
        break;
    }
  }

  visitor_queue(const visitor_queue&) = delete;
  visitor_queue& operator=(const visitor_queue&) = delete;

  ~visitor_queue() { unregister_probes(); }

  /// Enqueues a visitor. Callable from the outside before/after run();
  /// visitors running inside run() push through the per-worker handle they
  /// receive, not through this method.
  void push(const Visitor& v) { push(Visitor(v)); }

  /// Move overload: visitors constructed in place (the common case in the
  /// algorithm headers) are forwarded without a copy.
  void push(Visitor&& v) {
    with_engine([&](auto& e) { e.push_external(std::move(v)); });
  }

  /// Runs until quiescent: spawns the worker threads, processes every queued
  /// visitor (and all transitively pushed ones), joins, and returns stats.
  /// `state` is shared mutable algorithm state; per-vertex entries are only
  /// ever touched by their owner thread, which is what makes this safe.
  ///
  /// If a worker's body throws (an io_error from a semi-external read, a
  /// throwing visitor, an allocation failure), every worker is woken and
  /// unwound, queue state is reset, and the first error rethrows here as
  /// traversal_aborted — the queue remains usable for another run. The
  /// sampler probes are unregistered on both paths, so a dangling probe
  /// never outlives an aborted run.
  queue_run_stats run(State& state) {
    register_probes();
    try {
      auto stats = with_engine([&](auto& e) { return e.run(state); });
      unregister_probes();
      return stats;
    } catch (...) {
      unregister_probes();
      throw;
    }
  }

  /// Seeded run for algorithms that start one visitor per vertex (CC,
  /// PageRank, k-core). `make_visitor` is invoked as const from all workers
  /// concurrently — it must be const-callable (mutable functors are
  /// rejected at compile time) and thread-safe; each worker seeds the
  /// contiguous slice [t*n/T, (t+1)*n/T) and then joins processing. See
  /// traversal_engine::run_seeded for the pre-accounting argument.
  template <typename MakeVisitor>
  queue_run_stats run_seeded(State& state, std::uint64_t num_vertices,
                             MakeVisitor&& make_visitor) {
    register_probes();
    try {
      auto stats = with_engine([&](auto& e) {
        return e.run_seeded(state, num_vertices,
                            std::forward<MakeVisitor>(make_visitor));
      });
      unregister_probes();
      return stats;
    } catch (...) {
      unregister_probes();
      throw;
    }
  }

  /// Asynchronous run: dispatches the workers as one gang on `pool` and
  /// returns immediately. `done(stats, error)` is invoked exactly once —
  /// on the pool thread finishing the gang (or inline for an empty
  /// frontier) — with error null on success, else a traversal_aborted
  /// exception_ptr. Sampler probes are registered for the duration and
  /// unregistered before `done` runs, on every path. The caller must keep
  /// `state` and this queue alive until then (asyncgt::engine's job
  /// machinery does; see docs/service_api.md).
  template <typename Done>
  void run_async(service::worker_pool& pool, State& state, Done done) {
    register_probes();
    with_engine([&](auto& e) {
      e.run_async(pool, state, wrap_done(std::move(done)));
    });
  }

  /// Asynchronous seeded run; see run_seeded for the make_visitor contract
  /// (const-callable, thread-safe — it is copied into the gang) and
  /// run_async for the completion contract.
  template <typename MakeVisitor, typename Done>
  void run_seeded_async(service::worker_pool& pool, State& state,
                        std::uint64_t num_vertices, MakeVisitor make_visitor,
                        Done done) {
    register_probes();
    with_engine([&](auto& e) {
      e.run_seeded_async(pool, state, num_vertices, std::move(make_visitor),
                         wrap_done(std::move(done)));
    });
  }

  /// Cooperative cancellation: aborts the current (or next) run promptly;
  /// it completes with traversal_aborted carrying `reason` (first request
  /// wins). Callable from any thread — this is what job::cancel() forwards
  /// to (reason cancelled); the service watchdog and load shedder pass
  /// deadline_exceeded / stalled / shed through the same path.
  void cancel(abort_reason reason = abort_reason::cancelled) {
    with_engine([reason](auto& e) { e.request_cancel(reason); });
  }

  std::size_t num_threads() const noexcept { return cfg_.num_threads; }

  /// In-flight visitor count (the termination counter). Exact at
  /// quiescence; a conservative instantaneous sample while workers run —
  /// this is what the telemetry sampler plots as the frontier size.
  std::int64_t pending() const noexcept {
    return const_cast<visitor_queue*>(this)->with_engine(
        [](auto& e) { return e.pending(); });
  }

  /// Snapshot of every per-thread queue length (locks each mailbox
  /// briefly). Intended for sampler probes and tests, not hot paths.
  std::vector<std::size_t> queue_depths() {
    return with_engine([](auto& e) { return e.queue_depths(); });
  }

 private:
  using prio_engine =
      detail::traversal_engine<Visitor, State, priority_order<Visitor>>;
  using fifo_engine =
      detail::traversal_engine<Visitor, State, fifo_order<Visitor>>;
  using lifo_engine =
      detail::traversal_engine<Visitor, State, lifo_order<Visitor>>;
  using hot_engine =
      detail::traversal_engine<Visitor, State, hot_order<Visitor>>;

  /// Single dispatch point from the runtime order to the monomorphic
  /// engine. The monostate alternative only exists so the variant can be
  /// default-constructed before the constructor emplaces the real engine
  /// (the engines hold mutexes and are neither copyable nor movable).
  template <typename F>
  decltype(auto) with_engine(F&& f) {
    switch (engine_.index()) {
      case 1:
        return f(std::get<1>(engine_));
      case 2:
        return f(std::get<2>(engine_));
      case 3:
        return f(std::get<3>(engine_));
      default:
        return f(std::get<4>(engine_));
    }
  }

  /// Decorates an async completion callback so probes are unregistered
  /// before the caller's `done` observes the result (telemetry teardown is
  /// part of the run on the async path, as on the blocking one).
  template <typename Done>
  auto wrap_done(Done done) {
    return [this, d = std::move(done)](queue_run_stats stats,
                                       std::exception_ptr error) mutable {
      unregister_probes();
      d(std::move(stats), std::move(error));
    };
  }

  void register_probes() {
    if (cfg_.sampler == nullptr || !probe_ids_.empty()) return;
    probe_ids_.push_back(cfg_.sampler->add_probe(
        "queue.pending",
        [this] { return static_cast<double>(pending()); }));
    probe_ids_.push_back(cfg_.sampler->add_probe("queue.depth.total", [this] {
      std::size_t sum = 0;
      for (const std::size_t d : queue_depths()) sum += d;
      return static_cast<double>(sum);
    }));
    probe_ids_.push_back(cfg_.sampler->add_probe("queue.depth.max", [this] {
      std::size_t mx = 0;
      for (const std::size_t d : queue_depths()) mx = std::max(mx, d);
      return static_cast<double>(mx);
    }));
  }

  void unregister_probes() {
    if (cfg_.sampler == nullptr) return;
    for (const auto id : probe_ids_) cfg_.sampler->remove_probe(id);
    probe_ids_.clear();
  }

  visitor_queue_config cfg_;
  std::variant<std::monostate, prio_engine, fifo_engine, lifo_engine,
               hot_engine>
      engine_;
  std::vector<telemetry::sampler::probe_id> probe_ids_;
};

}  // namespace asyncgt
