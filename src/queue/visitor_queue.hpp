// The multithreaded asynchronous prioritized visitor queue — the paper's
// core contribution (§III-A).
//
// Structure. The queue is a set of per-thread prioritized queues; a hash of
// the vertex id selects the owning queue ("each thread 'owns' a queue and
// the queue is selected based on a hash of the vertex identifier"). This
// yields three properties the paper relies on:
//   1. reduced lock contention versus one shared queue,
//   2. exclusive access: all visitors for vertex v execute on owner(v)'s
//      thread, so per-vertex algorithm state needs no locks or atomics,
//   3. statistical load balance: an avalanching hash spreads hub vertices
//      uniformly across queues.
//
// Asynchrony. There are no barriers or level synchronizations anywhere;
// every worker pops its locally-best visitor and runs it immediately.
// Priority ordering is therefore a heuristic (the paper: "we cannot
// guarantee that the absolute shortest-path vertex is visited at each
// step, possibly requiring multiple visits per vertex") — correctness comes
// from label correction in the visitors, not from visit order.
//
// Termination. A single global counter tracks in-flight visitors: push
// increments it *before* enqueueing and a worker decrements it only *after*
// the visit (and all pushes the visit performed) completed. The counter can
// therefore only reach zero at global quiescence; the worker that drives it
// to zero broadcasts completion ("the traversal is complete when the visitor
// queue is empty, and all visitors have completed").
//
// Oversubscription. num_threads is independent of core count; the paper runs
// up to 512 threads on 16 cores both to shrink per-queue contention and, in
// the semi-external setting, to keep enough concurrent reads in flight to
// saturate a flash device.
//
// Observability. The config optionally carries telemetry sinks (see
// docs/observability.md): a metrics_registry that run() flushes its counters
// into, a trace_writer that receives per-visit spans sampled 1-in-N plus
// worker sleep spans, and a sampler that gets queue-depth / pending probes
// registered for the duration of the run. All sinks default to null and the
// hot loop tests one cached bool per feature, keeping the disabled-sinks
// overhead within the documented <2% budget (bench/micro_primitives).
//
// Visitor concept (see src/core for the three algorithm visitors):
//   VertexId vertex() const;                  -- routing key
//   Priority priority() const;                -- smaller visits earlier
//   void visit(State&, visitor_queue&, tid);  -- may push() more visitors
// Visitors must be cheap to copy and default-constructible. `tid` is the
// executing worker's index, usable to index per-thread counters in State
// without contention.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

#include "queue/dary_heap.hpp"
#include "queue/queue_stats.hpp"
#include "telemetry/metrics_registry.hpp"
#include "telemetry/sampler.hpp"
#include "telemetry/trace_writer.hpp"
#include "util/cache_line.hpp"
#include "util/hash.hpp"
#include "util/timer.hpp"

namespace asyncgt {

/// Visitor pop ordering. `priority` is the paper's design; `fifo` and `lifo`
/// exist for the ablation bench that quantifies what the prioritization buys.
enum class queue_order { priority, fifo, lifo };

struct visitor_queue_config {
  std::size_t num_threads = 4;
  queue_order order = queue_order::priority;
  /// Secondary sort by vertex id within equal priorities — the paper's
  /// semi-external locality optimization (§IV-C). Harmless in-memory.
  bool secondary_vertex_sort = false;
  /// Route with the raw id (v % threads) instead of the avalanching hash;
  /// used by the load-balance ablation.
  bool identity_hash = false;
  /// Initial per-queue heap capacity reservation.
  std::size_t reserve_per_queue = 0;

  /// Optional telemetry sinks (all borrowed, all nullable — null means the
  /// corresponding instrumentation compiles to a predictable branch).
  telemetry::metrics_registry* metrics = nullptr;  ///< flushed at end of run
  telemetry::trace_writer* trace = nullptr;        ///< per-visit spans
  telemetry::sampler* sampler = nullptr;           ///< depth/pending probes
  /// Record a trace span for 1 visit in every `trace_sample_every` per
  /// worker (1 = every visit; tracing every visit on large graphs produces
  /// multi-GB traces).
  std::uint32_t trace_sample_every = 64;

  void validate() const {
    if (num_threads == 0) {
      throw std::invalid_argument("visitor_queue: need at least one thread");
    }
    if (trace_sample_every == 0) {
      throw std::invalid_argument(
          "visitor_queue: trace_sample_every must be >= 1");
    }
  }
};

template <typename Visitor, typename State>
class visitor_queue {
 public:
  using vertex_id = decltype(std::declval<const Visitor&>().vertex());

  explicit visitor_queue(visitor_queue_config cfg) : cfg_(cfg) {
    cfg_.validate();
    workers_ = std::vector<worker>(cfg_.num_threads);
    for (auto& w : workers_) {
      if (cfg_.reserve_per_queue > 0) w.heap.reserve(cfg_.reserve_per_queue);
      w.heap_less.secondary = cfg_.secondary_vertex_sort;
    }
  }

  visitor_queue(const visitor_queue&) = delete;
  visitor_queue& operator=(const visitor_queue&) = delete;

  ~visitor_queue() { unregister_probes(); }

  /// Enqueues a visitor. Callable from the outside before/after run() and
  /// from inside visitors during run().
  void push(const Visitor& v) {
    pending_.fetch_add(1, std::memory_order_acq_rel);
    push_preaccounted(v);
  }

  /// Runs until quiescent: spawns the worker threads, processes every queued
  /// visitor (and all transitively pushed ones), joins, and returns stats.
  /// `state` is shared mutable algorithm state; per-vertex entries are only
  /// ever touched by their owner thread, which is what makes this safe.
  queue_run_stats run(State& state) {
    wall_timer timer;
    if (pending_.load(std::memory_order_acquire) == 0) {
      return finalize_stats(timer.elapsed_seconds());
    }
    done_.store(false, std::memory_order_release);
    register_probes();
    std::vector<std::thread> threads;
    threads.reserve(cfg_.num_threads);
    for (std::size_t t = 0; t < cfg_.num_threads; ++t) {
      threads.emplace_back([this, &state, t] { worker_loop(state, t); });
    }
    for (auto& th : threads) th.join();
    unregister_probes();
    return finalize_stats(timer.elapsed_seconds());
  }

  /// Seeded run for algorithms that start one visitor per vertex (CC,
  /// Algorithm 3: "for all v in g.vertex_list() parallel do push").
  /// All num_vertices visitors are pre-accounted in the termination counter
  /// before any worker starts, so a fast worker cannot drive the counter to
  /// zero while another worker is still seeding its slice. Each worker seeds
  /// the contiguous slice [t*n/T, (t+1)*n/T) and then joins processing.
  template <typename MakeVisitor>
  queue_run_stats run_seeded(State& state, std::uint64_t num_vertices,
                             MakeVisitor&& make_visitor) {
    wall_timer timer;
    if (num_vertices == 0) return finalize_stats(timer.elapsed_seconds());
    pending_.fetch_add(static_cast<std::int64_t>(num_vertices),
                       std::memory_order_acq_rel);
    done_.store(false, std::memory_order_release);
    register_probes();
    std::vector<std::thread> threads;
    threads.reserve(cfg_.num_threads);
    const std::size_t T = cfg_.num_threads;
    for (std::size_t t = 0; t < T; ++t) {
      threads.emplace_back([this, &state, t, T, num_vertices,
                            &make_visitor] {
        const std::uint64_t lo = num_vertices * t / T;
        const std::uint64_t hi = num_vertices * (t + 1) / T;
        for (std::uint64_t v = lo; v < hi; ++v) {
          push_preaccounted(make_visitor(static_cast<vertex_id>(v)));
        }
        worker_loop(state, t);
      });
    }
    for (auto& th : threads) th.join();
    unregister_probes();
    return finalize_stats(timer.elapsed_seconds());
  }

  std::size_t num_threads() const noexcept { return cfg_.num_threads; }

  /// In-flight visitor count (the termination counter). Exact at quiescence;
  /// an instantaneous sample while workers run — this is what the telemetry
  /// sampler plots as the frontier size.
  std::int64_t pending() const noexcept {
    return pending_.load(std::memory_order_acquire);
  }

  /// Snapshot of every per-thread queue length (locks each worker mutex
  /// briefly). Intended for sampler probes and tests, not hot paths.
  std::vector<std::size_t> queue_depths() {
    std::vector<std::size_t> out;
    out.reserve(workers_.size());
    for (auto& w : workers_) {
      std::lock_guard lk(w.mu);
      out.push_back(w.queue_length());
    }
    return out;
  }

 private:
  struct heap_compare {
    bool secondary = false;
    bool operator()(const Visitor& a, const Visitor& b) const {
      if (a.priority() != b.priority()) return a.priority() < b.priority();
      if (secondary) return a.vertex() < b.vertex();
      return false;
    }
  };

  struct worker {
    std::mutex mu;
    std::condition_variable cv;
    heap_compare heap_less;
    dary_heap<Visitor, heap_compare&> heap{heap_less};
    std::deque<Visitor> fifo;  // used in fifo / lifo order modes
    bool sleeping = false;
    // Hot counters, written only by the owning thread during the run (the
    // queue length max is maintained under mu by pushers).
    std::uint64_t visits = 0;
    std::uint64_t pushes = 0;
    std::uint64_t wakeups = 0;
    std::uint64_t max_len = 0;

    worker() = default;
    std::size_t queue_length() const {
      return fifo.empty() ? heap.size() : fifo.size();
    }
  };

  std::size_t owner_of(vertex_id v) const noexcept {
    return cfg_.identity_hash ? queue_of_identity(v, workers_.size())
                              : queue_of(v, workers_.size());
  }

  void push_preaccounted(const Visitor& v) {
    worker& w = workers_[owner_of(v.vertex())];
    bool wake = false;
    {
      std::lock_guard lk(w.mu);
      switch (cfg_.order) {
        case queue_order::priority:
          w.heap.push(v);
          break;
        case queue_order::fifo:
        case queue_order::lifo:
          w.fifo.push_back(v);
          break;
      }
      ++w.pushes;
      w.max_len = std::max<std::uint64_t>(w.max_len, w.queue_length());
      wake = w.sleeping;
    }
    if (wake) w.cv.notify_one();
  }

  bool try_pop(worker& w, Visitor& out) {
    std::lock_guard lk(w.mu);
    switch (cfg_.order) {
      case queue_order::priority:
        if (w.heap.empty()) return false;
        out = w.heap.pop();
        return true;
      case queue_order::fifo:
        if (w.fifo.empty()) return false;
        out = w.fifo.front();
        w.fifo.pop_front();
        return true;
      case queue_order::lifo:
        if (w.fifo.empty()) return false;
        out = w.fifo.back();
        w.fifo.pop_back();
        return true;
    }
    return false;
  }

  void worker_loop(State& state, std::size_t tid) {
    worker& me = workers_[tid];
    // Tracing state is resolved once per worker: the hot loop pays one
    // pointer test per visit when tracing is off.
    telemetry::trace_stream* ts = nullptr;
    if (cfg_.trace != nullptr) {
      ts = &cfg_.trace->stream(static_cast<std::uint32_t>(tid) + 1,
                               "worker-" + std::to_string(tid));
    }
    const std::uint32_t sample_every = cfg_.trace_sample_every;
    std::uint32_t until_sample = 1;  // trace the first visit of each worker
    Visitor v{};
    for (;;) {
      if (try_pop(me, v)) {
        if (ts != nullptr && --until_sample == 0) {
          until_sample = sample_every;
          const std::uint64_t start = ts->now_us();
          v.visit(state, *this, tid);
          ts->complete("visit", start, ts->now_us() - start, "vertex",
                       static_cast<std::uint64_t>(v.vertex()));
        } else {
          v.visit(state, *this, tid);
        }
        ++me.visits;
        if (pending_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
          announce_done();
          return;
        }
        continue;
      }
      // Local queue empty: sleep until a pusher wakes us or the run ends.
      std::unique_lock lk(me.mu);
      if (done_.load(std::memory_order_acquire)) return;
      if (me.queue_length() > 0) continue;  // raced with a push
      me.sleeping = true;
      const std::uint64_t sleep_start = ts != nullptr ? ts->now_us() : 0;
      me.cv.wait(lk, [&] {
        return me.queue_length() > 0 || done_.load(std::memory_order_acquire);
      });
      me.sleeping = false;
      if (ts != nullptr) {
        ts->complete("sleep", sleep_start, ts->now_us() - sleep_start);
      }
      if (done_.load(std::memory_order_acquire)) return;
      // Counted only here — after the done_ check — so the final shutdown
      // broadcast does not inflate the idle-transition metric by up to
      // num_threads.
      ++me.wakeups;
    }
  }

  void announce_done() {
    done_.store(true, std::memory_order_release);
    // Take each worker's mutex so the flag write cannot slip between a
    // worker's predicate check and its wait (no lost wakeups).
    for (auto& w : workers_) {
      { std::lock_guard lk(w.mu); }
      w.cv.notify_all();
    }
  }

  void register_probes() {
    if (cfg_.sampler == nullptr || !probe_ids_.empty()) return;
    probe_ids_.push_back(cfg_.sampler->add_probe(
        "queue.pending",
        [this] { return static_cast<double>(pending()); }));
    probe_ids_.push_back(cfg_.sampler->add_probe("queue.depth.total", [this] {
      std::size_t sum = 0;
      for (const std::size_t d : queue_depths()) sum += d;
      return static_cast<double>(sum);
    }));
    probe_ids_.push_back(cfg_.sampler->add_probe("queue.depth.max", [this] {
      std::size_t mx = 0;
      for (const std::size_t d : queue_depths()) mx = std::max(mx, d);
      return static_cast<double>(mx);
    }));
  }

  void unregister_probes() {
    if (cfg_.sampler == nullptr) return;
    for (const auto id : probe_ids_) cfg_.sampler->remove_probe(id);
    probe_ids_.clear();
  }

  queue_run_stats finalize_stats(double elapsed) {
    queue_run_stats s;
    s.elapsed_seconds = elapsed;
    s.visits_per_queue.reserve(workers_.size());
    for (auto& w : workers_) {
      s.visits += w.visits;
      s.pushes += w.pushes;
      s.wakeups += w.wakeups;
      s.max_queue_length = std::max(s.max_queue_length, w.max_len);
      s.visits_per_queue.push_back(w.visits);
      w.visits = w.pushes = w.wakeups = w.max_len = 0;
    }
    if (cfg_.metrics != nullptr) record_metrics(s);
    return s;
  }

  void record_metrics(const queue_run_stats& s) {
    telemetry::metrics_registry& reg = *cfg_.metrics;
    reg.get_counter("queue.runs").add(0);
    reg.get_counter("queue.visits").add(0, s.visits);
    reg.get_counter("queue.pushes").add(0, s.pushes);
    reg.get_counter("queue.wakeups").add(0, s.wakeups);
    reg.get_gauge("queue.max_queue_length")
        .record_max(static_cast<std::int64_t>(s.max_queue_length));
    telemetry::histogram& h = reg.get_histogram("queue.visits_per_queue");
    for (const auto visits : s.visits_per_queue) h.record(0, visits);
  }

  visitor_queue_config cfg_;
  std::vector<worker> workers_;
  std::vector<telemetry::sampler::probe_id> probe_ids_;
  alignas(cache_line_size) std::atomic<std::int64_t> pending_{0};
  alignas(cache_line_size) std::atomic<bool> done_{false};
};

}  // namespace asyncgt
