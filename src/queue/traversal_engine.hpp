// The layered traversal engine: routing + ordering + mailbox + termination
// composed into the worker loop and a single run driver.
//
// This is the machinery behind visitor_queue (the public facade keeps the
// paper-facing documentation; see also docs/visitor_queue.md). The engine is
// templated on the ordering policy so the hot loop is monomorphic — the
// facade picks one of three instantiations at construction time from the
// runtime `queue_order` config.
//
// Data flow per worker ("lane"):
//
//   visit() ── push ──▶ outbox[dest] (thread-local, lock-free append)
//                          │ batch of flush_batch, or flush-on-idle
//                          ▼ reserve(m) then mailbox[dest].deliver (mutex)
//                       inbox slab ── drain (swap under mutex) ──▶
//                       private ordering structure ── try_pop (no lock) ──▶
//                       visit() ...
//
// Compared to the seed's monolith, a visitor crossing threads costs
// 1/flush_batch mutex acquisitions and 1/flush_batch termination-counter
// updates instead of one of each, and popping the local best visitor takes
// no lock at all. Termination stays exact through the reserve-then-deliver
// / flush-before-commit discipline proved in termination.hpp.
//
// Failure containment. Every worker body runs under a catch-all: the first
// exception (an io_error from a SEM read, a bad_alloc, a throwing visitor)
// is latched with its thread/vertex context, the termination layer's abort
// flag is raised and broadcast through the parking protocol (wake_all), so
// every worker — including ones asleep on their mailbox — unwinds promptly.
// After the join, the engine resets all queue state (mailbox slabs, private
// ordering structures, outboxes, the in-flight counter) and rethrows the
// latched error as traversal_aborted on the calling thread. The queue is
// reusable afterwards, and the algorithm state the visitors were mutating
// is quiescent and internally consistent (per-vertex entries are only ever
// written by their owner, and all owners have joined). Cooperative
// cancellation (request_cancel, used by the service layer's job handles)
// rides the same abort broadcast and containment machinery.
//
// Execution substrates. When the config carries a worker pool
// (visitor_queue_config::pool, set by asyncgt::engine), a run dispatches
// its worker bodies as one gang of pooled, parked threads — acquire/release
// instead of spawn/join — and the run_async/run_seeded_async entry points
// additionally return immediately, delivering stats or the failure to a
// completion callback on the pool thread that finishes the gang. With a
// null pool, run()/run_seeded() reproduce the one-shot spawn/join
// lifecycle (now with an exception-safe RAII join: a throw between spawn
// and join can no longer detach workers).
#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "queue/hot_advisor.hpp"
#include "queue/mailbox.hpp"
#include "queue/ordering_policy.hpp"
#include "queue/queue_config.hpp"
#include "queue/queue_stats.hpp"
#include "queue/routing_policy.hpp"
#include "queue/termination.hpp"
#include "queue/traversal_abort.hpp"
#include "service/worker_pool.hpp"
#include "util/cancellation.hpp"
#include "telemetry/metrics_registry.hpp"
#include "telemetry/span.hpp"
#include "telemetry/trace_writer.hpp"
#include "util/cache_line.hpp"
#include "util/timer.hpp"

namespace asyncgt::detail {

template <typename Visitor, typename State, typename Ordering>
class traversal_engine {
 public:
  using vertex_id = decltype(std::declval<const Visitor&>().vertex());

  explicit traversal_engine(const visitor_queue_config& cfg)
      : cfg_(cfg),
        route_(cfg),
        boxes_(cfg.num_threads),
        lanes_(cfg.num_threads) {
    for (auto& ln : lanes_) {
      ln.local.configure(cfg);
      ln.outbox.resize(cfg.num_threads);
    }
  }

  traversal_engine(const traversal_engine&) = delete;
  traversal_engine& operator=(const traversal_engine&) = delete;

  /// External (non-worker) enqueue: callable before/after run(). Counts as
  /// one push and one flush — there is no outbox to amortize through.
  void push_external(Visitor&& v) {
    term_.reserve(1);
    ext_pushes_.fetch_add(1, std::memory_order_relaxed);
    ext_flushes_.fetch_add(1, std::memory_order_relaxed);
    // Advised before delivery: once delivered, the visitor may execute (and
    // fire on_complete) on another thread, and the pressure tracker must
    // never see a completion before its enqueue.
    if (cfg_.advisor != nullptr) {
      cfg_.advisor->on_enqueue(static_cast<std::uint64_t>(v.vertex()));
    }
    boxes_[route_(v.vertex())].deliver_one(std::move(v));
  }

  /// Runs until quiescent over whatever was pushed externally. If any
  /// worker's body throws, every worker is unwound, the queue state is
  /// reset, and the first error rethrows here as traversal_aborted.
  queue_run_stats run(State& state) {
    wall_timer timer;
    if (term_.pending() == 0 &&
        cancel_reason_.load(std::memory_order_relaxed) == 0) {
      return finalize_stats(timer.elapsed_seconds());
    }
    arm();
    launch(state, [](std::size_t) {});
    throw_if_aborted();
    return finalize_stats(timer.elapsed_seconds());
  }

  /// Seeded run: one visitor per vertex in [0, num_vertices) (CC, paper
  /// Algorithm 3: "for all v in g.vertex_list() parallel do push"). All
  /// num_vertices visitors are pre-accounted in the termination counter
  /// before any worker starts, so a fast worker cannot drive the counter to
  /// zero while another worker is still seeding its slice. Each worker
  /// seeds the contiguous slice [t*n/T, (t+1)*n/T) — through its own outbox
  /// buffers, so seeding enjoys the same batched delivery — and then joins
  /// processing.
  ///
  /// `make_visitor` is invoked as const from all workers concurrently; it
  /// must be const-callable and thread-safe (a mutable functor is rejected
  /// at compile time rather than racing silently).
  template <typename MakeVisitor>
  queue_run_stats run_seeded(State& state, std::uint64_t num_vertices,
                             MakeVisitor&& make_visitor) {
    wall_timer timer;
    if (num_vertices == 0) return finalize_stats(timer.elapsed_seconds());
    const std::remove_reference_t<MakeVisitor>& make = make_visitor;
    term_.reserve(static_cast<std::int64_t>(num_vertices));
    arm();
    launch(state, [this, &make, num_vertices](std::size_t t) {
      seed_slice(make, num_vertices, t);
    });
    throw_if_aborted();
    return finalize_stats(timer.elapsed_seconds());
  }

  /// Asynchronous run: dispatches the workers as one gang on `pool` and
  /// returns immediately. `done(stats, error)` runs exactly once, on the
  /// pool thread that finishes the gang (or inline here for an empty
  /// frontier): error is null on a clean run, otherwise a traversal_aborted
  /// exception_ptr carrying the same context run() would have thrown —
  /// stats are the post-reset zeros in that case. The caller must keep
  /// `state` and this engine alive until `done` has been invoked.
  template <typename Done>
  void run_async(service::worker_pool& pool, State& state, Done done) {
    wall_timer timer;
    arm();
    if (term_.pending() == 0 && !term_.abort_requested()) {
      finish_async(timer, done);
      return;
    }
    dispatch_async(pool, state, [](std::size_t) {}, std::move(done), timer);
  }

  /// Asynchronous seeded run; see run_seeded for the seeding discipline and
  /// run_async for the completion contract. `make_visitor` is copied into
  /// the gang and invoked as const from all workers concurrently.
  template <typename MakeVisitor, typename Done>
  void run_seeded_async(service::worker_pool& pool, State& state,
                        std::uint64_t num_vertices, MakeVisitor make_visitor,
                        Done done) {
    wall_timer timer;
    term_.reserve(static_cast<std::int64_t>(num_vertices));
    arm();
    if (num_vertices == 0 && !term_.abort_requested()) {
      finish_async(timer, done);
      return;
    }
    auto make = std::make_shared<const MakeVisitor>(std::move(make_visitor));
    dispatch_async(
        pool, state,
        [this, make, num_vertices](std::size_t t) {
          seed_slice(*make, num_vertices, t);
        },
        std::move(done), timer);
  }

  /// Cooperative cancellation: raises the abort flag and wakes every parked
  /// worker, exactly as a worker failure would, so the run unwinds promptly
  /// and surfaces as traversal_aborted carrying `reason` ("cancelled" by
  /// default; the service watchdog passes deadline_exceeded/stalled and the
  /// load shedder passes shed) when no worker actually failed. Callable from
  /// any thread, before or during a run; a cancel raised before the next run
  /// aborts that run at its first abort check. The reason is latched
  /// first-wins: a user cancel() arriving after a watchdog deadline fire
  /// does not rewrite the reported reason.
  void request_cancel(abort_reason reason = abort_reason::cancelled) {
    int expected = 0;
    (void)cancel_reason_.compare_exchange_strong(
        expected, static_cast<int>(reason), std::memory_order_relaxed);
    term_.request_abort();
    wake_all(boxes_);
  }

  std::size_t num_threads() const noexcept { return cfg_.num_threads; }

  /// In-flight visitor count (termination counter); see
  /// termination_detector::pending for the exactness caveat.
  std::int64_t pending() const noexcept { return term_.pending(); }

  /// Snapshot of every per-worker queue length (locks each mailbox
  /// briefly). Intended for sampler probes and tests, not hot paths.
  std::vector<std::size_t> queue_depths() {
    std::vector<std::size_t> out;
    out.reserve(boxes_.size());
    for (auto& b : boxes_) out.push_back(b.depth());
    return out;
  }

 private:
  /// Per-worker private context: the ordering structure, the outbox buffers
  /// (one per destination), the deferred-completion tally, and hot stats —
  /// all touched only by the owning thread during a run.
  struct alignas(cache_line_size) lane {
    Ordering local;                            // private pop structure
    std::vector<std::vector<Visitor>> outbox;  // per-destination buffers
    std::vector<Visitor> scratch;              // drain target (recycled)
    std::uint64_t completed = 0;  // visits not yet committed to the counter
    bool seeding = false;         // outbox contents already pre-accounted
    // Failure context: maintained by the owning thread around each visit and
    // read back by record_failure on that same thread (from the catch in
    // launch), so no synchronization is needed.
    std::uint64_t cur_vertex = 0;
    bool visiting = false;
    std::uint64_t visits = 0;
    std::uint64_t pushes = 0;
    std::uint64_t flushes = 0;
    std::uint64_t wakeups = 0;
    std::uint64_t max_len = 0;
  };

  /// The `Queue&` visitors see: pushes route into the owning lane's
  /// outboxes, which is what makes the push path lock- and atomic-free.
  struct lane_handle {
    traversal_engine& eng;
    lane& me;
    void push(Visitor&& v) { eng.lane_push(me, std::move(v)); }
    void push(const Visitor& v) { eng.lane_push(me, Visitor(v)); }
    std::size_t num_threads() const noexcept { return eng.num_threads(); }
  };

  /// Re-arms the termination detector for the next run. reset_done() also
  /// clears the abort flag, so a cancel raised before the run (the service
  /// API allows cancelling a job that has not started yet) must be
  /// re-asserted afterwards or it would be silently swallowed.
  void arm() {
    term_.reset_done();
    if (cancel_reason_.load(std::memory_order_relaxed) != 0) {
      term_.request_abort();
    }
  }

  /// One worker's whole run: per-thread seed hook, worker loop, catch-all
  /// at the boundary — an escaping exception would std::terminate the
  /// process (std::thread) or poison the pool; latch it and unwind everyone
  /// instead.
  template <typename SeedSlice>
  void run_worker(State& state, const SeedSlice& seed, std::size_t t) {
    // Ambient per-job attribution: everything this worker does — including
    // I/O recorded deep inside shared components — is charged to the job's
    // scope through TLS for the duration of the body. The first worker in
    // also stamps the job's queue-wait -> run transition.
    telemetry::metric_scope::attribution attr(cfg_.scope, t);
    if (cfg_.scope != nullptr) cfg_.scope->mark_run_start();
    try {
      seed(t);
      worker_loop(state, t);
    } catch (...) {
      record_failure(t, std::current_exception());
    }
  }

  /// Seeds the contiguous slice [t*n/T, (t+1)*n/T) through lane t's own
  /// outbox buffers (batched delivery), then returns to join processing.
  template <typename Make>
  void seed_slice(const Make& make, std::uint64_t num_vertices,
                  std::size_t t) {
    lane& me = lanes_[t];
    const std::size_t T = cfg_.num_threads;
    const std::uint64_t lo = num_vertices * t / T;
    const std::uint64_t hi = num_vertices * (t + 1) / T;
    me.seeding = true;  // seeds are pre-accounted: flushes must not reserve
    for (std::uint64_t v = lo; v < hi; ++v) {
      // A failed worker cannot reach quiescence, so a long seeding slice
      // must notice the abort itself (checked at outbox-batch granularity
      // to keep the common path branch-cheap).
      if ((v & 0x3FFu) == 0 && term_.abort_requested()) {
        me.seeding = false;
        return;
      }
      lane_push(me, make(static_cast<vertex_id>(v)));
    }
    flush_all(me);
    me.seeding = false;
  }

  /// Single blocking driver for both run flavours. With a pooled config
  /// this is acquire/release of parked workers (one gang, FIFO-scheduled
  /// against other jobs sharing the pool); without one it spawns and joins
  /// fresh threads, with an RAII guard so a throw between spawn and join —
  /// e.g. thread-resource exhaustion partway through the spawn loop — can
  /// never reach a joinable std::thread's destructor (std::terminate).
  template <typename SeedSlice>
  void launch(State& state, const SeedSlice& seed) {
    if (cfg_.pool != nullptr) {
      cfg_.pool->wait(cfg_.pool->submit(
          cfg_.num_threads,
          [this, &state, &seed](std::size_t t) { run_worker(state, seed, t); }));
      return;
    }
    struct joiner {
      traversal_engine* eng;
      std::vector<std::thread> threads;
      ~joiner() {
        if (threads.size() < eng->cfg_.num_threads) {
          // Spawn failed partway: the missing lanes will never flush or
          // commit, so the started workers could not reach quiescence —
          // unwind them through the abort broadcast before joining, then
          // restore the queue to a reusable state (the spawn failure
          // itself propagates to the caller; any failure a half-started
          // worker latched meanwhile is superseded by it).
          eng->term_.request_abort();
          wake_all(eng->boxes_);
          for (auto& th : threads) th.join();
          {
            std::lock_guard lk(eng->fail_mu_);
            eng->fail_ = failure{};
          }
          eng->cancel_reason_.store(0, std::memory_order_relaxed);
          eng->reset_after_abort();
          return;
        }
        for (auto& th : threads) th.join();
      }
    } guard{this, {}};
    guard.threads.reserve(cfg_.num_threads);
    for (std::size_t t = 0; t < cfg_.num_threads; ++t) {
      guard.threads.emplace_back(
          [this, &state, &seed, t] { run_worker(state, seed, t); });
    }
  }

  /// Common tail of the async entry points: one gang whose completion hook
  /// collects the failure latch, finalizes stats, and invokes `done`.
  template <typename SeedSlice, typename Done>
  void dispatch_async(service::worker_pool& pool, State& state,
                      SeedSlice seed, Done done, const wall_timer& timer) {
    auto done_fn = std::make_shared<Done>(std::move(done));
    pool.submit(
        cfg_.num_threads,
        [this, &state, seed = std::move(seed)](std::size_t t) {
          run_worker(state, seed, t);
        },
        [this, timer, done_fn] { finish_async(timer, *done_fn); });
  }

  template <typename Done>
  void finish_async(const wall_timer& timer, Done& done) {
    std::exception_ptr error = take_failure();
    done(finalize_stats(timer.elapsed_seconds()), std::move(error));
  }

  void lane_push(lane& me, Visitor&& v) {
    ++me.pushes;
    const std::size_t dest = route_(v.vertex());
    auto& buf = me.outbox[dest];
    buf.push_back(std::move(v));
    // Batch while the destination is busy (amortizes its mailbox mutex),
    // ship immediately while it is starving. Without the starvation bypass,
    // oversubscribed SEM runs lose their latency hiding: visitors sit in
    // the origin's outbox while the origin blocks in I/O, so the threads
    // that should be issuing concurrent preads sleep instead.
    if (buf.size() >= cfg_.flush_batch || starving(dest)) flush_one(me, dest);
  }

  /// Relaxed hint that the destination worker has nothing to work on: no
  /// undrained mail and an empty private structure. Stale reads only cost
  /// an early (or missed-early) flush, never correctness.
  bool starving(std::size_t dest) const noexcept {
    const mailbox<Visitor>& box = boxes_[dest];
    return !box.has_mail.load(std::memory_order_relaxed) &&
           box.local_len.load(std::memory_order_relaxed) == 0;
  }

  /// Delivers one destination's buffered visitors: one batched counter
  /// reservation (reserve-then-deliver; skipped while seeding, which
  /// pre-accounted) and one mailbox mutex acquisition for the whole batch.
  void flush_one(lane& me, std::size_t dest) {
    auto& buf = me.outbox[dest];
    if (buf.empty()) return;
    if (!me.seeding) term_.reserve(static_cast<std::int64_t>(buf.size()));
    // Advised before delivery (see push_external); covers seeded visitors
    // too, so pressure conservation holds for run() and run_seeded alike.
    if (cfg_.advisor != nullptr) {
      for (const Visitor& v : buf) {
        cfg_.advisor->on_enqueue(static_cast<std::uint64_t>(v.vertex()));
      }
    }
    boxes_[dest].deliver(buf);
    buf.clear();
    ++me.flushes;
  }

  void flush_all(lane& me) {
    for (std::size_t d = 0; d < me.outbox.size(); ++d) flush_one(me, d);
  }

  /// Merges freshly delivered visitors into the private ordering structure.
  bool drain(lane& me, mailbox<Visitor>& inbox) {
    me.scratch.clear();
    if (!inbox.drain(me.scratch)) return false;
    for (auto& v : me.scratch) me.local.push(std::move(v));
    me.scratch.clear();
    const std::size_t len = me.local.size();
    inbox.local_len.store(len, std::memory_order_relaxed);
    me.max_len = std::max<std::uint64_t>(me.max_len, len);
    return true;
  }

  /// Commits the deferred completion tally. Precondition: the lane's
  /// outboxes were flushed (flush-before-commit, see termination.hpp).
  /// Returns true iff this commit detected global quiescence.
  bool commit(lane& me) {
    const auto n = static_cast<std::int64_t>(me.completed);
    me.completed = 0;
    return term_.complete(n);
  }

  void worker_loop(State& state, std::size_t tid) {
    lane& me = lanes_[tid];
    mailbox<Visitor>& inbox = boxes_[tid];
    // Tracing state is resolved once per worker: the hot loop pays one
    // pointer test per visit when tracing is off. Scoped (service) jobs get
    // per-job worker rows — concurrent gangs must never share a
    // trace_stream, which is single-writer (telemetry/span.hpp).
    telemetry::trace_stream* ts = nullptr;
    if (cfg_.trace != nullptr) {
      if (cfg_.scope != nullptr) {
        const std::uint64_t jid = cfg_.scope->job_id();
        ts = &cfg_.trace->stream(
            telemetry::span_track::worker_tid(jid, tid),
            "job-" + std::to_string(jid) + " worker-" + std::to_string(tid));
      } else {
        ts = &cfg_.trace->stream(static_cast<std::uint32_t>(tid) + 1,
                                 "worker-" + std::to_string(tid));
      }
    }
    const std::uint32_t sample_every = cfg_.trace_sample_every;
    std::uint32_t until_sample = 1;  // trace the first visit of each worker
    lane_handle handle{*this, me};
    Visitor v{};
    for (;;) {
      // A failed worker raised the abort flag: unwind without flushing or
      // committing — the engine resets all queue state after the join.
      if (term_.abort_requested()) return;
      // Merge arrivals at batch granularity: one relaxed load per pop, a
      // lock only when a sender actually delivered.
      if (inbox.has_mail.load(std::memory_order_relaxed)) drain(me, inbox);
      if (me.local.try_pop(v)) {
        inbox.local_len.store(me.local.size(), std::memory_order_relaxed);
        me.cur_vertex = static_cast<std::uint64_t>(v.vertex());
        me.visiting = true;
        if (ts != nullptr && --until_sample == 0) {
          until_sample = sample_every;
          const std::uint64_t start = ts->now_us();
          v.visit(state, handle, tid);
          ts->complete("visit", start, ts->now_us() - start, "vertex",
                       static_cast<std::uint64_t>(v.vertex()));
        } else {
          v.visit(state, handle, tid);
        }
        me.visiting = false;
        ++me.visits;
        ++me.completed;  // decrement deferred to the next commit point
        if (cfg_.advisor != nullptr) {
          cfg_.advisor->on_complete(static_cast<std::uint64_t>(v.vertex()));
        }
        continue;
      }
      // Local structure empty: drain the inbox; failing that, flush our
      // outboxes (flush-on-idle) and commit the completion tally — the only
      // point where the termination counter can legitimately reach zero.
      if (drain(me, inbox)) continue;
      flush_all(me);
      // Flush/termination checkpoint: the only place a worker reads the
      // global counter anyway, so the frontier estimator samples here —
      // once per idle transition, never per visit.
      if (cfg_.estimator != nullptr) {
        cfg_.estimator->sample(static_cast<std::uint64_t>(
            std::max<std::int64_t>(term_.pending(), 0)));
      }
      if (commit(me)) {
        announce_done();
        return;
      }
      if (drain(me, inbox)) continue;  // self-flush or a racing delivery
      // Park until a sender delivers or the run ends. Outboxes are empty
      // and the tally is committed (flush-before-sleep), so this worker
      // holds no work hostage while asleep.
      std::unique_lock lk(inbox.mu);
      if (term_.stopped()) return;
      if (!inbox.slab.empty()) continue;  // raced with a delivery
      inbox.sleeping = true;
      const std::uint64_t sleep_start = ts != nullptr ? ts->now_us() : 0;
      // Stopping covers completion AND abort: record_failure raises the
      // abort flag and then wake_all's, taking this mutex, so the flag
      // cannot slip between this predicate check and the wait (the same
      // lost-wakeup argument as the done broadcast).
      inbox.cv.wait(lk, [&] {
        return !inbox.slab.empty() || term_.stopped();
      });
      inbox.sleeping = false;
      if (ts != nullptr) {
        ts->complete("sleep", sleep_start, ts->now_us() - sleep_start);
      }
      if (term_.stopped()) return;
      // Counted only here — after the done check — so the final shutdown
      // broadcast does not inflate the idle-transition metric by up to
      // num_threads.
      ++me.wakeups;
    }
  }

  void announce_done() {
    term_.set_done();
    // wake_all takes each mailbox's mutex so the flag write cannot slip
    // between a worker's predicate check and its wait (no lost wakeups).
    wake_all(boxes_);
  }

  /// Called on the failing worker's own thread (from the catch in launch):
  /// latches the FIRST error with its thread/vertex context, then raises
  /// the abort flag and broadcasts it so parked workers wake and unwind.
  void record_failure(std::size_t tid, std::exception_ptr ep) {
    {
      std::lock_guard lk(fail_mu_);
      if (!fail_.error) {
        fail_.error = std::move(ep);
        fail_.thread = tid;
        fail_.has_vertex = lanes_[tid].visiting;
        fail_.vertex = lanes_[tid].cur_vertex;
      }
    }
    term_.request_abort();
    wake_all(boxes_);
  }

  /// After the join: if the run aborted — a worker failed or a cancel was
  /// requested — discard all queue state (every structure a worker
  /// abandoned mid-run) and return the latched error packaged as a
  /// traversal_aborted exception_ptr; null on a clean run. A cancel that
  /// raced no worker failure yields a traversal_aborted with a null cause
  /// and the latched abort_reason in the message. A worker that unwound by
  /// throwing operation_cancelled (a cancellation point noticing the abort
  /// hint, e.g. the fault injector's stall mode) is also cooperative, not a
  /// failure: the run reports the latched reason, with the thrown exception
  /// preserved as cause(). A genuine worker error always wins over any
  /// cancel that raced it. Consuming the failure re-arms the queue for the
  /// next run (the reason latch is cleared too).
  std::exception_ptr take_failure() {
    failure f;
    const auto reason = static_cast<abort_reason>(
        cancel_reason_.exchange(0, std::memory_order_relaxed));
    {
      std::lock_guard lk(fail_mu_);
      if (!fail_.error && reason == abort_reason::none) return nullptr;
      f = std::move(fail_);
      fail_ = failure{};
    }
    reset_after_abort();
    // A latched operation_cancelled is a cancellation point unwinding on
    // request — classify it with the requested reason, not as a failure.
    bool cooperative = !f.error;
    if (f.error) {
      try {
        std::rethrow_exception(f.error);
      } catch (const operation_cancelled&) {
        cooperative = true;
      } catch (...) {
      }
    }
    if (cooperative) {
      const abort_reason r =
          reason != abort_reason::none ? reason : abort_reason::cancelled;
      const std::string what =
          std::string("traversal aborted: ") + abort_reason_name(r);
      note_abort_trace(what);
      return std::make_exception_ptr(traversal_aborted(
          what, f.thread, f.has_vertex, f.vertex, std::move(f.error), r));
    }
    std::string what = "traversal aborted: worker " +
                       std::to_string(f.thread) + " failed";
    if (f.has_vertex) {
      what += " at vertex " + std::to_string(f.vertex);
    }
    try {
      std::rethrow_exception(f.error);
    } catch (const std::exception& e) {
      what += ": ";
      what += e.what();
    } catch (...) {
      what += ": non-standard exception";
    }
    note_abort_trace(what);
    return std::make_exception_ptr(traversal_aborted(
        what, f.thread, f.has_vertex, f.vertex, std::move(f.error)));
  }

  /// Terminal trace marker for a run that ends in traversal_aborted, plus a
  /// best-effort flush to the writer's configured path — so the spans
  /// leading up to a failure or cancellation survive even when the process
  /// never reaches its orderly end-of-run trace write.
  void note_abort_trace(const std::string& what) {
    if (cfg_.trace == nullptr) return;
    cfg_.trace->instant_global(what);
    (void)cfg_.trace->flush();
  }

  /// Blocking-path shim over take_failure: rethrows on the calling thread.
  void throw_if_aborted() {
    if (std::exception_ptr ep = take_failure()) std::rethrow_exception(ep);
  }

  /// Restores the engine to its post-construction state after an abort left
  /// visitors stranded in mailboxes, outboxes, and private structures. Only
  /// called after every worker joined, so plain writes suffice for lane
  /// state; mailbox slabs are cleared under their own mutex for the atomics'
  /// sake (external observers may still call queue_depths()).
  void reset_after_abort() {
    for (auto& ln : lanes_) {
      ln.local.clear();
      for (auto& buf : ln.outbox) buf.clear();
      ln.scratch.clear();
      ln.completed = 0;
      ln.seeding = false;
      ln.visiting = false;
      ln.cur_vertex = 0;
      ln.visits = ln.pushes = ln.flushes = ln.wakeups = ln.max_len = 0;
    }
    for (auto& box : boxes_) {
      std::lock_guard lk(box.mu);
      box.slab.clear();
      box.has_mail.store(false, std::memory_order_relaxed);
      box.local_len.store(0, std::memory_order_relaxed);
    }
    term_.reset_pending();
    term_.reset_done();
    ext_pushes_.store(0, std::memory_order_relaxed);
    ext_flushes_.store(0, std::memory_order_relaxed);
    // The discarded visitors' enqueues were already advised; drop their
    // pending-pressure contribution with them.
    if (cfg_.advisor != nullptr) cfg_.advisor->reset();
  }

  queue_run_stats finalize_stats(double elapsed) {
    queue_run_stats s;
    s.elapsed_seconds = elapsed;
    s.visits_per_queue.reserve(lanes_.size());
    for (auto& ln : lanes_) {
      s.visits += ln.visits;
      s.pushes += ln.pushes;
      s.flushes += ln.flushes;
      s.wakeups += ln.wakeups;
      s.hot_pops += ln.local.take_hot_pops();
      s.max_queue_length = std::max(s.max_queue_length, ln.max_len);
      s.visits_per_queue.push_back(ln.visits);
      ln.visits = ln.pushes = ln.flushes = ln.wakeups = ln.max_len = 0;
      ln.completed = 0;
    }
    s.pushes += ext_pushes_.exchange(0, std::memory_order_relaxed);
    s.flushes += ext_flushes_.exchange(0, std::memory_order_relaxed);
    if (cfg_.scope != nullptr) {
      // The job's private copy: hot counters for cheap stats() reads plus
      // the same named records the shared registry gets, so per-job deltas
      // sum exactly to the global ones.
      using hot = telemetry::metric_scope::hot;
      telemetry::metric_scope& sc = *cfg_.scope;
      sc.add(hot::visits, 0, s.visits);
      sc.add(hot::pushes, 0, s.pushes);
      sc.add(hot::flushes, 0, s.flushes);
      sc.add(hot::wakeups, 0, s.wakeups);
      record_metrics(sc.deltas(), s);
    }
    if (cfg_.metrics != nullptr) {
      record_metrics(*cfg_.metrics, s);
      if (cfg_.estimator != nullptr) {
        cfg_.metrics->get_gauge("queue.frontier_peak")
            .record_max(
                static_cast<std::int64_t>(cfg_.estimator->peak_queued()));
      }
    }
    return s;
  }

  static void record_metrics(telemetry::metrics_registry& reg,
                             const queue_run_stats& s) {
    reg.get_counter("queue.runs").add(0);
    reg.get_counter("queue.visits").add(0, s.visits);
    reg.get_counter("queue.pushes").add(0, s.pushes);
    reg.get_counter("queue.flushes").add(0, s.flushes);
    reg.get_counter("queue.wakeups").add(0, s.wakeups);
    reg.get_counter("queue.hot_pops").add(0, s.hot_pops);
    reg.get_gauge("queue.max_queue_length")
        .record_max(static_cast<std::int64_t>(s.max_queue_length));
    telemetry::histogram& h = reg.get_histogram("queue.visits_per_queue");
    for (const auto visits : s.visits_per_queue) h.record(0, visits);
  }

  /// First-error latch, written once per aborted run under fail_mu_.
  struct failure {
    std::exception_ptr error;
    std::size_t thread = 0;
    bool has_vertex = false;
    std::uint64_t vertex = 0;
  };

  visitor_queue_config cfg_;
  vertex_router route_;
  std::vector<mailbox<Visitor>> boxes_;
  std::vector<lane> lanes_;
  termination_detector term_;
  std::mutex fail_mu_;
  failure fail_;
  /// First-wins abort_reason latch (0 = none), set by request_cancel and
  /// consumed (cleared) by take_failure. Survives arm()'s reset_done so a
  /// cancel raised before the run still aborts it.
  std::atomic<int> cancel_reason_{0};
  // External pushes arrive outside any lane; relaxed atomics in case a
  // caller pushes from several threads between runs.
  std::atomic<std::uint64_t> ext_pushes_{0};
  std::atomic<std::uint64_t> ext_flushes_{0};
};

}  // namespace asyncgt::detail
