// Configuration surface of the layered traversal engine.
//
// Kept in its own header so every layer (routing_policy, ordering_policy,
// mailbox, termination, traversal_engine) can consume the config without
// pulling in the visitor_queue facade. See docs/visitor_queue.md for the
// four-layer architecture this configures.
#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>

#include "queue/frontier_estimator.hpp"
#include "telemetry/metric_scope.hpp"
#include "telemetry/metrics_registry.hpp"
#include "telemetry/sampler.hpp"
#include "telemetry/trace_writer.hpp"

namespace asyncgt {

// Forward-declared so this header stays below the service layer: the engine
// only ever holds a pointer to the pool (src/service/worker_pool.hpp), and
// traversal_engine.hpp includes the full definition.
namespace service {
class worker_pool;
}

// Forward-declared so configs can carry the advisory pointer without the
// full interface; the engine and hot_order include hot_advisor.hpp.
class hot_advisor;

/// Visitor pop ordering. `priority` is the paper's design; `fifo` and `lifo`
/// exist for the ablation bench that quantifies what the prioritization buys;
/// `hot` is the two-band hot-block mode (priority order within each band,
/// but visitors whose adjacency block is cache-resident or pressure-hot pop
/// first — see hot_advisor.hpp and docs/hot_blocks.md).
/// The value selects one of four compile-time ordering policies
/// (ordering_policy.hpp) once at queue construction — the hot pop loop runs
/// inside the selected instantiation and pays no per-pop dispatch.
enum class queue_order { priority, fifo, lifo, hot };

struct visitor_queue_config {
  std::size_t num_threads = 4;
  queue_order order = queue_order::priority;
  /// Secondary sort by vertex id within equal priorities — the paper's
  /// semi-external locality optimization (§IV-C). Harmless in-memory.
  bool secondary_vertex_sort = false;
  /// Route with the raw id (v % threads) instead of the avalanching hash;
  /// used by the load-balance ablation.
  bool identity_hash = false;
  /// Initial per-queue heap capacity reservation.
  std::size_t reserve_per_queue = 0;

  /// Cross-thread delivery batch size B (mailbox layer). Pushes from inside
  /// visitors append lock-free to a per-thread outbox buffer per destination
  /// and are delivered — one destination-mutex acquisition plus one batched
  /// termination-counter update — only when the buffer holds B visitors (or
  /// at flush-on-idle / flush-before-sleep, which keep termination exact).
  /// 1 reproduces the seed's per-push delivery; 64 amortizes both per-push
  /// costs ~64x on fan-out-heavy traversals.
  std::size_t flush_batch = 64;

  /// Optional telemetry sinks (all borrowed, all nullable — null means the
  /// corresponding instrumentation compiles to a predictable branch).
  telemetry::metrics_registry* metrics = nullptr;  ///< flushed at end of run
  telemetry::trace_writer* trace = nullptr;        ///< per-visit spans
  telemetry::sampler* sampler = nullptr;           ///< depth/pending probes
  /// Record a trace span for 1 visit in every `trace_sample_every` per
  /// worker (1 = every visit; tracing every visit on large graphs produces
  /// multi-GB traces).
  std::uint32_t trace_sample_every = 64;

  /// Per-job attribution scope (borrowed, nullable). When set, the engine
  /// installs it as the calling thread's ambient metric_scope for the
  /// duration of every worker body (telemetry/metric_scope.hpp), marks the
  /// job's run start, and mirrors the end-of-run queue stats into the
  /// scope's hot counters and named deltas — so shared sinks (io_recorder,
  /// the global registry) stay exact while the job gets its own copy.
  /// asyncgt::engine wires one scope per submitted job; null costs nothing.
  telemetry::metric_scope* scope = nullptr;

  /// Frontier-density estimator (borrowed, nullable). When set, every
  /// worker samples the in-flight visitor count into it at its
  /// flush-on-idle / termination-commit checkpoints — the cheap points
  /// where the termination counter is meaningful — and the end-of-run
  /// metrics record the observed peak as `queue.frontier_peak`. The hybrid
  /// phase driver (core/hybrid_traversal.hpp) wires one per run to make its
  /// direction decisions; null costs one predictable branch per idle
  /// transition.
  frontier_estimator* estimator = nullptr;

  /// Hot-vertex advisor (borrowed, nullable). With `order == hot` this is
  /// the signal source for the two-band pop discipline: hot_order asks it
  /// is_hot() at push time, and the engine feeds it on_enqueue/on_complete
  /// at delivery/visit time (which is how the SEM block_pressure tracker
  /// stays live). Null degrades hot ordering to plain priority order and
  /// costs the other orderings nothing. sem_config::open() builds and wires
  /// one when requested (docs/hot_blocks.md).
  hot_advisor* advisor = nullptr;

  /// Borrowed worker pool (nullable). When set, run()/run_seeded() dispatch
  /// their worker bodies as a gang on this pool — acquire/release of parked
  /// threads — instead of spawning and joining `num_threads` fresh
  /// std::threads per run. asyncgt::engine sets this on every job config it
  /// prepares; null reproduces the one-shot spawn/join lifecycle.
  service::worker_pool* pool = nullptr;

  void validate() const {
    if (num_threads == 0) {
      throw std::invalid_argument("visitor_queue: need at least one thread");
    }
    if (flush_batch == 0) {
      throw std::invalid_argument("visitor_queue: flush_batch must be >= 1");
    }
    if (trace_sample_every == 0) {
      throw std::invalid_argument(
          "visitor_queue: trace_sample_every must be >= 1");
    }
  }
};

}  // namespace asyncgt
