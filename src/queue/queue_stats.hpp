// Per-run statistics emitted by the visitor queue.
//
// These are the machine-independent metrics the benches report next to wall
// time: total visitor executions (a proxy for work, including re-visits from
// label correction), pushes, and the load-balance spread across queues.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/stats.hpp"

namespace asyncgt {

struct queue_run_stats {
  std::uint64_t visits = 0;          // visitors executed (incl. no-op visits)
  std::uint64_t pushes = 0;          // visitors enqueued
  std::uint64_t wakeups = 0;         // worker sleep→wake transitions
  std::uint64_t max_queue_length = 0;  // max over all per-thread queues
  double elapsed_seconds = 0.0;

  /// Per-queue visit counts, for load-balance analysis (hash ablation).
  std::vector<std::uint64_t> visits_per_queue;

  /// Coefficient of variation of visits across queues: 0 = perfectly even.
  double load_imbalance_cv() const {
    summary_stats s;
    for (const auto v : visits_per_queue) s.add(static_cast<double>(v));
    return s.cv();
  }

  std::string to_string() const {
    return "visits=" + std::to_string(visits) +
           " pushes=" + std::to_string(pushes) +
           " wakeups=" + std::to_string(wakeups) +
           " max_qlen=" + std::to_string(max_queue_length) +
           " imbalance_cv=" + std::to_string(load_imbalance_cv());
  }
};

}  // namespace asyncgt
