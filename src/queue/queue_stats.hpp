// Per-run statistics emitted by the visitor queue.
//
// These are the machine-independent metrics the benches report next to wall
// time: total visitor executions (a proxy for work, including re-visits from
// label correction), pushes, and the load-balance spread across queues.
#pragma once

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "util/stats.hpp"

namespace asyncgt {

struct queue_run_stats {
  std::uint64_t visits = 0;          // visitors executed (incl. no-op visits)
  std::uint64_t pushes = 0;          // visitors enqueued
  std::uint64_t flushes = 0;         // batched deliveries (mailbox-mutex
                                     // acquisitions on the push side);
                                     // pushes/flushes ≈ realized batch size
  std::uint64_t wakeups = 0;         // worker sleep→wake transitions
  std::uint64_t hot_pops = 0;        // pops served from hot_order's hot band
                                     // (0 under every other ordering)
  std::uint64_t max_queue_length = 0;  // max over all per-thread queues
  double elapsed_seconds = 0.0;

  /// Per-queue visit counts, for load-balance analysis (hash ablation).
  std::vector<std::uint64_t> visits_per_queue;

  /// Coefficient of variation of visits across queues: 0 = perfectly even.
  /// An empty or single-queue run has no spread to measure, so it reports
  /// 0.0 rather than leaning on summary_stats' degenerate-input behaviour.
  double load_imbalance_cv() const {
    if (visits_per_queue.size() <= 1) return 0.0;
    summary_stats s;
    for (const auto v : visits_per_queue) s.add(static_cast<double>(v));
    return s.cv();
  }

  /// Smallest per-queue visit count (0 when no queues reported).
  std::uint64_t min_queue_visits() const {
    if (visits_per_queue.empty()) return 0;
    std::uint64_t m = visits_per_queue.front();
    for (const auto v : visits_per_queue) m = std::min(m, v);
    return m;
  }

  /// Largest per-queue visit count (0 when no queues reported).
  std::uint64_t max_queue_visits() const {
    std::uint64_t m = 0;
    for (const auto v : visits_per_queue) m = std::max(m, v);
    return m;
  }

  std::string to_string() const {
    char elapsed[32];
    std::snprintf(elapsed, sizeof elapsed, "%.6f", elapsed_seconds);
    return "visits=" + std::to_string(visits) +
           " pushes=" + std::to_string(pushes) +
           " flushes=" + std::to_string(flushes) +
           " wakeups=" + std::to_string(wakeups) +
           " hot_pops=" + std::to_string(hot_pops) +
           " max_qlen=" + std::to_string(max_queue_length) +
           " elapsed_s=" + elapsed +
           " queue_visits_min=" + std::to_string(min_queue_visits()) +
           " queue_visits_max=" + std::to_string(max_queue_visits()) +
           " imbalance_cv=" + std::to_string(load_imbalance_cv());
  }
};

}  // namespace asyncgt
