// A d-ary (default 4-ary) array-backed min-heap.
//
// Each visitor-queue worker owns one of these as its prioritized queue
// (paper §III-A). A 4-ary heap trades slightly more comparisons per
// sift-down for half the tree depth of a binary heap, which wins on the
// push-heavy workloads here (every edge relaxation is a push). The heap is
// ordered by a caller-supplied strict-weak-order `Less`; the minimum element
// (highest priority) is at top().
#pragma once

#include <algorithm>
#include <cstddef>
#include <utility>
#include <vector>

namespace asyncgt {

template <typename T, typename Less, std::size_t Arity = 4>
class dary_heap {
  static_assert(Arity >= 2, "heap arity must be at least 2");

 public:
  // std::forward keeps this working when Less is an lvalue-reference type
  // (the visitor queue shares one mutable comparator per worker that way).
  explicit dary_heap(Less less = Less{}) : less_(std::forward<Less>(less)) {}

  bool empty() const noexcept { return items_.empty(); }
  std::size_t size() const noexcept { return items_.size(); }
  void reserve(std::size_t n) { items_.reserve(n); }
  void clear() noexcept { items_.clear(); }

  const T& top() const noexcept { return items_.front(); }

  void push(T item) {
    items_.push_back(std::move(item));
    sift_up(items_.size() - 1);
  }

  T pop() {
    T out = std::move(items_.front());
    items_.front() = std::move(items_.back());
    items_.pop_back();
    if (!items_.empty()) sift_down(0);
    return out;
  }

  /// Bulk insertion followed by O(n) heapify — used when seeding one visitor
  /// per vertex for Connected Components (Algorithm 3).
  template <typename It>
  void assign(It first, It last) {
    items_.assign(first, last);
    if (items_.size() < 2) return;
    for (std::size_t i = parent(items_.size() - 1) + 1; i-- > 0;) {
      sift_down(i);
    }
  }

  /// Validates the heap property; used by tests and debug assertions.
  bool is_valid_heap() const {
    for (std::size_t i = 1; i < items_.size(); ++i) {
      if (less_(items_[i], items_[parent(i)])) return false;
    }
    return true;
  }

 private:
  static constexpr std::size_t parent(std::size_t i) noexcept {
    return (i - 1) / Arity;
  }
  static constexpr std::size_t first_child(std::size_t i) noexcept {
    return i * Arity + 1;
  }

  void sift_up(std::size_t i) {
    T item = std::move(items_[i]);
    while (i > 0) {
      const std::size_t p = parent(i);
      if (!less_(item, items_[p])) break;
      items_[i] = std::move(items_[p]);
      i = p;
    }
    items_[i] = std::move(item);
  }

  void sift_down(std::size_t i) {
    T item = std::move(items_[i]);
    const std::size_t n = items_.size();
    for (;;) {
      const std::size_t c0 = first_child(i);
      if (c0 >= n) break;
      std::size_t best = c0;
      const std::size_t c_end = std::min(c0 + Arity, n);
      for (std::size_t c = c0 + 1; c < c_end; ++c) {
        if (less_(items_[c], items_[best])) best = c;
      }
      if (!less_(items_[best], item)) break;
      items_[i] = std::move(items_[best]);
      i = best;
    }
    items_[i] = std::move(item);
  }

  std::vector<T> items_;
  Less less_;
};

}  // namespace asyncgt
