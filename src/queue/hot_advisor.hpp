// Hot-vertex advisory seam between the visitor queue and the SEM layer.
//
// The queue's hot ordering mode (ordering_policy.hpp, queue_order::hot)
// wants to pop visitors whose adjacency block is cache-resident or has a
// lot of queued work first — ACGraph's observation that amortizing one
// block load over many pending updates is where out-of-core I/O savings
// live. The queue layer cannot know what a "block" is (that is sem's
// business), so the engine talks to an abstract advisor:
//
//   on_enqueue(v)  — fired once per visitor at mailbox delivery time
//                    (external pushes, outbox flushes, and seeding alike);
//                    the SEM implementation bumps the pending count of v's
//                    adjacency block and may trigger readahead when the
//                    block crosses the hotness threshold while non-resident.
//   on_complete(v) — fired once per executed visit; undoes one on_enqueue.
//                    At quiescence, total on_enqueue == total on_complete ==
//                    run visits (the pressure conservation law the tests
//                    pin).
//   is_hot(v)      — consulted by hot_order::push to classify the visitor
//                    into the hot or cold band.
//   reset()        — the engine discarded queued visitors after an abort;
//                    pending counts must drop back to zero with them.
//
// Thread safety: every hook is called concurrently from all worker threads
// (and is_hot additionally from whichever thread pushes). Implementations
// must be internally synchronized — the SEM advisor is built on relaxed
// atomics (sem/block_pressure.hpp) because the signal is a scheduling
// heuristic, not an accounting ledger.
//
// The advisor is borrowed and nullable on visitor_queue_config: null means
// the hooks compile to one predictable branch per delivery batch, and
// hot_order degrades to plain priority_order behaviour.
#pragma once

#include <cstdint>

namespace asyncgt {

class hot_advisor {
 public:
  virtual ~hot_advisor() = default;

  /// Should `vertex` pop from the hot band right now (the SEM
  /// implementation answers with cache residency of its backing block)?
  /// Stale answers are fine (push-time classification is a heuristic);
  /// wrong answers cost ordering quality, never correctness — label
  /// correction makes final labels pop-order-invariant.
  virtual bool is_hot(std::uint64_t vertex) const noexcept = 0;

  /// One visitor for `vertex` was delivered to its owner's mailbox.
  virtual void on_enqueue(std::uint64_t vertex) noexcept = 0;

  /// One visitor for `vertex` finished executing.
  virtual void on_complete(std::uint64_t vertex) noexcept = 0;

  /// All queued visitors were discarded (post-abort reset).
  virtual void reset() noexcept = 0;
};

}  // namespace asyncgt
