// Minimal JSON document model: build, serialize, and parse.
//
// The telemetry layer emits two machine-readable artifacts — bench/metrics
// JSON (bench_report) and Chrome trace files (trace_writer) — and the test
// suite plus `agt_tool verify-json` must be able to read them back without
// external dependencies. This is a small ordered-object DOM with a strict
// recursive-descent parser; it is not a general-purpose JSON library (no
// streaming, no >64-bit numbers, objects keep insertion order and allow
// duplicate keys on parse with last-wins lookup).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

namespace asyncgt::telemetry {

class json_value {
 public:
  using array_t = std::vector<json_value>;
  using member = std::pair<std::string, json_value>;
  using object_t = std::vector<member>;

  json_value() : v_(nullptr) {}
  json_value(std::nullptr_t) : v_(nullptr) {}
  json_value(bool b) : v_(b) {}
  json_value(double d) : v_(d) {}
  json_value(std::int64_t i) : v_(i) {}
  json_value(std::uint64_t u) : v_(static_cast<std::int64_t>(u)) {}
  json_value(int i) : v_(static_cast<std::int64_t>(i)) {}
  json_value(unsigned u) : v_(static_cast<std::int64_t>(u)) {}
  json_value(std::string s) : v_(std::move(s)) {}
  json_value(const char* s) : v_(std::string(s)) {}
  json_value(array_t a) : v_(std::move(a)) {}
  json_value(object_t o) : v_(std::move(o)) {}

  static json_value array() { return json_value(array_t{}); }
  static json_value object() { return json_value(object_t{}); }

  bool is_null() const noexcept { return std::holds_alternative<std::nullptr_t>(v_); }
  bool is_bool() const noexcept { return std::holds_alternative<bool>(v_); }
  bool is_int() const noexcept { return std::holds_alternative<std::int64_t>(v_); }
  bool is_double() const noexcept { return std::holds_alternative<double>(v_); }
  bool is_number() const noexcept { return is_int() || is_double(); }
  bool is_string() const noexcept { return std::holds_alternative<std::string>(v_); }
  bool is_array() const noexcept { return std::holds_alternative<array_t>(v_); }
  bool is_object() const noexcept { return std::holds_alternative<object_t>(v_); }

  bool as_bool() const { return std::get<bool>(v_); }
  std::int64_t as_int() const;
  double as_double() const;
  const std::string& as_string() const { return std::get<std::string>(v_); }
  const array_t& as_array() const { return std::get<array_t>(v_); }
  array_t& as_array() { return std::get<array_t>(v_); }
  const object_t& as_object() const { return std::get<object_t>(v_); }
  object_t& as_object() { return std::get<object_t>(v_); }

  /// Object member lookup (last occurrence wins); nullptr if absent or if
  /// this value is not an object.
  const json_value* find(std::string_view key) const;

  /// Appends/overwrites an object member. Value must be an object.
  json_value& set(std::string key, json_value v);

  /// Appends an array element. Value must be an array.
  json_value& push(json_value v);

  std::size_t size() const noexcept;

  /// Serializes. indent < 0 means compact one-line output.
  std::string dump(int indent = -1) const;

  /// Strict parse of a complete JSON document. Throws std::runtime_error
  /// with position information on malformed input.
  static json_value parse(std::string_view text);

 private:
  std::variant<std::nullptr_t, bool, std::int64_t, double, std::string,
               array_t, object_t>
      v_;
};

}  // namespace asyncgt::telemetry
