// Chrome-trace event collection: per-thread span buffers plus a writer
// that serializes them to the chrome://tracing / Perfetto JSON format.
//
// Events accumulate in per-stream vectors (one stream per worker thread, a
// dedicated stream for phases, one for the sampler), so recording a span is
// a vector push_back under the stream's own mutex — single-writer, so the
// lock is uncontended except against a concurrent flush()/to_json(), which
// snapshots each stream under that same mutex. That contention is real:
// the abort path flushes the writer while OTHER jobs' gangs are still
// appending to their streams (queue/traversal_engine.hpp note_abort_trace),
// and without the per-stream lock that iteration races vector reallocation.
// The writer's own mutex covers stream acquisition and the stream list.
// Timebase: microseconds since the trace_writer was constructed, on the
// steady clock — every stream shares it, so spans from different threads
// line up in the viewer.
//
// Intended use (see docs/observability.md):
//   trace_writer tw;
//   trace_stream& s = tw.stream(tid, "worker");
//   { scoped_span span(&s, "visit"); ... }        // RAII complete event
//   { phase_timer ph(&tw, "build-graph"); ... }   // top-level phase span
//   tw.write_file("out.trace");                   // load in ui.perfetto.dev
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "telemetry/json.hpp"

namespace asyncgt::telemetry {

class trace_writer;

/// Named numeric arguments attached to an event ({"args": {...}} in the
/// Chrome format). The span API uses these for id/parent links.
using trace_args = std::vector<std::pair<std::string, std::uint64_t>>;

struct trace_event {
  std::string name;
  char phase = 'X';          // 'X' complete, 'i' instant, 'C' counter
  std::uint64_t ts_us = 0;   // since writer construction
  std::uint64_t dur_us = 0;  // complete events only
  bool has_value = false;    // counter events carry a numeric payload
  double value = 0.0;
  trace_args args;           // optional named numeric arguments
};

/// A single-writer event buffer; one per logical thread. All mutating
/// methods must be called from one thread at a time (each worker owns its
/// stream). Appends still take the stream's mutex — not against each other
/// (single writer), but against trace_writer::flush()/to_json(), which may
/// serialize every stream mid-run on another job's abort path.
class trace_stream {
 public:
  /// Records a completed span [ts_us, ts_us + dur_us).
  void complete(std::string name, std::uint64_t ts_us, std::uint64_t dur_us) {
    std::lock_guard lk(*mu_);
    events_.push_back({std::move(name), 'X', ts_us, dur_us,
                       false, 0.0, {}});
  }

  /// Completed span with one numeric argument (e.g. the visited vertex id).
  void complete(std::string name, std::uint64_t ts_us, std::uint64_t dur_us,
                std::string arg_name, std::uint64_t arg) {
    trace_args args;
    args.emplace_back(std::move(arg_name), arg);
    complete(std::move(name), ts_us, dur_us, std::move(args));
  }

  /// Completed span with arbitrary named numeric arguments (the span API's
  /// id/parent links travel through here).
  void complete(std::string name, std::uint64_t ts_us, std::uint64_t dur_us,
                trace_args args) {
    std::lock_guard lk(*mu_);
    events_.push_back({std::move(name), 'X', ts_us, dur_us,
                       false, 0.0, std::move(args)});
  }

  /// Zero-duration marker.
  void instant(std::string name, std::uint64_t ts_us) {
    std::lock_guard lk(*mu_);
    events_.push_back({std::move(name), 'i', ts_us, 0,
                       false, 0.0, {}});
  }

  /// Counter sample: renders as a stacked time-series track in the viewer.
  void counter(std::string name, std::uint64_t ts_us, double value) {
    std::lock_guard lk(*mu_);
    events_.push_back({std::move(name), 'C', ts_us, 0,
                       true, value, {}});
  }

  std::uint64_t now_us() const noexcept;

  std::size_t size() const noexcept {
    std::lock_guard lk(*mu_);
    return events_.size();
  }

 private:
  friend class trace_writer;
  trace_stream(const trace_writer* owner, std::uint32_t tid, std::string name)
      : owner_(owner), tid_(tid), name_(std::move(name)) {}

  const trace_writer* owner_;
  std::uint32_t tid_;
  std::string name_;
  // Guards events_ against the writer's serialization walk; heap-allocated
  // so the stream stays movable into the writer's deque (the move happens
  // under the writer mutex, before the stream is ever shared).
  std::unique_ptr<std::mutex> mu_ = std::make_unique<std::mutex>();
  std::vector<trace_event> events_;
};

class trace_writer {
 public:
  explicit trace_writer(std::string process_name = "asyncgt");

  trace_writer(const trace_writer&) = delete;
  trace_writer& operator=(const trace_writer&) = delete;

  /// Finds or creates the stream for Chrome tid `tid`. The reference stays
  /// valid for the writer's lifetime. `name` labels the track on first
  /// acquisition (thread_name metadata event).
  trace_stream& stream(std::uint32_t tid, const std::string& name = "");

  /// Thread-safe zero-duration marker on the writer's dedicated "events"
  /// track (tid events_stream_tid): the whole append happens under the
  /// writer mutex, so any thread may call it without owning a stream —
  /// the abort path uses this (queue/traversal_engine.hpp's take_failure).
  void instant_global(std::string name);
  static constexpr std::uint32_t events_stream_tid = 996;

  /// Process-unique id source for the span API (telemetry/span.hpp). Never
  /// returns 0 (0 means "no parent").
  std::uint64_t next_span_id() noexcept {
    return next_span_id_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Remembers where flush() should persist the trace. Empty disables.
  void set_flush_path(std::string path);
  std::string flush_path() const;

  /// Best-effort write to the configured flush path so buffered events
  /// survive an abort; returns false when no path is set or the write
  /// failed (never throws — this runs on failure-containment paths). Safe
  /// while other threads are still appending — one job's abort must not
  /// corrupt the streams of jobs that are still running.
  bool flush() const noexcept;

  /// Microseconds since this writer was constructed.
  std::uint64_t now_us() const noexcept {
    return us_since_origin(std::chrono::steady_clock::now());
  }

  std::uint64_t us_since_origin(
      std::chrono::steady_clock::time_point tp) const noexcept {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(tp - origin_)
            .count());
  }

  std::chrono::steady_clock::time_point origin() const noexcept {
    return origin_;
  }

  /// Events recorded across all streams so far (streams must be quiescent
  /// for an exact count).
  std::size_t event_count() const;

  /// Serializes to the Chrome trace object format
  /// {"traceEvents": [...], ...}; parseable by chrome://tracing, Perfetto,
  /// and json_value::parse.
  json_value to_json() const;
  std::string to_json_string() const { return to_json().dump(); }

  /// Writes the JSON to `path`. Throws std::runtime_error on I/O failure.
  void write_file(const std::string& path) const;

 private:
  trace_stream& stream_locked(std::uint32_t tid, const std::string& name);

  std::string process_name_;
  std::chrono::steady_clock::time_point origin_;
  mutable std::mutex mu_;
  std::deque<trace_stream> streams_;  // stable addresses
  std::string flush_path_;            // guarded by mu_
  std::atomic<std::uint64_t> next_span_id_{1};
};

inline std::uint64_t trace_stream::now_us() const noexcept {
  return owner_->now_us();
}

/// RAII span: records a complete event on destruction. A default-constructed
/// (or null-stream) span is a no-op, so call sites can be unconditional.
class scoped_span {
 public:
  scoped_span() = default;
  scoped_span(trace_stream* stream, std::string name)
      : stream_(stream), name_(std::move(name)) {
    if (stream_ != nullptr) start_us_ = stream_->now_us();
  }

  scoped_span(const scoped_span&) = delete;
  scoped_span& operator=(const scoped_span&) = delete;

  /// Attaches one numeric argument emitted with the span.
  void set_arg(std::string name, std::uint64_t value) {
    arg_name_ = std::move(name);
    arg_ = value;
    has_arg_ = true;
  }

  ~scoped_span() {
    if (stream_ == nullptr) return;
    const std::uint64_t end = stream_->now_us();
    if (has_arg_) {
      stream_->complete(std::move(name_), start_us_, end - start_us_,
                        std::move(arg_name_), arg_);
    } else {
      stream_->complete(std::move(name_), start_us_, end - start_us_);
    }
  }

 private:
  trace_stream* stream_ = nullptr;
  std::string name_;
  std::uint64_t start_us_ = 0;
  bool has_arg_ = false;
  std::string arg_name_;
  std::uint64_t arg_ = 0;
};

class metrics_registry;

/// RAII top-level phase marker ("load graph", "traverse", "write output").
/// Records a span on the writer's dedicated phase stream and, when a
/// registry is attached, accumulates the duration into the counter
/// "phase.<name>.us". Both sinks are optional; null pointers make this a
/// cheap no-op so instrumented code paths need no #ifdefs.
class phase_timer {
 public:
  phase_timer(trace_writer* writer, std::string name,
              metrics_registry* registry = nullptr);
  ~phase_timer();

  phase_timer(const phase_timer&) = delete;
  phase_timer& operator=(const phase_timer&) = delete;

  static constexpr std::uint32_t phase_stream_tid = 0;

 private:
  trace_writer* writer_;
  metrics_registry* registry_;
  std::string name_;
  std::uint64_t start_us_ = 0;
  std::chrono::steady_clock::time_point start_tp_;
};

}  // namespace asyncgt::telemetry
