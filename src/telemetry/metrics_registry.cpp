#include "telemetry/metrics_registry.hpp"

#include <stdexcept>

namespace asyncgt::telemetry {

metrics_registry::metrics_registry(std::size_t shards)
    : shards_(shards ? shards : 1) {}

counter& metrics_registry::get_counter(const std::string& name) {
  std::lock_guard lk(mu_);
  const auto it = by_name_.find(name);
  if (it != by_name_.end()) {
    if (it->second.kind != metric_kind::counter) {
      throw std::logic_error("metrics_registry: '" + name +
                             "' already registered as a different kind");
    }
    return counters_[it->second.index];
  }
  counters_.emplace_back(shards_);
  by_name_[name] = {metric_kind::counter, counters_.size() - 1};
  return counters_.back();
}

gauge& metrics_registry::get_gauge(const std::string& name) {
  std::lock_guard lk(mu_);
  const auto it = by_name_.find(name);
  if (it != by_name_.end()) {
    if (it->second.kind != metric_kind::gauge) {
      throw std::logic_error("metrics_registry: '" + name +
                             "' already registered as a different kind");
    }
    return gauges_[it->second.index];
  }
  gauges_.emplace_back();
  by_name_[name] = {metric_kind::gauge, gauges_.size() - 1};
  return gauges_.back();
}

histogram& metrics_registry::get_histogram(const std::string& name) {
  std::lock_guard lk(mu_);
  const auto it = by_name_.find(name);
  if (it != by_name_.end()) {
    if (it->second.kind != metric_kind::histogram) {
      throw std::logic_error("metrics_registry: '" + name +
                             "' already registered as a different kind");
    }
    return histograms_[it->second.index];
  }
  histograms_.emplace_back(shards_);
  by_name_[name] = {metric_kind::histogram, histograms_.size() - 1};
  return histograms_.back();
}

metrics_snapshot metrics_registry::scrape() const {
  std::lock_guard lk(mu_);
  metrics_snapshot snap;
  snap.entries.reserve(by_name_.size());
  for (const auto& [name, s] : by_name_) {
    metrics_snapshot::entry e;
    e.name = name;
    e.kind = s.kind;
    switch (s.kind) {
      case metric_kind::counter: {
        const counter& c = counters_[s.index];
        e.total = c.total();
        e.per_shard = c.per_shard();
        break;
      }
      case metric_kind::gauge:
        e.value = gauges_[s.index].get();
        break;
      case metric_kind::histogram: {
        const histogram& h = histograms_[s.index];
        e.total = h.total();
        e.sum = h.sum();
        e.buckets = h.merged();
        break;
      }
    }
    snap.entries.push_back(std::move(e));
  }
  return snap;
}

void metrics_registry::reset() {
  std::lock_guard lk(mu_);
  for (auto& c : counters_) c.reset();
  for (auto& g : gauges_) g.reset();
  for (auto& h : histograms_) h.reset();
}

}  // namespace asyncgt::telemetry
