#include "telemetry/sampler.hpp"

#include "telemetry/trace_writer.hpp"

namespace asyncgt::telemetry {

sampler::sampler() : origin_(std::chrono::steady_clock::now()) {}

sampler::~sampler() { stop(); }

sampler::probe_id sampler::add_probe(std::string name, probe_fn fn) {
  std::lock_guard lk(mu_);
  probe p;
  p.id = next_id_++;
  p.live = true;
  p.name = std::move(name);
  p.fn = std::move(fn);
  probes_.push_back(std::move(p));
  return probes_.back().id;
}

void sampler::remove_probe(probe_id id) {
  std::lock_guard lk(mu_);
  for (auto& p : probes_) {
    if (p.id == id && p.live) {
      p.live = false;
      p.fn = nullptr;  // release captured resources under the lock
      return;
    }
  }
}

void sampler::start(std::chrono::microseconds interval) {
  if (running_.load(std::memory_order_acquire)) return;
  {
    std::lock_guard lk(stop_mu_);
    stop_requested_ = false;
  }
  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this, interval] {
    // Take an immediate first sample so even sub-interval runs get points.
    tick();
    std::unique_lock lk(stop_mu_);
    while (!stop_requested_) {
      if (stop_cv_.wait_for(lk, interval, [this] { return stop_requested_; })) {
        break;
      }
      lk.unlock();
      tick();
      lk.lock();
    }
  });
}

void sampler::stop() {
  if (!running_.load(std::memory_order_acquire)) return;
  {
    std::lock_guard lk(stop_mu_);
    stop_requested_ = true;
  }
  stop_cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  running_.store(false, std::memory_order_release);
}

void sampler::set_tick_hook(tick_hook_fn hook) {
  std::lock_guard lk(mu_);
  tick_hook_ = std::move(hook);
}

void sampler::tick() {
  const double t = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - origin_)
                       .count();
  tick_hook_fn hook;
  {
    std::lock_guard lk(mu_);
    for (auto& p : probes_) {
      if (!p.live) continue;
      p.points.push_back({t, p.fn()});
      ++samples_;
    }
    hook = tick_hook_;  // copy so the hook runs without holding mu_
  }
  if (hook) hook(t);
}

std::uint64_t sampler::samples_taken() const {
  std::lock_guard lk(mu_);
  return samples_;
}

std::vector<sampler::series> sampler::snapshot() const {
  std::lock_guard lk(mu_);
  std::vector<series> out;
  out.reserve(probes_.size());
  for (const auto& p : probes_) {
    if (p.points.empty() && !p.live) continue;
    out.push_back({p.name, p.points});
  }
  return out;
}

void sampler::clear() {
  std::lock_guard lk(mu_);
  samples_ = 0;
  std::vector<probe> kept;
  for (auto& p : probes_) {
    if (!p.live) continue;
    p.points.clear();
    kept.push_back(std::move(p));
  }
  probes_ = std::move(kept);
}

void sampler::write_counters(trace_writer& tw, std::uint32_t tid) const {
  const auto all = snapshot();
  trace_stream& s = tw.stream(tid, "sampler");
  // Sampler time is relative to sampler construction; the trace timebase is
  // the writer's. Shift by the origin difference so tracks align with spans.
  const std::int64_t shift_us =
      std::chrono::duration_cast<std::chrono::microseconds>(origin_ -
                                                            tw.origin())
          .count();
  for (const auto& ser : all) {
    for (const auto& pt : ser.points) {
      const std::int64_t ts =
          static_cast<std::int64_t>(pt.t_seconds * 1e6) + shift_us;
      s.counter(ser.name, ts < 0 ? 0 : static_cast<std::uint64_t>(ts),
                pt.value);
    }
  }
}

}  // namespace asyncgt::telemetry
