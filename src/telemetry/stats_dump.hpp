// Interval snapshot dumper for live introspection (--stats-dump).
//
// A stats_dumper owns the "previous scrape" of a metrics_registry and turns
// each new scrape into per-interval deltas: counters and histogram counts
// report the increment since the last take, gauges report their current
// reading. Hooked into the background sampler (sampler::set_tick_hook) it
// prints a compact table every N ticks while a traversal runs.
//
// Reset hazard: metrics_registry::reset() may race a running dumper —
// another thread zeroes every counter between two takes, making the current
// total smaller than the remembered one. A naive `cur - prev` underflows to
// a near-2^64 "delta". The dumper clamps instead: when a counter went
// backwards it reports the post-reset total as the interval's delta (the
// count since the reset — everything still attributable to the interval)
// and resynchronizes. Deltas are therefore never negative and never
// underflow, no matter when reset_counters() lands. Covered by
// tests/telemetry/stats_dump_test.cpp.
//
// Threading: take_deltas/render/dump serialize on an internal mutex, so the
// sampler thread and a foreground caller may share one dumper.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

#include "telemetry/metrics_registry.hpp"

namespace asyncgt::telemetry {

class stats_dumper {
 public:
  explicit stats_dumper(const metrics_registry* reg) : reg_(reg) {}

  struct delta_entry {
    std::string name;
    metric_kind kind = metric_kind::counter;
    std::uint64_t delta = 0;   // counter/histogram increment this interval
    std::uint64_t total = 0;   // cumulative total at this take
    std::int64_t value = 0;    // gauge reading
    bool changed = false;      // moved since the previous take
  };

  /// Scrapes the registry and returns this interval's deltas, advancing the
  /// remembered baseline. Counters that went backwards (a reset landed
  /// mid-interval) report their post-reset total, never an underflow.
  std::vector<delta_entry> take_deltas();

  /// take_deltas() formatted as an aligned text table; empty string when
  /// nothing changed this interval (so idle ticks stay silent).
  std::string render();

  /// render() to a stream, with a "-- stats @Ns --" header line. No-op when
  /// nothing changed.
  void dump(std::ostream& out, double t_seconds);

  /// Intervals dumped so far (header counter for tests).
  std::uint64_t dumps() const noexcept {
    std::lock_guard lk(mu_);
    return dumps_;
  }

 private:
  static std::uint64_t clamp_delta(std::uint64_t cur, std::uint64_t prev) {
    return cur >= prev ? cur - prev : cur;
  }

  const metrics_registry* reg_;
  mutable std::mutex mu_;
  std::map<std::string, std::uint64_t> prev_;  // counter/histogram baselines
  std::map<std::string, std::int64_t> prev_gauge_;  // last gauge readings
  std::uint64_t dumps_ = 0;
};

}  // namespace asyncgt::telemetry
