// Named metric registry with per-thread sharded storage.
//
// The hot paths of the traversal engine (visitor queue pops/pushes, SEM
// block-cache probes, algorithm relaxations) account their work into metrics
// looked up once and then updated with a relaxed atomic add on a
// cache-line-padded per-thread slot — no locks, no contended lines, and no
// seq_cst fences on the fast path. Aggregation happens only at scrape()
// time, which walks every shard under the registration mutex and returns an
// immutable snapshot. This is the always-compiled substrate behind the
// machine-independent counters the paper argues with (visits, wasted
// relaxations, queue imbalance); see docs/observability.md for the catalog.
//
// Concurrency contract:
//   * counter::add / gauge::set / histogram::record are safe from any
//     thread; passing the worker's tid as `shard` avoids all sharing.
//   * get_counter/get_gauge/get_histogram lock briefly; call them once at
//     setup and keep the reference (stable for the registry's lifetime).
//   * scrape() is safe concurrently with writers; it observes each shard
//     with a relaxed load, so in-flight updates may or may not be included
//     (exact totals are only guaranteed after the writing threads joined).
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "util/cache_line.hpp"

namespace asyncgt::telemetry {

/// Monotone event count, sharded per thread.
class counter {
 public:
  explicit counter(std::size_t shards) : slots_(shards ? shards : 1) {}

  void add(std::size_t shard, std::uint64_t n = 1) noexcept {
    slots_[shard % slots_.size()].value.fetch_add(n,
                                                  std::memory_order_relaxed);
  }

  std::uint64_t total() const noexcept {
    std::uint64_t sum = 0;
    for (const auto& s : slots_) sum += s.value.load(std::memory_order_relaxed);
    return sum;
  }

  std::vector<std::uint64_t> per_shard() const {
    std::vector<std::uint64_t> out;
    out.reserve(slots_.size());
    for (const auto& s : slots_) {
      out.push_back(s.value.load(std::memory_order_relaxed));
    }
    return out;
  }

  void reset() noexcept {
    for (auto& s : slots_) s.value.store(0, std::memory_order_relaxed);
  }

 private:
  std::vector<padded<std::atomic<std::uint64_t>>> slots_;
};

/// Last-write-wins instantaneous value (queue depth, bytes resident, ...).
/// Single slot: gauges are set at low frequency (samplers, end-of-phase).
class gauge {
 public:
  void set(std::int64_t v) noexcept {
    v_.store(v, std::memory_order_relaxed);
  }
  void add(std::int64_t d) noexcept {
    v_.fetch_add(d, std::memory_order_relaxed);
  }
  /// Raises the gauge to `v` if larger (high-water-mark semantics).
  void record_max(std::int64_t v) noexcept {
    std::int64_t cur = v_.load(std::memory_order_relaxed);
    while (v > cur &&
           !v_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  std::int64_t get() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> v_{0};
};

/// Power-of-two-bucket histogram, sharded per thread: bucket i counts
/// values in [2^i, 2^(i+1)), bucket 0 also absorbs 0 — the atomic sibling
/// of util/stats.hpp's log2_histogram, merged across shards at scrape time.
class histogram {
 public:
  static constexpr std::size_t num_buckets = 64;

  explicit histogram(std::size_t shards) : shards_(shards ? shards : 1) {}

  void record(std::size_t shard, std::uint64_t value) noexcept {
    auto& sh = shards_[shard % shards_.size()].value;
    sh.buckets[bucket_of(value)].fetch_add(1, std::memory_order_relaxed);
    sh.sum.fetch_add(value, std::memory_order_relaxed);
  }

  static std::size_t bucket_of(std::uint64_t value) noexcept {
    std::size_t b = 0;
    while (value >>= 1) ++b;  // floor(log2), 0 for value 0
    return b;
  }

  /// Merged bucket counts across all shards (index i = [2^i, 2^(i+1))).
  std::vector<std::uint64_t> merged() const {
    std::vector<std::uint64_t> out(num_buckets, 0);
    for (const auto& sh : shards_) {
      for (std::size_t i = 0; i < num_buckets; ++i) {
        out[i] += sh.value.buckets[i].load(std::memory_order_relaxed);
      }
    }
    return out;
  }

  std::uint64_t total() const noexcept {
    std::uint64_t n = 0;
    for (const auto& sh : shards_) {
      for (const auto& b : sh.value.buckets) {
        n += b.load(std::memory_order_relaxed);
      }
    }
    return n;
  }

  std::uint64_t sum() const noexcept {
    std::uint64_t s = 0;
    for (const auto& sh : shards_) {
      s += sh.value.sum.load(std::memory_order_relaxed);
    }
    return s;
  }

  void reset() noexcept {
    for (auto& sh : shards_) {
      for (auto& b : sh.value.buckets) b.store(0, std::memory_order_relaxed);
      sh.value.sum.store(0, std::memory_order_relaxed);
    }
  }

 private:
  struct shard_data {
    std::atomic<std::uint64_t> buckets[num_buckets] = {};
    std::atomic<std::uint64_t> sum{0};
  };
  std::vector<padded<shard_data>> shards_;
};

enum class metric_kind { counter, gauge, histogram };

/// Immutable aggregated view of every registered metric.
struct metrics_snapshot {
  struct entry {
    std::string name;
    metric_kind kind = metric_kind::counter;
    std::uint64_t total = 0;                  // counter sum / histogram count
    std::int64_t value = 0;                   // gauge reading
    std::uint64_t sum = 0;                    // histogram value sum
    std::vector<std::uint64_t> buckets;       // histogram only (log2 buckets)
    std::vector<std::uint64_t> per_shard;     // counter only
  };
  std::vector<entry> entries;

  const entry* find(const std::string& name) const {
    for (const auto& e : entries) {
      if (e.name == name) return &e;
    }
    return nullptr;
  }

  /// Counter total / gauge value by name; 0 if absent.
  std::uint64_t value_of(const std::string& name) const {
    const entry* e = find(name);
    if (e == nullptr) return 0;
    if (e->kind == metric_kind::gauge) {
      return e->value < 0 ? 0 : static_cast<std::uint64_t>(e->value);
    }
    return e->total;
  }
};

class metrics_registry {
 public:
  /// `shards` bounds the number of contention-free writer slots per metric;
  /// size it to the worker thread count (shard indices wrap past it).
  explicit metrics_registry(std::size_t shards = 16);

  metrics_registry(const metrics_registry&) = delete;
  metrics_registry& operator=(const metrics_registry&) = delete;

  /// Finds or creates; the returned reference stays valid for the
  /// registry's lifetime. A name registers exactly one kind — requesting an
  /// existing name as a different kind throws std::logic_error.
  counter& get_counter(const std::string& name);
  gauge& get_gauge(const std::string& name);
  histogram& get_histogram(const std::string& name);

  std::size_t shards() const noexcept { return shards_; }

  metrics_snapshot scrape() const;

  /// Zeroes every metric (definitions stay registered).
  void reset();

 private:
  const std::size_t shards_;
  mutable std::mutex mu_;
  // deques give stable element addresses across registration.
  std::deque<counter> counters_;
  std::deque<gauge> gauges_;
  std::deque<histogram> histograms_;
  struct slot {
    metric_kind kind;
    std::size_t index;
  };
  std::map<std::string, slot> by_name_;
};

}  // namespace asyncgt::telemetry
