#include "telemetry/json.hpp"

#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace asyncgt::telemetry {

std::int64_t json_value::as_int() const {
  if (is_int()) return std::get<std::int64_t>(v_);
  if (is_double()) return static_cast<std::int64_t>(std::get<double>(v_));
  throw std::runtime_error("json_value: not a number");
}

double json_value::as_double() const {
  if (is_double()) return std::get<double>(v_);
  if (is_int()) return static_cast<double>(std::get<std::int64_t>(v_));
  throw std::runtime_error("json_value: not a number");
}

const json_value* json_value::find(std::string_view key) const {
  if (!is_object()) return nullptr;
  const object_t& obj = std::get<object_t>(v_);
  const json_value* hit = nullptr;
  for (const auto& [k, v] : obj) {
    if (k == key) hit = &v;
  }
  return hit;
}

json_value& json_value::set(std::string key, json_value v) {
  object_t& obj = std::get<object_t>(v_);
  for (auto& [k, existing] : obj) {
    if (k == key) {
      existing = std::move(v);
      return *this;
    }
  }
  obj.emplace_back(std::move(key), std::move(v));
  return *this;
}

json_value& json_value::push(json_value v) {
  std::get<array_t>(v_).push_back(std::move(v));
  return *this;
}

std::size_t json_value::size() const noexcept {
  if (is_array()) return std::get<array_t>(v_).size();
  if (is_object()) return std::get<object_t>(v_).size();
  return 0;
}

namespace {

void escape_to(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void number_to(std::string& out, double d) {
  if (!std::isfinite(d)) {  // JSON has no inf/nan; emit null like browsers do
    out += "null";
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", d);
  // Trim to the shortest representation that round-trips.
  for (int prec = 1; prec < 17; ++prec) {
    char probe[32];
    std::snprintf(probe, sizeof probe, "%.*g", prec, d);
    double back = 0;
    std::sscanf(probe, "%lf", &back);
    if (back == d) {
      out += probe;
      return;
    }
  }
  out += buf;
}

void newline_indent(std::string& out, int indent, int depth) {
  if (indent < 0) return;
  out += '\n';
  out.append(static_cast<std::size_t>(indent) * depth, ' ');
}

}  // namespace

std::string json_value::dump(int indent) const {
  std::string out;
  // Iterative-enough for our depths; recursion via lambda.
  auto emit = [&](auto&& self, const json_value& v, int depth) -> void {
    if (v.is_null()) {
      out += "null";
    } else if (v.is_bool()) {
      out += v.as_bool() ? "true" : "false";
    } else if (v.is_int()) {
      out += std::to_string(v.as_int());
    } else if (v.is_double()) {
      number_to(out, v.as_double());
    } else if (v.is_string()) {
      escape_to(out, v.as_string());
    } else if (v.is_array()) {
      const auto& arr = v.as_array();
      out += '[';
      for (std::size_t i = 0; i < arr.size(); ++i) {
        if (i) out += ',';
        newline_indent(out, indent, depth + 1);
        self(self, arr[i], depth + 1);
      }
      if (!arr.empty()) newline_indent(out, indent, depth);
      out += ']';
    } else {
      const auto& obj = v.as_object();
      out += '{';
      for (std::size_t i = 0; i < obj.size(); ++i) {
        if (i) out += ',';
        newline_indent(out, indent, depth + 1);
        escape_to(out, obj[i].first);
        out += indent < 0 ? ":" : ": ";
        self(self, obj[i].second, depth + 1);
      }
      if (!obj.empty()) newline_indent(out, indent, depth);
      out += '}';
    }
  };
  emit(emit, *this, 0);
  return out;
}

namespace {

class parser {
 public:
  explicit parser(std::string_view text) : text_(text) {}

  json_value parse_document() {
    json_value v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("json parse error at offset " +
                             std::to_string(pos_) + ": " + what);
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  json_value parse_value() {
    skip_ws();
    const char c = peek();
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return json_value(parse_string());
      case 't':
        if (consume_literal("true")) return json_value(true);
        fail("invalid literal");
      case 'f':
        if (consume_literal("false")) return json_value(false);
        fail("invalid literal");
      case 'n':
        if (consume_literal("null")) return json_value(nullptr);
        fail("invalid literal");
      default: return parse_number();
    }
  }

  json_value parse_object() {
    expect('{');
    json_value obj = json_value::object();
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return obj;
    }
    for (;;) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      obj.as_object().emplace_back(std::move(key), parse_value());
      skip_ws();
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == '}') {
        ++pos_;
        return obj;
      }
      fail("expected ',' or '}' in object");
    }
  }

  json_value parse_array() {
    expect('[');
    json_value arr = json_value::array();
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return arr;
    }
    for (;;) {
      arr.push(parse_value());
      skip_ws();
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == ']') {
        ++pos_;
        return arr;
      }
      fail("expected ',' or ']' in array");
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned cp = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            cp <<= 4;
            if (h >= '0' && h <= '9') cp |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') cp |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') cp |= static_cast<unsigned>(h - 'A' + 10);
            else fail("invalid hex digit in \\u escape");
          }
          // Encode the code point as UTF-8 (surrogate pairs are passed
          // through as two separate 3-byte sequences; trace consumers only
          // ever see ASCII names, so this is deliberately simple).
          if (cp < 0x80) {
            out += static_cast<char>(cp);
          } else if (cp < 0x800) {
            out += static_cast<char>(0xC0 | (cp >> 6));
            out += static_cast<char>(0x80 | (cp & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (cp >> 12));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (cp & 0x3F));
          }
          break;
        }
        default: fail("invalid escape character");
      }
    }
  }

  json_value parse_number() {
    const std::size_t start = pos_;
    bool is_double = false;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c >= '0' && c <= '9') {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        is_double = true;
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start || (pos_ == start + 1 && text_[start] == '-')) {
      fail("invalid number");
    }
    const std::string tok(text_.substr(start, pos_ - start));
    try {
      if (!is_double) {
        std::size_t used = 0;
        const std::int64_t v = std::stoll(tok, &used);
        if (used == tok.size()) return json_value(v);
      }
      std::size_t used = 0;
      const double d = std::stod(tok, &used);
      if (used != tok.size()) fail("invalid number");
      return json_value(d);
    } catch (const std::exception&) {
      fail("invalid number '" + tok + "'");
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

json_value json_value::parse(std::string_view text) {
  return parser(text).parse_document();
}

}  // namespace asyncgt::telemetry
