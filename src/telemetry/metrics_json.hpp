// JSON serialization for telemetry artifacts, plus the bench-report
// document: a small schema shared by every bench binary and agt_tool so
// emitted JSON stays machine-readable for BENCH_*.json trajectory tracking.
//
// Schema (version 3, checked by report::verify, `agt_tool verify-json`,
// and tools/check_bench_json.py; version-1/2 documents remain valid):
//   {
//     "schema_version": 3,
//     "name": "<bench or subcommand name>",     non-empty string
//     "config": { ... },                        object of scalars
//     "sections": { "<name>": { ... }, ... },   object of objects
//     "rows": [ { ... }, ... ],                 optional array of objects
//     "jobs": [ { "job_id": n, ... }, ... ]     optional per-job sections
//   }
// Sections hold the machine-independent metrics (queue counters, algorithm
// work proxies, SEM cache/device telemetry, sampler series); rows hold the
// per-configuration lines of a bench table; jobs hold one object per
// service-submitted job (job_stats + named deltas). Version 2 additionally
// derives p50/p95/p99 for every serialized log2 histogram — verifiers
// enforce p50 <= p95 <= p99 (<= max where a max is recorded) on any object
// carrying the triple. Version 3 adds the robustness fields: each jobs[]
// entry carries its terminal `outcome` ("completed" / "failed" /
// "cancelled" / "deadline_exceeded" / "stalled" / "shed" / "running") and
// `deadline_ms`, and a report may carry a "service" section with the
// engine's admission counters (submitted/admitted/rejected/shed/
// deadline_exceeded/... — tools/check_bench_json.py checks their
// conservation). See docs/observability.md and docs/robustness.md.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "telemetry/io_recorder.hpp"
#include "telemetry/json.hpp"
#include "telemetry/metrics_registry.hpp"
#include "telemetry/sampler.hpp"

namespace asyncgt::telemetry {

/// Registry snapshot -> {"<metric>": value|histogram-object, ...}.
json_value to_json(const metrics_snapshot& snap);

/// I/O recorder -> {"ops": n, "bytes": n, "mean_latency_us": x, ...}.
json_value to_json(const io_snapshot& io);

/// Sampler series -> {"<probe>": {"t": [...], "v": [...]}, ...}.
json_value to_json(const std::vector<sampler::series>& series);

/// Builder for the schema-2 report document above.
class report {
 public:
  explicit report(std::string name);

  /// The version new documents are written at; verify() also accepts 1, 2.
  static constexpr int schema_version = 3;

  /// Adds one scalar to the "config" object.
  report& config(const std::string& key, json_value value);

  /// Finds-or-creates a section object; returned reference is valid until
  /// the next section() call (it points into the document).
  json_value& section(const std::string& name);

  /// Appends a row object to "rows".
  report& add_row(json_value row);

  /// Appends a per-job object to the top-level "jobs" array. The object
  /// must carry an integer "job_id" (verify() enforces it).
  report& add_job(json_value job);

  const json_value& doc() const noexcept { return doc_; }
  json_value& doc() noexcept { return doc_; }

  std::string dump(int indent = 1) const { return doc_.dump(indent); }

  /// Writes the document to `path`. Throws std::runtime_error on failure.
  void write_file(const std::string& path) const;

  /// Schema check. On failure returns false and, when `error` is non-null,
  /// stores a human-readable reason.
  static bool verify(const json_value& doc, std::string* error = nullptr);

  /// Parses `text` and verifies; convenience for files read back from disk.
  static bool verify_text(const std::string& text,
                          std::string* error = nullptr);

 private:
  json_value doc_;
};

}  // namespace asyncgt::telemetry
