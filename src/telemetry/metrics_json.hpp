// JSON serialization for telemetry artifacts, plus the bench-report
// document: a small schema shared by every bench binary and agt_tool so
// emitted JSON stays machine-readable for BENCH_*.json trajectory tracking.
//
// Schema (version 1, checked by report::verify, `agt_tool verify-json`,
// and tools/check_bench_json.py):
//   {
//     "schema_version": 1,
//     "name": "<bench or subcommand name>",     non-empty string
//     "config": { ... },                        object of scalars
//     "sections": { "<name>": { ... }, ... },   object of objects
//     "rows": [ { ... }, ... ]                  optional array of objects
//   }
// Sections hold the machine-independent metrics (queue counters, algorithm
// work proxies, SEM cache/device telemetry, sampler series); rows hold the
// per-configuration lines of a bench table. See docs/observability.md.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "telemetry/io_recorder.hpp"
#include "telemetry/json.hpp"
#include "telemetry/metrics_registry.hpp"
#include "telemetry/sampler.hpp"

namespace asyncgt::telemetry {

/// Registry snapshot -> {"<metric>": value|histogram-object, ...}.
json_value to_json(const metrics_snapshot& snap);

/// I/O recorder -> {"ops": n, "bytes": n, "mean_latency_us": x, ...}.
json_value to_json(const io_snapshot& io);

/// Sampler series -> {"<probe>": {"t": [...], "v": [...]}, ...}.
json_value to_json(const std::vector<sampler::series>& series);

/// Builder for the schema-1 report document above.
class report {
 public:
  explicit report(std::string name);

  /// Adds one scalar to the "config" object.
  report& config(const std::string& key, json_value value);

  /// Finds-or-creates a section object; returned reference is valid until
  /// the next section() call (it points into the document).
  json_value& section(const std::string& name);

  /// Appends a row object to "rows".
  report& add_row(json_value row);

  const json_value& doc() const noexcept { return doc_; }
  json_value& doc() noexcept { return doc_; }

  std::string dump(int indent = 1) const { return doc_.dump(indent); }

  /// Writes the document to `path`. Throws std::runtime_error on failure.
  void write_file(const std::string& path) const;

  /// Schema check. On failure returns false and, when `error` is non-null,
  /// stores a human-readable reason.
  static bool verify(const json_value& doc, std::string* error = nullptr);

  /// Parses `text` and verifies; convenience for files read back from disk.
  static bool verify_text(const std::string& text,
                          std::string* error = nullptr);

 private:
  json_value doc_;
};

}  // namespace asyncgt::telemetry
