#include "telemetry/metrics_json.hpp"

#include <fstream>
#include <stdexcept>

namespace asyncgt::telemetry {

namespace {

json_value buckets_to_json(const std::vector<std::uint64_t>& buckets) {
  // Sparse encoding: only non-empty buckets, as {"2^i": count}.
  json_value out = json_value::object();
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    if (buckets[i] != 0) out.set("2^" + std::to_string(i), buckets[i]);
  }
  return out;
}

}  // namespace

json_value to_json(const metrics_snapshot& snap) {
  json_value out = json_value::object();
  for (const auto& e : snap.entries) {
    switch (e.kind) {
      case metric_kind::counter:
        out.set(e.name, e.total);
        break;
      case metric_kind::gauge:
        out.set(e.name, e.value);
        break;
      case metric_kind::histogram: {
        json_value h = json_value::object();
        h.set("count", e.total);
        h.set("sum", e.sum);
        h.set("buckets", buckets_to_json(e.buckets));
        out.set(e.name, std::move(h));
        break;
      }
    }
  }
  return out;
}

json_value to_json(const io_snapshot& io) {
  json_value out = json_value::object();
  out.set("ops", io.ops);
  out.set("bytes", io.bytes);
  out.set("total_latency_us", io.total_latency_us);
  out.set("mean_latency_us", io.mean_latency_us());
  out.set("max_latency_us", io.max_latency_us);
  out.set("retries", io.retries);
  out.set("gave_up", io.gave_up);
  out.set("batches", io.batches);
  out.set("coalesced_ranges", io.coalesced_ranges);
  out.set("inflight_peak", io.inflight_peak);
  out.set("latency_us_buckets", buckets_to_json(io.latency_buckets));
  return out;
}

json_value to_json(const std::vector<sampler::series>& series) {
  json_value out = json_value::object();
  for (const auto& ser : series) {
    json_value t = json_value::array();
    json_value v = json_value::array();
    for (const auto& pt : ser.points) {
      t.push(pt.t_seconds);
      v.push(pt.value);
    }
    json_value pair = json_value::object();
    pair.set("t", std::move(t));
    pair.set("v", std::move(v));
    out.set(ser.name, std::move(pair));
  }
  return out;
}

report::report(std::string name) : doc_(json_value::object()) {
  doc_.set("schema_version", 1);
  doc_.set("name", std::move(name));
  doc_.set("config", json_value::object());
  doc_.set("sections", json_value::object());
}

report& report::config(const std::string& key, json_value value) {
  // find() returns const; config is created in the constructor, so the
  // lookup cannot fail.
  for (auto& [k, v] : doc_.as_object()) {
    if (k == "config") v.set(key, std::move(value));
  }
  return *this;
}

json_value& report::section(const std::string& name) {
  for (auto& [k, v] : doc_.as_object()) {
    if (k == "sections") {
      for (auto& [sk, sv] : v.as_object()) {
        if (sk == name) return sv;
      }
      v.set(name, json_value::object());
      return v.as_object().back().second;
    }
  }
  throw std::logic_error("report: document lost its sections object");
}

report& report::add_row(json_value row) {
  json_value* rows = nullptr;
  for (auto& [k, v] : doc_.as_object()) {
    if (k == "rows") rows = &v;
  }
  if (rows == nullptr) {
    doc_.set("rows", json_value::array());
    rows = &doc_.as_object().back().second;
  }
  rows->push(std::move(row));
  return *this;
}

void report::write_file(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    throw std::runtime_error("report: cannot open '" + path +
                             "' for writing");
  }
  out << dump(1) << '\n';
  if (!out) {
    throw std::runtime_error("report: write to '" + path + "' failed");
  }
}

namespace {

bool fail(std::string* error, const std::string& why) {
  if (error != nullptr) *error = why;
  return false;
}

}  // namespace

bool report::verify(const json_value& doc, std::string* error) {
  if (!doc.is_object()) return fail(error, "document is not a JSON object");
  const json_value* ver = doc.find("schema_version");
  if (ver == nullptr || !ver->is_int() || ver->as_int() != 1) {
    return fail(error, "schema_version must be the integer 1");
  }
  const json_value* name = doc.find("name");
  if (name == nullptr || !name->is_string() || name->as_string().empty()) {
    return fail(error, "name must be a non-empty string");
  }
  const json_value* config = doc.find("config");
  if (config == nullptr || !config->is_object()) {
    return fail(error, "config must be an object");
  }
  const json_value* sections = doc.find("sections");
  if (sections == nullptr || !sections->is_object()) {
    return fail(error, "sections must be an object");
  }
  for (const auto& [k, v] : sections->as_object()) {
    if (!v.is_object()) {
      return fail(error, "section '" + k + "' is not an object");
    }
  }
  const json_value* rows = doc.find("rows");
  if (rows != nullptr) {
    if (!rows->is_array()) return fail(error, "rows must be an array");
    for (const auto& r : rows->as_array()) {
      if (!r.is_object()) return fail(error, "rows entries must be objects");
    }
  }
  return true;
}

bool report::verify_text(const std::string& text, std::string* error) {
  try {
    return verify(json_value::parse(text), error);
  } catch (const std::exception& e) {
    return fail(error, e.what());
  }
}

}  // namespace asyncgt::telemetry
