#include "telemetry/metrics_json.hpp"

#include <fstream>
#include <stdexcept>

#include "telemetry/percentiles.hpp"

namespace asyncgt::telemetry {

namespace {

json_value buckets_to_json(const std::vector<std::uint64_t>& buckets) {
  // Sparse encoding: only non-empty buckets, as {"2^i": count}.
  json_value out = json_value::object();
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    if (buckets[i] != 0) out.set("2^" + std::to_string(i), buckets[i]);
  }
  return out;
}

}  // namespace

json_value to_json(const metrics_snapshot& snap) {
  json_value out = json_value::object();
  for (const auto& e : snap.entries) {
    switch (e.kind) {
      case metric_kind::counter:
        out.set(e.name, e.total);
        break;
      case metric_kind::gauge:
        out.set(e.name, e.value);
        break;
      case metric_kind::histogram: {
        json_value h = json_value::object();
        h.set("count", e.total);
        h.set("sum", e.sum);
        const percentile_set p = percentiles_from_log2(e.buckets);
        h.set("p50", p.p50);
        h.set("p95", p.p95);
        h.set("p99", p.p99);
        h.set("buckets", buckets_to_json(e.buckets));
        out.set(e.name, std::move(h));
        break;
      }
    }
  }
  return out;
}

json_value to_json(const io_snapshot& io) {
  json_value out = json_value::object();
  out.set("ops", io.ops);
  out.set("bytes", io.bytes);
  out.set("total_latency_us", io.total_latency_us);
  out.set("mean_latency_us", io.mean_latency_us());
  out.set("max_latency_us", io.max_latency_us);
  // Interpolated latency percentiles, clamped to the exact recorded maximum
  // so p50 <= p95 <= p99 <= max holds in every emitted report (checked by
  // tools/check_bench_json.py).
  const percentile_set p = percentiles_from_log2(
      io.latency_buckets, static_cast<double>(io.max_latency_us));
  out.set("p50_us", p.p50);
  out.set("p95_us", p.p95);
  out.set("p99_us", p.p99);
  out.set("retries", io.retries);
  out.set("gave_up", io.gave_up);
  out.set("batches", io.batches);
  out.set("coalesced_ranges", io.coalesced_ranges);
  out.set("inflight_peak", io.inflight_peak);
  out.set("latency_us_buckets", buckets_to_json(io.latency_buckets));
  return out;
}

json_value to_json(const std::vector<sampler::series>& series) {
  json_value out = json_value::object();
  for (const auto& ser : series) {
    json_value t = json_value::array();
    json_value v = json_value::array();
    for (const auto& pt : ser.points) {
      t.push(pt.t_seconds);
      v.push(pt.value);
    }
    json_value pair = json_value::object();
    pair.set("t", std::move(t));
    pair.set("v", std::move(v));
    out.set(ser.name, std::move(pair));
  }
  return out;
}

report::report(std::string name) : doc_(json_value::object()) {
  doc_.set("schema_version", schema_version);
  doc_.set("name", std::move(name));
  doc_.set("config", json_value::object());
  doc_.set("sections", json_value::object());
}

report& report::config(const std::string& key, json_value value) {
  // find() returns const; config is created in the constructor, so the
  // lookup cannot fail.
  for (auto& [k, v] : doc_.as_object()) {
    if (k == "config") v.set(key, std::move(value));
  }
  return *this;
}

json_value& report::section(const std::string& name) {
  for (auto& [k, v] : doc_.as_object()) {
    if (k == "sections") {
      for (auto& [sk, sv] : v.as_object()) {
        if (sk == name) return sv;
      }
      v.set(name, json_value::object());
      return v.as_object().back().second;
    }
  }
  throw std::logic_error("report: document lost its sections object");
}

report& report::add_row(json_value row) {
  json_value* rows = nullptr;
  for (auto& [k, v] : doc_.as_object()) {
    if (k == "rows") rows = &v;
  }
  if (rows == nullptr) {
    doc_.set("rows", json_value::array());
    rows = &doc_.as_object().back().second;
  }
  rows->push(std::move(row));
  return *this;
}

report& report::add_job(json_value job) {
  json_value* jobs = nullptr;
  for (auto& [k, v] : doc_.as_object()) {
    if (k == "jobs") jobs = &v;
  }
  if (jobs == nullptr) {
    doc_.set("jobs", json_value::array());
    jobs = &doc_.as_object().back().second;
  }
  jobs->push(std::move(job));
  return *this;
}

void report::write_file(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    throw std::runtime_error("report: cannot open '" + path +
                             "' for writing");
  }
  out << dump(1) << '\n';
  if (!out) {
    throw std::runtime_error("report: write to '" + path + "' failed");
  }
}

namespace {

bool fail(std::string* error, const std::string& why) {
  if (error != nullptr) *error = why;
  return false;
}

// Reads a numeric member; returns false (leaving *out alone) when absent or
// non-numeric.
bool numeric_member(const json_value& obj, const std::string& key,
                    double* out) {
  const json_value* v = obj.find(key);
  if (v == nullptr || !v->is_number()) return false;
  *out = v->as_double();
  return true;
}

// Recursively enforces percentile monotonicity: any object carrying a full
// {p50,p95,p99} or {p50_us,p95_us,p99_us} triple must satisfy
// p50 <= p95 <= p99, and <= the sibling max (max / max_us / max_latency_us)
// when one is present. `where` names the offending object on failure.
bool check_percentiles(const json_value& v, const std::string& where,
                       std::string* error) {
  if (v.is_array()) {
    std::size_t i = 0;
    for (const auto& e : v.as_array()) {
      if (!check_percentiles(e, where + "[" + std::to_string(i) + "]",
                             error)) {
        return false;
      }
      ++i;
    }
    return true;
  }
  if (!v.is_object()) return true;
  for (const char* suffix : {"", "_us"}) {
    double p50 = 0.0, p95 = 0.0, p99 = 0.0;
    const std::string s(suffix);
    if (!numeric_member(v, "p50" + s, &p50) ||
        !numeric_member(v, "p95" + s, &p95) ||
        !numeric_member(v, "p99" + s, &p99)) {
      continue;
    }
    if (!(p50 <= p95 && p95 <= p99)) {
      return fail(error, where + ": percentiles not monotone (p50" + s + "=" +
                             std::to_string(p50) + ", p95" + s + "=" +
                             std::to_string(p95) + ", p99" + s + "=" +
                             std::to_string(p99) + ")");
    }
    double mx = 0.0;
    if (numeric_member(v, "max" + s, &mx) ||
        numeric_member(v, "max_latency_us", &mx)) {
      if (p99 > mx) {
        return fail(error, where + ": p99" + s + "=" + std::to_string(p99) +
                               " exceeds recorded max=" + std::to_string(mx));
      }
    }
  }
  for (const auto& [k, child] : v.as_object()) {
    if (!check_percentiles(child, where + "." + k, error)) return false;
  }
  return true;
}

}  // namespace

bool report::verify(const json_value& doc, std::string* error) {
  if (!doc.is_object()) return fail(error, "document is not a JSON object");
  const json_value* ver = doc.find("schema_version");
  if (ver == nullptr || !ver->is_int() ||
      (ver->as_int() != 1 && ver->as_int() != 2 &&
       ver->as_int() != schema_version)) {
    return fail(error, "schema_version must be the integer 1, 2 or 3");
  }
  const json_value* name = doc.find("name");
  if (name == nullptr || !name->is_string() || name->as_string().empty()) {
    return fail(error, "name must be a non-empty string");
  }
  const json_value* config = doc.find("config");
  if (config == nullptr || !config->is_object()) {
    return fail(error, "config must be an object");
  }
  const json_value* sections = doc.find("sections");
  if (sections == nullptr || !sections->is_object()) {
    return fail(error, "sections must be an object");
  }
  for (const auto& [k, v] : sections->as_object()) {
    if (!v.is_object()) {
      return fail(error, "section '" + k + "' is not an object");
    }
  }
  const json_value* rows = doc.find("rows");
  if (rows != nullptr) {
    if (!rows->is_array()) return fail(error, "rows must be an array");
    for (const auto& r : rows->as_array()) {
      if (!r.is_object()) return fail(error, "rows entries must be objects");
    }
  }
  const json_value* jobs = doc.find("jobs");
  if (jobs != nullptr) {
    if (!jobs->is_array()) return fail(error, "jobs must be an array");
    for (const auto& j : jobs->as_array()) {
      if (!j.is_object()) return fail(error, "jobs entries must be objects");
      const json_value* id = j.find("job_id");
      if (id == nullptr || !id->is_int()) {
        return fail(error, "jobs entries must carry an integer job_id");
      }
    }
  }
  return check_percentiles(doc, "$", error);
}

bool report::verify_text(const std::string& text, std::string* error) {
  try {
    return verify(json_value::parse(text), error);
  } catch (const std::exception& e) {
    return fail(error, e.what());
  }
}

}  // namespace asyncgt::telemetry
