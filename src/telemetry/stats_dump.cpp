#include "telemetry/stats_dump.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

namespace asyncgt::telemetry {

std::vector<stats_dumper::delta_entry> stats_dumper::take_deltas() {
  std::vector<delta_entry> out;
  if (reg_ == nullptr) return out;
  // Scrape under mu_: the sampler thread and a foreground caller may share
  // one dumper, and two takes whose scrape/update sections interleave would
  // let the staler snapshot overwrite prev_ last — re-reporting increments
  // the other take already consumed. scrape() is itself thread-safe, so
  // holding mu_ across it merely serializes takes.
  std::lock_guard lk(mu_);
  const metrics_snapshot snap = reg_->scrape();
  for (const auto& e : snap.entries) {
    delta_entry d;
    d.name = e.name;
    d.kind = e.kind;
    if (e.kind == metric_kind::gauge) {
      d.value = e.value;
      auto it = prev_gauge_.find(e.name);
      d.changed = it == prev_gauge_.end() || it->second != e.value;
      prev_gauge_[e.name] = e.value;
    } else {
      d.total = e.total;
      auto it = prev_.find(e.name);
      const std::uint64_t prev = it != prev_.end() ? it->second : 0;
      d.delta = clamp_delta(e.total, prev);
      d.changed = d.delta != 0;
      prev_[e.name] = e.total;
    }
    out.push_back(std::move(d));
  }
  return out;
}

std::string stats_dumper::render() {
  std::vector<delta_entry> deltas = take_deltas();
  // Only what moved this interval: counters/histograms with a nonzero
  // delta, gauges whose reading changed — so idle ticks print nothing.
  deltas.erase(std::remove_if(deltas.begin(), deltas.end(),
                              [](const delta_entry& d) { return !d.changed; }),
               deltas.end());
  if (deltas.empty()) return {};

  std::size_t width = 0;
  for (const auto& d : deltas) width = std::max(width, d.name.size());

  std::ostringstream os;
  for (const auto& d : deltas) {
    os << "  " << std::left << std::setw(static_cast<int>(width)) << d.name
       << std::right;
    if (d.kind == metric_kind::gauge) {
      os << "  = " << d.value;
    } else {
      os << "  +" << d.delta << "  (total " << d.total;
      if (d.kind == metric_kind::histogram) os << " samples";
      os << ")";
    }
    os << '\n';
  }
  return os.str();
}

void stats_dumper::dump(std::ostream& out, double t_seconds) {
  const std::string body = render();
  if (body.empty()) return;
  {
    std::lock_guard lk(mu_);
    ++dumps_;
  }
  std::ostringstream header;
  header << "-- stats @" << std::fixed << std::setprecision(2) << t_seconds
         << "s --\n";
  out << header.str() << body;
  out.flush();
}

}  // namespace asyncgt::telemetry
