// Per-job metric attribution over the shared metrics_registry.
//
// PR 4 made the engine a persistent multi-job service, but the registry
// model stayed global: when J concurrent jobs share one block_cache and one
// io_backend, every counter is pooled and per-job cost is unobservable. A
// metric_scope is the fix: one scope per submitted job, layering *deltas*
// over whatever shared registry the job also writes — the shared registry
// keeps its exact pre-existing totals, and the scope accumulates the same
// events keyed by job, so per-job sums are conserved against the global
// deltas (tests/service/job_stats_test.cpp asserts this with J parallel
// jobs under tsan).
//
// Two layers, matching the two write rates:
//
//   * Hot counters — a fixed enum of per-thread padded atomic slots
//     (visits, edge inspections, io ops/bytes/retries, ...). Instrumented
//     hot paths attribute through thread-local *ambient* attribution: the
//     traversal engine installs the running job's scope in TLS for the
//     duration of each worker body (metric_scope::attribution), and shared
//     components (io_recorder, the algorithm visitors) call the static
//     count_* helpers — one TLS read and a relaxed add when a scope is
//     installed, a predictable branch when not. This is what makes
//     attribution work across components *shared* by jobs: the recorder
//     doesn't know about jobs, the TLS does.
//
//   * Named deltas — a private metrics_registry holding the job's copy of
//     the named counters the run records at completion (queue.*, <algo>.*).
//     Written only at end-of-run / finalize time, never on the hot path.
//
// Lifecycle timestamps ride along (submit, first worker body, finish), so
// the scope is also the source of queue-wait/run/total latencies for the
// engine's lifecycle histograms and Chrome-trace job spans.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "telemetry/metrics_registry.hpp"
#include "util/cache_line.hpp"

namespace asyncgt::telemetry {

class metric_scope;

namespace detail {
// Ambient attribution state: the scope (and shard) the current thread's
// work is charged to. Installed by metric_scope::attribution; read by the
// static count_* helpers below.
extern thread_local metric_scope* tls_scope;
extern thread_local std::size_t tls_shard;
}  // namespace detail

class metric_scope {
 public:
  /// The fixed hot-counter set. Kept to what per-job introspection needs —
  /// anything colder goes through the named deltas() registry.
  enum class hot : std::size_t {
    visits = 0,
    pushes,
    flushes,
    wakeups,
    edge_inspections,
    io_ops,
    io_bytes,
    io_retries,
    count  // sentinel
  };
  static constexpr std::size_t num_hot = static_cast<std::size_t>(hot::count);

  /// `shards` bounds contention-free writer slots; size it to the job's
  /// worker thread count. The submit timestamp is taken here.
  metric_scope(std::uint64_t job_id, std::string label, std::size_t shards);

  metric_scope(const metric_scope&) = delete;
  metric_scope& operator=(const metric_scope&) = delete;

  std::uint64_t job_id() const noexcept { return job_id_; }
  const std::string& label() const noexcept { return label_; }

  // ---- Hot counters ----

  void add(hot c, std::size_t shard, std::uint64_t n = 1) noexcept {
    shards_[shard % shards_.size()]
        .value[static_cast<std::size_t>(c)]
        .fetch_add(n, std::memory_order_relaxed);
  }

  std::uint64_t total(hot c) const noexcept {
    std::uint64_t sum = 0;
    for (const auto& sh : shards_) {
      sum += sh.value[static_cast<std::size_t>(c)].load(
          std::memory_order_relaxed);
    }
    return sum;
  }

  std::array<std::uint64_t, num_hot> totals() const noexcept {
    std::array<std::uint64_t, num_hot> out{};
    for (std::size_t c = 0; c < num_hot; ++c) {
      out[c] = total(static_cast<hot>(c));
    }
    return out;
  }

  /// Monotone progress epoch: the sum of every hot counter. The service
  /// watchdog samples this to detect stalled jobs — any visit, push, edge
  /// inspection, or I/O the job performs advances the epoch, so a job whose
  /// epoch is frozen for stall_grace_ms while running is wedged (blocked in
  /// a read, deadlocked, or spinning without touching the graph).
  std::uint64_t progress_epoch() const noexcept {
    std::uint64_t sum = 0;
    for (std::size_t c = 0; c < num_hot; ++c) {
      sum += total(static_cast<hot>(c));
    }
    return sum;
  }

  // ---- Named deltas ----

  /// The job-private registry holding this job's copy of the named counters
  /// recorded at end-of-run (queue.*, <algo>.*). Same sharding as the hot
  /// counters.
  metrics_registry& deltas() noexcept { return deltas_; }
  const metrics_registry& deltas() const noexcept { return deltas_; }

  /// Snapshot-on-completion of the named deltas.
  metrics_snapshot delta_snapshot() const { return deltas_.scrape(); }

  // ---- Lifecycle timestamps ----

  /// Marks the first worker body executing on behalf of this job; first
  /// caller wins (the gang's workers all pass through here). The interval
  /// submit -> run start is the job's queue wait (FIFO admission delay).
  void mark_run_start() noexcept {
    std::int64_t expected = -1;
    (void)run_start_ns_.compare_exchange_strong(
        expected, ns_since_submit(), std::memory_order_relaxed);
  }

  /// Marks completion (result or error delivered). Idempotent.
  void mark_finished() noexcept {
    std::int64_t expected = -1;
    (void)end_ns_.compare_exchange_strong(expected, ns_since_submit(),
                                          std::memory_order_relaxed);
  }

  bool finished() const noexcept {
    return end_ns_.load(std::memory_order_relaxed) >= 0;
  }

  /// True once any worker body started on behalf of this job (the job is
  /// holding a gang). The watchdog only arms stall detection past here: a
  /// job waiting in FIFO admission is queued, not stalled.
  bool run_started() const noexcept {
    return run_start_ns_.load(std::memory_order_relaxed) >= 0;
  }

  std::chrono::steady_clock::time_point submit_time() const noexcept {
    return submit_tp_;
  }

  /// Wall-clock point the first worker body started; only meaningful when
  /// run_started().
  std::chrono::steady_clock::time_point run_start_time() const noexcept {
    const std::int64_t ns = run_start_ns_.load(std::memory_order_relaxed);
    return submit_tp_ + std::chrono::nanoseconds(ns >= 0 ? ns : 0);
  }

  // ---- Cooperative cancellation hint ----
  //
  // The scope doubles as the per-job cancellation seam for components that
  // can block indefinitely (the fault injector's `stall` mode): the
  // engine's cancel path raises the flag here alongside the queue-level
  // abort broadcast, and blocking primitives poll it through the same TLS
  // ambient attribution the counters use, throwing operation_cancelled
  // (util/cancellation.hpp) to unwind. The reason code is latched
  // first-wins so a watchdog deadline fire followed by a late user cancel
  // keeps reporting deadline_exceeded.

  /// Raises the abort hint with a nonzero reason code (the service layer
  /// passes static_cast<uint32>(abort_reason)). First caller's code wins.
  void request_abort(std::uint32_t reason_code) noexcept {
    std::uint32_t expected = 0;
    (void)abort_code_.compare_exchange_strong(expected, reason_code,
                                              std::memory_order_relaxed);
  }

  bool abort_requested() const noexcept {
    return abort_code_.load(std::memory_order_relaxed) != 0;
  }

  /// The first-latched reason code (0 = no abort requested).
  std::uint32_t abort_code() const noexcept {
    return abort_code_.load(std::memory_order_relaxed);
  }

  /// Cancellation-point probe: true when the calling thread's ambient job
  /// has an abort pending. One TLS read + one relaxed load — cheap enough
  /// for a polling loop's every iteration.
  static bool current_abort_requested() noexcept {
    return detail::tls_scope != nullptr &&
           detail::tls_scope->abort_requested();
  }

  /// Submit -> first worker body. Falls back to "so far" while the job is
  /// still queued, and to the total time if the job never ran (cancelled
  /// before admission).
  double queue_wait_seconds() const noexcept;
  /// First worker body -> completion (0 if the job never ran); "so far"
  /// while running.
  double run_seconds() const noexcept;
  /// Submit -> completion; "so far" until finished.
  double total_seconds() const noexcept;

  // ---- Ambient thread-local attribution ----

  /// The scope the calling thread's work is currently charged to (null when
  /// no attribution is installed).
  static metric_scope* current() noexcept { return detail::tls_scope; }
  static std::size_t current_shard() noexcept { return detail::tls_shard; }

  /// One adjacency scan of `n` edges on the current thread. Called by the
  /// algorithm visitors per relaxed vertex — one TLS read per scan, far off
  /// the per-edge path.
  static void count_edges(std::uint64_t n) noexcept {
    if (detail::tls_scope != nullptr) {
      detail::tls_scope->add(hot::edge_inspections, detail::tls_shard, n);
    }
  }

  /// One I/O operation of `bytes` on the current thread (io_recorder calls
  /// this alongside its own global accounting, so per-job io sums stay
  /// conserved against the recorder snapshot).
  static void count_io(std::uint64_t bytes) noexcept {
    if (detail::tls_scope != nullptr) {
      detail::tls_scope->add(hot::io_ops, detail::tls_shard);
      detail::tls_scope->add(hot::io_bytes, detail::tls_shard, bytes);
    }
  }

  static void count_io_retry() noexcept {
    if (detail::tls_scope != nullptr) {
      detail::tls_scope->add(hot::io_retries, detail::tls_shard);
    }
  }

  /// RAII attribution: installs `scope` (nullable — a null install is a
  /// no-op that still restores correctly) as the current thread's charge
  /// target, saving and restoring whatever was installed before, so scoped
  /// sections nest.
  class attribution {
   public:
    attribution(metric_scope* scope, std::size_t shard) noexcept
        : prev_scope_(detail::tls_scope), prev_shard_(detail::tls_shard) {
      if (scope != nullptr) {
        detail::tls_scope = scope;
        detail::tls_shard = shard;
      }
    }
    ~attribution() {
      detail::tls_scope = prev_scope_;
      detail::tls_shard = prev_shard_;
    }
    attribution(const attribution&) = delete;
    attribution& operator=(const attribution&) = delete;

   private:
    metric_scope* prev_scope_;
    std::size_t prev_shard_;
  };

 private:
  std::int64_t ns_since_submit() const noexcept {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now() - submit_tp_)
        .count();
  }

  const std::uint64_t job_id_;
  const std::string label_;
  const std::chrono::steady_clock::time_point submit_tp_;
  // Nanoseconds since submit; -1 = not yet.
  std::atomic<std::int64_t> run_start_ns_{-1};
  std::atomic<std::int64_t> end_ns_{-1};
  // Cooperative-abort hint: first-latched nonzero reason code (see
  // request_abort above). 0 = no abort requested.
  std::atomic<std::uint32_t> abort_code_{0};

  struct hot_slots {
    std::atomic<std::uint64_t> value[num_hot] = {};
    std::atomic<std::uint64_t>& operator[](std::size_t i) noexcept {
      return value[i];
    }
    const std::atomic<std::uint64_t>& operator[](std::size_t i) const noexcept {
      return value[i];
    }
  };
  std::vector<padded<hot_slots>> shards_;
  metrics_registry deltas_;
};

}  // namespace asyncgt::telemetry
