// Lock-free I/O accounting attached to sem::edge_file.
//
// Hundreds of oversubscribed threads pread() from one descriptor
// concurrently, so the recorder is all relaxed atomics: operation and byte
// totals plus a log2 latency histogram (microsecond buckets). When no
// recorder is attached, edge_file skips the timing entirely — the recorder
// costs nothing unless observability is requested.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "telemetry/metric_scope.hpp"

namespace asyncgt::telemetry {

struct io_snapshot {
  std::uint64_t ops = 0;
  std::uint64_t bytes = 0;
  std::uint64_t total_latency_us = 0;
  std::uint64_t max_latency_us = 0;
  std::uint64_t retries = 0;   // transient failures re-attempted
  std::uint64_t gave_up = 0;   // reads that failed permanently
  std::uint64_t batches = 0;           // merged ranges issued to the kernel
  std::uint64_t coalesced_ranges = 0;  // requests served without a syscall
  std::uint64_t inflight_peak = 0;     // max concurrent issued batches
  std::vector<std::uint64_t> latency_buckets;  // log2 µs buckets

  double mean_latency_us() const {
    return ops == 0 ? 0.0
                    : static_cast<double>(total_latency_us) /
                          static_cast<double>(ops);
  }
};

class io_recorder {
 public:
  static constexpr std::size_t num_buckets = 48;

  void record(std::uint64_t bytes, std::uint64_t latency_us) noexcept {
    // Per-job attribution rides the same call: when the calling thread runs
    // on behalf of a job (metric_scope::attribution installed by the
    // traversal engine), the job's scope gets the identical op/byte counts,
    // so per-job io sums stay conserved against this recorder's snapshot.
    metric_scope::count_io(bytes);
    ops_.fetch_add(1, std::memory_order_relaxed);
    bytes_.fetch_add(bytes, std::memory_order_relaxed);
    total_us_.fetch_add(latency_us, std::memory_order_relaxed);
    std::size_t b = 0;
    for (std::uint64_t v = latency_us; v >>= 1;) ++b;
    buckets_[b < num_buckets ? b : num_buckets - 1].fetch_add(
        1, std::memory_order_relaxed);
    std::uint64_t cur = max_us_.load(std::memory_order_relaxed);
    while (latency_us > cur && !max_us_.compare_exchange_weak(
                                   cur, latency_us,
                                   std::memory_order_relaxed)) {
    }
  }

  /// One transient failure was retried (edge_file retry policy).
  void record_retry() noexcept {
    metric_scope::count_io_retry();
    retries_.fetch_add(1, std::memory_order_relaxed);
  }

  /// One read failed permanently (fatal errno or retry budget exhausted).
  void record_gave_up() noexcept {
    gave_up_.fetch_add(1, std::memory_order_relaxed);
  }

  /// One merged byte range was issued to the kernel by an io_backend (a
  /// pread of a coalescing window, or one preadv batch).
  void record_batch() noexcept {
    batches_.fetch_add(1, std::memory_order_relaxed);
  }

  /// `n` logical requests were served without their own syscall: window
  /// hits, or slices folded into a preadv batch beyond the first.
  void record_coalesced(std::uint64_t n = 1) noexcept {
    coalesced_.fetch_add(n, std::memory_order_relaxed);
  }

  /// Brackets one issued batch; maintains the concurrent-batch peak that
  /// surfaces as io.inflight_peak. Call end exactly once per begin.
  void inflight_begin() noexcept {
    const std::uint64_t cur =
        inflight_.fetch_add(1, std::memory_order_relaxed) + 1;
    std::uint64_t peak = inflight_peak_.load(std::memory_order_relaxed);
    while (cur > peak && !inflight_peak_.compare_exchange_weak(
                             peak, cur, std::memory_order_relaxed)) {
    }
  }
  void inflight_end() noexcept {
    inflight_.fetch_sub(1, std::memory_order_relaxed);
  }

  io_snapshot snapshot() const {
    io_snapshot s;
    s.ops = ops_.load(std::memory_order_relaxed);
    s.bytes = bytes_.load(std::memory_order_relaxed);
    s.total_latency_us = total_us_.load(std::memory_order_relaxed);
    s.max_latency_us = max_us_.load(std::memory_order_relaxed);
    s.retries = retries_.load(std::memory_order_relaxed);
    s.gave_up = gave_up_.load(std::memory_order_relaxed);
    s.batches = batches_.load(std::memory_order_relaxed);
    s.coalesced_ranges = coalesced_.load(std::memory_order_relaxed);
    s.inflight_peak = inflight_peak_.load(std::memory_order_relaxed);
    s.latency_buckets.reserve(num_buckets);
    for (const auto& b : buckets_) {
      s.latency_buckets.push_back(b.load(std::memory_order_relaxed));
    }
    return s;
  }

  void reset() noexcept {
    ops_.store(0, std::memory_order_relaxed);
    bytes_.store(0, std::memory_order_relaxed);
    total_us_.store(0, std::memory_order_relaxed);
    max_us_.store(0, std::memory_order_relaxed);
    retries_.store(0, std::memory_order_relaxed);
    gave_up_.store(0, std::memory_order_relaxed);
    batches_.store(0, std::memory_order_relaxed);
    coalesced_.store(0, std::memory_order_relaxed);
    inflight_.store(0, std::memory_order_relaxed);
    inflight_peak_.store(0, std::memory_order_relaxed);
    for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> ops_{0};
  std::atomic<std::uint64_t> bytes_{0};
  std::atomic<std::uint64_t> total_us_{0};
  std::atomic<std::uint64_t> max_us_{0};
  std::atomic<std::uint64_t> retries_{0};
  std::atomic<std::uint64_t> gave_up_{0};
  std::atomic<std::uint64_t> batches_{0};
  std::atomic<std::uint64_t> coalesced_{0};
  std::atomic<std::uint64_t> inflight_{0};
  std::atomic<std::uint64_t> inflight_peak_{0};
  std::atomic<std::uint64_t> buckets_[num_buckets] = {};
};

}  // namespace asyncgt::telemetry
