// Begin/end span API with parent links, emitted through trace_writer.
//
// scoped_span/phase_timer cover RAII block timing, but the service layer's
// job lifecycle is not block-shaped: submit happens on the caller's thread,
// the gang runs on pool workers, and completion lands on whichever pool
// thread finishes last. A span_track models one named row ("job-7 (bfs)")
// in the Chrome trace and emits spans onto it either live (begin/end) or
// retroactively (emit with explicit timestamps — the engine reconstructs
// submit -> admit -> gang-run -> terminate from the job's metric_scope
// timestamps at completion; the Chrome format orders by ts, so emission
// order is irrelevant).
//
// Every span carries an "id" argument and, when parented, a "parent"
// argument referencing another span's id — process-unique, allocated from
// the writer — so tooling can rebuild the tree even across tracks.
//
// Threading: one span_track is single-writer, like the trace_stream it
// wraps (acquire the track on the thread that will emit; the engine emits a
// job's whole lifecycle from the one pool thread that completes it).
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "telemetry/trace_writer.hpp"

namespace asyncgt::telemetry {

class span_track {
 public:
  /// Chrome tid range reserved for per-job tracks: the engine places job N
  /// at job_track_base + (N mod job_track_span), far above the shared
  /// worker-lane rows (tid 1..T) and the fixed phase/sampler/events streams.
  static constexpr std::uint32_t job_track_base = 10000;
  static constexpr std::uint32_t job_track_span = 50000;

  /// Chrome tid for lane `lane` of job `job_id`'s gang. Concurrent jobs
  /// MUST NOT share worker streams (trace_stream is single-writer; two
  /// gangs pushing onto one lane-tid vector is a data race), so each job
  /// gets its own block of worker rows right after its lifecycle track.
  static constexpr std::uint32_t worker_track_base = 1u << 20;
  static constexpr std::uint32_t worker_track_stride = 4096;
  static std::uint32_t worker_tid(std::uint64_t job_id,
                                  std::size_t lane) noexcept {
    return worker_track_base +
           static_cast<std::uint32_t>(job_id % job_track_span) *
               worker_track_stride +
           static_cast<std::uint32_t>(lane % worker_track_stride);
  }

  /// Null `tw` makes every operation a no-op (ids come back 0), so call
  /// sites stay unconditional like the other telemetry sinks.
  span_track(trace_writer* tw, std::uint32_t tid, const std::string& name)
      : tw_(tw), stream_(tw != nullptr ? &tw->stream(tid, name) : nullptr) {}

  bool enabled() const noexcept { return stream_ != nullptr; }

  /// Opens a span now; returns its id for end() and for parenting children.
  std::uint64_t begin(std::string name, std::uint64_t parent = 0) {
    if (stream_ == nullptr) return 0;
    open_.push_back({tw_->next_span_id(), stream_->now_us(), parent,
                     std::move(name)});
    return open_.back().id;
  }

  /// Closes the span `id` (from begin) and emits it. Unknown/zero ids are
  /// ignored, so a no-op begin pairs with a no-op end.
  void end(std::uint64_t id) {
    if (stream_ == nullptr || id == 0) return;
    for (std::size_t i = open_.size(); i-- > 0;) {
      if (open_[i].id != id) continue;
      open_span s = std::move(open_[i]);
      open_.erase(open_.begin() + static_cast<std::ptrdiff_t>(i));
      emit_event(std::move(s.name), s.start_us, stream_->now_us(), s.id,
                 s.parent);
      return;
    }
  }

  /// Retroactive emission with explicit timestamps (microseconds on the
  /// writer's timebase); returns the span's id for parenting.
  std::uint64_t emit(std::string name, std::uint64_t start_us,
                     std::uint64_t end_us, std::uint64_t parent = 0) {
    if (stream_ == nullptr) return 0;
    const std::uint64_t id = tw_->next_span_id();
    emit_event(std::move(name), start_us, end_us, id, parent);
    return id;
  }

  /// Zero-duration marker on this track ("abort", "cancelled").
  void instant(std::string name, std::uint64_t ts_us) {
    if (stream_ != nullptr) stream_->instant(std::move(name), ts_us);
  }

  std::uint64_t now_us() const noexcept {
    return stream_ != nullptr ? stream_->now_us() : 0;
  }

 private:
  struct open_span {
    std::uint64_t id = 0;
    std::uint64_t start_us = 0;
    std::uint64_t parent = 0;
    std::string name;
  };

  void emit_event(std::string name, std::uint64_t start_us,
                  std::uint64_t end_us, std::uint64_t id,
                  std::uint64_t parent) {
    trace_args args;
    args.emplace_back("id", id);
    if (parent != 0) args.emplace_back("parent", parent);
    const std::uint64_t dur = end_us > start_us ? end_us - start_us : 0;
    stream_->complete(std::move(name), start_us, dur, std::move(args));
  }

  trace_writer* tw_;
  trace_stream* stream_;
  std::vector<open_span> open_;
};

}  // namespace asyncgt::telemetry
