// p50/p95/p99 derivation from log2 bucket counts.
//
// Both histogram flavours in this tree (telemetry::histogram,
// io_recorder's latency buckets, util/stats.hpp's log2_histogram) bucket by
// power of two: bucket i counts values in [2^i, 2^(i+1)), bucket 0 also
// absorbing 0. That loses exact order statistics but keeps recording to one
// relaxed add — this header recovers quantile *estimates* at scrape time by
// linear interpolation inside the containing bucket. Bucket boundaries
// chain (hi of bucket i == lo of bucket i+1), so the estimate is continuous
// and monotone in p: p50 <= p95 <= p99 by construction, which is exactly
// what tools/check_bench_json.py enforces on every emitted report.
//
// The bucket upper bound can exceed the largest recorded value by up to 2x;
// pass the exact recorded maximum as `clamp_max` where one is tracked
// (io_recorder does) so p99 <= max also holds.
#pragma once

#include <cmath>
#include <cstdint>
#include <vector>

namespace asyncgt::telemetry {

/// Interpolated percentile (`p` in [0, 100]) over log2 bucket counts.
/// Returns 0 for an empty histogram. `clamp_max` > 0 caps the estimate at
/// the exact recorded maximum.
inline double percentile_from_log2(const std::vector<std::uint64_t>& buckets,
                                   double p, double clamp_max = 0.0) {
  std::uint64_t total = 0;
  for (const auto c : buckets) total += c;
  if (total == 0) return 0.0;
  if (p < 0.0) p = 0.0;
  if (p > 100.0) p = 100.0;
  const double rank = p / 100.0 * static_cast<double>(total);
  double cum = 0.0;
  double result = 0.0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    if (buckets[i] == 0) continue;
    const double lo = i == 0 ? 0.0 : std::ldexp(1.0, static_cast<int>(i));
    const double hi = std::ldexp(1.0, static_cast<int>(i) + 1);
    const double count = static_cast<double>(buckets[i]);
    if (cum + count >= rank) {
      const double frac = rank > cum ? (rank - cum) / count : 0.0;
      result = lo + frac * (hi - lo);
      break;
    }
    cum += count;
    result = hi;  // floating-point slack: fall through to the last bucket end
  }
  if (clamp_max > 0.0 && result > clamp_max) result = clamp_max;
  return result;
}

struct percentile_set {
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
};

inline percentile_set percentiles_from_log2(
    const std::vector<std::uint64_t>& buckets, double clamp_max = 0.0) {
  percentile_set out;
  out.p50 = percentile_from_log2(buckets, 50.0, clamp_max);
  out.p95 = percentile_from_log2(buckets, 95.0, clamp_max);
  out.p99 = percentile_from_log2(buckets, 99.0, clamp_max);
  return out;
}

}  // namespace asyncgt::telemetry
