// Background time-series sampler for traversal frontier dynamics.
//
// A single thread wakes every `interval` and evaluates a set of registered
// probes (visitor-queue depths, the global pending counter, block-cache
// occupancy, SSD in-flight requests...), appending (timestamp, value) points
// per probe. The resulting series plot the frontier growing and draining —
// the dynamics behind the paper's IOPS-vs-BFS-depth Figure 1 — and can be
// replayed into a trace_writer as Chrome counter tracks.
//
// Probes run on the sampler thread and may take short internal locks (the
// visitor queue's per-worker mutexes, the cache mutex); keep them O(threads)
// cheap. Probe registration/removal is thread-safe and race-free against a
// running sampler: the probe list and all series live behind one mutex, and
// a removed probe's already-collected series survives until clear().
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace asyncgt::telemetry {

class trace_writer;

class sampler {
 public:
  using probe_fn = std::function<double()>;
  using probe_id = std::uint64_t;

  struct point {
    double t_seconds = 0.0;  // since sampler construction
    double value = 0.0;
  };

  struct series {
    std::string name;
    std::vector<point> points;
  };

  sampler();
  ~sampler();  // stops the thread if still running

  sampler(const sampler&) = delete;
  sampler& operator=(const sampler&) = delete;

  /// Registers a probe; safe while running. Returns an id for remove_probe.
  probe_id add_probe(std::string name, probe_fn fn);

  /// Unregisters; the probe function is destroyed before this returns, so
  /// the caller may free whatever it captures. Collected points remain.
  void remove_probe(probe_id id);

  /// Starts the background thread. No-op if already running.
  void start(std::chrono::microseconds interval);

  /// Stops and joins. No-op if not running. Safe to call concurrently with
  /// start from the owning thread (start/stop are not internally serialized
  /// against *each other* — drive them from one controlling thread).
  void stop();

  bool running() const noexcept {
    return running_.load(std::memory_order_acquire);
  }

  /// Total samples taken across all probes so far.
  std::uint64_t samples_taken() const;

  /// Copies of every series collected so far (including removed probes).
  std::vector<series> snapshot() const;

  /// Drops all collected points and retired series (live probes stay).
  void clear();

  /// Replays every series into `tw` as Chrome 'C' (counter) events on the
  /// given tid, so traces show the sampled time-series as tracks.
  void write_counters(trace_writer& tw, std::uint32_t tid = 999) const;

  /// Called on the sampler thread after each tick's probes have run, with
  /// elapsed seconds since sampler construction. Runs OUTSIDE the probe
  /// mutex, so the hook may call snapshot()/samples_taken() or scrape a
  /// registry (bench_report wires --stats-dump through this). Replace with
  /// nullptr to remove; safe while running.
  using tick_hook_fn = std::function<void(double t_seconds)>;
  void set_tick_hook(tick_hook_fn hook);

 private:
  void tick();

  struct probe {
    probe_id id = 0;
    bool live = false;  // false = retired, kept for its collected points
    std::string name;
    probe_fn fn;
    std::vector<point> points;
  };

  std::chrono::steady_clock::time_point origin_;
  mutable std::mutex mu_;
  std::vector<probe> probes_;
  probe_id next_id_ = 1;
  std::uint64_t samples_ = 0;
  tick_hook_fn tick_hook_;  // guarded by mu_; invoked after releasing it

  std::thread thread_;
  std::atomic<bool> running_{false};
  std::mutex stop_mu_;
  std::condition_variable stop_cv_;
  bool stop_requested_ = false;
};

}  // namespace asyncgt::telemetry
