#include "telemetry/trace_writer.hpp"

#include <fstream>
#include <stdexcept>

#include "telemetry/metrics_registry.hpp"

namespace asyncgt::telemetry {

trace_writer::trace_writer(std::string process_name)
    : process_name_(std::move(process_name)),
      origin_(std::chrono::steady_clock::now()) {}

trace_stream& trace_writer::stream(std::uint32_t tid, const std::string& name) {
  std::lock_guard lk(mu_);
  return stream_locked(tid, name);
}

trace_stream& trace_writer::stream_locked(std::uint32_t tid,
                                          const std::string& name) {
  for (auto& s : streams_) {
    if (s.tid_ == tid) return s;
  }
  streams_.push_back(trace_stream(
      this, tid, name.empty() ? "thread-" + std::to_string(tid) : name));
  return streams_.back();
}

void trace_writer::instant_global(std::string name) {
  const std::uint64_t ts = now_us();
  std::lock_guard lk(mu_);
  stream_locked(events_stream_tid, "events").instant(std::move(name), ts);
}

void trace_writer::set_flush_path(std::string path) {
  std::lock_guard lk(mu_);
  flush_path_ = std::move(path);
}

std::string trace_writer::flush_path() const {
  std::lock_guard lk(mu_);
  return flush_path_;
}

bool trace_writer::flush() const noexcept {
  std::string path = flush_path();
  if (path.empty()) return false;
  try {
    write_file(path);
    return true;
  } catch (...) {
    return false;
  }
}

std::size_t trace_writer::event_count() const {
  std::lock_guard lk(mu_);
  std::size_t n = 0;
  for (const auto& s : streams_) {
    std::lock_guard sk(*s.mu_);
    n += s.events_.size();
  }
  return n;
}

json_value trace_writer::to_json() const {
  std::lock_guard lk(mu_);
  json_value events = json_value::array();

  // Process/thread naming metadata so viewers label the tracks.
  json_value pmeta = json_value::object();
  pmeta.set("name", "process_name").set("ph", "M").set("pid", 1).set("tid", 0);
  pmeta.set("args", json_value::object().set("name", process_name_));
  events.push(std::move(pmeta));

  for (const auto& s : streams_) {
    json_value tmeta = json_value::object();
    tmeta.set("name", "thread_name").set("ph", "M").set("pid", 1);
    tmeta.set("tid", s.tid_);
    tmeta.set("args", json_value::object().set("name", s.name_));
    events.push(std::move(tmeta));
  }

  for (const auto& s : streams_) {
    // Live streams may be appending concurrently (flush-on-abort runs while
    // other jobs' gangs are still tracing): snapshot each one under its own
    // mutex so the walk never races a vector reallocation.
    std::lock_guard sk(*s.mu_);
    for (const auto& e : s.events_) {
      json_value ev = json_value::object();
      ev.set("name", e.name);
      ev.set("ph", std::string(1, e.phase));
      ev.set("pid", 1).set("tid", s.tid_);
      ev.set("ts", e.ts_us);
      if (e.phase == 'X') ev.set("dur", e.dur_us);
      if (e.phase == 'i') ev.set("s", "t");  // instant scope: thread
      if (e.has_value) {
        ev.set("args", json_value::object().set("value", e.value));
      } else if (!e.args.empty()) {
        json_value args = json_value::object();
        for (const auto& [k, v] : e.args) args.set(k, v);
        ev.set("args", std::move(args));
      }
      events.push(std::move(ev));
    }
  }

  json_value doc = json_value::object();
  doc.set("traceEvents", std::move(events));
  doc.set("displayTimeUnit", "ms");
  return doc;
}

void trace_writer::write_file(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    throw std::runtime_error("trace_writer: cannot open '" + path +
                             "' for writing");
  }
  out << to_json().dump(1);
  out << '\n';
  if (!out) {
    throw std::runtime_error("trace_writer: write to '" + path + "' failed");
  }
}

phase_timer::phase_timer(trace_writer* writer, std::string name,
                         metrics_registry* registry)
    : writer_(writer), registry_(registry), name_(std::move(name)) {
  start_tp_ = std::chrono::steady_clock::now();
  if (writer_ != nullptr) start_us_ = writer_->us_since_origin(start_tp_);
}

phase_timer::~phase_timer() {
  const auto end_tp = std::chrono::steady_clock::now();
  if (writer_ != nullptr) {
    const std::uint64_t end_us = writer_->us_since_origin(end_tp);
    writer_->stream(phase_stream_tid, "phases")
        .complete(name_, start_us_, end_us - start_us_);
  }
  if (registry_ != nullptr) {
    const auto us = std::chrono::duration_cast<std::chrono::microseconds>(
                        end_tp - start_tp_)
                        .count();
    registry_->get_counter("phase." + name_ + ".us")
        .add(0, static_cast<std::uint64_t>(us));
  }
}

}  // namespace asyncgt::telemetry
