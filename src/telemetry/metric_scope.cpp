#include "telemetry/metric_scope.hpp"

namespace asyncgt::telemetry {

namespace detail {
thread_local metric_scope* tls_scope = nullptr;
thread_local std::size_t tls_shard = 0;
}  // namespace detail

metric_scope::metric_scope(std::uint64_t job_id, std::string label,
                           std::size_t shards)
    : job_id_(job_id),
      label_(std::move(label)),
      submit_tp_(std::chrono::steady_clock::now()),
      shards_(shards ? shards : 1),
      deltas_(shards ? shards : 1) {}

double metric_scope::queue_wait_seconds() const noexcept {
  const std::int64_t run = run_start_ns_.load(std::memory_order_relaxed);
  if (run >= 0) return static_cast<double>(run) * 1e-9;
  // Never ran: waited the whole life of the job (so far, or to the end).
  const std::int64_t end = end_ns_.load(std::memory_order_relaxed);
  if (end >= 0) return static_cast<double>(end) * 1e-9;
  return static_cast<double>(ns_since_submit()) * 1e-9;
}

double metric_scope::run_seconds() const noexcept {
  const std::int64_t run = run_start_ns_.load(std::memory_order_relaxed);
  if (run < 0) return 0.0;
  const std::int64_t end = end_ns_.load(std::memory_order_relaxed);
  const std::int64_t until = end >= 0 ? end : ns_since_submit();
  return until > run ? static_cast<double>(until - run) * 1e-9 : 0.0;
}

double metric_scope::total_seconds() const noexcept {
  const std::int64_t end = end_ns_.load(std::memory_order_relaxed);
  return static_cast<double>(end >= 0 ? end : ns_since_submit()) * 1e-9;
}

}  // namespace asyncgt::telemetry
