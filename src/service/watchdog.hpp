// Deadline and stall watchdog for the traversal service.
//
// One lazily-started monitor thread per engine, sampling every registered
// job at a fixed interval (config.sample_interval_ms, default 10ms) and
// force-cancelling through the job's own abort broadcast when either
// trigger fires:
//
//   * deadline — the job's wall-clock age (steady_clock since submit)
//     exceeds deadline_ms. Checked whether or not the job has started
//     running: a job that spent its whole budget queued behind other gangs
//     is just as over-deadline as one that spent it traversing.
//
//   * stall — the job holds a gang (scope.run_started()) but its progress
//     epoch (metric_scope::progress_epoch — the sum of every hot counter,
//     so any visit, push, edge inspection, or I/O advances it) has been
//     frozen for stall_grace_ms. This catches jobs wedged where the abort
//     broadcast alone can't reach promptly: a read blocked in the kernel
//     (or in the fault injector's `stall` mode), which only unwinds when
//     its cancellation point polls the scope's abort hint.
//
// The fire path is the same one job::cancel() uses — the engine hands the
// watchdog a cancel callback that raises the scope abort hint and the
// queue-level abort broadcast with the matching abort_reason — so the
// watchdog never races the completion latch: classification happens from
// the *delivered* traversal_aborted, and a job that completes in the same
// instant its deadline fires reports `completed` (the cancel lands on a
// finished queue and is a no-op for the next run, cleared at consume time).
//
// Each entry fires at most once; finished jobs are swept from the watch
// list on the next sample. The thread starts on first watch() and is
// joined by the destructor (the engine destroys the watchdog after
// wait_idle, so no entry outlives its scope).
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "queue/traversal_abort.hpp"
#include "service/job_stats.hpp"

namespace asyncgt::service {

class watchdog {
 public:
  struct config {
    /// Sampling period. The detection latency bound is one period: a job is
    /// cancelled within sample_interval_ms of crossing its deadline or
    /// completing its stall window.
    std::uint32_t sample_interval_ms = 10;
  };

  watchdog();
  explicit watchdog(config cfg);
  ~watchdog();

  watchdog(const watchdog&) = delete;
  watchdog& operator=(const watchdog&) = delete;

  /// Registers a job for monitoring. `cancel` is invoked (outside the
  /// watchdog lock, at most once per job) with deadline_exceeded or stalled
  /// when a trigger fires; it must be safe to call concurrently with the
  /// job completing — the engine's cancel path is. deadline_ms and
  /// stall_grace_ms of 0 disable the respective trigger; callers should
  /// skip watch() entirely when both are 0.
  void watch(std::shared_ptr<job_scope_state> state,
             std::function<void(abort_reason)> cancel, std::uint32_t deadline_ms,
             std::uint32_t stall_grace_ms);

  /// Lifetime trigger counters (monotone).
  std::uint64_t deadline_fires() const noexcept {
    return deadline_fires_.load(std::memory_order_relaxed);
  }
  std::uint64_t stall_fires() const noexcept {
    return stall_fires_.load(std::memory_order_relaxed);
  }

  /// Jobs currently on the watch list (for tests/introspection).
  std::size_t watched() const;

 private:
  struct entry {
    std::shared_ptr<job_scope_state> state;
    std::function<void(abort_reason)> cancel;
    std::chrono::steady_clock::time_point deadline_at;  // max() = no deadline
    std::chrono::milliseconds stall_grace{0};           // 0 = no stall check
    std::uint64_t last_epoch = 0;
    std::chrono::steady_clock::time_point last_progress_at;
    bool run_seen = false;  // stall window arms at first run_started sample
    bool fired = false;
  };

  void monitor_main();
  /// Returns the reason to fire for `e` at time `now`, or none.
  abort_reason check(entry& e, std::chrono::steady_clock::time_point now);

  const config cfg_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::vector<entry> entries_;
  std::thread thread_;
  bool started_ = false;
  bool stop_ = false;
  std::atomic<std::uint64_t> deadline_fires_{0};
  std::atomic<std::uint64_t> stall_fires_{0};
};

}  // namespace asyncgt::service
