// Per-job statistics surface of the traversal service.
//
// Every job the engine admits carries a job_scope_state: the job's
// metric_scope (telemetry/metric_scope.hpp — hot counters, named deltas,
// lifecycle timestamps) plus the terminal flags and the telemetry sinks the
// job resolved at submit time. job<Result>::stats() snapshots it into a
// plain job_stats value — readable while the job runs (counters are "so
// far") and stable after completion. The engine also keeps a ring of
// completed snapshots (engine::recent_jobs) so short-lived jobs remain
// introspectable after their handles are gone.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <utility>

#include "telemetry/metric_scope.hpp"

namespace asyncgt {

namespace telemetry {
class trace_writer;
}

namespace service {

/// Plain-value snapshot of one job's attribution and lifecycle. The counter
/// fields mirror metric_scope's hot set; the seconds are derived from its
/// submit/run-start/finish timestamps.
struct job_stats {
  std::uint64_t job_id = 0;
  std::string label;

  // Exactly one of these is true for a terminal job, all false while it
  // runs — the completion path latches the outcome once from the delivered
  // result/error, so a late cancel() on an already-successful job or a real
  // worker failure racing a cancel request cannot misattribute the state.
  // `cancelled` covers every cooperative termination (user cancel, watchdog
  // deadline/stall kill, load shed); `outcome` names the specific one.
  bool completed = false;  // finished without error
  bool failed = false;     // finished with a non-cancellation error
  bool cancelled = false;  // finished via cooperative cancellation

  /// The precise terminal state: "running" / "completed" / "failed" /
  /// "cancelled" / "deadline_exceeded" / "stalled" / "shed" (bench schema
  /// v3's per-job `outcome` field).
  std::string outcome = "running";

  /// The deadline this job ran under (0 = none), for report correlation.
  std::uint32_t deadline_ms = 0;
  /// Admission priority class the job was submitted with.
  int priority = 0;
  /// Overlay epoch an incremental repair job ran against (0 for full
  /// traversals over static snapshots — epoch 0 is the pristine base).
  std::uint64_t delta_epoch = 0;

  std::uint64_t visits = 0;
  std::uint64_t pushes = 0;
  std::uint64_t flushes = 0;
  std::uint64_t wakeups = 0;
  std::uint64_t edge_inspections = 0;
  std::uint64_t io_ops = 0;
  std::uint64_t io_bytes = 0;
  std::uint64_t io_retries = 0;

  double queue_wait_seconds = 0.0;  // submit -> first worker body
  double run_seconds = 0.0;         // first worker body -> finish
  double total_seconds = 0.0;       // submit -> finish
};

/// How a job ended. Latched exactly once by the engine's completion path
/// (from the delivered result or error — a cooperative termination is the
/// traversal_aborted whose reason() is non-none, mapped 1:1 onto the
/// specific outcomes below), never derived from the racy "was cancel()
/// ever requested" flag: a genuine worker failure that raced a cancel
/// request is a failure, and a job that completed just before a late
/// cancel() stays completed — even when that late cancel is a watchdog
/// deadline fire.
enum class job_outcome : int {
  running = 0,
  completed,
  failed,
  cancelled,          // explicit job::cancel()
  deadline_exceeded,  // watchdog: deadline_ms elapsed
  stalled,            // watchdog: no progress for stall_grace_ms
  shed,               // admission control evicted it under overload
};

inline const char* job_outcome_name(job_outcome o) noexcept {
  switch (o) {
    case job_outcome::running: return "running";
    case job_outcome::completed: return "completed";
    case job_outcome::failed: return "failed";
    case job_outcome::cancelled: return "cancelled";
    case job_outcome::deadline_exceeded: return "deadline_exceeded";
    case job_outcome::stalled: return "stalled";
    case job_outcome::shed: return "shed";
  }
  return "running";
}

/// The live per-job state shared between the engine, the job handle's
/// control block, and the queue config's scope pointer. The engine keeps it
/// alive (shared_ptr) for as long as anything can still read it.
struct job_scope_state {
  telemetry::metric_scope scope;
  std::atomic<int> outcome{static_cast<int>(job_outcome::running)};
  // The sinks this job resolved at submit time (borrowed, nullable); the
  // completion path uses them for lifecycle accounting and span emission.
  telemetry::metrics_registry* metrics = nullptr;
  telemetry::trace_writer* trace = nullptr;

  // Robustness parameters fixed at submit time (plain fields: written once
  // before the job is visible to any other thread). The watchdog reads the
  // deadline/stall windows; admission reads priority and the memory
  // estimate.
  std::uint32_t deadline_ms = 0;
  std::uint32_t stall_grace_ms = 0;
  int priority = 0;
  std::uint64_t memory_estimate_bytes = 0;
  // Overlay epoch for incremental repair jobs; set by the submit_incremental_*
  // entry points between make_typed_job and job launch (same
  // written-once-before-visible discipline as the fields above).
  std::uint64_t delta_epoch = 0;

  job_scope_state(std::uint64_t job_id, std::string label, std::size_t shards)
      : scope(job_id, std::move(label), shards) {}

  /// One-shot terminal-state latch; paired with the acquire in snapshot()
  /// so a reader that sees the outcome also sees the finish timestamp and
  /// counter totals written before it.
  void latch_outcome(job_outcome out) noexcept {
    outcome.store(static_cast<int>(out), std::memory_order_release);
  }

  job_stats snapshot() const {
    job_stats s;
    s.job_id = scope.job_id();
    s.label = scope.label();
    const auto out = static_cast<job_outcome>(
        outcome.load(std::memory_order_acquire));
    s.completed = out == job_outcome::completed;
    s.failed = out == job_outcome::failed;
    s.cancelled = out == job_outcome::cancelled ||
                  out == job_outcome::deadline_exceeded ||
                  out == job_outcome::stalled || out == job_outcome::shed;
    s.outcome = job_outcome_name(out);
    s.deadline_ms = deadline_ms;
    s.priority = priority;
    s.delta_epoch = delta_epoch;
    using hot = telemetry::metric_scope::hot;
    s.visits = scope.total(hot::visits);
    s.pushes = scope.total(hot::pushes);
    s.flushes = scope.total(hot::flushes);
    s.wakeups = scope.total(hot::wakeups);
    s.edge_inspections = scope.total(hot::edge_inspections);
    s.io_ops = scope.total(hot::io_ops);
    s.io_bytes = scope.total(hot::io_bytes);
    s.io_retries = scope.total(hot::io_retries);
    s.queue_wait_seconds = scope.queue_wait_seconds();
    s.run_seconds = scope.run_seconds();
    s.total_seconds = scope.total_seconds();
    return s;
  }
};

}  // namespace service
}  // namespace asyncgt
