#include "service/watchdog.hpp"

#include <utility>

namespace asyncgt::service {

watchdog::watchdog() : watchdog(config{}) {}

watchdog::watchdog(config cfg) : cfg_(cfg) {}

watchdog::~watchdog() {
  {
    std::lock_guard lk(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

void watchdog::watch(std::shared_ptr<job_scope_state> state,
                     std::function<void(abort_reason)> cancel,
                     std::uint32_t deadline_ms, std::uint32_t stall_grace_ms) {
  entry e;
  e.deadline_at = deadline_ms > 0
                      ? state->scope.submit_time() +
                            std::chrono::milliseconds(deadline_ms)
                      : std::chrono::steady_clock::time_point::max();
  e.stall_grace = std::chrono::milliseconds(stall_grace_ms);
  e.state = std::move(state);
  e.cancel = std::move(cancel);
  {
    std::lock_guard lk(mu_);
    entries_.push_back(std::move(e));
    if (!started_) {
      started_ = true;
      thread_ = std::thread([this] { monitor_main(); });
    }
  }
  cv_.notify_all();
}

std::size_t watchdog::watched() const {
  std::lock_guard lk(mu_);
  return entries_.size();
}

abort_reason watchdog::check(entry& e,
                             std::chrono::steady_clock::time_point now) {
  if (now >= e.deadline_at) return abort_reason::deadline_exceeded;
  if (e.stall_grace.count() == 0) return abort_reason::none;
  // Stall detection arms only once the job holds a gang: a job queued
  // behind other gangs is waiting, not wedged (its deadline still covers
  // unbounded queueing). The window starts at the first sample that sees
  // the run started, so a grace period shorter than the sample interval
  // still gets one full window.
  if (!e.state->scope.run_started()) return abort_reason::none;
  const std::uint64_t epoch = e.state->scope.progress_epoch();
  if (!e.run_seen || epoch != e.last_epoch) {
    e.run_seen = true;
    e.last_epoch = epoch;
    e.last_progress_at = now;
    return abort_reason::none;
  }
  if (now - e.last_progress_at >= e.stall_grace) return abort_reason::stalled;
  return abort_reason::none;
}

void watchdog::monitor_main() {
  std::unique_lock lk(mu_);
  while (!stop_) {
    // Sweep finished jobs, sample live ones, and collect due fires. The
    // cancel callbacks run outside the lock: they take engine/queue locks
    // of their own, and a fire racing job completion must not deadlock
    // against the completion path reading watchdog state.
    std::vector<std::pair<std::function<void(abort_reason)>, abort_reason>>
        fires;
    const auto now = std::chrono::steady_clock::now();
    std::size_t w = 0;
    for (std::size_t r = 0; r < entries_.size(); ++r) {
      entry& e = entries_[r];
      if (e.state->scope.finished() || e.fired) continue;  // swept
      const abort_reason reason = check(e, now);
      if (reason != abort_reason::none) {
        e.fired = true;
        (reason == abort_reason::deadline_exceeded ? deadline_fires_
                                                   : stall_fires_)
            .fetch_add(1, std::memory_order_relaxed);
        fires.emplace_back(e.cancel, reason);
        continue;  // fired entries are swept too
      }
      if (w != r) entries_[w] = std::move(entries_[r]);
      ++w;
    }
    entries_.resize(w);
    if (!fires.empty()) {
      lk.unlock();
      for (auto& [fn, reason] : fires) fn(reason);
      lk.lock();
      continue;  // re-sample immediately: stop_ may have flipped meanwhile
    }
    if (entries_.empty()) {
      // Nothing to monitor: park until the next watch() or shutdown.
      cv_.wait(lk, [this] { return stop_ || !entries_.empty(); });
    } else {
      cv_.wait_for(lk, std::chrono::milliseconds(cfg_.sample_interval_ms),
                   [this] { return stop_; });
    }
  }
}

}  // namespace asyncgt::service
