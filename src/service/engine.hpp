// asyncgt::engine — the session-based public API of the traversal service.
//
// The seed library answered one query per call: every async_* free function
// built a fresh visitor_queue, spawned its full thread complement, joined
// it, and threw everything away. This header turns that into a persistent
// service: an engine owns a long-lived worker_pool (threads parked between
// jobs, never re-spawned — see service/worker_pool.hpp for the gang
// scheduler that doubles as the job admission policy), and queries become
// *jobs*:
//
//   asyncgt::engine eng({.pool_threads = 16});
//   auto j1 = eng.submit_bfs(g, 0);
//   auto j2 = eng.submit_sssp(g, 42);   // concurrent with j1 over the same g
//   auto bfs = j1.get();                // bfs_result, or throws
//
// Concurrency model. Each job gets its own queue lanes, termination
// counter, and algorithm state (per-job isolation — a job failing or being
// cancelled aborts only itself), while the *graph* and, for semi-external
// runs, the block_cache and ssd_model behind it are shared: concurrent SEM
// queries keep one device at its IOPS plateau and enjoy each other's cache
// residency (bench/ext_concurrent_queries measures exactly that). Jobs
// whose combined width exceeds the pool serialize FIFO; otherwise they
// genuinely overlap.
//
// Job handles carry the whole per-job surface: a future (get/wait),
// cooperative cancellation (cancel() reuses the PR-3 abort broadcast, so a
// cancelled job unwinds promptly and surfaces traversal_aborted), a live
// pending() frontier probe, and per-job stats in the result. Telemetry
// sinks resolve per job: options attached to the submit win, engine
// defaults fill the gaps, and the engine stamps the service.jobs counter
// and service.pool.spawned_threads gauge into whichever registry the job
// carries — a warm engine shows the gauge frozen at the pool width.
//
// The async_* free functions remain as one-shot wrappers over
// engine::process_default() — submit + get — so all pre-service call sites
// keep their exact signatures and exception contracts while transparently
// sharing the process-wide pool.
//
// Layering: this header sits between the queue layer and the algorithm
// headers. engine::submit_bfs/sssp/cc/... are declared here but *defined*
// in the matching core/*.hpp (which include this header first), so the
// service knows nothing about any particular visitor, and new algorithms
// register themselves by defining another submit_* out of class — or by
// calling the generic submit_traversal/submit_seeded directly.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

#include "queue/queue_stats.hpp"
#include "queue/visitor_queue.hpp"
#include "service/traversal_options.hpp"
#include "service/worker_pool.hpp"
#include "telemetry/metrics_registry.hpp"

namespace asyncgt {

// Result types owned by the algorithm headers; only named here so the
// submit_* declarations below can spell their return types.
template <typename VertexId> struct bfs_result;
template <typename VertexId> struct sssp_result;
template <typename VertexId> struct cc_result;
template <typename VertexId> struct pagerank_result;
template <typename VertexId> struct kcore_result;
struct pagerank_options;

namespace service {

/// Type-erased control block shared between a job handle and the engine:
/// keeps cancellation and the pending-probe callable alive independently of
/// the typed job state.
struct job_control {
  std::function<void()> cancel;
  std::function<std::int64_t()> pending;
  std::atomic<bool> finished{false};
};

}  // namespace service

/// Handle to one submitted traversal. Movable, future-like. get() returns
/// the algorithm result (with per-job queue stats inside) or rethrows the
/// job's failure — traversal_aborted for worker faults and cancellations,
/// exactly the free-function contract.
template <typename Result>
class job {
 public:
  job() = default;

  /// Blocks until the job finishes; returns the result or rethrows the
  /// job's error. Consumes the handle's future (one get() per job).
  Result get() { return future_.get(); }

  void wait() const { future_.wait(); }
  bool valid() const noexcept { return future_.valid(); }

  /// True once the job finished running — get() will no longer block on
  /// traversal work. Non-blocking; implied by wait()/get() returning.
  bool done() const noexcept {
    return control_ != nullptr &&
           control_->finished.load(std::memory_order_acquire);
  }

  /// Cooperative cancellation: raises the job's abort flag and wakes every
  /// parked worker (the PR-3 failure-containment broadcast). The job's
  /// workers unwind at their next abort check and get() throws
  /// traversal_aborted. Idempotent; a no-op after completion.
  void cancel() {
    if (control_ != nullptr) control_->cancel();
  }

  /// Live in-flight visitor count of this job (conservative sample while
  /// running, 0 at quiescence) — the per-job frontier probe.
  std::int64_t pending() const {
    return control_ != nullptr ? control_->pending() : 0;
  }

 private:
  friend class engine;
  job(std::future<Result> f, std::shared_ptr<service::job_control> c)
      : future_(std::move(f)), control_(std::move(c)) {}

  std::future<Result> future_;
  std::shared_ptr<service::job_control> control_;
};

class engine {
 public:
  struct config {
    /// Pre-warmed pool width. Jobs wider than the current pool grow it (and
    /// bump the spawn counter); pre-size to the widest expected job for the
    /// zero-spawns-after-warm-up guarantee.
    std::size_t pool_threads = 0;
    /// Per-job defaults: applied whole when a submit passes no options, and
    /// its telemetry sinks fill any the submit's options leave null.
    traversal_options defaults{};
  };

  engine() : engine(config{}) {}
  explicit engine(config c)
      : defaults_(std::move(c.defaults)), pool_(c.pool_threads) {}

  engine(const engine&) = delete;
  engine& operator=(const engine&) = delete;

  /// Waits for every outstanding job, then parks and joins the pool.
  ~engine() { wait_idle(); }

  // ---- The session API (defined out of class in core/*.hpp) ----

  template <typename Graph>
  job<bfs_result<typename Graph::vertex_id>> submit_bfs(
      const Graph& g, typename Graph::vertex_id start,
      std::optional<traversal_options> opts = std::nullopt);

  template <typename Graph>
  job<sssp_result<typename Graph::vertex_id>> submit_sssp(
      const Graph& g, typename Graph::vertex_id start,
      std::optional<traversal_options> opts = std::nullopt);

  template <typename Graph>
  job<cc_result<typename Graph::vertex_id>> submit_cc(
      const Graph& g, std::optional<traversal_options> opts = std::nullopt);

  template <typename Graph>
  job<bfs_result<typename Graph::vertex_id>> submit_multi_source_bfs(
      const Graph& g,
      const std::vector<typename Graph::vertex_id>& sources,
      std::optional<traversal_options> opts = std::nullopt);

  template <typename Graph>
  job<pagerank_result<typename Graph::vertex_id>> submit_pagerank(
      const Graph& g, pagerank_options popt,
      std::optional<traversal_options> opts = std::nullopt);

  template <typename Graph>
  job<kcore_result<typename Graph::vertex_id>> submit_kcore(
      const Graph& g, std::optional<traversal_options> opts = std::nullopt);

  // ---- Generic submission (what the named submits are built from) ----

  /// Submits an externally-seeded traversal. `state` is moved into the job;
  /// `prepare(queue, state)` runs synchronously on the submitting thread to
  /// push the seed visitors; `finalize(state, stats)` runs on the pool
  /// thread that completes the job and produces the result delivered
  /// through the handle. On failure or cancellation finalize is skipped and
  /// the handle carries the error instead.
  template <typename Visitor, typename State, typename Prepare,
            typename Finalize>
  auto submit_traversal(std::optional<traversal_options> opts, State state,
                        Prepare prepare, Finalize finalize)
      -> job<std::invoke_result_t<Finalize&, State&, queue_run_stats>> {
    auto tj = make_typed_job<Visitor>(opts, std::move(state),
                                      std::move(finalize));
    prepare(tj->queue, tj->state);
    return start_job(tj, [this](auto& jq, auto& jstate, auto done) {
      jq.run_async(pool_, jstate, std::move(done));
    });
  }

  /// Seeded flavour: one visitor per vertex in [0, num_vertices), built by
  /// `make_visitor` on the job's own workers (paper Algorithm 3 seeding).
  /// make_visitor must be const-callable and thread-safe, as for
  /// visitor_queue::run_seeded.
  template <typename Visitor, typename State, typename MakeVisitor,
            typename Finalize>
  auto submit_seeded(std::optional<traversal_options> opts, State state,
                     std::uint64_t num_vertices, MakeVisitor make_visitor,
                     Finalize finalize)
      -> job<std::invoke_result_t<Finalize&, State&, queue_run_stats>> {
    auto tj = make_typed_job<Visitor>(opts, std::move(state),
                                      std::move(finalize));
    return start_job(
        tj, [this, num_vertices, mv = std::move(make_visitor)](
                auto& jq, auto& jstate, auto done) mutable {
          jq.run_seeded_async(pool_, jstate, num_vertices, std::move(mv),
                              std::move(done));
        });
  }

  // ---- Introspection / lifecycle ----

  /// Resolves options against this engine's defaults and pins the config to
  /// its pool (growing it to the job's width). For blocking call sites that
  /// must own their visitor_queue and state directly — the checkpointed
  /// variants in core/checkpoint.hpp, which save partial state after an
  /// abort — yet should still run on warm pooled workers.
  visitor_queue_config pooled_config(
      std::optional<traversal_options> opts = std::nullopt) {
    return prepare_config(opts);
  }

  service::worker_pool& pool() noexcept { return pool_; }
  const traversal_options& defaults() const noexcept { return defaults_; }

  /// Jobs submitted but not yet completed (delivered or failed).
  std::size_t active_jobs() const {
    std::lock_guard lk(jobs_mu_);
    return active_;
  }

  std::uint64_t jobs_submitted() const noexcept {
    return submitted_.load(std::memory_order_relaxed);
  }

  /// Blocks until every outstanding job delivered its result or error.
  void wait_idle() {
    std::unique_lock lk(jobs_mu_);
    idle_cv_.wait(lk, [&] { return active_ == 0; });
  }

  /// The process-local engine behind the async_* free functions. Its pool
  /// grows on demand to the widest job ever requested and survives until
  /// process exit, so back-to-back free-function calls reuse warm workers.
  static engine& process_default() {
    static engine instance;
    return instance;
  }

 private:
  // Option resolution visible to the out-of-class submit_* definitions in
  // core/*.hpp: the thread count sizes the per-job state shards, and the
  // resolved metrics sink lets finalize record per-algorithm work counters
  // with the same opts-win-defaults-fill rule prepare_config applies.
  const traversal_options& resolve(
      const std::optional<traversal_options>& opts) const noexcept {
    return opts.has_value() ? *opts : defaults_;
  }

  std::size_t resolve_threads(
      const std::optional<traversal_options>& opts) const noexcept {
    return resolve(opts).queue.num_threads;
  }

  telemetry::metrics_registry* resolve_metrics(
      const std::optional<traversal_options>& opts) const noexcept {
    telemetry::metrics_registry* m = resolve(opts).queue.metrics;
    return m != nullptr ? m : defaults_.queue.metrics;
  }

  template <typename Visitor, typename State, typename Finalize>
  struct typed_job {
    using result_type =
        std::invoke_result_t<Finalize&, State&, queue_run_stats>;
    State state;
    visitor_queue<Visitor, State> queue;
    Finalize finalize;
    std::promise<result_type> promise;

    typed_job(State&& st, const visitor_queue_config& cfg, Finalize&& fin)
        : state(std::move(st)), queue(cfg), finalize(std::move(fin)) {}
  };

  /// Resolves options against engine defaults, pins the job to this
  /// engine's pool, grows the pool to the job's width, and stamps the
  /// service metrics into the job's registry (if any).
  visitor_queue_config prepare_config(
      const std::optional<traversal_options>& opts) {
    const traversal_options& t = opts.has_value() ? *opts : defaults_;
    visitor_queue_config cfg = t.queue;
    if (cfg.metrics == nullptr) cfg.metrics = defaults_.queue.metrics;
    if (cfg.trace == nullptr) cfg.trace = defaults_.queue.trace;
    if (cfg.sampler == nullptr) cfg.sampler = defaults_.queue.sampler;
    cfg.validate();
    cfg.pool = &pool_;
    pool_.ensure_threads(cfg.num_threads);
    if (cfg.metrics != nullptr) {
      cfg.metrics->get_counter("service.jobs").add(0);
      cfg.metrics->get_gauge("service.pool.spawned_threads")
          .record_max(static_cast<std::int64_t>(pool_.threads_spawned()));
    }
    return cfg;
  }

  template <typename Visitor, typename State, typename Finalize>
  auto make_typed_job(const std::optional<traversal_options>& opts,
                      State state, Finalize finalize) {
    const visitor_queue_config cfg = prepare_config(opts);
    return std::make_shared<typed_job<Visitor, State, Finalize>>(
        std::move(state), cfg, std::move(finalize));
  }

  /// Common tail of both submit flavours: wire the control block, launch
  /// via `run` (which picks run_async vs run_seeded_async), deliver the
  /// result or error through the promise from the completing pool thread.
  template <typename TypedJob, typename Run>
  auto start_job(std::shared_ptr<TypedJob> tj, Run run)
      -> job<typename TypedJob::result_type> {
    using Result = typename TypedJob::result_type;
    auto control = std::make_shared<service::job_control>();
    control->cancel = [tj] { tj->queue.cancel(); };
    control->pending = [tj] { return tj->queue.pending(); };
    job<Result> handle(tj->promise.get_future(), control);
    {
      std::lock_guard lk(jobs_mu_);
      ++active_;
    }
    submitted_.fetch_add(1, std::memory_order_relaxed);
    run(tj->queue, tj->state,
        [this, tj, control](queue_run_stats stats, std::exception_ptr error) {
          // finished flips before the promise is fulfilled so that a handle
          // whose wait()/get() returned always reads done() == true.
          control->finished.store(true, std::memory_order_release);
          if (error != nullptr) {
            tj->promise.set_exception(std::move(error));
          } else {
            try {
              tj->promise.set_value(tj->finalize(tj->state, std::move(stats)));
            } catch (...) {
              tj->promise.set_exception(std::current_exception());
            }
          }
          {
            // Notify under the lock: wait_idle() may be ~engine, and the
            // condvar must not be destroyed mid-notify. Holding jobs_mu_
            // means the notify completes before any waiter can observe
            // active_ == 0.
            std::lock_guard lk(jobs_mu_);
            --active_;
            idle_cv_.notify_all();
          }
        });
    return handle;
  }

  traversal_options defaults_;
  service::worker_pool pool_;
  mutable std::mutex jobs_mu_;
  std::condition_variable idle_cv_;
  std::size_t active_ = 0;  // guarded by jobs_mu_
  std::atomic<std::uint64_t> submitted_{0};
};

}  // namespace asyncgt
