// asyncgt::engine — the session-based public API of the traversal service.
//
// The seed library answered one query per call: every async_* free function
// built a fresh visitor_queue, spawned its full thread complement, joined
// it, and threw everything away. This header turns that into a persistent
// service: an engine owns a long-lived worker_pool (threads parked between
// jobs, never re-spawned — see service/worker_pool.hpp for the gang
// scheduler that doubles as the job admission policy), and queries become
// *jobs*:
//
//   asyncgt::engine eng({.pool_threads = 16});
//   auto j1 = eng.submit_bfs(g, 0);
//   auto j2 = eng.submit_sssp(g, 42);   // concurrent with j1 over the same g
//   auto bfs = j1.get();                // bfs_result, or throws
//
// Concurrency model. Each job gets its own queue lanes, termination
// counter, and algorithm state (per-job isolation — a job failing or being
// cancelled aborts only itself), while the *graph* and, for semi-external
// runs, the block_cache and ssd_model behind it are shared: concurrent SEM
// queries keep one device at its IOPS plateau and enjoy each other's cache
// residency (bench/ext_concurrent_queries measures exactly that). Jobs
// whose combined width exceeds the pool serialize FIFO; otherwise they
// genuinely overlap.
//
// Job handles carry the whole per-job surface: a future (get/wait),
// cooperative cancellation (cancel() reuses the PR-3 abort broadcast, so a
// cancelled job unwinds promptly and surfaces traversal_aborted), a live
// pending() frontier probe, and per-job stats in the result. Telemetry
// sinks resolve per job: options attached to the submit win, engine
// defaults fill the gaps, and the engine stamps the service.jobs counter
// and service.pool.spawned_threads gauge into whichever registry the job
// carries — a warm engine shows the gauge frozen at the pool width.
//
// The async_* free functions remain as one-shot wrappers over
// engine::process_default() — submit + get — so all pre-service call sites
// keep their exact signatures and exception contracts while transparently
// sharing the process-wide pool.
//
// Layering: this header sits between the queue layer and the algorithm
// headers. engine::submit_bfs/sssp/cc/... are declared here but *defined*
// in the matching core/*.hpp (which include this header first), so the
// service knows nothing about any particular visitor, and new algorithms
// register themselves by defining another submit_* out of class — or by
// calling the generic submit_traversal/submit_seeded directly.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "queue/queue_stats.hpp"
#include "queue/traversal_abort.hpp"
#include "queue/visitor_queue.hpp"
#include "service/admission.hpp"
#include "service/job_stats.hpp"
#include "service/traversal_options.hpp"
#include "service/watchdog.hpp"
#include "service/worker_pool.hpp"
#include "telemetry/metrics_registry.hpp"
#include "telemetry/span.hpp"
#include "util/stats.hpp"

namespace asyncgt {

// Result types owned by the algorithm headers; only named here so the
// submit_* declarations below can spell their return types.
template <typename VertexId> struct bfs_result;
template <typename VertexId> struct sssp_result;
template <typename VertexId> struct cc_result;
template <typename VertexId> struct pagerank_result;
template <typename VertexId> struct kcore_result;
struct pagerank_options;

// Dynamic-graph types owned by graph/delta_overlay.hpp and
// core/incremental.hpp; named here so the submit_incremental_* declarations
// can spell their parameters.
template <typename VertexId> struct delta_batch;
template <typename Graph> class overlay_view;
struct incremental_extra;

namespace service {

/// Type-erased control block shared between a job handle and the engine:
/// keeps cancellation and the pending-probe callable alive independently of
/// the typed job state.
struct job_control {
  /// Reason-carrying force-cancel: raises the job scope's abort hint (so
  /// blocking cancellation points unwind) and the queue-level abort
  /// broadcast. job::cancel() passes `cancelled`; the watchdog passes
  /// deadline_exceeded/stalled, the load shedder shed.
  std::function<void(abort_reason)> cancel;
  std::function<std::int64_t()> pending;
  std::atomic<bool> finished{false};
  /// The job's attribution scope and terminal flags; lives as long as any
  /// handle does, so stats() stays readable after the engine forgot the job.
  std::shared_ptr<job_scope_state> scope;
};

}  // namespace service

/// Handle to one submitted traversal. Movable, future-like. get() returns
/// the algorithm result (with per-job queue stats inside) or rethrows the
/// job's failure — traversal_aborted for worker faults and cancellations,
/// exactly the free-function contract.
template <typename Result>
class job {
 public:
  job() = default;

  /// Blocks until the job finishes; returns the result or rethrows the
  /// job's error. Consumes the handle's future (one get() per job).
  Result get() { return future_.get(); }

  void wait() const { future_.wait(); }
  bool valid() const noexcept { return future_.valid(); }

  /// True once the job is terminal: flips only after the finish timestamp,
  /// terminal flags, and lifecycle accounting landed, immediately before
  /// the promise is fulfilled — so done() == true implies stats() returns
  /// the final snapshot, and get() no longer blocks on traversal work.
  /// Non-blocking; implied by wait()/get() returning.
  bool done() const noexcept {
    return control_ != nullptr &&
           control_->finished.load(std::memory_order_acquire);
  }

  /// Cooperative cancellation: raises the job's abort flag and wakes every
  /// parked worker (the PR-3 failure-containment broadcast). The job's
  /// workers unwind at their next abort check and get() throws
  /// traversal_aborted. Idempotent; a no-op after completion.
  void cancel() {
    if (control_ != nullptr) control_->cancel(abort_reason::cancelled);
  }

  /// Live in-flight visitor count of this job (conservative sample while
  /// running, 0 at quiescence) — the per-job frontier probe.
  std::int64_t pending() const {
    return control_ != nullptr ? control_->pending() : 0;
  }

  /// Engine-assigned job id (1-based, unique per engine); 0 for a
  /// default-constructed handle.
  std::uint64_t id() const noexcept {
    return control_ != nullptr && control_->scope != nullptr
               ? control_->scope->scope.job_id()
               : 0;
  }

  /// Per-job attribution snapshot: visits, edge inspections, io
  /// bytes/retries, queue flushes, and queue-wait/run/total wall time.
  /// Readable at any time — counters are "so far" while the job runs and
  /// final once done() — and stays valid after get().
  service::job_stats stats() const {
    return control_ != nullptr && control_->scope != nullptr
               ? control_->scope->snapshot()
               : service::job_stats{};
  }

 private:
  friend class engine;
  job(std::future<Result> f, std::shared_ptr<service::job_control> c)
      : future_(std::move(f)), control_(std::move(c)) {}

  std::future<Result> future_;
  std::shared_ptr<service::job_control> control_;
};

class engine {
 public:
  struct config {
    /// Pre-warmed pool width. Jobs wider than the current pool grow it (and
    /// bump the spawn counter); pre-size to the widest expected job for the
    /// zero-spawns-after-warm-up guarantee.
    std::size_t pool_threads = 0;
    /// Per-job defaults: applied whole when a submit passes no options, and
    /// its telemetry sinks fill any the submit's options leave null.
    traversal_options defaults{};
    /// Completed-job summaries retained for recent_jobs() (0 disables).
    std::size_t completed_ring = 64;

    // ---- Admission control (docs/service_api.md) ----
    /// Bound on jobs admitted-but-not-terminal; 0 = unbounded (admission
    /// control off unless the memory budget engages).
    std::size_t max_pending_jobs = 0;
    /// What a submit does when the bound (or memory budget) is hit.
    service::admission_policy admission = service::admission_policy::block;
    /// Bound on a `block` policy wait; 0 = wait indefinitely.
    std::uint32_t admission_timeout_ms = 0;
    /// Engine-wide resident-memory budget; a submit whose declared
    /// memory_estimate_bytes does not fit the uncommitted remainder is
    /// refused at admission (never OOM-killed mid-flight). 0 = off.
    std::uint64_t memory_budget_bytes = 0;
    /// Watchdog sampling period for deadline/stall enforcement.
    std::uint32_t watchdog_sample_interval_ms = 10;
  };

  engine() : engine(config{}) {}
  explicit engine(config c)
      : defaults_(std::move(c.defaults)),
        completed_ring_(c.completed_ring),
        max_pending_jobs_(c.max_pending_jobs),
        admission_(c.admission),
        admission_timeout_ms_(c.admission_timeout_ms),
        memory_budget_bytes_(c.memory_budget_bytes),
        pool_(c.pool_threads),
        watchdog_({.sample_interval_ms = c.watchdog_sample_interval_ms}) {}

  engine(const engine&) = delete;
  engine& operator=(const engine&) = delete;

  /// Waits for every outstanding job, then parks and joins the pool.
  ~engine() { wait_idle(); }

  // ---- The session API (defined out of class in core/*.hpp) ----

  template <typename Graph>
  job<bfs_result<typename Graph::vertex_id>> submit_bfs(
      const Graph& g, typename Graph::vertex_id start,
      std::optional<traversal_options> opts = std::nullopt);

  template <typename Graph>
  job<sssp_result<typename Graph::vertex_id>> submit_sssp(
      const Graph& g, typename Graph::vertex_id start,
      std::optional<traversal_options> opts = std::nullopt);

  template <typename Graph>
  job<cc_result<typename Graph::vertex_id>> submit_cc(
      const Graph& g, std::optional<traversal_options> opts = std::nullopt);

  template <typename Graph>
  job<bfs_result<typename Graph::vertex_id>> submit_multi_source_bfs(
      const Graph& g,
      const std::vector<typename Graph::vertex_id>& sources,
      std::optional<traversal_options> opts = std::nullopt);

  template <typename Graph>
  job<pagerank_result<typename Graph::vertex_id>> submit_pagerank(
      const Graph& g, pagerank_options popt,
      std::optional<traversal_options> opts = std::nullopt);

  template <typename Graph>
  job<kcore_result<typename Graph::vertex_id>> submit_kcore(
      const Graph& g, std::optional<traversal_options> opts = std::nullopt);

  // Incremental repair entry points (core/incremental.hpp): given the
  // prior labels of a full traversal and the delta batch just applied to
  // the overlay behind `g`, repair the labels to the fixed point of g's
  // pinned epoch instead of recomputing from scratch. `prior` is consumed;
  // the repaired arrays come back through the job handle. `extra` (may be
  // null) receives the affected/reseeded accounting synchronously at
  // submit and repair_visits before the result is delivered.

  template <typename Graph>
  job<bfs_result<typename Graph::vertex_id>> submit_incremental_bfs(
      const overlay_view<Graph>& g,
      const delta_batch<typename Graph::vertex_id>& delta,
      bfs_result<typename Graph::vertex_id> prior,
      incremental_extra* extra = nullptr,
      std::optional<traversal_options> opts = std::nullopt);

  template <typename Graph>
  job<sssp_result<typename Graph::vertex_id>> submit_incremental_sssp(
      const overlay_view<Graph>& g,
      const delta_batch<typename Graph::vertex_id>& delta,
      sssp_result<typename Graph::vertex_id> prior,
      incremental_extra* extra = nullptr,
      std::optional<traversal_options> opts = std::nullopt);

  template <typename Graph>
  job<cc_result<typename Graph::vertex_id>> submit_incremental_cc(
      const overlay_view<Graph>& g,
      const delta_batch<typename Graph::vertex_id>& delta,
      cc_result<typename Graph::vertex_id> prior,
      incremental_extra* extra = nullptr,
      std::optional<traversal_options> opts = std::nullopt);

  // ---- Generic submission (what the named submits are built from) ----

  /// Submits an externally-seeded traversal. `state` is moved into the job;
  /// `prepare(queue, state)` runs synchronously on the submitting thread to
  /// push the seed visitors; `finalize(state, stats)` runs on the pool
  /// thread that completes the job and produces the result delivered
  /// through the handle. On failure or cancellation finalize is skipped and
  /// the handle carries the error instead.
  template <typename Visitor, typename State, typename Prepare,
            typename Finalize>
  auto submit_traversal(std::optional<traversal_options> opts, State state,
                        Prepare prepare, Finalize finalize,
                        const char* label = "traversal")
      -> job<std::invoke_result_t<Finalize&, State&, queue_run_stats>> {
    auto tj = make_typed_job<Visitor>(opts, std::move(state),
                                      std::move(finalize), label);
    prepare(tj->queue, tj->state);
    return start_job(tj, [this](auto& jq, auto& jstate, auto done) {
      jq.run_async(pool_, jstate, std::move(done));
    });
  }

  /// Seeded flavour: one visitor per vertex in [0, num_vertices), built by
  /// `make_visitor` on the job's own workers (paper Algorithm 3 seeding).
  /// make_visitor must be const-callable and thread-safe, as for
  /// visitor_queue::run_seeded.
  template <typename Visitor, typename State, typename MakeVisitor,
            typename Finalize>
  auto submit_seeded(std::optional<traversal_options> opts, State state,
                     std::uint64_t num_vertices, MakeVisitor make_visitor,
                     Finalize finalize, const char* label = "traversal")
      -> job<std::invoke_result_t<Finalize&, State&, queue_run_stats>> {
    auto tj = make_typed_job<Visitor>(opts, std::move(state),
                                      std::move(finalize), label);
    return start_job(
        tj, [this, num_vertices, mv = std::move(make_visitor)](
                auto& jq, auto& jstate, auto done) mutable {
          jq.run_seeded_async(pool_, jstate, num_vertices, std::move(mv),
                              std::move(done));
        });
  }

  // ---- Introspection / lifecycle ----

  /// Resolves options against this engine's defaults and pins the config to
  /// its pool (growing it to the job's width). For blocking call sites that
  /// must own their visitor_queue and state directly — the checkpointed
  /// variants in core/checkpoint.hpp, which save partial state after an
  /// abort — yet should still run on warm pooled workers.
  visitor_queue_config pooled_config(
      std::optional<traversal_options> opts = std::nullopt) {
    return prepare_config(opts);
  }

  service::worker_pool& pool() noexcept { return pool_; }
  const traversal_options& defaults() const noexcept { return defaults_; }

  /// Jobs submitted but not yet completed (delivered or failed).
  std::size_t active_jobs() const {
    std::lock_guard lk(jobs_mu_);
    return active_;
  }

  std::uint64_t jobs_submitted() const noexcept {
    return submitted_.load(std::memory_order_relaxed);
  }

  std::uint64_t jobs_completed() const {
    std::lock_guard lk(jobs_mu_);
    return jobs_completed_;
  }

  /// Service-level accounting snapshot for overload introspection. The
  /// conservation invariant — every submit attempt is accounted exactly
  /// once — holds at any quiescent instant (no submit mid-admission):
  ///
  ///   submitted == rejected + active
  ///             + completed + failed + cancelled
  ///             + deadline_exceeded + stalled + shed
  ///
  /// tools/overload_soak.sh asserts it after each round.
  struct service_counters {
    std::uint64_t submitted = 0;  ///< submit attempts (incl. rejected)
    std::uint64_t admitted = 0;   ///< attempts that passed admission
    std::uint64_t rejected = 0;   ///< admission_rejected thrown
    std::uint64_t shed_requests = 0;  ///< victims evicted by shed policy
    std::uint64_t active = 0;     ///< admitted, not yet terminal
    // Terminal outcomes of admitted jobs:
    std::uint64_t completed = 0;
    std::uint64_t failed = 0;
    std::uint64_t cancelled = 0;
    std::uint64_t deadline_exceeded = 0;
    std::uint64_t stalled = 0;
    std::uint64_t shed = 0;
    std::uint64_t memory_committed_bytes = 0;
  };

  service_counters counters() const {
    std::lock_guard lk(jobs_mu_);
    service_counters c;
    c.submitted = submitted_.load(std::memory_order_relaxed);
    c.admitted = admitted_;
    c.rejected = rejected_;
    c.shed_requests = shed_requests_;
    c.active = active_;
    c.completed = n_completed_;
    c.failed = n_failed_;
    c.cancelled = n_cancelled_;
    c.deadline_exceeded = n_deadline_;
    c.stalled = n_stalled_;
    c.shed = n_shed_;
    c.memory_committed_bytes = mem_committed_;
    return c;
  }

  /// Watchdog trigger counters (monotone over the engine's lifetime).
  std::uint64_t watchdog_deadline_fires() const noexcept {
    return watchdog_.deadline_fires();
  }
  std::uint64_t watchdog_stall_fires() const noexcept {
    return watchdog_.stall_fires();
  }

  /// Snapshots of the most recently completed jobs (newest last), up to the
  /// configured ring size. Jobs still running are not listed — read their
  /// handles' stats() instead.
  std::vector<service::job_stats> recent_jobs() const {
    std::lock_guard lk(jobs_mu_);
    return {recent_.begin(), recent_.end()};
  }

  /// Engine-lifetime job lifecycle latency distributions (microseconds),
  /// one sample per completed job.
  struct lifecycle_latencies {
    log2_histogram queue_wait_us;
    log2_histogram run_us;
    log2_histogram total_us;
  };

  lifecycle_latencies lifecycle() const {
    std::lock_guard lk(jobs_mu_);
    return lifecycle_;
  }

  /// Blocks until every outstanding job delivered its result or error.
  void wait_idle() {
    std::unique_lock lk(jobs_mu_);
    idle_cv_.wait(lk, [&] { return active_ == 0; });
  }

  /// The process-local engine behind the async_* free functions. Its pool
  /// grows on demand to the widest job ever requested and survives until
  /// process exit, so back-to-back free-function calls reuse warm workers.
  static engine& process_default() {
    static engine instance;
    return instance;
  }

 private:
  // Option resolution visible to the out-of-class submit_* definitions in
  // core/*.hpp: the thread count sizes the per-job state shards, and the
  // resolved metrics sink lets finalize record per-algorithm work counters
  // with the same opts-win-defaults-fill rule prepare_config applies.
  const traversal_options& resolve(
      const std::optional<traversal_options>& opts) const noexcept {
    return opts.has_value() ? *opts : defaults_;
  }

  std::size_t resolve_threads(
      const std::optional<traversal_options>& opts) const noexcept {
    return resolve(opts).queue.num_threads;
  }

  telemetry::metrics_registry* resolve_metrics(
      const std::optional<traversal_options>& opts) const noexcept {
    telemetry::metrics_registry* m = resolve(opts).queue.metrics;
    return m != nullptr ? m : defaults_.queue.metrics;
  }

  template <typename Visitor, typename State, typename Finalize>
  struct typed_job {
    using result_type =
        std::invoke_result_t<Finalize&, State&, queue_run_stats>;
    // The scope must outlive the queue (whose config points at it), so it
    // is declared — and therefore destroyed — after the queue.
    std::shared_ptr<service::job_scope_state> scope;
    State state;
    visitor_queue<Visitor, State> queue;
    Finalize finalize;
    std::promise<result_type> promise;

    typed_job(std::shared_ptr<service::job_scope_state> sc, State&& st,
              const visitor_queue_config& cfg, Finalize&& fin)
        : scope(std::move(sc)),
          state(std::move(st)),
          queue(cfg),
          finalize(std::move(fin)) {}
  };

  /// Resolves options against engine defaults, pins the job to this
  /// engine's pool, grows the pool to the job's width, and stamps the
  /// service metrics into the job's registry (if any).
  visitor_queue_config prepare_config(
      const std::optional<traversal_options>& opts) {
    const traversal_options& t = opts.has_value() ? *opts : defaults_;
    visitor_queue_config cfg = t.queue;
    if (cfg.metrics == nullptr) cfg.metrics = defaults_.queue.metrics;
    if (cfg.trace == nullptr) cfg.trace = defaults_.queue.trace;
    if (cfg.sampler == nullptr) cfg.sampler = defaults_.queue.sampler;
    cfg.validate();
    cfg.pool = &pool_;
    pool_.ensure_threads(cfg.num_threads);
    if (cfg.metrics != nullptr) {
      cfg.metrics->get_counter("service.jobs").add(0);
      cfg.metrics->get_gauge("service.pool.spawned_threads")
          .record_max(static_cast<std::int64_t>(pool_.threads_spawned()));
    }
    return cfg;
  }

  template <typename Visitor, typename State, typename Finalize>
  auto make_typed_job(const std::optional<traversal_options>& opts,
                      State state, Finalize finalize, const char* label) {
    visitor_queue_config cfg = prepare_config(opts);
    // One attribution scope per job, installed into the config BEFORE the
    // queue is built so every worker body and end-of-run stats mirror runs
    // against it (queue/traversal_engine.hpp).
    auto scope = std::make_shared<service::job_scope_state>(
        next_job_id_.fetch_add(1, std::memory_order_relaxed), label,
        cfg.num_threads);
    scope->metrics = cfg.metrics;
    scope->trace = cfg.trace;
    // Robustness parameters are fixed here, before the job is visible to
    // the admission layer or watchdog.
    const traversal_options& t = resolve(opts);
    scope->deadline_ms = t.deadline_ms;
    scope->stall_grace_ms = t.stall_grace_ms;
    scope->priority = t.priority;
    scope->memory_estimate_bytes = t.memory_estimate_bytes;
    cfg.scope = &scope->scope;
    return std::make_shared<typed_job<Visitor, State, Finalize>>(
        std::move(scope), std::move(state), cfg, std::move(finalize));
  }

  /// Common tail of both submit flavours: admission decision first (may
  /// block, throw admission_rejected, or shed a victim — the job holds no
  /// slot or memory before this passes), then wire the control block,
  /// register the watchdog, launch via `run` (which picks run_async vs
  /// run_seeded_async), and deliver the result or error through the promise
  /// from the completing pool thread.
  template <typename TypedJob, typename Run>
  auto start_job(std::shared_ptr<TypedJob> tj, Run run)
      -> job<typename TypedJob::result_type> {
    using Result = typename TypedJob::result_type;
    auto control = std::make_shared<service::job_control>();
    control->scope = tj->scope;
    control->cancel = [tj](abort_reason r) {
      // Scope hint first: a worker blocked in a cancellation point (the
      // fault injector's stall mode) only unwinds by polling it, and the
      // queue broadcast alone cannot reach a thread stuck in a read.
      tj->scope->scope.request_abort(static_cast<std::uint32_t>(r));
      tj->queue.cancel(r);
    };
    control->pending = [tj] { return tj->queue.pending(); };
    submitted_.fetch_add(1, std::memory_order_relaxed);
    admit(tj->scope, control->cancel);  // throws admission_rejected
    job<Result> handle(tj->promise.get_future(), control);
    if (tj->scope->deadline_ms > 0 || tj->scope->stall_grace_ms > 0) {
      watchdog_.watch(tj->scope, control->cancel, tj->scope->deadline_ms,
                      tj->scope->stall_grace_ms);
    }
    run(tj->queue, tj->state,
        [this, tj, control](queue_run_stats stats, std::exception_ptr error) {
          std::optional<Result> result;
          if (error == nullptr) {
            try {
              // Finalize runs attributed to the job so the per-algorithm
              // work counters it records mirror into the job's deltas.
              telemetry::metric_scope::attribution attr(&tj->scope->scope, 0);
              result.emplace(tj->finalize(tj->state, std::move(stats)));
            } catch (...) {
              error = std::current_exception();
            }
          }
          // All job-state mutation happens BEFORE done() flips and the
          // promise is fulfilled: a caller that observed done() == true (or
          // whose wait()/get() returned) must see the terminal snapshot —
          // outcome latched, finish timestamp stamped, lifecycle accounting
          // done — never a job that is still "running". The terminal
          // counter bump and the active_/slot release happen in ONE
          // jobs_mu_ critical section (inside finish_job_accounting): a
          // concurrent counters() snapshot must never see a job counted
          // both active and terminal, or neither — the conservation law is
          // an invariant of every snapshot, not just of quiescence.
          const service::job_outcome out = classify_outcome(error);
          tj->scope->scope.mark_finished();
          tj->scope->latch_outcome(out);
          finish_job_accounting(*tj->scope, out);
          control->finished.store(true, std::memory_order_release);
          // Promise last, touching only tj/control (shared): once the
          // slot release above woke wait_idle(), the engine may already be
          // tearing down (the pool dtor still joins this thread).
          if (error != nullptr) {
            tj->promise.set_exception(std::move(error));
          } else {
            tj->promise.set_value(std::move(*result));
          }
        });
    return handle;
  }

  /// The admission decision (tentpole part 2+3). Runs on the submitting
  /// thread, before the job holds any slot, memory, or gang. Throws
  /// admission_rejected (kind queue_full / timeout / memory_budget /
  /// no_shed_victim) when the configured policy refuses; on return the job
  /// is committed — counted in active_, its estimate folded into
  /// mem_committed_, and its cancel registered as a shed target.
  void admit(const std::shared_ptr<service::job_scope_state>& scope,
             const std::function<void(abort_reason)>& cancel) {
    const std::uint64_t est = scope->memory_estimate_bytes;
    std::unique_lock lk(jobs_mu_);
    // An estimate that can never fit is refused under every policy:
    // blocking or shedding cannot make the budget bigger.
    if (memory_budget_bytes_ > 0 && est > memory_budget_bytes_) {
      reject_locked(*scope, service::admission_rejected::kind::memory_budget,
                    "memory estimate " + std::to_string(est) +
                        " exceeds engine budget " +
                        std::to_string(memory_budget_bytes_));
    }
    auto fits = [&] {
      return (max_pending_jobs_ == 0 || active_ < max_pending_jobs_) &&
             (memory_budget_bytes_ == 0 ||
              mem_committed_ + est <= memory_budget_bytes_);
    };
    if (!fits()) {
      switch (admission_) {
        case service::admission_policy::block: {
          const bool ok =
              admission_timeout_ms_ == 0
                  ? (idle_cv_.wait(lk, fits), true)
                  : idle_cv_.wait_for(
                        lk, std::chrono::milliseconds(admission_timeout_ms_),
                        fits);
          if (!ok) {
            reject_locked(*scope, service::admission_rejected::kind::timeout,
                          "no admission slot within " +
                              std::to_string(admission_timeout_ms_) + "ms");
          }
          break;
        }
        case service::admission_policy::reject:
          reject_locked(
              *scope,
              memory_budget_bytes_ > 0 &&
                      mem_committed_ + est > memory_budget_bytes_
                  ? service::admission_rejected::kind::memory_budget
                  : service::admission_rejected::kind::queue_full,
              "admission bound hit (" + std::to_string(active_) +
                  " active jobs)");
          break;
        case service::admission_policy::shed_lowest_priority: {
          // Evict the lowest-priority job strictly below the newcomer, so
          // equal-priority traffic can never cascade-shed itself. The
          // newcomer is admitted immediately (transient overshoot of the
          // bound by one while the victim unwinds) — waiting for the
          // victim to finish would reintroduce the unbounded block this
          // policy exists to avoid.
          active_rec* victim = nullptr;
          for (auto& r : active_recs_) {
            if (r.shed_requested || r.priority >= scope->priority) continue;
            if (victim == nullptr || r.priority < victim->priority) {
              victim = &r;
            }
          }
          if (victim == nullptr) {
            reject_locked(*scope,
                          service::admission_rejected::kind::no_shed_victim,
                          "no running job with priority below " +
                              std::to_string(scope->priority));
          }
          victim->shed_requested = true;
          shed_requests_++;
          auto vcancel = victim->cancel;
          if (scope->metrics != nullptr) {
            scope->metrics->get_counter("service.shed").add(0);
          }
          lk.unlock();
          vcancel(abort_reason::shed);
          lk.lock();
          break;
        }
      }
    }
    ++active_;
    ++admitted_;
    mem_committed_ += est;
    active_recs_.push_back(active_rec{scope->scope.job_id(), scope->priority,
                                      est, cancel, false});
  }

  /// Counts and throws an admission refusal. Caller holds jobs_mu_ (the
  /// count must be consistent with the conservation check); the throw
  /// releases it via unique_lock unwinding in admit's caller frame.
  [[noreturn]] void reject_locked(service::job_scope_state& scope,
                                  service::admission_rejected::kind k,
                                  const std::string& detail) {
    ++rejected_;
    if (scope.metrics != nullptr) {
      scope.metrics->get_counter("service.rejected").add(0);
    }
    throw service::admission_rejected(
        k, std::string("admission rejected (") +
               service::admission_rejected::kind_name(k) + "): " + detail);
  }

  /// Maps the job's delivered error (or lack of one) to its terminal
  /// state: null -> completed, a cooperative traversal_aborted -> the
  /// outcome matching its latched abort_reason (cancelled /
  /// deadline_exceeded / stalled / shed), anything else -> failed. This is
  /// the single source of the terminal flags — classified from what the
  /// job actually delivered, not from whether a cancel was ever requested:
  /// a job that completed in the same instant its deadline fired delivers
  /// a result and stays completed.
  static service::job_outcome classify_outcome(
      const std::exception_ptr& error) noexcept {
    if (error == nullptr) return service::job_outcome::completed;
    try {
      std::rethrow_exception(error);
    } catch (const traversal_aborted& a) {
      switch (a.reason()) {
        case abort_reason::none: break;  // worker failure
        case abort_reason::cancelled: return service::job_outcome::cancelled;
        case abort_reason::deadline_exceeded:
          return service::job_outcome::deadline_exceeded;
        case abort_reason::stalled: return service::job_outcome::stalled;
        case abort_reason::shed: return service::job_outcome::shed;
      }
    } catch (...) {
    }
    return service::job_outcome::failed;
  }

  /// Completion-side accounting, invoked once per job from the pool thread
  /// that delivered its result or error: lifecycle histograms + ring entry
  /// under jobs_mu_, service.* lifecycle metrics into the job's registry,
  /// and the Chrome-trace lifecycle spans into its writer.
  void finish_job_accounting(service::job_scope_state& st,
                             service::job_outcome out) {
    const service::job_stats snap = st.snapshot();
    const auto us = [](double seconds) {
      return seconds <= 0.0 ? std::uint64_t{0}
                            : static_cast<std::uint64_t>(seconds * 1e6);
    };
    // External sinks (metrics, trace) are stamped BEFORE the locked block:
    // the moment that block releases the job's admission slot and notifies
    // idle_cv_, a wait_idle() caller may begin tearing the engine down, so
    // nothing after it may touch engine state.
    stamp_completion_metrics(st, snap, out, us);
    emit_job_spans(st, snap);
    {
      // One critical section for the whole terminal transition: the
      // outcome bump, the lifecycle/ring records, the active_ decrement,
      // the slot + memory release, and the idle notification. counters()
      // snapshots are taken under the same mutex, so conservation
      // (submitted == rejected + active + terminal outcomes) holds at
      // every instant, not just at quiescence. Notifying under the lock
      // also means the notify completes before any waiter can observe
      // active_ == 0 and destroy the condvar.
      std::lock_guard lk(jobs_mu_);
      ++jobs_completed_;
      switch (out) {
        case service::job_outcome::completed: ++n_completed_; break;
        case service::job_outcome::failed: ++n_failed_; break;
        case service::job_outcome::cancelled: ++n_cancelled_; break;
        case service::job_outcome::deadline_exceeded: ++n_deadline_; break;
        case service::job_outcome::stalled: ++n_stalled_; break;
        case service::job_outcome::shed: ++n_shed_; break;
        case service::job_outcome::running: break;  // unreachable
      }
      lifecycle_.queue_wait_us.add(us(snap.queue_wait_seconds));
      lifecycle_.run_us.add(us(snap.run_seconds));
      lifecycle_.total_us.add(us(snap.total_seconds));
      if (completed_ring_ > 0) {
        recent_.push_back(snap);
        while (recent_.size() > completed_ring_) recent_.pop_front();
      }
      --active_;
      mem_committed_ -= st.memory_estimate_bytes;
      const std::uint64_t jid = st.scope.job_id();
      for (std::size_t i = 0; i < active_recs_.size(); ++i) {
        if (active_recs_[i].job_id == jid) {
          active_recs_.erase(active_recs_.begin() +
                             static_cast<std::ptrdiff_t>(i));
          break;
        }
      }
      idle_cv_.notify_all();
    }
  }

  template <typename UsFn>
  void stamp_completion_metrics(service::job_scope_state& st,
                                const service::job_stats& snap,
                                service::job_outcome out, UsFn us) {
    if (st.metrics != nullptr) {
      st.metrics->get_counter("service.jobs.completed").add(0);
      // The service.* robustness metric family (schema v3's service
      // section mirrors these).
      switch (out) {
        case service::job_outcome::deadline_exceeded:
          st.metrics->get_counter("service.deadline_exceeded").add(0);
          break;
        case service::job_outcome::stalled:
          st.metrics->get_counter("service.stalled").add(0);
          break;
        case service::job_outcome::shed:
          st.metrics->get_counter("service.shed_completed").add(0);
          break;
        default: break;
      }
      st.metrics->get_histogram("service.job.queue_wait_us")
          .record(0, us(snap.queue_wait_seconds));
      st.metrics->get_histogram("service.job.run_us")
          .record(0, us(snap.run_seconds));
      st.metrics->get_histogram("service.job.total_us")
          .record(0, us(snap.total_seconds));
    }
  }

  /// Renders the job's lifecycle as one named row in the Chrome trace:
  /// a parent span covering submit -> finish, with admit (queue wait),
  /// gang-run, and terminate children, plus an instant marker when the job
  /// ended in cancellation or failure. Emitted retroactively from the one
  /// completing thread — the trace format orders by timestamp, so this is
  /// race-free against the per-lane worker streams.
  void emit_job_spans(service::job_scope_state& st,
                      const service::job_stats& snap) {
    telemetry::trace_writer* tw = st.trace;
    if (tw == nullptr) return;
    using track_t = telemetry::span_track;
    const std::uint32_t tid =
        track_t::job_track_base +
        static_cast<std::uint32_t>(snap.job_id % track_t::job_track_span);
    track_t track(tw, tid,
                  "job-" + std::to_string(snap.job_id) + " (" + snap.label +
                      ")");
    // The job may have been submitted before the writer existed; clamp.
    const auto raw_t0 = std::chrono::duration_cast<std::chrono::microseconds>(
                            st.scope.submit_time() - tw->origin())
                            .count();
    const std::uint64_t t0 =
        raw_t0 > 0 ? static_cast<std::uint64_t>(raw_t0) : 0;
    const auto us = [](double seconds) {
      return seconds <= 0.0 ? std::uint64_t{0}
                            : static_cast<std::uint64_t>(seconds * 1e6);
    };
    const std::uint64_t t_run = t0 + us(snap.queue_wait_seconds);
    const std::uint64_t t_run_end = t_run + us(snap.run_seconds);
    const std::uint64_t t_end = t0 + us(snap.total_seconds);
    const std::uint64_t parent = track.emit(
        snap.label + " #" + std::to_string(snap.job_id), t0, t_end);
    track.emit("admit", t0, t_run, parent);
    if (t_run_end > t_run) track.emit("gang-run", t_run, t_run_end, parent);
    if (t_end > t_run_end) track.emit("terminate", t_run_end, t_end, parent);
    if (snap.cancelled) {
      track.instant("cancelled", t_end);
    } else if (snap.failed) {
      track.instant("abort", t_end);
    }
  }

  /// One admitted-but-not-terminal job, as the admission layer sees it:
  /// the shed policy's victim table. Guarded by jobs_mu_.
  struct active_rec {
    std::uint64_t job_id = 0;
    int priority = 0;
    std::uint64_t memory_estimate_bytes = 0;
    std::function<void(abort_reason)> cancel;
    bool shed_requested = false;  // at most one shed per job
  };

  traversal_options defaults_;
  std::size_t completed_ring_;
  // Admission configuration (immutable after construction).
  std::size_t max_pending_jobs_;
  service::admission_policy admission_;
  std::uint32_t admission_timeout_ms_;
  std::uint64_t memory_budget_bytes_;
  service::worker_pool pool_;
  mutable std::mutex jobs_mu_;
  std::condition_variable idle_cv_;
  std::size_t active_ = 0;  // guarded by jobs_mu_
  std::atomic<std::uint64_t> submitted_{0};
  std::atomic<std::uint64_t> next_job_id_{1};
  // Admission/outcome accounting, all guarded by jobs_mu_.
  std::vector<active_rec> active_recs_;
  std::uint64_t mem_committed_ = 0;
  std::uint64_t admitted_ = 0;
  std::uint64_t rejected_ = 0;
  std::uint64_t shed_requests_ = 0;
  std::uint64_t n_completed_ = 0;
  std::uint64_t n_failed_ = 0;
  std::uint64_t n_cancelled_ = 0;
  std::uint64_t n_deadline_ = 0;
  std::uint64_t n_stalled_ = 0;
  std::uint64_t n_shed_ = 0;
  // Completed-job introspection, all guarded by jobs_mu_.
  std::uint64_t jobs_completed_ = 0;
  std::deque<service::job_stats> recent_;
  lifecycle_latencies lifecycle_;
  // Declared last: destroyed first, so the monitor thread is joined while
  // every other member it can reach is still alive (~engine wait_idle()s
  // before members are destroyed, so no live entries remain by then).
  service::watchdog watchdog_;
};

}  // namespace asyncgt
