// Admission-control vocabulary for the service engine.
//
// The engine's submit path is the service's only intake: every job passes
// an admission decision before it can hold memory or a pool gang. This
// header is the shared vocabulary for that decision — the policy enum the
// engine config selects, the typed error a refused submit throws, and the
// priority-class parser the CLI uses — kept separate from engine.hpp so
// tools and tests can name policies without pulling in the whole service.
//
// Three policies (docs/service_api.md has the walkthrough):
//
//   block   — submit waits (bounded by admission_timeout_ms) for a slot to
//             free; the default, preserving pre-admission-control behavior
//             when the pool has headroom and degrading to a timeout error
//             instead of unbounded queue growth when it doesn't.
//   reject  — submit fails fast with admission_rejected (kind queue_full)
//             the moment the pending-job bound is hit. For front-ends that
//             do their own retry/backoff.
//   shed    — submit evicts the lowest-priority running job strictly below
//             the newcomer's priority class (its outcome becomes `shed`,
//             via the same abort broadcast cancel() uses) and admits in its
//             place; with no strictly-lower victim it degrades to reject
//             (kind no_shed_victim).
//
// The memory-budget guardrail rides the same seam: when the engine has a
// memory_budget_bytes and a job declares an estimate, a submit whose
// estimate does not fit the remaining budget is refused here (kind
// memory_budget) — admission refusal, never a mid-flight OOM kill.
#pragma once

#include <stdexcept>
#include <string>

namespace asyncgt::service {

enum class admission_policy : int {
  block = 0,              ///< wait (bounded) for a slot
  reject,                 ///< fail fast when the pending bound is hit
  shed_lowest_priority,   ///< evict a strictly-lower-priority job
};

inline const char* admission_policy_name(admission_policy p) noexcept {
  switch (p) {
    case admission_policy::block: return "block";
    case admission_policy::reject: return "reject";
    case admission_policy::shed_lowest_priority: return "shed";
  }
  return "block";
}

/// Parses "block" / "reject" / "shed" (also accepts the long spelling
/// "shed-lowest-priority"). Returns true on success.
inline bool parse_admission_policy(const std::string& s,
                                   admission_policy& out) {
  if (s == "block") {
    out = admission_policy::block;
  } else if (s == "reject") {
    out = admission_policy::reject;
  } else if (s == "shed" || s == "shed-lowest-priority") {
    out = admission_policy::shed_lowest_priority;
  } else {
    return false;
  }
  return true;
}

/// Parses a priority class: "low" (-1) / "normal" (0) / "high" (1), or any
/// integer string. Returns true on success.
inline bool parse_priority(const std::string& s, int& out) {
  if (s == "low") {
    out = -1;
  } else if (s == "normal") {
    out = 0;
  } else if (s == "high") {
    out = 1;
  } else {
    try {
      std::size_t pos = 0;
      const int v = std::stoi(s, &pos);
      if (pos != s.size()) return false;
      out = v;
    } catch (...) {
      return false;
    }
  }
  return true;
}

/// Thrown by engine submits the admission layer refuses. The job never
/// existed from the service's point of view: no job_id was assigned, no
/// memory committed, no gang queued — only the service.rejected counter
/// (and submit-attempt tally) moved.
class admission_rejected : public std::runtime_error {
 public:
  enum class kind : int {
    queue_full = 0,  ///< policy reject: pending bound hit
    timeout,         ///< policy block: no slot freed within the timeout
    memory_budget,   ///< estimate does not fit memory_budget_bytes
    no_shed_victim,  ///< policy shed: no strictly-lower-priority victim
  };

  admission_rejected(kind k, const std::string& what)
      : std::runtime_error(what), kind_(k) {}

  kind why() const noexcept { return kind_; }

  static const char* kind_name(kind k) noexcept {
    switch (k) {
      case kind::queue_full: return "queue_full";
      case kind::timeout: return "timeout";
      case kind::memory_budget: return "memory_budget";
      case kind::no_shed_victim: return "no_shed_victim";
    }
    return "queue_full";
  }

 private:
  kind kind_;
};

}  // namespace asyncgt::service
