// traversal_options — the one per-job configuration surface of the library.
//
// Before this struct, every call site assembled a visitor_queue_config by
// hand and the SEM retry knobs travelled separately: the engine API, the
// async_* free functions, agt_tool, and each bench harness all duplicated
// the "threads / flush-batch / retries / backoff / sinks" plumbing, so
// adding one option meant touching five parsers. traversal_options folds
// all of it into a single struct with a single flag parser
// (`from_flags`): the session API (engine::submit_*), the free-function
// wrappers, and the tools all consume this one type.
//
// It converts implicitly from visitor_queue_config, so pre-existing call
// sites that pass a raw queue config to async_bfs/async_sssp/... keep
// compiling unchanged.
//
// Layering: the I/O retry knobs are carried as plain integers (mirroring
// sem::io_retry_policy's defaults) rather than as the sem type itself, so
// the in-memory algorithm headers do not grow a dependency on the SEM
// layer; SEM call sites build an io_retry_policy via the documented
// correspondence (see agt_tool, bench/ext_concurrent_queries).
#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>

#include "queue/queue_config.hpp"
#include "service/admission.hpp"
#include "util/options.hpp"

namespace asyncgt {

struct traversal_options {
  /// Queue/engine knobs: thread count, pop ordering, flush batch, routing,
  /// and the borrowed telemetry sinks (metrics/trace/sampler).
  visitor_queue_config queue;

  /// Transient-I/O retry budget for semi-external runs; mirrors
  /// sem::io_retry_policy{max_retries, backoff_initial_us} defaults.
  /// Ignored by in-memory runs.
  std::uint32_t io_retries = 4;
  std::uint32_t io_backoff_us = 50;

  /// Semi-external I/O backend selection; carried as the flag string (same
  /// layering rule as the retry knobs — no sem types here). SEM call sites
  /// build an io_backend_config via sem::parse_io_backend_kind(io_backend)
  /// with batch = io_batch. Ignored by in-memory runs.
  std::string io_backend = "sync";
  std::uint32_t io_batch = 8;

  /// Hot-block scheduling knobs (docs/hot_blocks.md), carried as plain
  /// types per the layering rule above; sem::sem_config::from_options
  /// consumes them (together with queue.order == hot) to build the
  /// pressure tracker, cache policy, and prefetch lane. Ignored by
  /// in-memory runs except queue.order, which any run honours.
  ///
  /// cache_policy: block-cache admission/eviction policy, "lru" (the
  /// behavior-identical default) or "pressure" (resists evicting blocks
  /// with queued visitors).
  std::string cache_policy = "lru";
  /// cache_fraction: simulated page-cache size as a fraction of the graph
  /// file's blocks. Negative = not specified on the command line; each
  /// tool/bench keeps its own default (agt_tool: 0.5 in demo mode, 0 with
  /// explicit --sem; table4/table5: their calibrated per-table values).
  double cache_fraction = -1.0;
  /// prefetch_hot: async readahead of hot non-resident blocks on the
  /// coalescing/uring backends (ignored on sync).
  bool prefetch_hot = false;
  /// hot_threshold: pending-visitor count at which a block counts as hot
  /// (ordering band, prefetch trigger, eviction resistance).
  std::uint32_t hot_threshold = 4;

  /// Frontier-adaptive hybrid traversal (docs/hybrid_traversal.md). When
  /// set, BFS/CC drivers that support it flip from asynchronous top-down
  /// pushes into synchronous bottom-up sweeps over the unvisited vertices'
  /// in-edges once the frontier grows dense, then back. Requires the graph
  /// to carry a reverse view (csr_graph::ensure_reverse / sem_csr::
  /// open_reverse). The alpha/beta thresholds follow Beamer et al.'s
  /// direction-optimizing formulation: go bottom-up when frontier_edges *
  /// alpha > unvisited_edges; stay while frontier_vertices * beta > n.
  bool hybrid = false;
  double hybrid_alpha = 14.0;
  double hybrid_beta = 24.0;

  /// Robustness knobs (docs/robustness.md). All enforced by the service
  /// engine's watchdog/admission layer; the free-function wrappers route
  /// through the default engine, so they apply there too.
  ///
  /// deadline_ms: wall-clock budget from submit; 0 = none. A job past its
  /// deadline is force-cancelled through the abort broadcast and completes
  /// with traversal_aborted reason deadline_exceeded.
  std::uint32_t deadline_ms = 0;
  /// stall_grace_ms: once the job holds a gang, a frozen progress epoch
  /// (metric_scope::progress_epoch) for this long marks it stalled and
  /// force-cancels it (reason stalled); 0 = stall detection off.
  std::uint32_t stall_grace_ms = 0;
  /// Priority class for admission control (low=-1 / normal=0 / high=1, any
  /// int). Under the shed policy, an arriving job may evict a running job
  /// of strictly lower priority.
  int priority = 0;
  /// Declared resident-memory estimate for the engine's
  /// memory_budget_bytes guardrail; 0 = unaccounted. Callers typically pass
  /// graph.resident_bytes() (+ cache share for SEM runs).
  std::uint64_t memory_estimate_bytes = 0;

  traversal_options() = default;
  /// Implicit on purpose: every pre-service call site passes a
  /// visitor_queue_config and must keep compiling.
  traversal_options(const visitor_queue_config& cfg) : queue(cfg) {}

  traversal_options& with_threads(std::size_t n) {
    queue.num_threads = n;
    return *this;
  }
  traversal_options& with_flush_batch(std::size_t b) {
    queue.flush_batch = b;
    return *this;
  }
  traversal_options& with_metrics(telemetry::metrics_registry* m) {
    queue.metrics = m;
    return *this;
  }
  traversal_options& with_deadline_ms(std::uint32_t ms) {
    deadline_ms = ms;
    return *this;
  }
  traversal_options& with_stall_grace_ms(std::uint32_t ms) {
    stall_grace_ms = ms;
    return *this;
  }
  traversal_options& with_priority(int p) {
    priority = p;
    return *this;
  }
  traversal_options& with_memory_estimate(std::uint64_t bytes) {
    memory_estimate_bytes = bytes;
    return *this;
  }

  void validate() const { queue.validate(); }

  /// The single flag parser shared by agt_tool and the bench harnesses:
  ///   --threads=N        worker lanes            (default 16)
  ///   --flush-batch=N    delivery batch          (default 64 IM, 1 SEM —
  ///                      batching delay fragments the semi-sorted visit
  ///                      order the SEM block cache depends on, tuning.md)
  ///   --io-retries=N     transient-errno budget  (default 4)
  ///   --io-backoff-us=N  initial retry backoff   (default 50)
  ///   --io-backend=NAME  SEM read path: sync | coalescing | uring
  ///                      (default sync; docs/io_backends.md)
  ///   --io-batch=N       coalescing/uring batch depth (default 8)
  ///   --ordering=NAME    pop order: priority | fifo | lifo | hot
  ///                      (default priority; hot = pending-pressure bands,
  ///                      docs/hot_blocks.md)
  ///   --cache-policy=P   block-cache policy: lru | pressure (default lru)
  ///   --cache-fraction=F page-cache size as a fraction of the file's
  ///                      blocks (default: tool/bench-specific)
  ///   --prefetch-hot     readahead hot non-resident blocks (coalescing/
  ///                      uring backends only; default off)
  ///   --hot-threshold=N  pending visitors that make a block hot (default 4)
  ///   --hybrid           frontier-adaptive direction switching (default
  ///                      off; needs a reverse view on the graph)
  ///   --hybrid-alpha=X   top-down -> bottom-up threshold (default 14)
  ///   --hybrid-beta=X    bottom-up -> top-down threshold (default 24)
  ///   --deadline-ms=N    per-job wall-clock budget (default 0 = none)
  ///   --stall-grace-ms=N no-progress window before a running job is
  ///                      declared stalled (default 0 = off)
  ///   --priority=P       admission priority: low | normal | high | int
  /// `sem_mode` selects the SEM defaults (flush batch, secondary sort).
  static traversal_options from_flags(const options& opt,
                                      bool sem_mode = false) {
    traversal_options o;
    o.queue.num_threads =
        static_cast<std::size_t>(opt.get_int("threads", 16));
    o.queue.flush_batch = static_cast<std::size_t>(
        opt.get_int("flush-batch", sem_mode ? 1 : 64));
    o.queue.secondary_vertex_sort = sem_mode;
    o.io_retries = static_cast<std::uint32_t>(
        opt.get_int("io-retries", static_cast<std::int64_t>(o.io_retries)));
    o.io_backoff_us = static_cast<std::uint32_t>(opt.get_int(
        "io-backoff-us", static_cast<std::int64_t>(o.io_backoff_us)));
    o.io_backend = opt.get_string("io-backend", o.io_backend);
    o.io_batch = static_cast<std::uint32_t>(
        opt.get_int("io-batch", static_cast<std::int64_t>(o.io_batch)));
    const std::string ordering = opt.get_string("ordering", "priority");
    if (ordering == "priority") {
      o.queue.order = queue_order::priority;
    } else if (ordering == "fifo") {
      o.queue.order = queue_order::fifo;
    } else if (ordering == "lifo") {
      o.queue.order = queue_order::lifo;
    } else if (ordering == "hot") {
      o.queue.order = queue_order::hot;
    } else {
      throw std::invalid_argument("bad --ordering value: " + ordering +
                                  " (expected priority|fifo|lifo|hot)");
    }
    o.cache_policy = opt.get_string("cache-policy", o.cache_policy);
    if (o.cache_policy != "lru" && o.cache_policy != "pressure") {
      throw std::invalid_argument("bad --cache-policy value: " +
                                  o.cache_policy +
                                  " (expected lru|pressure)");
    }
    o.cache_fraction = opt.get_double("cache-fraction", o.cache_fraction);
    o.prefetch_hot = opt.get_bool("prefetch-hot", false);
    o.hot_threshold = static_cast<std::uint32_t>(opt.get_int(
        "hot-threshold", static_cast<std::int64_t>(o.hot_threshold)));
    if (o.hot_threshold == 0) {
      throw std::invalid_argument("--hot-threshold must be >= 1");
    }
    o.hybrid = opt.get_bool("hybrid", false);
    o.hybrid_alpha = opt.get_double("hybrid-alpha", o.hybrid_alpha);
    o.hybrid_beta = opt.get_double("hybrid-beta", o.hybrid_beta);
    o.deadline_ms = static_cast<std::uint32_t>(
        opt.get_int("deadline-ms", static_cast<std::int64_t>(o.deadline_ms)));
    o.stall_grace_ms = static_cast<std::uint32_t>(opt.get_int(
        "stall-grace-ms", static_cast<std::int64_t>(o.stall_grace_ms)));
    const std::string prio = opt.get_string("priority", "");
    if (!prio.empty() && !service::parse_priority(prio, o.priority)) {
      throw std::invalid_argument("bad --priority value: " + prio);
    }
    return o;
  }
};

}  // namespace asyncgt
