// Persistent worker pool for the traversal service (docs/service_api.md).
//
// The paper's engine oversubscribes aggressively — up to 512 threads on 16
// cores — but the seed spawned and joined that whole complement for every
// single traversal. A production service answering a stream of queries pays
// that thread-lifecycle cost (plus cold stacks and cold scheduler state) per
// query. This pool inverts the lifecycle: threads are spawned once, parked
// on a condition variable between jobs, and a traversal run becomes an
// acquire/release of `num_threads` pooled workers instead of a spawn/join.
//
// Scheduling model: a *gang* is a block of `count` work items body(0),
// body(1), ..., body(count-1) — one item per traversal worker lane. Gangs
// are dispatched strictly FIFO at item granularity: no item of gang k+1
// starts before every item of gang k has started. Combined with
// `ensure_threads(count)` at submit time (the pool always holds at least as
// many threads as the widest gang), this guarantees progress for gangs whose
// items block on each other — a traversal worker parked on its mailbox
// waiting for a sibling lane can rely on that sibling's item being
// dispatched before any younger job's items. Multiple gangs run
// concurrently whenever the pool has threads to spare; when it does not,
// they serialize in submission order. This FIFO block dispatch *is* the
// service's job scheduler.
//
// The pool knows nothing about visitors, queues, or telemetry sinks — it
// sits below the queue layer (traversal_engine dispatches its worker bodies
// here when visitor_queue_config::pool is set) and above nothing. The
// lifetime spawn counter (`threads_spawned`) is what the service layer
// exports as the `service.pool.spawned_threads` metric: a warm pool serving
// back-to-back equal-width jobs must show the counter frozen at the pool
// width.
//
// Shutdown drains: the destructor stops accepting submissions, lets the
// workers finish every already-queued gang (undispatched items of a live
// gang must still run or sibling lanes would park forever), then joins.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

namespace asyncgt::service {

class worker_pool {
 public:
  /// One submitted block of work items. Created by submit(); opaque to
  /// callers except as a ticket for wait().
  class gang {
   public:
    gang() = default;
    gang(const gang&) = delete;
    gang& operator=(const gang&) = delete;

   private:
    friend class worker_pool;
    std::function<void(std::size_t)> body;  // invoked concurrently per slot
    std::function<void()> on_complete;      // run once, by the last finisher
    std::size_t count = 0;
    std::size_t next = 0;    // next slot to dispatch      (guarded by mu_)
    std::size_t active = 0;  // dispatched, not finished   (guarded by mu_)
    bool done = false;       // on_complete ran            (guarded by mu_)
  };
  using ticket = std::shared_ptr<gang>;

  /// `initial_threads` pre-warms the pool; submit() grows it on demand, so
  /// 0 is a valid start for callers that do not know their widest job yet.
  /// Pre-size to the widest expected job to guarantee zero spawns at
  /// submit time (the warm-engine property the service tests assert).
  explicit worker_pool(std::size_t initial_threads = 0) {
    ensure_threads(initial_threads);
  }

  worker_pool(const worker_pool&) = delete;
  worker_pool& operator=(const worker_pool&) = delete;

  ~worker_pool() {
    {
      std::lock_guard lk(mu_);
      stop_ = true;
    }
    work_cv_.notify_all();
    for (auto& t : threads_) t.join();
  }

  /// Enqueues a gang of `count` items as one contiguous FIFO block and
  /// returns immediately. `body(slot)` is invoked once per slot in
  /// [0, count), concurrently from up to `count` pool threads — the callable
  /// is shared, so it must be safe to invoke concurrently (the traversal
  /// engine's worker bodies are, by construction: each slot touches only its
  /// own lane). `on_complete`, if given, runs exactly once on the pool
  /// thread that finishes the gang's last item, before wait() returns.
  ///
  /// Grows the pool to at least `count` threads first — the FIFO progress
  /// guarantee (header comment) requires it.
  ticket submit(std::size_t count, std::function<void(std::size_t)> body,
                std::function<void()> on_complete = nullptr) {
    if (count == 0) {
      throw std::invalid_argument("worker_pool: gang needs at least one slot");
    }
    ensure_threads(count);
    auto g = std::make_shared<gang>();
    g->body = std::move(body);
    g->on_complete = std::move(on_complete);
    g->count = count;
    {
      std::lock_guard lk(mu_);
      if (stop_) {
        throw std::runtime_error("worker_pool: submit after shutdown");
      }
      queue_.push_back(g);
    }
    work_cv_.notify_all();
    return g;
  }

  /// Blocks until the gang's every item finished and its on_complete (if
  /// any) returned. This is the "release" half of a blocking traversal run.
  void wait(const ticket& t) {
    std::unique_lock lk(mu_);
    done_cv_.wait(lk, [&] { return t->done; });
  }

  /// Grows the pool to at least `n` threads (never shrinks). Each growth
  /// increments the lifetime spawn counter — a warm pool shows this frozen.
  void ensure_threads(std::size_t n) {
    std::lock_guard lk(mu_);
    if (stop_) {
      throw std::runtime_error("worker_pool: ensure_threads after shutdown");
    }
    while (threads_.size() < n) {
      threads_.emplace_back([this] { worker_main(); });
      spawned_.fetch_add(1, std::memory_order_relaxed);
    }
  }

  std::size_t size() const {
    std::lock_guard lk(mu_);
    return threads_.size();
  }

  /// Lifetime count of OS threads this pool ever spawned. The service layer
  /// exports this as the `service.pool.spawned_threads` gauge; the
  /// warm-engine acceptance test pins it across back-to-back jobs.
  std::uint64_t threads_spawned() const noexcept {
    return spawned_.load(std::memory_order_relaxed);
  }

  /// Lifetime count of completed gangs (≈ traversal runs served).
  std::uint64_t gangs_completed() const noexcept {
    return completed_.load(std::memory_order_relaxed);
  }

  /// Gangs with undispatched items still queued (instantaneous). The
  /// overload tests use gangs_completed()/queued_gangs() to assert no gang
  /// leaked: a drained engine must show zero queued gangs.
  std::size_t queued_gangs() const {
    std::lock_guard lk(mu_);
    return queue_.size();
  }

 private:
  void worker_main() {
    std::unique_lock lk(mu_);
    for (;;) {
      work_cv_.wait(lk, [&] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stop_) return;
        continue;
      }
      // FIFO block dispatch: always the oldest gang with undispatched
      // items — it sits at the front because fully-dispatched gangs are
      // popped eagerly.
      ticket g = queue_.front();
      const std::size_t slot = g->next++;
      ++g->active;
      if (g->next == g->count) queue_.pop_front();
      lk.unlock();
      g->body(slot);
      lk.lock();
      --g->active;
      if (g->next == g->count && g->active == 0) {
        // Last item of the gang: completion runs outside the lock (it may
        // finalize stats, fulfill a promise, take the failure latch), then
        // the done broadcast under the lock so wait()'s predicate cannot
        // miss it.
        lk.unlock();
        if (g->on_complete) g->on_complete();
        lk.lock();
        g->done = true;
        completed_.fetch_add(1, std::memory_order_relaxed);
        done_cv_.notify_all();
      }
    }
  }

  mutable std::mutex mu_;
  std::condition_variable work_cv_;  // workers park here between gangs
  std::condition_variable done_cv_;  // wait() parks here
  std::deque<ticket> queue_;         // gangs with undispatched items, FIFO
  std::vector<std::thread> threads_;
  bool stop_ = false;
  std::atomic<std::uint64_t> spawned_{0};
  std::atomic<std::uint64_t> completed_{0};
};

}  // namespace asyncgt::service
