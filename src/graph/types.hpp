// Fundamental graph types shared across the library.
//
// Vertex ids are a template parameter everywhere (the paper: "our
// implementation can be configured to use 32 or 64-bit integers"); these
// aliases name the two supported configurations.
#pragma once

#include <cstdint>
#include <limits>

namespace asyncgt {

using vertex32 = std::uint32_t;
using vertex64 = std::uint64_t;
using weight_t = std::uint32_t;

/// Sentinel for "no vertex" / "unvisited": the all-ones id, which the
/// builders never assign (they reject graphs that large).
template <typename VertexId>
inline constexpr VertexId invalid_vertex = std::numeric_limits<VertexId>::max();

/// Sentinel for an infinite distance / unset component id, matching the
/// paper's arrays "initialized to infinity".
template <typename Dist>
inline constexpr Dist infinite_distance = std::numeric_limits<Dist>::max();

/// A weighted directed edge used during construction.
template <typename VertexId>
struct edge {
  VertexId src;
  VertexId dst;
  weight_t weight = 1;

  friend bool operator==(const edge&, const edge&) = default;
};

}  // namespace asyncgt
