// Binary CSR file format (".agt" files).
//
// Layout (little-endian):
//   header      : magic "AGT1", u32 flags (bit0 = weighted, bit1 = 64-bit
//                 ids), u64 num_vertices, u64 num_edges
//   offsets     : (num_vertices+1) * u64
//   targets     : num_edges * sizeof(VertexId)
//   weights     : num_edges * u32 when weighted
//
// The same layout is what sem::sem_csr maps from disk — the offsets section
// is loaded into memory and the targets/weights sections are pread() on
// demand — so a graph written here can be traversed either fully in-memory
// or semi-externally without conversion.
//
// Reverse edge files. A graph may carry an on-disk reverse view: a second,
// ordinary .agt file at reverse_path_for(path) ("<path>.rev") holding the
// transpose (its out-edges are the main graph's in-edges). write_graph_with_
// reverse emits both; sem_csr::open_reverse serves the reverse file through
// the same io_backend / block_cache / block_heat seam as the main one, and
// the in-memory readers rehydrate it via read_graph_with_reverse without
// recomputing the transpose.
#pragma once

#include <cstdint>
#include <string>

#include "graph/csr_graph.hpp"

namespace asyncgt {

inline constexpr std::uint32_t agt_magic = 0x31544741;  // "AGT1"

struct agt_header {
  std::uint32_t magic = agt_magic;
  std::uint32_t flags = 0;
  std::uint64_t num_vertices = 0;
  std::uint64_t num_edges = 0;

  bool weighted() const noexcept { return (flags & 1u) != 0; }
  bool wide_ids() const noexcept { return (flags & 2u) != 0; }
};

inline constexpr std::uint64_t agt_offsets_pos = sizeof(agt_header);

template <typename VertexId>
std::uint64_t agt_targets_pos(std::uint64_t num_vertices) {
  return agt_offsets_pos + (num_vertices + 1) * sizeof(std::uint64_t);
}

template <typename VertexId>
std::uint64_t agt_weights_pos(std::uint64_t num_vertices,
                              std::uint64_t num_edges) {
  return agt_targets_pos<VertexId>(num_vertices) +
         num_edges * sizeof(VertexId);
}

/// Writes `g` to `path`. Throws std::runtime_error on I/O failure.
void write_graph(const std::string& path, const csr_graph<vertex32>& g);
void write_graph(const std::string& path, const csr_graph<vertex64>& g);

/// Reads only the header (for format dispatch / validation).
agt_header read_graph_header(const std::string& path);

/// Loads a full in-memory CSR. Throws on bad magic or id-width mismatch.
csr_graph<vertex32> read_graph32(const std::string& path);
csr_graph<vertex64> read_graph64(const std::string& path);

/// On-disk location of `path`'s reverse edge file (the "<path>.rev"
/// convention shared by the writers, the readers, and sem_csr).
std::string reverse_path_for(const std::string& path);

/// True iff `path` has a companion reverse edge file on disk.
bool has_reverse_file(const std::string& path);

/// Writes `g` to `path` and its transpose to reverse_path_for(path). The
/// reverse file is an ordinary .agt (readable on its own); g's in-memory
/// reverse view is reused when present, else a transient transpose is built.
void write_graph_with_reverse(const std::string& path,
                              const csr_graph<vertex32>& g);
void write_graph_with_reverse(const std::string& path,
                              const csr_graph<vertex64>& g);

/// Loads a full in-memory CSR and, when reverse_path_for(path) exists,
/// adopts it as the reverse view (validated against the forward shape).
csr_graph<vertex32> read_graph32_with_reverse(const std::string& path);
csr_graph<vertex64> read_graph64_with_reverse(const std::string& path);

}  // namespace asyncgt
