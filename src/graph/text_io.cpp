#include "graph/text_io.hpp"

#include <algorithm>
#include <cerrno>
#include <charconv>
#include <cstdio>
#include <cstring>
#include <memory>
#include <stdexcept>

namespace asyncgt {
namespace {

struct file_closer {
  void operator()(std::FILE* f) const noexcept {
    if (f != nullptr) std::fclose(f);
  }
};
using file_ptr = std::unique_ptr<std::FILE, file_closer>;

/// Parses one unsigned integer starting at *p (skipping leading spaces);
/// advances *p past it. Returns false if no digits found.
bool parse_u64(const char** p, const char* end, std::uint64_t& out) {
  while (*p != end && (**p == ' ' || **p == '\t')) ++*p;
  const auto [next, ec] = std::from_chars(*p, end, out);
  if (ec != std::errc{} || next == *p) return false;
  *p = next;
  return true;
}

}  // namespace

std::vector<edge<vertex32>> read_edge_list(const std::string& path,
                                           text_io_stats* stats) {
  file_ptr f(std::fopen(path.c_str(), "rb"));
  if (!f) {
    throw std::runtime_error("read_edge_list: cannot open '" + path +
                             "': " + std::strerror(errno));
  }
  std::vector<edge<vertex32>> edges;
  text_io_stats local;
  char line[512];
  std::uint64_t lineno = 0;
  while (std::fgets(line, sizeof(line), f.get()) != nullptr) {
    ++lineno;
    ++local.lines;
    const char* p = line;
    const char* end = line + std::strlen(line);
    while (p != end && (*p == ' ' || *p == '\t')) ++p;
    if (p == end || *p == '\n' || *p == '\r') continue;  // blank
    if (*p == '#' || *p == '%') {
      ++local.comments;
      continue;
    }
    std::uint64_t src = 0, dst = 0, weight = 1;
    if (!parse_u64(&p, end, src) || !parse_u64(&p, end, dst)) {
      throw std::runtime_error("read_edge_list: malformed line " +
                               std::to_string(lineno) + " in '" + path + "'");
    }
    std::uint64_t w = 0;
    if (parse_u64(&p, end, w)) {
      weight = w;
      local.any_weights = true;
    }
    if (src > invalid_vertex<vertex32> - 1 ||
        dst > invalid_vertex<vertex32> - 1) {
      throw std::runtime_error("read_edge_list: vertex id exceeds 32-bit "
                               "space at line " +
                               std::to_string(lineno));
    }
    edges.push_back({static_cast<vertex32>(src), static_cast<vertex32>(dst),
                     static_cast<weight_t>(weight)});
    ++local.edges;
    local.max_vertex_id = std::max({local.max_vertex_id, src, dst});
  }
  if (stats != nullptr) *stats = local;
  return edges;
}

void write_edge_list(const std::string& path, const csr_graph<vertex32>& g) {
  file_ptr f(std::fopen(path.c_str(), "wb"));
  if (!f) {
    throw std::runtime_error("write_edge_list: cannot open '" + path +
                             "': " + std::strerror(errno));
  }
  std::fprintf(f.get(), "# asyncgt edge list: %llu vertices, %llu edges%s\n",
               static_cast<unsigned long long>(g.num_vertices()),
               static_cast<unsigned long long>(g.num_edges()),
               g.is_weighted() ? ", weighted" : "");
  for (vertex32 v = 0; v < g.num_vertices(); ++v) {
    g.for_each_out_edge(v, [&](vertex32 t, weight_t w) {
      if (g.is_weighted()) {
        std::fprintf(f.get(), "%u %u %u\n", v, t, w);
      } else {
        std::fprintf(f.get(), "%u %u\n", v, t);
      }
    });
  }
  if (std::fflush(f.get()) != 0) {
    throw std::runtime_error("write_edge_list: flush failed for '" + path +
                             "'");
  }
}

}  // namespace asyncgt
