// Edge-delta overlay on an immutable CSR (dynamic graphs, PR 10).
//
// Everything below src/graph is a static snapshot: csr_graph and
// sem::sem_csr never change after construction, which is exactly what makes
// them safe to share between concurrent jobs. Real traffic mutates the
// graph, so this header adds the mutation layer *above* the snapshot
// instead of inside it: a delta_overlay records insert/delete batches in an
// epoch-versioned per-vertex patch index, and an overlay_view pinned at an
// epoch models the same GraphStorage concept as the base —
// for_each_out_edge / in-edge iteration walk base ∪ inserts − deletes
// without the base file or arrays ever being rewritten.
//
// Semantics. The overlay is a SET over (src, dst) pairs:
//   * insert(u, v, w) is a no-op when (u, v) is currently present (base or
//     overlay) — inserting an existing edge is idempotent;
//   * erase(u, v) hides every base copy of (u, v) (graphs built with
//     remove_duplicates keep one, but parallel copies all go) or removes
//     the live overlay copy; erasing an absent edge is a no-op.
// Each pair keeps its full event history (insert/delete, ascending epochs),
// so a reader pinned at epoch e reconstructs exactly the edge set as of e
// even while later batches land — delete→insert→delete sequences included.
//
// Concurrency. apply() serializes writers internally; readers never block
// writers and vice versa beyond a sharded shared_mutex on the patch index.
// A vertex with no patch entries is detected by a lock-free atomic flag and
// iterates the base directly — the common case pays one acquire-load per
// vertex. Queries pin their epoch once at view creation (snapshot()), so a
// traversal in flight across a concurrent apply() sees one consistent edge
// set throughout. rebase() (compaction) is the only operation that must not
// run concurrently with readers, the same "not while readers are in flight"
// contract as sem_csr::set_io_backend.
//
// Compaction. materialize()/compact() rewrite the overlay into a clean
// csr_graph with (dst, weight)-sorted adjacency — byte-identical, once
// written by graph_io, to what sem::compact_to_file (sem_compaction.hpp)
// streams through the ooc_builder for on-disk graphs. After swapping the
// clean base in, rebase() drops every patch and the overlay starts a new
// epoch lineage over it. docs/dynamic_graphs.md walks the whole lifecycle.
#pragma once

#include <algorithm>
#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <stdexcept>
#include <unordered_map>
#include <vector>

#include "graph/builder.hpp"
#include "graph/csr_graph.hpp"
#include "graph/types.hpp"

namespace asyncgt {

/// One batch of edge mutations, applied atomically as one epoch.
template <typename VertexId>
struct delta_batch {
  std::vector<edge<VertexId>> inserts;
  std::vector<std::pair<VertexId, VertexId>> deletes;

  delta_batch& insert(VertexId src, VertexId dst, weight_t weight = 1) {
    inserts.push_back({src, dst, weight});
    return *this;
  }
  delta_batch& erase(VertexId src, VertexId dst) {
    deletes.emplace_back(src, dst);
    return *this;
  }
  /// Undirected helpers: mutate both directions, keeping a symmetric base
  /// symmetric (the CC precondition).
  delta_batch& insert_undirected(VertexId u, VertexId v, weight_t w = 1) {
    insert(u, v, w);
    if (u != v) insert(v, u, w);
    return *this;
  }
  delta_batch& erase_undirected(VertexId u, VertexId v) {
    erase(u, v);
    if (u != v) erase(v, u);
    return *this;
  }

  bool empty() const noexcept { return inserts.empty() && deletes.empty(); }
  std::size_t size() const noexcept {
    return inserts.size() + deletes.size();
  }
};

/// Live-size / lifetime accounting of one overlay (the telemetry gauges
/// overlay.live_inserts / overlay.live_deletes / overlay.epoch mirror the
/// first three fields). From counters() the applied_* / noop_* fields are
/// lifetime totals; from apply() they are scoped to the returned batch.
struct overlay_counters {
  std::uint64_t live_inserts = 0;   ///< overlay copies visible at the head
  std::uint64_t live_deletes = 0;   ///< base copies hidden at the head
  std::uint64_t epoch = 0;          ///< last fully applied batch
  std::uint64_t applied_inserts = 0;  ///< inserts that changed the edge set
  std::uint64_t applied_deletes = 0;  ///< deletes that changed the edge set
  std::uint64_t noop_inserts = 0;   ///< idempotent duplicate inserts
  std::uint64_t noop_deletes = 0;   ///< idempotent double deletes
  std::uint64_t patched_pairs = 0;  ///< (src,dst) pairs holding any history
};

template <typename Graph>
class overlay_view;

template <typename Graph>
class delta_overlay {
 public:
  using vertex_id = typename Graph::vertex_id;
  using view_type = overlay_view<Graph>;

  explicit delta_overlay(const Graph& base)
      : base_(&base),
        n_(base.num_vertices()),
        out_flag_(std::make_unique<std::atomic<std::uint8_t>[]>(n_)),
        in_flag_(std::make_unique<std::atomic<std::uint8_t>[]>(n_)) {
    for (std::uint64_t v = 0; v < n_; ++v) {
      out_flag_[v].store(0, std::memory_order_relaxed);
      in_flag_[v].store(0, std::memory_order_relaxed);
    }
    head_edges_ = base.num_edges();
  }

  delta_overlay(const delta_overlay&) = delete;
  delta_overlay& operator=(const delta_overlay&) = delete;

  const Graph& base() const noexcept { return *base_; }
  std::uint64_t num_vertices() const noexcept { return n_; }

  /// Epoch of the last fully applied batch (0 = pristine base). Acquire:
  /// a reader that pins this epoch sees every patch the batch wrote.
  std::uint64_t epoch() const noexcept {
    return epoch_.load(std::memory_order_acquire);
  }

  /// Edge count of the head epoch's edge set.
  std::uint64_t num_edges() const {
    std::lock_guard lk(apply_mu_);
    return head_edges_;
  }

  overlay_counters counters() const {
    std::lock_guard lk(apply_mu_);
    overlay_counters c = counters_;
    c.epoch = epoch_.load(std::memory_order_relaxed);
    return c;
  }

  /// True once any live overlay copy carries a weight != 1 — an unweighted
  /// base can become weighted through inserts.
  bool overlay_weighted() const noexcept {
    return overlay_weighted_.load(std::memory_order_acquire);
  }

  /// Applies one batch as the next epoch. Deletes run before inserts (a
  /// batch that deletes and re-inserts the same pair nets to the re-insert,
  /// mirroring set semantics); the epoch publishes only after every patch
  /// landed, so concurrent readers pin either the previous epoch's complete
  /// edge set or this one's — never a partial batch. Writers serialize
  /// internally. Throws std::out_of_range on an endpoint >= num_vertices
  /// before any mutation of that batch lands.
  ///
  /// The returned counters are scoped to THIS batch: applied_* / noop_*
  /// count the batch's own operations, while live_* / patched_pairs report
  /// the overlay's state after the batch. Lifetime totals via counters().
  overlay_counters apply(const delta_batch<vertex_id>& batch) {
    std::lock_guard lk(apply_mu_);
    for (const auto& e : batch.inserts) {
      if (e.src >= n_ || e.dst >= n_) {
        throw std::out_of_range("delta_overlay: insert endpoint out of range");
      }
    }
    for (const auto& [u, v] : batch.deletes) {
      if (u >= n_ || v >= n_) {
        throw std::out_of_range("delta_overlay: delete endpoint out of range");
      }
    }
    const std::uint32_t e =
        static_cast<std::uint32_t>(epoch_.load(std::memory_order_relaxed)) + 1;
    const overlay_counters before = counters_;
    for (const auto& [u, v] : batch.deletes) apply_delete(u, v, e);
    for (const auto& ins : batch.inserts) {
      apply_insert(ins.src, ins.dst, ins.weight, e);
    }
    head_edges_ = base_->num_edges() + counters_.live_inserts -
                  counters_.live_deletes;
    edges_at_epoch_.push_back(head_edges_);
    epoch_.store(e, std::memory_order_release);
    overlay_counters c = counters_;
    c.applied_inserts -= before.applied_inserts;
    c.applied_deletes -= before.applied_deletes;
    c.noop_inserts -= before.noop_inserts;
    c.noop_deletes -= before.noop_deletes;
    c.epoch = e;
    return c;
  }

  /// A GraphStorage view pinned at the head epoch. The view borrows the
  /// overlay; it stays valid across later apply() calls (it keeps seeing
  /// its pinned edge set) but not across rebase().
  view_type snapshot() const {
    std::lock_guard lk(apply_mu_);
    return view_type(this,
                     static_cast<std::uint32_t>(
                         epoch_.load(std::memory_order_relaxed)),
                     head_edges_);
  }

  /// A view pinned at a historical epoch (<= epoch()).
  view_type snapshot_at(std::uint64_t epoch) const {
    std::lock_guard lk(apply_mu_);
    const std::uint64_t head = epoch_.load(std::memory_order_relaxed);
    if (epoch > head) {
      throw std::out_of_range("delta_overlay: epoch not yet applied");
    }
    const std::uint64_t edges =
        epoch == 0 ? base_->num_edges() : edges_at_epoch_[epoch - 1];
    return view_type(this, static_cast<std::uint32_t>(epoch), edges);
  }

  /// The edge set at `epoch` as a plain edge list, adjacency-ordered like
  /// the canonical compaction output: sorted by (src, dst, weight).
  std::vector<edge<vertex_id>> materialize(std::uint64_t epoch) const {
    std::vector<edge<vertex_id>> out;
    out.reserve(base_->num_edges());
    const auto e = static_cast<std::uint32_t>(epoch);
    for (std::uint64_t v = 0; v < n_; ++v) {
      for_each_out_edge_at(static_cast<vertex_id>(v), e,
                           [&](vertex_id t, weight_t w) {
                             out.push_back(
                                 {static_cast<vertex_id>(v), t, w});
                           });
    }
    std::sort(out.begin(), out.end(),
              [](const edge<vertex_id>& a, const edge<vertex_id>& b) {
                if (a.src != b.src) return a.src < b.src;
                if (a.dst != b.dst) return a.dst < b.dst;
                return a.weight < b.weight;
              });
    return out;
  }

  /// In-memory compaction: the head epoch's edge set as a clean csr_graph
  /// with canonical (dst, weight)-sorted adjacency — exactly the graph
  /// write_graph would serialize, and byte-identical (via graph_io) to what
  /// sem::compact_to_file streams through the ooc_builder. Pass
  /// build_reverse=true to also carry the transpose (the repair drivers'
  /// reverse-view precondition).
  csr_graph<vertex_id> compact(bool build_reverse = false) const {
    build_options opt;
    opt.remove_self_loops = false;   // the overlay IS the edge set;
    opt.remove_duplicates = false;   // nothing here may be dropped
    opt.sort_adjacency = true;
    opt.build_reverse = build_reverse;
    return build_csr<vertex_id>(n_, materialize(epoch()), opt);
  }

  /// Swaps in a freshly compacted base and drops every patch. The new base
  /// must hold the head epoch's edge set (compact() / compact_to_file
  /// output). Epochs keep counting — the lineage survives compaction, only
  /// the patch index resets. NOT safe concurrently with readers or apply();
  /// quiesce queries first (docs/dynamic_graphs.md).
  void rebase(const Graph& new_base) {
    std::lock_guard lk(apply_mu_);
    if (new_base.num_vertices() != n_) {
      throw std::invalid_argument(
          "delta_overlay: rebase vertex count mismatch");
    }
    base_ = &new_base;
    for (auto& s : shards_) {
      std::unique_lock slk(s.mu);
      s.out.clear();
      s.in.clear();
    }
    for (std::uint64_t v = 0; v < n_; ++v) {
      out_flag_[v].store(0, std::memory_order_relaxed);
      in_flag_[v].store(0, std::memory_order_relaxed);
    }
    counters_.live_inserts = 0;
    counters_.live_deletes = 0;
    counters_.patched_pairs = 0;
    head_edges_ = base_->num_edges();
    // Historical epochs predate the new base; only the head stays
    // addressable. snapshot_at() of older epochs would read cleared
    // patches, so forget them.
    edges_at_epoch_.assign(epoch_.load(std::memory_order_relaxed),
                           head_edges_);
    compacted_epoch_ = epoch_.load(std::memory_order_relaxed);
  }

  /// Epoch at which the current base was rebased in (0 = original base).
  std::uint64_t compacted_epoch() const noexcept {
    std::lock_guard lk(apply_mu_);
    return compacted_epoch_;
  }

  /// Patch-index heap footprint estimate, for resident_bytes accounting.
  std::uint64_t overlay_bytes() const {
    std::lock_guard lk(apply_mu_);
    return counters_.patched_pairs *
           (2 * (sizeof(pair_patch) + 2 * sizeof(event)));
  }

  // ---- Pinned-epoch iteration (the overlay_view plumbing) ----

  std::uint64_t out_degree_at(vertex_id v, std::uint32_t e) const {
    if (out_flag_[v].load(std::memory_order_acquire) == 0) {
      return base_->out_degree(v);
    }
    std::int64_t d = static_cast<std::int64_t>(base_->out_degree(v));
    visit_patches(shard_of(v).out, v, e,
                  [&](const pair_patch& p, bool live_overlay) {
                    d -= static_cast<std::int64_t>(p.base_copies);
                    if (live_overlay) ++d;
                  });
    return static_cast<std::uint64_t>(d);
  }

  std::uint64_t in_degree_at(vertex_id v, std::uint32_t e) const {
    if (in_flag_[v].load(std::memory_order_acquire) == 0) {
      return base_->in_degree(v);
    }
    std::int64_t d = static_cast<std::int64_t>(base_->in_degree(v));
    visit_patches(shard_of(v).in, v, e,
                  [&](const pair_patch& p, bool live_overlay) {
                    d -= static_cast<std::int64_t>(p.base_copies);
                    if (live_overlay) ++d;
                  });
    return static_cast<std::uint64_t>(d);
  }

  template <typename F>
  void for_each_out_edge_at(vertex_id v, std::uint32_t e, F&& f) const {
    // Unpatched fast path: one acquire-load, then the base untouched. The
    // flag is only ever set (never cleared outside rebase), so a stale 0
    // can only be read for patches from an epoch > the pinned one — which
    // the filter would discard anyway.
    if (out_flag_[v].load(std::memory_order_acquire) == 0) {
      base_->for_each_out_edge(v, std::forward<F>(f));
      return;
    }
    merged_iterate(
        shard_of(v).out, v, e,
        [&](auto&& g) { base_->for_each_out_edge(v, g); },
        std::forward<F>(f));
  }

  template <typename F>
  void for_each_in_edge_at(vertex_id v, std::uint32_t e, F&& f) const {
    if (in_flag_[v].load(std::memory_order_acquire) == 0) {
      base_->for_each_in_edge(v, std::forward<F>(f));
      return;
    }
    merged_iterate(
        shard_of(v).in, v, e,
        [&](auto&& g) { base_->for_each_in_edge(v, g); },
        std::forward<F>(f));
  }

  /// True when (u, v) is present in the edge set of epoch e.
  bool has_edge_at(vertex_id u, vertex_id v, std::uint32_t e) const {
    if (out_flag_[u].load(std::memory_order_acquire) != 0) {
      const shard& s = shard_of(u);
      std::shared_lock lk(s.mu);
      const auto it = s.out.find(u);
      if (it != s.out.end()) {
        for (const pair_patch& p : it->second) {
          if (p.other != v) continue;
          const event* last = last_event_at(p, e);
          if (last != nullptr) return last->is_insert;
          break;  // no event at this epoch yet: fall through to base
        }
      }
    }
    return base_has(u, v) > 0;
  }

 private:
  friend class overlay_view<Graph>;

  /// One insert/delete of a (src, dst) pair. Events append in ascending
  /// epoch order and strictly alternate in effect (set semantics filters
  /// no-ops at apply time), so "last event at epoch e" decides presence.
  struct event {
    std::uint32_t epoch = 0;
    weight_t weight = 1;
    bool is_insert = false;
  };

  /// Patch history of one (vertex, other) pair in one direction.
  struct pair_patch {
    vertex_id other{};
    std::uint32_t base_copies = 0;  ///< parallel base copies this pair hides
    std::vector<event> events;
  };

  struct shard {
    mutable std::shared_mutex mu;
    std::unordered_map<vertex_id, std::vector<pair_patch>> out;
    std::unordered_map<vertex_id, std::vector<pair_patch>> in;
  };

  static constexpr std::size_t kShards = 64;

  shard& shard_of(vertex_id v) const noexcept {
    return shards_[static_cast<std::size_t>(v) % kShards];
  }

  static const event* last_event_at(const pair_patch& p, std::uint32_t e) {
    const event* last = nullptr;
    for (const event& ev : p.events) {
      if (ev.epoch > e) break;  // ascending epochs
      last = &ev;
    }
    return last;
  }

  /// Invokes cb(patch, live_overlay_at_e) for every pair of v that has any
  /// event at or before epoch e, under the shard's shared lock.
  template <typename Map, typename Cb>
  void visit_patches(const Map& map, vertex_id v, std::uint32_t e,
                     Cb&& cb) const {
    const shard& s = shard_of(v);
    std::shared_lock lk(s.mu);
    const auto it = map.find(v);
    if (it == map.end()) return;
    for (const pair_patch& p : it->second) {
      const event* last = last_event_at(p, e);
      if (last == nullptr) continue;  // history starts after the pin
      cb(p, last->is_insert);
    }
  }

  /// The merged iteration both directions share: copy the pinned-epoch
  /// patch summary out under the shared lock (so the base walk — which may
  /// be a disk read on SEM storage — runs without holding it), then stream
  /// base edges minus suppressed pairs, then the overlay copies sorted by
  /// (other, weight) for a deterministic layout.
  template <typename BaseIter, typename F>
  void merged_iterate(
      const std::unordered_map<vertex_id, std::vector<pair_patch>>& map,
      vertex_id v, std::uint32_t e, BaseIter&& base_iter, F&& f) const {
    thread_local std::vector<vertex_id> suppressed;
    thread_local std::vector<std::pair<vertex_id, weight_t>> copies;
    suppressed.clear();
    copies.clear();
    visit_patches(map, v, e, [&](const pair_patch& p, bool live) {
      suppressed.push_back(p.other);
      if (live) {
        copies.emplace_back(p.other, last_event_at(p, e)->weight);
      }
    });
    if (suppressed.empty() && copies.empty()) {
      base_iter(std::forward<F>(f));
      return;
    }
    std::sort(suppressed.begin(), suppressed.end());
    std::sort(copies.begin(), copies.end());
    base_iter([&](vertex_id t, weight_t w) {
      if (std::binary_search(suppressed.begin(), suppressed.end(), t)) return;
      f(t, w);
    });
    for (const auto& [t, w] : copies) f(t, w);
  }

  /// Parallel base copies of (u, v) — a linear adjacency probe, only paid
  /// on the first mutation of a pair (set-semantics presence check).
  std::uint32_t base_has(vertex_id u, vertex_id v) const {
    std::uint32_t copies = 0;
    base_->for_each_out_edge(u, [&](vertex_id t, weight_t) {
      if (t == v) ++copies;
    });
    return copies;
  }

  /// Finds or creates the patch of (v -> other) in `map`; marks the flag.
  pair_patch& patch_for(
      std::unordered_map<vertex_id, std::vector<pair_patch>>& map,
      std::atomic<std::uint8_t>* flags, vertex_id v, vertex_id other) {
    auto& list = map[v];
    for (pair_patch& p : list) {
      if (p.other == other) return p;
    }
    list.push_back(pair_patch{other, 0, {}});
    flags[v].store(1, std::memory_order_release);
    return list.back();
  }

  // Callers hold apply_mu_. Presence at the working epoch decides
  // idempotence; both directions' patches record the same event so in-edge
  // iteration stays consistent with out-edge iteration at every epoch.
  void apply_insert(vertex_id u, vertex_id v, weight_t w, std::uint32_t e) {
    shard& su = shard_of(u);
    std::unique_lock lku(su.mu);
    auto out_it = su.out.find(u);
    pair_patch* existing = nullptr;
    if (out_it != su.out.end()) {
      for (pair_patch& p : out_it->second) {
        if (p.other == v) {
          existing = &p;
          break;
        }
      }
    }
    const bool present = existing != nullptr && !existing->events.empty()
                             ? existing->events.back().is_insert
                             : base_has(u, v) > 0;
    if (present) {
      ++counters_.noop_inserts;
      return;
    }
    std::uint32_t base_copies = 0;
    if (existing == nullptr) {
      base_copies = 0;  // absent pair with no history: base has no copies
      counters_.patched_pairs++;
    }
    pair_patch& out_p = existing != nullptr
                            ? *existing
                            : patch_for(su.out, out_flag_.get(), u, v);
    if (existing == nullptr) out_p.base_copies = base_copies;
    out_p.events.push_back({e, w, true});
    lku.unlock();
    shard& sv = shard_of(v);
    std::unique_lock lkv(sv.mu);
    pair_patch& in_p = patch_for(sv.in, in_flag_.get(), v, u);
    in_p.base_copies = out_p.base_copies;
    in_p.events.push_back({e, w, true});
    lkv.unlock();
    ++counters_.applied_inserts;
    ++counters_.live_inserts;
    if (w != 1) overlay_weighted_.store(true, std::memory_order_release);
  }

  void apply_delete(vertex_id u, vertex_id v, std::uint32_t e) {
    shard& su = shard_of(u);
    std::unique_lock lku(su.mu);
    auto out_it = su.out.find(u);
    pair_patch* existing = nullptr;
    if (out_it != su.out.end()) {
      for (pair_patch& p : out_it->second) {
        if (p.other == v) {
          existing = &p;
          break;
        }
      }
    }
    bool deleting_overlay_copy = false;
    std::uint32_t base_copies = 0;
    if (existing != nullptr && !existing->events.empty()) {
      if (!existing->events.back().is_insert) {
        ++counters_.noop_deletes;
        return;
      }
      deleting_overlay_copy = true;
    } else {
      base_copies = base_has(u, v);
      if (base_copies == 0) {
        ++counters_.noop_deletes;
        return;
      }
    }
    pair_patch& out_p = existing != nullptr
                            ? *existing
                            : patch_for(su.out, out_flag_.get(), u, v);
    if (existing == nullptr) {
      out_p.base_copies = base_copies;
      counters_.patched_pairs++;
    }
    out_p.events.push_back({e, 1, false});
    const std::uint32_t copies = out_p.base_copies;
    lku.unlock();
    shard& sv = shard_of(v);
    std::unique_lock lkv(sv.mu);
    pair_patch& in_p = patch_for(sv.in, in_flag_.get(), v, u);
    in_p.base_copies = copies;
    in_p.events.push_back({e, 1, false});
    lkv.unlock();
    ++counters_.applied_deletes;
    if (deleting_overlay_copy) {
      --counters_.live_inserts;
    } else {
      counters_.live_deletes += copies;
    }
  }

  const Graph* base_;
  std::uint64_t n_;
  std::unique_ptr<std::atomic<std::uint8_t>[]> out_flag_;
  std::unique_ptr<std::atomic<std::uint8_t>[]> in_flag_;
  mutable std::array<shard, kShards> shards_{};
  mutable std::mutex apply_mu_;
  std::atomic<std::uint64_t> epoch_{0};
  std::atomic<bool> overlay_weighted_{false};
  // Guarded by apply_mu_:
  overlay_counters counters_;
  std::uint64_t head_edges_ = 0;
  std::vector<std::uint64_t> edges_at_epoch_;  // [epoch-1] -> edge count
  std::uint64_t compacted_epoch_ = 0;
};

/// A GraphStorage over the overlay pinned at one epoch. Models the same
/// concept as csr_graph / sem_csr (including the reverse extension when the
/// base carries one), so async_bfs / async_sssp / async_cc and the
/// incremental repair drivers instantiate over it unchanged. Cheap to copy;
/// borrows the overlay. Valid across later apply() calls, not across
/// rebase().
template <typename Graph>
class overlay_view {
 public:
  using vertex_id = typename Graph::vertex_id;

  overlay_view() = default;

  std::uint64_t num_vertices() const noexcept { return ov_->num_vertices(); }
  std::uint64_t num_edges() const noexcept { return num_edges_; }
  std::uint64_t epoch() const noexcept { return epoch_; }
  const delta_overlay<Graph>& overlay() const noexcept { return *ov_; }
  const Graph& base() const noexcept { return ov_->base(); }

  bool is_weighted() const noexcept {
    return ov_->base().is_weighted() || ov_->overlay_weighted();
  }

  std::uint64_t out_degree(vertex_id v) const {
    return ov_->out_degree_at(v, epoch_);
  }

  template <typename F>
  void for_each_out_edge(vertex_id v, F&& f) const {
    ov_->for_each_out_edge_at(v, epoch_, std::forward<F>(f));
  }

  bool has_reverse() const noexcept { return ov_->base().has_reverse(); }

  std::uint64_t in_degree(vertex_id v) const {
    return ov_->in_degree_at(v, epoch_);
  }

  template <typename F>
  void for_each_in_edge(vertex_id v, F&& f) const {
    ov_->for_each_in_edge_at(v, epoch_, std::forward<F>(f));
  }

  bool has_edge(vertex_id u, vertex_id v) const {
    return ov_->has_edge_at(u, v, epoch_);
  }

  /// Base residency plus the patch index (service admission guardrail).
  std::uint64_t resident_bytes() const {
    return ov_->base().resident_bytes() + ov_->overlay_bytes();
  }

 private:
  friend class delta_overlay<Graph>;
  overlay_view(const delta_overlay<Graph>* ov, std::uint32_t epoch,
               std::uint64_t num_edges)
      : ov_(ov), epoch_(epoch), num_edges_(num_edges) {}

  const delta_overlay<Graph>* ov_ = nullptr;
  std::uint32_t epoch_ = 0;
  std::uint64_t num_edges_ = 0;
};

}  // namespace asyncgt
