// Structural statistics used to validate generated graphs against the
// properties §I-B of the paper attributes to real-world graphs (power-law
// degrees, hub vertices, giant component) and to report table columns like
// "# levels" and "% visited".
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <vector>

#include "graph/csr_graph.hpp"
#include "util/stats.hpp"

namespace asyncgt {

struct degree_summary {
  summary_stats stats;          // over the summarized degree direction
  log2_histogram histogram;     // log2 buckets of degree
  std::uint64_t max_degree = 0;
  std::uint64_t isolated = 0;   // vertices with degree 0 in this direction

  /// Fraction of all edges owned by the top `fraction` highest-degree
  /// vertices. Skewed (RMAT-B-like) graphs concentrate most edges here.
  double top_fraction_edge_share = 0.0;
};

namespace detail {

/// Direction-agnostic core: summarizes degree_of(v) over [0, n).
template <typename DegreeFn>
degree_summary summarize_degrees(std::uint64_t n, std::uint64_t m,
                                 DegreeFn&& degree_of, double top_fraction) {
  degree_summary out;
  std::vector<std::uint64_t> degrees;
  degrees.reserve(n);
  for (std::uint64_t v = 0; v < n; ++v) {
    const std::uint64_t d = degree_of(v);
    degrees.push_back(d);
    out.stats.add(static_cast<double>(d));
    out.histogram.add(d);
    if (d == 0) ++out.isolated;
    if (d > out.max_degree) out.max_degree = d;
  }
  std::sort(degrees.begin(), degrees.end(), std::greater<>());
  const auto top = static_cast<std::size_t>(
      std::max<double>(1.0, top_fraction * static_cast<double>(degrees.size())));
  std::uint64_t top_edges = 0;
  for (std::size_t i = 0; i < top && i < degrees.size(); ++i) {
    top_edges += degrees[i];
  }
  out.top_fraction_edge_share =
      m == 0 ? 0.0
             : static_cast<double>(top_edges) / static_cast<double>(m);
  return out;
}

}  // namespace detail

template <typename VertexId>
degree_summary compute_degree_summary(const csr_graph<VertexId>& g,
                                      double top_fraction = 0.01) {
  return detail::summarize_degrees(
      g.num_vertices(), g.num_edges(),
      [&](std::uint64_t v) {
        return g.out_degree(static_cast<VertexId>(v));
      },
      top_fraction);
}

/// In-degree distribution, served by the reverse (transpose) view. The mean
/// matches the out-degree mean (same edge count), but the max and skew can
/// differ wildly on directed graphs — web-like inputs concentrate in-edges
/// on popular pages — which is exactly what the bottom-up sweep cost of
/// hybrid traversal depends on. Builds the reverse view transiently when
/// the graph does not carry one.
template <typename VertexId>
degree_summary compute_in_degree_summary(const csr_graph<VertexId>& g,
                                         double top_fraction = 0.01) {
  if (!g.has_reverse()) {
    csr_graph<VertexId> rev = g.transpose();
    return compute_degree_summary(rev, top_fraction);
  }
  return detail::summarize_degrees(
      g.num_vertices(), g.num_edges(),
      [&](std::uint64_t v) { return g.in_degree(static_cast<VertexId>(v)); },
      top_fraction);
}

/// True iff every (u,v) edge has a matching (v,u) edge — i.e. the CSR
/// faithfully encodes an undirected graph. Precondition for CC.
template <typename VertexId>
bool is_symmetric(const csr_graph<VertexId>& g) {
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    for (VertexId v : g.neighbors(u)) {
      const auto nb = g.neighbors(v);
      if (!std::binary_search(nb.begin(), nb.end(), u)) return false;
    }
  }
  return true;
}

}  // namespace asyncgt
