// Plain-text edge-list interchange.
//
// Reads/writes the de-facto standard "src dst [weight]" lines used by SNAP
// datasets, the WebGraph toolchain's ASCII dumps, and most academic graph
// collections — the formats the paper's real inputs circulate in. Lines
// starting with '#' or '%' are comments. Vertices are zero-based ids.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/csr_graph.hpp"
#include "graph/types.hpp"

namespace asyncgt {

struct text_io_stats {
  std::uint64_t lines = 0;
  std::uint64_t edges = 0;
  std::uint64_t comments = 0;
  std::uint64_t max_vertex_id = 0;
  bool any_weights = false;
};

/// Parses an edge-list file. Throws std::runtime_error on unopenable files
/// or malformed lines (with the line number).
std::vector<edge<vertex32>> read_edge_list(const std::string& path,
                                           text_io_stats* stats = nullptr);

/// Writes "src dst" (or "src dst weight" when the graph is weighted), one
/// edge per line, with a comment header.
void write_edge_list(const std::string& path, const csr_graph<vertex32>& g);

}  // namespace asyncgt
