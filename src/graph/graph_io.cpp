#include "graph/graph_io.hpp"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <memory>
#include <stdexcept>
#include <vector>

namespace asyncgt {
namespace {

struct file_closer {
  void operator()(std::FILE* f) const noexcept {
    if (f != nullptr) std::fclose(f);
  }
};
using file_ptr = std::unique_ptr<std::FILE, file_closer>;

file_ptr open_or_throw(const std::string& path, const char* mode) {
  file_ptr f(std::fopen(path.c_str(), mode));
  if (!f) {
    throw std::runtime_error("cannot open '" + path +
                             "': " + std::strerror(errno));
  }
  return f;
}

void write_bytes(std::FILE* f, const void* data, std::size_t bytes,
                 const std::string& path) {
  if (bytes != 0 && std::fwrite(data, 1, bytes, f) != bytes) {
    throw std::runtime_error("short write to '" + path + "'");
  }
}

void read_bytes(std::FILE* f, void* data, std::size_t bytes,
                const std::string& path) {
  if (bytes != 0 && std::fread(data, 1, bytes, f) != bytes) {
    throw std::runtime_error("short read from '" + path + "'");
  }
}

template <typename VertexId>
void write_graph_impl(const std::string& path, const csr_graph<VertexId>& g) {
  auto f = open_or_throw(path, "wb");
  agt_header h;
  h.flags = (g.is_weighted() ? 1u : 0u) | (sizeof(VertexId) == 8 ? 2u : 0u);
  h.num_vertices = g.num_vertices();
  h.num_edges = g.num_edges();
  write_bytes(f.get(), &h, sizeof(h), path);
  write_bytes(f.get(), g.offsets().data(),
              g.offsets().size() * sizeof(std::uint64_t), path);
  write_bytes(f.get(), g.targets().data(),
              g.targets().size() * sizeof(VertexId), path);
  write_bytes(f.get(), g.weights().data(),
              g.weights().size() * sizeof(weight_t), path);
  if (std::fflush(f.get()) != 0) {
    throw std::runtime_error("flush failed for '" + path + "'");
  }
}

std::uint64_t file_size_of(std::FILE* f, const std::string& path) {
  if (std::fseek(f, 0, SEEK_END) != 0) {
    throw std::runtime_error("cannot seek in '" + path + "'");
  }
  const long size = std::ftell(f);
  if (size < 0 || std::fseek(f, 0, SEEK_SET) != 0) {
    throw std::runtime_error("cannot size '" + path + "'");
  }
  return static_cast<std::uint64_t>(size);
}

template <typename VertexId>
csr_graph<VertexId> read_graph_impl(const std::string& path) {
  auto f = open_or_throw(path, "rb");
  const std::uint64_t actual = file_size_of(f.get(), path);
  agt_header h;
  read_bytes(f.get(), &h, sizeof(h), path);
  if (h.magic != agt_magic) {
    throw std::runtime_error("'" + path + "' is not an AGT graph file");
  }
  if (h.wide_ids() != (sizeof(VertexId) == 8)) {
    throw std::runtime_error("'" + path +
                             "' vertex id width does not match reader");
  }
  // Budget the declared section sizes against the real file size BEFORE any
  // allocation: a truncated or malformed header must fail cleanly here, not
  // drive a multi-GB std::vector resize (or overflow num_vertices + 1 and
  // allocate nothing). Dividing the remaining budget instead of multiplying
  // the declared counts keeps every comparison overflow-free.
  if (actual < sizeof(agt_header) || h.num_vertices == ~std::uint64_t{0}) {
    throw std::runtime_error("'" + path + "' has a malformed AGT header");
  }
  std::uint64_t remaining = actual - sizeof(agt_header);
  const std::uint64_t nv1 = h.num_vertices + 1;
  if (nv1 > remaining / sizeof(std::uint64_t)) {
    throw std::runtime_error("'" + path +
                             "' is truncated: offset index exceeds file size");
  }
  remaining -= nv1 * sizeof(std::uint64_t);
  if (h.num_edges > remaining / sizeof(VertexId)) {
    throw std::runtime_error("'" + path +
                             "' is truncated: edge section exceeds file size");
  }
  remaining -= h.num_edges * sizeof(VertexId);
  if (h.weighted()) {
    if (h.num_edges > remaining / sizeof(weight_t)) {
      throw std::runtime_error(
          "'" + path + "' is truncated: weight section exceeds file size");
    }
    remaining -= h.num_edges * sizeof(weight_t);
  }
  if (remaining != 0) {
    throw std::runtime_error("'" + path + "' has " +
                             std::to_string(remaining) +
                             " trailing bytes beyond the declared sections");
  }
  if (std::fseek(f.get(), sizeof(agt_header), SEEK_SET) != 0) {
    throw std::runtime_error("cannot seek in '" + path + "'");
  }
  std::vector<std::uint64_t> offsets(nv1);
  read_bytes(f.get(), offsets.data(), offsets.size() * sizeof(std::uint64_t),
             path);
  if (offsets.front() != 0 || offsets.back() != h.num_edges) {
    throw std::runtime_error("'" + path +
                             "' has a corrupt offset index (bounds disagree "
                             "with header)");
  }
  for (std::size_t v = 1; v < offsets.size(); ++v) {
    if (offsets[v] < offsets[v - 1]) {
      throw std::runtime_error("'" + path +
                               "' has a corrupt offset index (offsets not "
                               "monotone)");
    }
  }
  std::vector<VertexId> targets(h.num_edges);
  read_bytes(f.get(), targets.data(), targets.size() * sizeof(VertexId), path);
  std::vector<weight_t> weights;
  if (h.weighted()) {
    weights.resize(h.num_edges);
    read_bytes(f.get(), weights.data(), weights.size() * sizeof(weight_t),
               path);
  }
  return csr_graph<VertexId>(std::move(offsets), std::move(targets),
                             std::move(weights));
}

/// Writes both files, then validates-and-adopts on the read side. The
/// reverse file's shape must mirror the forward one (same vertex count and
/// edge count) — a stale .rev next to a rewritten main file must fail
/// loudly, not feed the bottom-up sweeps a transpose of a different graph.
template <typename VertexId>
void write_with_reverse_impl(const std::string& path,
                             const csr_graph<VertexId>& g) {
  write_graph_impl(path, g);
  write_graph_impl(reverse_path_for(path), g.transpose());
}

template <typename VertexId>
csr_graph<VertexId> read_with_reverse_impl(const std::string& path) {
  csr_graph<VertexId> g = read_graph_impl<VertexId>(path);
  const std::string rpath = reverse_path_for(path);
  if (!has_reverse_file(path)) return g;
  csr_graph<VertexId> rev = read_graph_impl<VertexId>(rpath);
  if (rev.num_vertices() != g.num_vertices() ||
      rev.num_edges() != g.num_edges()) {
    throw std::runtime_error("'" + rpath +
                             "' does not transpose '" + path +
                             "' (vertex/edge counts disagree)");
  }
  g.set_reverse(std::vector<std::uint64_t>(rev.offsets().begin(),
                                           rev.offsets().end()),
                std::vector<VertexId>(rev.targets().begin(),
                                      rev.targets().end()),
                std::vector<weight_t>(rev.weights().begin(),
                                      rev.weights().end()));
  return g;
}

}  // namespace

std::string reverse_path_for(const std::string& path) { return path + ".rev"; }

bool has_reverse_file(const std::string& path) {
  std::error_code ec;
  return std::filesystem::exists(reverse_path_for(path), ec);
}

void write_graph_with_reverse(const std::string& path,
                              const csr_graph<vertex32>& g) {
  write_with_reverse_impl(path, g);
}

void write_graph_with_reverse(const std::string& path,
                              const csr_graph<vertex64>& g) {
  write_with_reverse_impl(path, g);
}

csr_graph<vertex32> read_graph32_with_reverse(const std::string& path) {
  return read_with_reverse_impl<vertex32>(path);
}

csr_graph<vertex64> read_graph64_with_reverse(const std::string& path) {
  return read_with_reverse_impl<vertex64>(path);
}

void write_graph(const std::string& path, const csr_graph<vertex32>& g) {
  write_graph_impl(path, g);
}

void write_graph(const std::string& path, const csr_graph<vertex64>& g) {
  write_graph_impl(path, g);
}

agt_header read_graph_header(const std::string& path) {
  auto f = open_or_throw(path, "rb");
  agt_header h;
  read_bytes(f.get(), &h, sizeof(h), path);
  if (h.magic != agt_magic) {
    throw std::runtime_error("'" + path + "' is not an AGT graph file");
  }
  return h;
}

csr_graph<vertex32> read_graph32(const std::string& path) {
  return read_graph_impl<vertex32>(path);
}

csr_graph<vertex64> read_graph64(const std::string& path) {
  return read_graph_impl<vertex64>(path);
}

}  // namespace asyncgt
