// In-memory Compressed Sparse Row graph.
//
// This is the in-memory storage backend for all traversals (the paper used
// Boost's CSR for the in-memory experiments). Adjacency of vertex v is the
// slice targets[offsets[v] .. offsets[v+1]); weights, when present, are a
// parallel array. The class models the GraphStorage concept consumed by the
// algorithms in src/core and src/baselines:
//
//   num_vertices(), num_edges(), out_degree(v),
//   for_each_out_edge(v, f)  with f(target, weight)
//
// so the same algorithm template instantiates over this class or over
// sem::sem_csr (disk-backed).
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <vector>

#include "graph/types.hpp"

namespace asyncgt {

template <typename VertexId>
class csr_graph {
 public:
  using vertex_id = VertexId;
  using offset_type = std::uint64_t;

  csr_graph() = default;

  /// Assembles a CSR from prebuilt arrays. offsets must have size
  /// num_vertices+1 with offsets.front()==0 and offsets.back()==targets.size;
  /// weights must be empty (unweighted) or parallel to targets.
  csr_graph(std::vector<offset_type> offsets, std::vector<VertexId> targets,
            std::vector<weight_t> weights = {})
      : offsets_(std::move(offsets)),
        targets_(std::move(targets)),
        weights_(std::move(weights)) {
    if (offsets_.empty() || offsets_.front() != 0 ||
        offsets_.back() != targets_.size()) {
      throw std::invalid_argument("csr_graph: malformed offset array");
    }
    if (!weights_.empty() && weights_.size() != targets_.size()) {
      throw std::invalid_argument(
          "csr_graph: weights must parallel targets or be empty");
    }
  }

  std::uint64_t num_vertices() const noexcept { return offsets_.size() - 1; }
  std::uint64_t num_edges() const noexcept { return targets_.size(); }
  bool is_weighted() const noexcept { return !weights_.empty(); }

  std::uint64_t out_degree(VertexId v) const noexcept {
    return offsets_[v + 1] - offsets_[v];
  }

  std::span<const VertexId> neighbors(VertexId v) const noexcept {
    return {targets_.data() + offsets_[v],
            targets_.data() + offsets_[v + 1]};
  }

  std::span<const weight_t> edge_weights(VertexId v) const noexcept {
    if (weights_.empty()) return {};
    return {weights_.data() + offsets_[v], weights_.data() + offsets_[v + 1]};
  }

  /// Invokes f(target, weight) for every out-edge of v. Unweighted graphs
  /// report weight 1, which is exactly the paper's BFS-as-SSSP convention.
  template <typename F>
  void for_each_out_edge(VertexId v, F&& f) const {
    const offset_type begin = offsets_[v];
    const offset_type end = offsets_[v + 1];
    if (weights_.empty()) {
      for (offset_type i = begin; i < end; ++i) f(targets_[i], weight_t{1});
    } else {
      for (offset_type i = begin; i < end; ++i) f(targets_[i], weights_[i]);
    }
  }

  std::span<const offset_type> offsets() const noexcept { return offsets_; }
  std::span<const VertexId> targets() const noexcept { return targets_; }
  std::span<const weight_t> weights() const noexcept { return weights_; }

  /// Approximate resident size, for memory-budget reporting in benches.
  std::uint64_t memory_bytes() const noexcept {
    return offsets_.size() * sizeof(offset_type) +
           targets_.size() * sizeof(VertexId) +
           weights_.size() * sizeof(weight_t);
  }

 private:
  std::vector<offset_type> offsets_{0};
  std::vector<VertexId> targets_;
  std::vector<weight_t> weights_;
};

using csr32 = csr_graph<vertex32>;
using csr64 = csr_graph<vertex64>;

}  // namespace asyncgt
