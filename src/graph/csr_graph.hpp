// In-memory Compressed Sparse Row graph.
//
// This is the in-memory storage backend for all traversals (the paper used
// Boost's CSR for the in-memory experiments). Adjacency of vertex v is the
// slice targets[offsets[v] .. offsets[v+1]); weights, when present, are a
// parallel array. The class models the GraphStorage concept consumed by the
// algorithms in src/core and src/baselines:
//
//   num_vertices(), num_edges(), out_degree(v),
//   for_each_out_edge(v, f)  with f(target, weight)
//
// so the same algorithm template instantiates over this class or over
// sem::sem_csr (disk-backed).
//
// Reverse view. Storage backends may additionally carry an optional
// transpose — in-offsets/in-targets arrays here, a second on-disk edge file
// for sem_csr — extending the concept with:
//
//   has_reverse(), in_degree(v),
//   for_each_in_edge(v, f)   with f(source, weight)
//
// Algorithms that pull over in-edges (the bottom-up sweeps of
// core/hybrid_traversal.hpp, the dobfs baseline on directed graphs,
// graph_stats' in-degree summary) gate on has_reverse() at runtime. The
// in-memory transpose is built on demand by ensure_reverse() — a counting
// sort over the forward arrays, O(V+E) time, no edge list materialized —
// and in-adjacency comes out sorted by source id, so the layout is
// deterministic and binary-searchable like the forward one.
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <vector>

#include "graph/types.hpp"

namespace asyncgt {

template <typename VertexId>
class csr_graph {
 public:
  using vertex_id = VertexId;
  using offset_type = std::uint64_t;

  csr_graph() = default;

  /// Assembles a CSR from prebuilt arrays. offsets must have size
  /// num_vertices+1 with offsets.front()==0 and offsets.back()==targets.size;
  /// weights must be empty (unweighted) or parallel to targets.
  csr_graph(std::vector<offset_type> offsets, std::vector<VertexId> targets,
            std::vector<weight_t> weights = {})
      : offsets_(std::move(offsets)),
        targets_(std::move(targets)),
        weights_(std::move(weights)) {
    if (offsets_.empty() || offsets_.front() != 0 ||
        offsets_.back() != targets_.size()) {
      throw std::invalid_argument("csr_graph: malformed offset array");
    }
    if (!weights_.empty() && weights_.size() != targets_.size()) {
      throw std::invalid_argument(
          "csr_graph: weights must parallel targets or be empty");
    }
  }

  std::uint64_t num_vertices() const noexcept { return offsets_.size() - 1; }
  std::uint64_t num_edges() const noexcept { return targets_.size(); }
  bool is_weighted() const noexcept { return !weights_.empty(); }

  std::uint64_t out_degree(VertexId v) const noexcept {
    return offsets_[v + 1] - offsets_[v];
  }

  std::span<const VertexId> neighbors(VertexId v) const noexcept {
    return {targets_.data() + offsets_[v],
            targets_.data() + offsets_[v + 1]};
  }

  std::span<const weight_t> edge_weights(VertexId v) const noexcept {
    if (weights_.empty()) return {};
    return {weights_.data() + offsets_[v], weights_.data() + offsets_[v + 1]};
  }

  /// Invokes f(target, weight) for every out-edge of v. Unweighted graphs
  /// report weight 1, which is exactly the paper's BFS-as-SSSP convention.
  template <typename F>
  void for_each_out_edge(VertexId v, F&& f) const {
    const offset_type begin = offsets_[v];
    const offset_type end = offsets_[v + 1];
    if (weights_.empty()) {
      for (offset_type i = begin; i < end; ++i) f(targets_[i], weight_t{1});
    } else {
      for (offset_type i = begin; i < end; ++i) f(targets_[i], weights_[i]);
    }
  }

  std::span<const offset_type> offsets() const noexcept { return offsets_; }
  std::span<const VertexId> targets() const noexcept { return targets_; }
  std::span<const weight_t> weights() const noexcept { return weights_; }

  /// Resident heap footprint of the adjacency arrays (forward + reverse),
  /// for the service engine's memory_budget_bytes admission guardrail
  /// (traversal_options::memory_estimate_bytes).
  std::uint64_t resident_bytes() const noexcept {
    return static_cast<std::uint64_t>(
        offsets_.capacity() * sizeof(offset_type) +
        targets_.capacity() * sizeof(VertexId) +
        weights_.capacity() * sizeof(weight_t) +
        in_offsets_.capacity() * sizeof(offset_type) +
        in_targets_.capacity() * sizeof(VertexId) +
        in_weights_.capacity() * sizeof(weight_t));
  }

  // ---- Reverse (transpose) view ----

  bool has_reverse() const noexcept { return !in_offsets_.empty(); }

  /// Builds the transpose in place if absent: a counting sort over the
  /// forward arrays (no edge list). Self-loops and duplicate edges transpose
  /// to themselves; zero-out-degree vertices simply contribute nothing, and
  /// every vertex keeps an in-adjacency slot (possibly empty). Idempotent.
  void ensure_reverse() {
    if (has_reverse()) return;
    const std::uint64_t n = num_vertices();
    in_offsets_.assign(n + 1, 0);
    for (const VertexId t : targets_) ++in_offsets_[t + 1];
    for (std::uint64_t v = 0; v < n; ++v) in_offsets_[v + 1] += in_offsets_[v];
    in_targets_.resize(targets_.size());
    if (!weights_.empty()) in_weights_.resize(weights_.size());
    std::vector<offset_type> cursor(in_offsets_.begin(),
                                    in_offsets_.end() - 1);
    // Outer loop ascends over sources, so each in-adjacency list comes out
    // sorted by source id — a deterministic layout matching the forward one.
    for (std::uint64_t v = 0; v < n; ++v) {
      for (offset_type i = offsets_[v]; i < offsets_[v + 1]; ++i) {
        const offset_type slot = cursor[targets_[i]]++;
        in_targets_[slot] = static_cast<VertexId>(v);
        if (!weights_.empty()) in_weights_[slot] = weights_[i];
      }
    }
  }

  /// Adopts prebuilt transpose arrays (graph_io's reverse-file reader uses
  /// this to avoid recomputing a transpose that is already on disk). Shape
  /// is validated like the forward constructor's.
  void set_reverse(std::vector<offset_type> in_offsets,
                   std::vector<VertexId> in_targets,
                   std::vector<weight_t> in_weights = {}) {
    if (in_offsets.size() != offsets_.size() || in_offsets.front() != 0 ||
        in_offsets.back() != in_targets.size() ||
        in_targets.size() != targets_.size()) {
      throw std::invalid_argument("csr_graph: malformed reverse arrays");
    }
    if (!in_weights.empty() && in_weights.size() != in_targets.size()) {
      throw std::invalid_argument(
          "csr_graph: reverse weights must parallel in-targets or be empty");
    }
    in_offsets_ = std::move(in_offsets);
    in_targets_ = std::move(in_targets);
    in_weights_ = std::move(in_weights);
  }

  /// In-degree of v. Requires has_reverse().
  std::uint64_t in_degree(VertexId v) const noexcept {
    return in_offsets_[v + 1] - in_offsets_[v];
  }

  /// Sources of v's in-edges, sorted ascending. Requires has_reverse().
  std::span<const VertexId> in_neighbors(VertexId v) const noexcept {
    return {in_targets_.data() + in_offsets_[v],
            in_targets_.data() + in_offsets_[v + 1]};
  }

  /// Invokes f(source, weight) for every in-edge of v; weight is the
  /// original (u,v) edge's weight, 1 when unweighted. Requires
  /// has_reverse().
  template <typename F>
  void for_each_in_edge(VertexId v, F&& f) const {
    const offset_type begin = in_offsets_[v];
    const offset_type end = in_offsets_[v + 1];
    if (in_weights_.empty()) {
      for (offset_type i = begin; i < end; ++i)
        f(in_targets_[i], weight_t{1});
    } else {
      for (offset_type i = begin; i < end; ++i)
        f(in_targets_[i], in_weights_[i]);
    }
  }

  std::span<const offset_type> in_offsets() const noexcept {
    return in_offsets_;
  }
  std::span<const VertexId> in_targets() const noexcept { return in_targets_; }

  /// The transpose as a standalone graph (its out-edges are this graph's
  /// in-edges) — what graph_io serializes as the on-disk reverse edge file.
  /// Reuses the reverse arrays when present, else builds them transiently.
  csr_graph<VertexId> transpose() const {
    if (has_reverse()) {
      return csr_graph<VertexId>(in_offsets_, in_targets_, in_weights_);
    }
    csr_graph<VertexId> copy(offsets_, targets_, weights_);
    copy.ensure_reverse();
    return csr_graph<VertexId>(std::move(copy.in_offsets_),
                               std::move(copy.in_targets_),
                               std::move(copy.in_weights_));
  }

  /// Approximate resident size, for memory-budget reporting in benches.
  std::uint64_t memory_bytes() const noexcept {
    return (offsets_.size() + in_offsets_.size()) * sizeof(offset_type) +
           (targets_.size() + in_targets_.size()) * sizeof(VertexId) +
           (weights_.size() + in_weights_.size()) * sizeof(weight_t);
  }

 private:
  std::vector<offset_type> offsets_{0};
  std::vector<VertexId> targets_;
  std::vector<weight_t> weights_;
  // Reverse view (empty until ensure_reverse()/set_reverse()).
  std::vector<offset_type> in_offsets_;
  std::vector<VertexId> in_targets_;
  std::vector<weight_t> in_weights_;
};

using csr32 = csr_graph<vertex32>;
using csr64 = csr_graph<vertex64>;

}  // namespace asyncgt
