// Edge-list → CSR construction.
//
// Handles the transformations the paper's experimental setup describes:
// duplicate-edge removal ("graphs with unique edges"), self-loop removal,
// and symmetrization by adding reverse edges ("undirected versions of these
// graphs ... were created by adding reverse edges").
#pragma once

#include <algorithm>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "graph/csr_graph.hpp"
#include "graph/types.hpp"

namespace asyncgt {

struct build_options {
  bool remove_self_loops = true;
  bool remove_duplicates = true;
  /// Add a (dst,src) edge for every (src,dst): turns the list undirected.
  bool symmetrize = false;
  /// Sort adjacency lists by target id (deterministic layout; also what a
  /// CSR file format wants).
  bool sort_adjacency = true;
  /// Also build the reverse (transpose) view at construction — in-offsets /
  /// in-targets arrays for in-edge traversal (csr_graph::for_each_in_edge).
  /// Equivalent to calling ensure_reverse() on the result; costs one extra
  /// O(V+E) counting sort and doubles the edge-array footprint.
  bool build_reverse = false;
};

/// Builds a CSR with `n` vertices from `edges`. Edges referencing vertices
/// >= n are rejected. The input vector is consumed (sorted in place).
template <typename VertexId>
csr_graph<VertexId> build_csr(std::uint64_t n,
                              std::vector<edge<VertexId>> edges,
                              const build_options& opt = {}) {
  if (n >= invalid_vertex<VertexId>) {
    throw std::invalid_argument("build_csr: vertex count exceeds id space");
  }
  for (const auto& e : edges) {
    if (e.src >= n || e.dst >= n) {
      throw std::invalid_argument("build_csr: edge endpoint out of range");
    }
  }

  if (opt.symmetrize) {
    const std::size_t original = edges.size();
    edges.reserve(original * 2);
    for (std::size_t i = 0; i < original; ++i) {
      edges.push_back({edges[i].dst, edges[i].src, edges[i].weight});
    }
  }

  if (opt.remove_self_loops) {
    std::erase_if(edges, [](const edge<VertexId>& e) { return e.src == e.dst; });
  }

  if (opt.remove_duplicates || opt.sort_adjacency) {
    std::sort(edges.begin(), edges.end(),
              [](const edge<VertexId>& a, const edge<VertexId>& b) {
                if (a.src != b.src) return a.src < b.src;
                if (a.dst != b.dst) return a.dst < b.dst;
                return a.weight < b.weight;
              });
  }
  if (opt.remove_duplicates) {
    // Keep the first (lowest-weight) copy of each (src,dst) pair; the paper's
    // generators emit unique edges, so which copy survives only matters for
    // determinism.
    edges.erase(std::unique(edges.begin(), edges.end(),
                            [](const edge<VertexId>& a,
                               const edge<VertexId>& b) {
                              return a.src == b.src && a.dst == b.dst;
                            }),
                edges.end());
  }

  std::vector<std::uint64_t> offsets(n + 1, 0);
  for (const auto& e : edges) ++offsets[e.src + 1];
  for (std::uint64_t v = 0; v < n; ++v) offsets[v + 1] += offsets[v];

  const bool weighted =
      std::any_of(edges.begin(), edges.end(),
                  [](const edge<VertexId>& e) { return e.weight != 1; });

  std::vector<VertexId> targets(edges.size());
  std::vector<weight_t> weights(weighted ? edges.size() : 0);
  // Input is already grouped by src (sorted above, or caller-provided order
  // when neither dedup nor sort requested — then we must use a cursor copy).
  std::vector<std::uint64_t> cursor(offsets.begin(), offsets.end() - 1);
  for (const auto& e : edges) {
    const std::uint64_t slot = cursor[e.src]++;
    targets[slot] = e.dst;
    if (weighted) weights[slot] = e.weight;
  }

  csr_graph<VertexId> g(std::move(offsets), std::move(targets),
                        std::move(weights));
  if (opt.build_reverse) g.ensure_reverse();
  return g;
}

/// Extracts the edge list back out of a CSR (used by tests and by the SEM
/// on-disk builder).
template <typename VertexId>
std::vector<edge<VertexId>> to_edge_list(const csr_graph<VertexId>& g) {
  std::vector<edge<VertexId>> out;
  out.reserve(g.num_edges());
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    g.for_each_out_edge(v, [&](VertexId t, weight_t w) {
      out.push_back({v, t, w});
    });
  }
  return out;
}

}  // namespace asyncgt
