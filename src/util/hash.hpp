// Vertex-id hashing for visitor-queue routing.
//
// The visitor queue selects the owning thread as hash(vertex) % num_queues
// (paper §III-A). Sequential vertex ids modulo a queue count would put all
// hub vertices of an RMAT graph — which cluster at low ids — on a few
// queues, so we pass ids through an avalanching mixer first. The paper notes
// that "a near-uniform hash function may improve load balance amongst the
// visitor queues as high-cost vertices will be uniformly distributed".
#pragma once

#include <cstdint>

namespace asyncgt {

/// Finalizer from MurmurHash3: full avalanche on 64-bit inputs.
constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
  x ^= x >> 33;
  x *= 0xFF51AFD7ED558CCDULL;
  x ^= x >> 33;
  x *= 0xC4CEB9FE1A85EC53ULL;
  x ^= x >> 33;
  return x;
}

/// 32-bit avalanche (Murmur3 fmix32) for u32 vertex ids.
constexpr std::uint32_t mix32(std::uint32_t x) noexcept {
  x ^= x >> 16;
  x *= 0x85EBCA6BU;
  x ^= x >> 13;
  x *= 0xC2B2AE35U;
  x ^= x >> 16;
  return x;
}

/// Routing hash used by the visitor queue: maps a vertex id to a queue index
/// in [0, num_queues). num_queues need not be a power of two.
template <typename VertexId>
constexpr std::size_t queue_of(VertexId v, std::size_t num_queues) noexcept {
  if constexpr (sizeof(VertexId) <= 4) {
    return static_cast<std::size_t>(mix32(static_cast<std::uint32_t>(v))) %
           num_queues;
  } else {
    return static_cast<std::size_t>(mix64(static_cast<std::uint64_t>(v))) %
           num_queues;
  }
}

/// Identity routing (v % num_queues) — kept for the load-balance ablation,
/// which demonstrates why the avalanching hash matters on RMAT graphs.
template <typename VertexId>
constexpr std::size_t queue_of_identity(VertexId v,
                                        std::size_t num_queues) noexcept {
  return static_cast<std::size_t>(v) % num_queues;
}

}  // namespace asyncgt
