#include "util/options.hpp"

#include <cstdlib>
#include <sstream>
#include <stdexcept>

namespace asyncgt {

options::options(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string tok = argv[i];
    if (tok.rfind("--", 0) != 0) {
      positional_.push_back(std::move(tok));
      continue;
    }
    tok = tok.substr(2);
    if (tok.empty()) throw std::invalid_argument("bare '--' is not an option");
    const auto eq = tok.find('=');
    if (eq != std::string::npos) {
      values_[tok.substr(0, eq)] = tok.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      values_[tok] = argv[++i];
    } else {
      values_[tok] = "true";  // boolean flag form
    }
  }
}

bool options::has(const std::string& key) const {
  return values_.count(key) != 0;
}

std::string options::get_string(const std::string& key,
                                const std::string& fallback) const {
  const auto it = values_.find(key);
  return it == values_.end() ? fallback : it->second;
}

std::int64_t options::get_int(const std::string& key,
                              std::int64_t fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  std::size_t pos = 0;
  const std::int64_t v = std::stoll(it->second, &pos);
  if (pos != it->second.size()) {
    throw std::invalid_argument("option --" + key +
                                " expects an integer, got '" + it->second +
                                "'");
  }
  return v;
}

double options::get_double(const std::string& key, double fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  std::size_t pos = 0;
  const double v = std::stod(it->second, &pos);
  if (pos != it->second.size()) {
    throw std::invalid_argument("option --" + key +
                                " expects a number, got '" + it->second + "'");
  }
  return v;
}

bool options::get_bool(const std::string& key, bool fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  const std::string& v = it->second;
  if (v == "true" || v == "1" || v == "yes") return true;
  if (v == "false" || v == "0" || v == "no") return false;
  throw std::invalid_argument("option --" + key + " expects a boolean, got '" +
                              v + "'");
}

std::vector<std::int64_t> options::get_int_list(
    const std::string& key, const std::vector<std::int64_t>& fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  std::vector<std::int64_t> out;
  std::istringstream is(it->second);
  std::string item;
  while (std::getline(is, item, ',')) {
    if (item.empty()) continue;
    out.push_back(std::stoll(item));
  }
  return out;
}

std::vector<std::string> options::keys() const {
  std::vector<std::string> out;
  out.reserve(values_.size());
  for (const auto& [k, v] : values_) out.push_back(k);
  return out;
}

}  // namespace asyncgt
