// A test-and-test-and-set spinlock with exponential backoff.
//
// Used for very short critical sections (per-thread queue push/pop) where a
// futex-based mutex would dominate the cost of the protected operation. The
// lock satisfies the Lockable named requirement, so it works directly with
// std::lock_guard / std::scoped_lock.
#pragma once

#include <atomic>
#include <thread>

#include "util/cache_line.hpp"

namespace asyncgt {

class spinlock {
 public:
  spinlock() = default;
  spinlock(const spinlock&) = delete;
  spinlock& operator=(const spinlock&) = delete;

  void lock() noexcept {
    int spins = 0;
    for (;;) {
      // Cheap read first (test-and-test-and-set) to avoid hammering the line
      // with RMW operations while some other thread holds the lock.
      if (!flag_.load(std::memory_order_relaxed) &&
          !flag_.exchange(true, std::memory_order_acquire)) {
        return;
      }
      backoff(spins);
    }
  }

  bool try_lock() noexcept {
    return !flag_.load(std::memory_order_relaxed) &&
           !flag_.exchange(true, std::memory_order_acquire);
  }

  void unlock() noexcept { flag_.store(false, std::memory_order_release); }

 private:
  static void backoff(int& spins) noexcept {
    // Spin briefly, then start yielding: with thread oversubscription (the
    // paper runs 512 threads on 16 cores) the lock holder is frequently not
    // running, and yielding is the only way to make progress.
    if (++spins < 64) {
#if defined(__x86_64__) || defined(__i386__)
      __builtin_ia32_pause();
#endif
    } else {
      std::this_thread::yield();
      spins = 0;
    }
  }

  std::atomic<bool> flag_{false};
};

static_assert(sizeof(spinlock) <= cache_line_size);

}  // namespace asyncgt
