// Small statistics toolkit: running summaries and log2 histograms.
//
// Used for degree distributions (validating RMAT skew), queue-length and
// visit-count distributions (load-balance ablations), and I/O latency
// summaries in the SEM benches.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace asyncgt {

/// Streaming min/max/mean/variance (Welford).
class summary_stats {
 public:
  void add(double x) noexcept;

  std::uint64_t count() const noexcept { return n_; }
  double min() const noexcept { return n_ ? min_ : 0.0; }
  double max() const noexcept { return n_ ? max_ : 0.0; }
  double mean() const noexcept { return n_ ? mean_ : 0.0; }
  double variance() const noexcept;
  double stddev() const noexcept;
  double sum() const noexcept { return sum_; }

  /// Coefficient of variation (stddev / mean); 0 when mean is 0.
  double cv() const noexcept;

  std::string to_string() const;

 private:
  std::uint64_t n_ = 0;
  double min_ = 0.0, max_ = 0.0, mean_ = 0.0, m2_ = 0.0, sum_ = 0.0;
};

/// Histogram with power-of-two buckets: bucket i counts values in
/// [2^i, 2^(i+1)). Bucket 0 additionally absorbs the value 0.
class log2_histogram {
 public:
  void add(std::uint64_t value) noexcept;
  std::uint64_t bucket_count(std::size_t i) const noexcept;
  std::size_t num_buckets() const noexcept { return buckets_.size(); }
  std::uint64_t total() const noexcept { return total_; }

  /// Render as "2^i..2^(i+1): count" lines, skipping empty tail buckets.
  std::string to_string() const;

 private:
  std::vector<std::uint64_t> buckets_;
  std::uint64_t total_ = 0;
};

/// Exact percentile over a materialized sample (sorts a copy).
double percentile(std::vector<double> values, double p);

}  // namespace asyncgt
