// Cache-line alignment helpers used to avoid false sharing between threads.
//
// Hot per-thread counters and locks in the visitor-queue framework live in
// arrays indexed by thread id; without padding, neighbouring entries share a
// cache line and every update by one thread invalidates the line for all
// others. `padded<T>` gives each element its own line.
#pragma once

#include <atomic>
#include <cstddef>
#include <new>
#include <type_traits>

namespace asyncgt {

#ifdef __cpp_lib_hardware_interference_size
inline constexpr std::size_t cache_line_size =
    std::hardware_destructive_interference_size;
#else
inline constexpr std::size_t cache_line_size = 64;
#endif

/// A value of type T padded out to occupy (at least) a full cache line.
/// T must be default-constructible; access the payload through `value`.
template <typename T>
struct alignas(cache_line_size) padded {
  T value{};

  padded() = default;
  explicit padded(T v) : value(std::move(v)) {}

  T& operator*() noexcept { return value; }
  const T& operator*() const noexcept { return value; }
  T* operator->() noexcept { return &value; }
  const T* operator->() const noexcept { return &value; }
};

static_assert(alignof(padded<std::atomic<long>>) >= 64,
              "padded must be cache-line aligned");

}  // namespace asyncgt
