// Reusable thread barrier for the synchronous baselines (level-synchronous
// BFS, label-propagation CC, BSP supersteps). The paper's thesis is that
// these barriers are exactly what the asynchronous approach removes, so the
// barrier also counts how many times it was crossed — the benches report
// that count as a machine-independent "synchronization cost" metric.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <mutex>

namespace asyncgt {

class thread_barrier {
 public:
  explicit thread_barrier(std::size_t parties) : parties_(parties) {}

  thread_barrier(const thread_barrier&) = delete;
  thread_barrier& operator=(const thread_barrier&) = delete;

  /// Blocks until `parties` threads have arrived. Returns true on exactly one
  /// thread per generation (the "serial" thread, by analogy with
  /// pthread_barrier's PTHREAD_BARRIER_SERIAL_THREAD).
  bool arrive_and_wait() {
    std::unique_lock lk(mu_);
    const std::uint64_t gen = generation_;
    if (++arrived_ == parties_) {
      arrived_ = 0;
      ++generation_;
      ++crossings_;
      lk.unlock();
      cv_.notify_all();
      return true;
    }
    cv_.wait(lk, [&] { return generation_ != gen; });
    return false;
  }

  /// Number of completed barrier episodes (all-parties synchronizations).
  std::uint64_t crossings() const {
    std::lock_guard lk(mu_);
    return crossings_;
  }

  std::size_t parties() const noexcept { return parties_; }

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  const std::size_t parties_;
  std::size_t arrived_ = 0;
  std::uint64_t generation_ = 0;
  std::uint64_t crossings_ = 0;
};

}  // namespace asyncgt
