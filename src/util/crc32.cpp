#include "util/crc32.hpp"

#include <array>

namespace asyncgt {
namespace {

constexpr std::uint32_t kPoly = 0xEDB88320u;  // reflected 0x04C11DB7

constexpr std::array<std::uint32_t, 256> make_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? (kPoly ^ (c >> 1)) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

constexpr auto kTable = make_table();

}  // namespace

void crc32::update(const void* data, std::size_t bytes) noexcept {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint32_t c = state_;
  for (std::size_t i = 0; i < bytes; ++i) {
    c = kTable[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
  }
  state_ = c;
}

}  // namespace asyncgt
