// Deterministic, fast pseudo-random number generation.
//
// All generators in this repo (RMAT, weights, web-graph) must be reproducible
// across runs and parallelizable across threads, so we use splitmix64 for
// seeding and xoshiro256** for the streams; `jump()`-free parallelism is
// obtained by giving each thread a splitmix-derived seed.
#pragma once

#include <cstdint>

namespace asyncgt {

/// splitmix64: tiny, high-quality mixer. Used to expand one user seed into
/// many independent stream seeds.
class splitmix64 {
 public:
  explicit constexpr splitmix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256**: the workhorse generator. Satisfies UniformRandomBitGenerator
/// so it can be used with <random> distributions where convenient.
class xoshiro256ss {
 public:
  using result_type = std::uint64_t;

  explicit constexpr xoshiro256ss(std::uint64_t seed) noexcept {
    splitmix64 sm(seed);
    for (auto& s : s_) s = sm.next();
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~0ULL; }

  constexpr result_type operator()() noexcept {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  constexpr double next_double() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [0, bound) without modulo bias (Lemire's method).
  std::uint64_t next_below(std::uint64_t bound) noexcept {
    const unsigned __int128 product =
        static_cast<unsigned __int128>((*this)()) * bound;
    return static_cast<std::uint64_t>(product >> 64);
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4];
};

}  // namespace asyncgt
