// Cooperative cancellation-point exception.
//
// Blocking primitives that can park indefinitely (the fault injector's
// `stall` mode parking a read, future long waits) poll a cancellation
// signal — the ambient job scope's abort flag (telemetry/metric_scope.hpp)
// — and unwind by throwing this type. The traversal engine's failure
// containment recognizes it as a *cooperative* unwind rather than a worker
// failure: a job whose stalled read was force-cancelled by the watchdog
// reports deadline_exceeded/stalled, not "worker failed".
//
// Lives in util/ so both the sem layer (which throws it) and the queue
// layer (which classifies it) can include it without depending on each
// other.
#pragma once

#include <stdexcept>
#include <string>

namespace asyncgt {

class operation_cancelled : public std::runtime_error {
 public:
  explicit operation_cancelled(const std::string& what)
      : std::runtime_error(what) {}
};

}  // namespace asyncgt
