// Wall-clock timing helpers used by benches and experiment harnesses.
#pragma once

#include <chrono>
#include <cstdint>

namespace asyncgt {

class wall_timer {
 public:
  wall_timer() : start_(clock::now()) {}

  void reset() { start_ = clock::now(); }

  double elapsed_seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  std::uint64_t elapsed_us() const {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(clock::now() -
                                                              start_)
            .count());
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

/// Accumulates time across multiple start/stop episodes.
class accumulating_timer {
 public:
  void start() { t_.reset(); }
  void stop() { total_us_ += t_.elapsed_us(); }
  std::uint64_t total_us() const noexcept { return total_us_; }
  double total_seconds() const noexcept {
    return static_cast<double>(total_us_) * 1e-6;
  }

 private:
  wall_timer t_;
  std::uint64_t total_us_ = 0;
};

}  // namespace asyncgt
