// CRC-32 (ISO-HDLC / zlib polynomial, reflected), table-driven.
//
// Used by the checkpoint files to detect torn writes after a crash — the
// exact scenario checkpoints exist for. Incremental interface so large
// arrays can be folded in chunk by chunk.
#pragma once

#include <cstdint>
#include <cstddef>

namespace asyncgt {

class crc32 {
 public:
  /// Folds `bytes` more bytes into the running checksum.
  void update(const void* data, std::size_t bytes) noexcept;

  /// Final CRC-32 value of everything updated so far.
  std::uint32_t value() const noexcept { return ~state_; }

  /// One-shot convenience.
  static std::uint32_t of(const void* data, std::size_t bytes) noexcept {
    crc32 c;
    c.update(data, bytes);
    return c.value();
  }

 private:
  std::uint32_t state_ = 0xFFFFFFFFu;
};

}  // namespace asyncgt
