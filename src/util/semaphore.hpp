// Counting semaphore used by the simulated flash device to bound the number
// of I/O requests in service concurrently (the device's internal parallelism
// / NCQ depth). std::counting_semaphore has a compile-time ceiling and no
// introspection, so we keep a small mutex+condvar implementation that also
// reports the high-water mark of concurrent holders for the Fig. 1 bench.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <mutex>

namespace asyncgt {

class bounded_semaphore {
 public:
  explicit bounded_semaphore(std::int64_t count) : count_(count) {}

  bounded_semaphore(const bounded_semaphore&) = delete;
  bounded_semaphore& operator=(const bounded_semaphore&) = delete;

  void acquire() {
    std::unique_lock lk(mu_);
    cv_.wait(lk, [&] { return count_ > 0; });
    --count_;
    ++in_use_;
    if (in_use_ > high_water_) high_water_ = in_use_;
  }

  bool try_acquire() {
    std::lock_guard lk(mu_);
    if (count_ <= 0) return false;
    --count_;
    ++in_use_;
    if (in_use_ > high_water_) high_water_ = in_use_;
    return true;
  }

  void release() {
    {
      std::lock_guard lk(mu_);
      ++count_;
      --in_use_;
    }
    cv_.notify_one();
  }

  /// Maximum number of simultaneous holders observed so far.
  std::int64_t high_water_mark() const {
    std::lock_guard lk(mu_);
    return high_water_;
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::int64_t count_;
  std::int64_t in_use_ = 0;
  std::int64_t high_water_ = 0;
};

/// RAII guard for bounded_semaphore.
class semaphore_guard {
 public:
  explicit semaphore_guard(bounded_semaphore& s) : sem_(&s) { sem_->acquire(); }
  ~semaphore_guard() {
    if (sem_ != nullptr) sem_->release();
  }
  semaphore_guard(const semaphore_guard&) = delete;
  semaphore_guard& operator=(const semaphore_guard&) = delete;

 private:
  bounded_semaphore* sem_;
};

}  // namespace asyncgt
