// Minimal command-line option parser for benches and examples.
//
// Supports "--key=value", "--key value", and boolean "--flag" forms; unknown
// options raise an error listing the registered names so bench sweeps fail
// loudly instead of silently ignoring a typo'd parameter.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace asyncgt {

class options {
 public:
  /// Parses argv. Throws std::invalid_argument on a malformed token.
  options(int argc, const char* const* argv);

  bool has(const std::string& key) const;

  std::string get_string(const std::string& key,
                         const std::string& fallback) const;
  std::int64_t get_int(const std::string& key, std::int64_t fallback) const;
  double get_double(const std::string& key, double fallback) const;
  bool get_bool(const std::string& key, bool fallback) const;

  /// Comma-separated integer list, e.g. --threads=1,2,4,8.
  std::vector<std::int64_t> get_int_list(
      const std::string& key, const std::vector<std::int64_t>& fallback) const;

  /// Positional (non --key) arguments in order.
  const std::vector<std::string>& positional() const { return positional_; }

  /// All keys seen, for diagnostics.
  std::vector<std::string> keys() const;

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace asyncgt
