// Fixed-width text-table printer: the bench harnesses render paper tables
// (Tables I–V) with it, so the output visually matches the paper's rows.
#pragma once

#include <string>
#include <vector>

namespace asyncgt {

class text_table {
 public:
  /// Sets the header row; column count is fixed from here on.
  void header(std::vector<std::string> cells);

  /// Appends a data row. Must have the same arity as the header.
  void row(std::vector<std::string> cells);

  /// A horizontal separator line.
  void rule();

  std::string render() const;

  /// The header cells (empty until header() is called) and the data rows in
  /// insertion order, rules skipped — so bench reports can re-emit the same
  /// table machine-readably.
  std::vector<std::string> header_cells() const;
  std::vector<std::vector<std::string>> data_rows() const;

 private:
  struct line {
    bool is_rule = false;
    std::vector<std::string> cells;
  };
  std::vector<line> lines_;
  std::size_t columns_ = 0;
};

/// Formats seconds with 3 decimals, or "n/a" for negatives.
std::string fmt_seconds(double s);

/// Formats a ratio like "3.4x", or "n/a" for non-finite.
std::string fmt_ratio(double r);

/// Human-readable large integers: 12,345,678.
std::string fmt_count(std::uint64_t n);

}  // namespace asyncgt
