#include "util/stats.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <sstream>

namespace asyncgt {

void summary_stats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double summary_stats::variance() const noexcept {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double summary_stats::stddev() const noexcept { return std::sqrt(variance()); }

double summary_stats::cv() const noexcept {
  return mean_ != 0.0 ? stddev() / mean_ : 0.0;
}

std::string summary_stats::to_string() const {
  std::ostringstream os;
  os << "n=" << n_ << " min=" << min() << " max=" << max()
     << " mean=" << mean() << " stddev=" << stddev();
  return os.str();
}

void log2_histogram::add(std::uint64_t value) noexcept {
  const std::size_t bucket =
      value == 0 ? 0 : static_cast<std::size_t>(std::bit_width(value) - 1);
  if (bucket >= buckets_.size()) buckets_.resize(bucket + 1, 0);
  ++buckets_[bucket];
  ++total_;
}

std::uint64_t log2_histogram::bucket_count(std::size_t i) const noexcept {
  return i < buckets_.size() ? buckets_[i] : 0;
}

std::string log2_histogram::to_string() const {
  std::ostringstream os;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    if (buckets_[i] == 0) continue;
    os << "[" << (1ULL << i) << ".." << ((1ULL << (i + 1)) - 1)
       << "]: " << buckets_[i] << "\n";
  }
  return os.str();
}

double percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const double rank = p / 100.0 * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return values[lo] + frac * (values[hi] - values[lo]);
}

}  // namespace asyncgt
