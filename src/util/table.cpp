#include "util/table.hpp"

#include <cmath>
#include <cstdint>
#include <sstream>
#include <stdexcept>

namespace asyncgt {

void text_table::header(std::vector<std::string> cells) {
  if (columns_ != 0) throw std::logic_error("header already set");
  columns_ = cells.size();
  lines_.push_back({false, std::move(cells)});
  lines_.push_back({true, {}});
}

void text_table::row(std::vector<std::string> cells) {
  if (cells.size() != columns_) {
    throw std::invalid_argument("row arity mismatch: expected " +
                                std::to_string(columns_) + ", got " +
                                std::to_string(cells.size()));
  }
  lines_.push_back({false, std::move(cells)});
}

void text_table::rule() { lines_.push_back({true, {}}); }

std::vector<std::string> text_table::header_cells() const {
  for (const auto& l : lines_) {
    if (!l.is_rule) return l.cells;  // the header is the first data line
  }
  return {};
}

std::vector<std::vector<std::string>> text_table::data_rows() const {
  std::vector<std::vector<std::string>> rows;
  bool seen_header = false;
  for (const auto& l : lines_) {
    if (l.is_rule) continue;
    if (!seen_header) {
      seen_header = true;
      continue;
    }
    rows.push_back(l.cells);
  }
  return rows;
}

std::string text_table::render() const {
  std::vector<std::size_t> width(columns_, 0);
  for (const auto& l : lines_) {
    if (l.is_rule) continue;
    for (std::size_t c = 0; c < columns_; ++c) {
      width[c] = std::max(width[c], l.cells[c].size());
    }
  }
  std::ostringstream os;
  for (const auto& l : lines_) {
    if (l.is_rule) {
      for (std::size_t c = 0; c < columns_; ++c) {
        os << '+' << std::string(width[c] + 2, '-');
      }
      os << "+\n";
      continue;
    }
    for (std::size_t c = 0; c < columns_; ++c) {
      os << "| " << l.cells[c]
         << std::string(width[c] - l.cells[c].size() + 1, ' ');
    }
    os << "|\n";
  }
  return os.str();
}

std::string fmt_seconds(double s) {
  if (s < 0) return "n/a";
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(3);
  os << s;
  return os.str();
}

std::string fmt_ratio(double r) {
  if (!std::isfinite(r)) return "n/a";
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(2);
  os << r << "x";
  return os.str();
}

std::string fmt_count(std::uint64_t n) {
  std::string digits = std::to_string(n);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3);
  std::size_t rem = digits.size();
  for (char d : digits) {
    out.push_back(d);
    --rem;
    if (rem > 0 && rem % 3 == 0) out.push_back(',');
  }
  return out;
}

}  // namespace asyncgt
